// Package cluster is the scatter-gather serving tier: a coordinator
// routes EQL queries across N ctpserve shards and merges their answers,
// surviving shards that die, drain, or stall mid-query.
//
// The engine becomes location-transparent through a Transport/Shard
// split: a Transport delivers one wire request to one backend — over
// HTTP (HTTPTransport) or straight into an in-process handler
// (LocalTransport) — while a Shard wraps a Transport with the
// robustness state the coordinator routes on: a circuit breaker
// (closed/open/half-open with probe admission), the health color
// refreshed by the background prober from the backend's 3-state
// /healthz (ok / degraded / draining), and latency/error accounting.
//
// Shards are arranged in groups: members of one group are replicas
// answering the same slice of the data, distinct groups partition it. A
// query is routed to one member per group — healthy members first,
// degraded ones deprioritized, draining and breaker-open ones out of
// rotation — with per-shard deadline propagation, capped exponential
// retry with jitter across members (queries are idempotent reads), and
// an optional hedged second request when the primary straggles. Multi-
// group answers are merged on the canonical per-row merge keys the
// shards export (ctpquery.Results.MergeKey — the PR 4 collector's
// score/size/edge-key order), so the gathered output is deterministic
// regardless of arrival order. When a whole group has no answering
// member the gather degrades gracefully: it returns what it has plus a
// structured "degraded" block naming the missing shards instead of
// failing the query.
//
// The package carries three fault probes — cluster.send,
// cluster.gather.merge, cluster.health.probe — so the chaos suite can
// kill, delay, and error shards deterministically (internal/fault).
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"ctpquery/internal/fault"
	"ctpquery/internal/obs"
)

// Transport-level probe points (inert unless armed via internal/fault):
// send fires before every shard query delivery, health.probe before
// every background health probe — both error-capable, so chaos tests
// inject shard loss and latency at the transport boundary — and
// gather.merge fires inside the merge, inside the coordinator's recover
// middleware.
var (
	probeSend   = fault.Register("cluster.send")
	probeMerge  = fault.Register("cluster.gather.merge")
	probeHealth = fault.Register("cluster.health.probe")
)

// Request is the wire query a coordinator scatters — field-for-field the
// body of ctpserve's POST /query.
type Request struct {
	Query       string `json:"query"`
	TimeoutMS   int64  `json:"timeout_ms,omitempty"`
	Algorithm   string `json:"algorithm,omitempty"`
	Parallelism *int   `json:"parallelism,omitempty"`
	MaxRows     int    `json:"max_rows,omitempty"`
	OmitTrees   bool   `json:"omit_trees,omitempty"`
	// IncludeKeys asks the shard for per-row canonical merge keys. The
	// coordinator forces it on multi-group gathers (the merge needs the
	// keys) and strips the keys from the client answer unless the client
	// asked for them itself.
	IncludeKeys bool `json:"include_keys,omitempty"`
}

// Timings mirrors the per-phase evaluation times of a shard response.
type Timings struct {
	BGP   float64 `json:"bgp"`
	CTP   float64 `json:"ctp"`
	Join  float64 `json:"join"`
	Total float64 `json:"total"`
}

// Response is one decoded shard answer. Rows stay raw JSON — the
// coordinator merges and forwards them without re-interpreting cells.
// StatusCode and RetryAfterS are transport metadata, not wire fields.
type Response struct {
	StatusCode int `json:"-"`

	Columns       []string          `json:"columns"`
	Rows          []json.RawMessage `json:"rows"`
	RowKeys       []string          `json:"row_keys,omitempty"`
	RowCount      int               `json:"row_count"`
	RowsTruncated bool              `json:"rows_truncated,omitempty"`
	TimedOut      bool              `json:"timed_out"`
	Truncated     bool              `json:"truncated,omitempty"`
	Algorithm     string            `json:"algorithm,omitempty"`
	TimingsMS     Timings           `json:"timings_ms"`
	// Search/Cache/Admission pass through the shard's per-query reports
	// opaquely (single-group answers keep them; merges drop them in favor
	// of the per-shard cluster block).
	Search    json.RawMessage `json:"search,omitempty"`
	Cache     json.RawMessage `json:"cache,omitempty"`
	Admission json.RawMessage `json:"admission,omitempty"`
	// Error is the structured message of non-200 answers; RetryAfterS
	// mirrors their Retry-After (429 saturation, 503 draining).
	Error       string `json:"error,omitempty"`
	RetryAfterS int    `json:"retry_after_s,omitempty"`
	// TraceID is the shard's flight-recorder trace for this query. Under
	// a tracing coordinator it equals the coordinator's trace ID (the
	// shard adopts the propagated Traceparent), which is how the two
	// recorders' span trees join.
	TraceID string `json:"trace_id,omitempty"`
}

// Transport delivers wire requests to one backend. Send returns an
// error only for transport-level failures (connection refused, decode
// garbage, injected cluster.send faults); an HTTP-level refusal comes
// back as a Response carrying its StatusCode, so the caller can tell "a
// shard said no" from "no shard there".
type Transport interface {
	// Target names the backend for logs, /stats, and degraded blocks.
	Target() string
	// Send posts one query to the backend's /query.
	Send(ctx context.Context, req *Request) (*Response, error)
	// Probe checks the backend's /healthz.
	Probe(ctx context.Context) (HealthReport, error)
}

// HealthReport is one /healthz observation.
type HealthReport struct {
	// Status is the shard's reported state: "ok", "degraded", "draining".
	Status string `json:"status"`
	// StatusCode is the HTTP code the probe answered with.
	StatusCode int `json:"-"`
}

// HTTPTransport reaches a shard over HTTP — the production transport.
type HTTPTransport struct {
	// Base is the shard's base URL, e.g. "http://shard0:8372".
	Base string
	// Client issues the requests; nil uses a default without its own
	// timeout (per-attempt deadlines come from the request context).
	Client *http.Client
}

func (t *HTTPTransport) Target() string { return t.Base }

func (t *HTTPTransport) client() *http.Client {
	if t.Client != nil {
		return t.Client
	}
	return http.DefaultClient
}

func (t *HTTPTransport) Send(ctx context.Context, req *Request) (*Response, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, t.Base+"/query", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	setTraceparent(ctx, hreq)
	hresp, err := t.client().Do(hreq)
	if err != nil {
		return nil, err
	}
	defer hresp.Body.Close()
	return decodeResponse(hresp.StatusCode, hresp.Header, hresp.Body)
}

func (t *HTTPTransport) Probe(ctx context.Context) (HealthReport, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, t.Base+"/healthz", nil)
	if err != nil {
		return HealthReport{}, err
	}
	hresp, err := t.client().Do(hreq)
	if err != nil {
		return HealthReport{}, err
	}
	defer hresp.Body.Close()
	return decodeHealth(hresp.StatusCode, hresp.Body)
}

// LocalTransport dispatches straight into an in-process http.Handler —
// a serve.Server handler — making a single-process multi-shard cluster
// possible for tests, benchmarks, and the ctpload cluster smoke. It
// goes through the same JSON wire format as HTTPTransport, so the two
// are interchangeable behind a Shard.
type LocalTransport struct {
	// Name labels the backend (Target).
	Name string
	// Handler answers /query and /healthz (serve.Server.Handler).
	Handler http.Handler
}

func (t *LocalTransport) Target() string { return t.Name }

func (t *LocalTransport) Send(ctx context.Context, req *Request) (*Response, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, "/query", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	setTraceparent(ctx, hreq)
	rec := newRecorder()
	t.Handler.ServeHTTP(rec, hreq)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return decodeResponse(rec.status(), rec.hdr, &rec.body)
}

func (t *LocalTransport) Probe(ctx context.Context) (HealthReport, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, "/healthz", nil)
	if err != nil {
		return HealthReport{}, err
	}
	rec := newRecorder()
	t.Handler.ServeHTTP(rec, hreq)
	if err := ctx.Err(); err != nil {
		return HealthReport{}, err
	}
	return decodeHealth(rec.status(), &rec.body)
}

// recorder is the minimal in-memory http.ResponseWriter behind
// LocalTransport (net/http/httptest stays out of production code).
type recorder struct {
	hdr  http.Header
	code int
	body bytes.Buffer
}

func newRecorder() *recorder { return &recorder{hdr: make(http.Header)} }

func (r *recorder) Header() http.Header { return r.hdr }

func (r *recorder) WriteHeader(code int) {
	if r.code == 0 {
		r.code = code
	}
}

func (r *recorder) Write(b []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	return r.body.Write(b)
}

func (r *recorder) status() int {
	if r.code == 0 {
		return http.StatusOK
	}
	return r.code
}

// decodeResponse turns one HTTP answer into a Response. Non-200 bodies
// are the server's errorResponse shape, whose fields Response shares.
func decodeResponse(code int, hdr http.Header, body io.Reader) (*Response, error) {
	resp := &Response{StatusCode: code}
	if err := json.NewDecoder(body).Decode(resp); err != nil {
		return nil, fmt.Errorf("cluster: shard answered %d with undecodable body: %w", code, err)
	}
	if ra := hdr.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs > resp.RetryAfterS {
			resp.RetryAfterS = secs
		}
	}
	return resp, nil
}

// decodeHealth turns one /healthz answer into a HealthReport.
func decodeHealth(code int, body io.Reader) (HealthReport, error) {
	rep := HealthReport{StatusCode: code}
	if err := json.NewDecoder(body).Decode(&rep); err != nil {
		return HealthReport{}, fmt.Errorf("cluster: undecodable /healthz (%d): %w", code, err)
	}
	return rep, nil
}

// setTraceparent stamps the outgoing shard request with the sending
// span's trace context (the coordinator's per-attempt send span), so the
// shard's root span adopts the coordinator's trace ID and the two flight
// recorders can be joined on it. No span in ctx — tracing off, or a
// direct Shard use — stamps nothing.
func setTraceparent(ctx context.Context, hreq *http.Request) {
	if sp := obs.FromContext(ctx); sp != nil {
		hreq.Header.Set(obs.TraceHeader, sp.Context().Traceparent())
	}
}

// ms converts a duration for wire reports.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
