package cluster

// Cluster chaos suite: deterministic fault injection (internal/fault)
// against real serve backends wired through LocalTransport. The
// invariants under test are the acceptance bar of the scatter-gather
// tier: a shard killed mid-gather yields either complete results
// identical to the single-shard answer (replica failover) or a
// structured degraded partial (partition loss) — never a hang, never a
// scrambled merge order, never a leaked goroutine.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"ctpquery"
	"ctpquery/internal/fault"
	"ctpquery/internal/serve"
	"ctpquery/internal/testutil"
)

// newShardHandler spins up one in-process serve backend over a
// deterministic graph. Identical seeds produce identical graphs, so two
// handlers with the same seed are true replicas.
func newShardHandler(t *testing.T, seed int64) http.Handler {
	t.Helper()
	// Parallelism > 0 routes searches through the exec collector, whose
	// canonical (score desc, size asc, edge-key asc) order is the merge
	// contract the coordinator relies on.
	g := ctpquery.RandomGraph(600, 1800, []string{"knows", "cites"}, seed)
	db, err := ctpquery.Open(g, &ctpquery.Options{Parallel: true, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The default timeout must clear chaosQuery's ~8s race-detector cost
	// on a 1-core runner with margin, or deadline truncation races the
	// assertions; the suite's hang bound is the go test timeout.
	s, err := serve.New(db, serve.Config{
		DefaultTimeout: 60 * time.Second, MaxTimeout: 120 * time.Second, MaxRows: 100})
	if err != nil {
		t.Fatal(err)
	}
	return s.Handler(false)
}

// chaosQuery enumerates completely within its MAX bound (81 trees on
// the seed-42 graph, far under the LIMIT): the result SET is therefore
// identical across evaluations, which is what the identity-keyed
// comparisons below pin. Row ORDER may still differ between two
// evaluations where the canonical comparator ties (same score, size,
// and edge set, different root — sort.Slice is unstable), which is
// exactly the gap the MergeKey root tiebreak closes for merged output.
const chaosQuery = "SELECT ?w WHERE { CONNECT n3 n400 AS ?w MAX 6 LIMIT 500 . }"

// keySet collects a keyed response's canonical merge keys. A key is
// the logical row identity (bound nodes + the tree's score, size, and
// edge set — the root is a discovery artifact the engine's signature
// dedup does not pin), so equal key sets mean equal logical results
// even when two evaluations picked different tree representatives.
func keySet(t *testing.T, resp *Response) map[string]bool {
	t.Helper()
	if len(resp.RowKeys) != len(resp.Rows) {
		t.Fatalf("response has %d keys for %d rows", len(resp.RowKeys), len(resp.Rows))
	}
	m := make(map[string]bool, len(resp.Rows))
	for _, k := range resp.RowKeys {
		if m[k] {
			t.Fatalf("merge key %q duplicated within one response", k)
		}
		m[k] = true
	}
	return m
}

func sameKeySet(t *testing.T, got, want map[string]bool, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("%s: row %q missing", label, k)
		}
	}
}

// directQuery asks one shard handler directly, bypassing the cluster.
func directQuery(t *testing.T, h http.Handler, req *Request) *Response {
	t.Helper()
	tr := &LocalTransport{Name: "direct", Handler: h}
	resp, err := tr.Send(context.Background(), req)
	if err != nil {
		t.Fatalf("direct query: %v", err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("direct query: status %d: %s", resp.StatusCode, resp.Error)
	}
	return resp
}

// TestChaosShardKilledMidGatherReplicaFailover is the headline
// invariant: two replicas, one panics mid-query (count-bounded fault,
// so only the first attempt dies), and the gather still returns results
// identical to the single-shard answer — complete, same order, no
// degraded block.
func TestChaosShardKilledMidGatherReplicaFailover(t *testing.T) {
	baseline := runtime.NumGoroutine()
	h1 := newShardHandler(t, 42)
	h2 := newShardHandler(t, 42) // same seed: true replica

	want := keySet(t, directQuery(t, h1, &Request{Query: chaosQuery, IncludeKeys: true}))

	c, err := New(fastConfig(), []Group{{Name: "g0", Members: []Transport{
		&LocalTransport{Name: "r0", Handler: h1},
		&LocalTransport{Name: "r1", Handler: h2},
	}}})
	if err != nil {
		t.Fatal(err)
	}

	// Kill whichever replica the router tries first: the panic fires on
	// the next serve.query.admitted hit and only that one.
	if err := fault.Arm("serve.query.admitted", fault.Fault{Kind: fault.Panic, Count: 1}); err != nil {
		t.Fatal(err)
	}
	defer fault.Reset()

	done := make(chan *GatherResponse, 1)
	go func() {
		done <- c.Gather(context.Background(), &Request{Query: chaosQuery, IncludeKeys: true})
	}()
	var gr *GatherResponse
	select {
	case gr = <-done:
	case <-time.After(90 * time.Second):
		// Past the 60s gather budget: nothing legitimate is still running.
		t.Fatal("gather hung after a replica was killed mid-query")
	}

	if fault.Fired("serve.query.admitted") != 1 {
		t.Fatalf("fault fired %d times, want exactly 1 (one replica killed)",
			fault.Fired("serve.query.admitted"))
	}
	if gr.StatusCode != 200 || gr.Degraded != nil {
		t.Fatalf("status=%d degraded=%+v, want a clean 200 via the surviving replica",
			gr.StatusCode, gr.Degraded)
	}
	sameKeySet(t, keySet(t, gr.Response), want, "failover answer vs single-shard answer")
	// Exactly one shard took the panic; the gather record shows both the
	// 500 and the success.
	var failed, succeeded int
	for _, a := range gr.Cluster.Attempts {
		if a.Error != "" {
			failed++
		} else {
			succeeded++
		}
	}
	if failed != 1 || succeeded != 1 {
		t.Fatalf("attempts = %+v, want one failed + one succeeded", gr.Cluster.Attempts)
	}

	fault.Reset()
	testutil.SettleGoroutines(t, baseline, 4)
}

// TestChaosAllReplicasLostStructuredError: when every member of the
// only group is unreachable the gather must come back quickly with a
// structured degraded 503 — not an HTTP hang, not a panic.
func TestChaosAllReplicasLostStructuredError(t *testing.T) {
	baseline := runtime.NumGoroutine()
	h := newShardHandler(t, 42)
	cfg := fastConfig()
	cfg.MaxAttempts = 3
	c, err := New(cfg, []Group{{Name: "g0", Members: []Transport{
		&LocalTransport{Name: "r0", Handler: h},
		&LocalTransport{Name: "r1", Handler: h},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	// Persistent transport loss: every send fails, on both replicas.
	if err := fault.Arm("cluster.send", fault.Fault{Kind: fault.Error, Count: 1000}); err != nil {
		t.Fatal(err)
	}
	defer fault.Reset()

	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	body, _ := json.Marshal(Request{Query: chaosQuery})
	client := &http.Client{Timeout: 15 * time.Second}
	resp, err := client.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("coordinator did not answer: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	var out struct {
		Error    string    `json:"error"`
		Degraded *Degraded `json:"degraded"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("unstructured 503 body: %v", err)
	}
	if out.Degraded == nil || len(out.Degraded.MissingShards) != 1 || out.Degraded.MissingShards[0] != "g0" {
		t.Fatalf("degraded = %+v, want missing_shards [g0]", out.Degraded)
	}
	if !strings.Contains(out.Degraded.Reason, "injected") {
		t.Fatalf("degraded reason %q does not surface the underlying failure", out.Degraded.Reason)
	}

	fault.Reset()
	ts.Close()
	testutil.SettleGoroutines(t, baseline, 4)
}

// TestChaosPartitionLostDegradedPartial: a two-group partitioned
// cluster loses one group entirely; the gather returns the surviving
// partition's rows in canonical merge order plus the structured
// degraded block naming the lost shard.
func TestChaosPartitionLostDegradedPartial(t *testing.T) {
	baseline := runtime.NumGoroutine()
	h := newShardHandler(t, 42)
	want := directQuery(t, h, &Request{Query: chaosQuery, IncludeKeys: true})

	dead := &fakeTransport{name: "dead", fn: alwaysFail()}
	cfg := fastConfig()
	cfg.MaxAttempts = 2
	c, err := New(cfg, []Group{
		{Name: "p0", Members: []Transport{&LocalTransport{Name: "s0", Handler: h}}},
		{Name: "p1", Members: []Transport{dead}},
	})
	if err != nil {
		t.Fatal(err)
	}
	gr := c.Gather(context.Background(), &Request{Query: chaosQuery, IncludeKeys: true})
	if gr.StatusCode != 200 {
		t.Fatalf("status = %d, want 200 degraded partial", gr.StatusCode)
	}
	if gr.Degraded == nil || len(gr.Degraded.MissingShards) != 1 || gr.Degraded.MissingShards[0] != "p1" {
		t.Fatalf("degraded = %+v, want missing_shards [p1]", gr.Degraded)
	}
	// Same logical result set as the surviving partition answers directly...
	sameKeySet(t, keySet(t, gr.Response), keySet(t, want), "degraded partial vs surviving partition")
	// ...and in canonical merge order: the keys of a merged response
	// ascend strictly, whatever order the shards answered in.
	for i := 1; i < len(gr.RowKeys); i++ {
		if gr.RowKeys[i-1] >= gr.RowKeys[i] {
			t.Fatalf("merged keys out of canonical order at row %d: %q >= %q",
				i, gr.RowKeys[i-1], gr.RowKeys[i])
		}
	}
	if !gr.Cluster.Merged {
		t.Fatal("multi-group gather did not go through the merge")
	}
	testutil.SettleGoroutines(t, baseline, 4)
}

// TestChaosBreakerOpensAndRecovers drives a shard through the full
// breaker arc — consecutive failures open it, the cooldown admits a
// half-open probe, the healed shard closes it — all observable through
// /stats, as operators would see it.
func TestChaosBreakerOpensAndRecovers(t *testing.T) {
	baseline := runtime.NumGoroutine()
	healthy := false
	tr := &fakeTransport{name: "flappy"}
	tr.fn = func(n int, _ *Request) (*Response, error) {
		if healthy {
			return okResponse("01"), nil
		}
		return nil, fault.ErrInjected
	}
	cfg := fastConfig()
	cfg.MaxAttempts = 1
	cfg.BreakerThreshold = 2
	cfg.BreakerCooldown = time.Hour // manually advanced below
	c, err := New(cfg, []Group{{Name: "g0", Members: []Transport{tr}}})
	if err != nil {
		t.Fatal(err)
	}
	sh := c.groups[0][0]
	now := time.Unix(0, 0)
	sh.br.now = func() time.Time { return now }
	cfg.BreakerCooldown = time.Hour

	readStats := func() (breaker string, opens int64, health string) {
		t.Helper()
		rec := httptest.NewRecorder()
		c.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
		var out struct {
			Groups []struct {
				Shards []struct {
					Breaker      string `json:"breaker"`
					BreakerOpens int64  `json:"breaker_opens"`
					Health       string `json:"health"`
				} `json:"shards"`
			} `json:"groups"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatalf("bad /stats: %v", err)
		}
		s := out.Groups[0].Shards[0]
		return s.Breaker, s.BreakerOpens, s.Health
	}

	// Two failing gathers trip the threshold-2 breaker.
	for i := 0; i < 2; i++ {
		if gr := c.Gather(context.Background(), &Request{Query: "q"}); gr.StatusCode != 503 {
			t.Fatalf("gather %d: status %d, want 503 while the shard is down", i, gr.StatusCode)
		}
	}
	if br, opens, _ := readStats(); br != "open" || opens != 1 {
		t.Fatalf("/stats after failures: breaker=%s opens=%d, want open/1", br, opens)
	}

	// While open, gathers are rejected without touching the transport.
	before := tr.sentCount()
	if gr := c.Gather(context.Background(), &Request{Query: "q"}); gr.StatusCode != 503 {
		t.Fatal("open breaker did not reject")
	}
	if tr.sentCount() != before {
		t.Fatalf("open breaker let %d request(s) through", tr.sentCount()-before)
	}

	// Heal the shard, elapse the cooldown: the next gather is the
	// half-open probe, succeeds, and closes the breaker.
	healthy = true
	now = now.Add(2 * time.Hour)
	if gr := c.Gather(context.Background(), &Request{Query: "q"}); gr.StatusCode != 200 {
		t.Fatalf("half-open probe gather: status %d, want 200", gr.StatusCode)
	}
	if br, _, _ := readStats(); br != "closed" {
		t.Fatalf("/stats after recovery: breaker=%s, want closed (shard back in rotation)", br)
	}
	testutil.SettleGoroutines(t, baseline, 4)
}

// TestChaosMergePanicContained: an injected panic inside the merge is
// contained by the coordinator's recover middleware — the client gets a
// structured 500, the process survives, the next query works.
func TestChaosMergePanicContained(t *testing.T) {
	baseline := runtime.NumGoroutine()
	h := newShardHandler(t, 42)
	c, err := New(fastConfig(), []Group{
		{Name: "p0", Members: []Transport{&LocalTransport{Name: "s0", Handler: h}}},
		{Name: "p1", Members: []Transport{&LocalTransport{Name: "s1", Handler: h}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := fault.Arm("cluster.gather.merge", fault.Fault{Kind: fault.Panic, Count: 1}); err != nil {
		t.Fatal(err)
	}
	defer fault.Reset()

	handler := c.Handler()
	post := func() *httptest.ResponseRecorder {
		body, _ := json.Marshal(Request{Query: chaosQuery})
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader(body))
		handler.ServeHTTP(rec, req)
		return rec
	}
	if rec := post(); rec.Code != http.StatusInternalServerError {
		t.Fatalf("merge panic answered %d, want contained 500", rec.Code)
	}
	if got := c.panics.Load(); got != 1 {
		t.Fatalf("panics_contained = %d, want 1", got)
	}
	if rec := post(); rec.Code != http.StatusOK {
		t.Fatalf("query after contained panic answered %d, want 200", rec.Code)
	}
	fault.Reset()
	testutil.SettleGoroutines(t, baseline, 4)
}

// TestChaosDelayFaultTriggersHedge: a transport-level delay fault on
// the first send makes the primary a straggler; the hedge fires, the
// second replica answers, and the straggler's eventual result is
// discarded without wedging anything.
func TestChaosDelayFaultTriggersHedge(t *testing.T) {
	baseline := runtime.NumGoroutine()
	h1 := newShardHandler(t, 42)
	h2 := newShardHandler(t, 42)
	cfg := fastConfig()
	cfg.HedgeAfter = 25 * time.Millisecond
	c, err := New(cfg, []Group{{Name: "g0", Members: []Transport{
		&LocalTransport{Name: "r0", Handler: h1},
		&LocalTransport{Name: "r1", Handler: h2},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	// The delay dwarfs the cheap query's evaluation time, so a hedged
	// gather finishing well under it proves the hedge won the race. The
	// stall must also fit inside the settle check's window below — the
	// straggler sleeps it out inside the fault probe.
	const stall = 2 * time.Second
	cheap := "SELECT ?w WHERE { CONNECT n3 n50 AS ?w MAX 4 LIMIT 3 . }"
	if err := fault.Arm("cluster.send", fault.Fault{Kind: fault.Delay, Delay: stall, Count: 1}); err != nil {
		t.Fatal(err)
	}
	defer fault.Reset()

	start := time.Now()
	gr := c.Gather(context.Background(), &Request{Query: cheap})
	elapsed := time.Since(start)
	if gr.StatusCode != 200 || gr.Degraded != nil {
		t.Fatalf("status=%d degraded=%+v, want clean hedged success", gr.StatusCode, gr.Degraded)
	}
	if elapsed > stall/2 {
		t.Fatalf("gather took %v, the hedge should beat the %v delay fault", elapsed, stall)
	}
	if c.hedges.Load() != 1 || c.hedgeWins.Load() != 1 {
		t.Fatalf("hedges=%d wins=%d, want 1/1", c.hedges.Load(), c.hedgeWins.Load())
	}
	fault.Reset()
	// The delayed straggler may still be sleeping inside the fault probe;
	// give it time to unwind before the leak check.
	testutil.SettleGoroutines(t, baseline, 4)
}

// TestChaosHealthProbeFaultMarksShardDown: an injected probe failure
// colors the shard down and routing avoids it until the next sweep
// heals it.
func TestChaosHealthProbeFaultMarksShardDown(t *testing.T) {
	baseline := runtime.NumGoroutine()
	okT := &fakeTransport{name: "a", health: "ok", fn: alwaysOK("01")}
	victim := &fakeTransport{name: "b", health: "ok", fn: alwaysOK("01")}
	c, err := New(fastConfig(), []Group{{Name: "g0", Members: []Transport{okT, victim}}})
	if err != nil {
		t.Fatal(err)
	}
	// A sweep probes shard a then shard b: skip a's hit, fail b's. The
	// sweeps are driven synchronously here so the down window between
	// them is observable deterministically.
	if err := fault.Arm("cluster.health.probe", fault.Fault{Kind: fault.Error, After: 1, Count: 1}); err != nil {
		t.Fatal(err)
	}
	defer fault.Reset()

	ctx := context.Background()
	c.probeAll(ctx)
	if got := c.groups[0][1].Health(); got != ShardDown {
		t.Fatalf("probe fault left the victim %v, want down", got)
	}
	if got := c.groups[0][0].Health(); got != ShardOK {
		t.Fatalf("healthy shard colored %v", got)
	}
	// Routing avoids the down member while it lasts.
	cands := c.candidates(0)
	if cands[0] != c.groups[0][0] {
		t.Fatalf("routing prefers %s, want the healthy shard", cands[0].Name())
	}
	// The fault is spent; the next sweep heals the shard back into
	// rotation.
	c.probeAll(ctx)
	if got := c.groups[0][1].Health(); got != ShardOK {
		t.Fatalf("shard never healed after the fault was spent (health %v)", got)
	}
	testutil.SettleGoroutines(t, baseline, 4)
}
