package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ShardHealth is the coordinator-side color of one shard, refreshed by
// the background prober and by query outcomes.
type ShardHealth int32

const (
	// ShardUnknown is the starting color before the first probe; routed
	// like ok so a cold coordinator can serve immediately.
	ShardUnknown ShardHealth = iota
	// ShardOK is preferred for routing.
	ShardOK
	// ShardDegraded stays in rotation but is deprioritized behind ok.
	ShardDegraded
	// ShardDraining is out of rotation: the shard announced shutdown.
	ShardDraining
	// ShardDown failed its probe entirely; tried only as a last resort.
	ShardDown
)

func (h ShardHealth) String() string {
	switch h {
	case ShardUnknown:
		return "unknown"
	case ShardOK:
		return "ok"
	case ShardDegraded:
		return "degraded"
	case ShardDraining:
		return "draining"
	case ShardDown:
		return "down"
	}
	return "invalid"
}

// routeRank orders shards for candidate selection: lower is better.
// Draining is deliberately last — it is only reachable through the
// explicit last-resort path, never normal rotation.
func (h ShardHealth) routeRank() int {
	switch h {
	case ShardOK:
		return 0
	case ShardUnknown:
		return 1
	case ShardDegraded:
		return 2
	case ShardDown:
		return 3
	default: // draining
		return 4
	}
}

// SendError is a failed shard attempt, classified. Status 0 means the
// failure was transport-level (nothing answered); otherwise it carries
// the shard's HTTP refusal.
type SendError struct {
	Shard       string
	Status      int
	RetryAfterS int
	Err         error
	Msg         string
}

func (e *SendError) Error() string {
	switch {
	case e.Err != nil:
		return fmt.Sprintf("shard %s: %v", e.Shard, e.Err)
	case e.Msg != "":
		return fmt.Sprintf("shard %s: %d: %s", e.Shard, e.Status, e.Msg)
	default:
		return fmt.Sprintf("shard %s: status %d", e.Shard, e.Status)
	}
}

func (e *SendError) Unwrap() error { return e.Err }

// Shard is one routable backend: a Transport guarded by a circuit
// breaker and colored by the health prober.
type Shard struct {
	name  string
	group string
	tr    Transport
	br    *Breaker

	health atomic.Int32

	sent      atomic.Int64 // attempts delivered to the transport
	failures  atomic.Int64 // attempts classified as shard failures
	cancelled atomic.Int64 // attempts abandoned by the coordinator
	hedges    atomic.Int64 // attempts launched as hedges

	mu        sync.Mutex
	ewmaLat   time.Duration // smoothed attempt latency (successes)
	lastError string
}

func newShard(group string, tr Transport, threshold int, cooldown time.Duration) *Shard {
	return &Shard{
		name:  group + "/" + tr.Target(),
		group: group,
		tr:    tr,
		br:    newBreaker(threshold, cooldown),
	}
}

// Name is the shard's routing identity: "<group>/<target>".
func (sh *Shard) Name() string { return sh.name }

// Health returns the shard's current color.
func (sh *Shard) Health() ShardHealth { return ShardHealth(sh.health.Load()) }

func (sh *Shard) setHealth(h ShardHealth) { sh.health.Store(int32(h)) }

// Breaker exposes the shard's circuit breaker (read-side: tests, /stats).
func (sh *Shard) Breaker() *Breaker { return sh.br }

func (sh *Shard) noteLatency(d time.Duration) {
	sh.mu.Lock()
	if sh.ewmaLat == 0 {
		sh.ewmaLat = d
	} else {
		sh.ewmaLat = (sh.ewmaLat*4 + d) / 5
	}
	sh.mu.Unlock()
}

func (sh *Shard) noteError(msg string) {
	sh.mu.Lock()
	sh.lastError = msg
	sh.mu.Unlock()
}

// query runs one attempt against the shard with the deadline
// propagated: the attempt context is capped at shardTimeout (when set),
// and the shard-side engine budget (timeout_ms) is shrunk to the
// remaining attempt budget so a straggling shard returns its partial
// answer instead of being cut off mid-flight with nothing.
//
// Returns (resp, nil) for any decoded HTTP answer — including refusals;
// the caller classifies by resp.StatusCode. A non-nil error means no
// usable answer exists (transport failure, injected fault, expired
// attempt). Breaker accounting happens here: 2xx and caller errors
// (4xx except 429) prove the shard alive; 5xx and transport failures
// count against it; coordinator-side cancellation counts as neither.
func (sh *Shard) query(ctx context.Context, req *Request, shardTimeout time.Duration) (*Response, error) {
	actx := ctx
	cancel := func() {}
	if shardTimeout > 0 {
		actx, cancel = context.WithTimeout(ctx, shardTimeout)
	}
	defer cancel()

	r := *req
	if dl, ok := actx.Deadline(); ok {
		// Leave the transport a sliver to carry the answer back.
		budget := time.Until(dl) - 20*time.Millisecond
		if budget < time.Millisecond {
			budget = time.Millisecond
		}
		if r.TimeoutMS == 0 || int64(budget/time.Millisecond) < r.TimeoutMS {
			r.TimeoutMS = int64(budget / time.Millisecond)
			if r.TimeoutMS == 0 {
				r.TimeoutMS = 1
			}
		}
	}

	sh.sent.Add(1)
	start := time.Now()
	resp, err := func() (*Response, error) {
		if ferr := probeSend.Err(); ferr != nil {
			return nil, ferr
		}
		return sh.tr.Send(actx, &r)
	}()
	elapsed := time.Since(start)

	if err != nil {
		// The coordinator abandoning the attempt (hedge winner elsewhere,
		// gather deadline) says nothing about the shard.
		if ctx.Err() != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			sh.cancelled.Add(1)
			sh.br.Cancelled()
			return nil, &SendError{Shard: sh.name, Err: ctx.Err()}
		}
		sh.failures.Add(1)
		sh.noteError(err.Error())
		sh.br.Report(false)
		return nil, &SendError{Shard: sh.name, Err: err}
	}

	switch {
	case resp.StatusCode < 300:
		sh.noteLatency(elapsed)
		sh.br.Report(true)
		return resp, nil
	case resp.StatusCode >= 400 && resp.StatusCode < 500 && resp.StatusCode != 429:
		// The caller's fault, answered promptly — the shard is fine.
		sh.br.Report(true)
		return resp, nil
	case resp.StatusCode == 429 || resp.StatusCode == 503:
		// Saturated or draining: the shard is alive but refusing — fail the
		// attempt over to a replica without tripping the breaker, and let
		// the prober handle the draining color.
		sh.noteError(fmt.Sprintf("%d: %s", resp.StatusCode, resp.Error))
		sh.br.Report(true)
		if resp.StatusCode == 503 {
			sh.setHealth(ShardDraining)
		}
		return nil, &SendError{Shard: sh.name, Status: resp.StatusCode, RetryAfterS: resp.RetryAfterS, Msg: resp.Error}
	default:
		// 5xx: the shard broke under the query.
		sh.failures.Add(1)
		sh.noteError(fmt.Sprintf("%d: %s", resp.StatusCode, resp.Error))
		sh.br.Report(false)
		return nil, &SendError{Shard: sh.name, Status: resp.StatusCode, Msg: resp.Error}
	}
}

// shardStats is the /stats projection of one shard.
type shardStats struct {
	Shard        string  `json:"shard"`
	Group        string  `json:"group"`
	Health       string  `json:"health"`
	Breaker      string  `json:"breaker"`
	BreakerOpens int64   `json:"breaker_opens"`
	Sent         int64   `json:"sent"`
	Failures     int64   `json:"failures"`
	Cancelled    int64   `json:"cancelled,omitempty"`
	Hedges       int64   `json:"hedges"`
	ErrorRate    float64 `json:"error_rate"`
	EwmaMS       float64 `json:"ewma_latency_ms"`
	LastError    string  `json:"last_error,omitempty"`
}

func (sh *Shard) stats() shardStats {
	sh.mu.Lock()
	ewma := sh.ewmaLat
	lastErr := sh.lastError
	sh.mu.Unlock()
	sent := sh.sent.Load()
	fails := sh.failures.Load()
	rate := 0.0
	if sent > 0 {
		rate = float64(fails) / float64(sent)
	}
	return shardStats{
		Shard:        sh.name,
		Group:        sh.group,
		Health:       sh.Health().String(),
		Breaker:      sh.br.State().String(),
		BreakerOpens: sh.br.Opens(),
		Sent:         sent,
		Failures:     fails,
		Cancelled:    sh.cancelled.Load(),
		Hedges:       sh.hedges.Load(),
		ErrorRate:    rate,
		EwmaMS:       ms(ewma),
		LastError:    lastErr,
	}
}
