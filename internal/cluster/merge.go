package cluster

import (
	"encoding/json"
	"sort"
)

// mergePart is one group's answer entering the merge.
type mergePart struct {
	group string
	resp  *Response
}

// mergeResponses folds per-group answers into one Response in the
// canonical result order. When every part carries per-row merge keys
// (Results.MergeKey: score desc, tree size asc, edge-set key asc — the
// collector's §6 order), rows are unioned, deduplicated by key, and
// sorted by plain string comparison on the key, which makes the merged
// output deterministic regardless of which shard answered first. Parts
// without keys (a shard predating include_keys) fall back to
// concatenation in group order — still deterministic, but unordered
// across groups; the response marks merged=false via the missing keys.
//
// maxRows > 0 trims the merged row set after ordering, mirroring the
// shard-side max_rows contract.
func mergeResponses(parts []mergePart, maxRows int) *Response {
	probeMerge.Hit()
	out := &Response{StatusCode: 200}

	keyed := len(parts) > 0
	for _, p := range parts {
		if len(p.resp.RowKeys) != len(p.resp.Rows) {
			keyed = false
		}
	}

	type keyedRow struct {
		key string
		row json.RawMessage
		ord int // part index: stable winner for duplicate keys
	}
	var rows []keyedRow
	for i, p := range parts {
		r := p.resp
		if out.Columns == nil && r.Columns != nil {
			out.Columns = r.Columns
		}
		if out.Algorithm == "" {
			out.Algorithm = r.Algorithm
		}
		out.RowCount += r.RowCount
		out.TimedOut = out.TimedOut || r.TimedOut
		out.Truncated = out.Truncated || r.Truncated
		out.RowsTruncated = out.RowsTruncated || r.RowsTruncated
		// Per-phase timings of a scatter are the slowest shard's (they ran
		// concurrently), not the sum.
		out.TimingsMS.BGP = maxf(out.TimingsMS.BGP, r.TimingsMS.BGP)
		out.TimingsMS.CTP = maxf(out.TimingsMS.CTP, r.TimingsMS.CTP)
		out.TimingsMS.Join = maxf(out.TimingsMS.Join, r.TimingsMS.Join)
		out.TimingsMS.Total = maxf(out.TimingsMS.Total, r.TimingsMS.Total)
		for j, row := range r.Rows {
			kr := keyedRow{row: row, ord: i}
			if keyed {
				kr.key = r.RowKeys[j]
			}
			rows = append(rows, kr)
		}
	}

	if keyed {
		sort.SliceStable(rows, func(a, b int) bool {
			if rows[a].key != rows[b].key {
				return rows[a].key < rows[b].key
			}
			return rows[a].ord < rows[b].ord
		})
		// Replicated rows appear under identical keys; keep the first.
		dedup := rows[:0]
		for i, kr := range rows {
			if i > 0 && kr.key == rows[i-1].key {
				out.RowCount--
				continue
			}
			dedup = append(dedup, kr)
		}
		rows = dedup
	}

	if maxRows > 0 && len(rows) > maxRows {
		rows = rows[:maxRows]
		out.RowsTruncated = true
	}
	out.Rows = make([]json.RawMessage, len(rows))
	if keyed {
		out.RowKeys = make([]string, len(rows))
	}
	for i, kr := range rows {
		out.Rows[i] = kr.row
		if keyed {
			out.RowKeys[i] = kr.key
		}
	}
	return out
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
