package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"ctpquery/internal/obs"
)

// tracingTransport wraps a scripted backend and records the span
// context each Send observed in its context — the value setTraceparent
// stamps on the wire for the real transports.
type tracingTransport struct {
	name string
	fn   func(n int, req *Request) (*Response, error)

	mu    sync.Mutex
	sends int
	seen  []obs.SpanContext
}

func (f *tracingTransport) Target() string { return f.name }

func (f *tracingTransport) Send(ctx context.Context, req *Request) (*Response, error) {
	f.mu.Lock()
	f.sends++
	n := f.sends
	if sp := obs.FromContext(ctx); sp != nil {
		f.seen = append(f.seen, sp.Context())
	}
	f.mu.Unlock()
	return f.fn(n, req)
}

func (f *tracingTransport) Probe(context.Context) (HealthReport, error) {
	return HealthReport{Status: "ok", StatusCode: 200}, nil
}

func (f *tracingTransport) seenContexts() []obs.SpanContext {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]obs.SpanContext(nil), f.seen...)
}

func postGather(t *testing.T, url, query string) (int, map[string]json.RawMessage) {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"query": query})
	resp, err := http.Post(url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// TestGatherTracePropagation: a gather through the HTTP handler yields
// one trace whose send spans are exactly the contexts the transports
// saw — the IDs a real wire transport would propagate to the shards.
func TestGatherTracePropagation(t *testing.T) {
	a := &tracingTransport{name: "a", fn: alwaysOK("k1")}
	b := &tracingTransport{name: "b", fn: alwaysOK("k2")}
	c, err := New(fastConfig(), []Group{
		{Name: "g0", Members: []Transport{a}},
		{Name: "g1", Members: []Transport{b}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	code, out := postGather(t, ts.URL, "q")
	if code != http.StatusOK {
		t.Fatalf("gather answered %d", code)
	}
	var traceID string
	if err := json.Unmarshal(out["trace_id"], &traceID); err != nil || traceID == "" {
		t.Fatalf("gather response trace_id missing (%v)", err)
	}

	trace := c.Tracer().Trace(traceID)
	if trace == nil {
		t.Fatalf("trace %s not in the flight recorder", traceID)
	}
	if msg := trace.WellFormed(); msg != "" {
		t.Fatalf("trace malformed: %s", msg)
	}
	if trace.Root != "gather" {
		t.Fatalf("root span %q, want gather", trace.Root)
	}
	sendIDs := map[string]bool{}
	groups := 0
	for _, sp := range trace.Spans {
		switch sp.Name {
		case "send":
			sendIDs[sp.SpanID] = true
		case "group":
			groups++
		}
	}
	if groups != 2 || len(sendIDs) != 2 {
		t.Fatalf("trace has %d group and %d send spans, want 2 and 2", groups, len(sendIDs))
	}
	for _, tr := range []*tracingTransport{a, b} {
		seen := tr.seenContexts()
		if len(seen) != 1 {
			t.Fatalf("transport %s saw %d traced sends, want 1", tr.name, len(seen))
		}
		if hexID := seen[0].TraceID; trace.TraceID != hex16(hexID) {
			t.Fatalf("transport %s saw trace %016x, want %s", tr.name, hexID, trace.TraceID)
		}
		if !sendIDs[hex16(seen[0].SpanID)] {
			t.Fatalf("transport %s saw span %016x, not one of the trace's send spans", tr.name, seen[0].SpanID)
		}
	}
}

// hex16 mirrors the obs package's span-ID rendering for assertions.
func hex16(v uint64) string {
	const digits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = digits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

// TestCoordinatorMetricsAndStats: /metrics parses as strict Prometheus
// text, its counters agree with /stats (same snapshot discipline), and
// the breaker-transition counter observes a closed→open trip.
func TestCoordinatorMetricsAndStats(t *testing.T) {
	flaky := &tracingTransport{name: "flaky", fn: alwaysFail()}
	ok := &tracingTransport{name: "ok", fn: alwaysOK("k1")}
	cfg := fastConfig()
	cfg.BreakerThreshold = 2
	c, err := New(cfg, []Group{{Name: "g0", Members: []Transport{flaky, ok}}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	// Enough gathers to trip the flaky member's breaker (threshold 2);
	// the replica keeps every gather 200.
	for i := 0; i < 4; i++ {
		if code, _ := postGather(t, ts.URL, "q"); code != http.StatusOK {
			t.Fatalf("gather %d answered %d", i, code)
		}
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	fams, err := obs.ParseExposition(mresp.Body)
	if err != nil {
		t.Fatalf("/metrics does not parse: %v", err)
	}

	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var stats struct {
		Queries float64 `json:"queries"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}

	fam := obs.Find(fams, "ctpcoord_queries_total")
	if fam == nil {
		t.Fatal("ctpcoord_queries_total missing from /metrics")
	}
	if v, ok := fam.Value("ctpcoord_queries_total", nil); !ok || v != stats.Queries {
		t.Fatalf("/metrics queries %v (ok=%v) != /stats queries %v", v, ok, stats.Queries)
	}
	if fam := obs.Find(fams, "ctpcoord_gather_duration_seconds"); fam == nil {
		t.Fatal("ctpcoord_gather_duration_seconds missing from /metrics")
	}
	tfam := obs.Find(fams, "ctpcoord_breaker_transitions_total")
	if tfam == nil {
		t.Fatal("ctpcoord_breaker_transitions_total missing from /metrics")
	}
	v, okv := tfam.Value("ctpcoord_breaker_transitions_total",
		map[string]string{"from": "closed", "to": "open"})
	if !okv || v < 1 {
		t.Fatalf("closed→open breaker transition not counted (got %v, ok=%v)", v, okv)
	}
}

// TestGatherTracingDisabled: TraceOff keeps the response free of trace
// IDs and records nothing.
func TestGatherTracingDisabled(t *testing.T) {
	a := &tracingTransport{name: "a", fn: alwaysOK("k1")}
	cfg := fastConfig()
	cfg.TraceOff = true
	c, err := New(cfg, []Group{{Name: "g0", Members: []Transport{a}}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	code, out := postGather(t, ts.URL, "q")
	if code != http.StatusOK {
		t.Fatalf("gather answered %d", code)
	}
	if raw, present := out["trace_id"]; present {
		t.Fatalf("tracing disabled yet response carries trace_id %s", raw)
	}
	if got := len(c.Tracer().Traces()); got != 0 {
		t.Fatalf("tracing disabled yet %d traces recorded", got)
	}
	if len(a.seenContexts()) != 0 {
		t.Fatal("tracing disabled yet a send carried a span context")
	}
}
