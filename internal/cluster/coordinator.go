package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ctpquery/internal/obs"
)

// Config tunes a Coordinator. Zero values take the documented defaults.
type Config struct {
	// ProbeInterval is the background health sweep period (default 2s).
	ProbeInterval time.Duration
	// ProbeTimeout caps one /healthz probe (default 1s).
	ProbeTimeout time.Duration
	// DefaultTimeout is the whole-gather budget when the client request
	// names no timeout_ms (default 10s).
	DefaultTimeout time.Duration
	// ShardTimeout caps one shard attempt; 0 lets an attempt use the
	// whole remaining gather budget. Setting it below the gather budget
	// is what lets retries and hedges fire before the budget is gone.
	ShardTimeout time.Duration
	// HedgeAfter launches a second request to another replica when the
	// primary hasn't answered within this duration; 0 disables hedging.
	HedgeAfter time.Duration
	// MaxAttempts bounds attempts per group, hedges included
	// (default: number of members + 1, floored at 2).
	MaxAttempts int
	// RetryBase/RetryMax shape the capped exponential backoff (with
	// ±25% jitter) between retry rounds once every member has been
	// tried (defaults 25ms / 1s). Queries are idempotent reads, so
	// retrying against a replica is always safe.
	RetryBase time.Duration
	RetryMax  time.Duration
	// BreakerThreshold consecutive failures open a shard's breaker
	// (default 3); BreakerCooldown is its open hold-time before a
	// half-open probe is admitted (default 3s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// DrainGrace sizes the Retry-After on 503s the coordinator sends
	// while draining (default 5s), mirroring ctpserve's -drain-grace.
	DrainGrace time.Duration
	// TraceOff disables the coordinator's flight recorder; every span
	// call degrades to one atomic load.
	TraceOff bool
	// TraceRing sizes the completed-gather trace ring (default 256).
	TraceRing int
	// SlowQuery logs gathers slower than this and pins their traces in
	// the slow ring; 0 disables the slow log.
	SlowQuery time.Duration
	// TraceLogf receives slow-gather log lines; nil uses log.Printf.
	TraceLogf func(format string, args ...any)
}

func (cfg Config) withDefaults(maxMembers int) Config {
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 2 * time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = time.Second
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 10 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = maxMembers + 1
		if cfg.MaxAttempts < 2 {
			cfg.MaxAttempts = 2
		}
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 25 * time.Millisecond
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = time.Second
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 3 * time.Second
	}
	if cfg.DrainGrace <= 0 {
		cfg.DrainGrace = 5 * time.Second
	}
	return cfg
}

// Group declares one routing group: Members are replicas of the same
// data slice; distinct groups partition the data and are all scattered.
type Group struct {
	Name    string
	Members []Transport
}

// errNoRoutable means every member of a group was draining or
// breaker-open when the gather tried to route.
var errNoRoutable = errors.New("no routable shard in group")

// Coordinator scatter-gathers queries across shard groups.
type Coordinator struct {
	cfg        Config
	groupNames []string
	groups     [][]*Shard
	rr         []atomic.Int64 // per-group rotation cursor

	probeWG sync.WaitGroup

	tracer *obs.Tracer
	reg    *obs.Registry
	met    *coordMetrics

	started   time.Time
	queries   atomic.Int64
	degraded  atomic.Int64 // 200s carrying a degraded block
	failed    atomic.Int64 // gathers with zero answering groups
	hedges    atomic.Int64
	hedgeWins atomic.Int64
	retries   atomic.Int64
	probes    atomic.Int64
	panics    atomic.Int64
	draining  atomic.Bool
}

// New builds a Coordinator over the given groups.
func New(cfg Config, groups []Group) (*Coordinator, error) {
	if len(groups) == 0 {
		return nil, errors.New("cluster: no groups")
	}
	maxMembers := 0
	for _, g := range groups {
		if len(g.Members) > maxMembers {
			maxMembers = len(g.Members)
		}
	}
	cfg = cfg.withDefaults(maxMembers)
	c := &Coordinator{
		cfg:     cfg,
		rr:      make([]atomic.Int64, len(groups)),
		started: time.Now(),
	}
	c.tracer = obs.NewTracer(obs.TraceConfig{
		Disabled:  cfg.TraceOff,
		RingSize:  cfg.TraceRing,
		SlowQuery: cfg.SlowQuery,
		Logf:      cfg.TraceLogf,
	})
	c.reg = obs.NewRegistry()
	c.met = newCoordMetrics(c.reg)
	seen := make(map[string]bool)
	for i, g := range groups {
		name := g.Name
		if name == "" {
			name = fmt.Sprintf("g%d", i)
		}
		if seen[name] {
			return nil, fmt.Errorf("cluster: duplicate group name %q", name)
		}
		seen[name] = true
		if len(g.Members) == 0 {
			return nil, fmt.Errorf("cluster: group %q has no members", name)
		}
		shards := make([]*Shard, len(g.Members))
		for j, tr := range g.Members {
			shards[j] = newShard(name, tr, cfg.BreakerThreshold, cfg.BreakerCooldown)
			// Breaker edges feed the transition counter; the hook runs
			// under the breaker lock, so it must stay this small.
			shards[j].br.onTransition = func(from, to BreakerState) {
				c.met.breakerTransitions.With(from.String(), to.String()).Inc()
			}
		}
		c.groupNames = append(c.groupNames, name)
		c.groups = append(c.groups, shards)
	}
	c.registerCollectors()
	return c, nil
}

// Shards returns the coordinator's shards, grouped (read-side: tests).
func (c *Coordinator) Shards() [][]*Shard { return c.groups }

// SetDraining flips the coordinator to refuse new queries with 503 +
// Retry-After so its own load balancer rotates it out; irreversible,
// matching the shard-side contract.
func (c *Coordinator) SetDraining() { c.draining.Store(true) }

// Degraded names the shard groups a gather could not reach; the rows
// are complete for every group not listed.
type Degraded struct {
	MissingShards []string `json:"missing_shards"`
	Reason        string   `json:"reason"`
}

// GatherInfo is the per-gather cluster report.
type GatherInfo struct {
	Groups   int           `json:"groups"`
	GroupsOK int           `json:"groups_ok"`
	Merged   bool          `json:"merged"`
	Hedges   int           `json:"hedges,omitempty"`
	Retries  int           `json:"retries,omitempty"`
	Attempts []attemptInfo `json:"attempts,omitempty"`
}

type attemptInfo struct {
	Shard     string  `json:"shard"`
	Status    int     `json:"status,omitempty"`
	Hedge     bool    `json:"hedge,omitempty"`
	LatencyMS float64 `json:"latency_ms"`
	Error     string  `json:"error,omitempty"`
}

// GatherResponse is the coordinator's answer to one query: the merged
// shard Response plus the cluster report and, on partial coverage, the
// structured degraded block.
type GatherResponse struct {
	StatusCode int `json:"-"`
	*Response
	Degraded *Degraded   `json:"degraded,omitempty"`
	Cluster  *GatherInfo `json:"cluster,omitempty"`
	// TraceID is the coordinator's gather trace. It shadows the embedded
	// shard Response.TraceID in the JSON answer (shallower field wins),
	// which is by design: under propagation both hold the same ID.
	TraceID string `json:"trace_id,omitempty"`
}

// Gather executes one request across every group and merges the
// answers. It never returns nil; total outage comes back as a 503
// GatherResponse whose Degraded block lists every group.
func (c *Coordinator) Gather(ctx context.Context, req *Request) *GatherResponse {
	c.queries.Add(1)
	if _, ok := ctx.Deadline(); !ok {
		budget := c.cfg.DefaultTimeout
		if req.TimeoutMS > 0 {
			// The shard-side engine budget plus headroom for transport,
			// retries, and the merge.
			budget = time.Duration(req.TimeoutMS)*time.Millisecond + 500*time.Millisecond
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, budget)
		defer cancel()
	}

	multi := len(c.groups) > 1
	sreq := *req
	if multi {
		// The merge needs the canonical keys even if the client didn't
		// ask; they are stripped again below.
		sreq.IncludeKeys = true
	}

	type groupResult struct {
		resp *Response
		atts []attemptInfo
		err  error
	}
	results := make([]groupResult, len(c.groups))
	var wg sync.WaitGroup
	for i := range c.groups {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			gsp := obs.FromContext(ctx).Child("group")
			gsp.Attr("group", c.groupNames[i])
			resp, atts, err := c.queryGroup(obs.With(ctx, gsp), i, &sreq)
			gsp.AttrInt("attempts", int64(len(atts)))
			if err != nil {
				gsp.Error(err)
			}
			gsp.End()
			results[i] = groupResult{resp, atts, err}
		}(i)
	}
	wg.Wait()

	info := &GatherInfo{Groups: len(c.groups)}
	var parts []mergePart
	var missing, reasons []string
	for i, r := range results {
		info.Attempts = append(info.Attempts, r.atts...)
		for _, a := range r.atts {
			if a.Hedge {
				info.Hedges++
			}
		}
		if len(r.atts) > 1 {
			info.Retries += len(r.atts) - 1
		}
		if r.err != nil {
			missing = append(missing, c.groupNames[i])
			reasons = append(reasons, fmt.Sprintf("%s: %v", c.groupNames[i], r.err))
			continue
		}
		if r.resp.StatusCode >= 400 {
			// A caller error (bad query) is the same everywhere — pass the
			// first shard's verdict through untouched.
			return &GatherResponse{StatusCode: r.resp.StatusCode, Response: r.resp, Cluster: info}
		}
		info.GroupsOK++
		parts = append(parts, mergePart{group: c.groupNames[i], resp: r.resp})
	}

	if len(parts) == 0 {
		c.failed.Add(1)
		return &GatherResponse{
			StatusCode: http.StatusServiceUnavailable,
			Response:   &Response{Error: "cluster: no shard group answered"},
			Degraded:   &Degraded{MissingShards: missing, Reason: strings.Join(reasons, "; ")},
			Cluster:    info,
		}
	}

	var resp *Response
	if multi {
		resp = mergeResponses(parts, req.MaxRows)
		info.Merged = true
	} else {
		// Replica pass-through: the answer is byte-identical to what the
		// single surviving shard produced.
		resp = parts[0].resp
	}
	if !req.IncludeKeys {
		resp.RowKeys = nil
	}
	gr := &GatherResponse{StatusCode: http.StatusOK, Response: resp, Cluster: info}
	if len(missing) > 0 {
		c.degraded.Add(1)
		gr.Degraded = &Degraded{MissingShards: missing, Reason: strings.Join(reasons, "; ")}
	}
	return gr
}

// candidates returns the group's members in routing order: healthy
// first (rotated round-robin so replicas share load), then unknown,
// degraded, and down as a last resort. Draining members are excluded —
// they are being drained from rotation, not failed over to.
func (c *Coordinator) candidates(gi int) []*Shard {
	group := c.groups[gi]
	rot := int(c.rr[gi].Add(1))
	byRank := make([][]*Shard, 4)
	for i := range group {
		sh := group[(i+rot)%len(group)]
		h := sh.Health()
		if h == ShardDraining {
			continue
		}
		r := h.routeRank()
		byRank[r] = append(byRank[r], sh)
	}
	var out []*Shard
	for _, bucket := range byRank {
		out = append(out, bucket...)
	}
	return out
}

// queryGroup routes one request inside a group: walk the candidates in
// health order, skip breaker-open members, hedge stragglers, and back
// off (capped exponential + jitter, honoring Retry-After) between
// rounds once everyone has been tried.
func (c *Coordinator) queryGroup(ctx context.Context, gi int, req *Request) (*Response, []attemptInfo, error) {
	var atts []attemptInfo
	var lastErr error
	attempts := 0
	retryAfterS := 0
	for round := 0; ; round++ {
		cands := c.candidates(gi)
		if len(cands) == 0 {
			if lastErr == nil {
				lastErr = errNoRoutable
			}
			return nil, atts, lastErr
		}
		admitted := false
		for i, sh := range cands {
			if attempts >= c.cfg.MaxAttempts {
				return nil, atts, lastErr
			}
			if err := ctx.Err(); err != nil {
				return nil, atts, err
			}
			if sh.Health() == ShardDraining || !sh.br.Allow() {
				continue
			}
			admitted = true
			if attempts > 0 {
				c.retries.Add(1)
			}
			// Hedge partner: the next breaker-admitted candidate after this
			// one, resolved lazily when the hedge timer actually fires.
			rest := cands[i+1:]
			nextAlt := func() *Shard {
				for _, alt := range rest {
					if alt.Health() != ShardDraining && alt.br.Allow() {
						return alt
					}
				}
				return nil
			}
			resp, raceAtts, launched, err := c.raceAttempt(ctx, sh, nextAlt, req)
			atts = append(atts, raceAtts...)
			attempts += launched
			if err == nil {
				return resp, atts, nil
			}
			lastErr = err
			var se *SendError
			if errors.As(err, &se) && se.RetryAfterS > retryAfterS {
				retryAfterS = se.RetryAfterS
			}
			if ctx.Err() != nil {
				return nil, atts, lastErr
			}
		}
		if !admitted {
			if lastErr == nil {
				lastErr = errNoRoutable
			}
			return nil, atts, lastErr
		}
		if attempts >= c.cfg.MaxAttempts {
			return nil, atts, lastErr
		}
		// Everyone routable has been tried this round; wait before the
		// next sweep.
		select {
		case <-ctx.Done():
			return nil, atts, ctx.Err()
		case <-time.After(c.backoff(round, retryAfterS)):
		}
		retryAfterS = 0
	}
}

// backoff computes the wait before retry round `round`: capped
// exponential with ±25% jitter, floored at any Retry-After a shard
// asked for (itself capped at RetryMax — a gather deadline cannot honor
// multi-second holds).
func (c *Coordinator) backoff(round int, retryAfterS int) time.Duration {
	d := c.cfg.RetryBase
	for i := 0; i < round && d < c.cfg.RetryMax; i++ {
		d *= 2
	}
	if d > c.cfg.RetryMax {
		d = c.cfg.RetryMax
	}
	if ra := time.Duration(retryAfterS) * time.Second; ra > d {
		d = ra
		if d > c.cfg.RetryMax {
			d = c.cfg.RetryMax
		}
	}
	if j := int64(d / 4); j > 0 {
		d += time.Duration(rand.Int63n(2*j) - j)
	}
	return d
}

// raceAttempt runs one admitted attempt, hedging to nextAlt() if the
// primary is still silent after HedgeAfter. First success wins and
// cancels the loser; a cancelled loser is charged to nobody's breaker.
func (c *Coordinator) raceAttempt(ctx context.Context, primary *Shard, nextAlt func() *Shard, req *Request) (*Response, []attemptInfo, int, error) {
	actx, cancel := context.WithCancel(ctx)
	defer cancel()

	type outcome struct {
		sh    *Shard
		hedge bool
		resp  *Response
		err   error
		lat   time.Duration
	}
	ch := make(chan outcome, 2) // buffered: late losers must not block
	launch := func(sh *Shard, hedge bool) {
		// The send span is created before the goroutine so its start
		// order under the group span is deterministic; its ID rides the
		// Traceparent header (setTraceparent reads it from sctx), which
		// is what makes the shard's root span this span's child. A hedge
		// loser that outlives the gather ends after trace finalize and is
		// dropped-but-counted by the tracer — that's the contract.
		ssp := obs.FromContext(actx).Child("send")
		ssp.Attr("shard", sh.name)
		if hedge {
			ssp.AttrBool("hedge", true)
		}
		sctx := obs.With(actx, ssp)
		go func() {
			start := time.Now()
			resp, err := sh.query(sctx, req, c.cfg.ShardTimeout)
			if err != nil {
				ssp.Error(err)
				ssp.Attr("breaker", sh.br.State().String())
			} else {
				ssp.AttrInt("status", int64(resp.StatusCode))
			}
			ssp.End()
			ch <- outcome{sh, hedge, resp, err, time.Since(start)}
		}()
	}
	launch(primary, false)
	launched := 1

	var hedgeC <-chan time.Time
	if c.cfg.HedgeAfter > 0 {
		timer := time.NewTimer(c.cfg.HedgeAfter)
		defer timer.Stop()
		hedgeC = timer.C
	}

	var atts []attemptInfo
	var firstErr error
	for done := 0; done < launched; {
		select {
		case o := <-ch:
			done++
			ai := attemptInfo{Shard: o.sh.name, Hedge: o.hedge, LatencyMS: ms(o.lat)}
			if o.err != nil {
				ai.Error = o.err.Error()
				var se *SendError
				if errors.As(o.err, &se) {
					ai.Status = se.Status
				}
				atts = append(atts, ai)
				if firstErr == nil {
					firstErr = o.err
				}
				continue
			}
			ai.Status = o.resp.StatusCode
			atts = append(atts, ai)
			if o.hedge {
				c.hedgeWins.Add(1)
			}
			return o.resp, atts, launched, nil
		case <-hedgeC:
			hedgeC = nil
			if alt := nextAlt(); alt != nil {
				alt.hedges.Add(1)
				c.hedges.Add(1)
				launch(alt, true)
				launched++
			}
		case <-ctx.Done():
			return nil, atts, launched, ctx.Err()
		}
	}
	return nil, atts, launched, firstErr
}

// ---- HTTP surface ----

// Handler returns the coordinator's HTTP mux: POST /query,
// GET /healthz, GET /stats — the same surface as a single shard, so a
// client cannot tell a coordinator from a ctpserve instance. Panics
// (including injected cluster.gather.merge faults) are contained per
// request.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", c.handleQuery)
	mux.HandleFunc("/healthz", c.handleHealth)
	mux.HandleFunc("/stats", c.handleStats)
	mux.HandleFunc("/metrics", c.reg.ServeMetrics)
	mux.HandleFunc("/debug/traces", c.tracer.ServeTraces)
	return c.recoverMiddleware(mux)
}

func (c *Coordinator) recoverMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				c.panics.Add(1)
				writeJSON(w, http.StatusInternalServerError,
					map[string]string{"error": fmt.Sprintf("internal error: %v", rec)})
			}
		}()
		next.ServeHTTP(w, r)
	})
}

func (c *Coordinator) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "POST only"})
		return
	}
	if c.draining.Load() {
		retry := int((c.cfg.DrainGrace + time.Second - 1) / time.Second)
		if retry < 1 {
			retry = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]any{"error": "draining: coordinator is shutting down", "retry_after_s": retry})
		return
	}
	var req Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request body: " + err.Error()})
		return
	}
	if strings.TrimSpace(req.Query) == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "empty query"})
		return
	}
	// The gather's root span; an incoming Traceparent (a client or an
	// upper tier propagating its own trace) makes this a child of the
	// caller's trace instead of a new root.
	var parent obs.SpanContext
	if hdr := r.Header.Get(obs.TraceHeader); hdr != "" {
		parent, _ = obs.ParseTraceparent(hdr)
	}
	sp := c.tracer.Start("gather", parent)
	start := time.Now()
	gr := c.Gather(obs.With(r.Context(), sp), &req)
	sp.AttrInt("groups", int64(len(c.groups)))
	if gr.Cluster != nil {
		sp.AttrInt("groups_ok", int64(gr.Cluster.GroupsOK))
		sp.AttrBool("merged", gr.Cluster.Merged)
	}
	outcome := gatherOutcome(gr)
	if outcome != "ok" {
		sp.Status(outcome)
	}
	gr.TraceID = sp.TraceID()
	sp.End()
	c.met.gatherDur.With(outcome).Observe(time.Since(start).Seconds())
	if gr.StatusCode == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, gr.StatusCode, gr)
}

func (c *Coordinator) handleHealth(w http.ResponseWriter, _ *http.Request) {
	status, code := c.clusterHealth()
	if code == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, code, map[string]string{"status": status})
}

// clusterHealth folds shard colors up to the coordinator's own 3-state
// /healthz: ok when every group has a healthy routable member, degraded
// when coverage is partial or limping, draining/down as 503.
func (c *Coordinator) clusterHealth() (string, int) {
	if c.draining.Load() {
		return "draining", http.StatusServiceUnavailable
	}
	covered, healthy := 0, 0
	for _, group := range c.groups {
		bestRank := -1
		for _, sh := range group {
			h := sh.Health()
			if h == ShardDraining || sh.br.State() == BreakerOpen || h == ShardDown {
				continue
			}
			if r := h.routeRank(); bestRank < 0 || r < bestRank {
				bestRank = r
			}
		}
		if bestRank >= 0 {
			covered++
			if bestRank <= ShardUnknown.routeRank() {
				healthy++
			}
		}
	}
	switch {
	case covered == 0:
		return "down", http.StatusServiceUnavailable
	case covered < len(c.groups) || healthy < len(c.groups):
		return "degraded", http.StatusOK
	default:
		return "ok", http.StatusOK
	}
}

func (c *Coordinator) handleStats(w http.ResponseWriter, _ *http.Request) {
	// One consistent snapshot, shared with the /metrics collector, so
	// the two surfaces can't disagree on the same counter mid-traffic.
	snap := c.snapshot()
	writeJSON(w, http.StatusOK, map[string]any{
		"uptime_s":         snap.uptimeS,
		"health":           snap.health,
		"queries":          snap.queries,
		"degraded_gathers": snap.degraded,
		"failed_gathers":   snap.failed,
		"hedges":           snap.hedges,
		"hedge_wins":       snap.hedgeW,
		"retries":          snap.retries,
		"health_probes":    snap.probes,
		"panics_contained": snap.panics,
		"groups":           snap.groups,
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
