package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeTransport scripts a backend: fn decides each send by its ordinal.
type fakeTransport struct {
	name   string
	health string // /healthz status it reports

	mu    sync.Mutex
	sends int
	fn    func(n int, req *Request) (*Response, error)
}

func (f *fakeTransport) Target() string { return f.name }

func (f *fakeTransport) Send(_ context.Context, req *Request) (*Response, error) {
	f.mu.Lock()
	f.sends++
	n := f.sends
	fn := f.fn
	f.mu.Unlock()
	return fn(n, req)
}

func (f *fakeTransport) Probe(context.Context) (HealthReport, error) {
	if f.health == "" {
		return HealthReport{Status: "ok", StatusCode: 200}, nil
	}
	return HealthReport{Status: f.health, StatusCode: 200}, nil
}

func (f *fakeTransport) sentCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.sends
}

// okResponse fabricates a keyed 200 answer.
func okResponse(keys ...string) *Response {
	r := &Response{StatusCode: 200, Columns: []string{"?w"}, RowCount: len(keys)}
	for _, k := range keys {
		r.RowKeys = append(r.RowKeys, k)
		r.Rows = append(r.Rows, json.RawMessage(fmt.Sprintf(`["row-%s"]`, k)))
	}
	return r
}

func alwaysOK(keys ...string) func(int, *Request) (*Response, error) {
	return func(int, *Request) (*Response, error) { return okResponse(keys...), nil }
}

func alwaysFail() func(int, *Request) (*Response, error) {
	return func(int, *Request) (*Response, error) { return nil, fmt.Errorf("boom") }
}

// fastConfig keeps retries and probes snappy for unit tests. The
// gather budget is deliberately generous: chaosQuery takes ~8s under
// the race detector on a 1-core runner, and a budget in that range
// turns every chaos assertion into a race between two nearly equal
// timers (the shard's deadline truncation vs the gather context).
// Fail-fast fake transports never wait on this budget, and the tests
// that exercise timeout clamping set their own TimeoutMS.
func fastConfig() Config {
	return Config{
		ProbeInterval:  10 * time.Millisecond,
		ProbeTimeout:   time.Second,
		DefaultTimeout: 60 * time.Second,
		RetryBase:      time.Millisecond,
		RetryMax:       5 * time.Millisecond,
	}
}

func TestBreakerTransitions(t *testing.T) {
	b := newBreaker(3, time.Second)
	now := time.Unix(0, 0)
	b.now = func() time.Time { return now }

	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused request %d", i)
		}
		b.Report(false)
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("after 2 failures (threshold 3): state %v, want closed", got)
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused third request")
	}
	b.Report(false)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("after 3 consecutive failures: state %v, want open", got)
	}
	if b.Allow() {
		t.Fatal("open breaker admitted during cooldown")
	}

	now = now.Add(2 * time.Second) // cooldown elapsed
	if !b.Allow() {
		t.Fatal("breaker refused the half-open probe after cooldown")
	}
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("post-cooldown state %v, want half-open", got)
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	b.Report(false) // failed probe
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("after failed probe: state %v, want open", got)
	}
	if got := b.Opens(); got != 2 {
		t.Fatalf("opens = %d, want 2", got)
	}

	now = now.Add(2 * time.Second)
	if !b.Allow() {
		t.Fatal("breaker refused the second half-open probe")
	}
	b.Report(true) // successful probe closes
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("after successful probe: state %v, want closed", got)
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused after recovery")
	}
}

func TestBreakerCancelledProbeReleasesSlot(t *testing.T) {
	b := newBreaker(1, time.Second)
	now := time.Unix(0, 0)
	b.now = func() time.Time { return now }

	b.Allow()
	b.Report(false) // trip
	now = now.Add(2 * time.Second)
	if !b.Allow() {
		t.Fatal("no half-open probe admitted")
	}
	b.Cancelled() // probe abandoned, not failed
	if !b.Allow() {
		t.Fatal("cancelled probe did not release the half-open slot")
	}
}

func TestMergeDeterministicAcrossArrivalOrder(t *testing.T) {
	a := okResponse("0100:a", "0300:c")
	b := okResponse("0200:b", "0300:c", "0400:d") // "0300:c" duplicated across parts

	forward := mergeResponses([]mergePart{{"g0", a}, {"g1", b}}, 0)
	a2 := okResponse("0100:a", "0300:c")
	b2 := okResponse("0200:b", "0300:c", "0400:d")
	reversed := mergeResponses([]mergePart{{"g1", b2}, {"g0", a2}}, 0)

	wantKeys := []string{"0100:a", "0200:b", "0300:c", "0400:d"}
	for name, got := range map[string]*Response{"forward": forward, "reversed": reversed} {
		if len(got.Rows) != len(wantKeys) {
			t.Fatalf("%s: %d rows, want %d", name, len(got.Rows), len(wantKeys))
		}
		for i, k := range wantKeys {
			if got.RowKeys[i] != k {
				t.Fatalf("%s: key[%d] = %q, want %q", name, i, got.RowKeys[i], k)
			}
		}
		if got.RowCount != 4 {
			t.Fatalf("%s: row_count = %d, want 4 (dedup of the replicated key)", name, got.RowCount)
		}
	}
	for i := range forward.Rows {
		if string(forward.Rows[i]) != string(reversed.Rows[i]) {
			t.Fatalf("row %d differs between arrival orders: %s vs %s",
				i, forward.Rows[i], reversed.Rows[i])
		}
	}
}

func TestMergeMaxRowsTrims(t *testing.T) {
	a := okResponse("01", "03")
	b := okResponse("02", "04")
	got := mergeResponses([]mergePart{{"g0", a}, {"g1", b}}, 3)
	if len(got.Rows) != 3 || !got.RowsTruncated {
		t.Fatalf("rows=%d truncated=%v, want 3/true", len(got.Rows), got.RowsTruncated)
	}
	if got.RowCount != 4 {
		t.Fatalf("row_count = %d, want 4 (full result size survives the trim)", got.RowCount)
	}
}

func TestMergeWithoutKeysConcatenates(t *testing.T) {
	a := &Response{StatusCode: 200, Rows: []json.RawMessage{json.RawMessage(`["x"]`)}, RowCount: 1}
	b := &Response{StatusCode: 200, Rows: []json.RawMessage{json.RawMessage(`["y"]`)}, RowCount: 1}
	got := mergeResponses([]mergePart{{"g0", a}, {"g1", b}}, 0)
	if len(got.Rows) != 2 || got.RowKeys != nil {
		t.Fatalf("keyless merge: rows=%d keys=%v, want 2 rows and no keys", len(got.Rows), got.RowKeys)
	}
}

func TestCandidatesHealthOrderExcludesDraining(t *testing.T) {
	members := []Transport{
		&fakeTransport{name: "a"}, &fakeTransport{name: "b"},
		&fakeTransport{name: "c"}, &fakeTransport{name: "d"},
	}
	c, err := New(fastConfig(), []Group{{Name: "g0", Members: members}})
	if err != nil {
		t.Fatal(err)
	}
	sh := c.groups[0]
	sh[0].setHealth(ShardDraining)
	sh[1].setHealth(ShardDegraded)
	sh[2].setHealth(ShardOK)
	sh[3].setHealth(ShardDown)

	cands := c.candidates(0)
	if len(cands) != 3 {
		t.Fatalf("%d candidates, want 3 (draining excluded)", len(cands))
	}
	if cands[0] != sh[2] {
		t.Fatalf("first candidate %s (health %v), want the ok shard", cands[0].Name(), cands[0].Health())
	}
	if cands[1] != sh[1] || cands[2] != sh[3] {
		t.Fatalf("order = [%s %s %s], want ok, degraded, down",
			cands[0].Name(), cands[1].Name(), cands[2].Name())
	}
}

func TestGatherFailsOverToReplica(t *testing.T) {
	bad := &fakeTransport{name: "bad", fn: alwaysFail()}
	good := &fakeTransport{name: "good", fn: alwaysOK("01", "02")}
	c, err := New(fastConfig(), []Group{{Name: "g0", Members: []Transport{bad, good}}})
	if err != nil {
		t.Fatal(err)
	}
	gr := c.Gather(context.Background(), &Request{Query: "q"})
	if gr.StatusCode != 200 || gr.Degraded != nil {
		t.Fatalf("status=%d degraded=%+v, want clean 200 via the replica", gr.StatusCode, gr.Degraded)
	}
	if len(gr.Rows) != 2 {
		t.Fatalf("%d rows, want 2", len(gr.Rows))
	}
	if gr.RowKeys != nil {
		t.Fatalf("row_keys leaked to a client that did not ask: %v", gr.RowKeys)
	}
}

func TestGatherPartialResultDegraded(t *testing.T) {
	ok := &fakeTransport{name: "up", fn: alwaysOK("01", "02")}
	dead := &fakeTransport{name: "dead", fn: alwaysFail()}
	cfg := fastConfig()
	cfg.MaxAttempts = 2
	c, err := New(cfg, []Group{
		{Name: "alive", Members: []Transport{ok}},
		{Name: "lost", Members: []Transport{dead}},
	})
	if err != nil {
		t.Fatal(err)
	}
	gr := c.Gather(context.Background(), &Request{Query: "q"})
	if gr.StatusCode != 200 {
		t.Fatalf("status = %d, want 200 with a degraded block", gr.StatusCode)
	}
	if gr.Degraded == nil || len(gr.Degraded.MissingShards) != 1 || gr.Degraded.MissingShards[0] != "lost" {
		t.Fatalf("degraded = %+v, want missing_shards [lost]", gr.Degraded)
	}
	if gr.Degraded.Reason == "" {
		t.Fatal("degraded block carries no reason")
	}
	if len(gr.Rows) != 2 {
		t.Fatalf("%d rows, want the surviving group's 2", len(gr.Rows))
	}
	if !gr.Cluster.Merged || gr.Cluster.GroupsOK != 1 {
		t.Fatalf("cluster info = %+v, want merged with 1 group ok", gr.Cluster)
	}
}

func TestGatherAllGroupsLostIsStructured503(t *testing.T) {
	dead1 := &fakeTransport{name: "d1", fn: alwaysFail()}
	dead2 := &fakeTransport{name: "d2", fn: alwaysFail()}
	cfg := fastConfig()
	cfg.MaxAttempts = 2
	c, err := New(cfg, []Group{
		{Name: "g0", Members: []Transport{dead1}},
		{Name: "g1", Members: []Transport{dead2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	gr := c.Gather(context.Background(), &Request{Query: "q"})
	if gr.StatusCode != 503 {
		t.Fatalf("status = %d, want 503", gr.StatusCode)
	}
	if gr.Degraded == nil || len(gr.Degraded.MissingShards) != 2 {
		t.Fatalf("degraded = %+v, want both groups missing", gr.Degraded)
	}
	if gr.Response.Error == "" {
		t.Fatal("503 carries no structured error")
	}
}

func TestGatherPassesCallerErrorThrough(t *testing.T) {
	bad := &fakeTransport{name: "s", fn: func(int, *Request) (*Response, error) {
		return &Response{StatusCode: 400, Error: "parse error: bogus"}, nil
	}}
	c, err := New(fastConfig(), []Group{{Name: "g0", Members: []Transport{bad}}})
	if err != nil {
		t.Fatal(err)
	}
	gr := c.Gather(context.Background(), &Request{Query: "bogus"})
	if gr.StatusCode != 400 || gr.Response.Error == "" {
		t.Fatalf("status=%d error=%q, want the shard's 400 passed through", gr.StatusCode, gr.Response.Error)
	}
	if bad.sentCount() != 1 {
		t.Fatalf("caller error retried %d times, want a single attempt", bad.sentCount())
	}
}

func TestHedgeWinsOverStraggler(t *testing.T) {
	slow := &fakeTransport{name: "slow", fn: func(_ int, _ *Request) (*Response, error) {
		time.Sleep(300 * time.Millisecond)
		return okResponse("01"), nil
	}}
	fast := &fakeTransport{name: "fast", fn: alwaysOK("01")}
	cfg := fastConfig()
	cfg.HedgeAfter = 20 * time.Millisecond
	c, err := New(cfg, []Group{{Name: "g0", Members: []Transport{slow, fast}}})
	if err != nil {
		t.Fatal(err)
	}
	// Pin routing: the straggler is the preferred (ok) primary, the fast
	// replica is the deprioritized hedge target.
	c.groups[0][0].setHealth(ShardOK)
	c.groups[0][1].setHealth(ShardDegraded)

	start := time.Now()
	gr := c.Gather(context.Background(), &Request{Query: "q"})
	elapsed := time.Since(start)
	if gr.StatusCode != 200 || len(gr.Rows) != 1 {
		t.Fatalf("status=%d rows=%d, want hedged success", gr.StatusCode, len(gr.Rows))
	}
	if elapsed > 250*time.Millisecond {
		t.Fatalf("gather took %v; the hedge should beat the 300ms straggler", elapsed)
	}
	if got := c.hedges.Load(); got != 1 {
		t.Fatalf("hedges = %d, want 1", got)
	}
	if got := c.hedgeWins.Load(); got != 1 {
		t.Fatalf("hedge_wins = %d, want 1", got)
	}
}

func TestProberColorsShards(t *testing.T) {
	okT := &fakeTransport{name: "a", health: "ok", fn: alwaysOK()}
	degT := &fakeTransport{name: "b", health: "degraded", fn: alwaysOK()}
	drainT := &fakeTransport{name: "c", health: "draining", fn: alwaysOK()}
	c, err := New(fastConfig(), []Group{{Name: "g0", Members: []Transport{okT, degT, drainT}}})
	if err != nil {
		t.Fatal(err)
	}
	stop := c.StartProbing(context.Background())
	defer stop()
	deadline := time.Now().Add(2 * time.Second)
	for {
		sh := c.groups[0]
		if sh[0].Health() == ShardOK && sh[1].Health() == ShardDegraded && sh[2].Health() == ShardDraining {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("prober never converged: %v %v %v", sh[0].Health(), sh[1].Health(), sh[2].Health())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestDeadlinePropagationShrinksShardBudget(t *testing.T) {
	var gotTimeout int64
	tr := &fakeTransport{name: "s"}
	tr.fn = func(_ int, req *Request) (*Response, error) {
		gotTimeout = req.TimeoutMS
		return okResponse("01"), nil
	}
	cfg := fastConfig()
	cfg.ShardTimeout = 100 * time.Millisecond
	c, err := New(cfg, []Group{{Name: "g0", Members: []Transport{tr}}})
	if err != nil {
		t.Fatal(err)
	}
	gr := c.Gather(context.Background(), &Request{Query: "q", TimeoutMS: 60_000})
	if gr.StatusCode != 200 {
		t.Fatalf("status = %d", gr.StatusCode)
	}
	if gotTimeout <= 0 || gotTimeout > 100 {
		t.Fatalf("shard saw timeout_ms=%d, want it shrunk to the 100ms attempt budget", gotTimeout)
	}
}
