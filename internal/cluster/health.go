package cluster

import (
	"context"
	"time"
)

// StartProbing launches the background health prober. It sweeps every
// shard each ProbeInterval, mapping the backend's 3-state /healthz onto
// the routing colors: ok stays preferred, degraded is deprioritized,
// draining leaves rotation, and an unanswerable probe marks the shard
// down. The returned stop cancels the prober and waits for it to exit;
// cancelling pctx stops it too.
func (c *Coordinator) StartProbing(pctx context.Context) (stop func()) {
	ctx, cancel := context.WithCancel(pctx)
	c.probeWG.Add(1)
	go func() {
		defer c.probeWG.Done()
		ticker := time.NewTicker(c.cfg.ProbeInterval)
		defer ticker.Stop()
		// One immediate sweep so a fresh coordinator routes on observed
		// colors, not ShardUnknown guesses.
		c.probeAll(ctx)
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				c.probeAll(ctx)
			}
		}
	}()
	return func() {
		cancel()
		c.probeWG.Wait()
	}
}

// probeAll sweeps the shards once, sequentially — probe fan-out isn't
// worth goroutine churn at the shard counts a coordinator fronts.
func (c *Coordinator) probeAll(ctx context.Context) {
	for _, group := range c.groups {
		for _, sh := range group {
			if ctx.Err() != nil {
				return
			}
			c.probeShard(ctx, sh)
		}
	}
}

// probeShard refreshes one shard's color from its /healthz.
func (c *Coordinator) probeShard(ctx context.Context, sh *Shard) {
	c.probes.Add(1)
	pctx, cancel := context.WithTimeout(ctx, c.cfg.ProbeTimeout)
	defer cancel()
	rep, err := func() (HealthReport, error) {
		if ferr := probeHealth.Err(); ferr != nil {
			return HealthReport{}, ferr
		}
		return sh.tr.Probe(pctx)
	}()
	if err != nil {
		if ctx.Err() != nil {
			return // shutting down, not a verdict on the shard
		}
		sh.setHealth(ShardDown)
		sh.noteError("probe: " + err.Error())
		return
	}
	switch rep.Status {
	case "ok":
		sh.setHealth(ShardOK)
	case "degraded":
		sh.setHealth(ShardDegraded)
	case "draining":
		sh.setHealth(ShardDraining)
	default:
		// An answering /healthz speaking another dialect still proves
		// liveness; treat it as degraded rather than down.
		sh.setHealth(ShardDegraded)
	}
}
