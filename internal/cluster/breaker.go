package cluster

import (
	"sync"
	"time"
)

// BreakerState is the circuit breaker's position.
type BreakerState int32

const (
	// BreakerClosed passes traffic and counts consecutive failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects traffic until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen admits exactly one probe request; its outcome
	// decides between closing and re-opening.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Breaker is a per-shard circuit breaker. It opens after `threshold`
// consecutive failures, rejects for `cooldown`, then half-opens: the
// first Allow after the cooldown is admitted as the probe while
// everything else keeps being rejected. A successful probe closes the
// breaker and returns the shard to rotation; a failed one re-opens it
// for another cooldown.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // test clock

	// onTransition, when set, observes every state change (for the
	// coordinator's transition counter). Called with b.mu held: keep it
	// lock-free and fast — incrementing an atomic counter, nothing more.
	onTransition func(from, to BreakerState)

	mu       sync.Mutex
	state    BreakerState
	fails    int // consecutive failures while closed
	openedAt time.Time
	probing  bool // half-open probe in flight
	opens    int64
}

func newBreaker(threshold int, cooldown time.Duration) *Breaker {
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// Allow reports whether a request may proceed. Every admitted request
// must be answered with exactly one Report call; cancelled attempts
// whose outcome says nothing about the shard report with Cancelled.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.setState(BreakerHalfOpen)
		b.probing = true
		return true
	default: // half-open: one probe at a time
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Report feeds an admitted request's outcome back into the breaker.
func (b *Breaker) Report(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		b.setState(BreakerClosed)
		b.fails = 0
		b.probing = false
		return
	}
	switch b.state {
	case BreakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.trip()
		}
	case BreakerHalfOpen:
		b.trip()
	case BreakerOpen:
		// Straggler from before the trip — already open, nothing to learn.
	}
}

// Cancelled releases an admitted slot whose attempt was abandoned (the
// gather's own deadline or a hedge winner cancelled it) — neither a
// success nor a shard failure.
func (b *Breaker) Cancelled() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.probing = false // let the next Allow retry the probe
	}
}

// trip opens the breaker; callers hold b.mu.
func (b *Breaker) trip() {
	b.setState(BreakerOpen)
	b.openedAt = b.now()
	b.fails = 0
	b.probing = false
	b.opens++
}

// setState moves the breaker and notifies the transition hook; callers
// hold b.mu. A no-op move (Report(true) on an already-closed breaker)
// notifies nobody.
func (b *Breaker) setState(to BreakerState) {
	if b.state == to {
		return
	}
	from := b.state
	b.state = to
	if b.onTransition != nil {
		b.onTransition(from, to)
	}
}

// State returns the current position without advancing it (an elapsed
// cooldown still reads open until an Allow converts it to half-open).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Opens counts how many times the breaker has tripped.
func (b *Breaker) Opens() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
