package cluster

import (
	"net/http"
	"time"

	"ctpquery/internal/obs"
)

// coordMetrics is the coordinator's hot-path instrument set; the
// counter families on /metrics derive from the same snapshot /stats
// renders.
type coordMetrics struct {
	// gatherDur is the end-to-end POST /query latency, by terminal
	// outcome ("ok", "degraded", "failed", "error").
	gatherDur *obs.HistogramVec
	// breakerTransitions counts circuit-breaker state changes by edge,
	// fed by the per-shard transition hook.
	breakerTransitions *obs.CounterVec
}

func newCoordMetrics(reg *obs.Registry) *coordMetrics {
	return &coordMetrics{
		gatherDur: reg.NewHistogramVec("ctpcoord_gather_duration_seconds",
			"End-to-end coordinator query latency by gather outcome.",
			nil, "outcome"),
		breakerTransitions: reg.NewCounterVec("ctpcoord_breaker_transitions_total",
			"Circuit-breaker state transitions by edge.",
			"from", "to"),
	}
}

// groupSnap is one group's shard stats inside a coordSnapshot.
type groupSnap struct {
	Group  string       `json:"group"`
	Shards []shardStats `json:"shards"`
}

// coordSnapshot is one consistent cut of the coordinator counters,
// shared by /stats and the /metrics collector so the two surfaces agree.
type coordSnapshot struct {
	uptimeS  float64
	health   string
	queries  int64
	degraded int64
	failed   int64
	hedges   int64
	hedgeW   int64
	retries  int64
	probes   int64
	panics   int64
	groups   []groupSnap
}

func (c *Coordinator) snapshot() coordSnapshot {
	status, _ := c.clusterHealth()
	snap := coordSnapshot{
		uptimeS:  time.Since(c.started).Seconds(),
		health:   status,
		queries:  c.queries.Load(),
		degraded: c.degraded.Load(),
		failed:   c.failed.Load(),
		hedges:   c.hedges.Load(),
		hedgeW:   c.hedgeWins.Load(),
		retries:  c.retries.Load(),
		probes:   c.probes.Load(),
		panics:   c.panics.Load(),
	}
	for i, g := range c.groups {
		gs := groupSnap{Group: c.groupNames[i]}
		for _, sh := range g {
			gs.Shards = append(gs.Shards, sh.stats())
		}
		snap.groups = append(snap.groups, gs)
	}
	return snap
}

// eachShard walks the snapshot's shards flat, for the per-shard
// metric families.
func (snap coordSnapshot) eachShard(f func(shardStats)) {
	for _, g := range snap.groups {
		for _, s := range g.Shards {
			f(s)
		}
	}
}

// healthValue maps the folded cluster health to a numeric gauge.
func healthValue(status string) float64 {
	switch status {
	case "ok":
		return 0
	case "degraded":
		return 1
	case "draining":
		return 2
	default: // down
		return 3
	}
}

// registerCollectors wires the snapshot-derived families: one Collect
// callback, one snapshot per scrape.
func (c *Coordinator) registerCollectors() {
	c.reg.Collect(func(w *obs.Exposition) {
		snap := c.snapshot()
		gauge := func(name, help string, v float64) {
			w.Family(name, help, "gauge")
			w.Sample("", nil, v)
		}
		counter := func(name, help string, v float64) {
			w.Family(name, help, "counter")
			w.Sample("", nil, v)
		}
		gauge("ctpcoord_uptime_seconds", "Seconds since the coordinator started.", snap.uptimeS)
		gauge("ctpcoord_health_state", "Folded cluster health (0 ok, 1 degraded, 2 draining, 3 down).", healthValue(snap.health))
		counter("ctpcoord_queries_total", "Gathers executed.", float64(snap.queries))
		counter("ctpcoord_degraded_gathers_total", "200s answered with a degraded block.", float64(snap.degraded))
		counter("ctpcoord_failed_gathers_total", "Gathers with zero answering groups.", float64(snap.failed))
		counter("ctpcoord_hedges_total", "Hedged second requests launched.", float64(snap.hedges))
		counter("ctpcoord_hedge_wins_total", "Hedges that answered first.", float64(snap.hedgeW))
		counter("ctpcoord_retries_total", "Attempts beyond the first, per group.", float64(snap.retries))
		counter("ctpcoord_health_probes_total", "Background /healthz probes issued.", float64(snap.probes))
		counter("ctpcoord_panics_contained_total", "Panics contained by the HTTP middleware.", float64(snap.panics))

		type sf struct {
			name, help, typ string
			get             func(shardStats) float64
		}
		for _, f := range []sf{
			{"ctpcoord_shard_health", "Shard health color (0 unknown, 1 ok, 2 degraded, 3 draining, 4 down).", "gauge",
				func(s shardStats) float64 { return shardHealthValue(s.Health) }},
			{"ctpcoord_shard_breaker_state", "Shard breaker position (0 closed, 1 open, 2 half-open).", "gauge",
				func(s shardStats) float64 { return breakerStateValue(s.Breaker) }},
			{"ctpcoord_shard_breaker_opens_total", "Times the shard's breaker tripped open.", "counter",
				func(s shardStats) float64 { return float64(s.BreakerOpens) }},
			{"ctpcoord_shard_sent_total", "Attempts delivered to the shard.", "counter",
				func(s shardStats) float64 { return float64(s.Sent) }},
			{"ctpcoord_shard_failures_total", "Attempts classified as shard failures.", "counter",
				func(s shardStats) float64 { return float64(s.Failures) }},
			{"ctpcoord_shard_cancelled_total", "Attempts abandoned by the coordinator.", "counter",
				func(s shardStats) float64 { return float64(s.Cancelled) }},
			{"ctpcoord_shard_hedges_total", "Attempts launched as hedges against the shard.", "counter",
				func(s shardStats) float64 { return float64(s.Hedges) }},
			{"ctpcoord_shard_ewma_latency_seconds", "Smoothed successful-attempt latency.", "gauge",
				func(s shardStats) float64 { return s.EwmaMS / 1e3 }},
		} {
			w.Family(f.name, f.help, f.typ)
			snap.eachShard(func(s shardStats) {
				w.Sample("", []obs.Label{{Name: "shard", Value: s.Shard}}, f.get(s))
			})
		}

		started, ended, dropped := c.tracer.SpanCounts()
		counter("ctpcoord_trace_spans_started_total", "Spans started by the coordinator tracer.", float64(started))
		counter("ctpcoord_trace_spans_ended_total", "Spans ended (started==ended once settled).", float64(ended))
		counter("ctpcoord_trace_spans_dropped_total", "Spans ended after their trace finalized (hedge losers).", float64(dropped))
		tStarted, tFinished, tSlow := c.tracer.TraceCounts()
		counter("ctpcoord_traces_started_total", "Gather traces started.", float64(tStarted))
		counter("ctpcoord_traces_finished_total", "Gather traces finalized into the flight recorder.", float64(tFinished))
		counter("ctpcoord_traces_slow_total", "Gather traces past the slow-query threshold.", float64(tSlow))
	})
}

func shardHealthValue(s string) float64 {
	switch s {
	case "unknown":
		return 0
	case "ok":
		return 1
	case "degraded":
		return 2
	case "draining":
		return 3
	default: // down
		return 4
	}
}

func breakerStateValue(s string) float64 {
	switch s {
	case "closed":
		return 0
	case "open":
		return 1
	default: // half-open
		return 2
	}
}

// Tracer exposes the coordinator's tracer (flight recorder) to tests
// and the in-process smokes.
func (c *Coordinator) Tracer() *obs.Tracer { return c.tracer }

// Registry exposes the coordinator's metric registry.
func (c *Coordinator) Registry() *obs.Registry { return c.reg }

// gatherOutcome classifies a finished gather for the latency histogram.
func gatherOutcome(gr *GatherResponse) string {
	switch {
	case gr.StatusCode == http.StatusOK && gr.Degraded == nil:
		return "ok"
	case gr.StatusCode == http.StatusOK:
		return "degraded"
	case gr.StatusCode == http.StatusServiceUnavailable:
		return "failed"
	default:
		return "error"
	}
}
