package score

import (
	"testing"

	"ctpquery/internal/bitset"
	"ctpquery/internal/gen"
	"ctpquery/internal/graph"
	"ctpquery/internal/tree"
)

func sampleTree(t *testing.T) (*graph.Graph, *tree.Tree) {
	t.Helper()
	g := gen.Sample()
	// t_alpha: Carole->OrgC, Doug->OrgC, Elon->Doug (edges 9, 8, 10).
	nodes := tree.NodesOfEdges(g, []graph.EdgeID{8, 9, 10})
	return g, &tree.Tree{Root: nodes[0], Edges: []graph.EdgeID{8, 9, 10}, Nodes: nodes}
}

func TestSize(t *testing.T) {
	g, tr := sampleTree(t)
	if Size(g, tr) != -3 {
		t.Fatalf("Size = %v", Size(g, tr))
	}
	single := tree.NewInit(0, bitset.Single(0))
	if Size(g, single) != 0 {
		t.Fatal("single node size score should be 0")
	}
}

func TestCompactness(t *testing.T) {
	g, tr := sampleTree(t)
	if got := Compactness(g, tr); got != 0.25 {
		t.Fatalf("Compactness = %v", got)
	}
	if Compactness(g, tree.NewInit(0, nil)) != 1 {
		t.Fatal("single-node compactness should be 1")
	}
}

func TestLabelDiversity(t *testing.T) {
	g, tr := sampleTree(t)
	// Labels: investsIn, founded, parentOf — 3 distinct over 3 edges.
	if got := LabelDiversity(g, tr); got != 1 {
		t.Fatalf("diversity = %v, want 1", got)
	}
	if LabelDiversity(g, tree.NewInit(0, nil)) != 0 {
		t.Fatal("single-node diversity should be 0")
	}
	// A tree with repeated labels scores below 1.
	rep := &tree.Tree{Root: 0, Edges: []graph.EdgeID{4, 11}} // citizenOf x2
	if got := LabelDiversity(g, rep); got != 0.5 {
		t.Fatalf("repeated-label diversity = %v, want 0.5", got)
	}
}

func TestEdgeWeight(t *testing.T) {
	b := graph.NewBuilder()
	x := b.AddNode("x")
	y := b.AddNode("y")
	z := b.AddNode("z")
	e1 := b.AddEdge(x, "t", y)
	e2 := b.AddEdge(y, "t", z)
	b.SetEdgeProp(e1, "weight", "2.5")
	// e2 has no weight: defaults to 1.
	g := b.Build()
	nodes := tree.NodesOfEdges(g, []graph.EdgeID{e1, e2})
	tr := &tree.Tree{Root: x, Edges: []graph.EdgeID{e1, e2}, Nodes: nodes}
	if got := EdgeWeight(g, tr); got != -3.5 {
		t.Fatalf("EdgeWeight = %v, want -3.5", got)
	}
}

func TestSeedProximity(t *testing.T) {
	w := gen.Line(2, 3, gen.Forward) // A - 3 intermediates - B: 4 edges
	g := w.Graph
	edges := make([]graph.EdgeID, g.NumEdges())
	for i := range edges {
		edges[i] = graph.EdgeID(i)
	}
	nodes := tree.NodesOfEdges(g, edges)
	atEnd := &tree.Tree{Root: w.Seeds[0][0], Edges: edges, Nodes: nodes}
	if got := SeedProximity(g, atEnd); got != -4 {
		t.Fatalf("proximity from end = %v, want -4", got)
	}
	mid := &tree.Tree{Root: nodes[len(nodes)/2], Edges: edges, Nodes: nodes}
	if got := SeedProximity(g, mid); got >= -1 || got < -4 {
		t.Fatalf("proximity from middle = %v", got)
	}
	if SeedProximity(g, tree.NewInit(0, nil)) != 0 {
		t.Fatal("single-node proximity should be 0")
	}
}

func TestRegistry(t *testing.T) {
	for _, name := range []string{"size", "compact", "diversity", "weight", "depth"} {
		if _, ok := Get(name); !ok {
			t.Fatalf("builtin %q missing", name)
		}
	}
	if _, ok := Get("nope"); ok {
		t.Fatal("unknown name resolved")
	}
	if err := Register("", Size); err == nil {
		t.Fatal("empty name should be rejected")
	}
	if err := Register("custom", nil); err == nil {
		t.Fatal("nil func should be rejected")
	}
	if err := Register("custom", Size); err != nil {
		t.Fatal(err)
	}
	if _, ok := Get("custom"); !ok {
		t.Fatal("registered name not found")
	}
	found := false
	for _, n := range Names() {
		if n == "custom" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Names() = %v, missing custom", Names())
	}
}
