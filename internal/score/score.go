// Package score provides the pluggable score functions of requirement R2:
// CTP evaluation is orthogonal to scoring, so users pick (or register) any
// function σ assigning a real number to each result tree — higher is
// better — and the engine annotates and optionally TOP-k-restricts results
// with it (Section 2, SCORE σ [TOP k]).
//
// The built-in functions cover the families the related work uses: sizes
// (fewest edges, the Group Steiner Tree objective), edge weights, label
// diversity (the "interesting connections" heuristic of the paper's
// journalism motivation), and seed proximity.
package score

import (
	"fmt"
	"sort"
	"strconv"

	"ctpquery/internal/core"
	"ctpquery/internal/graph"
	"ctpquery/internal/tree"
)

// registry maps names (as written after SCORE in EQL) to functions.
var registry = map[string]core.ScoreFunc{
	"size":      Size,
	"compact":   Compactness,
	"diversity": LabelDiversity,
	"weight":    EdgeWeight,
	"depth":     SeedProximity,
}

// Get resolves a score function by name.
func Get(name string) (core.ScoreFunc, bool) {
	f, ok := registry[name]
	return f, ok
}

// Register adds or replaces a named score function; it is how downstream
// applications plug their own σ. Registering an empty name or nil function
// is an error.
func Register(name string, f core.ScoreFunc) error {
	if name == "" || f == nil {
		return fmt.Errorf("score: Register needs a name and a function")
	}
	registry[name] = f
	return nil
}

// Names lists the registered score function names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Size scores smaller trees higher: σ(t) = -|edges(t)|, the classical
// Steiner-tree objective.
func Size(g *graph.Graph, t *tree.Tree) float64 { return -float64(t.Size()) }

// Compactness maps size into (0, 1]: σ(t) = 1/(1+|edges|), convenient when
// combining with other components.
func Compactness(g *graph.Graph, t *tree.Tree) float64 {
	return 1 / (1 + float64(t.Size()))
}

// LabelDiversity rewards trees traversing many distinct edge labels — the
// paper's journalism example prefers a chain of accounts and transfers
// over a hop through a shared country node. Single-node trees score 0.
func LabelDiversity(g *graph.Graph, t *tree.Tree) float64 {
	if t.Size() == 0 {
		return 0
	}
	seen := make(map[graph.LabelID]bool, t.Size())
	for _, e := range t.Edges {
		seen[g.EdgeLabelID(e)] = true
	}
	return float64(len(seen)) / float64(t.Size())
}

// EdgeWeight sums the numeric "weight" property over the tree's edges and
// negates it (cheaper trees are better), the LANCET-style vertex/edge
// weighted objective. Edges without the property count as weight 1.
func EdgeWeight(g *graph.Graph, t *tree.Tree) float64 {
	total := 0.0
	for _, e := range t.Edges {
		w := 1.0
		if s, ok := g.EdgeProp("weight", e); ok {
			if v, err := strconv.ParseFloat(s, 64); err == nil {
				w = v
			}
		}
		total += w
	}
	return -total
}

// SeedProximity scores by the negated tree eccentricity from its root:
// trees whose root is close to all leaves rank higher. It is an example of
// a structural score that is not monotone in tree size.
func SeedProximity(g *graph.Graph, t *tree.Tree) float64 {
	if t.Size() == 0 {
		return 0
	}
	// BFS within the tree's edges from the root.
	inSet := make(map[graph.EdgeID]bool, t.Size())
	for _, e := range t.Edges {
		inSet[e] = true
	}
	dist := map[graph.NodeID]int{t.Root: 0}
	queue := []graph.NodeID{t.Root}
	max := 0
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range g.Incident(n) {
			if !inSet[e] {
				continue
			}
			o := g.Other(e, n)
			if _, ok := dist[o]; !ok {
				dist[o] = dist[n] + 1
				if dist[o] > max {
					max = dist[o]
				}
				queue = append(queue, o)
			}
		}
	}
	return -float64(max)
}
