// Package engine executes Extended Query Language queries end to end,
// implementing the evaluation strategy of Section 3:
//
//	(A) evaluate each BGP into a binding table (internal/bgp);
//	(B) derive each CTP's seed sets from the binding tables (or from the
//	    graph, for variables the BGPs do not bind), evaluate the CTP with
//	    a connection-search algorithm (internal/core), filters pushed in;
//	(C) natural-join the BGP and CTP tables and project the head.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"time"

	"ctpquery/internal/bgp"
	"ctpquery/internal/core"
	"ctpquery/internal/eql"
	// Linked for its side effect: registers the parallel CTP search
	// runtime that Options.Parallelism selects.
	_ "ctpquery/internal/exec"
	"ctpquery/internal/fault"
	"ctpquery/internal/graph"
	"ctpquery/internal/obs"
	"ctpquery/internal/score"
	"ctpquery/internal/storage"
	"ctpquery/internal/tree"
)

// Options configures an Engine.
type Options struct {
	// Algorithm evaluates CTPs; the default is MoLESP, the paper's
	// recommended variant.
	Algorithm core.Algorithm

	// MultiQueue forces the Section 4.9 multi-queue scheduling. When
	// false, the engine still enables it automatically for CTPs with
	// universal or heavily skewed seed sets (as the paper does for the
	// YAGO queries J2 and J3).
	MultiQueue bool

	// SkewThreshold is the largest-to-smallest seed set size ratio beyond
	// which multi-queue scheduling is auto-enabled (default 32).
	SkewThreshold int

	// DefaultTimeout bounds each CTP evaluation when the query does not
	// specify TIMEOUT (0 = unbounded).
	DefaultTimeout time.Duration

	// Parallel evaluates the query's CTPs concurrently (one goroutine
	// each). CTP searches are independent by construction (Section 3
	// step B), so this is safe; it helps queries with several CTPs, like
	// the J1 shape of Table 1.
	Parallel bool

	// Parallelism shards each GAM-family CTP search across this many
	// workers (the internal/exec runtime): 0 keeps the sequential kernel,
	// negative means GOMAXPROCS. It composes with Parallel — Parallel
	// spreads independent CTPs, Parallelism splits one search. Universal
	// seed sets and a forced MultiQueue still select the sequential
	// multi-queue path (Section 4.9); the skew-based multi-queue
	// auto-enable is skipped when a parallel degree is set, since worker
	// sharding already spreads skewed frontiers.
	Parallelism int

	// OnCTPResult, when set, streams each CTP result as the search finds
	// it (before TOP-k trimming); ctp is the CTP's index in query order.
	// Returning false stops that CTP's search, reported through its
	// Stats.Truncated. With Parallel, the callback may be invoked from
	// several goroutines at once and must be safe for concurrent use.
	OnCTPResult func(ctp int, r core.Result) bool

	// TrackAllocs reports each CTP search's heap allocation count through
	// its Stats (an observability aid for servers; see
	// core.Options.TrackAllocs for the concurrency caveat).
	TrackAllocs bool
}

// Engine evaluates EQL queries over one graph.
type Engine struct {
	g    *graph.Graph
	opts Options
}

// New creates an engine. A zero Options selects MoLESP.
func New(g *graph.Graph, opts Options) *Engine {
	if opts.Algorithm == 0 {
		opts.Algorithm = core.MoLESP
	}
	if opts.SkewThreshold <= 0 {
		opts.SkewThreshold = 32
	}
	return &Engine{g: g, opts: opts}
}

// NewDefault creates an engine with MoLESP and no timeout.
func NewDefault(g *graph.Graph) *Engine { return New(g, Options{Algorithm: core.MoLESP}) }

// Result is the outcome of executing a query: the head projection, the
// trees bound to tree variables (referenced from the table by handle), and
// per-phase timings matching the paper's reporting (Section 5.5.2 breaks
// down CTP time vs. BGP + join time).
type Result struct {
	Table *storage.Table
	Trees []*tree.Tree // tree handle -> tree; handles are row values

	BGPTime  time.Duration
	CTPTime  time.Duration
	JoinTime time.Duration
	CTPStats []*core.Stats // one per CTP, in query order
}

// Tree resolves a tree handle from the result table.
func (r *Result) Tree(handle int32) *tree.Tree {
	if handle < 0 || int(handle) >= len(r.Trees) {
		return nil
	}
	return r.Trees[handle]
}

// TimedOut reports whether any CTP search hit its time bound (the TIMEOUT
// filter, Options.DefaultTimeout, or a context deadline), making the
// result a — still valid — subset of the full answer.
func (r *Result) TimedOut() bool {
	for _, st := range r.CTPStats {
		if st != nil && st.TimedOut {
			return true
		}
	}
	return false
}

// Truncated reports whether any CTP search stopped early for a reason
// other than time: a LIMIT filter or a streaming callback returning false.
func (r *Result) Truncated() bool {
	for _, st := range r.CTPStats {
		if st != nil && st.Truncated {
			return true
		}
	}
	return false
}

// Execute runs q and returns its result. The query must be valid
// (eql.Parse validates; programmatic queries should call Validate first).
func (e *Engine) Execute(q *eql.Query) (*Result, error) {
	return e.ExecuteContext(context.Background(), q)
}

// ExecuteContext runs q under ctx. Cancellation is checked between the
// evaluation phases and, through core.Options.Done, inside every CTP
// search: a cancelled context aborts with context.Canceled. A context
// deadline never produces an error; it clamps each CTP's time budget
// (the query's TIMEOUT filter and Options.DefaultTimeout both respect
// it), so an expiring — or already expired — deadline returns the
// partial results found so far, flagged via Result.TimedOut: the paper's
// TIMEOUT semantics (Section 2). Only the CTP searches are interruptible;
// BGP evaluation and the final join run to completion.
func (e *Engine) ExecuteContext(ctx context.Context, q *eql.Query) (res *Result, err error) {
	// Evaluation span (nil no-op without a tracer in ctx). Registered
	// before the recovery defer so the LIFO unwind recovers first — the
	// span then records the structured error a contained panic became.
	eval := obs.FromContext(ctx).Child("engine.eval")
	defer func() {
		if err != nil {
			eval.Error(err)
		}
		eval.End()
	}()
	// Containment backstop for the phases outside the CTP searches (BGP
	// evaluation, the join, projection): a panic there becomes a
	// structured error instead of killing the process.
	defer func() {
		if rec := recover(); rec != nil {
			res, err = nil, fault.Recovered("engine: execute", rec)
		}
	}()
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err == context.Canceled {
		return nil, err
	}
	res = &Result{}

	// Step (A): evaluate the BGPs.
	startBGP := time.Now()
	bgpTables := make([]*storage.Table, len(q.BGPs))
	for i, b := range q.BGPs {
		t, err := bgp.Evaluate(e.g, b)
		if err != nil {
			return nil, fmt.Errorf("engine: BGP %d: %w", i, err)
		}
		bgpTables[i] = t
	}
	res.BGPTime = time.Since(startBGP)
	eval.ChildTimed("bgp", startBGP, res.BGPTime,
		obs.Attr{Key: "bgps", Val: strconv.Itoa(len(q.BGPs))})
	if err := ctx.Err(); err == context.Canceled {
		return nil, err
	}

	// Step (B): evaluate the CTPs — sequentially or in parallel; the
	// searches are independent, and tree handles are rebased afterwards
	// so table rows reference the merged tree list.
	startCTP := time.Now()
	ctpOuts := make([]ctpOutput, len(q.CTPs))
	if e.opts.Parallel && len(q.CTPs) > 1 {
		var wg sync.WaitGroup
		for i := range q.CTPs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				ctpOuts[i] = e.safeEvalCTP(ctx, i, q.CTPs[i], bgpTables)
			}(i)
		}
		wg.Wait()
	} else {
		for i := range q.CTPs {
			ctpOuts[i] = e.safeEvalCTP(ctx, i, q.CTPs[i], bgpTables)
		}
	}
	// A cancelled (as opposed to expired) context aborts the query; an
	// expired deadline falls through with whatever the bounded searches
	// produced.
	if ctx.Err() == context.Canceled {
		return nil, ctx.Err()
	}
	ctpTables := make([]*storage.Table, len(q.CTPs))
	for i, out := range ctpOuts {
		if out.err != nil {
			return nil, fmt.Errorf("engine: CTP %d: %w", i, out.err)
		}
		// Synthesize the CTP's span tree retroactively from its Stats —
		// per-worker spans come from the exec runtime's spawn-to-drain
		// aggregates, so the hot search loop carries zero tracing cost.
		if st := out.stats; st != nil {
			cs := eval.ChildTimed(fmt.Sprintf("ctp[%d]", i), startCTP, st.Duration,
				obs.Attr{Key: "kept", Val: strconv.Itoa(st.Kept())},
				obs.Attr{Key: "results", Val: strconv.Itoa(st.Results)},
				obs.Attr{Key: "parallelism", Val: strconv.Itoa(st.Parallelism)})
			for wi, ws := range st.Workers {
				cs.ChildTimed(fmt.Sprintf("worker[%d]", wi), startCTP, time.Duration(ws.WallNS),
					obs.Attr{Key: "ops", Val: strconv.Itoa(ws.Ops)},
					obs.Attr{Key: "kept", Val: strconv.Itoa(ws.Kept)},
					obs.Attr{Key: "shipped", Val: strconv.Itoa(ws.Shipped)},
					obs.Attr{Key: "stolen", Val: strconv.Itoa(ws.Stolen)},
					obs.Attr{Key: "busy_ms", Val: strconv.FormatFloat(float64(ws.BusyNS)/1e6, 'f', 3, 64)})
			}
		}
		base := int32(len(res.Trees))
		res.Trees = append(res.Trees, out.trees...)
		if base != 0 && out.table.NumRows() > 0 {
			col := out.table.Column(q.CTPs[i].TreeVar)
			for r := 0; r < out.table.NumRows(); r++ {
				out.table.Row(r)[col] += base
			}
		}
		ctpTables[i] = out.table
		res.CTPStats = append(res.CTPStats, out.stats)
	}
	res.CTPTime = time.Since(startCTP)

	// Step (C): join everything and project the head.
	startJoin := time.Now()
	joined := joinAll(append(append([]*storage.Table{}, bgpTables...), ctpTables...))
	head, err := joined.Project(q.Head...)
	if err != nil {
		return nil, fmt.Errorf("engine: head projection: %w", err)
	}
	res.Table = head.Distinct()
	if q.Limit > 0 && res.Table.NumRows() > q.Limit {
		kept := 0
		res.Table = res.Table.Select(func([]int32) bool {
			kept++
			return kept <= q.Limit
		})
	}
	res.JoinTime = time.Since(startJoin)
	eval.ChildTimed("join", startJoin, res.JoinTime,
		obs.Attr{Key: "rows", Val: strconv.Itoa(res.Table.NumRows())})
	return res, nil
}

// parallelism resolves Options.Parallelism: negative means GOMAXPROCS.
func (e *Engine) parallelism() int {
	if e.opts.Parallelism < 0 {
		return runtime.GOMAXPROCS(0)
	}
	return e.opts.Parallelism
}

// joinAll natural-joins the tables, preferring join partners sharing
// columns; disconnected groups degrade to cross products (Definition
// 2.10's ⋈ over all simple variables).
func joinAll(tables []*storage.Table) *storage.Table {
	if len(tables) == 0 {
		empty := storage.NewTable()
		empty.AddRow()
		return empty
	}
	acc := tables[0]
	rest := tables[1:]
	for len(rest) > 0 {
		picked := -1
		for i, t := range rest {
			for _, c := range t.Cols() {
				if acc.HasColumn(c) {
					picked = i
					break
				}
			}
			if picked >= 0 {
				break
			}
		}
		if picked == -1 {
			picked = 0
		}
		acc = storage.NaturalJoin(acc, rest[picked])
		rest = append(rest[:picked], rest[picked+1:]...)
	}
	return acc
}

// ctpOutput is the self-contained result of one CTP evaluation; tree
// handles in table are local (0-based) and rebased by Execute, keeping
// parallel evaluation free of shared state.
type ctpOutput struct {
	table *storage.Table
	trees []*tree.Tree
	stats *core.Stats
	err   error
}

// evalCTP derives seed sets per Section 3 step (B.1), runs the search with
// filters pushed down, and materializes the CTP table whose columns are
// the named member variables plus the tree variable. idx is the CTP's
// position in query order (for the streaming callback); ctx cancellation
// and deadline are pushed into the search.
// probeEvalCTP fires once per CTP evaluation (inert unless armed via
// internal/fault).
var probeEvalCTP = fault.Register("engine.eval_ctp")

// safeEvalCTP is evalCTP behind a panic containment boundary. It matters
// most on the Parallel path, where each CTP runs on its own goroutine: an
// uncontained panic there would kill the whole process no matter what the
// HTTP layer recovers.
func (e *Engine) safeEvalCTP(ctx context.Context, idx int, c eql.CTP, bgpTables []*storage.Table) (out ctpOutput) {
	defer func() {
		if rec := recover(); rec != nil {
			out = ctpOutput{err: fault.Recovered("engine: CTP evaluation", rec)}
		}
	}()
	return e.evalCTP(ctx, idx, c, bgpTables)
}

func (e *Engine) evalCTP(ctx context.Context, idx int, c eql.CTP, bgpTables []*storage.Table) ctpOutput {
	probeEvalCTP.Hit()
	seeds := make([]core.SeedSet, len(c.Members))
	maxSize, minSize := 0, -1
	for i, m := range c.Members {
		set, err := e.seedSet(m, bgpTables)
		if err != nil {
			return ctpOutput{err: err}
		}
		seeds[i] = set
		if !set.Universal {
			if len(set.Nodes) > maxSize {
				maxSize = len(set.Nodes)
			}
			if minSize == -1 || len(set.Nodes) < minSize {
				minSize = len(set.Nodes)
			}
		}
	}

	opts := core.Options{
		Algorithm:   e.opts.Algorithm,
		Filters:     c.Filters,
		Done:        ctx.Done(),
		TrackAllocs: e.opts.TrackAllocs,
	}
	if opts.Filters.Timeout == 0 {
		opts.Filters.Timeout = e.opts.DefaultTimeout
	}
	if dl, ok := ctx.Deadline(); ok {
		remaining := time.Until(dl)
		if remaining <= 0 {
			remaining = time.Nanosecond
		}
		if opts.Filters.Timeout == 0 || opts.Filters.Timeout > remaining {
			opts.Filters.Timeout = remaining
		}
	}
	if e.opts.OnCTPResult != nil {
		opts.OnResult = func(r core.Result) bool { return e.opts.OnCTPResult(idx, r) }
	}
	if c.Filters.Score != "" {
		f, ok := score.Get(c.Filters.Score)
		if !ok {
			return ctpOutput{err: fmt.Errorf("unknown score function %q (have %v)",
				c.Filters.Score, score.Names())}
		}
		opts.Score = f
	}
	// Section 4.9: universal or heavily skewed seed sets get the
	// multi-queue scheduling. A configured parallel degree supersedes the
	// skew heuristic (worker sharding spreads skewed frontiers), but not
	// universal sets or an explicit MultiQueue, which keep the sequential
	// multi-queue kernel.
	hasUniversal := false
	for _, s := range seeds {
		if s.Universal {
			hasUniversal = true
		}
	}
	opts.Parallelism = e.parallelism()
	if e.opts.MultiQueue || hasUniversal ||
		(opts.Parallelism == 0 && minSize > 0 && maxSize/minSize >= e.opts.SkewThreshold) {
		opts.MultiQueue = true
	}

	rs, stats, err := core.Search(e.g, seeds, opts)
	if err != nil {
		return ctpOutput{err: err}
	}
	out := ctpOutput{stats: stats}

	// Materialize the CTP table with local tree handles.
	var cols []string
	memberCol := make([]int, len(c.Members)) // -1 for anonymous members
	for i, m := range c.Members {
		if m.Var == "" {
			memberCol[i] = -1
			continue
		}
		memberCol[i] = len(cols)
		cols = append(cols, m.Var)
	}
	treeCol := len(cols)
	cols = append(cols, c.TreeVar)
	out.table = storage.NewTable(cols...)

	for _, r := range rs.Results {
		handle := int32(len(out.trees))
		out.trees = append(out.trees, r.Tree)
		row := make([]int32, len(cols))
		row[treeCol] = handle
		// Universal members bound to a named variable expand over every
		// node of the tree (Definition 2.8's adjustment for N seed sets);
		// other members bind their unique seed.
		expand := []int{}
		for i := range c.Members {
			if memberCol[i] < 0 {
				continue
			}
			if seeds[i].Universal {
				expand = append(expand, i)
				continue
			}
			row[memberCol[i]] = int32(r.Seeds[i])
		}
		if len(expand) == 0 {
			out.table.AddRow(row...)
			continue
		}
		emitExpanded(out.table, row, expand, memberCol, r.Tree.Nodes)
	}
	return out
}

// emitExpanded emits one row per assignment of the universal member
// variables to tree nodes.
func emitExpanded(out *storage.Table, row []int32, expand, memberCol []int, nodes []graph.NodeID) {
	if len(expand) == 0 {
		out.AddRow(row...)
		return
	}
	i, rest := expand[0], expand[1:]
	for _, n := range nodes {
		row[memberCol[i]] = int32(n)
		emitExpanded(out, row, rest, memberCol, nodes)
	}
}

// seedSet derives the seed set of one CTP member per Section 3 step (B.1):
// a variable bound by some BGP projects that binding (further restricted
// by the member predicate); otherwise the predicate selects over all graph
// nodes; an unbound empty predicate denotes N, the universal set.
func (e *Engine) seedSet(m eql.Predicate, bgpTables []*storage.Table) (core.SeedSet, error) {
	if m.Var != "" {
		for _, t := range bgpTables {
			if !t.HasColumn(m.Var) {
				continue
			}
			vals, err := t.ColumnValues(m.Var)
			if err != nil {
				return core.SeedSet{}, err
			}
			nodes := make([]graph.NodeID, 0, len(vals))
			for _, v := range vals {
				n := graph.NodeID(v)
				if m.IsEmpty() || m.MatchNode(e.g, n) {
					nodes = append(nodes, n)
				}
			}
			return core.SeedSet{Nodes: nodes}, nil
		}
	}
	if m.IsEmpty() {
		return core.SeedSet{Universal: true}, nil
	}
	return core.SeedSet{Nodes: m.SelectNodes(e.g)}, nil
}
