package engine

import (
	"fmt"
	"strings"

	"ctpquery/internal/graph"
	"ctpquery/internal/tree"
)

// FormatTree renders a connecting tree with node and edge labels, one edge
// per line, e.g.
//
//	Carole -[founded]-> OrgC
//	Doug -[investsIn]-> OrgC
//	Elon -[parentOf]-> Doug
//
// Single-node trees render as the node label.
func FormatTree(g *graph.Graph, t *tree.Tree) string {
	if t == nil {
		return "<nil>"
	}
	if t.Size() == 0 {
		return nodeName(g, t.Root)
	}
	var sb strings.Builder
	for i, e := range t.Edges {
		if i > 0 {
			sb.WriteByte('\n')
		}
		ed := g.Edge(e)
		fmt.Fprintf(&sb, "%s -[%s]-> %s",
			nodeName(g, ed.Source), g.EdgeLabel(e), nodeName(g, ed.Target))
	}
	return sb.String()
}

// FormatResult renders the head row r of a query result, resolving node
// IDs to labels and tree handles to compact tree descriptions.
func (r *Result) FormatRow(g *graph.Graph, q interface{ TreeVars() []string }, row int) string {
	treeVars := map[string]bool{}
	for _, tv := range q.TreeVars() {
		treeVars[tv] = true
	}
	cols := r.Table.Cols()
	vals := r.Table.Row(row)
	parts := make([]string, len(cols))
	for i, c := range cols {
		if treeVars[c] {
			t := r.Tree(vals[i])
			if t == nil {
				parts[i] = fmt.Sprintf("?%s=<invalid>", c)
			} else {
				parts[i] = fmt.Sprintf("?%s={%d edges}", c, t.Size())
			}
			continue
		}
		parts[i] = fmt.Sprintf("?%s=%s", c, nodeName(g, graph.NodeID(vals[i])))
	}
	return strings.Join(parts, " ")
}

func nodeName(g *graph.Graph, n graph.NodeID) string {
	if l := g.NodeLabel(n); l != "" {
		return l
	}
	return fmt.Sprintf("#%d", n)
}
