package engine

import (
	"context"
	"errors"
	"testing"

	"ctpquery/internal/core"
	"ctpquery/internal/fault"
	"ctpquery/internal/gen"
)

const chaosQuery = `
SELECT ?x ?y ?w WHERE {
  ?x citizenOf USA .
  ?y citizenOf France .
  CONNECT ?x ?y AS ?w MAX 5 .
}`

// TestChaosCTPEvaluationContainment panics inside CTP evaluation — on
// both the sequential path and the parallel-CTP goroutine path — and
// asserts ExecuteContext returns a contained *fault.PanicError rather
// than crashing, then recovers fully once the fault is disarmed.
func TestChaosCTPEvaluationContainment(t *testing.T) {
	defer fault.Reset()
	g := gen.Sample()
	q := mustParse(t, chaosQuery)

	for _, parallel := range []bool{false, true} {
		name := "sequential"
		if parallel {
			name = "parallel"
		}
		t.Run(name, func(t *testing.T) {
			fault.Reset()
			if err := fault.Arm("engine.eval_ctp", fault.Fault{Kind: fault.Panic}); err != nil {
				t.Fatal(err)
			}
			e := New(g, Options{Algorithm: core.MoLESP, Parallel: parallel})
			_, err := e.ExecuteContext(context.Background(), q)
			if fault.Fired("engine.eval_ctp") == 0 {
				t.Fatal("eval_ctp probe never fired")
			}
			if err == nil {
				t.Fatal("CTP panic did not surface as an error")
			}
			var pe *fault.PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("error is not a contained panic: %v", err)
			}

			fault.Reset()
			res, err := e.ExecuteContext(context.Background(), q)
			if err != nil {
				t.Fatalf("clean execution after containment errored: %v", err)
			}
			if res.Table.NumRows() == 0 {
				t.Fatal("clean execution returned no rows")
			}
		})
	}
}

// TestChaosTopLevelRecover arms the eval probe with an error-kind fault:
// Err-capable sites don't exist on this path, so nothing fires and the
// query must succeed — proving inert probes (and error faults at
// panic-only sites) cost nothing and change nothing.
func TestChaosTopLevelRecover(t *testing.T) {
	defer fault.Reset()
	g := gen.Sample()
	q := mustParse(t, chaosQuery)
	fault.Reset()
	if err := fault.Arm("engine.eval_ctp", fault.Fault{Kind: fault.Error}); err != nil {
		t.Fatal(err)
	}
	res, err := NewDefault(g).ExecuteContext(context.Background(), q)
	if err != nil {
		t.Fatalf("error fault at a panic-only site broke the query: %v", err)
	}
	if fault.Fired("engine.eval_ctp") != 0 {
		t.Fatal("error fault fired at a Hit-only probe")
	}
	if res.Table.NumRows() == 0 {
		t.Fatal("query returned no rows")
	}
}
