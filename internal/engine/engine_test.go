package engine

import (
	"strings"
	"testing"
	"time"

	"ctpquery/internal/core"
	"ctpquery/internal/eql"
	"ctpquery/internal/gen"
	"ctpquery/internal/graph"
)

func mustParse(t *testing.T, src string) *eql.Query {
	t.Helper()
	q, err := eql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func exec(t *testing.T, g *graph.Graph, src string) (*Result, *eql.Query) {
	t.Helper()
	q := mustParse(t, src)
	res, err := NewDefault(g).Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	return res, q
}

// The paper's Q1 end to end: connections between an American
// entrepreneur, a French entrepreneur, and a French politician.
func TestQ1EndToEnd(t *testing.T) {
	g := gen.Sample()
	res, _ := exec(t, g, `
SELECT ?x ?y ?z ?w WHERE {
  ?x citizenOf USA .
  ?y citizenOf France .
  ?z citizenOf France .
  FILTER type(?x) = entrepreneur .
  FILTER type(?y) = entrepreneur .
  FILTER type(?z) = politician .
  CONNECT ?x ?y ?z AS ?w MAX 5 .
}`)
	if res.Table.NumRows() == 0 {
		t.Fatal("Q1 returned nothing")
	}
	// The motivating answer (Carole, Doug, Elon, t_alpha) must be a row.
	carole, _ := g.NodeByLabel("Carole")
	doug, _ := g.NodeByLabel("Doug")
	elon, _ := g.NodeByLabel("Elon")
	xc, yc, zc, wc := res.Table.Column("x"), res.Table.Column("y"), res.Table.Column("z"), res.Table.Column("w")
	found := false
	for i := 0; i < res.Table.NumRows(); i++ {
		r := res.Table.Row(i)
		if graph.NodeID(r[xc]) == carole && graph.NodeID(r[yc]) == doug && graph.NodeID(r[zc]) == elon {
			tr := res.Tree(r[wc])
			if tr != nil && tr.Size() == 3 {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("the (Carole, Doug, Elon) 3-edge connection is missing")
	}
	// Every bound z must be Elon (the only French politician).
	for i := 0; i < res.Table.NumRows(); i++ {
		if graph.NodeID(res.Table.Row(i)[zc]) != elon {
			t.Fatal("z bound to a non-politician")
		}
	}
	if len(res.CTPStats) != 1 || res.CTPStats[0].Results == 0 {
		t.Fatalf("CTP stats missing: %+v", res.CTPStats)
	}
	if res.BGPTime < 0 || res.CTPTime <= 0 {
		t.Fatal("timings not recorded")
	}
}

// The CDF benchmark query for m=2 (Section 5.3): one answer per link.
func TestCDFQueryM2(t *testing.T) {
	c := gen.NewCDF(2, 4, 6, 3)
	res, _ := exec(t, c.Graph, `
SELECT ?v ?tl ?l WHERE {
  ?x c ?tl .
  ?v g ?bl .
  CONNECT ?bl ?tl AS ?l .
}`)
	if res.Table.NumRows() != c.NL {
		t.Fatalf("rows = %d, want NL = %d", res.Table.NumRows(), c.NL)
	}
}

// The CDF query for m=3: the CTP finds extra trees (connecting bottom
// leaves through their tree structure, Section 5.5.1's 7x observation);
// the join keeps only trees whose two bottom leaves share a parent.
func TestCDFQueryM3(t *testing.T) {
	c := gen.NewCDF(3, 4, 6, 3)
	res, q := exec(t, c.Graph, `
SELECT ?v ?tl ?l WHERE {
  ?x c ?tl .
  ?v g ?bl1 .
  ?v h ?bl2 .
  CONNECT ?tl ?bl1 ?bl2 AS ?l .
}`)
	if res.Table.NumRows() < c.NL {
		t.Fatalf("rows = %d, want >= NL = %d", res.Table.NumRows(), c.NL)
	}
	// The CTP itself found more than the joined results keep (the paper's
	// bidirectionality observation) — on this topology the Y-links plus
	// sibling detours both survive, but unrelated-bottom trees are cut.
	if res.CTPStats[0].Results < res.Table.NumRows() {
		t.Fatalf("CTP results %d < joined rows %d", res.CTPStats[0].Results, res.Table.NumRows())
	}
	_ = q
}

// A universal seed set (J3-shaped query): CONNECT with an unbound, empty
// member explores the neighborhood of the bound seed.
func TestUniversalMemberQuery(t *testing.T) {
	g := gen.Sample()
	res, _ := exec(t, g, `SELECT ?w WHERE { CONNECT Alice ?any AS ?w MAX 1 . }`)
	// Alice has 2 incident edges; with MAX 1 the results are: Alice alone
	// (any = Alice) plus one tree per incident edge.
	if res.Table.NumRows() != 3 {
		t.Fatalf("rows = %d, want 3", res.Table.NumRows())
	}
	// Universal members auto-enable the multi-queue path; the stats must
	// reflect a real search.
	if res.CTPStats[0].Kept() == 0 {
		t.Fatal("no search happened")
	}
}

// A universal member with a named head variable expands over tree nodes.
func TestUniversalMemberExpansion(t *testing.T) {
	g := gen.Sample()
	res, _ := exec(t, g, `SELECT ?any ?w WHERE { CONNECT Alice ?any AS ?w MAX 1 . }`)
	// Trees: {Alice} (1 node) + 2 one-edge trees (2 nodes each) = 1 + 4 rows.
	if res.Table.NumRows() != 5 {
		t.Fatalf("rows = %d, want 5", res.Table.NumRows())
	}
}

// SCORE/TOP end to end through the parser and the score registry.
func TestScoreTopEndToEnd(t *testing.T) {
	g := gen.Sample()
	res, _ := exec(t, g, `SELECT ?w WHERE {
		CONNECT Bob Alice AS ?w SCORE size TOP 1 .
	}`)
	if res.Table.NumRows() != 1 {
		t.Fatalf("rows = %d, want 1", res.Table.NumRows())
	}
	tr := res.Tree(res.Table.Row(0)[0])
	if tr.Size() != 1 {
		t.Fatalf("TOP 1 by size kept a %d-edge tree; Bob-parentOf->Alice is 1 edge", tr.Size())
	}
}

func TestUnknownScoreFunction(t *testing.T) {
	g := gen.Sample()
	q := mustParse(t, `SELECT ?w WHERE { CONNECT Bob Alice AS ?w SCORE bogus TOP 1 . }`)
	if _, err := NewDefault(g).Execute(q); err == nil {
		t.Fatal("unknown score function should error")
	}
}

// Seed-set derivation: a CTP member bound by a BGP uses the binding; the
// member predicate further restricts it (Section 3 step B.1).
func TestSeedSetFromBGPWithRestriction(t *testing.T) {
	g := gen.Sample()
	// ?x citizenOf France binds {Alice, Doug, Elon}; the CTP member
	// restricts to politicians => {Elon}.
	res, _ := exec(t, g, `
SELECT ?x ?w WHERE {
  ?x citizenOf France .
  FILTER type(?x) = politician .
  CONNECT ?x USA AS ?w MAX 3 .
}`)
	elon, _ := g.NodeByLabel("Elon")
	xc := res.Table.Column("x")
	if res.Table.NumRows() == 0 {
		t.Fatal("no results")
	}
	for i := 0; i < res.Table.NumRows(); i++ {
		if graph.NodeID(res.Table.Row(i)[xc]) != elon {
			t.Fatal("seed restriction failed")
		}
	}
}

// The engine's default timeout applies when the query has none.
func TestDefaultTimeout(t *testing.T) {
	w := gen.Chain(22)
	e := New(w.Graph, Options{Algorithm: core.MoLESP, DefaultTimeout: time.Millisecond})
	q := mustParse(t, `SELECT ?w WHERE { CONNECT "1" "23" AS ?w . }`)
	res, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CTPStats[0].TimedOut {
		t.Fatal("default timeout not applied")
	}
}

// Per-query TIMEOUT overrides the default.
func TestQueryTimeoutWins(t *testing.T) {
	w := gen.Chain(10)
	e := New(w.Graph, Options{Algorithm: core.MoLESP, DefaultTimeout: time.Nanosecond})
	q := mustParse(t, `SELECT ?w WHERE { CONNECT "1" "11" AS ?w TIMEOUT 10s . }`)
	res, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.CTPStats[0].TimedOut {
		t.Fatal("query timeout should have overridden the default")
	}
	if res.Table.NumRows() != 1<<10 {
		t.Fatalf("rows = %d, want %d", res.Table.NumRows(), 1<<10)
	}
}

// Pure-BGP queries work without CTPs (k >= 0, l = 0 in Definition 2.6).
func TestPureBGPQuery(t *testing.T) {
	g := gen.Sample()
	res, _ := exec(t, g, `SELECT ?x ?o WHERE { ?x founded ?o . }`)
	if res.Table.NumRows() != 3 {
		t.Fatalf("rows = %d, want 3", res.Table.NumRows())
	}
	if len(res.CTPStats) != 0 {
		t.Fatal("no CTPs should have run")
	}
}

// Multiple CTPs in one query (the J1 shape: several BGPs and CTPs).
func TestTwoCTPs(t *testing.T) {
	g := gen.Sample()
	res, _ := exec(t, g, `
SELECT ?x ?w1 ?w2 WHERE {
  ?x citizenOf USA .
  CONNECT ?x France AS ?w1 MAX 3 .
  CONNECT ?x "National Liberal Party" AS ?w2 MAX 3 .
}`)
	if res.Table.NumRows() == 0 {
		t.Fatal("no results")
	}
	if len(res.CTPStats) != 2 {
		t.Fatalf("CTP stats = %d, want 2", len(res.CTPStats))
	}
	// Both tree columns resolve to actual trees.
	w1, w2 := res.Table.Column("w1"), res.Table.Column("w2")
	for i := 0; i < res.Table.NumRows(); i++ {
		if res.Tree(res.Table.Row(i)[w1]) == nil || res.Tree(res.Table.Row(i)[w2]) == nil {
			t.Fatal("unresolvable tree handle")
		}
	}
}

// A CTP whose seed sets come up empty yields an empty result, not an
// error.
func TestEmptySeedSet(t *testing.T) {
	g := gen.Sample()
	res, _ := exec(t, g, `SELECT ?w WHERE { CONNECT Nobody Alice AS ?w . }`)
	if res.Table.NumRows() != 0 {
		t.Fatalf("rows = %d, want 0", res.Table.NumRows())
	}
}

// Invalid queries are rejected before execution.
func TestExecuteValidates(t *testing.T) {
	g := gen.Sample()
	q := &eql.Query{Head: []string{"zz"}, CTPs: []eql.CTP{{
		Members: []eql.Predicate{eql.Var("a"), eql.Var("b")}, TreeVar: "w"}}}
	if _, err := NewDefault(g).Execute(q); err == nil {
		t.Fatal("invalid head should be rejected")
	}
}

// Tree handle resolution is bounds-checked.
func TestTreeHandleBounds(t *testing.T) {
	r := &Result{}
	if r.Tree(0) != nil || r.Tree(-1) != nil {
		t.Fatal("out-of-range handles must return nil")
	}
}

func TestFormatTreeAndRow(t *testing.T) {
	g := gen.Sample()
	res, q := exec(t, g, `SELECT ?x ?w WHERE {
		?x citizenOf USA .
		CONNECT ?x Alice AS ?w MAX 2 .
	}`)
	if res.Table.NumRows() == 0 {
		t.Fatal("no rows")
	}
	tr := res.Tree(res.Table.Row(0)[res.Table.Column("w")])
	s := FormatTree(g, tr)
	if !strings.Contains(s, "-[") {
		t.Fatalf("FormatTree = %q", s)
	}
	row := res.FormatRow(g, q, 0)
	if !strings.Contains(row, "?x=") || !strings.Contains(row, "?w={") {
		t.Fatalf("FormatRow = %q", row)
	}
	if FormatTree(g, nil) != "<nil>" {
		t.Fatal("nil tree formatting")
	}
}

// Skew auto-enables the multi-queue strategy: a huge seed set against a
// singleton must still terminate quickly under a tight timeout, finding
// at least the nearby results first (the J2 scenario).
func TestSkewedSeedSetsUseMultiQueue(t *testing.T) {
	kg := gen.YAGOLike(300, 7)
	g := kg.Graph
	// Seed set 1: every person (huge). Seed set 2: one specific city.
	q := mustParse(t, `SELECT ?w WHERE {
		?p bornIn ?c .
		CONNECT ?p city0 AS ?w MAX 3 TIMEOUT 2s LIMIT 50 .
	}`)
	res, err := New(g, Options{Algorithm: core.MoLESP}).Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() == 0 {
		t.Fatal("skewed query found nothing")
	}
}
