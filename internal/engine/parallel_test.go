package engine

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"ctpquery/internal/core"
	"ctpquery/internal/eql"
	"ctpquery/internal/gen"
	"ctpquery/internal/graph"
	"ctpquery/internal/tree"
)

// The end-to-end half of the equivalence property test (the core-level
// half lives in internal/exec): over random graphs and random EQL
// CONNECT queries, a query evaluated with Parallelism K must produce the
// same result multiset as the sequential engine, for every algorithm and
// m inside its completeness envelope — GAM any m, ESP/LESP m = 2,
// MoLESP m <= 3 (Section 4.8; soundness plus any-order completeness make
// the result set schedule-independent there).

// canonicalRows renders an engine result as a sorted multiset of row
// strings with tree handles resolved to edge-set keys (single-node trees
// to their node), so two results compare independently of row and
// tree-handle order.
func canonicalRows(t *testing.T, q *eql.Query, res *Result) []string {
	t.Helper()
	treeVars := map[string]bool{}
	for _, tv := range q.TreeVars() {
		treeVars[tv] = true
	}
	cols := res.Table.Cols()
	out := make([]string, 0, res.Table.NumRows())
	for i := 0; i < res.Table.NumRows(); i++ {
		row := res.Table.Row(i)
		var sb strings.Builder
		for c, col := range cols {
			v := row[c]
			if treeVars[col] {
				tr := res.Tree(v)
				if tr == nil {
					t.Fatalf("row %d: dangling tree handle %d", i, v)
				}
				fmt.Fprintf(&sb, "%s={%s n%d} ", col, tr.EdgeKey(), treeNodeIfEmpty(tr))
				continue
			}
			fmt.Fprintf(&sb, "%s=%d ", col, v)
		}
		out = append(out, sb.String())
	}
	sort.Strings(out)
	return out
}

// treeNodeIfEmpty distinguishes 0-edge trees (whose EdgeKey is empty) by
// their node.
func treeNodeIfEmpty(t *tree.Tree) graph.NodeID {
	if t.Size() == 0 {
		return t.Root
	}
	return -1
}

func TestParallelEngineEquivalenceRandomQueries(t *testing.T) {
	trials := 8
	if testing.Short() {
		trials = 3
	}
	cases := []struct {
		alg core.Algorithm
		m   int
	}{
		{core.GAM, 2}, {core.GAM, 3},
		{core.ESP, 2},
		{core.LESP, 2},
		{core.MoLESP, 2}, {core.MoLESP, 3},
	}
	for _, cse := range cases {
		cse := cse
		t.Run(fmt.Sprintf("%v/m=%d", cse.alg, cse.m), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(31*cse.m) + int64(cse.alg)))
			for trial := 0; trial < trials; trial++ {
				g := gen.Random(10+rng.Intn(5), 13+rng.Intn(6), []string{"a", "b"}, rng)
				q, err := eql.Parse(randomConnectQuery(g, cse.m, rng))
				if err != nil {
					t.Fatal(err)
				}
				seqRes, err := New(g, Options{Algorithm: cse.alg}).Execute(q)
				if err != nil {
					t.Fatal(err)
				}
				want := canonicalRows(t, q, seqRes)
				for _, k := range []int{2, 4, 8} {
					parRes, err := New(g, Options{Algorithm: cse.alg, Parallelism: k}).Execute(q)
					if err != nil {
						t.Fatal(err)
					}
					got := canonicalRows(t, q, parRes)
					if fmt.Sprint(got) != fmt.Sprint(want) {
						t.Fatalf("trial %d K=%d query %q: results diverge\nseq: %v\npar: %v",
							trial, k, q.String(), want, got)
					}
					if st := parRes.CTPStats[0]; st.Parallelism != k {
						t.Fatalf("Stats.Parallelism = %d, want %d", st.Parallelism, k)
					}
				}
			}
		})
	}
}

// randomConnectQuery builds a CONNECT query over m distinct random node
// labels with a random pushed-down filter mix (MAX always, to bound the
// enumeration; UNI sometimes). LIMIT/TOP are deliberately absent: they
// truncate by arrival order, which is schedule-dependent by design.
func randomConnectQuery(g *graph.Graph, m int, rng *rand.Rand) string {
	picked := map[graph.NodeID]bool{}
	labels := make([]string, 0, m)
	for len(labels) < m {
		n := graph.NodeID(rng.Intn(g.NumNodes()))
		if picked[n] {
			continue
		}
		picked[n] = true
		labels = append(labels, g.NodeLabel(n))
	}
	filters := fmt.Sprintf("MAX %d", 3+rng.Intn(2))
	if rng.Intn(4) == 0 {
		filters += " UNI"
	}
	return fmt.Sprintf("SELECT ?t WHERE { CONNECT %s AS ?t %s . }",
		strings.Join(labels, " "), filters)
}

// Negative parallelism resolves to GOMAXPROCS and still answers.
func TestParallelismGOMAXPROCS(t *testing.T) {
	g := gen.Sample()
	q, err := eql.Parse(`SELECT ?t WHERE { CONNECT Alice Bob AS ?t MAX 4 . }`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(g, Options{Parallelism: -1}).Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() == 0 {
		t.Fatal("no results with GOMAXPROCS parallelism")
	}
	if res.CTPStats[0].Parallelism < 1 {
		t.Fatalf("Parallelism = %d, want >= 1", res.CTPStats[0].Parallelism)
	}
}

// Universal seed sets still take the sequential multi-queue path even
// with a parallel degree configured; the answer must not change.
func TestParallelUniversalFallsBackToMultiQueue(t *testing.T) {
	g := gen.Sample()
	q, err := eql.Parse(`SELECT ?t WHERE { CONNECT Alice ?any AS ?t MAX 2 . }`)
	if err != nil {
		t.Fatal(err)
	}
	seqRes, err := New(g, Options{}).Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	parRes, err := New(g, Options{Parallelism: 4}).Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if parRes.CTPStats[0].Parallelism != 0 {
		t.Fatalf("universal CTP ran with Parallelism %d, want sequential fallback", parRes.CTPStats[0].Parallelism)
	}
	if seqRes.Table.NumRows() != parRes.Table.NumRows() {
		t.Fatalf("universal fallback changed results: %d vs %d rows",
			seqRes.Table.NumRows(), parRes.Table.NumRows())
	}
}

// Explain reports the chosen degree.
func TestExplainParallelism(t *testing.T) {
	g := gen.Sample()
	q, err := eql.Parse(`SELECT ?t WHERE { CONNECT Alice Bob AS ?t MAX 4 . }`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := New(g, Options{Parallelism: 4}).Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "parallelism: 4 workers") {
		t.Fatalf("Explain missing parallelism line:\n%s", out)
	}
	out, err = New(g, Options{}).Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "parallelism: sequential kernel") {
		t.Fatalf("Explain missing sequential line:\n%s", out)
	}
}
