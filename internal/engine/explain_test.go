package engine

import (
	"strings"
	"testing"
	"time"

	"ctpquery/internal/core"
	"ctpquery/internal/gen"
)

func TestExplain(t *testing.T) {
	g := gen.Sample()
	q := mustParse(t, `
SELECT ?x ?w WHERE {
  ?x citizenOf USA .
  CONNECT ?x ?anything AS ?w MAX 3 TIMEOUT 1s .
} LIMIT 10`)
	plan, err := NewDefault(g).Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"1 BGP(s), 1 CTP(s)", "MoLESP", "scan", "bound by BGP",
		"universal (N)", "multi-queue: true", "MAX 3", "LIMIT 10",
	} {
		if !strings.Contains(plan, want) {
			t.Fatalf("plan missing %q:\n%s", want, plan)
		}
	}
}

func TestExplainPredicateSeeds(t *testing.T) {
	g := gen.Sample()
	q := mustParse(t, `SELECT ?w WHERE { CONNECT Alice Bob AS ?w UNI . }`)
	plan, err := NewDefault(g).Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "selects 1 node(s)") || !strings.Contains(plan, "UNI") {
		t.Fatalf("plan = %s", plan)
	}
}

func TestExplainValidates(t *testing.T) {
	g := gen.Sample()
	bad := mustParse(t, `SELECT ?w WHERE { CONNECT Alice Bob AS ?w . }`)
	bad.Head = []string{"nope"}
	if _, err := NewDefault(g).Explain(bad); err == nil {
		t.Fatal("invalid query should not explain")
	}
}

func TestQueryLevelLimit(t *testing.T) {
	w := gen.Chain(6) // 64 trees
	q := mustParse(t, `SELECT ?w WHERE { CONNECT "1" "7" AS ?w . } LIMIT 10`)
	res, err := NewDefault(w.Graph).Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() != 10 {
		t.Fatalf("rows = %d, want 10", res.Table.NumRows())
	}
}

func TestParallelCTPEvaluation(t *testing.T) {
	g := gen.Sample()
	src := `
SELECT ?x ?w1 ?w2 WHERE {
  ?x citizenOf USA .
  CONNECT ?x France AS ?w1 MAX 3 .
  CONNECT ?x "National Liberal Party" AS ?w2 MAX 3 .
}`
	q := mustParse(t, src)
	seq, err := New(g, engineOpts(false)).Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	par, err := New(g, engineOpts(true)).Execute(mustParse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	if seq.Table.NumRows() != par.Table.NumRows() {
		t.Fatalf("parallel rows %d != sequential %d", par.Table.NumRows(), seq.Table.NumRows())
	}
	if len(par.CTPStats) != 2 {
		t.Fatalf("stats = %d", len(par.CTPStats))
	}
	// Every tree handle must resolve after rebasing.
	for _, col := range []string{"w1", "w2"} {
		ci := par.Table.Column(col)
		for i := 0; i < par.Table.NumRows(); i++ {
			if par.Tree(par.Table.Row(i)[ci]) == nil {
				t.Fatalf("unresolvable handle in %s after rebasing", col)
			}
		}
	}
	// Tree columns must reference trees containing the right anchors: w2
	// trees must contain the party node.
	party, _ := g.NodeByLabel("National Liberal Party")
	ci := par.Table.Column("w2")
	for i := 0; i < par.Table.NumRows(); i++ {
		tr := par.Tree(par.Table.Row(i)[ci])
		if tr.Size() > 0 && !tr.ContainsNode(party) {
			t.Fatal("w2 tree does not contain the party: handle rebasing broken")
		}
	}
}

func engineOpts(parallel bool) Options {
	return Options{Algorithm: core.MoLESP, Parallel: parallel, DefaultTimeout: 5 * time.Second}
}
