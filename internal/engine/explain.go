package engine

import (
	"fmt"
	"strings"

	"ctpquery/internal/core"
	"ctpquery/internal/eql"
)

// Explain describes, without executing the query, the plan Execute would
// follow: per-BGP pattern counts with estimated scan cardinalities, and
// per-CTP the derived seed-set strategy (BGP-bound, predicate-selected,
// or universal), the algorithm, and whether multi-queue scheduling would
// engage. It is the paper's "adaptive EQL optimization" hook (Section 6's
// future work) in diagnostic form.
func (e *Engine) Explain(q *eql.Query) (string, error) {
	if err := q.Validate(); err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "plan for %d BGP(s), %d CTP(s); algorithm %v\n",
		len(q.BGPs), len(q.CTPs), e.opts.Algorithm)

	boundVars := map[string]bool{}
	for i, b := range q.BGPs {
		fmt.Fprintf(&sb, "  BGP %d: %d edge pattern(s)\n", i, len(b.Patterns))
		for _, ep := range b.Patterns {
			fmt.Fprintf(&sb, "    scan (%s, %s, %s): est. <= %d edges\n",
				describeTerm(ep.Src), describeTerm(ep.Edge), describeTerm(ep.Dst),
				min3(ep.Edge.Selectivity(e.g, false),
					ep.Src.Selectivity(e.g, true),
					ep.Dst.Selectivity(e.g, true)))
		}
		for _, v := range b.Vars() {
			boundVars[v] = true
		}
	}
	for i, c := range q.CTPs {
		fmt.Fprintf(&sb, "  CTP %d (tree ?%s): m=%d\n", i, c.TreeVar, c.M())
		sizes := make([]int, 0, c.M())
		universal := false
		for _, m := range c.Members {
			switch {
			case m.Var != "" && boundVars[m.Var]:
				fmt.Fprintf(&sb, "    seed ?%s: bound by BGP\n", m.Var)
				sizes = append(sizes, e.g.NumNodes()) // unknown until run; conservative
			case m.IsEmpty():
				fmt.Fprintf(&sb, "    seed %s: universal (N) — no Init trees (Sec 4.9)\n", describeTerm(m))
				universal = true
			default:
				n := len(m.SelectNodes(e.g))
				fmt.Fprintf(&sb, "    seed %s: predicate selects %d node(s)\n", describeTerm(m), n)
				sizes = append(sizes, n)
			}
		}
		par := e.parallelism()
		mq := e.opts.MultiQueue || universal
		if !mq && par == 0 && len(sizes) > 1 {
			lo, hi := sizes[0], sizes[0]
			for _, s := range sizes[1:] {
				if s < lo {
					lo = s
				}
				if s > hi {
					hi = s
				}
			}
			mq = lo > 0 && hi/lo >= e.opts.SkewThreshold
		}
		fmt.Fprintf(&sb, "    multi-queue: %v; filters: %s\n", mq, describeFilters(c.Filters))
		switch {
		case mq || !isGAMFamily(e.opts.Algorithm):
			fmt.Fprintf(&sb, "    parallelism: sequential kernel\n")
		case par > 1:
			fmt.Fprintf(&sb, "    parallelism: %d workers (sharded exec runtime)\n", par)
		case par == 1:
			fmt.Fprintf(&sb, "    parallelism: 1 worker (exec runtime)\n")
		default:
			fmt.Fprintf(&sb, "    parallelism: sequential kernel\n")
		}
	}
	fmt.Fprintf(&sb, "  join: natural join of all tables, project %v", q.Head)
	if q.Limit > 0 {
		fmt.Fprintf(&sb, ", LIMIT %d", q.Limit)
	}
	sb.WriteString("\n")
	return sb.String(), nil
}

func describeTerm(p eql.Predicate) string {
	if p.Var != "" {
		if len(p.Conds) > 0 {
			return fmt.Sprintf("?%s[%d conds]", p.Var, len(p.Conds))
		}
		return "?" + p.Var
	}
	if len(p.Conds) == 1 && p.Conds[0].Prop == "label" {
		return fmt.Sprintf("%q", p.Conds[0].Value)
	}
	if p.IsEmpty() {
		return "_"
	}
	return fmt.Sprintf("[%d conds]", len(p.Conds))
}

func describeFilters(f eql.Filters) string {
	if f.IsZero() {
		return "none"
	}
	var parts []string
	if f.Uni {
		parts = append(parts, "UNI")
	}
	if len(f.Labels) > 0 {
		parts = append(parts, fmt.Sprintf("LABEL(%d)", len(f.Labels)))
	}
	if f.MaxEdges > 0 {
		parts = append(parts, fmt.Sprintf("MAX %d", f.MaxEdges))
	}
	if f.Score != "" {
		parts = append(parts, "SCORE "+f.Score)
	}
	if f.TopK > 0 {
		parts = append(parts, fmt.Sprintf("TOP %d", f.TopK))
	}
	if f.Limit > 0 {
		parts = append(parts, fmt.Sprintf("LIMIT %d", f.Limit))
	}
	if f.Timeout > 0 {
		parts = append(parts, fmt.Sprintf("TIMEOUT %s", f.Timeout))
	}
	return strings.Join(parts, " ")
}

// isGAMFamily reports whether the algorithm supports the parallel
// runtime (the grow-and-merge variants; BFT baselines stay sequential).
func isGAMFamily(a core.Algorithm) bool {
	for _, g := range core.GAMFamily() {
		if a == g {
			return true
		}
	}
	return false
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
