package admission

import (
	"math/rand"
	"testing"
	"time"

	"ctpquery"
)

// randShape builds a random query shape with every member constrained
// (≥1 condition) — the domain of the relaxation lattice, which relaxes
// and strengthens predicates on anchored members but never conjures
// universal ones.
func randShape(rng *rand.Rand) ctpquery.QueryShape {
	s := ctpquery.QueryShape{
		BGPPatterns: rng.Intn(4),
		Limit:       rng.Intn(3) * 5,
	}
	for i, n := 0, 1+rng.Intn(2); i < n; i++ {
		c := ctpquery.CTPShape{
			Members:  2 + rng.Intn(4),
			MaxEdges: rng.Intn(3) * 4, // 0 (unbounded), 4, or 8
			Labels:   rng.Intn(3),
			Uni:      rng.Intn(2) == 0,
			Limit:    rng.Intn(2) * 3,
			TopK:     0,
		}
		c.Conditions = c.Members + rng.Intn(4) // ≥1 condition per member
		if rng.Intn(4) == 0 {
			c.Timeout = time.Duration(1+rng.Intn(5)) * time.Second
		}
		s.CTPs = append(s.CTPs, c)
	}
	return s
}

// strengthen applies one lattice-strengthening step to a random CTP of
// the shape and describes it. The inverse of each step is a relaxation
// the future relaxation-lattice work will perform.
func strengthen(rng *rand.Rand, s ctpquery.QueryShape) (ctpquery.QueryShape, string) {
	out := s
	out.CTPs = append([]ctpquery.CTPShape(nil), s.CTPs...)
	i := rng.Intn(len(out.CTPs))
	c := &out.CTPs[i]
	switch rng.Intn(3) {
	case 0: // add a constrained member (a new seed requirement)
		c.Members++
		c.Conditions++
		return out, "add member"
	case 1: // add a predicate condition to an existing member
		c.Conditions++
		return out, "add condition"
	default: // widen the LABEL allow-list (relaxation = dropping labels)
		c.Labels++
		return out, "add label"
	}
}

// TestEstimatorMonotoneOverRelaxationLattice is the property test
// guarding the relaxation-lattice work: for a fixed graph, a query that
// strictly adds constraints or seeds never gets a lower estimate — and
// therefore never a lower class — than its relaxation. The admission
// decision made for an over-constrained query then upper-bounds every
// relaxation the engine may cascade into. The property is a guarantee
// of the static model, so the estimator is fresh (no observed
// feedback, which is keyed per exact shape and never compared across
// shapes).
func TestEstimatorMonotoneOverRelaxationLattice(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	trials := 2000
	if testing.Short() {
		trials = 300
	}
	for trial := 0; trial < trials; trial++ {
		nodes := 100 + rng.Intn(100_000)
		edges := nodes + rng.Intn(4*nodes)
		e := NewEstimator(nodes, edges, EstimatorConfig{})

		shape := randShape(rng)
		est := e.Estimate(shape, 0)
		// Walk a random chain up the lattice, checking every step.
		for step := 0; step < 4; step++ {
			stronger, op := strengthen(rng, shape)
			sEst := e.Estimate(stronger, 0)
			if sEst.Units < est.Units {
				t.Fatalf("trial %d step %d (%s): estimate dropped %.1f -> %.1f\nrelaxed:  %+v\nstronger: %+v",
					trial, step, op, est.Units, sEst.Units, shape, stronger)
			}
			if sEst.Class < est.Class {
				t.Fatalf("trial %d step %d (%s): class dropped %v -> %v (units %.1f -> %.1f)",
					trial, step, op, est.Class, sEst.Class, est.Units, sEst.Units)
			}
			shape, est = stronger, sEst
		}
	}
}

// A tightly bounded two-member CONNECT is cheap; an unbounded
// four-member enumeration is analytical; a universal member is
// analytical on any non-toy graph.
func TestEstimatorClassifiesObviousShapes(t *testing.T) {
	e := NewEstimator(5000, 20000, EstimatorConfig{})
	cheap := ctpquery.QueryShape{CTPs: []ctpquery.CTPShape{
		{Members: 2, Conditions: 2, MaxEdges: 4, Limit: 2},
	}}
	if est := e.Estimate(cheap, 0); est.Class != Cheap {
		t.Errorf("bounded 2-member CONNECT classified %v (%.0f units), want cheap", est.Class, est.Units)
	}
	heavy := ctpquery.QueryShape{CTPs: []ctpquery.CTPShape{
		{Members: 4, Conditions: 4},
	}}
	if est := e.Estimate(heavy, 0); est.Class != Analytical {
		t.Errorf("unbounded 4-member CONNECT classified %v (%.0f units), want analytical", est.Class, est.Units)
	}
	universal := ctpquery.QueryShape{CTPs: []ctpquery.CTPShape{
		{Members: 2, Conditions: 1, Universal: 1, MaxEdges: 4, Limit: 2},
	}}
	if est := e.Estimate(universal, 0); est.Class != Analytical {
		t.Errorf("universal member classified %v (%.0f units), want analytical", est.Class, est.Units)
	}
}

// The deadline budget caps the estimate: a monster shape under a tiny
// request timeout can only cost the server the timeout.
func TestEstimatorBudgetCap(t *testing.T) {
	e := NewEstimator(5000, 20000, EstimatorConfig{})
	heavy := ctpquery.QueryShape{CTPs: []ctpquery.CTPShape{{Members: 6, Conditions: 6}}}
	unbounded := e.Estimate(heavy, 0)
	bounded := e.Estimate(heavy, 10*time.Millisecond)
	if bounded.Units >= unbounded.Units {
		t.Fatalf("budget did not cap: %.0f vs %.0f", bounded.Units, unbounded.Units)
	}
	if bounded.Class != Cheap {
		t.Errorf("10ms-bounded request classified %v (%.0f units), want cheap", bounded.Class, bounded.Units)
	}
}

// Observed feedback overrides the static model for the exact shape and
// flips the class accordingly, in both directions.
func TestEstimatorLearnsObservedCost(t *testing.T) {
	e := NewEstimator(5000, 20000, EstimatorConfig{})
	shape := ctpquery.QueryShape{CTPs: []ctpquery.CTPShape{{Members: 4, Conditions: 4}}}
	first := e.Estimate(shape, 0)
	if first.Class != Analytical || first.Learned {
		t.Fatalf("static estimate: %+v", first)
	}
	// Reality: this shape is cheap on this graph (say the seeds are rare).
	for i := 0; i < 5; i++ {
		e.Observe(first.Sig, 500)
	}
	learned := e.Estimate(shape, 0)
	if !learned.Learned || learned.Class != Cheap {
		t.Fatalf("estimate after cheap observations: %+v", learned)
	}
	// And back: sustained expensive observations push it analytical again.
	for i := 0; i < 40; i++ {
		e.Observe(first.Sig, 4e6)
	}
	relearned := e.Estimate(shape, 0)
	if relearned.Class != Analytical {
		t.Fatalf("estimate after expensive observations: %+v", relearned)
	}
	st := e.Stats()
	if st.Observations != 45 || st.LearnedShapes != 1 || st.Estimates != 3 {
		t.Fatalf("estimator stats: %+v", st)
	}
}

// Shape signatures separate structurally different queries and pool
// structurally identical ones.
func TestShapeSig(t *testing.T) {
	a := ctpquery.QueryShape{CTPs: []ctpquery.CTPShape{{Members: 2, Conditions: 2, MaxEdges: 4}}}
	b := ctpquery.QueryShape{CTPs: []ctpquery.CTPShape{{Members: 2, Conditions: 2, MaxEdges: 4}}}
	c := ctpquery.QueryShape{CTPs: []ctpquery.CTPShape{{Members: 3, Conditions: 3, MaxEdges: 4}}}
	if shapeSig(a) != shapeSig(b) {
		t.Error("identical shapes got different signatures")
	}
	if shapeSig(a) == shapeSig(c) {
		t.Error("different shapes collided")
	}
}
