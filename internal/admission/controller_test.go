package admission

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestConfigDefaults(t *testing.T) {
	cfg := NewController(Config{}).Config()
	if cfg.MaxConcurrent != 4 || cfg.CheapReserve != 1 || cfg.QueueDepth != 64 || cfg.MaxQueueWait != 2*time.Second {
		t.Fatalf("defaults: %+v", cfg)
	}
	cfg = NewController(Config{MaxConcurrent: 2, CheapReserve: 5}).Config()
	if cfg.CheapReserve != 1 {
		t.Fatalf("reserve not clamped below MaxConcurrent: %+v", cfg)
	}
}

// Analytical requests can never occupy the cheap reserve: with 2 slots
// and a reserve of 1, a second analytical request queues even though a
// slot is free, and a cheap request takes that slot immediately.
func TestCheapReserve(t *testing.T) {
	c := NewController(Config{MaxConcurrent: 2, CheapReserve: 1, QueueDepth: 4, MaxQueueWait: time.Minute})
	rel1, _, err := c.Acquire(context.Background(), Analytical, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Second analytical must queue: cap is MaxConcurrent-CheapReserve=1.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, _, err := c.Acquire(ctx, Analytical, 100); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("second analytical: got err %v, want deadline exceeded while queued", err)
	}
	// Cheap takes the reserved slot without waiting.
	relC, waited, err := c.Acquire(context.Background(), Cheap, 1)
	if err != nil {
		t.Fatal(err)
	}
	if waited != 0 {
		t.Fatalf("cheap waited %v with the reserve free", waited)
	}
	relC()
	rel1()

	st := c.Stats()
	if st.Analytical.ShedExpired != 1 || st.Analytical.Admitted != 1 || st.Cheap.Admitted != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// Cheap requests may use every slot, and release wakes cheap waiters
// before analytical ones.
func TestCheapWokenFirst(t *testing.T) {
	c := NewController(Config{MaxConcurrent: 2, CheapReserve: 1, QueueDepth: 8, MaxQueueWait: time.Minute})
	relA, _, err := c.Acquire(context.Background(), Analytical, 1)
	if err != nil {
		t.Fatal(err)
	}
	relC, _, err := c.Acquire(context.Background(), Cheap, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Queue one analytical (first, FIFO-wise) and one cheap waiter.
	type result struct {
		class Class
		err   error
	}
	order := make(chan result, 2)
	var wg sync.WaitGroup
	enqueue := func(cl Class) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, _, err := c.Acquire(context.Background(), cl, 1)
			order <- result{cl, err}
			if err == nil {
				rel()
			}
		}()
		// Wait until the waiter is visibly queued.
		for i := 0; ; i++ {
			st := c.Stats()
			if st.Cheap.Queued+st.Analytical.Queued > 0 || i > 1000 {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	enqueue(Analytical)
	enqueue(Cheap)

	// Free the cheap-held slot: the cheap waiter must win it even though
	// the analytical waiter queued first (and the analytical cap is full).
	relC()
	first := <-order
	if first.err != nil || first.class != Cheap {
		t.Fatalf("first woken: %+v, want cheap", first)
	}
	relA()
	second := <-order
	if second.err != nil || second.class != Analytical {
		t.Fatalf("second woken: %+v, want analytical", second)
	}
	wg.Wait()
}

// Past QueueDepth waiters, requests shed immediately with ErrQueueFull.
func TestQueueFullShed(t *testing.T) {
	c := NewController(Config{MaxConcurrent: 1, CheapReserve: 1, QueueDepth: 1, MaxQueueWait: time.Minute})
	rel, _, err := c.Acquire(context.Background(), Cheap, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
		defer cancel()
		c.Acquire(ctx, Cheap, 1) // occupies the single queue slot, then expires
	}()
	for i := 0; c.Stats().Cheap.Queued == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if _, _, err := c.Acquire(context.Background(), Cheap, 1); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("got %v, want ErrQueueFull", err)
	}
	if got := c.Stats().Cheap.ShedFull; got != 1 {
		t.Fatalf("ShedFull = %d, want 1", got)
	}
	wg.Wait()
}

// A queued request that outlives MaxQueueWait sheds with ErrExpired.
func TestQueueWaitExpiry(t *testing.T) {
	c := NewController(Config{MaxConcurrent: 1, CheapReserve: 1, QueueDepth: 4, MaxQueueWait: 20 * time.Millisecond})
	rel, _, err := c.Acquire(context.Background(), Cheap, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	if _, _, err := c.Acquire(context.Background(), Cheap, 1); !errors.Is(err, ErrExpired) {
		t.Fatalf("got %v, want ErrExpired", err)
	}
	st := c.Stats()
	if st.Cheap.ShedExpired != 1 || st.Cheap.Queued != 0 {
		t.Fatalf("stats after expiry: %+v", st)
	}
}

// The in-flight cost budget sheds analytical requests that would exceed
// it — except the first, so one over-budget estimate cannot starve the
// class — and never sheds cheap requests.
func TestCostBudget(t *testing.T) {
	c := NewController(Config{MaxConcurrent: 4, CheapReserve: 1, CostBudget: 1000, MaxQueueWait: time.Minute})
	// First analytical is exempt even when over budget alone.
	relA, _, err := c.Acquire(context.Background(), Analytical, 5000)
	if err != nil {
		t.Fatalf("first analytical: %v", err)
	}
	if _, _, err := c.Acquire(context.Background(), Analytical, 10); !errors.Is(err, ErrBudget) {
		t.Fatalf("second analytical: got %v, want ErrBudget", err)
	}
	// Cheap ignores the budget entirely.
	relC, _, err := c.Acquire(context.Background(), Cheap, 5000)
	if err != nil {
		t.Fatalf("cheap under exhausted budget: %v", err)
	}
	relC()
	relA()
	// Budget freed: analytical admits again.
	relA2, _, err := c.Acquire(context.Background(), Analytical, 900)
	if err != nil {
		t.Fatalf("analytical after release: %v", err)
	}
	relA2()
	if got := c.Stats().Analytical.ShedBudget; got != 1 {
		t.Fatalf("ShedBudget = %d, want 1", got)
	}
}

// Release is idempotent: calling it twice must not free two slots.
func TestReleaseIdempotent(t *testing.T) {
	c := NewController(Config{MaxConcurrent: 1, CheapReserve: 1})
	rel, _, err := c.Acquire(context.Background(), Cheap, 7)
	if err != nil {
		t.Fatal(err)
	}
	rel()
	rel()
	st := c.Stats()
	if st.Cheap.Running != 0 || st.InFlightCost != 0 {
		t.Fatalf("after double release: %+v", st)
	}
	// And the single slot is usable exactly once at a time afterwards.
	rel2, _, err := c.Acquire(context.Background(), Cheap, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer rel2()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, _, err := c.Acquire(ctx, Cheap, 1); err == nil {
		t.Fatal("second concurrent acquire succeeded on a 1-slot controller")
	}
}

// Hammer the controller from many goroutines of both classes and check
// the accounting converges to zero with no lost or duplicated slots.
// Run under -race this is the concurrency test for the grant/expire race.
func TestConcurrentChurn(t *testing.T) {
	c := NewController(Config{MaxConcurrent: 3, CheapReserve: 1, QueueDepth: 16, MaxQueueWait: 10 * time.Millisecond})
	var running, peak int64
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		class := Cheap
		if i%3 == 0 {
			class = Analytical
		}
		go func(cl Class) {
			defer wg.Done()
			for j := 0; j < 40; j++ {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
				rel, _, err := c.Acquire(ctx, cl, 10)
				if err == nil {
					n := atomic.AddInt64(&running, 1)
					for {
						p := atomic.LoadInt64(&peak)
						if n <= p || atomic.CompareAndSwapInt64(&peak, p, n) {
							break
						}
					}
					time.Sleep(time.Duration(j%3) * time.Millisecond)
					atomic.AddInt64(&running, -1)
					rel()
				}
				cancel()
			}
		}(class)
	}
	wg.Wait()
	if p := atomic.LoadInt64(&peak); p > 3 {
		t.Fatalf("observed %d concurrent holders, cap is 3", p)
	}
	st := c.Stats()
	if st.Cheap.Running != 0 || st.Analytical.Running != 0 || st.Cheap.Queued != 0 || st.Analytical.Queued != 0 {
		t.Fatalf("non-quiescent after churn: %+v", st)
	}
	if st.InFlightCost != 0 {
		t.Fatalf("leaked in-flight cost: %v", st.InFlightCost)
	}
	if st.Cheap.Admitted == 0 || st.Analytical.Admitted == 0 {
		t.Fatalf("suspiciously idle churn: %+v", st)
	}
}

// RetryAfter scales with queue depth and never returns below 1s.
func TestRetryAfter(t *testing.T) {
	c := NewController(Config{MaxConcurrent: 2, CheapReserve: 1, QueueDepth: 64, MaxQueueWait: 2 * time.Second})
	if got := c.RetryAfter(Cheap); got != 2 {
		t.Fatalf("idle RetryAfter = %d, want 2", got)
	}
	rel, _, err := c.Acquire(context.Background(), Analytical, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	var wg sync.WaitGroup
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Acquire(ctx, Analytical, 1)
		}()
	}
	for i := 0; c.Stats().Analytical.Queued < 3 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if got := c.RetryAfter(Analytical); got <= 2 {
		t.Fatalf("RetryAfter with 3 queued on 1 slot = %d, want > 2", got)
	}
	cancel()
	wg.Wait()
}
