package admission

import (
	"context"
	"errors"
	"sync"
	"time"

	"ctpquery/internal/obs"
)

// Shed reasons returned by Acquire. Servers translate every one of them
// into 429 + Retry-After: the request never executed and may be retried
// verbatim once pressure drops.
var (
	// ErrQueueFull sheds a request because its class's wait queue is at
	// capacity — the server is saturated beyond what bounded queueing
	// can absorb.
	ErrQueueFull = errors.New("admission: queue full")
	// ErrExpired sheds a queued request whose deadline (or the
	// controller's MaxQueueWait) passed before a slot freed: executing
	// it now would do work no one is waiting for.
	ErrExpired = errors.New("admission: queued request expired")
	// ErrBudget sheds an analytical request that would push the summed
	// in-flight estimated cost past the configured budget.
	ErrBudget = errors.New("admission: in-flight cost budget exhausted")
)

// Config tunes the controller; zero values select documented defaults.
type Config struct {
	// MaxConcurrent is the total number of requests executing at once
	// (default 4). Each CTP search is CPU-bound, so this tracks cores,
	// not connections.
	MaxConcurrent int
	// CheapReserve is how many of those slots only Cheap requests may
	// occupy (default 1, clamped below MaxConcurrent). The reserve is
	// what guarantees a cached/cheap request never waits behind a full
	// house of analytical enumerations.
	CheapReserve int
	// QueueDepth bounds each class's wait queue (default 64); beyond it
	// requests shed with ErrQueueFull.
	QueueDepth int
	// MaxQueueWait bounds how long a request may wait for a slot
	// (default 2s), independent of its own deadline.
	MaxQueueWait time.Duration
	// CostBudget, when positive, bounds the summed estimated cost units
	// of in-flight requests: an analytical request that would exceed it
	// sheds immediately with ErrBudget (one analytical request is always
	// allowed to run, so a single huge estimate cannot wedge the class).
	CostBudget float64
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
	}
	if c.CheapReserve < 0 {
		c.CheapReserve = 0
	}
	if c.CheapReserve == 0 {
		c.CheapReserve = 1
	}
	if c.CheapReserve >= c.MaxConcurrent {
		c.CheapReserve = c.MaxConcurrent - 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxQueueWait <= 0 {
		c.MaxQueueWait = 2 * time.Second
	}
	return c
}

// Controller is the bounded two-class admission queue. All methods are
// safe for concurrent use.
//
// Scheduling is strict two-class priority with a reserve: Cheap
// requests may use every slot and are always woken first; Analytical
// requests are capped at MaxConcurrent−CheapReserve slots. Within a
// class, waiters are served FIFO. A waiter that expires or is canceled
// while queued is counted shed and never executes.
type Controller struct {
	cfg Config

	mu          sync.Mutex
	running     [2]int
	cost        float64 // summed estimated units of in-flight requests
	budgetScale float64 // degradation multiplier on CostBudget; 1 = normal
	waiters     [2][]*waiter

	admitted    [2]int64
	shedFull    [2]int64
	shedExpired [2]int64
	shedBudget  [2]int64
	waitNS      [2]int64 // summed queue wait of admitted requests
	peakQueue   [2]int
}

// waiter is one queued Acquire call.
type waiter struct {
	ready   chan struct{} // closed when a slot is assigned
	class   Class
	cost    float64
	granted bool // slot already accounted to this waiter
	gone    bool // waiter abandoned (expired/canceled); skip on wake
}

// NewController builds a controller.
func NewController(cfg Config) *Controller {
	return &Controller{cfg: cfg.withDefaults(), budgetScale: 1}
}

// SetBudgetScale tightens (or restores) the analytical cost budget: the
// effective budget is CostBudget * scale. The degradation watchdog
// lowers the scale under memory pressure so expensive queries are shed
// earlier; scale values outside (0, 1] are clamped to 1.
func (c *Controller) SetBudgetScale(scale float64) {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	c.mu.Lock()
	c.budgetScale = scale
	c.mu.Unlock()
}

// Config returns the effective (defaulted) configuration.
func (c *Controller) Config() Config { return c.cfg }

// Acquire obtains an execution slot for a request of the given class
// and estimated cost, blocking in the class's bounded FIFO queue while
// the server is busy. On success it returns a release function (callers
// must invoke it exactly once, after the request finishes) and the time
// spent queued. It fails with ErrQueueFull, ErrExpired, or ErrBudget —
// all meaning "shed, never executed" — or the ctx error if the caller's
// context ends first.
func (c *Controller) Acquire(ctx context.Context, class Class, cost float64) (release func(), waited time.Duration, err error) {
	// Child of the request's root span (nil no-op when tracing is off or
	// the caller has no trace): queue wait is the stage admission adds to
	// a request's latency, so it gets its own span rather than vanishing
	// into the gap between parse and eval.
	sp := obs.FromContext(ctx).Child("admission.wait")
	sp.Attr("class", class.String())
	defer func() {
		if err != nil {
			sp.Error(err)
		}
		sp.End()
	}()
	c.mu.Lock()
	if c.canRunLocked(class) {
		if class == Analytical && !c.withinBudgetLocked(cost) {
			c.shedBudget[class]++
			c.mu.Unlock()
			return nil, 0, ErrBudget
		}
		c.grantLocked(class, cost)
		c.mu.Unlock()
		return c.releaseFunc(class, cost), 0, nil
	}
	// The budget check also sheds immediately for requests that would
	// queue: a budget-breaking estimate will break it just the same
	// after waiting, so fail fast while the client can still back off.
	if class == Analytical && !c.withinBudgetLocked(cost) {
		c.shedBudget[class]++
		c.mu.Unlock()
		return nil, 0, ErrBudget
	}
	if len(c.waiters[class]) >= c.cfg.QueueDepth {
		c.shedFull[class]++
		c.mu.Unlock()
		return nil, 0, ErrQueueFull
	}
	sp.AttrBool("queued", true)
	w := &waiter{ready: make(chan struct{}), class: class, cost: cost}
	c.waiters[class] = append(c.waiters[class], w)
	if n := len(c.waiters[class]); n > c.peakQueue[class] {
		c.peakQueue[class] = n
	}
	c.mu.Unlock()

	start := time.Now()
	timer := time.NewTimer(c.cfg.MaxQueueWait)
	defer timer.Stop()
	select {
	case <-w.ready:
		waited = time.Since(start)
		c.mu.Lock()
		c.waitNS[class] += int64(waited)
		c.mu.Unlock()
		return c.releaseFunc(class, cost), waited, nil
	case <-ctx.Done():
		err = ctx.Err()
	case <-timer.C:
		err = ErrExpired
	}
	// Expired or canceled while queued. The grant may have raced us: if
	// a slot was already assigned, hand it straight back (waking the
	// next waiter); either way this request never executes.
	c.mu.Lock()
	w.gone = true
	for i, q := range c.waiters[class] {
		if q == w {
			c.waiters[class] = append(c.waiters[class][:i], c.waiters[class][i+1:]...)
			break
		}
	}
	if w.granted {
		c.releaseLocked(class, cost)
	}
	c.shedExpired[class]++
	c.mu.Unlock()
	return nil, 0, err
}

// canRunLocked reports whether a request of class could start now.
func (c *Controller) canRunLocked(class Class) bool {
	total := c.running[Cheap] + c.running[Analytical]
	if total >= c.cfg.MaxConcurrent {
		return false
	}
	if class == Analytical {
		return c.running[Analytical] < c.cfg.MaxConcurrent-c.cfg.CheapReserve
	}
	return true
}

// withinBudgetLocked reports whether adding cost keeps the in-flight
// estimate under the budget; the first analytical request is exempt so
// one over-budget estimate cannot wedge the class forever.
func (c *Controller) withinBudgetLocked(cost float64) bool {
	if c.cfg.CostBudget <= 0 {
		return true
	}
	if c.running[Analytical] == 0 && len(c.waiters[Analytical]) == 0 {
		return true
	}
	return c.cost+cost <= c.cfg.CostBudget*c.budgetScale
}

// grantLocked accounts a running request.
func (c *Controller) grantLocked(class Class, cost float64) {
	c.running[class]++
	c.cost += cost
	c.admitted[class]++
}

// releaseFunc returns the idempotence-guarded release closure.
func (c *Controller) releaseFunc(class Class, cost float64) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			c.mu.Lock()
			c.releaseLocked(class, cost)
			c.mu.Unlock()
		})
	}
}

// releaseLocked returns a slot and wakes the best waiter: cheap first
// (they may use any slot, including the freed one), then analytical if
// its cap allows. Abandoned waiters are discarded in passing.
func (c *Controller) releaseLocked(class Class, cost float64) {
	c.running[class]--
	c.cost -= cost
	for {
		var w *waiter
		var wc Class
		if c.popLocked(Cheap, &w) {
			wc = Cheap
		} else if c.canRunLocked(Analytical) && c.popLocked(Analytical, &w) {
			wc = Analytical
		} else {
			return
		}
		if !c.canRunLocked(wc) {
			// Raced below capacity change; put the waiter back at the
			// front and stop.
			c.waiters[wc] = append([]*waiter{w}, c.waiters[wc]...)
			return
		}
		c.grantLocked(wc, w.cost)
		w.granted = true
		close(w.ready)
		if c.running[Cheap]+c.running[Analytical] >= c.cfg.MaxConcurrent {
			return
		}
	}
}

// popLocked pops the first live waiter of class into *w, discarding
// abandoned ones.
func (c *Controller) popLocked(class Class, w **waiter) bool {
	for len(c.waiters[class]) > 0 {
		head := c.waiters[class][0]
		c.waiters[class] = c.waiters[class][1:]
		if head.gone {
			continue
		}
		*w = head
		return true
	}
	return false
}

// ClassStats is one class's controller counters.
type ClassStats struct {
	Running     int   // executing now
	Queued      int   // waiting now
	PeakQueued  int   // high-water queue depth
	Admitted    int64 // granted a slot
	ShedFull    int64 // rejected, queue at capacity
	ShedExpired int64 // rejected, expired or canceled while queued
	ShedBudget  int64 // rejected, in-flight cost budget exhausted
	AvgWaitMS   float64
}

// Stats is a controller snapshot for /stats.
type Stats struct {
	Cheap        ClassStats
	Analytical   ClassStats
	InFlightCost float64
	BudgetScale  float64 // current degradation multiplier on CostBudget
}

// Shed returns the class's total shed count.
func (s ClassStats) Shed() int64 { return s.ShedFull + s.ShedExpired + s.ShedBudget }

// Stats returns a snapshot of the counters.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	snap := func(cl Class) ClassStats {
		s := ClassStats{
			Running:     c.running[cl],
			Queued:      len(c.waiters[cl]),
			PeakQueued:  c.peakQueue[cl],
			Admitted:    c.admitted[cl],
			ShedFull:    c.shedFull[cl],
			ShedExpired: c.shedExpired[cl],
			ShedBudget:  c.shedBudget[cl],
		}
		if s.Admitted > 0 {
			s.AvgWaitMS = float64(c.waitNS[cl]) / float64(s.Admitted) / 1e6
		}
		return s
	}
	return Stats{Cheap: snap(Cheap), Analytical: snap(Analytical), InFlightCost: c.cost, BudgetScale: c.budgetScale}
}

// RetryAfter suggests the Retry-After seconds for a shed request of the
// given class: roughly how long until queued work of that class drains,
// floored at one second.
func (c *Controller) RetryAfter(class Class) int {
	c.mu.Lock()
	queued := len(c.waiters[class])
	c.mu.Unlock()
	slots := c.cfg.MaxConcurrent - c.cfg.CheapReserve
	if class == Cheap {
		slots = c.cfg.MaxConcurrent
	}
	if slots < 1 {
		slots = 1
	}
	s := int(c.cfg.MaxQueueWait.Seconds()) * (1 + queued/slots)
	if s < 1 {
		s = 1
	}
	return s
}
