// Package admission is the server's self-defense layer: a per-request
// cost estimator and a bounded two-class admission queue with
// load-shedding. It turns "fast kernel" into "fast service" — cheap and
// cached requests must never sit behind 10-second analytical searches,
// and saturation must answer 429 quickly instead of queueing without
// bound (DESIGN.md §8).
package admission

import (
	"math"
	"sync"
	"time"

	"ctpquery"
)

// Class is a request's scheduling class.
type Class int

const (
	// Cheap requests are expected to finish in tens of milliseconds:
	// tightly bounded searches and BGP-only queries. They may use every
	// execution slot, including a reserve analytical requests cannot
	// touch, and are woken first when a slot frees.
	Cheap Class = iota
	// Analytical requests are heavy-tail enumerations. They are capped
	// below the total slot count so a flood of them can never occupy the
	// whole server.
	Analytical
)

// String returns the class name used in responses and /stats.
func (c Class) String() string {
	if c == Cheap {
		return "cheap"
	}
	return "analytical"
}

// UnitsPerMS converts between cost units (provenance-tree
// constructions, SearchStats.CostUnits) and milliseconds of search: the
// sequential kernel builds trees at single-digit-microsecond cost, so a
// millisecond is on the order of a thousand units. The constant only
// needs to be right within an order of magnitude — the static model
// classifies, and the online feedback loop corrects per shape.
const UnitsPerMS = 2000

// EstimatorConfig tunes the estimator; zero values select defaults.
type EstimatorConfig struct {
	// CheapThreshold is the estimated-units boundary between the classes
	// (default DefaultCheapThreshold ≈ 50ms of search).
	CheapThreshold float64
	// Alpha is the EWMA weight of a new observation (default 0.3).
	Alpha float64
}

// DefaultCheapThreshold classifies everything estimated above ~50ms of
// search effort as analytical.
const DefaultCheapThreshold = 50 * UnitsPerMS

// Estimator predicts the cost class of a query before it runs. The
// static model is seeded from graph statistics and the query shape; an
// exponentially weighted average of observed per-shape effort corrects
// it online, so systematically mis-priced shapes converge to their
// measured cost.
//
// The static model is deliberately monotone over the relaxation
// lattice: adding a member or a predicate condition to a CONNECT clause
// never lowers the estimate (seed-set selectivity is NOT modeled). An
// over-constrained query must be priced at least as high as any of its
// relaxations, because the future relaxation work will run relaxations
// under the admission decision made for the original query; the
// property test in estimator_test.go pins this.
type Estimator struct {
	nodes, edges   int
	branch         float64 // average undirected degree, the frontier growth base
	cheapThreshold float64
	alpha          float64

	mu       sync.Mutex
	observed map[uint64]*ewma

	estimates    int64
	observations int64
}

// ewma is one shape's learned cost.
type ewma struct {
	mean float64
	n    int64
}

// NewEstimator builds an estimator for a graph with the given node and
// edge counts.
func NewEstimator(nodes, edges int, cfg EstimatorConfig) *Estimator {
	if cfg.CheapThreshold <= 0 {
		cfg.CheapThreshold = DefaultCheapThreshold
	}
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		cfg.Alpha = 0.3
	}
	if nodes < 1 {
		nodes = 1
	}
	branch := float64(2*edges) / float64(nodes)
	if branch < 2 {
		branch = 2
	}
	return &Estimator{
		nodes:          nodes,
		edges:          edges,
		branch:         branch,
		cheapThreshold: cfg.CheapThreshold,
		alpha:          cfg.Alpha,
		observed:       make(map[uint64]*ewma),
	}
}

// Estimate is one request's predicted cost.
type Estimate struct {
	// Units is the predicted effort in cost units (UnitsPerMS per
	// millisecond of search).
	Units float64
	// Class is the scheduling class Units implies.
	Class Class
	// Sig identifies the query's shape; pass it to Observe with the
	// measured effort after the request executes.
	Sig uint64
	// Learned reports whether Units came from observed feedback rather
	// than the static model.
	Learned bool
}

// depthCap bounds the modeled search depth when MAX is absent; beyond
// ~12 edges the frontier term saturates against the edge count anyway.
const depthCap = 12

// Estimate prices a query shape. budget, when positive, is the
// request's effective deadline — effort is capped at what the deadline
// lets the engine spend, so a tightly bounded request on a huge shape
// still classifies by what it can actually cost the server.
func (e *Estimator) Estimate(shape ctpquery.QueryShape, budget time.Duration) Estimate {
	sig := shapeSig(shape)

	e.mu.Lock()
	e.estimates++
	w, learned := e.observed[sig]
	var units float64
	if learned {
		units = w.mean
	}
	e.mu.Unlock()

	if !learned {
		units = e.staticUnits(shape)
	}
	if budget > 0 {
		if cap := float64(budget.Milliseconds()+1) * UnitsPerMS; units > cap {
			units = cap
		}
	}
	class := Cheap
	if units >= e.cheapThreshold {
		class = Analytical
	}
	return Estimate{Units: units, Class: class, Sig: sig, Learned: learned}
}

// staticUnits is the shape-only cost model. Per CONNECT clause:
//
//		units = seeds × frontier × combinations × (1 + 0.05·conditions)
//
//	  - frontier is the depth-bounded candidate growth m·min(branch^depth,
//	    4E): every member's seed set expands wave by wave up to the MAX
//	    bound (or depthCap when unbounded), saturating against the edge
//	    count — a frontier cannot outgrow the graph.
//	  - combinations is 2^(m−1): merged provenances multiply across
//	    members, the explosion Figure 11 plots against m.
//	  - seeds multiplies by the node count per universal member (a member
//	    with no conditions and no BGP binding seeds at every node).
//	    Constrained members are charged 1 regardless of selectivity —
//	    deliberately, for lattice monotonicity (see the type comment).
//	  - conditions add predicate-evaluation cost per candidate and never
//	    reduce the estimate, again for monotonicity: an over-constrained
//	    query explores its whole bounded frontier before concluding
//	    "no results", it does not get cheaper by matching less.
//
// A per-CTP LIMIT caps the clause at roughly the effort of surfacing
// Limit results from one frontier; a per-CTP TIMEOUT caps it at what
// the time bound allows. BGP patterns add a scan term linear in the
// edge count.
func (e *Estimator) staticUnits(shape ctpquery.QueryShape) float64 {
	total := 16.0
	total += float64(shape.BGPPatterns) * (float64(e.edges)/64 + 16)
	for _, c := range shape.CTPs {
		depth := c.MaxEdges
		if depth <= 0 || depth > depthCap {
			depth = depthCap
		}
		frontier := math.Pow(e.branch, float64(depth))
		if lim := 4 * float64(e.edges); frontier > lim {
			frontier = lim
		}
		frontier *= float64(c.Members)
		condPenalty := 1 + 0.05*float64(c.Conditions)
		seeds := math.Pow(float64(e.nodes), float64(c.Universal))
		combos := math.Pow(2, float64(c.Members-1))

		units := seeds * frontier * combos * condPenalty
		if c.Limit > 0 {
			if cap := seeds * frontier * condPenalty * float64(1+c.Limit); units > cap {
				units = cap
			}
		}
		if c.Timeout > 0 {
			if cap := float64(c.Timeout.Milliseconds()+1) * UnitsPerMS; units > cap {
				units = cap
			}
		}
		total += units
	}
	return total
}

// Observe feeds one executed request's measured effort back into the
// estimator under the shape signature its Estimate reported. Callers
// must only report real executions — cache hits and coalesced waiters
// re-report another run's stats and would double-count.
func (e *Estimator) Observe(sig uint64, actualUnits float64) {
	if actualUnits < 1 {
		actualUnits = 1
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.observations++
	w := e.observed[sig]
	if w == nil {
		e.observed[sig] = &ewma{mean: actualUnits, n: 1}
		return
	}
	w.mean += e.alpha * (actualUnits - w.mean)
	w.n++
}

// EstimatorStats is a snapshot of the estimator counters for /stats.
type EstimatorStats struct {
	Estimates     int64 // Estimate calls
	Observations  int64 // Observe calls
	LearnedShapes int   // distinct shapes with observed feedback
}

// Stats returns a snapshot of the counters.
func (e *Estimator) Stats() EstimatorStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return EstimatorStats{
		Estimates:     e.estimates,
		Observations:  e.observations,
		LearnedShapes: len(e.observed),
	}
}

// shapeSig hashes the shape fields that drive the static model (FNV-1a).
// Label/property values are deliberately absent: learning pools every
// query with the same structure, which is what makes a few observations
// cover a whole workload of distinct node pairs.
func shapeSig(s ctpquery.QueryShape) uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mix(uint64(s.BGPPatterns))
	mix(uint64(s.Limit))
	for _, c := range s.CTPs {
		mix(uint64(c.Members))
		mix(uint64(c.Universal))
		mix(uint64(c.Conditions))
		mix(uint64(c.MaxEdges))
		mix(uint64(c.Labels))
		if c.Uni {
			mix(1)
		} else {
			mix(2)
		}
		mix(uint64(c.Limit))
		mix(uint64(c.TopK))
		mix(uint64(c.Timeout))
	}
	return h
}
