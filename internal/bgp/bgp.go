// Package bgp evaluates Basic Graph Patterns (Definition 2.4) over a
// graph: it computes every embedding (Definition 2.7) of a BGP's variables
// into nodes and edges, returning a binding table. This is step (A) of the
// EQL evaluation strategy (Section 3), the part the paper delegates to a
// conjunctive query engine (PostgreSQL in their setup).
//
// Evaluation is index-backed: each edge pattern picks its cheapest access
// path (edge-label index, node-label or type index plus adjacency, or a
// full edge scan), patterns are joined with hash joins in ascending
// cardinality order, and anonymous positions are projected away eagerly.
package bgp

import (
	"fmt"
	"sort"

	"ctpquery/internal/eql"
	"ctpquery/internal/graph"
	"ctpquery/internal/storage"
)

// Evaluate computes the binding table of b over g. Columns are the BGP's
// named variables; rows are deduplicated (set semantics, Definition 2.10).
// A BGP with only constant patterns produces a zero-column table with one
// row when the pattern is satisfiable and zero rows otherwise.
func Evaluate(g *graph.Graph, b eql.BGP) (*storage.Table, error) {
	if len(b.Patterns) == 0 {
		return nil, fmt.Errorf("bgp: empty pattern set")
	}
	if err := checkRoles(b); err != nil {
		return nil, err
	}

	tables := make([]*storage.Table, 0, len(b.Patterns))
	for _, ep := range b.Patterns {
		t := scanPattern(g, ep)
		tables = append(tables, t.Distinct())
	}
	// Join in ascending-cardinality order, preferring join partners that
	// share a column with what has been joined so far (to avoid needless
	// cross products; within one BGP, connectivity guarantees a shared
	// variable exists eventually).
	sort.SliceStable(tables, func(i, j int) bool { return tables[i].NumRows() < tables[j].NumRows() })
	acc := tables[0]
	rest := tables[1:]
	for len(rest) > 0 {
		picked := -1
		for i, t := range rest {
			if sharesColumn(acc, t) {
				picked = i
				break
			}
		}
		if picked == -1 {
			picked = 0 // no shared column yet: cross product, as SQL would
		}
		acc = storage.NaturalJoin(acc, rest[picked])
		rest = append(rest[:picked], rest[picked+1:]...)
	}
	return acc.Distinct(), nil
}

// checkRoles verifies that each variable is used consistently as a node
// variable or an edge variable; an embedding maps a variable to one
// element, so mixing roles can never match.
func checkRoles(b eql.BGP) error {
	role := map[string]string{}
	note := func(v, r string) error {
		if v == "" {
			return nil
		}
		if prev, ok := role[v]; ok && prev != r {
			return fmt.Errorf("bgp: variable ?%s used as both %s and %s", v, prev, r)
		}
		role[v] = r
		return nil
	}
	for _, ep := range b.Patterns {
		if err := note(ep.Src.Var, "node"); err != nil {
			return err
		}
		if err := note(ep.Edge.Var, "edge"); err != nil {
			return err
		}
		if err := note(ep.Dst.Var, "node"); err != nil {
			return err
		}
	}
	return nil
}

func sharesColumn(a, b *storage.Table) bool {
	for _, c := range b.Cols() {
		if a.HasColumn(c) {
			return true
		}
	}
	return false
}

// scanPattern materializes the bindings of a single edge pattern, keeping
// only named-variable columns.
func scanPattern(g *graph.Graph, ep eql.EdgePattern) *storage.Table {
	var cols []string
	addCol := func(v string) {
		if v == "" {
			return
		}
		for _, c := range cols {
			if c == v {
				return
			}
		}
		cols = append(cols, v)
	}
	addCol(ep.Src.Var)
	addCol(ep.Edge.Var)
	addCol(ep.Dst.Var)
	out := storage.NewTable(cols...)
	colIdx := map[string]int{}
	for i, c := range cols {
		colIdx[c] = i
	}

	emit := func(e graph.EdgeID) {
		ed := g.Edge(e)
		if !ep.Src.MatchNode(g, ed.Source) ||
			!ep.Edge.MatchEdge(g, e) ||
			!ep.Dst.MatchNode(g, ed.Target) {
			return
		}
		// Repeated variables within the pattern must bind equal elements.
		if ep.Src.Var != "" && ep.Src.Var == ep.Dst.Var && ed.Source != ed.Target {
			return
		}
		row := make([]int32, len(cols))
		if ep.Src.Var != "" {
			row[colIdx[ep.Src.Var]] = int32(ed.Source)
		}
		if ep.Edge.Var != "" {
			row[colIdx[ep.Edge.Var]] = int32(e)
		}
		if ep.Dst.Var != "" {
			row[colIdx[ep.Dst.Var]] = int32(ed.Target)
		}
		out.AddRow(row...)
	}

	// Access path selection by estimated cardinality.
	edgeSel := ep.Edge.Selectivity(g, false)
	srcSel := ep.Src.Selectivity(g, true)
	dstSel := ep.Dst.Selectivity(g, true)
	switch {
	case edgeSel <= srcSel && edgeSel <= dstSel && edgeSel < g.NumEdges():
		for _, e := range ep.Edge.SelectEdges(g) {
			emit(e)
		}
	case srcSel <= dstSel && srcSel < g.NumNodes():
		for _, n := range ep.Src.SelectNodes(g) {
			for _, e := range g.Out(n) {
				emit(e)
			}
		}
	case dstSel < g.NumNodes():
		for _, n := range ep.Dst.SelectNodes(g) {
			for _, e := range g.In(n) {
				emit(e)
			}
		}
	default:
		// Full ID-space scan: on a live epoch view, skip deleted slots.
		for i := 0; i < g.NumEdges(); i++ {
			if !g.EdgeAlive(graph.EdgeID(i)) {
				continue
			}
			emit(graph.EdgeID(i))
		}
	}
	return out
}
