package bgp

import (
	"testing"

	"ctpquery/internal/eql"
	"ctpquery/internal/gen"
	"ctpquery/internal/graph"
)

func mustParse(t *testing.T, src string) *eql.Query {
	t.Helper()
	q, err := eql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestSinglePattern(t *testing.T) {
	g := gen.Sample()
	q := mustParse(t, `SELECT ?x WHERE { ?x citizenOf ?c . }`)
	tb, err := Evaluate(g, q.BGPs[0])
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 5 {
		t.Fatalf("rows = %d, want 5 citizenOf bindings", tb.NumRows())
	}
	if !tb.HasColumn("x") || !tb.HasColumn("c") {
		t.Fatalf("cols = %v", tb.Cols())
	}
}

func TestConstantObjectDedup(t *testing.T) {
	g := gen.Sample()
	q := mustParse(t, `SELECT ?x WHERE { ?x citizenOf France . }`)
	tb, err := Evaluate(g, q.BGPs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Alice, Doug, Elon.
	if tb.NumRows() != 3 {
		t.Fatalf("rows = %d, want 3", tb.NumRows())
	}
	if len(tb.Cols()) != 1 {
		t.Fatalf("anonymous positions must be projected away: %v", tb.Cols())
	}
}

func TestJoinAcrossPatterns(t *testing.T) {
	g := gen.Sample()
	q := mustParse(t, `SELECT ?x ?o WHERE { ?x citizenOf USA . ?x founded ?o . }`)
	tb, err := Evaluate(g, q.BGPs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Bob founded OrgB; Carole founded OrgA and OrgC.
	if tb.NumRows() != 3 {
		t.Fatalf("rows = %d, want 3\n%s", tb.NumRows(), tb)
	}
}

func TestTriangleJoin(t *testing.T) {
	g := gen.Sample()
	// Entrepreneurs investing in a company located in the USA.
	q := mustParse(t, `SELECT ?p ?c WHERE {
		?p investsIn ?c .
		?c locatedIn USA .
	}`)
	tb, err := Evaluate(g, q.BGPs[0])
	if err != nil {
		t.Fatal(err)
	}
	// OrgC is in the USA; Doug and Falcon invest in OrgC.
	if tb.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2\n%s", tb.NumRows(), tb)
	}
}

func TestEdgeVariableBinding(t *testing.T) {
	g := gen.Sample()
	q := mustParse(t, `SELECT ?e WHERE { Alice ?e France . }`)
	tb, err := Evaluate(g, q.BGPs[0])
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 1 {
		t.Fatalf("rows = %d, want 1", tb.NumRows())
	}
	e := graph.EdgeID(tb.Row(0)[tb.Column("e")])
	if g.EdgeLabel(e) != "citizenOf" {
		t.Fatalf("edge label = %q", g.EdgeLabel(e))
	}
}

func TestTypeFilterInPattern(t *testing.T) {
	g := gen.Sample()
	q := mustParse(t, `SELECT ?x WHERE {
		?x citizenOf France .
		FILTER type(?x) = politician .
	}`)
	tb, err := Evaluate(g, q.BGPs[0])
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 1 {
		t.Fatalf("rows = %d, want 1 (Elon)", tb.NumRows())
	}
	n := graph.NodeID(tb.Row(0)[tb.Column("x")])
	if g.NodeLabel(n) != "Elon" {
		t.Fatalf("bound %q", g.NodeLabel(n))
	}
}

func TestSelfLoopVariable(t *testing.T) {
	b := graph.NewBuilder()
	n := b.AddNode("n")
	m := b.AddNode("m")
	b.AddEdge(n, "self", n)
	b.AddEdge(n, "self", m)
	g := b.Build()
	q := mustParse(t, `SELECT ?x WHERE { ?x self ?x . }`)
	tb, err := Evaluate(g, q.BGPs[0])
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 1 {
		t.Fatalf("rows = %d, want only the true self-loop", tb.NumRows())
	}
}

func TestExistenceOnlyPattern(t *testing.T) {
	g := gen.Sample()
	q := mustParse(t, `SELECT * WHERE { Alice citizenOf France . }`)
	tb, err := Evaluate(g, q.BGPs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Cols()) != 0 || tb.NumRows() != 1 {
		t.Fatalf("existence check: %d cols, %d rows", len(tb.Cols()), tb.NumRows())
	}
	q2 := mustParse(t, `SELECT * WHERE { Alice citizenOf USA . }`)
	tb2, err := Evaluate(g, q2.BGPs[0])
	if err != nil {
		t.Fatal(err)
	}
	if tb2.NumRows() != 0 {
		t.Fatalf("false existence check returned %d rows", tb2.NumRows())
	}
}

func TestVariableRoleConflict(t *testing.T) {
	b := eql.BGP{Patterns: []eql.EdgePattern{
		{Src: eql.Var("x"), Edge: eql.Var("e"), Dst: eql.Var("y")},
		{Src: eql.Var("e"), Edge: eql.Var("f"), Dst: eql.Var("y")},
	}}
	if _, err := Evaluate(gen.Sample(), b); err == nil {
		t.Fatal("node/edge role conflict should error")
	}
}

func TestEmptyBGP(t *testing.T) {
	if _, err := Evaluate(gen.Sample(), eql.BGP{}); err == nil {
		t.Fatal("empty BGP should error")
	}
}

func TestGlobPredicateScan(t *testing.T) {
	g := gen.Sample()
	q := mustParse(t, `SELECT ?x WHERE {
		?x founded ?o .
		FILTER label(?o) ~ "Org*" .
	}`)
	tb, err := Evaluate(g, q.BGPs[0])
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 3 {
		t.Fatalf("rows = %d, want 3", tb.NumRows())
	}
}

func TestLargeScanChoosesIndex(t *testing.T) {
	// On a KG-sized graph a label-indexed scan must return the same rows
	// as the semantics require, quickly.
	kg := gen.YAGOLike(200, 1)
	q := mustParse(t, `SELECT ?p ?o WHERE { ?p worksFor ?o . }`)
	tb, err := Evaluate(kg.Graph, q.BGPs[0])
	if err != nil {
		t.Fatal(err)
	}
	want := len(kg.Graph.EdgesWithLabel(mustLabel(t, kg.Graph, "worksFor")))
	if tb.NumRows() > want {
		t.Fatalf("rows = %d, more than worksFor edge count %d", tb.NumRows(), want)
	}
	if tb.NumRows() == 0 {
		t.Fatal("no worksFor bindings")
	}
}

func mustLabel(t *testing.T, g *graph.Graph, s string) graph.LabelID {
	t.Helper()
	l, ok := g.LabelIDOf(s)
	if !ok {
		t.Fatalf("label %q missing", s)
	}
	return l
}

func TestDuplicateEliminationSetSemantics(t *testing.T) {
	// Two anonymous France memberships for the same person must collapse.
	b := graph.NewBuilder()
	p := b.AddNode("p")
	f1 := b.AddNode("f1")
	f2 := b.AddNode("f2")
	b.AddEdge(p, "knows", f1)
	b.AddEdge(p, "knows", f2)
	g := b.Build()
	q := mustParse(t, `SELECT ?x WHERE { ?x knows ?anyone . }`)
	_ = q
	// With the object anonymous, ?x must appear once.
	bgpAnon := eql.BGP{Patterns: []eql.EdgePattern{
		{Src: eql.Var("x"), Edge: eql.Label("knows"), Dst: eql.Predicate{}},
	}}
	tb, err := Evaluate(g, bgpAnon)
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 1 {
		t.Fatalf("rows = %d, want 1 after dedup", tb.NumRows())
	}
}
