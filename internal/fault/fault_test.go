package fault

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestUnarmedProbeIsInert(t *testing.T) {
	p := Register("test.inert")
	defer Reset()
	for i := 0; i < 1000; i++ {
		p.Hit()
		if err := p.Err(); err != nil {
			t.Fatalf("unarmed Err returned %v", err)
		}
	}
	if Armed() {
		t.Fatal("nothing armed, but Armed() = true")
	}
	if Fired("test.inert") != 0 || Hits("test.inert") != 0 {
		t.Fatal("unarmed point recorded hits")
	}
}

func TestRegisterIdempotent(t *testing.T) {
	a := Register("test.idem")
	b := Register("test.idem")
	if a != b {
		t.Fatal("Register returned distinct points for the same name")
	}
	if a.Name() != "test.idem" {
		t.Fatalf("Name() = %q", a.Name())
	}
}

func TestPanicFiresOnExactHit(t *testing.T) {
	p := Register("test.panic_at")
	defer Reset()
	if err := Arm("test.panic_at", Fault{Kind: Panic, After: 2}); err != nil {
		t.Fatal(err)
	}
	p.Hit()
	p.Hit() // hits 1 and 2 must not fire (After: 2)
	panicked := func() (v any) {
		defer func() { v = recover() }()
		p.Hit()
		return nil
	}()
	inj, ok := panicked.(*Injected)
	if !ok {
		t.Fatalf("hit 3 recovered %v, want *Injected", panicked)
	}
	if inj.Point != "test.panic_at" {
		t.Fatalf("Injected.Point = %q", inj.Point)
	}
	if Fired("test.panic_at") != 1 {
		t.Fatalf("Fired = %d, want 1", Fired("test.panic_at"))
	}
	p.Hit() // count exhausted: must not fire again
	if Fired("test.panic_at") != 1 {
		t.Fatalf("fault fired past its count")
	}
}

func TestErrorFaultAndCount(t *testing.T) {
	p := Register("test.err")
	defer Reset()
	custom := errors.New("boom")
	if err := Arm("test.err", Fault{Kind: Error, Count: 2, Err: custom}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := p.Err(); !errors.Is(err, custom) {
			t.Fatalf("fire %d: err = %v, want %v", i+1, err, custom)
		}
	}
	if err := p.Err(); err != nil {
		t.Fatalf("count exhausted but Err returned %v", err)
	}
	// Error faults never fire at panic-only sites, and a Hit there must
	// not consume the fire budget either.
	if err := Arm("test.err", Fault{Kind: Error}); err != nil {
		t.Fatal(err)
	}
	p.Hit()
	if err := p.Err(); !errors.Is(err, ErrInjected) {
		t.Fatalf("Err after Hit = %v, want ErrInjected (Hit must not consume an Error fire)", err)
	}
}

func TestDelayFault(t *testing.T) {
	p := Register("test.delay")
	defer Reset()
	if err := Arm("test.delay", Fault{Kind: Delay, Delay: 30 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	p.Hit()
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("delay fault slept %v, want >= 30ms", d)
	}
}

func TestArmUnknownPoint(t *testing.T) {
	if err := Arm("no.such.point", Fault{Kind: Panic}); err == nil {
		t.Fatal("Arm of unregistered point succeeded")
	}
}

func TestResetDisarms(t *testing.T) {
	p := Register("test.reset")
	if err := Arm("test.reset", Fault{Kind: Error}); err != nil {
		t.Fatal(err)
	}
	Reset()
	if Armed() {
		t.Fatal("Armed() after Reset")
	}
	if err := p.Err(); err != nil {
		t.Fatalf("disarmed point fired: %v", err)
	}
}

func TestParseSpec(t *testing.T) {
	Register("test.spec.a")
	Register("test.spec.b")
	defer Reset()
	err := ParseSpec("test.spec.a:panic@3x2, test.spec.b:delay=50ms")
	if err != nil {
		t.Fatal(err)
	}
	if !Armed() {
		t.Fatal("spec parsed but nothing armed")
	}
	// @3 means After=2: two hits pass, the third panics.
	a := Register("test.spec.a")
	a.Hit()
	a.Hit()
	v := func() (v any) {
		defer func() { v = recover() }()
		a.Hit()
		return nil
	}()
	if _, ok := v.(*Injected); !ok {
		t.Fatalf("third hit recovered %v, want *Injected", v)
	}

	for _, bad := range []string{
		"nope",                    // no kind
		"test.spec.a:explode",     // unknown kind
		"test.spec.a:delay",       // delay without duration
		"test.spec.a:panic=50ms",  // duration on panic
		"test.spec.a:panic@0",     // hit numbers are 1-based
		"test.spec.a:panic@1x0",   // zero count
		"unregistered.pt:panic@1", // unknown point
	} {
		if err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) succeeded, want error", bad)
		}
		Reset()
	}
}

func TestConcurrentHitsRace(t *testing.T) {
	p := Register("test.race")
	defer Reset()
	if err := Arm("test.race", Fault{Kind: Error, After: 50, Count: 3}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var fired sync.Map
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if err := p.Err(); err != nil {
					fired.Store(fmt.Sprintf("%d/%d", w, i), true)
				}
			}
		}(w)
	}
	wg.Wait()
	n := 0
	fired.Range(func(_, _ any) bool { n++; return true })
	if n != 3 {
		t.Fatalf("fault fired %d times under concurrency, want exactly Count=3", n)
	}
	if Fired("test.race") != 3 {
		t.Fatalf("Fired = %d, want 3", Fired("test.race"))
	}
}

func TestRecoveredWrapsAndPassesThrough(t *testing.T) {
	inner := Recovered("inner op", &Injected{Point: "x"})
	if inner.Op != "inner op" || len(inner.Stack) == 0 {
		t.Fatalf("Recovered lost op or stack: %+v", inner)
	}
	outer := Recovered("outer op", inner)
	if outer != inner {
		t.Fatal("nested PanicError was re-wrapped; innermost Op must win")
	}
	if !IsInjected(inner) {
		t.Fatal("IsInjected must reach through PanicError to *Injected")
	}
	wrapped := fmt.Errorf("engine: CTP 2: %w", inner)
	var pe *PanicError
	if !errors.As(wrapped, &pe) {
		t.Fatal("errors.As through fmt wrapping failed")
	}
	if IsInjected(errors.New("ordinary")) {
		t.Fatal("IsInjected on an ordinary error")
	}
}
