// Package fault is the deterministic fault-injection framework behind
// the chaos test suite and the ctpserve -fault dev flag.
//
// Subsystems register named probe points (Register) that are compiled
// into their hot paths and are inert by default: an unarmed probe is a
// single atomic load of a package-level gate, so production code pays
// nothing measurable for carrying them. Tests (and the -fault flag) arm
// a probe with a Fault — panic, injected error, or delay — that fires
// deterministically on a chosen hit count, which is what makes chaos
// runs reproducible: the same seed visits the same probe on the same
// iteration every time.
//
// The package also owns PanicError, the structured error every
// containment boundary (exec workers, the sequential kernels, the
// engine, the qcache singleflight leader, the HTTP handler) converts a
// recovered panic into. Keeping the error type here — the one package
// with no dependencies — lets every layer wrap and classify panics
// without import cycles.
package fault

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind selects what an armed fault does when it fires.
type Kind int

const (
	// Panic panics with an *Injected value. The surrounding containment
	// boundary is expected to recover it into a *PanicError.
	Panic Kind = iota
	// Error makes error-capable probes (Point.Err) return an injected
	// error; panic-only probes (Point.Hit) ignore it.
	Error
	// Delay sleeps Fault.Delay at the probe, for latency chaos.
	Delay
)

func (k Kind) String() string {
	switch k {
	case Panic:
		return "panic"
	case Error:
		return "error"
	case Delay:
		return "delay"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Fault describes one armed behavior at a probe point.
type Fault struct {
	Kind Kind
	// After skips the first After hits; the fault fires starting at hit
	// number After+1. This is the determinism knob: a chaos test derives
	// After from its seed and the fault lands on the same loop iteration
	// every run.
	After uint64
	// Count bounds how many times the fault fires (0 means once).
	Count uint64
	// Delay is how long a Kind == Delay fault sleeps.
	Delay time.Duration
	// Err overrides the error a Kind == Error fault injects (nil means
	// an error wrapping ErrInjected).
	Err error
}

// Injected is the value a Panic fault panics with, so containment tests
// can tell an injected panic from a genuine bug.
type Injected struct{ Point string }

func (i *Injected) Error() string {
	return "fault: injected panic at " + i.Point
}

// ErrInjected is the sentinel wrapped by every injected error.
var ErrInjected = errors.New("fault: injected error")

// trigger is the armed state of one point. It is swapped in and out
// atomically so Arm/Reset never race with probe hits on hot paths.
type trigger struct {
	f     Fault
	hits  atomic.Uint64
	fired atomic.Uint64
}

// Point is one compiled-in probe. Obtain one with Register at package
// init and call Hit (or Err at error-capable sites) on the hot path.
type Point struct {
	name string
	trig atomic.Pointer[trigger]
}

// Name returns the point's registered name.
func (p *Point) Name() string { return p.name }

var (
	// gate counts armed points; zero short-circuits every probe to a
	// single atomic load.
	gate     atomic.Int32
	mu       sync.Mutex
	registry = map[string]*Point{}
)

// Register returns the probe point with the given name, creating it if
// needed. Registration is idempotent so tests and init order don't
// matter; call it from a package-level var so the point is compiled in
// exactly once.
func Register(name string) *Point {
	mu.Lock()
	defer mu.Unlock()
	if p, ok := registry[name]; ok {
		return p
	}
	p := &Point{name: name}
	registry[name] = p
	return p
}

// Points returns the sorted names of every registered probe point —
// the chaos suite iterates this inventory.
func Points() []string {
	mu.Lock()
	defer mu.Unlock()
	return pointsLocked()
}

func pointsLocked() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Arm installs f at the named point, replacing any previous fault
// there. It fails if the point was never registered (a typo in a test
// or -fault spec), listing the valid inventory.
func Arm(point string, f Fault) error {
	mu.Lock()
	defer mu.Unlock()
	p, ok := registry[point]
	if !ok {
		return fmt.Errorf("fault: unknown probe point %q (registered: %s)",
			point, strings.Join(pointsLocked(), ", "))
	}
	if p.trig.Swap(&trigger{f: f}) == nil {
		gate.Add(1)
	}
	return nil
}

// Reset disarms every point. Call it (deferred) from every test that
// arms faults.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	for _, p := range registry {
		if p.trig.Swap(nil) != nil {
			gate.Add(-1)
		}
	}
}

// Armed reports whether any point is currently armed.
func Armed() bool { return gate.Load() > 0 }

// Hits returns how many times the named point was passed since it was
// armed (zero if unarmed or unknown).
func Hits(point string) uint64 {
	mu.Lock()
	p := registry[point]
	mu.Unlock()
	if p == nil {
		return 0
	}
	t := p.trig.Load()
	if t == nil {
		return 0
	}
	return t.hits.Load()
}

// Fired returns how many times the named point's fault actually fired
// since it was armed. Chaos tests use it to distinguish "the query
// failed because my fault landed" from "the fault never triggered, so
// the query must have succeeded with complete results".
func Fired(point string) uint64 {
	mu.Lock()
	p := registry[point]
	mu.Unlock()
	if p == nil {
		return 0
	}
	t := p.trig.Load()
	if t == nil {
		return 0
	}
	n := t.fired.Load()
	if max := t.count(); n > max {
		n = max
	}
	return n
}

func (t *trigger) count() uint64 {
	if t.f.Count == 0 {
		return 1
	}
	return t.f.Count
}

// Hit is the probe for panic/delay-capable sites. Inert unless the
// point is armed.
func (p *Point) Hit() {
	if gate.Load() == 0 {
		return
	}
	p.fire(false)
}

// Err is the probe for error-capable sites: it returns the injected
// error when an Error fault fires, and behaves like Hit for the other
// kinds. Inert (always nil) unless the point is armed.
func (p *Point) Err() error {
	if gate.Load() == 0 {
		return nil
	}
	return p.fire(true)
}

func (p *Point) fire(canErr bool) error {
	t := p.trig.Load()
	if t == nil {
		return nil
	}
	if t.f.Kind == Error && !canErr {
		// This site cannot surface an error; leave the trigger untouched
		// so the fault fires at the intended error-capable site instead
		// of being silently consumed here.
		return nil
	}
	n := t.hits.Add(1)
	if n <= t.f.After {
		return nil
	}
	if t.fired.Add(1) > t.count() {
		return nil
	}
	switch t.f.Kind {
	case Panic:
		panic(&Injected{Point: p.name})
	case Delay:
		time.Sleep(t.f.Delay)
	case Error:
		if canErr {
			if t.f.Err != nil {
				return t.f.Err
			}
			return fmt.Errorf("%w at %s", ErrInjected, p.name)
		}
	}
	return nil
}

// ParseSpec arms faults from a -fault flag value. The grammar is a
// comma-separated list of
//
//	point:kind[=duration][@hit[xcount]]
//
// where kind is panic, error, or delay (delay requires =duration), @hit
// is the 1-based hit number the fault first fires on (default 1), and
// xcount is how many times it fires (default 1). Examples:
//
//	exec.worker.process_tree:panic@3
//	core.gam.pop:delay=50ms@10x100,serve.query.admitted:error
func ParseSpec(spec string) error {
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rest, ok := strings.Cut(part, ":")
		if !ok || name == "" || rest == "" {
			return fmt.Errorf("fault: bad spec %q (want point:kind[=duration][@hit[xcount]])", part)
		}
		var f Fault
		if at := strings.IndexByte(rest, '@'); at >= 0 {
			tail := rest[at+1:]
			rest = rest[:at]
			if x := strings.IndexByte(tail, 'x'); x >= 0 {
				count, err := strconv.ParseUint(tail[x+1:], 10, 64)
				if err != nil || count == 0 {
					return fmt.Errorf("fault: bad count in spec %q", part)
				}
				f.Count = count
				tail = tail[:x]
			}
			hit, err := strconv.ParseUint(tail, 10, 64)
			if err != nil || hit == 0 {
				return fmt.Errorf("fault: bad hit number in spec %q", part)
			}
			f.After = hit - 1
		}
		kind, durStr, hasDur := strings.Cut(rest, "=")
		switch kind {
		case "panic":
			f.Kind = Panic
		case "error":
			f.Kind = Error
		case "delay":
			f.Kind = Delay
			if !hasDur {
				return fmt.Errorf("fault: delay needs a duration in spec %q (e.g. delay=50ms)", part)
			}
			d, err := time.ParseDuration(durStr)
			if err != nil || d < 0 {
				return fmt.Errorf("fault: bad duration in spec %q", part)
			}
			f.Delay = d
		default:
			return fmt.Errorf("fault: unknown kind %q in spec %q (want panic, error, or delay)", kind, part)
		}
		if f.Kind != Delay && hasDur {
			return fmt.Errorf("fault: %s takes no duration in spec %q", kind, part)
		}
		if err := Arm(name, f); err != nil {
			return err
		}
	}
	return nil
}

// PanicError is a panic converted to an error at a containment
// boundary. It wraps the recovered value and the goroutine stack at
// recovery time, so an operator sees where the panic happened even
// though the process kept serving.
type PanicError struct {
	Op    string // which boundary contained it, e.g. "exec: worker 3"
	Value any    // the recover() value
	Stack []byte // debug.Stack() at recovery
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("internal: panic in %s: %v", e.Op, e.Value)
}

// Unwrap exposes a panic value that was itself an error (notably
// *Injected), so errors.Is/As reach through.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// Recovered wraps a recover() value into a *PanicError. A value that
// already is one (a panic crossing two boundaries) passes through
// unchanged, keeping the innermost — most precise — Op and stack.
func Recovered(op string, v any) *PanicError {
	if pe, ok := v.(*PanicError); ok {
		return pe
	}
	return &PanicError{Op: op, Value: v, Stack: debug.Stack()}
}

// IsInjected reports whether err stems from an armed fault (directly
// injected, or a contained injected panic). Chaos tests use it to
// assert the error the client saw is the one they planted.
func IsInjected(err error) bool {
	if errors.Is(err, ErrInjected) {
		return true
	}
	var inj *Injected
	return errors.As(err, &inj)
}
