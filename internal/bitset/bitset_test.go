package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	var b Bits
	if !b.IsEmpty() {
		t.Fatal("zero value should be empty")
	}
	if b.Count() != 0 {
		t.Fatalf("Count = %d, want 0", b.Count())
	}
	if b.Has(0) || b.Has(100) {
		t.Fatal("empty set should have no bits")
	}
	if b.Key() != "" {
		t.Fatalf("empty key = %q", b.Key())
	}
	if b.String() != "{}" {
		t.Fatalf("String = %q", b.String())
	}
}

func TestSetHasClear(t *testing.T) {
	var b Bits
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 300} {
		b.Set(i)
		if !b.Has(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if b.Count() != 8 {
		t.Fatalf("Count = %d, want 8", b.Count())
	}
	b.Clear(64)
	if b.Has(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	b.Clear(100000) // beyond width: no-op
	if b.Count() != 7 {
		t.Fatalf("Count = %d, want 7", b.Count())
	}
}

func TestSingleAndFull(t *testing.T) {
	s := Single(70)
	if s.Count() != 1 || !s.Has(70) {
		t.Fatalf("Single(70) = %v", s)
	}
	f := Full(5)
	if f.Count() != 5 {
		t.Fatalf("Full(5).Count = %d", f.Count())
	}
	for i := 0; i < 5; i++ {
		if !f.Has(i) {
			t.Fatalf("Full(5) missing bit %d", i)
		}
	}
	if f.Has(5) {
		t.Fatal("Full(5) has bit 5")
	}
}

func TestIntersects(t *testing.T) {
	a := Single(3)
	b := Single(3)
	c := Single(64)
	if !a.Intersects(b) {
		t.Fatal("a should intersect b")
	}
	if a.Intersects(c) {
		t.Fatal("a should not intersect c")
	}
	if c.Intersects(nil) {
		t.Fatal("c should not intersect empty")
	}
	ab := a.Union(c)
	if !ab.Intersects(c) || !ab.Intersects(a) {
		t.Fatal("union should intersect both operands")
	}
}

func TestIntersectsOutside(t *testing.T) {
	// Shared bit 2 masked out: no intersection outside the mask.
	a := Single(2).Union(Single(5))
	b := Single(2).Union(Single(9))
	mask := Single(2)
	if a.IntersectsOutside(b, mask) {
		t.Fatal("only shared bit is masked; want false")
	}
	if !a.IntersectsOutside(b, nil) {
		t.Fatal("without mask, bit 2 is shared; want true")
	}
	b2 := b.Union(Single(5))
	if !a.IntersectsOutside(b2, mask) {
		t.Fatal("bit 5 shared outside mask; want true")
	}
}

func TestUnionMinusContains(t *testing.T) {
	a := Single(1).Union(Single(70))
	b := Single(70).Union(Single(2))
	u := a.Union(b)
	if u.Count() != 3 {
		t.Fatalf("union count = %d, want 3", u.Count())
	}
	if !u.Contains(a) || !u.Contains(b) {
		t.Fatal("union should contain operands")
	}
	if a.Contains(u) {
		t.Fatal("operand should not contain strict superset")
	}
	m := u.Minus(a)
	if m.Count() != 1 || !m.Has(2) {
		t.Fatalf("minus = %v", m)
	}
}

func TestUnionInPlaceGrows(t *testing.T) {
	var a Bits
	a.Set(1)
	a.UnionInPlace(Single(130))
	if !a.Has(1) || !a.Has(130) || a.Count() != 2 {
		t.Fatalf("in-place union wrong: %v", a)
	}
}

func TestEqualIgnoresWidth(t *testing.T) {
	a := Bits{0b101}
	b := Bits{0b101, 0, 0}
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("width-padded sets should be equal")
	}
	if a.Key() != b.Key() {
		t.Fatal("keys of equal sets should match")
	}
	c := Bits{0b101, 1}
	if a.Equal(c) {
		t.Fatal("distinct sets reported equal")
	}
	if a.Key() == c.Key() {
		t.Fatal("distinct sets share key")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := Single(3)
	b := a.Clone()
	b.Set(4)
	if a.Has(4) {
		t.Fatal("Clone shares storage")
	}
}

func TestIndices(t *testing.T) {
	var b Bits
	want := []int{0, 5, 64, 190}
	for _, i := range want {
		b.Set(i)
	}
	got := b.Indices()
	if len(got) != len(want) {
		t.Fatalf("Indices = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Indices = %v, want %v", got, want)
		}
	}
}

// Property: for random index sets A and B, Union/Minus/Intersects agree
// with set semantics computed naively.
func TestQuickSetSemantics(t *testing.T) {
	f := func(aIdx, bIdx []uint8) bool {
		var a, b Bits
		am := map[int]bool{}
		bm := map[int]bool{}
		for _, i := range aIdx {
			a.Set(int(i))
			am[int(i)] = true
		}
		for _, i := range bIdx {
			b.Set(int(i))
			bm[int(i)] = true
		}
		u := a.Union(b)
		for i := 0; i < 256; i++ {
			if u.Has(i) != (am[i] || bm[i]) {
				return false
			}
		}
		m := a.Minus(b)
		for i := 0; i < 256; i++ {
			if m.Has(i) != (am[i] && !bm[i]) {
				return false
			}
		}
		inter := false
		for i := range am {
			if bm[i] {
				inter = true
			}
		}
		return a.Intersects(b) == inter
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

// Property: Key is injective on distinct sets and stable across widths.
func TestQuickKeyInjective(t *testing.T) {
	f := func(aIdx, bIdx []uint8) bool {
		var a, b Bits
		for _, i := range aIdx {
			a.Set(int(i))
		}
		for _, i := range bIdx {
			b.Set(int(i))
		}
		if a.Equal(b) {
			return a.Key() == b.Key()
		}
		return a.Key() != b.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}

func TestCountMatchesIndices(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var b Bits
		n := r.Intn(100)
		for i := 0; i < n; i++ {
			b.Set(r.Intn(400))
		}
		if b.Count() != len(b.Indices()) {
			t.Fatalf("Count=%d len(Indices)=%d", b.Count(), len(b.Indices()))
		}
	}
}
