// Package bitset provides small, allocation-friendly bit sets used to
// represent seed signatures: for a connecting-tree search over m seed sets,
// bit i of a signature records a fact about seed set i (for example, that a
// tree contains a seed from set i, or that a rooted path from set i has
// reached a node). Widths are arbitrary; the common case m <= 64 stays in a
// single word.
package bitset

import (
	"math/bits"
	"strconv"
	"strings"

	"ctpquery/internal/hash64"
)

// Bits is a variable-width bit set. The zero value is an empty set. All
// methods treat missing high words as zero, so sets of different widths can
// be combined freely.
type Bits []uint64

// New returns a bit set able to hold at least n bits without growing.
func New(n int) Bits {
	if n <= 0 {
		return nil
	}
	return make(Bits, (n+63)/64)
}

// Single returns a bit set with exactly bit i set.
func Single(i int) Bits {
	b := New(i + 1)
	b.Set(i)
	return b
}

// grow extends b so that bit i is addressable and returns the result.
func (b *Bits) grow(i int) {
	w := i/64 + 1
	for len(*b) < w {
		*b = append(*b, 0)
	}
}

// Set turns bit i on, growing the set as needed.
func (b *Bits) Set(i int) {
	b.grow(i)
	(*b)[i/64] |= 1 << (uint(i) % 64)
}

// Clear turns bit i off. Clearing a bit beyond the current width is a no-op.
func (b Bits) Clear(i int) {
	if w := i / 64; w < len(b) {
		b[w] &^= 1 << (uint(i) % 64)
	}
}

// Has reports whether bit i is set.
func (b Bits) Has(i int) bool {
	w := i / 64
	return w < len(b) && b[w]&(1<<(uint(i)%64)) != 0
}

// Count returns the number of set bits (the Σ(ss) of the paper).
func (b Bits) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// IsEmpty reports whether no bit is set.
func (b Bits) IsEmpty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether b and o share at least one set bit.
func (b Bits) Intersects(o Bits) bool {
	n := len(b)
	if len(o) < n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		if b[i]&o[i] != 0 {
			return true
		}
	}
	return false
}

// IntersectsOutside reports whether b and o share a set bit that is not
// also set in mask. It implements the merge precondition "no seed set is
// represented in both trees, except by the shared root node": mask carries
// the root's own seed memberships.
func (b Bits) IntersectsOutside(o, mask Bits) bool {
	n := len(b)
	if len(o) < n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		common := b[i] & o[i]
		if i < len(mask) {
			common &^= mask[i]
		}
		if common != 0 {
			return true
		}
	}
	return false
}

// Union returns a new set holding b ∪ o.
func (b Bits) Union(o Bits) Bits {
	n := len(b)
	if len(o) > n {
		n = len(o)
	}
	out := make(Bits, n)
	copy(out, b)
	for i, w := range o {
		out[i] |= w
	}
	return out
}

// UnionInto writes a ∪ b into dst, reusing dst's backing array when its
// capacity suffices, and returns the result. dst must not alias a or b.
// It is the allocation-lean union the search kernels use with pooled
// signature buffers.
func UnionInto(dst, a, b Bits) Bits {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	if cap(dst) < n {
		dst = make(Bits, n)
	} else {
		dst = dst[:n]
	}
	for i := range dst {
		var w uint64
		if i < len(a) {
			w = a[i]
		}
		if i < len(b) {
			w |= b[i]
		}
		dst[i] = w
	}
	return dst
}

// UnionInPlace sets b = b ∪ o, growing b as needed, and returns b.
func (b *Bits) UnionInPlace(o Bits) Bits {
	for len(*b) < len(o) {
		*b = append(*b, 0)
	}
	for i, w := range o {
		(*b)[i] |= w
	}
	return *b
}

// Minus returns a new set holding b \ o.
func (b Bits) Minus(o Bits) Bits {
	out := make(Bits, len(b))
	copy(out, b)
	for i := range out {
		if i < len(o) {
			out[i] &^= o[i]
		}
	}
	return out
}

// Contains reports whether every set bit of o is also set in b.
func (b Bits) Contains(o Bits) bool {
	for i, w := range o {
		var bw uint64
		if i < len(b) {
			bw = b[i]
		}
		if w&^bw != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether b and o denote the same set, ignoring width.
func (b Bits) Equal(o Bits) bool {
	n := len(b)
	if len(o) > n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		var bw, ow uint64
		if i < len(b) {
			bw = b[i]
		}
		if i < len(o) {
			ow = o[i]
		}
		if bw != ow {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of b.
func (b Bits) Clone() Bits {
	if len(b) == 0 {
		return nil
	}
	out := make(Bits, len(b))
	copy(out, b)
	return out
}

// Indices returns the positions of all set bits in increasing order.
func (b Bits) Indices() []int {
	var out []int
	for wi, w := range b {
		for w != 0 {
			i := bits.TrailingZeros64(w)
			out = append(out, wi*64+i)
			w &^= 1 << uint(i)
		}
	}
	return out
}

// Full returns a set with bits 0..n-1 all set.
func Full(n int) Bits {
	b := New(n)
	for i := 0; i < n; i++ {
		b.Set(i)
	}
	return b
}

// Key returns a compact string usable as a map key. Two sets that are Equal
// produce the same key regardless of trailing zero words.
func (b Bits) Key() string {
	n := len(b)
	for n > 0 && b[n-1] == 0 {
		n--
	}
	var sb strings.Builder
	for i := 0; i < n; i++ {
		var buf [8]byte
		w := b[i]
		for j := 0; j < 8; j++ {
			buf[j] = byte(w >> (8 * uint(j)))
		}
		sb.Write(buf[:])
	}
	return sb.String()
}

// Sig returns a 64-bit hash of the set. Two sets that are Equal produce
// the same signature regardless of trailing zero words; distinct sets may
// collide, so users must verify with Equal (the multi-queue scheduler
// does). It replaces Key on the hot path: no string is built.
func (b Bits) Sig() uint64 {
	n := len(b)
	for n > 0 && b[n-1] == 0 {
		n--
	}
	h := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < n; i++ {
		h = hash64.Mix(h ^ b[i])
	}
	return h
}

// String renders the set as {i1,i2,...} for debugging.
func (b Bits) String() string {
	idx := b.Indices()
	parts := make([]string, len(idx))
	for i, v := range idx {
		parts[i] = strconv.Itoa(v)
	}
	return "{" + strings.Join(parts, ",") + "}"
}
