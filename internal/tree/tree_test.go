package tree

import (
	"testing"

	"ctpquery/internal/bitset"
	"ctpquery/internal/graph"
)

// pathGraph builds a directed path 0 -> 1 -> ... -> n with edges labeled
// "e"; returns the graph.
func pathGraph(n int) *graph.Graph {
	b := graph.NewBuilder()
	b.AddNodes(n + 1)
	for i := 0; i < n; i++ {
		b.AddEdge(graph.NodeID(i), "e", graph.NodeID(i+1))
	}
	return b.Build()
}

// starGraph builds edges center->leaf_i for i in 1..k; node 0 is center.
func starGraph(k int) *graph.Graph {
	b := graph.NewBuilder()
	b.AddNodes(k + 1)
	for i := 1; i <= k; i++ {
		b.AddEdge(0, "e", graph.NodeID(i))
	}
	return b.Build()
}

func TestInitTree(t *testing.T) {
	it := NewInit(3, bitset.Single(1))
	if it.Root != 3 || it.Size() != 0 || !it.SeedPath || it.Kind != Init {
		t.Fatalf("bad init tree: %+v", it)
	}
	if !it.Sat.Has(1) || it.Sat.Count() != 1 {
		t.Fatalf("sat = %v", it.Sat)
	}
	if !it.ContainsNode(3) || it.ContainsNode(2) {
		t.Fatal("node membership wrong")
	}
}

func TestGrowChain(t *testing.T) {
	g := pathGraph(3) // 0-1-2-3
	t0 := NewInit(0, bitset.Single(0))
	t1 := NewGrow(t0, 0, 1, nil)
	t2 := NewGrow(t1, 1, 2, nil)
	t3 := NewGrow(t2, 2, 3, bitset.Single(1))
	if t3.Size() != 3 || t3.Root != 3 {
		t.Fatalf("t3 = %v", t3)
	}
	if !t1.SeedPath || !t2.SeedPath {
		t.Fatal("grow over non-seeds should stay a seed path")
	}
	if t3.SeedPath {
		t.Fatal("growing onto a seed ends the (n,s)-rooted path property")
	}
	if !t3.Sat.Has(0) || !t3.Sat.Has(1) {
		t.Fatalf("sat = %v", t3.Sat)
	}
	for _, n := range []graph.NodeID{0, 1, 2, 3} {
		if !t3.ContainsNode(n) {
			t.Fatalf("missing node %d", n)
		}
	}
	if got := t3.ProvenanceString(); got != "Grow(Grow(Grow(Init(0),e0),e1),e2)" {
		t.Fatalf("provenance = %s", got)
	}
	_ = g
}

func TestMergeTrees(t *testing.T) {
	// star: 0 center, leaves 1,2; trees grown from 1 and 2 meeting at 0.
	g := starGraph(2)
	a := NewGrow(NewInit(1, bitset.Single(0)), 0, 0, nil)
	b := NewGrow(NewInit(2, bitset.Single(1)), 1, 0, nil)
	if !OverlapOnlyRoot(a, b) {
		t.Fatal("a and b overlap only at root 0")
	}
	m := NewMerge(a, b)
	if m.Root != 0 || m.Size() != 2 {
		t.Fatalf("merge = %v", m)
	}
	if m.SeedPath {
		t.Fatal("merge is never a seed path")
	}
	if !m.Sat.Has(0) || !m.Sat.Has(1) {
		t.Fatalf("sat = %v", m.Sat)
	}
	if len(m.Nodes) != 3 {
		t.Fatalf("nodes = %v (root deduplicated?)", m.Nodes)
	}
	_ = g
}

func TestOverlapOnlyRootRejectsSharedNonRoot(t *testing.T) {
	// path 0-1-2-3; two trees rooted at 1 sharing node 2 beyond the root
	// must be rejected.
	a := &Tree{Root: 1, Nodes: []graph.NodeID{1, 2}, Edges: []graph.EdgeID{1}}
	b := &Tree{Root: 1, Nodes: []graph.NodeID{1, 2, 3}, Edges: []graph.EdgeID{1, 2}}
	if OverlapOnlyRoot(a, b) {
		t.Fatal("shared node 2 beyond root should be rejected")
	}
}

func TestMoTree(t *testing.T) {
	a := NewGrow(NewInit(1, bitset.Single(0)), 0, 0, nil)
	b := NewGrow(NewInit(2, bitset.Single(1)), 1, 0, nil)
	m := NewMerge(a, b)
	mo := NewMo(m, 1)
	if mo.Root != 1 || !mo.HasMo || mo.Kind != Mo {
		t.Fatalf("mo = %+v", mo)
	}
	if mo.EdgeKey() != m.EdgeKey() {
		t.Fatal("Mo must preserve the edge set")
	}
	if mo.RootedKey() == m.RootedKey() {
		t.Fatal("Mo must change the rooted key")
	}
	// HasMo propagates through Merge.
	c := NewGrow(NewInit(3, bitset.Single(2)), 2, 1, nil)
	_ = c
	m2 := NewMerge(mo, NewInit(1, bitset.Single(0)))
	if !m2.HasMo {
		t.Fatal("HasMo must propagate through Merge")
	}
}

func TestEdgeKeys(t *testing.T) {
	a := &Tree{Root: 5, Edges: []graph.EdgeID{1, 7, 300}}
	b := &Tree{Root: 9, Edges: []graph.EdgeID{1, 7, 300}}
	c := &Tree{Root: 5, Edges: []graph.EdgeID{1, 7, 301}}
	if a.EdgeKey() != b.EdgeKey() {
		t.Fatal("same edges, same key")
	}
	if a.EdgeKey() == c.EdgeKey() {
		t.Fatal("different edges, different key")
	}
	if a.RootedKey() == b.RootedKey() {
		t.Fatal("different roots, different rooted key")
	}
	empty := NewInit(2, nil)
	if empty.EdgeKey() != "" {
		t.Fatal("empty tree edge key should be empty string")
	}
	if empty.RootedKey() == NewInit(3, nil).RootedKey() {
		t.Fatal("rooted keys of distinct init trees must differ")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{Init: "Init", Grow: "Grow", Merge: "Merge", Mo: "Mo", Kind(9): "Kind(9)"} {
		if k.String() != want {
			t.Fatalf("Kind(%d).String() = %s", k, k.String())
		}
	}
}

func TestIsTree(t *testing.T) {
	// Triangle 0-1, 1-2, 2-0: any two edges form a tree, all three a cycle.
	b := graph.NewBuilder()
	b.AddNodes(3)
	e0 := b.AddEdge(0, "e", 1)
	e1 := b.AddEdge(1, "e", 2)
	e2 := b.AddEdge(2, "e", 0)
	g := b.Build()
	if !IsTree(g, []graph.EdgeID{e0, e1}) {
		t.Fatal("two edges of a triangle form a tree")
	}
	if IsTree(g, []graph.EdgeID{e0, e1, e2}) {
		t.Fatal("a cycle is not a tree")
	}
	if !IsTree(g, nil) {
		t.Fatal("empty set treated as degenerate tree")
	}
}

func TestIsTreeDisconnected(t *testing.T) {
	b := graph.NewBuilder()
	b.AddNodes(4)
	e0 := b.AddEdge(0, "e", 1)
	e1 := b.AddEdge(2, "e", 3)
	g := b.Build()
	if IsTree(g, []graph.EdgeID{e0, e1}) {
		t.Fatal("two disjoint edges are not a tree")
	}
}

func TestLeaves(t *testing.T) {
	g := starGraph(3)
	all := []graph.EdgeID{0, 1, 2}
	ls := Leaves(g, all)
	if len(ls) != 3 {
		t.Fatalf("leaves = %v, want the 3 star tips", ls)
	}
	for _, l := range ls {
		if l == 0 {
			t.Fatal("center must not be a leaf")
		}
	}
}

func TestMinimize(t *testing.T) {
	// Path 0-1-2-3-4; seeds {1,3}. Minimization should strip edges 0-1?? no:
	// strip 0-1 leaf side? Edges: e0=0-1, e1=1-2, e2=2-3, e3=3-4.
	g := pathGraph(4)
	isSeed := func(n graph.NodeID) bool { return n == 1 || n == 3 }
	min := Minimize(g, []graph.EdgeID{0, 1, 2, 3}, isSeed)
	if len(min) != 2 || min[0] != 1 || min[1] != 2 {
		t.Fatalf("minimize = %v, want [1 2]", min)
	}
	// Already-minimal input is unchanged.
	min2 := Minimize(g, []graph.EdgeID{1, 2}, isSeed)
	if len(min2) != 2 {
		t.Fatalf("minimal input modified: %v", min2)
	}
}

func TestMinimizeCascades(t *testing.T) {
	// Star with long bristle: center 0; leaves 1..3; extend leaf 3 by a
	// 2-edge tail (nodes 4,5). Seeds {1,2}: the whole tail and edge 0-3
	// must be peeled, in cascade.
	b := graph.NewBuilder()
	b.AddNodes(6)
	e01 := b.AddEdge(0, "e", 1)
	e02 := b.AddEdge(0, "e", 2)
	e03 := b.AddEdge(0, "e", 3)
	e34 := b.AddEdge(3, "e", 4)
	e45 := b.AddEdge(4, "e", 5)
	g := b.Build()
	isSeed := func(n graph.NodeID) bool { return n == 1 || n == 2 }
	min := Minimize(g, []graph.EdgeID{e01, e02, e03, e34, e45}, isSeed)
	if len(min) != 2 || min[0] != e01 || min[1] != e02 {
		t.Fatalf("minimize = %v, want [%d %d]", min, e01, e02)
	}
}

func TestDecompose(t *testing.T) {
	// Line A - x - B - y - C where A,B,C are seeds (nodes 0,2,4).
	g := pathGraph(4)
	isSeed := func(n graph.NodeID) bool { return n == 0 || n == 2 || n == 4 }
	pieces := Decompose(g, []graph.EdgeID{0, 1, 2, 3}, isSeed)
	if len(pieces) != 2 {
		t.Fatalf("pieces = %v, want 2 (split at internal seed)", pieces)
	}
	for _, p := range pieces {
		if len(p) != 2 {
			t.Fatalf("each piece should have 2 edges, got %v", p)
		}
		seeds := PieceLeafSeeds(g, p, isSeed)
		if len(seeds) != 2 {
			t.Fatalf("piece %v has seeds %v, want 2", p, seeds)
		}
	}
	if p := PiecewiseSimple(g, []graph.EdgeID{0, 1, 2, 3}, isSeed); p != 2 {
		t.Fatalf("piecewise-simple degree = %d, want 2 (a 2ps result)", p)
	}
}

func TestDecomposeStar(t *testing.T) {
	// Star with 3 seed tips: a single 3-simple piece.
	g := starGraph(3)
	isSeed := func(n graph.NodeID) bool { return n >= 1 }
	pieces := Decompose(g, []graph.EdgeID{0, 1, 2}, isSeed)
	if len(pieces) != 1 {
		t.Fatalf("pieces = %d, want 1", len(pieces))
	}
	if p := PiecewiseSimple(g, []graph.EdgeID{0, 1, 2}, isSeed); p != 3 {
		t.Fatalf("p = %d, want 3", p)
	}
}

func TestDecomposeEmpty(t *testing.T) {
	g := pathGraph(1)
	if Decompose(g, nil, func(graph.NodeID) bool { return false }) != nil {
		t.Fatal("empty edge set decomposes to nil")
	}
}

func TestUnidirectionalRoot(t *testing.T) {
	// 0 -> 1 -> 2 is rooted at 0.
	g := pathGraph(2)
	r, ok := UnidirectionalRoot(g, []graph.EdgeID{0, 1})
	if !ok || r != 0 {
		t.Fatalf("root = %d,%v want 0,true", r, ok)
	}
	// Opposing edges 0->1 <-2 have no directed root.
	b := graph.NewBuilder()
	b.AddNodes(3)
	b.AddEdge(0, "e", 1)
	b.AddEdge(2, "e", 1)
	g2 := b.Build()
	if _, ok := UnidirectionalRoot(g2, []graph.EdgeID{0, 1}); ok {
		t.Fatal("two sources cannot have a directed root")
	}
	// Star away from center is rooted at center.
	g3 := starGraph(3)
	r3, ok := UnidirectionalRoot(g3, []graph.EdgeID{0, 1, 2})
	if !ok || r3 != 0 {
		t.Fatalf("star root = %d,%v", r3, ok)
	}
	if _, ok := UnidirectionalRoot(g3, nil); ok {
		t.Fatal("empty edge set has no root")
	}
}

func TestNodesOfEdges(t *testing.T) {
	g := pathGraph(3)
	ns := NodesOfEdges(g, []graph.EdgeID{0, 2})
	want := []graph.NodeID{0, 1, 2, 3}
	if len(ns) != len(want) {
		t.Fatalf("nodes = %v", ns)
	}
	for i := range want {
		if ns[i] != want[i] {
			t.Fatalf("nodes = %v, want %v", ns, want)
		}
	}
}

func TestTreeStringRendering(t *testing.T) {
	tr := &Tree{Root: 4, Edges: []graph.EdgeID{2, 9}}
	if tr.String() != "root=4 {e2,e9}" {
		t.Fatalf("String = %q", tr.String())
	}
}
