package tree

import (
	"ctpquery/internal/graph"
	"ctpquery/internal/hash64"
)

// 64-bit edge-set signatures: the allocation-free replacement for the
// string keys (EdgeSetKey) the search kernels originally deduplicated on.
//
// A set's signature is the XOR of a strong per-element hash (the splitmix64
// finalizer) folded with a constant basis. XOR makes the signature
// incremental — Grow updates a parent signature in O(1), Merge combines two
// child signatures in O(1) — and order-independent, which matches edge-set
// identity exactly. XOR set hashing can collide, so every consumer backs
// the signature with a collision-checked bucket (see core's treeSet) and
// never trusts the hash alone.

// SetSigBasis is the signature of the empty edge set. Folding it into
// every set signature keeps the empty set distinct from a zero hash.
const SetSigBasis uint64 = 0x8afe63e23465a715

// EdgeSig returns the hash of a single edge ID.
func EdgeSig(e graph.EdgeID) uint64 { return hash64.Mix(uint64(uint32(e)) + 0x9e3779b97f4a7c15) }

// NodeSig returns the hash of a single node ID, domain-separated from
// EdgeSig so a one-node tree never collides with a one-edge tree.
func NodeSig(n graph.NodeID) uint64 { return hash64.Mix(uint64(uint32(n)) | 1<<33) }

// EdgeSetSig returns the signature of an edge set: SetSigBasis XOR the
// per-edge hashes. The slice need not be sorted — XOR is commutative.
func EdgeSetSig(edges []graph.EdgeID) uint64 {
	h := SetSigBasis
	for _, e := range edges {
		h ^= EdgeSig(e)
	}
	return h
}

// MergeSigs combines the signatures of two disjoint edge sets into the
// signature of their union (the basis appears in both inputs, so one copy
// is cancelled).
func MergeSigs(a, b uint64) uint64 { return a ^ b ^ SetSigBasis }

// SigWithRoot folds a root node into an edge-set signature, yielding the
// rooted identity GAM deduplicates on.
func SigWithRoot(sig uint64, root graph.NodeID) uint64 { return hash64.Mix(sig ^ NodeSig(root)) }

// Sig returns the tree's edge-set signature (computed incrementally by
// the constructors; recomputed here only for hand-built trees).
func (t *Tree) Sig() uint64 {
	if t.sig == 0 {
		t.sig = EdgeSetSig(t.Edges)
	}
	return t.sig
}

// RootedSig returns the signature of the (root, edge set) pair.
func (t *Tree) RootedSig() uint64 { return SigWithRoot(t.Sig(), t.Root) }
