// Package tree implements the rooted trees, edge sets, and provenances of
// Section 4: the objects that connection-search algorithms grow, merge, and
// prune. A Tree is an immutable set of graph edges forming a tree, plus one
// distinguished root node and the provenance formula (Init / Grow / Merge /
// Mo, Definition 4.1) that built it.
//
// Identity comes in two flavors, mirroring the paper:
//
//   - the edge-set key (EdgeKey) identifies the tree as a plain set of
//     edges, the notion Edge-Set Pruning (Definition 4.3) operates on;
//   - the rooted key (RootedKey) additionally distinguishes the root, the
//     notion plain GAM deduplicates on.
package tree

import (
	"fmt"
	"sort"
	"strings"

	"ctpquery/internal/bitset"
	"ctpquery/internal/graph"
)

// Kind enumerates the provenance constructors of Definition 4.1, plus the
// Mo constructor of Section 4.5.
type Kind uint8

// Provenance kinds.
const (
	Init Kind = iota
	Grow
	Merge
	Mo
)

// String returns the constructor name.
func (k Kind) String() string {
	switch k {
	case Init:
		return "Init"
	case Grow:
		return "Grow"
	case Merge:
		return "Merge"
	case Mo:
		return "Mo"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Tree is a rooted tree with provenance. Trees are immutable after
// construction; Grow/Merge/Mo build new values sharing no mutable state.
type Tree struct {
	Root  graph.NodeID
	Edges []graph.EdgeID // sorted ascending, no duplicates
	Nodes []graph.NodeID // sorted ascending, no duplicates

	// Sat is sat(t): the bit for seed set i is on iff the tree contains a
	// node from S_i (Observation 1).
	Sat bitset.Bits

	// Provenance. Left is the child of Grow and Mo, and the first child of
	// Merge; Right is the second child of Merge. GrowEdge is the edge a
	// Grow step added.
	Kind     Kind
	Left     *Tree
	Right    *Tree
	GrowEdge graph.EdgeID

	// HasMo reports whether any step of the provenance is Mo; Grow is
	// disabled on such trees (Section 4.5).
	HasMo bool

	// SeedPath reports whether the tree is an (n,s)-rooted path in the
	// sense of Definition 4.4: a path from a single seed s to the root,
	// with no other seed on it. Init trees are 0-edge seed paths.
	SeedPath bool

	sig uint64   // cached edge-set signature (sig.go); 0 = not computed
	car *carrier // pooled buffer carrier, nil for unpooled trees (pool.go)
}

// NewInit builds Init(n) for a seed n whose seed-set memberships are sat.
func NewInit(n graph.NodeID, sat bitset.Bits) *Tree {
	return &Tree{
		Root:     n,
		Nodes:    []graph.NodeID{n},
		Sat:      sat.Clone(),
		Kind:     Init,
		SeedPath: true,
		sig:      SetSigBasis,
	}
}

// NewGrow builds Grow(t, e): the tree with t's edges plus e, rooted at the
// endpoint of e opposite t's root. rootSat is the seed-set membership mask
// of the new root (empty for non-seeds). The caller must have checked the
// Grow preconditions (Grow1, Grow2). The tree is built on pooled buffers;
// if the search rejects it as a duplicate, Recycle returns them.
func NewGrow(t *Tree, e graph.EdgeID, newRoot graph.NodeID, rootSat bitset.Bits) *Tree {
	c := getCarrier()
	c.edges = InsertEdgeInto(c.edges, t.Edges, e)
	c.nodes = InsertNodeInto(c.nodes, t.Nodes, newRoot)
	// A non-seed root adds no sat bits: alias the parent's (immutable)
	// signature instead of copying it, the common case on large graphs.
	sat := t.Sat
	if !rootSat.IsEmpty() {
		c.sat = bitset.UnionInto(c.sat, t.Sat, rootSat)
		sat = c.sat
	}
	c.t = Tree{
		Root:     newRoot,
		Edges:    c.edges,
		Nodes:    c.nodes,
		Sat:      sat,
		Kind:     Grow,
		Left:     t,
		GrowEdge: e,
		HasMo:    t.HasMo,
		SeedPath: t.SeedPath && rootSat.IsEmpty(),
		sig:      t.Sig() ^ EdgeSig(e),
		car:      c,
	}
	return &c.t
}

// NewMerge builds Merge(t1, t2) for trees sharing exactly their root. The
// caller must have checked the Merge preconditions (Merge1, Merge2), which
// imply edge-disjoint children — the premise of the O(1) signature merge.
// The tree is built on pooled buffers; see NewGrow.
func NewMerge(t1, t2 *Tree) *Tree {
	c := getCarrier()
	c.edges = UnionEdgesInto(c.edges, t1.Edges, t2.Edges)
	c.nodes = UnionNodesInto(c.nodes, t1.Nodes, t2.Nodes)
	c.sat = bitset.UnionInto(c.sat, t1.Sat, t2.Sat)
	c.t = Tree{
		Root:  t1.Root,
		Edges: c.edges,
		Nodes: c.nodes,
		Sat:   c.sat,
		Kind:  Merge,
		Left:  t1,
		Right: t2,
		HasMo: t1.HasMo || t2.HasMo,
		sig:   MergeSigs(t1.Sig(), t2.Sig()),
		car:   c,
	}
	return &c.t
}

// NewMo builds Mo(t, r): the same edge set as t re-rooted at seed node r
// (Section 4.5). r must be a node of t distinct from its root. The slices
// are t's — immutable and safe to share — so a Mo tree is a plain
// struct allocation: taking a pooled carrier just to hold the struct
// would pin the carrier's (possibly heap-grown) buffers for as long as a
// kept Mo tree lives, starving the pool.
func NewMo(t *Tree, r graph.NodeID) *Tree {
	return &Tree{
		Root:  r,
		Edges: t.Edges,
		Nodes: t.Nodes,
		Sat:   t.Sat,
		Kind:  Mo,
		Left:  t,
		HasMo: true,
		sig:   t.Sig(),
	}
}

// Size returns the number of edges.
func (t *Tree) Size() int { return len(t.Edges) }

// ContainsNode reports whether n is a node of t.
func (t *Tree) ContainsNode(n graph.NodeID) bool {
	i := sort.Search(len(t.Nodes), func(i int) bool { return t.Nodes[i] >= n })
	return i < len(t.Nodes) && t.Nodes[i] == n
}

// ContainsEdge reports whether e is an edge of t.
func (t *Tree) ContainsEdge(e graph.EdgeID) bool {
	i := sort.Search(len(t.Edges), func(i int) bool { return t.Edges[i] >= e })
	return i < len(t.Edges) && t.Edges[i] == e
}

// OverlapOnlyRoot reports whether the node sets of t1 and t2 intersect in
// exactly their (shared) root — the Merge1 precondition. It assumes
// t1.Root == t2.Root.
func OverlapOnlyRoot(t1, t2 *Tree) bool {
	i, j := 0, 0
	common := 0
	for i < len(t1.Nodes) && j < len(t2.Nodes) {
		switch {
		case t1.Nodes[i] < t2.Nodes[j]:
			i++
		case t1.Nodes[i] > t2.Nodes[j]:
			j++
		default:
			if t1.Nodes[i] != t1.Root {
				return false
			}
			common++
			i++
			j++
		}
	}
	return common == 1
}

// EdgeKey returns a compact string identifying the edge set. Trees with
// equal edge sets return equal keys. The hot paths deduplicate on Sig
// instead; this string form remains for tests and diagnostics.
func (t *Tree) EdgeKey() string {
	if len(t.Edges) == 0 {
		return ""
	}
	return EdgeSetKey(t.Edges)
}

// RootedKey returns a key identifying (root, edge set) pairs.
func (t *Tree) RootedKey() string {
	var buf [4]byte
	putNode(&buf, t.Root)
	return string(buf[:]) + t.EdgeKey()
}

// EdgeSetKey encodes a sorted edge-ID slice as a map key.
func EdgeSetKey(edges []graph.EdgeID) string {
	var sb strings.Builder
	sb.Grow(4 * len(edges))
	var buf [4]byte
	for _, e := range edges {
		buf[0] = byte(e)
		buf[1] = byte(e >> 8)
		buf[2] = byte(e >> 16)
		buf[3] = byte(e >> 24)
		sb.Write(buf[:])
	}
	return sb.String()
}

func putNode(buf *[4]byte, n graph.NodeID) {
	buf[0] = byte(n)
	buf[1] = byte(n >> 8)
	buf[2] = byte(n >> 16)
	buf[3] = byte(n >> 24)
}

// ProvenanceString renders the provenance formula, e.g.
// Merge(Grow(Init(3),e7),Init(5)). Intended for tests and debugging.
func (t *Tree) ProvenanceString() string {
	var sb strings.Builder
	t.writeProv(&sb)
	return sb.String()
}

func (t *Tree) writeProv(sb *strings.Builder) {
	switch t.Kind {
	case Init:
		fmt.Fprintf(sb, "Init(%d)", t.Root)
	case Grow:
		sb.WriteString("Grow(")
		t.Left.writeProv(sb)
		fmt.Fprintf(sb, ",e%d)", t.GrowEdge)
	case Merge:
		sb.WriteString("Merge(")
		t.Left.writeProv(sb)
		sb.WriteString(",")
		t.Right.writeProv(sb)
		sb.WriteString(")")
	case Mo:
		sb.WriteString("Mo(")
		t.Left.writeProv(sb)
		fmt.Fprintf(sb, ",%d)", t.Root)
	}
}

// String renders the tree as root plus sorted edge IDs.
func (t *Tree) String() string {
	parts := make([]string, len(t.Edges))
	for i, e := range t.Edges {
		parts[i] = fmt.Sprintf("e%d", e)
	}
	return fmt.Sprintf("root=%d {%s}", t.Root, strings.Join(parts, ","))
}

// InsertEdgeInto writes s with e inserted in order into buf,
// reusing buf's backing array when its capacity suffices.
func InsertEdgeInto(buf, s []graph.EdgeID, e graph.EdgeID) []graph.EdgeID {
	n := len(s) + 1
	if cap(buf) < n {
		buf = make([]graph.EdgeID, n, roundCap(n))
	} else {
		buf = buf[:n]
	}
	i := sort.Search(len(s), func(i int) bool { return s[i] >= e })
	copy(buf, s[:i])
	buf[i] = e
	copy(buf[i+1:], s[i:])
	return buf
}

// InsertNodeInto is InsertEdgeInto for node slices.
func InsertNodeInto(buf, s []graph.NodeID, n graph.NodeID) []graph.NodeID {
	ln := len(s) + 1
	if cap(buf) < ln {
		buf = make([]graph.NodeID, ln, roundCap(ln))
	} else {
		buf = buf[:ln]
	}
	i := sort.Search(len(s), func(i int) bool { return s[i] >= n })
	copy(buf, s[:i])
	buf[i] = n
	copy(buf[i+1:], s[i:])
	return buf
}

// UnionEdgesInto merges two sorted, disjoint edge slices into buf,
// reusing its backing array when possible.
func UnionEdgesInto(buf, a, b []graph.EdgeID) []graph.EdgeID {
	n := len(a) + len(b)
	if cap(buf) < n {
		buf = make([]graph.EdgeID, 0, roundCap(n))
	} else {
		buf = buf[:0]
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			buf = append(buf, a[i])
			i++
		case a[i] > b[j]:
			buf = append(buf, b[j])
			j++
		default: // defensive: shared edge (callers guarantee disjointness)
			buf = append(buf, a[i])
			i++
			j++
		}
	}
	buf = append(buf, a[i:]...)
	buf = append(buf, b[j:]...)
	return buf
}

// UnionNodesInto merges two sorted node slices into buf,
// deduplicating the nodes they share (for Merge inputs, exactly the root).
func UnionNodesInto(buf, a, b []graph.NodeID) []graph.NodeID {
	n := len(a) + len(b)
	if cap(buf) < n {
		buf = make([]graph.NodeID, 0, roundCap(n))
	} else {
		buf = buf[:0]
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			buf = append(buf, a[i])
			i++
		case a[i] > b[j]:
			buf = append(buf, b[j])
			j++
		default:
			buf = append(buf, a[i])
			i++
			j++
		}
	}
	buf = append(buf, a[i:]...)
	buf = append(buf, b[j:]...)
	return buf
}

// roundCap rounds a requested buffer size up so recycled carriers soon
// stop reallocating as candidate trees grow.
func roundCap(n int) int { return (n + 7) &^ 7 }
