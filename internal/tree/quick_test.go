package tree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"ctpquery/internal/gen"
	"ctpquery/internal/graph"
)

// Property-based tests (testing/quick) over the tree-manipulation
// primitives the search algorithms depend on.

// Property: the sorted-insert and sorted-union helpers used by Grow and
// Merge agree with naive set arithmetic.
func TestQuickSortedOps(t *testing.T) {
	f := func(raw []uint16, extra uint16) bool {
		// Build a sorted, deduplicated base slice.
		seen := map[graph.EdgeID]bool{}
		var base []graph.EdgeID
		for _, v := range raw {
			e := graph.EdgeID(v)
			if !seen[e] {
				seen[e] = true
				base = append(base, e)
			}
		}
		sort.Slice(base, func(i, j int) bool { return base[i] < base[j] })

		e := graph.EdgeID(extra)
		if seen[e] {
			return true // insert requires absence; skip
		}
		got := InsertEdgeInto(nil, base, e)
		if len(got) != len(base)+1 {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i-1] >= got[i] {
				return false
			}
		}
		has := false
		for _, x := range got {
			if x == e {
				has = true
			}
		}
		return has
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

// Property: unionSortedNodes returns the sorted union without duplicates.
func TestQuickUnionNodes(t *testing.T) {
	f := func(a, b []uint8) bool {
		mk := func(vs []uint8) []graph.NodeID {
			seen := map[graph.NodeID]bool{}
			var out []graph.NodeID
			for _, v := range vs {
				n := graph.NodeID(v)
				if !seen[n] {
					seen[n] = true
					out = append(out, n)
				}
			}
			sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
			return out
		}
		sa, sb := mk(a), mk(b)
		got := UnionNodesInto(nil, sa, sb)
		want := map[graph.NodeID]bool{}
		for _, n := range sa {
			want[n] = true
		}
		for _, n := range sb {
			want[n] = true
		}
		if len(got) != len(want) {
			return false
		}
		for i, n := range got {
			if !want[n] {
				return false
			}
			if i > 0 && got[i-1] >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Fatal(err)
	}
}

// Property: Minimize is idempotent, only removes edges, and leaves no
// removable (non-seed) leaves, on random subtrees of random graphs.
func TestQuickMinimizeInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 60; trial++ {
		g := gen.Random(12, 16, nil, rng)
		edges := randomSubtree(g, rng, 1+rng.Intn(8))
		// Random seed choice among the subtree's nodes.
		nodes := NodesOfEdges(g, edges)
		seedSet := map[graph.NodeID]bool{}
		for _, n := range nodes {
			if rng.Intn(3) == 0 {
				seedSet[n] = true
			}
		}
		isSeed := func(n graph.NodeID) bool { return seedSet[n] }

		min1 := Minimize(g, edges, isSeed)
		min2 := Minimize(g, min1, isSeed)
		if EdgeSetKey(min1) != EdgeSetKey(min2) {
			t.Fatalf("trial %d: Minimize not idempotent", trial)
		}
		if len(min1) > len(edges) {
			t.Fatalf("trial %d: Minimize grew the set", trial)
		}
		for _, l := range Leaves(g, min1) {
			if !isSeed(l) {
				t.Fatalf("trial %d: minimized tree has non-seed leaf %d", trial, l)
			}
		}
		if len(min1) > 0 && !IsTree(g, min1) {
			t.Fatalf("trial %d: minimized set is not a tree", trial)
		}
	}
}

// Property: Decompose partitions the edges, and each piece is connected
// with all piece-internal non-leaf nodes non-seeds.
func TestQuickDecomposeInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 60; trial++ {
		g := gen.Random(12, 15, nil, rng)
		edges := randomSubtree(g, rng, 2+rng.Intn(7))
		nodes := NodesOfEdges(g, edges)
		seedSet := map[graph.NodeID]bool{}
		for _, n := range nodes {
			if rng.Intn(3) == 0 {
				seedSet[n] = true
			}
		}
		isSeed := func(n graph.NodeID) bool { return seedSet[n] }

		pieces := Decompose(g, edges, isSeed)
		count := 0
		seenEdge := map[graph.EdgeID]bool{}
		for _, p := range pieces {
			count += len(p)
			if !IsTree(g, p) {
				t.Fatalf("trial %d: piece is not a tree", trial)
			}
			for _, e := range p {
				if seenEdge[e] {
					t.Fatalf("trial %d: edge %d in two pieces", trial, e)
				}
				seenEdge[e] = true
			}
		}
		if count != len(edges) {
			t.Fatalf("trial %d: decomposition covers %d of %d edges", trial, count, len(edges))
		}
	}
}

// randomSubtree grows a random connected acyclic edge set.
func randomSubtree(g *graph.Graph, rng *rand.Rand, size int) []graph.EdgeID {
	start := graph.NodeID(rng.Intn(g.NumNodes()))
	inNodes := map[graph.NodeID]bool{start: true}
	var edges []graph.EdgeID
	for len(edges) < size {
		// Collect frontier edges that extend the tree.
		var frontier []graph.EdgeID
		for n := range inNodes {
			for _, e := range g.Incident(n) {
				if !inNodes[g.Other(e, n)] {
					frontier = append(frontier, e)
				}
			}
		}
		if len(frontier) == 0 {
			break
		}
		e := frontier[rng.Intn(len(frontier))]
		ed := g.Edge(e)
		inNodes[ed.Source] = true
		inNodes[ed.Target] = true
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i] < edges[j] })
	return edges
}
