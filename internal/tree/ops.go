package tree

import (
	"sort"

	"ctpquery/internal/graph"
)

// NodesOfEdges returns the sorted distinct endpoints of a set of edges.
func NodesOfEdges(g *graph.Graph, edges []graph.EdgeID) []graph.NodeID {
	seen := make(map[graph.NodeID]struct{}, len(edges)+1)
	for _, e := range edges {
		ed := g.Edge(e)
		seen[ed.Source] = struct{}{}
		seen[ed.Target] = struct{}{}
	}
	out := make([]graph.NodeID, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IsTree reports whether the edge set forms a single tree: connected and
// acyclic (|nodes| == |edges|+1 with all edges in one component). An empty
// edge set is a (degenerate, single-node) tree only from the caller's
// perspective; here it returns true.
func IsTree(g *graph.Graph, edges []graph.EdgeID) bool {
	if len(edges) == 0 {
		return true
	}
	nodes := NodesOfEdges(g, edges)
	if len(nodes) != len(edges)+1 {
		return false
	}
	inSet := make(map[graph.EdgeID]struct{}, len(edges))
	for _, e := range edges {
		inSet[e] = struct{}{}
	}
	// BFS over tree edges from an arbitrary node.
	visited := map[graph.NodeID]struct{}{nodes[0]: {}}
	queue := []graph.NodeID{nodes[0]}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range g.Incident(n) {
			if _, ok := inSet[e]; !ok {
				continue
			}
			o := g.Other(e, n)
			if _, ok := visited[o]; !ok {
				visited[o] = struct{}{}
				queue = append(queue, o)
			}
		}
	}
	return len(visited) == len(nodes)
}

// Leaves returns the nodes adjacent to exactly one edge of the set.
func Leaves(g *graph.Graph, edges []graph.EdgeID) []graph.NodeID {
	deg := make(map[graph.NodeID]int, len(edges)+1)
	for _, e := range edges {
		ed := g.Edge(e)
		deg[ed.Source]++
		deg[ed.Target]++
	}
	var out []graph.NodeID
	for n, d := range deg {
		if d == 1 {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Minimize removes, iteratively, every leaf that is not a seed, returning
// the minimal subtree whose leaves are all seeds. This is the minimization
// step breadth-first algorithms must apply before reporting a result
// (Section 4.1). The input slice is not modified.
func Minimize(g *graph.Graph, edges []graph.EdgeID, isSeed func(graph.NodeID) bool) []graph.EdgeID {
	// Work on degree counts and an edge-per-node index restricted to the set.
	deg := make(map[graph.NodeID]int, len(edges)+1)
	alive := make(map[graph.EdgeID]bool, len(edges))
	for _, e := range edges {
		alive[e] = true
		ed := g.Edge(e)
		deg[ed.Source]++
		deg[ed.Target]++
	}
	// Repeatedly peel non-seed leaves.
	var peel []graph.NodeID
	for n, d := range deg {
		if d == 1 && !isSeed(n) {
			peel = append(peel, n)
		}
	}
	for len(peel) > 0 {
		n := peel[len(peel)-1]
		peel = peel[:len(peel)-1]
		if deg[n] != 1 || isSeed(n) {
			continue
		}
		// Find the unique alive edge at n.
		for _, e := range g.Incident(n) {
			if !alive[e] {
				continue
			}
			alive[e] = false
			o := g.Other(e, n)
			deg[n]--
			deg[o]--
			if deg[o] == 1 && !isSeed(o) {
				peel = append(peel, o)
			}
			break
		}
	}
	out := make([]graph.EdgeID, 0, len(edges))
	for _, e := range edges {
		if alive[e] {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Decompose returns the simple tree decomposition θ(t) of Definition 4.6:
// the partition of the edge set into simple edge sets, obtained by cutting
// the tree at every internal seed node. Each element is a sorted edge
// slice. isSeed classifies nodes.
func Decompose(g *graph.Graph, edges []graph.EdgeID, isSeed func(graph.NodeID) bool) [][]graph.EdgeID {
	if len(edges) == 0 {
		return nil
	}
	inSet := make(map[graph.EdgeID]bool, len(edges))
	for _, e := range edges {
		inSet[e] = true
	}
	deg := make(map[graph.NodeID]int)
	for _, e := range edges {
		ed := g.Edge(e)
		deg[ed.Source]++
		deg[ed.Target]++
	}
	// A "piece" is a maximal connected set of edges not crossing an
	// internal seed node (seeds with degree >= 2 in t) nor a leaf seed:
	// traversal stops at every seed, so pieces meet only at seed nodes.
	assigned := make(map[graph.EdgeID]bool, len(edges))
	var pieces [][]graph.EdgeID
	for _, start := range edges {
		if assigned[start] {
			continue
		}
		piece := []graph.EdgeID{}
		queue := []graph.EdgeID{start}
		assigned[start] = true
		for len(queue) > 0 {
			e := queue[0]
			queue = queue[1:]
			piece = append(piece, e)
			ed := g.Edge(e)
			for _, n := range [2]graph.NodeID{ed.Source, ed.Target} {
				if isSeed(n) {
					continue // pieces do not extend through seeds
				}
				for _, e2 := range g.Incident(n) {
					if inSet[e2] && !assigned[e2] {
						assigned[e2] = true
						queue = append(queue, e2)
					}
				}
			}
		}
		sort.Slice(piece, func(i, j int) bool { return piece[i] < piece[j] })
		pieces = append(pieces, piece)
	}
	return pieces
}

// PieceLeafSeeds returns the seed nodes incident to a decomposition piece;
// for a simple edge set these are exactly its leaves that matter for the
// p-simple classification (Definition 4.5).
func PieceLeafSeeds(g *graph.Graph, piece []graph.EdgeID, isSeed func(graph.NodeID) bool) []graph.NodeID {
	seen := make(map[graph.NodeID]bool)
	var out []graph.NodeID
	for _, e := range piece {
		ed := g.Edge(e)
		for _, n := range [2]graph.NodeID{ed.Source, ed.Target} {
			if isSeed(n) && !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PiecewiseSimple returns the largest number of seed leaves over all
// pieces of θ(t), i.e. the least p for which the result is p-piecewise
// simple (Definition 4.7). Results that are single nodes return 0.
func PiecewiseSimple(g *graph.Graph, edges []graph.EdgeID, isSeed func(graph.NodeID) bool) int {
	max := 0
	for _, piece := range Decompose(g, edges, isSeed) {
		if n := len(PieceLeafSeeds(g, piece, isSeed)); n > max {
			max = n
		}
	}
	return max
}

// UnidirectionalRoot searches for a node r of the edge set from which a
// directed path (following edge direction) reaches every other node of the
// set. It returns the first such node in ID order, implementing the UNI
// filter check of Section 2. The second result is false when no such root
// exists.
func UnidirectionalRoot(g *graph.Graph, edges []graph.EdgeID) (graph.NodeID, bool) {
	if len(edges) == 0 {
		return 0, false
	}
	nodes := NodesOfEdges(g, edges)
	inSet := make(map[graph.EdgeID]bool, len(edges))
	for _, e := range edges {
		inSet[e] = true
	}
	// In a tree, a directed root must have in-degree 0 within the tree and
	// every other node in-degree exactly 1; checking that is O(E).
	indeg := make(map[graph.NodeID]int, len(nodes))
	for _, e := range edges {
		indeg[g.Target(e)]++
	}
	var root graph.NodeID
	found := false
	for _, n := range nodes {
		if indeg[n] == 0 {
			if found {
				return 0, false // two sources: some node unreachable
			}
			root, found = n, true
		}
	}
	if !found {
		return 0, false
	}
	for _, n := range nodes {
		if n != root && indeg[n] != 1 {
			return 0, false
		}
	}
	return root, true
}
