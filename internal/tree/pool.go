package tree

import (
	"sync"

	"ctpquery/internal/bitset"
	"ctpquery/internal/graph"
)

// The grow/merge hot path of a connection search constructs far more
// candidate trees than it keeps: every duplicate the (edge-set or rooted)
// pruning rejects is garbage the moment the check fails. A carrier couples
// one Tree struct with the reusable buffers backing its Edges, Nodes, and
// Sat so a rejected candidate costs no allocations at steady state: the
// search returns it with Recycle and the next NewGrow/NewMerge reuses the
// buffers in place.
//
// Invariants:
//
//   - Kept trees (indexed, queued, reported, or referenced as provenance
//     children) are NEVER recycled; their carrier simply stays with them.
//   - Recycle(t) requires that nothing references t or its slices. The
//     search kernels guarantee this by recycling only candidates rejected
//     before any history, index, or queue stored them.
//   - Mo trees share their child's slices and are plain (unpooled)
//     allocations — a kept Mo tree must not pin a carrier's buffers.
type carrier struct {
	t     Tree
	edges []graph.EdgeID
	nodes []graph.NodeID
	sat   bitset.Bits

	// Inline storage, used until a tree outgrows it: a fresh carrier costs
	// one allocation for the whole candidate (struct + edges + nodes +
	// sat), not four. inlineCap covers the tree sizes the paper's
	// workloads overwhelmingly produce; larger trees spill to the heap via
	// the Into helpers.
	inlineEdges [inlineCap]graph.EdgeID
	inlineNodes [inlineCap + 1]graph.NodeID
	inlineSat   [2]uint64
}

// inlineCap is the number of edges a carrier stores without a second
// allocation.
const inlineCap = 16

var carrierPool = sync.Pool{New: func() any {
	c := new(carrier)
	c.edges = c.inlineEdges[:0]
	c.nodes = c.inlineNodes[:0]
	c.sat = bitset.Bits(c.inlineSat[:0])
	return c
}}

func getCarrier() *carrier { return carrierPool.Get().(*carrier) }

// Recycle returns a pooled candidate tree to the pool and reports whether
// it was pooled. The caller must not use t afterwards: the struct is
// zeroed (dropping the provenance references that would otherwise pin
// ancestors) while the carrier keeps its buffers for reuse.
func Recycle(t *Tree) bool {
	c := t.car
	if c == nil {
		return false
	}
	c.t = Tree{}
	carrierPool.Put(c)
	return true
}
