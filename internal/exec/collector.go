package exec

import (
	"sort"
	"sync"

	"ctpquery/internal/core"
	"ctpquery/internal/graph"
	"ctpquery/internal/tree"
)

// collector is the shared result sink: core's single-writer
// ResultCollector — the one implementation of the result-admission
// semantics (edge-set dedup, UNI verification, scoring, streaming,
// LIMIT) — serialized behind a mutex. Results are rare relative to
// candidate trees, so the serialization is not a scalability concern;
// what the parallel path adds is finish, which orders the output
// canonically (score desc, then size, then edge-set key) so a run's
// output is deterministic given its result set and independent of
// worker arrival order.
type collector struct {
	mu    sync.Mutex
	rc    *core.ResultCollector
	score core.ScoreFunc
	topK  int
}

func newCollector(g *graph.Graph, si *core.SeedIndex, opts core.Options) *collector {
	return &collector{
		rc:    core.NewResultCollector(g, si, opts),
		score: opts.Score,
		topK:  opts.Filters.TopK,
	}
}

// add records a result tree; true means the LIMIT filter (or a streaming
// callback) asks the search to stop. Safe for concurrent use.
func (c *collector) add(t *tree.Tree) bool {
	probeCollectorAdd.Hit()
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rc.Add(t)
}

// finish orders the results canonically and applies TOP k. The key —
// score descending, then tree size, then the edge-set key (node identity
// for 0-edge trees) — is a total order over deduplicated results, so two
// runs that found the same result set return it identically.
func (c *collector) finish() *core.ResultSet {
	results := c.rc.Results()
	keys := make([]string, len(results))
	for i, r := range results {
		keys[i] = resultKey(r.Tree)
	}
	idx := make([]int, len(results))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ra, rb := results[idx[a]], results[idx[b]]
		if ra.Score != rb.Score {
			return ra.Score > rb.Score
		}
		if sa, sb := ra.Tree.Size(), rb.Tree.Size(); sa != sb {
			return sa < sb
		}
		return keys[idx[a]] < keys[idx[b]]
	})
	n := len(idx)
	if c.topK > 0 && c.score != nil && n > c.topK {
		n = c.topK
	}
	out := make([]core.Result, n)
	for i := 0; i < n; i++ {
		out[i] = results[idx[i]]
	}
	return &core.ResultSet{Results: out}
}

// resultKey is a canonical identity string: the sorted edge-ID encoding,
// or a node marker for single-node results.
func resultKey(t *tree.Tree) string {
	if t.Size() == 0 {
		return "n" + tree.EdgeSetKey([]graph.EdgeID{graph.EdgeID(t.Root)})
	}
	return tree.EdgeSetKey(t.Edges)
}
