package exec

import (
	"sync"

	"ctpquery/internal/graph"
	"ctpquery/internal/tree"
)

// growOp is a (tree, edge) Grow opportunity queued on the owner of the
// tree the grow will create.
type growOp struct {
	t    *tree.Tree
	e    graph.EdgeID
	prio float64
	seq  uint64 // per-worker FIFO tiebreak
}

// opHeap is a min-heap of growOps ordered by (prio, seq), hand-rolled for
// the same reason as the sequential kernel's: container/heap boxes every
// push into an interface allocation.
type opHeap []growOp

func (h opHeap) less(i, j int) bool {
	if h[i].prio != h[j].prio {
		return h[i].prio < h[j].prio
	}
	return h[i].seq < h[j].seq
}

func (h *opHeap) pushOp(op growOp) {
	a := append(*h, op)
	*h = a
	i := len(a) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !a.less(i, parent) {
			break
		}
		a[i], a[parent] = a[parent], a[i]
		i = parent
	}
}

func (h *opHeap) popOp() growOp {
	a := *h
	top := a[0]
	n := len(a) - 1
	a[0] = a[n]
	a[n] = growOp{} // drop the tree reference for the GC
	a = a[:n]
	*h = a
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && a.less(l, smallest) {
			smallest = l
		}
		if r < n && a.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		a[i], a[smallest] = a[smallest], a[i]
		i = smallest
	}
	return top
}

// stealBatch bounds how many ops a thief relocates per visit: enough to
// amortize the locking, small enough to keep work spread out.
const stealBatch = 64

// lockedQueue is a worker's grow queue behind a mutex so idle peers can
// steal from it. The lock is uncontended in the common case — only the
// owner pushes and pops — and stealTail removes trailing heap leaves,
// which preserves the heap invariant for the remainder.
type lockedQueue struct {
	mu sync.Mutex
	h  opHeap
}

func (q *lockedQueue) push(op growOp) {
	q.mu.Lock()
	q.h.pushOp(op)
	q.mu.Unlock()
}

func (q *lockedQueue) pop() (growOp, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.h) == 0 {
		return growOp{}, false
	}
	return q.h.popOp(), true
}

func (q *lockedQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.h)
}

// stealTail takes up to max ops — at most half the queue — from the tail
// of the heap array. Tail elements are leaves, so removing them keeps the
// remaining slice a valid heap; thieves get arbitrary-priority ops, which
// is fine: result completeness is order-independent (Section 4.8).
func (q *lockedQueue) stealTail(max int) []growOp {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := len(q.h) / 2
	if n > max {
		n = max
	}
	if n == 0 {
		return nil
	}
	cut := len(q.h) - n
	out := make([]growOp, n)
	copy(out, q.h[cut:])
	for i := cut; i < len(q.h); i++ {
		q.h[i] = growOp{}
	}
	q.h = q.h[:cut]
	return out
}
