//go:build !linux

package exec

// Platforms without a per-thread CPU clock report zero busy time;
// WorkerStats.BusyNS is documented as best-effort.

const cpuTimeSupported = false

func threadCPUNanos() int64 { return 0 }
