package exec

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"ctpquery/internal/core"
	"ctpquery/internal/eql"
	"ctpquery/internal/fault"
	"ctpquery/internal/gen"
	"ctpquery/internal/testutil"
)

// execProbes are the parallel runtime's registered fault points; the
// chaos suite must cover every one of them.
var execProbes = []string{
	"exec.worker.loop",
	"exec.worker.process_op",
	"exec.worker.process_tree",
	"exec.worker.process_mo",
	"exec.worker.drain_mail",
	"exec.worker.steal",
	"exec.collector.add",
}

// searchWithTimeout runs core.Search in a goroutine and fails the test
// if it neither returns nor errors within the deadline — the "injected
// panic wedges the runtime" failure mode this suite exists to catch.
func searchWithTimeout(t *testing.T, g *gen.Workload, opts core.Options) (*core.ResultSet, error) {
	t.Helper()
	type outcome struct {
		rs  *core.ResultSet
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		rs, _, err := core.Search(g.Graph, core.Explicit(g.Seeds...), opts)
		ch <- outcome{rs, err}
	}()
	select {
	case o := <-ch:
		return o.rs, o.err
	case <-time.After(30 * time.Second):
		buf := make([]byte, 1<<20)
		t.Fatalf("search hung with fault armed\n%s", buf[:runtime.Stack(buf, true)])
		return nil, nil
	}
}

// TestChaosWorkerPanicContainment injects a panic at every exec probe
// point, across worker counts and randomized hit offsets, and asserts
// the invariant of the containment design: the query either completes
// with exactly the sequential result multiset (the fault never fired —
// that code path didn't run) or returns a contained injection error.
// It must never hang and never return silently partial results.
func TestChaosWorkerPanicContainment(t *testing.T) {
	defer fault.Reset()
	baseline := runtime.NumGoroutine()
	rng := rand.New(rand.NewSource(42))

	w := gen.Line(3, 3, gen.Alternate)
	opts := core.Options{Algorithm: core.MoLESP, Filters: eql.Filters{MaxEdges: 6}}
	want := fmt.Sprint(resultMultiset(searchOrFatal(t, w.Graph, core.Explicit(w.Seeds...), opts)))

	for _, point := range execProbes {
		for _, k := range []int{2, 4, 8} {
			t.Run(fmt.Sprintf("%s/K=%d", point, k), func(t *testing.T) {
				fault.Reset()
				// Randomize which hit fires so different interleavings get
				// poisoned across runs: sometimes the very first op, sometimes
				// mid-search, sometimes a hit count the run never reaches.
				after := uint64(rng.Intn(40))
				if err := fault.Arm(point, fault.Fault{Kind: fault.Panic, After: after}); err != nil {
					t.Fatal(err)
				}
				popts := opts
				popts.Parallelism = k
				rs, err := searchWithTimeout(t, w, popts)
				fired := fault.Fired(point)
				switch {
				case fired > 0 && err == nil:
					t.Fatalf("fault fired (after=%d) but Search returned no error", after)
				case fired > 0 && !fault.IsInjected(err):
					t.Fatalf("fault fired but error is not the injection: %v", err)
				case fired == 0 && err != nil:
					t.Fatalf("fault never fired (after=%d) yet Search errored: %v", after, err)
				case fired == 0:
					if got := fmt.Sprint(resultMultiset(rs)); got != want {
						t.Fatalf("unfired fault changed results\nwant %s\ngot  %s", want, got)
					}
				}
			})
		}
	}
	fault.Reset()
	testutil.SettleGoroutines(t, baseline, 2)
}

// TestChaosRepeatedInjectionNoLeak hammers one search shape with a
// first-op panic many times over: each contained failure must release
// every worker and mailbox, so the goroutine count stays flat and the
// next clean search still returns the full result set.
func TestChaosRepeatedInjectionNoLeak(t *testing.T) {
	defer fault.Reset()
	baseline := runtime.NumGoroutine()

	w := gen.Star(5, 3, gen.Alternate)
	opts := core.Options{Algorithm: core.MoLESP, Parallelism: 4}
	want := fmt.Sprint(resultMultiset(searchOrFatal(t, w.Graph, core.Explicit(w.Seeds...), core.Options{Algorithm: core.MoLESP})))

	for i := 0; i < 25; i++ {
		fault.Reset()
		if err := fault.Arm("exec.worker.process_op", fault.Fault{Kind: fault.Panic}); err != nil {
			t.Fatal(err)
		}
		_, err := searchWithTimeout(t, w, opts)
		if err == nil || !fault.IsInjected(err) {
			t.Fatalf("iteration %d: want injected error, got %v", i, err)
		}
	}
	fault.Reset()
	rs, err := searchWithTimeout(t, w, opts)
	if err != nil {
		t.Fatalf("clean search after chaos errored: %v", err)
	}
	if got := fmt.Sprint(resultMultiset(rs)); got != want {
		t.Fatalf("post-chaos results diverge\nwant %s\ngot  %s", want, got)
	}
	testutil.SettleGoroutines(t, baseline, 2)
}

// TestChaosDelayInjection arms a delay (not a panic): the search must
// still complete with the exact sequential results — proving the probe
// points sit outside critical sections, where stalling a worker cannot
// corrupt shared state.
func TestChaosDelayInjection(t *testing.T) {
	defer fault.Reset()
	w := gen.Line(3, 3, gen.Alternate)
	opts := core.Options{Algorithm: core.MoLESP, Filters: eql.Filters{MaxEdges: 6}}
	want := fmt.Sprint(resultMultiset(searchOrFatal(t, w.Graph, core.Explicit(w.Seeds...), opts)))

	fault.Reset()
	if err := fault.Arm("exec.worker.process_op", fault.Fault{
		Kind: fault.Delay, Delay: 2 * time.Millisecond, After: 3, Count: 5,
	}); err != nil {
		t.Fatal(err)
	}
	popts := opts
	popts.Parallelism = 4
	rs, err := searchWithTimeout(t, w, popts)
	if err != nil {
		t.Fatalf("delay injection errored the search: %v", err)
	}
	if got := fmt.Sprint(resultMultiset(rs)); got != want {
		t.Fatalf("delay injection changed results\nwant %s\ngot  %s", want, got)
	}
}
