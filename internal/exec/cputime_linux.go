//go:build linux

package exec

import (
	"syscall"
	"unsafe"
)

// Per-thread CPU clocks let the runtime report each worker's busy time
// exactly, even on machines with fewer cores than workers (where wall-
// clock intervals overcount by the timeslicing factor). The maximum over
// workers is the search's span — the wall time a machine with >= K free
// cores would observe — which is what the benchmark sweep reports
// alongside measured wall time.

const clockThreadCPUTimeID = 3 // CLOCK_THREAD_CPUTIME_ID, linux/time.h

const cpuTimeSupported = true

// threadCPUNanos returns the calling thread's consumed CPU time. The
// caller must be locked to its OS thread for the value to be meaningful
// across two reads.
func threadCPUNanos() int64 {
	var ts syscall.Timespec
	_, _, errno := syscall.Syscall(syscall.SYS_CLOCK_GETTIME,
		uintptr(clockThreadCPUTimeID), uintptr(unsafe.Pointer(&ts)), 0)
	if errno != 0 {
		return 0
	}
	return ts.Nano()
}
