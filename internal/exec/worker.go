package exec

import (
	"fmt"
	goruntime "runtime"
	"sync/atomic"
	"time"

	"ctpquery/internal/bitset"
	"ctpquery/internal/core"
	"ctpquery/internal/fault"
	"ctpquery/internal/graph"
	"ctpquery/internal/tree"
)

// worker owns one shard of the search: every tree rooted at a node it
// owns is deduplicated, indexed, merged, and grown here. All fields below
// the queue are strictly worker-private — the parallel kernel is the
// sequential kernel with its root-keyed state partitioned.
type worker struct {
	r    *run
	id   int
	wake chan struct{} // buffered(1): senders signal new mailbox items
	mail atomic.Int64  // items waiting across this worker's inboxes

	q lockedQueue // grow ops for trees this worker will own; peers steal here

	byRoot     map[graph.NodeID][]*tree.Tree // TreesRootedIn, this shard
	rootedSeen *core.SigSet                  // rooted dedup history, this shard
	ss         map[graph.NodeID]bitset.Bits  // LESP seed signatures, this shard
	seq        uint64                        // local FIFO tiebreak
	dl         *core.Deadline

	stats   core.Stats // merged into the search totals at the end
	ops     int        // ops + tasks processed
	shipped int        // tasks routed to other shards
	stolen  int        // ops taken from peers' queues
	busyNS  int64      // thread CPU time in loop (cputime_linux.go)
	wallNS  int64      // wall time in loop; with wallStart, lets the
	// tracer reconstruct each worker's lifetime as a span after the fact
	wallStart time.Time
}

func newWorker(r *run, id int) *worker {
	return &worker{
		r:          r,
		id:         id,
		wake:       make(chan struct{}, 1),
		byRoot:     make(map[graph.NodeID][]*tree.Tree),
		rootedSeen: core.NewSigSet(),
		ss:         make(map[graph.NodeID]bitset.Bits),
		dl:         core.NewDeadline(r.opts.Filters.Timeout, r.opts.Done),
	}
}

// loop drains mailboxes and the local queue, steals when idle, and parks
// when there is nothing to do anywhere. It exits when the run stops —
// either the pending-task count hit zero (search complete) or a filter
// (TIMEOUT, LIMIT, MaxTrees, cancellation) ended the search early.
func (w *worker) loop() {
	defer w.r.wg.Done()
	// Containment boundary: a panic anywhere in this worker's slice of
	// the kernel is converted to a run-level error and the search is
	// stopped, so the other workers wake from their parks and exit
	// instead of waiting forever on a pending count that can no longer
	// reach zero. Registered after wg.Done so Done still runs last.
	defer func() {
		if rec := recover(); rec != nil {
			w.r.fail(fault.Recovered(fmt.Sprintf("exec: worker %d", w.id), rec))
		}
	}()
	if cpuTimeSupported {
		// Pin to an OS thread so the kernel's per-thread CPU clock
		// attributes exactly this worker's work — the span measurement the
		// benchmark sweep reports.
		goruntime.LockOSThread()
		defer goruntime.UnlockOSThread()
	}
	cpu0 := threadCPUNanos()
	w.wallStart = time.Now()
	defer func() {
		w.busyNS = threadCPUNanos() - cpu0
		w.wallNS = int64(time.Since(w.wallStart))
	}()

	for !w.r.stopped() {
		probeWorkerLoop.Hit()
		progress := w.drainMail()
		if op, ok := w.q.pop(); ok {
			w.ops++
			w.stats.QueuePops++
			w.processOp(op)
			w.r.finishTask()
			continue
		}
		if progress {
			continue
		}
		if w.trySteal() {
			continue
		}
		select {
		case <-w.wake:
		case <-w.r.stopCh:
		}
	}
}

// drainMail processes every queued exchange task and reports whether any
// was found. The atomic mail counter skips the k-box scan on the (hot)
// iterations where nothing arrived: senders increment it after
// depositing and before signaling wake, so a worker that parks on an
// empty counter is always woken into a visible non-zero one. Shipped
// grow ops join the local queue (their pending unit retires when
// popped); constructed trees are committed immediately.
func (w *worker) drainMail() bool {
	if w.mail.Load() == 0 {
		return false
	}
	any := false
	for from := 0; from < w.r.k; from++ {
		mb := &w.r.mail[from*w.r.k+w.id]
		mb.mu.Lock()
		items := mb.items
		mb.items = mb.free // recycled capacity from the previous drain
		mb.free = nil
		mb.mu.Unlock()
		if len(items) > 0 {
			w.mail.Add(int64(-len(items)))
		}
		for _, tk := range items {
			any = true
			if w.r.stopped() {
				return true
			}
			probeDrainMail.Hit()
			switch tk.kind {
			case taskGrowOp:
				w.seq++
				w.q.push(growOp{t: tk.t, e: tk.e, prio: tk.prio, seq: w.seq})
				w.noteQueueLen()
			case taskInit:
				w.ops++
				w.created()
				w.updateSignature(tk.t)
				w.processTree(tk.t)
				w.r.finishTask()
			case taskGrown:
				// Constructed by a thief, but counted Created here: the
				// owner also recycles rejected candidates, so live-tree
				// accounting (PeakTrees) stays balanced per worker.
				w.ops++
				w.created()
				w.updateSignature(tk.t)
				w.processTree(tk.t)
				w.r.finishTask()
			case taskMo:
				w.ops++
				w.processMo(tk.t)
				w.r.finishTask()
			}
		}
		// Hand the drained buffer back for the sender's next burst; only
		// this receiver touches free, so no lock is needed. Clear the
		// entries first so the recycled array does not pin processed
		// (possibly pool-recycled) trees.
		if cap(items) > 0 {
			for i := range items {
				items[i] = task{}
			}
			mb.free = items[:0]
		}
	}
	return any
}

// processOp turns a Grow opportunity into a candidate tree and runs it
// through the kernel (Algorithm 1's loop body, this shard's slice).
func (w *worker) processOp(op growOp) {
	probeProcessOp.Hit()
	if w.dl.Expired() {
		w.r.noteTimeout()
		return
	}
	newRoot := w.r.g.Other(op.e, op.t.Root)
	t := tree.NewGrow(op.t, op.e, newRoot, w.r.si.Mask(newRoot))
	w.created()
	w.updateSignature(t)
	w.processTree(t)
}

// trySteal scans the other workers' queues and relocates a batch of ops.
// The stolen trees still root in the victim's shard, so the thief only
// constructs the candidates (the allocation- and memcpy-heavy part) and
// ships them back for the owner to deduplicate and merge.
func (w *worker) trySteal() bool {
	for i := 1; i < w.r.k; i++ {
		v := w.r.workers[(w.id+i)%w.r.k]
		ops := v.q.stealTail(stealBatch)
		if len(ops) == 0 {
			continue
		}
		w.stolen += len(ops)
		for _, op := range ops {
			if w.r.stopped() {
				return true
			}
			probeSteal.Hit()
			w.ops++
			w.stats.QueuePops++
			if w.dl.Expired() {
				w.r.noteTimeout()
				return true
			}
			newRoot := w.r.g.Other(op.e, op.t.Root)
			t := tree.NewGrow(op.t, op.e, newRoot, w.r.si.Mask(newRoot))
			w.r.pending.Add(1)
			w.r.deposit(w.id, v.id, task{kind: taskGrown, t: t})
			w.shipped++
			w.r.finishTask() // the op itself is done; the candidate is now pending
		}
		return true
	}
	return false
}

// created tracks Created and the live-tree high-water mark, mirroring
// Stats.created in the sequential kernel.
func (w *worker) created() {
	w.stats.Created++
	if live := w.stats.Created - w.stats.Recycled; live > w.stats.PeakTrees {
		w.stats.PeakTrees = live
	}
}

func (w *worker) noteQueueLen() {
	if n := w.q.len(); n > w.stats.PeakQueueLen {
		w.stats.PeakQueueLen = n
	}
}

// updateSignature maintains ss_n for (n,s)-rooted paths (Definition 4.4).
// Only the root's owner ever touches ss[root], so no lock is needed.
func (w *worker) updateSignature(t *tree.Tree) {
	if !w.r.variant.LESP || !t.SeedPath {
		return
	}
	m := w.ss[t.Root]
	(&m).UnionInPlace(t.Sat)
	w.ss[t.Root] = m
}

// isNew is Algorithm 4 with the ESP history shared: the sharded set's Add
// atomically claims the edge set, so exactly one worker keeps each one.
// Rooted identities are shard-local and need no lock at all.
func (w *worker) isNew(t *tree.Tree) bool {
	if t.Size() == 0 || !w.r.variant.ESP {
		return !w.rootedSeen.Has(t.RootedSig(), t.Root, t.Edges)
	}
	if w.r.hist.add(t.Sig(), core.UnrootedRef, t.Edges) {
		return true
	}
	if w.r.variant.LESP {
		// The LESP exemption: roots already connected to >= 3 seed sets
		// with graph degree >= 3 keep their (new) rooted trees.
		if w.ss[t.Root].Count() >= 3 && w.r.g.Degree(t.Root) >= 3 &&
			!w.rootedSeen.Has(t.RootedSig(), t.Root, t.Edges) {
			w.stats.Spared++
			return true
		}
	}
	return false
}

// keep records a kept tree. The shared edge-set history was already
// claimed in isNew (grow/init candidates) or by the tree's Mo parent, so
// only the shard-local rooted history is written here.
func (w *worker) keep(t *tree.Tree) {
	w.rootedSeen.Add(t.RootedSig(), t.Root, t.Edges)
	switch t.Kind {
	case tree.Init:
		w.stats.Inits++
	case tree.Grow:
		w.stats.Grows++
	case tree.Merge:
		w.stats.Merges++
	case tree.Mo:
		w.stats.MoTrees++
	}
	w.r.keepOne()
}

// processTree is Algorithm 2 on this shard: deduplicate, report results,
// record for merging (with Mo injection), feed the queues, and merge
// aggressively. Identical to the sequential kernel except that grows and
// Mo copies whose root lives elsewhere are shipped instead of recursed.
func (w *worker) processTree(t *tree.Tree) {
	probeProcessTree.Hit()
	if w.r.stopped() {
		return
	}
	if w.dl.Expired() {
		w.r.noteTimeout()
		return
	}
	if !w.isNew(t) {
		w.stats.Pruned++
		w.recycle(t)
		return
	}
	w.keep(t)
	if w.r.stopped() {
		return
	}
	if w.r.si.Covers(t.Sat) {
		if w.r.coll.add(t) {
			w.r.noteTruncated()
			return
		}
		// With universal seed sets, larger results exist (Definition 2.8's
		// adjustment for N seed sets): results keep growing and merging.
		if !w.r.si.HasUniversal() {
			return
		}
	}
	w.recordForMerging(t)
	if !t.HasMo {
		w.pushGrows(t)
	}
	w.mergeAll(t)
}

func (w *worker) recycle(t *tree.Tree) {
	if tree.Recycle(t) {
		w.stats.Recycled++
	}
}

// recordForMerging is Algorithm 3: index the tree on this shard and, for
// Mo variants, inject copies rooted at each seed node — shipping the
// copies whose new root another worker owns.
func (w *worker) recordForMerging(t *tree.Tree) {
	w.byRoot[t.Root] = append(w.byRoot[t.Root], t)
	if !w.r.variant.Mo || w.r.uni || !w.gainedSeeds(t) {
		return
	}
	for _, n := range t.Nodes {
		if n == t.Root || !w.r.si.IsSeed(n) {
			continue
		}
		mo := tree.NewMo(t, n)
		if dest := w.r.owner(n); dest != w.id {
			w.r.pending.Add(1)
			w.r.deposit(w.id, dest, task{kind: taskMo, t: mo})
			w.shipped++
		} else {
			w.processMo(mo)
		}
		if w.r.stopped() {
			return
		}
	}
}

// processMo commits a Mo re-rooting on its owner shard (the tail of
// Algorithm 3). Mo trees bypass the edge-set history — their edge set is
// the (already claimed) parent's — and deduplicate on the rooted
// identity only, exactly as in the sequential kernel.
func (w *worker) processMo(mo *tree.Tree) {
	probeProcessMo.Hit()
	if w.r.stopped() {
		return
	}
	// Created is counted here, on the owner, whether the copy was built
	// locally or shipped — the owner is also where a rejected copy is
	// recycled, keeping per-worker live accounting consistent.
	w.created()
	if w.rootedSeen.Has(mo.RootedSig(), mo.Root, mo.Edges) {
		w.stats.Pruned++
		w.recycle(mo)
		return
	}
	w.keep(mo)
	if w.r.stopped() {
		return
	}
	w.byRoot[mo.Root] = append(w.byRoot[mo.Root], mo)
	w.mergeAll(mo)
}

// gainedSeeds is the Section 4.5 Mo-injection trigger.
func (w *worker) gainedSeeds(t *tree.Tree) bool {
	switch t.Kind {
	case tree.Init:
		return false
	case tree.Grow:
		return t.Sat.Count() > t.Left.Sat.Count()
	case tree.Merge:
		return true
	}
	return false
}

// pushGrows feeds the (t, e) pairs satisfying Grow1, Grow2, and the
// pushed-down filters to the owner of each new root: local ops join this
// worker's queue, remote ones ship through the exchange.
func (w *worker) pushGrows(t *tree.Tree) {
	if w.maxReached(t) {
		return
	}
	for _, e := range w.r.g.IncidentEdges(t.Root) {
		if w.r.allowed != nil && !w.r.allowed[w.r.g.EdgeLabelID(e)] {
			continue
		}
		other := w.r.g.Other(e, t.Root)
		if t.ContainsNode(other) {
			continue // Grow1
		}
		if w.r.si.Mask(other).Intersects(t.Sat) {
			continue // Grow2
		}
		if w.r.uni && w.r.g.Source(e) != other {
			// UNI: grow backward over the edge so the eventual root
			// reaches every seed along directed paths.
			continue
		}
		prio := w.r.priority(t, e)
		w.r.pending.Add(1)
		if dest := w.r.owner(other); dest != w.id {
			w.r.deposit(w.id, dest, task{kind: taskGrowOp, t: t, e: e, prio: prio})
			w.shipped++
		} else {
			w.seq++
			w.q.push(growOp{t: t, e: e, prio: prio, seq: w.seq})
		}
	}
	w.noteQueueLen()
}

func (w *worker) maxReached(t *tree.Tree) bool {
	return w.r.maxEdges > 0 && t.Size() >= w.r.maxEdges
}

// mergeable checks Merge1/Merge2 plus the MAX filter (see the sequential
// kernel for the Merge2 subtlety around shared seed roots).
func (w *worker) mergeable(a, b *tree.Tree) bool {
	if a.Size() == 0 || b.Size() == 0 {
		return false
	}
	if w.r.maxEdges > 0 && a.Size()+b.Size() > w.r.maxEdges {
		return false
	}
	if a.Sat.IntersectsOutside(b.Sat, w.r.si.Mask(a.Root)) {
		return false // Merge2
	}
	return tree.OverlapOnlyRoot(a, b) // Merge1
}

// mergeAll is Algorithm 5, entirely shard-local: every tree sharing t's
// root lives on this worker, so aggressive merging needs no coordination.
func (w *worker) mergeAll(t *tree.Tree) {
	partners := w.byRoot[t.Root]
	// Snapshot: processTree below may append to byRoot[t.Root]; new
	// entries merge with t from their own mergeAll.
	n := len(partners)
	for i := 0; i < n; i++ {
		if w.r.stopped() {
			return
		}
		tp := partners[i]
		if tp == t || !w.mergeable(t, tp) {
			continue
		}
		merged := tree.NewMerge(t, tp)
		w.created()
		w.processTree(merged)
	}
}
