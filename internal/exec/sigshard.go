package exec

import (
	"sync"

	"ctpquery/internal/core"
	"ctpquery/internal/graph"
)

// shardedSigSet is the concurrent entry point to signature deduplication:
// the ESP edge-set history, XOR-partitioned into 2^sigShardBits
// lock-striped core.SigSet shards. A signature's top bits pick the shard
// (XOR set signatures are uniformly mixed, so the stripes load-balance),
// and each shard's mutex serializes its single-writer SigSet — the only
// way a SigSet may be touched by more than one goroutine (see the
// contract on core.SigSet).
//
// add is an atomic claim: exactly one of any number of concurrent inserts
// of the same identity returns true, which is what makes first-past-the-
// post deduplication linearizable without a global lock.
type shardedSigSet struct {
	shards [numSigShards]sigShard
}

const (
	sigShardBits = 6
	numSigShards = 1 << sigShardBits
)

type sigShard struct {
	mu  sync.Mutex
	set *core.SigSet
	// Pad each shard to its own cache line so stripe locks don't false-
	// share under contention.
	_ [64 - 8 - 8]byte
}

func newShardedSigSet() *shardedSigSet {
	s := &shardedSigSet{}
	for i := range s.shards {
		s.shards[i].set = core.NewSigSet()
	}
	return s
}

func (s *shardedSigSet) shard(sig uint64) *sigShard {
	return &s.shards[sig>>(64-sigShardBits)]
}

// add inserts the identity, reporting whether it was absent (the caller
// claimed it).
func (s *shardedSigSet) add(sig uint64, root graph.NodeID, edges []graph.EdgeID) bool {
	sh := s.shard(sig)
	sh.mu.Lock()
	ok := sh.set.Add(sig, root, edges)
	sh.mu.Unlock()
	return ok
}

// has reports whether the identity is present.
func (s *shardedSigSet) has(sig uint64, root graph.NodeID, edges []graph.EdgeID) bool {
	sh := s.shard(sig)
	sh.mu.Lock()
	ok := sh.set.Has(sig, root, edges)
	sh.mu.Unlock()
	return ok
}
