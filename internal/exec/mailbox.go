package exec

import (
	"sync"

	"ctpquery/internal/graph"
	"ctpquery/internal/tree"
)

// taskKind tags the exchange traffic between workers.
type taskKind uint8

const (
	// taskInit carries an Init tree to its seed's owner (coordinator only).
	taskInit taskKind = iota
	// taskGrowOp routes a Grow opportunity to the owner of the edge's far
	// endpoint; the receiver queues it and constructs the tree on pop.
	taskGrowOp
	// taskGrown carries a candidate a thief already constructed back to
	// its owner for deduplication and merging.
	taskGrown
	// taskMo carries a Mo re-rooting to the new root's owner.
	taskMo
)

// task is one exchange message. For taskGrowOp, t is the parent tree and
// (e, prio) the opportunity; for the other kinds, t is the tree itself.
type task struct {
	kind taskKind
	t    *tree.Tree
	e    graph.EdgeID
	prio float64
}

// mailbox is one directed exchange channel between a worker pair. Each
// ordered pair gets its own box, so a sender only ever contends with its
// one receiver, never with other senders. Two buffers alternate: the
// sender appends to items while the receiver processes the previously
// drained slice, which it hands back as free — so at steady state the
// exchange reuses capacity instead of growing fresh slices (free is
// touched only by the box's single receiver). The struct is padded to a
// cache line to keep neighboring boxes from false sharing.
type mailbox struct {
	mu    sync.Mutex
	items []task
	free  []task
	_     [64 - 8 - 2*24]byte
}
