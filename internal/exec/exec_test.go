package exec

import (
	"sync"
	"testing"

	"ctpquery/internal/graph"
)

// The striped signature set must grant exactly one claim per identity no
// matter how many workers race on it.
func TestShardedSigSetSingleClaim(t *testing.T) {
	s := newShardedSigSet()
	const goroutines = 8
	const identities = 2000
	sets := make([][]graph.EdgeID, identities)
	sigs := make([]uint64, identities)
	for i := range sets {
		sets[i] = []graph.EdgeID{graph.EdgeID(i), graph.EdgeID(i + 1)}
		sigs[i] = uint64(i) * 0x9e3779b97f4a7c15
	}
	claims := make([][]bool, goroutines)
	var wg sync.WaitGroup
	for gi := 0; gi < goroutines; gi++ {
		gi := gi
		claims[gi] = make([]bool, identities)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range sets {
				claims[gi][i] = s.add(sigs[i], -1, sets[i])
			}
		}()
	}
	wg.Wait()
	for i := 0; i < identities; i++ {
		won := 0
		for gi := 0; gi < goroutines; gi++ {
			if claims[gi][i] {
				won++
			}
		}
		if won != 1 {
			t.Fatalf("identity %d claimed %d times, want exactly 1", i, won)
		}
		if !s.has(sigs[i], -1, sets[i]) {
			t.Fatalf("identity %d missing after claim", i)
		}
	}
}

// stealTail must keep the remaining slice a valid min-heap and take at
// most half the queue.
func TestLockedQueueStealTail(t *testing.T) {
	var q lockedQueue
	for i := 0; i < 100; i++ {
		q.push(growOp{prio: float64((i * 37) % 100), seq: uint64(i)})
	}
	stolen := q.stealTail(stealBatch)
	if len(stolen) != 50 {
		t.Fatalf("stole %d ops, want 50", len(stolen))
	}
	// Remaining pops must come out in nondecreasing (prio, seq) order.
	prev := -1.0
	for {
		op, ok := q.pop()
		if !ok {
			break
		}
		if op.prio < prev {
			t.Fatalf("heap order violated after steal: %f after %f", op.prio, prev)
		}
		prev = op.prio
	}
	// A one-element queue is never stolen empty.
	q.push(growOp{prio: 1})
	if got := q.stealTail(stealBatch); len(got) != 0 {
		t.Fatalf("stole %d from a single-op queue, want 0", len(got))
	}
}

// Worker ownership must cover every worker for a spread of node IDs, so
// shards actually balance.
func TestOwnerSpread(t *testing.T) {
	r := &run{k: 8}
	seen := make(map[int]int)
	for n := 0; n < 10000; n++ {
		o := r.owner(graph.NodeID(n))
		if o < 0 || o >= 8 {
			t.Fatalf("owner(%d) = %d out of range", n, o)
		}
		seen[o]++
	}
	for w := 0; w < 8; w++ {
		if seen[w] < 10000/8/2 {
			t.Fatalf("worker %d owns only %d of 10000 nodes — sharding is skewed", w, seen[w])
		}
	}
}
