package exec

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"ctpquery/internal/core"
	"ctpquery/internal/eql"
	"ctpquery/internal/gen"
	"ctpquery/internal/graph"
	"ctpquery/internal/tree"
)

// The equivalence property: on the paper's completeness envelope — GAM
// for any m, ESP and LESP for m = 2, MoLESP for m <= 3 — the algorithms
// are complete under ANY exploration order (Section 4.8, encoded by the
// core completeness tests), and always sound. Both the sequential kernel
// and every parallel schedule therefore report exactly the reference
// result set, so their result multisets must be identical. These tests
// assert that against the sequential kernel over random graphs, seed
// sets, filters, and worker counts; run them with -race to exercise the
// exchange, stealing, and striped-dedup machinery under the detector.

// resultMultiset canonicalizes a result set: one key per result
// (deduplicated edge set or single node), sorted.
func resultMultiset(rs *core.ResultSet) []string {
	out := make([]string, 0, len(rs.Results))
	for _, r := range rs.Results {
		out = append(out, resultKey(r.Tree))
	}
	sort.Strings(out)
	return out
}

func searchOrFatal(t *testing.T, g *graph.Graph, seeds []core.SeedSet, opts core.Options) *core.ResultSet {
	t.Helper()
	rs, _, err := core.Search(g, seeds, opts)
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

// envelope lists the (algorithm, m) pairs whose completeness holds for
// any order, making result sets schedule-independent.
var envelope = []struct {
	alg core.Algorithm
	m   int
}{
	{core.GAM, 2}, {core.GAM, 3},
	{core.ESP, 2},
	{core.LESP, 2},
	{core.MoLESP, 2}, {core.MoLESP, 3},
}

func TestParallelSequentialEquivalence(t *testing.T) {
	trials := 6
	if testing.Short() {
		trials = 2
	}
	for _, cfg := range envelope {
		cfg := cfg
		t.Run(fmt.Sprintf("%v/m=%d", cfg.alg, cfg.m), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(100*cfg.m) + int64(cfg.alg)))
			for trial := 0; trial < trials; trial++ {
				g := gen.Random(8+rng.Intn(4), 10+rng.Intn(6), []string{"a", "b"}, rng)
				seeds := core.Explicit(gen.RandomSeedSets(g, cfg.m, 2, rng)...)
				opts := core.Options{
					Algorithm: cfg.alg,
					Filters:   eql.Filters{MaxEdges: 4},
				}
				want := resultMultiset(searchOrFatal(t, g, seeds, opts))
				for _, k := range []int{2, 4, 8} {
					opts.Parallelism = k
					got := resultMultiset(searchOrFatal(t, g, seeds, opts))
					if fmt.Sprint(got) != fmt.Sprint(want) {
						t.Fatalf("trial %d, K=%d: parallel results diverge\nseq: %v\npar: %v",
							trial, k, want, got)
					}
				}
			}
		})
	}
}

// A single worker replays the sequential kernel's exploration exactly —
// same routing (every node owned by worker 0), same FIFO seq order — so
// even the provenance statistics must match, for every GAM-family
// algorithm and any m.
func TestSingleWorkerExactTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 4; trial++ {
		g := gen.Random(9, 12, []string{"a", "b", "c"}, rng)
		m := 2 + rng.Intn(3)
		seeds := core.Explicit(gen.RandomSeedSets(g, m, 2, rng)...)
		for _, alg := range core.GAMFamily() {
			opts := core.Options{Algorithm: alg, Filters: eql.Filters{MaxEdges: 5}}
			seqRS, seqST, err := core.Search(g, seeds, opts)
			if err != nil {
				t.Fatal(err)
			}
			opts.Parallelism = 1
			parRS, parST, err := core.Search(g, seeds, opts)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(resultMultiset(parRS)) != fmt.Sprint(resultMultiset(seqRS)) {
				t.Fatalf("%v trial %d: K=1 results diverge from sequential", alg, trial)
			}
			if parST.Kept() != seqST.Kept() || parST.Created != seqST.Created ||
				parST.Grows != seqST.Grows || parST.Merges != seqST.Merges {
				t.Fatalf("%v trial %d: K=1 trace diverges: kept %d/%d created %d/%d",
					alg, trial, parST.Kept(), seqST.Kept(), parST.Created, seqST.Created)
			}
		}
	}
}

// Pushed-down filters must behave identically in parallel: LABEL
// restricts the edge universe, MAX the tree size, UNI the root
// direction — all order-independent restrictions of the search space.
func TestParallelFilterEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 5; trial++ {
		g := gen.Random(10, 14, []string{"a", "b", "c"}, rng)
		seeds := core.Explicit(gen.RandomSeedSets(g, 2, 2, rng)...)
		filters := []eql.Filters{
			{MaxEdges: 3},
			{MaxEdges: 5, Labels: []string{"a", "b"}},
			{MaxEdges: 4, Uni: true},
		}
		for _, f := range filters {
			opts := core.Options{Algorithm: core.MoLESP, Filters: f}
			want := resultMultiset(searchOrFatal(t, g, seeds, opts))
			opts.Parallelism = 4
			got := resultMultiset(searchOrFatal(t, g, seeds, opts))
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("trial %d filters %+v: parallel diverges\nseq: %v\npar: %v",
					trial, f, want, got)
			}
		}
	}
}

// The paper's synthetic workloads have exactly one result on the
// completeness envelope; all worker counts must find it.
func TestParallelWorkloadsUniqueResult(t *testing.T) {
	workloads := []*gen.Workload{
		gen.Line(3, 4, gen.Alternate),
		gen.Star(5, 3, gen.Alternate),
		gen.Comb(3, 2, 2, 2, gen.Alternate),
	}
	for _, w := range workloads {
		for _, k := range []int{1, 2, 4, 8} {
			rs, st, err := core.Search(w.Graph, core.Explicit(w.Seeds...), core.Options{
				Algorithm:   core.MoLESP,
				Parallelism: k,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rs.Len() != 1 {
				t.Fatalf("%s K=%d: %d results, want 1", w.Name, k, rs.Len())
			}
			if st.Parallelism != k {
				t.Fatalf("%s: Stats.Parallelism = %d, want %d", w.Name, st.Parallelism, k)
			}
		}
	}
}

// Universal seed sets keep growing past the first covering tree
// (Definition 2.8's adjustment); the parallel runtime must reproduce the
// sequential enumeration.
func TestParallelUniversalSeedSet(t *testing.T) {
	w := gen.Line(2, 1, gen.Forward) // A - x - B: 2 edges
	a := w.Seeds[0][0]
	seeds := []core.SeedSet{{Nodes: []graph.NodeID{a}}, {Universal: true}}
	for _, k := range []int{1, 2, 4} {
		rs, _, err := core.Search(w.Graph, seeds, core.Options{Algorithm: core.MoLESP, Parallelism: k})
		if err != nil {
			t.Fatal(err)
		}
		if rs.Len() != 3 {
			t.Fatalf("K=%d: universal set gave %d results, want 3", k, rs.Len())
		}
	}
}

// LIMIT stops a parallel search at exactly the requested number of
// results (which ones is schedule-dependent, as documented).
func TestParallelLimit(t *testing.T) {
	w := gen.Chain(10) // exponentially many results
	for _, k := range []int{2, 4} {
		rs, st, err := core.Search(w.Graph, core.Explicit(w.Seeds...), core.Options{
			Algorithm:   core.MoLESP,
			Parallelism: k,
			Filters:     eql.Filters{Limit: 5},
		})
		if err != nil {
			t.Fatal(err)
		}
		if rs.Len() != 5 {
			t.Fatalf("K=%d: LIMIT 5 gave %d results", k, rs.Len())
		}
		if !st.Truncated {
			t.Fatalf("K=%d: Truncated not reported", k)
		}
	}
}

// A zero timeout must abort promptly and report TimedOut, with whatever
// partial results were found remaining valid.
func TestParallelTimeout(t *testing.T) {
	w := gen.Chain(16)
	start := time.Now()
	_, st, err := core.Search(w.Graph, core.Explicit(w.Seeds...), core.Options{
		Algorithm:   core.MoLESP,
		Parallelism: 4,
		Filters:     eql.Filters{Timeout: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !st.TimedOut {
		t.Fatal("TimedOut not reported")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("timeout took %v to take effect", time.Since(start))
	}
}

// Closing Options.Done cancels a running parallel search.
func TestParallelCancellation(t *testing.T) {
	w := gen.Chain(16)
	done := make(chan struct{})
	go func() {
		time.Sleep(2 * time.Millisecond)
		close(done)
	}()
	_, st, err := core.Search(w.Graph, core.Explicit(w.Seeds...), core.Options{
		Algorithm:   core.MoLESP,
		Parallelism: 4,
		Done:        done,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !st.TimedOut {
		t.Fatal("cancellation not reported through TimedOut")
	}
}

// MaxTrees truncates across workers via the shared kept counter.
func TestParallelMaxTrees(t *testing.T) {
	w := gen.Chain(12)
	_, st, err := core.Search(w.Graph, core.Explicit(w.Seeds...), core.Options{
		Algorithm:   core.MoLESP,
		Parallelism: 4,
		MaxTrees:    20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Truncated {
		t.Fatal("MaxTrees truncation not reported")
	}
}

// OnResult streams every deduplicated result exactly once, from whichever
// worker finds it; returning false stops the search.
func TestParallelOnResult(t *testing.T) {
	w := gen.Line(3, 4, gen.Alternate)
	var streamed []string
	rs, _, err := core.Search(w.Graph, core.Explicit(w.Seeds...), core.Options{
		Algorithm:   core.MoLESP,
		Parallelism: 4,
		OnResult: func(r core.Result) bool {
			streamed = append(streamed, resultKey(r.Tree)) // serialized by the collector
			return true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != rs.Len() {
		t.Fatalf("streamed %d results, collected %d", len(streamed), rs.Len())
	}
}

// Per-worker statistics must be reported and add up to the totals.
func TestParallelWorkerStats(t *testing.T) {
	w := gen.Star(6, 4, gen.Alternate)
	_, st, err := core.Search(w.Graph, core.Explicit(w.Seeds...), core.Options{
		Algorithm:   core.MoLESP,
		Parallelism: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Parallelism != 4 || len(st.Workers) != 4 {
		t.Fatalf("Parallelism=%d Workers=%d, want 4/4", st.Parallelism, len(st.Workers))
	}
	kept := 0
	for _, ws := range st.Workers {
		kept += ws.Kept
	}
	if kept != st.Kept() {
		t.Fatalf("sum of worker Kept %d != Stats.Kept %d", kept, st.Kept())
	}
}

// Mo re-rootings that cross shards (MoESP) must still satisfy Property 5:
// all path results found, any schedule. Line workloads make every result
// a path.
func TestParallelMoESPPathResults(t *testing.T) {
	for _, m := range []int{3, 5} {
		w := gen.Line(m, 1, gen.Alternate)
		for _, k := range []int{2, 4, 8} {
			rs, _, err := core.Search(w.Graph, core.Explicit(w.Seeds...), core.Options{
				Algorithm:   core.MoESP,
				Parallelism: k,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rs.Len() != 1 {
				t.Fatalf("MoESP m=%d K=%d: %d results, want 1 (Property 5)", m, k, rs.Len())
			}
		}
	}
}

// tree package sanity: canonical result keys are unique per identity.
func TestResultKeyDistinguishesNodesFromEdges(t *testing.T) {
	b := graph.NewBuilder()
	n0 := b.AddNode("x")
	n1 := b.AddNode("y")
	b.AddEdge(n0, "t", n1)
	init := tree.NewInit(n0, nil)
	if resultKey(init) == "" || resultKey(init)[0] != 'n' {
		t.Fatalf("single-node key %q not node-tagged", resultKey(init))
	}
}
