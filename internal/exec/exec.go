// Package exec is the parallel CTP search runtime: it evaluates the
// GAM-family algorithms (GAM, ESP, MoESP, LESP, MoLESP) across K workers
// instead of core's single-threaded priority loop.
//
// # Architecture
//
// The search space is sharded by tree root: worker owner(n) (a hash of n
// modulo K) owns every candidate tree rooted at node n. That single
// decision localizes almost all of the kernel's shared state:
//
//   - the rooted dedup history (GAM identity, LESP exemption) is keyed by
//     root, so each worker keeps a private, unsynchronized core.SigSet;
//   - TreesRootedIn — the merge index — is keyed by root, so Merge, the
//     only binary operator, always finds both operands on one worker and
//     runs without any locking;
//   - the LESP seed signatures ss_n are keyed by node and partition the
//     same way.
//
// Work flows between shards through per-pair exchange mailboxes: a Grow
// opportunity (t, e) is routed at push time to the owner of the new root,
// and Mo re-rootings ship the constructed tree to the new root's owner.
// Only two structures remain shared: the ESP edge-set history, an
// XOR-signature-partitioned array of lock-striped core.SigSet shards
// (the package's only concurrent dedup entry point), and the result
// collector, a mutex-serialized sink that orders its output
// deterministically at the end.
//
// When a worker's queue drains it steals ops from its peers' queues. A
// stolen op's tree still belongs to the victim's shard, so the thief
// performs only the schedule-free part — candidate construction
// (slice merging + signature arithmetic, the bulk of a grow's cost) —
// and ships the built candidate back to its owner for deduplication and
// merging.
//
// # Determinism and equivalence
//
// Workers race only on first-writer-wins deduplication, so the set of
// explored provenances can differ between schedules. The reported result
// multiset does not, on the paper's completeness envelope: GAM for any m,
// ESP/LESP for m = 2, and MoESP/MoLESP for m <= 3 (and for every result
// covered by Property 9) are complete under ANY exploration order
// (Section 4.8), and every kernel is sound, so any schedule — sequential
// or parallel — reports exactly the reference result set. The equivalence
// property test asserts this against the sequential kernel on random
// graphs and queries. Outside the envelope the algorithms are incomplete
// and the missed subset is schedule-dependent (as it already is between
// two sequential exploration orders). Results are returned in a canonical
// order (score desc, then size, then edge-set key), so a parallel run's
// output is deterministic given the result set; LIMIT and TOP-k trim by
// that order's race winners and are the one place parallel runs may keep
// a different (same-sized) subset than sequential runs.
package exec

import (
	"sync"
	"sync/atomic"
	"time"

	"ctpquery/internal/core"
	"ctpquery/internal/fault"
	"ctpquery/internal/graph"
	"ctpquery/internal/hash64"
	"ctpquery/internal/tree"
)

func init() { core.RegisterParallelKernel(Search) }

// Probe points compiled into the runtime's hot paths (inert unless armed
// via internal/fault). The chaos suite panics each of them in turn and
// asserts the search surfaces an error instead of deadlocking the
// pending-count termination protocol. Probes sit outside every critical
// section: a fault fired at one never unwinds past a held lock.
var (
	probeWorkerLoop   = fault.Register("exec.worker.loop")
	probeProcessOp    = fault.Register("exec.worker.process_op")
	probeProcessTree  = fault.Register("exec.worker.process_tree")
	probeProcessMo    = fault.Register("exec.worker.process_mo")
	probeDrainMail    = fault.Register("exec.worker.drain_mail")
	probeSteal        = fault.Register("exec.worker.steal")
	probeCollectorAdd = fault.Register("exec.collector.add")
)

// maxWorkers caps Options.Parallelism; beyond the hardware's core count
// extra workers only add exchange traffic.
const maxWorkers = 256

// Search evaluates the CTP across opts.Parallelism workers. It accepts
// the same contract as core.Search restricted to the GAM family; callers
// normally reach it through core.Search, which validates inputs and
// routes Parallelism > 0 here.
func Search(g *graph.Graph, seeds []core.SeedSet, opts core.Options) (*core.ResultSet, *core.Stats, error) {
	k := opts.Parallelism
	if k < 1 {
		k = 1
	}
	if k > maxWorkers {
		k = maxWorkers
	}
	start := time.Now()

	r := newRun(g, seeds, opts, k)
	if err := r.seedSafely(seeds); err != nil {
		return nil, nil, err
	}
	r.startWorkers()
	r.wg.Wait()
	if pe := r.panicErr.Load(); pe != nil {
		// A worker panicked. Its shard's state (dedup history, merge
		// index, possibly a half-built tree) is unreliable, so the whole
		// search fails with a structured error rather than reporting a
		// silently-partial result set.
		r.drainPoisoned()
		return nil, nil, pe
	}

	stats := r.assembleStats(k)
	stats.Duration = time.Since(start)
	rs := r.coll.finish()
	stats.Results = len(rs.Results)
	return rs, stats, nil
}

// run is the shared state of one parallel search.
type run struct {
	g        *graph.Graph
	si       *core.SeedIndex
	variant  core.Variant
	opts     core.Options
	k        int
	allowed  map[graph.LabelID]bool // LABEL filter; nil = all
	maxEdges int                    // MAX filter; 0 = unlimited
	uni      bool
	priority core.PriorityFunc

	workers []*worker
	mail    []mailbox // k*k per-pair exchange boxes; mail[from*k+to]
	hist    *shardedSigSet
	coll    *collector

	pending   atomic.Int64 // queued + in-flight tasks; 0 = search complete
	panicErr  atomic.Pointer[fault.PanicError]
	stop      atomic.Bool
	stopOnce  sync.Once
	stopCh    chan struct{}
	timedOut  atomic.Bool
	truncated atomic.Bool
	kept      atomic.Int64 // total kept, tracked only under MaxTrees
	wg        sync.WaitGroup
}

func newRun(g *graph.Graph, seeds []core.SeedSet, opts core.Options, k int) *run {
	r := &run{
		g:        g,
		si:       core.BuildSeedIndex(seeds),
		variant:  core.VariantOf(opts.Algorithm),
		opts:     opts,
		k:        k,
		allowed:  core.LabelAllow(g, opts.Filters.Labels),
		maxEdges: opts.Filters.MaxEdges,
		uni:      opts.Filters.Uni,
		priority: opts.Priority,
		mail:     make([]mailbox, k*k),
		hist:     newShardedSigSet(),
		stopCh:   make(chan struct{}),
	}
	if r.priority == nil {
		// Default order: smallest trees first, FIFO among equals per
		// worker — the sequential kernel's order, sharded.
		r.priority = func(t *tree.Tree, e graph.EdgeID) float64 { return float64(t.Size()) }
	}
	r.coll = newCollector(g, r.si, opts)
	r.workers = make([]*worker, k)
	for i := 0; i < k; i++ {
		r.workers[i] = newWorker(r, i)
	}
	return r
}

// owner shards nodes across workers. The hash spreads ID-adjacent nodes
// (which dense loaders create in clusters) across different shards.
func (r *run) owner(n graph.NodeID) int {
	if r.k == 1 {
		return 0
	}
	return int(hash64.Mix(uint64(uint32(n))) % uint64(r.k))
}

// seedInits builds the Init trees (one per distinct seed node, Section
// 4.9) and deposits each in its owner's mailbox before any worker starts,
// so pending is exact from the first tick.
func (r *run) seedInits(seeds []core.SeedSet) {
	inited := make(map[graph.NodeID]bool)
	for _, set := range seeds {
		if set.Universal {
			continue
		}
		for _, n := range set.Nodes {
			if inited[n] {
				continue
			}
			inited[n] = true
			t := tree.NewInit(n, r.si.Mask(n))
			r.pending.Add(1)
			r.deposit(0, r.owner(n), task{kind: taskInit, t: t})
		}
	}
}

// seedSafely runs the coordinator's seeding behind its own containment
// boundary: no worker has started yet, so a panic here (before the
// termination protocol is live) simply fails the search.
func (r *run) seedSafely(seeds []core.SeedSet) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fault.Recovered("exec: seeding", rec)
		}
	}()
	r.seedInits(seeds)
	return nil
}

// fail records the first containment error and stops the search. The
// pending count can no longer reach zero honestly (the panicking
// worker's in-flight task never retires), so failure stops the run
// directly instead of waiting on the termination protocol.
func (r *run) fail(pe *fault.PanicError) {
	r.panicErr.CompareAndSwap(nil, pe)
	r.shutdown()
}

// drainPoisoned empties every exchange mailbox and zeroes the pending
// count after a failed search. All workers have exited by now.
// Undelivered trees may be mid-mutation, so they are dropped for the GC
// rather than recycled into the pool; releasing the pending count keeps
// the termination invariant (pending == 0 after shutdown) intact for
// any observer.
func (r *run) drainPoisoned() {
	for i := range r.mail {
		mb := &r.mail[i]
		mb.mu.Lock()
		mb.items, mb.free = nil, nil
		mb.mu.Unlock()
	}
	r.pending.Store(0)
}

func (r *run) startWorkers() {
	r.wg.Add(r.k)
	for _, w := range r.workers {
		go w.loop()
	}
}

// deposit appends a task to the from->to mailbox and wakes the receiver.
// Workers never deposit to themselves (local work takes the direct path);
// the coordinator uses slot 0 for the initial seeding.
func (r *run) deposit(from, to int, tk task) {
	mb := &r.mail[from*r.k+to]
	mb.mu.Lock()
	mb.items = append(mb.items, tk)
	mb.mu.Unlock()
	w := r.workers[to]
	w.mail.Add(1)
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

// shutdown ends the search exactly once: subsequent work is skipped and
// parked workers wake to exit.
func (r *run) shutdown() {
	r.stopOnce.Do(func() {
		r.stop.Store(true)
		close(r.stopCh)
	})
}

func (r *run) stopped() bool { return r.stop.Load() }

// finishTask retires one unit of pending work; the last one ends the
// search.
func (r *run) finishTask() {
	if r.pending.Add(-1) == 0 {
		r.shutdown()
	}
}

// noteTimeout records a TIMEOUT/cancellation stop (Section 2 semantics:
// the results so far remain valid).
func (r *run) noteTimeout() {
	r.timedOut.Store(true)
	r.shutdown()
}

// noteTruncated records a LIMIT/MaxTrees/callback stop.
func (r *run) noteTruncated() {
	r.truncated.Store(true)
	r.shutdown()
}

// keepOne enforces Options.MaxTrees across workers.
func (r *run) keepOne() {
	if r.opts.MaxTrees > 0 && r.kept.Add(1) >= int64(r.opts.MaxTrees) {
		r.noteTruncated()
	}
}

// assembleStats merges the per-worker counters into one core.Stats, the
// same quantities the sequential kernel reports. PeakTrees sums the
// per-worker high-water marks (an upper bound on the instantaneous
// total); PeakQueueLen is the max over workers.
func (r *run) assembleStats(k int) *core.Stats {
	st := &core.Stats{Parallelism: k}
	for _, w := range r.workers {
		ws := &w.stats
		st.Inits += ws.Inits
		st.Grows += ws.Grows
		st.Merges += ws.Merges
		st.MoTrees += ws.MoTrees
		st.Created += ws.Created
		st.Pruned += ws.Pruned
		st.Spared += ws.Spared
		st.QueuePops += ws.QueuePops
		st.Recycled += ws.Recycled
		st.PeakTrees += ws.PeakTrees
		if ws.PeakQueueLen > st.PeakQueueLen {
			st.PeakQueueLen = ws.PeakQueueLen
		}
		st.Workers = append(st.Workers, core.WorkerStats{
			Ops:     w.ops,
			Kept:    ws.Kept(),
			Shipped: w.shipped,
			Stolen:  w.stolen,
			BusyNS:  w.busyNS,
			WallNS:  w.wallNS,
		})
	}
	st.TimedOut = r.timedOut.Load()
	st.Truncated = r.truncated.Load()
	return st
}
