// Package testutil holds the small helpers the chaos suites share.
// It may only be imported from _test.go files; keeping the helpers in
// one place stops the goroutine-leak check drifting apart between the
// exec, serve, and cluster chaos suites.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// SettleGoroutines waits for the goroutine count to drop back to the
// baseline (plus slack for runtime helpers and lingering HTTP
// keep-alives); a count that never settles means a containment boundary
// leaked workers. Capture the baseline with runtime.NumGoroutine()
// before the code under test starts anything.
func SettleGoroutines(t testing.TB, baseline, slack int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC() // nudge finalizers and park idle Ps
		n := runtime.NumGoroutine()
		if n <= baseline+slack {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d > baseline %d (+%d slack)\n%s",
				n, baseline, slack, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
