package graph

import (
	"sort"

	"ctpquery/internal/hash64"
)

// fingerprintSeed starts the fingerprint chain away from 0 so an empty
// graph does not fingerprint to the mixer's fixed point.
const fingerprintSeed = 0x9e3779b97f4a7c15

// Fingerprint returns a 64-bit digest of the graph's logical content:
// node labels and types, edges (endpoints, direction, label), and node and
// edge properties. It is computed once at Build time — the graph is
// immutable afterwards — so it identifies the graph for the lifetime of
// the process and across processes: the same build sequence, and a
// snapshot or triples round trip of it, always produce the same value.
// Query-result caches key on it (see internal/qcache); Mix is a 64-bit
// hash, so distinct graphs colliding is possible but needs ~2^32 graphs
// in one cache to become likely.
func (g *Graph) Fingerprint() uint64 { return g.fingerprint }

// computeFingerprint chains every logical component of the graph through
// the shared splitmix64 mixer. Strings are hashed by content (FNV-1a),
// never by interned LabelID, so the digest does not depend on dictionary
// interning order; per-node type sets combine by XOR, so it does not
// depend on type-ID sort order either. Property maps iterate in sorted
// key order for the same reason.
func (g *Graph) computeFingerprint() uint64 {
	h := uint64(fingerprintSeed)
	mix := func(v uint64) { h = hash64.Mix(h ^ v) }

	mix(uint64(len(g.nodeLabel)))
	mix(uint64(len(g.edges)))
	for i, l := range g.nodeLabel {
		mix(fnv64a(g.labels.String(l)))
		var ts uint64
		for _, t := range g.nodeTypes[i] {
			ts ^= hash64.Mix(fnv64a(g.labels.String(t)))
		}
		mix(ts)
	}
	for _, e := range g.edges {
		mix(uint64(uint32(e.Source)))
		mix(uint64(uint32(e.Target)))
		mix(fnv64a(g.labels.String(e.Label)))
	}
	mix(fingerprintNodeProps(g.nodeProps))
	mix(fingerprintEdgeProps(g.edgeProps))
	return h
}

func fingerprintNodeProps(props map[string]map[NodeID]string) uint64 {
	h := uint64(fingerprintSeed)
	for _, p := range sortedKeys(props) {
		h = hash64.Mix(h ^ fnv64a(p))
		m := props[p]
		ids := make([]NodeID, 0, len(m))
		for n := range m {
			ids = append(ids, n)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, n := range ids {
			h = hash64.Mix(h ^ uint64(uint32(n)))
			h = hash64.Mix(h ^ fnv64a(m[n]))
		}
	}
	return h
}

func fingerprintEdgeProps(props map[string]map[EdgeID]string) uint64 {
	h := uint64(fingerprintSeed)
	for _, p := range sortedKeys(props) {
		h = hash64.Mix(h ^ fnv64a(p))
		m := props[p]
		ids := make([]EdgeID, 0, len(m))
		for e := range m {
			ids = append(ids, e)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, e := range ids {
			h = hash64.Mix(h ^ uint64(uint32(e)))
			h = hash64.Mix(h ^ fnv64a(m[e]))
		}
	}
	return h
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// fnv64a is the 64-bit FNV-1a string hash: cheap, dependency-free, and
// stable across processes (unlike the runtime's seeded map hash).
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
