package graph

import (
	"bytes"
	"math/rand"
	"testing"
)

// Property: on randomly built graphs, the adjacency structures are
// mutually consistent — every edge appears exactly once in its source's
// Out, its target's In, and both endpoints' Incident lists (once for
// self-loops), and the label indexes cover exactly the matching elements.
func TestQuickAdjacencyConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	labels := []string{"", "x", "y", "z"}
	for trial := 0; trial < 40; trial++ {
		b := NewBuilder()
		n := 1 + rng.Intn(20)
		for i := 0; i < n; i++ {
			b.AddNode(labels[rng.Intn(len(labels))])
		}
		e := rng.Intn(40)
		for i := 0; i < e; i++ {
			b.AddEdge(NodeID(rng.Intn(n)), labels[rng.Intn(len(labels))], NodeID(rng.Intn(n)))
		}
		g := b.Build()

		outCount, inCount, adjCount := 0, 0, 0
		for i := 0; i < g.NumNodes(); i++ {
			nd := NodeID(i)
			outCount += len(g.Out(nd))
			inCount += len(g.In(nd))
			adjCount += len(g.Incident(nd))
			for _, ed := range g.Out(nd) {
				if g.Source(ed) != nd {
					t.Fatalf("trial %d: Out list wrong", trial)
				}
			}
			for _, ed := range g.In(nd) {
				if g.Target(ed) != nd {
					t.Fatalf("trial %d: In list wrong", trial)
				}
			}
		}
		if outCount != g.NumEdges() || inCount != g.NumEdges() {
			t.Fatalf("trial %d: out=%d in=%d edges=%d", trial, outCount, inCount, g.NumEdges())
		}
		selfLoops := 0
		for i := 0; i < g.NumEdges(); i++ {
			ed := g.Edge(EdgeID(i))
			if ed.Source == ed.Target {
				selfLoops++
			}
		}
		if adjCount != 2*g.NumEdges()-selfLoops {
			t.Fatalf("trial %d: adj=%d want %d", trial, adjCount, 2*g.NumEdges()-selfLoops)
		}

		// Label indexes partition elements exactly.
		nodeIdx := 0
		for _, l := range []string{"x", "y", "z"} {
			if id, ok := g.LabelIDOf(l); ok {
				nodeIdx += len(g.NodesWithLabel(id))
			}
		}
		labeled := 0
		for i := 0; i < g.NumNodes(); i++ {
			if g.NodeLabel(NodeID(i)) != "" {
				labeled++
			}
		}
		if nodeIdx != labeled {
			t.Fatalf("trial %d: node label index covers %d of %d", trial, nodeIdx, labeled)
		}
		edgeIdx := 0
		for _, l := range []string{"", "x", "y", "z"} {
			if id, ok := g.LabelIDOf(l); ok {
				edgeIdx += len(g.EdgesWithLabel(id))
			}
		}
		if edgeIdx != g.NumEdges() {
			t.Fatalf("trial %d: edge label index covers %d of %d", trial, edgeIdx, g.NumEdges())
		}
	}
}

// Property: snapshots round-trip random graphs exactly.
func TestQuickSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 25; trial++ {
		b := NewBuilder()
		n := 1 + rng.Intn(15)
		for i := 0; i < n; i++ {
			b.AddNode(string(rune('a' + rng.Intn(5))))
			if rng.Intn(3) == 0 {
				b.AddType(NodeID(i), "t"+string(rune('0'+rng.Intn(3))))
			}
		}
		for i := rng.Intn(25); i > 0; i-- {
			b.AddEdge(NodeID(rng.Intn(n)), string(rune('p'+rng.Intn(3))), NodeID(rng.Intn(n)))
		}
		g := b.Build()

		var buf bytes.Buffer
		if err := WriteSnapshot(&buf, g); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadSnapshot(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
			t.Fatalf("trial %d: size mismatch", trial)
		}
		for i := 0; i < g.NumEdges(); i++ {
			if g.Edge(EdgeID(i)) != g2.Edge(EdgeID(i)) {
				t.Fatalf("trial %d: edge %d mismatch", trial, i)
			}
		}
		for i := 0; i < g.NumNodes(); i++ {
			if g.NodeLabel(NodeID(i)) != g2.NodeLabel(NodeID(i)) {
				t.Fatalf("trial %d: node %d label mismatch", trial, i)
			}
		}
	}
}
