// Package graph implements the labeled graph data model of Definition 2.1:
// a set of nodes and directed edges, each carrying a label from a label set
// that includes the empty label. Nodes may additionally carry zero or more
// types and arbitrary string properties, covering both RDF graphs and
// property graphs at the level of detail the connection-search algorithms
// need.
//
// Graphs built through a Builder are immutable after Build; all query-time
// structures (adjacency lists, label and type indexes, degrees) are computed
// at freeze time so concurrent readers need no locking. A live, mutating
// graph is a Store (store.go): every published epoch view is again an
// immutable *Graph — a copy of the frozen base plus a frozen delta overlay
// (overlay.go) — so readers of either kind of graph share one accessor
// surface and one concurrency story.
package graph

import "fmt"

// NodeID identifies a node. IDs are dense, starting at 0.
type NodeID int32

// EdgeID identifies an edge. IDs are dense, starting at 0.
type EdgeID int32

// LabelID identifies an interned label string.
type LabelID int32

// NoLabel is the interned ID of the empty label ε, which every graph
// contains (Definition 2.1 includes the empty label in the label set).
const NoLabel LabelID = 0

// Edge is a directed, labeled edge.
type Edge struct {
	Source NodeID
	Target NodeID
	Label  LabelID
}

// Graph is an immutable labeled graph. Create one with a Builder, or obtain
// an epoch view of a live Store.
//
// Adjacency and the label/type indexes use a CSR (compressed sparse row)
// layout: one flat ID array plus one offsets array per index, frozen at
// Build time. Accessors return sub-slices of the flat arrays, so the hot
// expansion path of a connection search never allocates and scans
// contiguous memory.
//
// An epoch view of a Store additionally carries a frozen delta overlay
// (ov != nil): accessors consult the overlay's materialized per-node and
// per-label lists for nodes and labels the delta touched, and fall through
// to the base CSR arrays — copied into this struct — for everything else.
// Frozen graphs pay one nil-check per accessor for this.
type Graph struct {
	labels *Dict

	nodeLabel []LabelID
	nodeTypes [][]LabelID // sorted type IDs per node; nil when none
	edges     []Edge

	// CSR adjacency: the edges incident to node n occupy
	// adjEdges[adjOff[n]:adjOff[n+1]], ascending by edge ID; likewise for
	// the out and in directions.
	adjEdges []EdgeID
	adjOff   []int32
	outEdges []EdgeID
	outOff   []int32
	inEdges  []EdgeID
	inOff    []int32

	// Label and type indexes, CSR keyed by the dense interned LabelID:
	// nodes labeled l occupy labelNodes[labelNodeOff[l]:labelNodeOff[l+1]],
	// ascending by node ID. Unlabeled nodes (ε) are not indexed; edges are
	// indexed under every label including ε.
	labelNodes   []NodeID
	labelNodeOff []int32
	labelEdges   []EdgeID
	labelEdgeOff []int32
	typeNodes    []NodeID
	typeNodeOff  []int32

	nodeProps map[string]map[NodeID]string
	edgeProps map[string]map[EdgeID]string

	// fingerprint digests the logical content: frozen at Build time for
	// built graphs, chained per epoch for Store views; see Fingerprint
	// (fingerprint.go).
	fingerprint uint64

	// epoch is the Store epoch this view was published at; 0 for graphs
	// frozen by Build.
	epoch uint64

	// ov is the frozen delta overlay of a Store epoch view; nil for graphs
	// frozen by Build and for views whose delta is empty.
	ov *overlay
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int {
	if g.ov != nil {
		return g.ov.numNodes
	}
	return len(g.nodeLabel)
}

// NumEdges returns the size of the edge-ID space: every EdgeID in
// [0, NumEdges) may be passed to Edge and friends. On a Store epoch view
// this includes edges deleted by the delta — full ID-space scans must skip
// IDs for which EdgeAlive is false; the adjacency and label indexes never
// contain dead edges.
func (g *Graph) NumEdges() int {
	if g.ov != nil {
		return g.ov.numEdges
	}
	return len(g.edges)
}

// EdgeAlive reports whether edge e is present in this view. Always true on
// graphs frozen by Build; on a Store epoch view it is false for edges the
// delta deleted (their IDs stay valid for Edge et al. so ID-indexed
// structures keep working, but they appear in no adjacency or label list).
func (g *Graph) EdgeAlive(e EdgeID) bool {
	if g.ov == nil {
		return true
	}
	return !g.ov.dead(e)
}

// Epoch returns the Store epoch this view was published at, 0 for graphs
// frozen by Build (and for a Store's initial, unmutated view).
func (g *Graph) Epoch() uint64 { return g.epoch }

// NodeLabelID returns the interned label of node n.
func (g *Graph) NodeLabelID(n NodeID) LabelID {
	if g.ov != nil {
		if d := int(n) - g.ov.baseNodes; d >= 0 {
			return g.ov.addedLabel[d]
		}
	}
	return g.nodeLabel[n]
}

// NodeLabel returns the label string of node n.
func (g *Graph) NodeLabel(n NodeID) string { return g.labels.String(g.NodeLabelID(n)) }

// EdgeLabelID returns the interned label of edge e.
func (g *Graph) EdgeLabelID(e EdgeID) LabelID { return g.Edge(e).Label }

// EdgeLabel returns the label string of edge e.
func (g *Graph) EdgeLabel(e EdgeID) string { return g.labels.String(g.Edge(e).Label) }

// Edge returns the endpoints and label of e.
func (g *Graph) Edge(e EdgeID) Edge {
	if g.ov != nil {
		if d := int(e) - g.ov.baseEdges; d >= 0 {
			return g.ov.deltaEdges[d]
		}
	}
	return g.edges[e]
}

// Source returns the source node of e.
func (g *Graph) Source(e EdgeID) NodeID { return g.Edge(e).Source }

// Target returns the target node of e.
func (g *Graph) Target(e EdgeID) NodeID { return g.Edge(e).Target }

// Other returns the endpoint of e that is not n. It panics if n is not an
// endpoint of e; self-loops return n itself.
func (g *Graph) Other(e EdgeID, n NodeID) NodeID {
	ed := g.Edge(e)
	switch n {
	case ed.Source:
		return ed.Target
	case ed.Target:
		return ed.Source
	}
	panic(fmt.Sprintf("graph: node %d is not an endpoint of edge %d", n, e))
}

// IncidentEdges returns all edges adjacent to n, in either direction, as
// a zero-alloc sub-slice of the CSR array, ascending by edge ID. The slice
// is shared; callers must not modify it.
func (g *Graph) IncidentEdges(n NodeID) []EdgeID {
	if g.ov != nil {
		if s, ok := g.ov.adj[n]; ok {
			return s
		}
		if int(n) >= g.ov.baseNodes {
			return nil
		}
	}
	return g.adjEdges[g.adjOff[n]:g.adjOff[n+1]:g.adjOff[n+1]]
}

// OutEdges returns the edges whose source is n (zero-alloc sub-slice).
func (g *Graph) OutEdges(n NodeID) []EdgeID {
	if g.ov != nil {
		if s, ok := g.ov.out[n]; ok {
			return s
		}
		if int(n) >= g.ov.baseNodes {
			return nil
		}
	}
	return g.outEdges[g.outOff[n]:g.outOff[n+1]:g.outOff[n+1]]
}

// InEdges returns the edges whose target is n (zero-alloc sub-slice).
func (g *Graph) InEdges(n NodeID) []EdgeID {
	if g.ov != nil {
		if s, ok := g.ov.in[n]; ok {
			return s
		}
		if int(n) >= g.ov.baseNodes {
			return nil
		}
	}
	return g.inEdges[g.inOff[n]:g.inOff[n+1]:g.inOff[n+1]]
}

// Incident is an alias for IncidentEdges.
func (g *Graph) Incident(n NodeID) []EdgeID { return g.IncidentEdges(n) }

// Out is an alias for OutEdges.
func (g *Graph) Out(n NodeID) []EdgeID { return g.OutEdges(n) }

// In is an alias for InEdges.
func (g *Graph) In(n NodeID) []EdgeID { return g.InEdges(n) }

// Degree returns d_n, the number of edges adjacent to n in either
// direction. Section 4.6 uses it in the LESP pruning exemption.
func (g *Graph) Degree(n NodeID) int {
	if g.ov != nil {
		if s, ok := g.ov.adj[n]; ok {
			return len(s)
		}
		if int(n) >= g.ov.baseNodes {
			return 0
		}
	}
	return int(g.adjOff[n+1] - g.adjOff[n])
}

// Labels exposes the label dictionary.
func (g *Graph) Labels() *Dict { return g.labels }

// LabelIDOf returns the interned ID for s, if s occurs in the graph.
func (g *Graph) LabelIDOf(s string) (LabelID, bool) { return g.labels.Lookup(s) }

// NodesWithLabel returns all nodes labeled l, ascending by node ID, as a
// zero-alloc CSR sub-slice. The slice is shared. Unlabeled nodes are not
// indexed: NodesWithLabel(NoLabel) is empty.
func (g *Graph) NodesWithLabel(l LabelID) []NodeID {
	if g.ov != nil {
		if s, ok := g.ov.labelNodes[l]; ok {
			return s
		}
	}
	if l <= NoLabel || int(l) >= len(g.labelNodeOff)-1 {
		return nil
	}
	return g.labelNodes[g.labelNodeOff[l]:g.labelNodeOff[l+1]:g.labelNodeOff[l+1]]
}

// EdgesWithLabel returns all edges labeled l (including ε), ascending by
// edge ID, as a zero-alloc CSR sub-slice. The slice is shared.
func (g *Graph) EdgesWithLabel(l LabelID) []EdgeID {
	if g.ov != nil {
		if s, ok := g.ov.labelEdges[l]; ok {
			return s
		}
	}
	if l < 0 || int(l) >= len(g.labelEdgeOff)-1 {
		return nil
	}
	return g.labelEdges[g.labelEdgeOff[l]:g.labelEdgeOff[l+1]:g.labelEdgeOff[l+1]]
}

// NodesWithType returns all nodes having type t, ascending by node ID, as
// a zero-alloc CSR sub-slice. The slice is shared.
func (g *Graph) NodesWithType(t LabelID) []NodeID {
	if g.ov != nil {
		if s, ok := g.ov.typeNodes[t]; ok {
			return s
		}
	}
	if t < 0 || int(t) >= len(g.typeNodeOff)-1 {
		return nil
	}
	return g.typeNodes[g.typeNodeOff[t]:g.typeNodeOff[t+1]:g.typeNodeOff[t+1]]
}

// NodeTypes returns the sorted type IDs of n (nil when none).
func (g *Graph) NodeTypes(n NodeID) []LabelID {
	if g.ov != nil {
		if ts, ok := g.ov.nodeTypes[n]; ok {
			return ts
		}
		if int(n) >= g.ov.baseNodes {
			return nil
		}
	}
	return g.nodeTypes[n]
}

// HasType reports whether node n carries type t.
func (g *Graph) HasType(n NodeID, t LabelID) bool {
	for _, x := range g.NodeTypes(n) {
		if x == t {
			return true
		}
		if x > t {
			return false
		}
	}
	return false
}

// NodeProp returns the value of property p on node n, if set. The label
// and type pseudo-properties are not served here; use NodeLabel/NodeTypes.
// Properties are frozen at Build time — the Store write path does not
// mutate them — so delta-added nodes have none.
func (g *Graph) NodeProp(p string, n NodeID) (string, bool) {
	m := g.nodeProps[p]
	if m == nil {
		return "", false
	}
	v, ok := m[n]
	return v, ok
}

// EdgeProp returns the value of property p on edge e, if set.
func (g *Graph) EdgeProp(p string, e EdgeID) (string, bool) {
	m := g.edgeProps[p]
	if m == nil {
		return "", false
	}
	v, ok := m[e]
	return v, ok
}

// NodeByLabel returns the unique node labeled s. It is a convenience for
// tests and examples working with small graphs; it returns false when the
// label is absent or ambiguous.
func (g *Graph) NodeByLabel(s string) (NodeID, bool) {
	l, ok := g.labels.Lookup(s)
	if !ok {
		return 0, false
	}
	ns := g.NodesWithLabel(l)
	if len(ns) != 1 {
		return 0, false
	}
	return ns[0], true
}

// Nodes returns all node IDs, 0..NumNodes-1. Intended for small graphs and
// tests; large scans should iterate by index instead.
func (g *Graph) Nodes() []NodeID {
	out := make([]NodeID, g.NumNodes())
	for i := range out {
		out[i] = NodeID(i)
	}
	return out
}
