// Package graph implements the labeled graph data model of Definition 2.1:
// a set of nodes and directed edges, each carrying a label from a label set
// that includes the empty label. Nodes may additionally carry zero or more
// types and arbitrary string properties, covering both RDF graphs and
// property graphs at the level of detail the connection-search algorithms
// need.
//
// Graphs are built once through a Builder and are immutable afterwards; all
// query-time structures (adjacency lists, label and type indexes, degrees)
// are computed at freeze time so concurrent readers need no locking.
package graph

import "fmt"

// NodeID identifies a node. IDs are dense, starting at 0.
type NodeID int32

// EdgeID identifies an edge. IDs are dense, starting at 0.
type EdgeID int32

// LabelID identifies an interned label string.
type LabelID int32

// NoLabel is the interned ID of the empty label ε, which every graph
// contains (Definition 2.1 includes the empty label in the label set).
const NoLabel LabelID = 0

// Edge is a directed, labeled edge.
type Edge struct {
	Source NodeID
	Target NodeID
	Label  LabelID
}

// Graph is an immutable labeled graph. Create one with a Builder.
//
// Adjacency and the label/type indexes use a CSR (compressed sparse row)
// layout: one flat ID array plus one offsets array per index, frozen at
// Build time. Accessors return sub-slices of the flat arrays, so the hot
// expansion path of a connection search never allocates and scans
// contiguous memory.
type Graph struct {
	labels *Dict

	nodeLabel []LabelID
	nodeTypes [][]LabelID // sorted type IDs per node; nil when none
	edges     []Edge

	// CSR adjacency: the edges incident to node n occupy
	// adjEdges[adjOff[n]:adjOff[n+1]], ascending by edge ID; likewise for
	// the out and in directions.
	adjEdges []EdgeID
	adjOff   []int32
	outEdges []EdgeID
	outOff   []int32
	inEdges  []EdgeID
	inOff    []int32

	// Label and type indexes, CSR keyed by the dense interned LabelID:
	// nodes labeled l occupy labelNodes[labelNodeOff[l]:labelNodeOff[l+1]],
	// ascending by node ID. Unlabeled nodes (ε) are not indexed; edges are
	// indexed under every label including ε.
	labelNodes   []NodeID
	labelNodeOff []int32
	labelEdges   []EdgeID
	labelEdgeOff []int32
	typeNodes    []NodeID
	typeNodeOff  []int32

	nodeProps map[string]map[NodeID]string
	edgeProps map[string]map[EdgeID]string

	// fingerprint digests the logical content, frozen at Build time; see
	// Fingerprint (fingerprint.go).
	fingerprint uint64
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.nodeLabel) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// NodeLabelID returns the interned label of node n.
func (g *Graph) NodeLabelID(n NodeID) LabelID { return g.nodeLabel[n] }

// NodeLabel returns the label string of node n.
func (g *Graph) NodeLabel(n NodeID) string { return g.labels.String(g.nodeLabel[n]) }

// EdgeLabelID returns the interned label of edge e.
func (g *Graph) EdgeLabelID(e EdgeID) LabelID { return g.edges[e].Label }

// EdgeLabel returns the label string of edge e.
func (g *Graph) EdgeLabel(e EdgeID) string { return g.labels.String(g.edges[e].Label) }

// Edge returns the endpoints and label of e.
func (g *Graph) Edge(e EdgeID) Edge { return g.edges[e] }

// Source returns the source node of e.
func (g *Graph) Source(e EdgeID) NodeID { return g.edges[e].Source }

// Target returns the target node of e.
func (g *Graph) Target(e EdgeID) NodeID { return g.edges[e].Target }

// Other returns the endpoint of e that is not n. It panics if n is not an
// endpoint of e; self-loops return n itself.
func (g *Graph) Other(e EdgeID, n NodeID) NodeID {
	ed := g.edges[e]
	switch n {
	case ed.Source:
		return ed.Target
	case ed.Target:
		return ed.Source
	}
	panic(fmt.Sprintf("graph: node %d is not an endpoint of edge %d", n, e))
}

// IncidentEdges returns all edges adjacent to n, in either direction, as
// a zero-alloc sub-slice of the CSR array, ascending by edge ID. The slice
// is shared; callers must not modify it.
func (g *Graph) IncidentEdges(n NodeID) []EdgeID {
	return g.adjEdges[g.adjOff[n]:g.adjOff[n+1]:g.adjOff[n+1]]
}

// OutEdges returns the edges whose source is n (zero-alloc sub-slice).
func (g *Graph) OutEdges(n NodeID) []EdgeID {
	return g.outEdges[g.outOff[n]:g.outOff[n+1]:g.outOff[n+1]]
}

// InEdges returns the edges whose target is n (zero-alloc sub-slice).
func (g *Graph) InEdges(n NodeID) []EdgeID {
	return g.inEdges[g.inOff[n]:g.inOff[n+1]:g.inOff[n+1]]
}

// Incident is an alias for IncidentEdges.
func (g *Graph) Incident(n NodeID) []EdgeID { return g.IncidentEdges(n) }

// Out is an alias for OutEdges.
func (g *Graph) Out(n NodeID) []EdgeID { return g.OutEdges(n) }

// In is an alias for InEdges.
func (g *Graph) In(n NodeID) []EdgeID { return g.InEdges(n) }

// Degree returns d_n, the number of edges adjacent to n in either
// direction. Section 4.6 uses it in the LESP pruning exemption.
func (g *Graph) Degree(n NodeID) int { return int(g.adjOff[n+1] - g.adjOff[n]) }

// Labels exposes the label dictionary.
func (g *Graph) Labels() *Dict { return g.labels }

// LabelIDOf returns the interned ID for s, if s occurs in the graph.
func (g *Graph) LabelIDOf(s string) (LabelID, bool) { return g.labels.Lookup(s) }

// NodesWithLabel returns all nodes labeled l, ascending by node ID, as a
// zero-alloc CSR sub-slice. The slice is shared. Unlabeled nodes are not
// indexed: NodesWithLabel(NoLabel) is empty.
func (g *Graph) NodesWithLabel(l LabelID) []NodeID {
	if l <= NoLabel || int(l) >= len(g.labelNodeOff)-1 {
		return nil
	}
	return g.labelNodes[g.labelNodeOff[l]:g.labelNodeOff[l+1]:g.labelNodeOff[l+1]]
}

// EdgesWithLabel returns all edges labeled l (including ε), ascending by
// edge ID, as a zero-alloc CSR sub-slice. The slice is shared.
func (g *Graph) EdgesWithLabel(l LabelID) []EdgeID {
	if l < 0 || int(l) >= len(g.labelEdgeOff)-1 {
		return nil
	}
	return g.labelEdges[g.labelEdgeOff[l]:g.labelEdgeOff[l+1]:g.labelEdgeOff[l+1]]
}

// NodesWithType returns all nodes having type t, ascending by node ID, as
// a zero-alloc CSR sub-slice. The slice is shared.
func (g *Graph) NodesWithType(t LabelID) []NodeID {
	if t < 0 || int(t) >= len(g.typeNodeOff)-1 {
		return nil
	}
	return g.typeNodes[g.typeNodeOff[t]:g.typeNodeOff[t+1]:g.typeNodeOff[t+1]]
}

// NodeTypes returns the sorted type IDs of n (nil when none).
func (g *Graph) NodeTypes(n NodeID) []LabelID { return g.nodeTypes[n] }

// HasType reports whether node n carries type t.
func (g *Graph) HasType(n NodeID, t LabelID) bool {
	for _, x := range g.nodeTypes[n] {
		if x == t {
			return true
		}
		if x > t {
			return false
		}
	}
	return false
}

// NodeProp returns the value of property p on node n, if set. The label
// and type pseudo-properties are not served here; use NodeLabel/NodeTypes.
func (g *Graph) NodeProp(p string, n NodeID) (string, bool) {
	m := g.nodeProps[p]
	if m == nil {
		return "", false
	}
	v, ok := m[n]
	return v, ok
}

// EdgeProp returns the value of property p on edge e, if set.
func (g *Graph) EdgeProp(p string, e EdgeID) (string, bool) {
	m := g.edgeProps[p]
	if m == nil {
		return "", false
	}
	v, ok := m[e]
	return v, ok
}

// NodeByLabel returns the unique node labeled s. It is a convenience for
// tests and examples working with small graphs; it returns false when the
// label is absent or ambiguous.
func (g *Graph) NodeByLabel(s string) (NodeID, bool) {
	l, ok := g.labels.Lookup(s)
	if !ok {
		return 0, false
	}
	ns := g.NodesWithLabel(l)
	if len(ns) != 1 {
		return 0, false
	}
	return ns[0], true
}

// Nodes returns all node IDs, 0..NumNodes-1. Intended for small graphs and
// tests; large scans should iterate by index instead.
func (g *Graph) Nodes() []NodeID {
	out := make([]NodeID, g.NumNodes())
	for i := range out {
		out[i] = NodeID(i)
	}
	return out
}
