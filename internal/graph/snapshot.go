package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Binary snapshots persist a graph much faster than the triple text
// format and, unlike it, round-trip graphs with duplicate or empty node
// labels, node types, and string properties. The format is versioned and
// little-endian:
//
//	magic "CTPG" | version u32 |
//	dictionary §  | nodes §  | edges §  | node-props §  | edge-props §
//
// where each § section ends with a CRC32 (IEEE) of its payload bytes
// (version 2; version-1 snapshots, without checksums, remain readable).
// Strings are length-prefixed (u32). Corruption — a flipped bit, a
// truncated file, garbage — surfaces as a structured *SnapshotError
// naming the section and byte offset, never as a panic or a silently
// wrong graph: every ID is bounds-checked against the counts already
// read, and the checksum catches what validation cannot. The format is
// not meant for cross-version durability guarantees — it is a cache,
// not an archive.

const (
	snapshotMagic     = "CTPG"
	snapshotVersion   = 2
	snapshotVersionV1 = 1 // legacy: no section checksums
)

var crcTable = crc32.MakeTable(crc32.IEEE)

// SnapshotError is a structured snapshot decoding failure: which
// section could not be decoded and at what byte offset into the stream,
// so an operator can tell a truncated copy from a flipped disk bit.
type SnapshotError struct {
	Section string // "header", "dictionary", "nodes", "edges", "node-props", "edge-props", "decode"
	Offset  int64  // bytes consumed when the failure was detected
	Err     error
}

func (e *SnapshotError) Error() string {
	return fmt.Sprintf("graph: snapshot %s section at offset %d: %v", e.Section, e.Offset, e.Err)
}

func (e *SnapshotError) Unwrap() error { return e.Err }

// snapWriter accumulates a CRC32 over each section's payload;
// endSection emits it.
type snapWriter struct {
	bw  *bufio.Writer
	crc uint32
	err error
}

// raw writes outside the checksum (magic, version, the CRCs themselves).
func (w *snapWriter) raw(b []byte) {
	if w.err != nil {
		return
	}
	if _, err := w.bw.Write(b); err != nil {
		w.err = err
	}
}

func (w *snapWriter) write(b []byte) {
	w.crc = crc32.Update(w.crc, crcTable, b)
	w.raw(b)
}

func (w *snapWriter) u32(v uint32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	w.write(buf[:])
}

func (w *snapWriter) str(s string) {
	w.u32(uint32(len(s)))
	w.write([]byte(s))
}

func (w *snapWriter) endSection() {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], w.crc)
	w.raw(buf[:])
	w.crc = 0
}

// WriteSnapshot serializes g into w.
func WriteSnapshot(w io.Writer, g *Graph) error {
	// A live epoch view serializes its logical content: compact the
	// overlay away first so the raw-field walk below sees a plain base.
	g = g.Compact()
	sw := &snapWriter{bw: bufio.NewWriter(w)}
	sw.raw([]byte(snapshotMagic))
	var vbuf [4]byte
	binary.LittleEndian.PutUint32(vbuf[:], snapshotVersion)
	sw.raw(vbuf[:])

	// Label dictionary (index 0 is always ε; store all entries anyway so
	// IDs survive verbatim).
	sw.u32(uint32(g.labels.Len()))
	for i := 0; i < g.labels.Len(); i++ {
		sw.str(g.labels.String(LabelID(i)))
	}
	sw.endSection()

	// Nodes.
	sw.u32(uint32(g.NumNodes()))
	for _, l := range g.nodeLabel {
		sw.u32(uint32(l))
	}
	for _, ts := range g.nodeTypes {
		sw.u32(uint32(len(ts)))
		for _, t := range ts {
			sw.u32(uint32(t))
		}
	}
	sw.endSection()

	// Edges.
	sw.u32(uint32(g.NumEdges()))
	for _, e := range g.edges {
		sw.u32(uint32(e.Source))
		sw.u32(uint32(e.Label))
		sw.u32(uint32(e.Target))
	}
	sw.endSection()

	// Properties.
	sw.u32(uint32(len(g.nodeProps)))
	for p, m := range g.nodeProps {
		sw.str(p)
		sw.u32(uint32(len(m)))
		for n, v := range m {
			sw.u32(uint32(n))
			sw.str(v)
		}
	}
	sw.endSection()

	sw.u32(uint32(len(g.edgeProps)))
	for p, m := range g.edgeProps {
		sw.str(p)
		sw.u32(uint32(len(m)))
		for e, v := range m {
			sw.u32(uint32(e))
			sw.str(v)
		}
	}
	sw.endSection()

	if sw.err != nil {
		return sw.err
	}
	return sw.bw.Flush()
}

// snapReader funnels every payload read through one point that tracks
// the byte offset and the running section CRC. The CRC is computed at
// the consumption layer (not a TeeReader) because bufio's read-ahead
// would otherwise checksum bytes the decoder never reached.
type snapReader struct {
	br      *bufio.Reader
	crc     uint32
	off     int64
	err     *SnapshotError
	section string
	checked bool // version >= 2: sections end with a CRC32
}

func (r *snapReader) fail(err error) {
	if r.err == nil {
		r.err = &SnapshotError{Section: r.section, Offset: r.off, Err: err}
	}
}

func (r *snapReader) failf(format string, args ...any) {
	r.fail(fmt.Errorf(format, args...))
}

func (r *snapReader) read(b []byte) bool {
	if r.err != nil {
		return false
	}
	if _, err := io.ReadFull(r.br, b); err != nil {
		r.fail(fmt.Errorf("truncated: %w", err))
		return false
	}
	r.off += int64(len(b))
	r.crc = crc32.Update(r.crc, crcTable, b)
	return true
}

func (r *snapReader) u32() uint32 {
	var buf [4]byte
	if !r.read(buf[:]) {
		return 0
	}
	return binary.LittleEndian.Uint32(buf[:])
}

func (r *snapReader) str() string {
	n := r.u32()
	if r.err != nil {
		return ""
	}
	if n > 1<<24 {
		r.failf("implausible string length %d", n)
		return ""
	}
	b := make([]byte, n)
	if !r.read(b) {
		return ""
	}
	return string(b)
}

// endSection verifies the current section's stored checksum (version 2)
// and begins the named next one. The stored CRC itself is read outside
// the running checksum.
func (r *snapReader) endSection(next string) {
	if r.checked && r.err == nil {
		sum := r.crc
		var buf [4]byte
		if _, err := io.ReadFull(r.br, buf[:]); err != nil {
			r.fail(fmt.Errorf("truncated checksum: %w", err))
		} else {
			r.off += 4
			if got := binary.LittleEndian.Uint32(buf[:]); got != sum {
				r.failf("checksum mismatch (stored %#08x, computed %#08x): corrupted snapshot", got, sum)
			}
		}
	}
	r.crc = 0
	r.section = next
}

// ReadSnapshot deserializes a graph written by WriteSnapshot (version 2
// or the checksum-less version 1). Any failure — truncation, corruption,
// implausible counts, out-of-range IDs — returns a *SnapshotError; the
// function never panics on arbitrary input.
func ReadSnapshot(rd io.Reader) (g *Graph, err error) {
	// Backstop: any decode panic the validations below miss becomes a
	// structured error — a corrupted cache file must never take down the
	// process that tries to load it.
	defer func() {
		if rec := recover(); rec != nil {
			g, err = nil, &SnapshotError{Section: "decode", Err: fmt.Errorf("panic: %v", rec)}
		}
	}()

	r := &snapReader{br: bufio.NewReader(rd), section: "header"}
	magic := make([]byte, 4)
	if !r.read(magic) {
		return nil, r.err
	}
	if string(magic) != snapshotMagic {
		return nil, &SnapshotError{Section: "header", Err: fmt.Errorf("not a snapshot (magic %q)", magic)}
	}
	switch v := r.u32(); {
	case r.err != nil:
		return nil, r.err
	case v == snapshotVersion:
		r.checked = true
	case v == snapshotVersionV1:
		// Legacy: decode with full validation but no checksums.
	default:
		r.failf("unsupported snapshot version %d", v)
		return nil, r.err
	}
	r.crc = 0 // the header is not checksummed
	r.section = "dictionary"

	b := NewBuilder()
	nLabels := r.u32()
	if r.err == nil && nLabels > 1<<24 {
		r.failf("implausible label count %d", nLabels)
	}
	if r.err == nil && nLabels == 0 {
		r.failf("empty dictionary (ε is always present)")
	}
	for i := uint32(0); i < nLabels && r.err == nil; i++ {
		s := r.str()
		if i == 0 {
			continue // ε is pre-seeded
		}
		b.labels.Intern(s)
	}
	r.endSection("nodes")
	if r.err != nil {
		return nil, r.err
	}

	nNodes := r.u32()
	if r.err == nil && nNodes > 1<<28 {
		r.failf("implausible node count %d", nNodes)
	}
	if r.err != nil {
		return nil, r.err
	}
	labels := make([]LabelID, nNodes)
	for i := range labels {
		l := r.u32()
		if r.err != nil {
			break
		}
		if l >= nLabels {
			r.failf("node %d label %d outside dictionary [0,%d)", i, l, nLabels)
			break
		}
		labels[i] = LabelID(l)
	}
	types := make([][]LabelID, nNodes)
	for i := range types {
		if r.err != nil {
			break
		}
		k := r.u32()
		if r.err != nil {
			break
		}
		if k > nLabels {
			r.failf("node %d type count %d exceeds dictionary size %d", i, k, nLabels)
			break
		}
		if k > 0 {
			types[i] = make([]LabelID, k)
			for j := range types[i] {
				tl := r.u32()
				if r.err != nil {
					break
				}
				if tl >= nLabels {
					r.failf("node %d type label %d outside dictionary [0,%d)", i, tl, nLabels)
					break
				}
				types[i][j] = LabelID(tl)
			}
		}
	}
	r.endSection("edges")
	if r.err != nil {
		return nil, r.err
	}
	b.nodeLabel = labels
	b.nodeTypes = types

	nEdges := r.u32()
	if r.err == nil && nEdges > 1<<28 {
		r.failf("implausible edge count %d", nEdges)
	}
	for i := uint32(0); i < nEdges && r.err == nil; i++ {
		src := r.u32()
		lbl := r.u32()
		dst := r.u32()
		if r.err != nil {
			break
		}
		if src >= nNodes || dst >= nNodes {
			r.failf("edge %d endpoint (%d -> %d) outside nodes [0,%d)", i, src, dst, nNodes)
			break
		}
		if lbl >= nLabels {
			r.failf("edge %d label %d outside dictionary [0,%d)", i, lbl, nLabels)
			break
		}
		b.edges = append(b.edges, Edge{Source: NodeID(src), Target: NodeID(dst), Label: LabelID(lbl)})
	}
	r.endSection("node-props")
	if r.err != nil {
		return nil, r.err
	}

	nProps := r.u32()
	if r.err == nil && nProps > 1<<20 {
		r.failf("implausible node property count %d", nProps)
	}
	for i := uint32(0); i < nProps && r.err == nil; i++ {
		p := r.str()
		k := r.u32()
		if r.err != nil {
			break
		}
		if k > nNodes {
			r.failf("property %q has %d values for %d nodes", p, k, nNodes)
			break
		}
		for j := uint32(0); j < k && r.err == nil; j++ {
			n := r.u32()
			v := r.str()
			if r.err != nil {
				break
			}
			if n >= nNodes {
				r.failf("property %q node %d outside nodes [0,%d)", p, n, nNodes)
				break
			}
			b.SetNodeProp(NodeID(n), p, v)
		}
	}
	r.endSection("edge-props")
	if r.err != nil {
		return nil, r.err
	}

	nEProps := r.u32()
	if r.err == nil && nEProps > 1<<20 {
		r.failf("implausible edge property count %d", nEProps)
	}
	for i := uint32(0); i < nEProps && r.err == nil; i++ {
		p := r.str()
		k := r.u32()
		if r.err != nil {
			break
		}
		if k > nEdges {
			r.failf("property %q has %d values for %d edges", p, k, nEdges)
			break
		}
		for j := uint32(0); j < k && r.err == nil; j++ {
			e := r.u32()
			v := r.str()
			if r.err != nil {
				break
			}
			if e >= nEdges {
				r.failf("property %q edge %d outside edges [0,%d)", p, e, nEdges)
				break
			}
			b.SetEdgeProp(EdgeID(e), p, v)
		}
	}
	r.endSection("")
	if r.err != nil {
		return nil, r.err
	}
	return b.Build(), nil
}
