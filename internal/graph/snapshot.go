package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary snapshots persist a graph much faster than the triple text
// format and, unlike it, round-trip graphs with duplicate or empty node
// labels, node types, and string properties. The format is versioned and
// little-endian:
//
//	magic "CTPG" | version u32 | label dictionary | node labels |
//	node types | edges | node props | edge props
//
// Strings are length-prefixed (u32). The format is not meant for
// cross-version durability guarantees — it is a cache, not an archive.

const (
	snapshotMagic   = "CTPG"
	snapshotVersion = 1
)

// WriteSnapshot serializes g into w.
func WriteSnapshot(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return err
	}
	putU32 := func(v uint32) {
		var buf [4]byte
		binary.LittleEndian.PutUint32(buf[:], v)
		bw.Write(buf[:])
	}
	putStr := func(s string) {
		putU32(uint32(len(s)))
		bw.WriteString(s)
	}
	putU32(snapshotVersion)

	// Label dictionary (index 0 is always ε; store all entries anyway so
	// IDs survive verbatim).
	putU32(uint32(g.labels.Len()))
	for i := 0; i < g.labels.Len(); i++ {
		putStr(g.labels.String(LabelID(i)))
	}
	// Nodes.
	putU32(uint32(g.NumNodes()))
	for _, l := range g.nodeLabel {
		putU32(uint32(l))
	}
	for _, ts := range g.nodeTypes {
		putU32(uint32(len(ts)))
		for _, t := range ts {
			putU32(uint32(t))
		}
	}
	// Edges.
	putU32(uint32(g.NumEdges()))
	for _, e := range g.edges {
		putU32(uint32(e.Source))
		putU32(uint32(e.Label))
		putU32(uint32(e.Target))
	}
	// Properties.
	putU32(uint32(len(g.nodeProps)))
	for p, m := range g.nodeProps {
		putStr(p)
		putU32(uint32(len(m)))
		for n, v := range m {
			putU32(uint32(n))
			putStr(v)
		}
	}
	putU32(uint32(len(g.edgeProps)))
	for p, m := range g.edgeProps {
		putStr(p)
		putU32(uint32(len(m)))
		for e, v := range m {
			putU32(uint32(e))
			putStr(v)
		}
	}
	return bw.Flush()
}

// ReadSnapshot deserializes a graph written by WriteSnapshot.
func ReadSnapshot(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("graph: snapshot header: %w", err)
	}
	if string(magic) != snapshotMagic {
		return nil, fmt.Errorf("graph: not a snapshot (magic %q)", magic)
	}
	var readErr error
	getU32 := func() uint32 {
		if readErr != nil {
			return 0
		}
		var buf [4]byte
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			readErr = err
			return 0
		}
		return binary.LittleEndian.Uint32(buf[:])
	}
	getStr := func() string {
		n := getU32()
		if readErr != nil {
			return ""
		}
		if n > 1<<24 {
			readErr = fmt.Errorf("graph: implausible string length %d", n)
			return ""
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			readErr = err
			return ""
		}
		return string(b)
	}
	if v := getU32(); v != snapshotVersion {
		if readErr == nil {
			readErr = fmt.Errorf("graph: unsupported snapshot version %d", v)
		}
		return nil, readErr
	}

	b := NewBuilder()
	nLabels := getU32()
	for i := uint32(0); i < nLabels && readErr == nil; i++ {
		s := getStr()
		if i == 0 {
			continue // ε is pre-seeded
		}
		b.labels.Intern(s)
	}
	nNodes := getU32()
	if readErr == nil && nNodes > 1<<28 {
		return nil, fmt.Errorf("graph: implausible node count %d", nNodes)
	}
	labels := make([]LabelID, nNodes)
	for i := range labels {
		labels[i] = LabelID(getU32())
	}
	types := make([][]LabelID, nNodes)
	for i := range types {
		k := getU32()
		if readErr != nil {
			break
		}
		if k > 0 {
			types[i] = make([]LabelID, k)
			for j := range types[i] {
				types[i][j] = LabelID(getU32())
			}
		}
	}
	if readErr != nil {
		return nil, fmt.Errorf("graph: snapshot nodes: %w", readErr)
	}
	b.nodeLabel = labels
	b.nodeTypes = types

	nEdges := getU32()
	if readErr == nil && nEdges > 1<<28 {
		return nil, fmt.Errorf("graph: implausible edge count %d", nEdges)
	}
	for i := uint32(0); i < nEdges && readErr == nil; i++ {
		src := NodeID(getU32())
		lbl := LabelID(getU32())
		dst := NodeID(getU32())
		if readErr == nil {
			if int(src) >= len(labels) || int(dst) >= len(labels) {
				return nil, fmt.Errorf("graph: snapshot edge %d out of range", i)
			}
			b.edges = append(b.edges, Edge{Source: src, Target: dst, Label: lbl})
		}
	}
	nProps := getU32()
	for i := uint32(0); i < nProps && readErr == nil; i++ {
		p := getStr()
		k := getU32()
		for j := uint32(0); j < k && readErr == nil; j++ {
			n := NodeID(getU32())
			v := getStr()
			if readErr == nil {
				b.SetNodeProp(n, p, v)
			}
		}
	}
	nEProps := getU32()
	for i := uint32(0); i < nEProps && readErr == nil; i++ {
		p := getStr()
		k := getU32()
		for j := uint32(0); j < k && readErr == nil; j++ {
			e := EdgeID(getU32())
			v := getStr()
			if readErr == nil {
				b.SetEdgeProp(e, p, v)
			}
		}
	}
	if readErr != nil {
		return nil, fmt.Errorf("graph: snapshot body: %w", readErr)
	}
	return b.Build(), nil
}
