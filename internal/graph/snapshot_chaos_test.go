package graph

import (
	"bytes"
	"errors"
	"testing"
)

// TestChaosSnapshotEveryByteCorruption flips every single byte of a
// valid snapshot in turn and asserts each corrupted copy is rejected
// with a structured *SnapshotError — the per-section CRC32 guarantees no
// single-byte corruption can load as a silently wrong graph, and the
// bounds validation plus recover backstop guarantee none can panic.
func TestChaosSnapshotEveryByteCorruption(t *testing.T) {
	g := snapshotFixture(t)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, g); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	if _, err := ReadSnapshot(bytes.NewReader(valid)); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}
	for i := range valid {
		corrupted := append([]byte(nil), valid...)
		corrupted[i] ^= 0xA5
		_, err := ReadSnapshot(bytes.NewReader(corrupted))
		if err == nil {
			t.Fatalf("corruption at byte %d/%d accepted", i, len(valid))
		}
		var se *SnapshotError
		if !errors.As(err, &se) {
			t.Fatalf("corruption at byte %d: unstructured error %v", i, err)
		}
		if se.Section == "" {
			t.Fatalf("corruption at byte %d: error names no section: %v", i, err)
		}
	}
}

// TestChaosSnapshotEveryTruncation cuts the snapshot at every length and
// asserts each prefix errors (structured) instead of panicking or
// half-loading.
func TestChaosSnapshotEveryTruncation(t *testing.T) {
	g := snapshotFixture(t)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, g); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	for cut := 0; cut < len(valid); cut++ {
		_, err := ReadSnapshot(bytes.NewReader(valid[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(valid))
		}
		var se *SnapshotError
		if !errors.As(err, &se) {
			t.Fatalf("truncation at %d: unstructured error %v", cut, err)
		}
	}
}

// writeSnapshotV1 emits the legacy checksum-less version-1 layout, which
// ReadSnapshot must keep accepting.
func writeSnapshotV1(buf *bytes.Buffer, g *Graph) {
	buf.WriteString("CTPG")
	u32 := func(v uint32) { buf.Write([]byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)}) }
	str := func(s string) { u32(uint32(len(s))); buf.WriteString(s) }
	u32(1) // version
	u32(uint32(g.labels.Len()))
	for i := 0; i < g.labels.Len(); i++ {
		str(g.labels.String(LabelID(i)))
	}
	u32(uint32(g.NumNodes()))
	for _, l := range g.nodeLabel {
		u32(uint32(l))
	}
	for _, ts := range g.nodeTypes {
		u32(uint32(len(ts)))
		for _, tl := range ts {
			u32(uint32(tl))
		}
	}
	u32(uint32(g.NumEdges()))
	for _, e := range g.edges {
		u32(uint32(e.Source))
		u32(uint32(e.Label))
		u32(uint32(e.Target))
	}
	u32(uint32(len(g.nodeProps)))
	for p, m := range g.nodeProps {
		str(p)
		u32(uint32(len(m)))
		for n, v := range m {
			u32(uint32(n))
			str(v)
		}
	}
	u32(uint32(len(g.edgeProps)))
	for p, m := range g.edgeProps {
		str(p)
		u32(uint32(len(m)))
		for e, v := range m {
			u32(uint32(e))
			str(v)
		}
	}
}

func TestSnapshotReadsLegacyV1(t *testing.T) {
	g := snapshotFixture(t)
	var buf bytes.Buffer
	writeSnapshotV1(&buf, g)
	got, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("legacy v1 snapshot rejected: %v", err)
	}
	if got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("v1 decode: %d nodes %d edges, want %d/%d",
			got.NumNodes(), got.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	if got.Fingerprint() != g.Fingerprint() {
		t.Fatal("v1 decode changed the graph fingerprint")
	}
}
