package graph

// overlay is the frozen per-epoch delta a Store attaches to a published
// view. Everything in it is immutable after freeze: the materialized lists
// replace — never extend in place — the base CSR sub-slices for exactly
// the nodes and labels the delta touched, so the accessor fast path for
// untouched entities is still one map miss plus the base sub-slice.
//
// Invariants, relied on by the accessors in graph.go:
//   - deltaEdges occupy edge IDs [baseEdges, numEdges); their slots are
//     never reused, deleted delta edges keep their Edge value (EdgeAlive
//     reports them dead).
//   - Every materialized edge list (adj/out/in/labelEdges) is ascending by
//     edge ID and contains no dead edges. Because delta IDs are all larger
//     than base IDs, "filtered base prefix ++ delta suffix" preserves the
//     ascending order the kernels' merge-joins rely on.
//   - adj/out/in have an entry for every node whose edge set differs from
//     the base — endpoints of live delta edges and of deleted base edges.
//     A node absent from the maps either is an added node with no edges
//     (ID >= baseNodes) or serves the base sub-slice unchanged.
//   - labelNodes/labelEdges/typeNodes mirror that per label: an entry
//     exists iff the delta changed that label's membership.
//   - nodeTypes has the full, sorted type list for every node whose types
//     the delta extended (including added nodes with types).
type overlay struct {
	baseNodes int // nodes in the base CSR arrays
	baseEdges int // edge-ID space of the base (delta IDs start here)
	numNodes  int
	numEdges  int

	addedLabel []LabelID // labels of added nodes, indexed by NodeID - baseNodes
	deltaEdges []Edge    // indexed by EdgeID - baseEdges

	// deadBits marks deleted edges over the full [0, numEdges) ID space;
	// nil when the delta deleted nothing.
	deadBits []uint64

	adj map[NodeID][]EdgeID
	out map[NodeID][]EdgeID
	in  map[NodeID][]EdgeID

	labelNodes map[LabelID][]NodeID
	labelEdges map[LabelID][]EdgeID
	typeNodes  map[LabelID][]NodeID
	nodeTypes  map[NodeID][]LabelID
}

func (ov *overlay) dead(e EdgeID) bool {
	if ov.deadBits == nil {
		return false
	}
	return ov.deadBits[uint(e)>>6]&(1<<(uint(e)&63)) != 0
}

func (ov *overlay) markDead(e EdgeID) {
	ov.deadBits[uint(e)>>6] |= 1 << (uint(e) & 63)
}
