package graph

import (
	"strings"
	"testing"
)

// buildSample builds the running example of the paper's Figure 1: twelve
// nodes (companies, entrepreneurs, politicians, countries, a literal) and
// nineteen labeled edges.
func buildSample(t *testing.T) (*Graph, map[string]NodeID) {
	t.Helper()
	b := NewBuilder()
	names := []struct {
		label, typ string
	}{
		{"OrgB", "company"}, {"Bob", "entrepreneur"}, {"Alice", "entrepreneur"},
		{"Carole", "entrepreneur"}, {"OrgA", "company"}, {"Doug", "entrepreneur"},
		{"OrgC", "company"}, {"France", "country"}, {"Elon", "politician"},
		{"USA", "country"}, {"National Liberal Party", ""}, {"Falcon", "politician"},
	}
	ids := make(map[string]NodeID)
	for _, n := range names {
		id := b.AddNode(n.label)
		if n.typ != "" {
			b.AddType(id, n.typ)
		}
		ids[n.label] = id
	}
	edges := []struct{ s, l, d string }{
		{"Bob", "founded", "OrgB"},
		{"OrgB", "investsIn", "OrgA"},
		{"Bob", "parentOf", "Alice"},
		{"OrgA", "locatedIn", "France"},
		{"Alice", "citizenOf", "France"},
		{"Carole", "citizenOf", "USA"},
		{"Carole", "founded", "OrgA"},
		{"Doug", "CEO", "OrgA"},
		{"Doug", "investsIn", "OrgC"},
		{"Carole", "founded", "OrgC"},
		{"Elon", "parentOf", "Doug"},
		{"Doug", "citizenOf", "France"},
		{"Elon", "citizenOf", "France"},
		{"Bob", "citizenOf", "USA"},
		{"OrgC", "locatedIn", "USA"},
		{"Elon", "affiliation", "National Liberal Party"},
		{"OrgA", "funds", "National Liberal Party"},
		{"Falcon", "affiliation", "National Liberal Party"},
		{"Falcon", "investsIn", "OrgC"},
	}
	for _, e := range edges {
		b.AddEdge(ids[e.s], e.l, ids[e.d])
	}
	return b.Build(), ids
}

func TestBuildSampleCounts(t *testing.T) {
	g, _ := buildSample(t)
	if g.NumNodes() != 12 {
		t.Fatalf("nodes = %d, want 12", g.NumNodes())
	}
	if g.NumEdges() != 19 {
		t.Fatalf("edges = %d, want 19", g.NumEdges())
	}
}

func TestAdjacencyConsistency(t *testing.T) {
	g, ids := buildSample(t)
	// Sum of out+in degrees equals 2*|E| (no self loops in the sample).
	total := 0
	for i := 0; i < g.NumNodes(); i++ {
		n := NodeID(i)
		total += g.Degree(n)
		if len(g.Out(n))+len(g.In(n)) != g.Degree(n) {
			t.Fatalf("node %d: out+in != degree", n)
		}
		for _, e := range g.Out(n) {
			if g.Source(e) != n {
				t.Fatalf("Out(%d) contains edge %d with source %d", n, e, g.Source(e))
			}
		}
		for _, e := range g.In(n) {
			if g.Target(e) != n {
				t.Fatalf("In(%d) contains edge %d with target %d", n, e, g.Target(e))
			}
		}
		for _, e := range g.Incident(n) {
			if g.Source(e) != n && g.Target(e) != n {
				t.Fatalf("Incident(%d) contains unrelated edge %d", n, e)
			}
		}
	}
	if total != 2*g.NumEdges() {
		t.Fatalf("degree sum = %d, want %d", total, 2*g.NumEdges())
	}
	if g.Degree(ids["OrgA"]) != 5 {
		t.Fatalf("OrgA degree = %d, want 5", g.Degree(ids["OrgA"]))
	}
}

func TestOther(t *testing.T) {
	g, ids := buildSample(t)
	e := g.Out(ids["Bob"])[0]
	if g.Other(e, ids["Bob"]) != g.Target(e) {
		t.Fatal("Other from source should return target")
	}
	if g.Other(e, g.Target(e)) != ids["Bob"] {
		t.Fatal("Other from target should return source")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Other with non-endpoint should panic")
		}
	}()
	g.Other(e, ids["Falcon"])
}

func TestLabelIndexes(t *testing.T) {
	g, ids := buildSample(t)
	l, ok := g.LabelIDOf("citizenOf")
	if !ok {
		t.Fatal("citizenOf not interned")
	}
	if got := len(g.EdgesWithLabel(l)); got != 5 {
		t.Fatalf("citizenOf edges = %d, want 5", got)
	}
	nl, ok := g.LabelIDOf("Alice")
	if !ok {
		t.Fatal("Alice not interned")
	}
	ns := g.NodesWithLabel(nl)
	if len(ns) != 1 || ns[0] != ids["Alice"] {
		t.Fatalf("NodesWithLabel(Alice) = %v", ns)
	}
	if n, ok := g.NodeByLabel("Alice"); !ok || n != ids["Alice"] {
		t.Fatal("NodeByLabel(Alice) failed")
	}
	if _, ok := g.NodeByLabel("Zorro"); ok {
		t.Fatal("NodeByLabel should fail for absent label")
	}
}

func TestTypes(t *testing.T) {
	g, ids := buildSample(t)
	tc, ok := g.LabelIDOf("entrepreneur")
	if !ok {
		t.Fatal("type entrepreneur not interned")
	}
	if got := len(g.NodesWithType(tc)); got != 4 {
		t.Fatalf("entrepreneurs = %d, want 4", got)
	}
	if !g.HasType(ids["Alice"], tc) {
		t.Fatal("Alice should be an entrepreneur")
	}
	if g.HasType(ids["USA"], tc) {
		t.Fatal("USA should not be an entrepreneur")
	}
}

func TestDuplicateTypeIgnored(t *testing.T) {
	b := NewBuilder()
	n := b.AddNode("x")
	b.AddType(n, "t")
	b.AddType(n, "t")
	g := b.Build()
	if len(g.NodeTypes(n)) != 1 {
		t.Fatalf("types = %v, want single entry", g.NodeTypes(n))
	}
}

func TestProps(t *testing.T) {
	b := NewBuilder()
	n := b.AddNode("x")
	m := b.AddNode("y")
	e := b.AddEdge(n, "knows", m)
	b.SetNodeProp(n, "age", "42")
	b.SetEdgeProp(e, "since", "2001")
	g := b.Build()
	if v, ok := g.NodeProp("age", n); !ok || v != "42" {
		t.Fatalf("NodeProp = %q,%v", v, ok)
	}
	if _, ok := g.NodeProp("age", m); ok {
		t.Fatal("m has no age")
	}
	if _, ok := g.NodeProp("height", n); ok {
		t.Fatal("no height property exists")
	}
	if v, ok := g.EdgeProp("since", e); !ok || v != "2001" {
		t.Fatalf("EdgeProp = %q,%v", v, ok)
	}
}

func TestAddEdgeOutOfRangePanics(t *testing.T) {
	b := NewBuilder()
	n := b.AddNode("x")
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for out-of-range endpoint")
		}
	}()
	b.AddEdge(n, "l", n+5)
}

func TestBuildTwicePanics(t *testing.T) {
	b := NewBuilder()
	b.AddNode("x")
	b.Build()
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on second Build")
		}
	}()
	b.Build()
}

func TestSelfLoopAdjacency(t *testing.T) {
	b := NewBuilder()
	n := b.AddNode("x")
	b.AddEdge(n, "self", n)
	g := b.Build()
	if g.Degree(n) != 1 {
		t.Fatalf("self-loop degree = %d, want 1 (listed once)", g.Degree(n))
	}
	e := g.Incident(n)[0]
	if g.Other(e, n) != n {
		t.Fatal("Other on self-loop should return the node itself")
	}
}

func TestAddNodesBulk(t *testing.T) {
	b := NewBuilder()
	first := b.AddNodes(5)
	if first != 0 || b.NumNodes() != 5 {
		t.Fatalf("AddNodes: first=%d count=%d", first, b.NumNodes())
	}
	b.SetNodeLabel(first+2, "mid")
	g := b.Build()
	if g.NodeLabel(2) != "mid" {
		t.Fatal("SetNodeLabel lost")
	}
	if g.NodeLabel(0) != "" {
		t.Fatal("bulk nodes should have empty label")
	}
}

func TestTripleRoundTrip(t *testing.T) {
	g, _ := buildSample(t)
	var sb strings.Builder
	if err := WriteTriples(&sb, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadTriples(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip: %d/%d nodes, %d/%d edges",
			g2.NumNodes(), g.NumNodes(), g2.NumEdges(), g.NumEdges())
	}
	// The quoted label must survive.
	if _, ok := g2.NodeByLabel("National Liberal Party"); !ok {
		t.Fatal("quoted label lost in round trip")
	}
	// Types must survive.
	tc, _ := g2.LabelIDOf("entrepreneur")
	if len(g2.NodesWithType(tc)) != 4 {
		t.Fatal("types lost in round trip")
	}
}

func TestLoadTriplesErrors(t *testing.T) {
	cases := []string{
		"a b\n",            // two fields
		"a b c d\n",        // four fields
		"a \"unclosed c\n", // unterminated quote
	}
	for _, c := range cases {
		if _, err := LoadTriples(strings.NewReader(c)); err == nil {
			t.Fatalf("LoadTriples(%q) should fail", c)
		}
	}
}

func TestLoadTriplesCommentsAndTypes(t *testing.T) {
	in := `
# a comment
alice type person
alice knows bob
bob a person
`
	g, err := LoadTriples(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d, want 1 (type lines are not edges)", g.NumEdges())
	}
	p, ok := g.LabelIDOf("person")
	if !ok || len(g.NodesWithType(p)) != 2 {
		t.Fatal("type declarations not applied")
	}
}

func TestWriteTriplesRejectsDuplicates(t *testing.T) {
	b := NewBuilder()
	b.AddNode("x")
	b.AddNode("x")
	g := b.Build()
	if err := WriteTriples(&strings.Builder{}, g); err == nil {
		t.Fatal("duplicate labels should not serialize")
	}
}

func TestComputeStats(t *testing.T) {
	g, _ := buildSample(t)
	s := ComputeStats(g)
	if s.Nodes != 12 || s.Edges != 19 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Components != 1 {
		t.Fatalf("sample graph should be connected, got %d components", s.Components)
	}
	if s.LargestComp != 12 {
		t.Fatalf("largest component = %d, want 12", s.LargestComp)
	}
	if s.MaxDegree < 4 {
		t.Fatalf("max degree = %d, want >= 4", s.MaxDegree)
	}
	if s.String() == "" || DegreeHistogram(g, 4) == "" {
		t.Fatal("stats renderers returned empty strings")
	}
}

func TestStatsDisconnected(t *testing.T) {
	b := NewBuilder()
	b.AddNode("a")
	b.AddNode("b")
	c := b.AddNode("c")
	d := b.AddNode("d")
	b.AddEdge(c, "l", d)
	s := ComputeStats(b.Build())
	if s.Components != 3 {
		t.Fatalf("components = %d, want 3", s.Components)
	}
	if s.LargestComp != 2 {
		t.Fatalf("largest = %d, want 2", s.LargestComp)
	}
}
