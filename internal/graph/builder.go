package graph

import (
	"fmt"
	"sort"
)

// Builder assembles a Graph. It is not safe for concurrent use. After
// Build, the builder must not be reused.
type Builder struct {
	labels    *Dict
	nodeLabel []LabelID
	nodeTypes [][]LabelID
	edges     []Edge
	nodeProps map[string]map[NodeID]string
	edgeProps map[string]map[EdgeID]string
	built     bool
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{
		labels:    NewDict(),
		nodeProps: make(map[string]map[NodeID]string),
		edgeProps: make(map[string]map[EdgeID]string),
	}
}

// AddNode adds a node with the given label and returns its ID. Labels need
// not be unique; use the returned ID to reference the node.
func (b *Builder) AddNode(label string) NodeID {
	id := NodeID(len(b.nodeLabel))
	b.nodeLabel = append(b.nodeLabel, b.labels.Intern(label))
	b.nodeTypes = append(b.nodeTypes, nil)
	return id
}

// AddNodes adds n unlabeled nodes and returns the ID of the first.
func (b *Builder) AddNodes(n int) NodeID {
	first := NodeID(len(b.nodeLabel))
	for i := 0; i < n; i++ {
		b.nodeLabel = append(b.nodeLabel, NoLabel)
		b.nodeTypes = append(b.nodeTypes, nil)
	}
	return first
}

// SetNodeLabel replaces the label of an existing node.
func (b *Builder) SetNodeLabel(n NodeID, label string) {
	b.nodeLabel[n] = b.labels.Intern(label)
}

// AddType attaches a type to node n. Duplicate types are ignored.
func (b *Builder) AddType(n NodeID, typ string) {
	id := b.labels.Intern(typ)
	for _, t := range b.nodeTypes[n] {
		if t == id {
			return
		}
	}
	b.nodeTypes[n] = append(b.nodeTypes[n], id)
}

// AddEdge adds a directed edge src --label--> dst and returns its ID.
func (b *Builder) AddEdge(src NodeID, label string, dst NodeID) EdgeID {
	if int(src) >= len(b.nodeLabel) || int(dst) >= len(b.nodeLabel) || src < 0 || dst < 0 {
		panic(fmt.Sprintf("graph: AddEdge endpoint out of range (%d -> %d, have %d nodes)",
			src, dst, len(b.nodeLabel)))
	}
	id := EdgeID(len(b.edges))
	b.edges = append(b.edges, Edge{Source: src, Target: dst, Label: b.labels.Intern(label)})
	return id
}

// SetNodeProp sets string property p of node n.
func (b *Builder) SetNodeProp(n NodeID, p, v string) {
	m := b.nodeProps[p]
	if m == nil {
		m = make(map[NodeID]string)
		b.nodeProps[p] = m
	}
	m[n] = v
}

// SetEdgeProp sets string property p of edge e.
func (b *Builder) SetEdgeProp(e EdgeID, p, v string) {
	m := b.edgeProps[p]
	if m == nil {
		m = make(map[EdgeID]string)
		b.edgeProps[p] = m
	}
	m[e] = v
}

// NumNodes returns the number of nodes added so far.
func (b *Builder) NumNodes() int { return len(b.nodeLabel) }

// NumEdges returns the number of edges added so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// Build freezes the builder into an immutable Graph, computing the CSR
// adjacency arrays and label/type indexes with one counting sort each.
// The builder must not be used afterwards.
func (b *Builder) Build() *Graph {
	if b.built {
		panic("graph: Build called twice on the same Builder")
	}
	b.built = true

	g := &Graph{
		labels:    b.labels,
		nodeLabel: b.nodeLabel,
		nodeTypes: b.nodeTypes,
		edges:     b.edges,
		nodeProps: b.nodeProps,
		edgeProps: b.edgeProps,
	}

	// Sort node type lists so HasType can early-exit.
	for i := range g.nodeTypes {
		ts := g.nodeTypes[i]
		sort.Slice(ts, func(a, b int) bool { return ts[a] < ts[b] })
	}

	freezeIndexes(g)
	g.fingerprint = g.computeFingerprint()
	return g
}

// freezeIndexes computes the CSR adjacency arrays and label/type indexes
// from g's nodeLabel/nodeTypes/edges/labels fields — the freeze step shared
// by Builder.Build and the Store's compaction rebuild.
func freezeIndexes(g *Graph) {
	n := len(g.nodeLabel)

	// CSR adjacency: count degrees, prefix-sum into offsets, then fill in
	// edge-ID order so every per-node run is ascending.
	g.outOff = make([]int32, n+1)
	g.inOff = make([]int32, n+1)
	g.adjOff = make([]int32, n+1)
	for _, e := range g.edges {
		g.outOff[e.Source+1]++
		g.inOff[e.Target+1]++
		g.adjOff[e.Source+1]++
		if e.Target != e.Source {
			g.adjOff[e.Target+1]++
		}
	}
	prefixSum(g.outOff)
	prefixSum(g.inOff)
	prefixSum(g.adjOff)
	g.outEdges = make([]EdgeID, g.outOff[n])
	g.inEdges = make([]EdgeID, g.inOff[n])
	g.adjEdges = make([]EdgeID, g.adjOff[n])
	outCur := cursors(g.outOff)
	inCur := cursors(g.inOff)
	adjCur := cursors(g.adjOff)
	for i, e := range g.edges {
		id := EdgeID(i)
		g.outEdges[outCur[e.Source]] = id
		outCur[e.Source]++
		g.inEdges[inCur[e.Target]] = id
		inCur[e.Target]++
		g.adjEdges[adjCur[e.Source]] = id
		adjCur[e.Source]++
		if e.Target != e.Source {
			g.adjEdges[adjCur[e.Target]] = id
			adjCur[e.Target]++
		}
	}

	// Label and type indexes, CSR keyed by the dense LabelID. Unlabeled
	// nodes are not indexed; edges are indexed under every label.
	nLabels := g.labels.Len()
	g.labelNodeOff = make([]int32, nLabels+1)
	for _, l := range g.nodeLabel {
		if l != NoLabel {
			g.labelNodeOff[l+1]++
		}
	}
	prefixSum(g.labelNodeOff)
	g.labelNodes = make([]NodeID, g.labelNodeOff[nLabels])
	lnCur := cursors(g.labelNodeOff)
	for i, l := range g.nodeLabel {
		if l != NoLabel {
			g.labelNodes[lnCur[l]] = NodeID(i)
			lnCur[l]++
		}
	}

	g.labelEdgeOff = make([]int32, nLabels+1)
	for _, e := range g.edges {
		g.labelEdgeOff[e.Label+1]++
	}
	prefixSum(g.labelEdgeOff)
	g.labelEdges = make([]EdgeID, g.labelEdgeOff[nLabels])
	leCur := cursors(g.labelEdgeOff)
	for i, e := range g.edges {
		g.labelEdges[leCur[e.Label]] = EdgeID(i)
		leCur[e.Label]++
	}

	g.typeNodeOff = make([]int32, nLabels+1)
	for _, ts := range g.nodeTypes {
		for _, t := range ts {
			g.typeNodeOff[t+1]++
		}
	}
	prefixSum(g.typeNodeOff)
	g.typeNodes = make([]NodeID, g.typeNodeOff[nLabels])
	tnCur := cursors(g.typeNodeOff)
	for i, ts := range g.nodeTypes {
		for _, t := range ts {
			g.typeNodes[tnCur[t]] = NodeID(i)
			tnCur[t]++
		}
	}
}

// prefixSum turns per-bucket counts (stored at index i+1) into CSR
// offsets in place.
func prefixSum(off []int32) {
	for i := 1; i < len(off); i++ {
		off[i] += off[i-1]
	}
}

// cursors returns a mutable copy of the offsets to use as fill positions.
func cursors(off []int32) []int32 {
	cur := make([]int32, len(off)-1)
	copy(cur, off[:len(off)-1])
	return cur
}
