package graph

import (
	"fmt"
	"sort"
)

// Builder assembles a Graph. It is not safe for concurrent use. After
// Build, the builder must not be reused.
type Builder struct {
	labels    *Dict
	nodeLabel []LabelID
	nodeTypes [][]LabelID
	edges     []Edge
	nodeProps map[string]map[NodeID]string
	edgeProps map[string]map[EdgeID]string
	built     bool
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{
		labels:    NewDict(),
		nodeProps: make(map[string]map[NodeID]string),
		edgeProps: make(map[string]map[EdgeID]string),
	}
}

// AddNode adds a node with the given label and returns its ID. Labels need
// not be unique; use the returned ID to reference the node.
func (b *Builder) AddNode(label string) NodeID {
	id := NodeID(len(b.nodeLabel))
	b.nodeLabel = append(b.nodeLabel, b.labels.Intern(label))
	b.nodeTypes = append(b.nodeTypes, nil)
	return id
}

// AddNodes adds n unlabeled nodes and returns the ID of the first.
func (b *Builder) AddNodes(n int) NodeID {
	first := NodeID(len(b.nodeLabel))
	for i := 0; i < n; i++ {
		b.nodeLabel = append(b.nodeLabel, NoLabel)
		b.nodeTypes = append(b.nodeTypes, nil)
	}
	return first
}

// SetNodeLabel replaces the label of an existing node.
func (b *Builder) SetNodeLabel(n NodeID, label string) {
	b.nodeLabel[n] = b.labels.Intern(label)
}

// AddType attaches a type to node n. Duplicate types are ignored.
func (b *Builder) AddType(n NodeID, typ string) {
	id := b.labels.Intern(typ)
	for _, t := range b.nodeTypes[n] {
		if t == id {
			return
		}
	}
	b.nodeTypes[n] = append(b.nodeTypes[n], id)
}

// AddEdge adds a directed edge src --label--> dst and returns its ID.
func (b *Builder) AddEdge(src NodeID, label string, dst NodeID) EdgeID {
	if int(src) >= len(b.nodeLabel) || int(dst) >= len(b.nodeLabel) || src < 0 || dst < 0 {
		panic(fmt.Sprintf("graph: AddEdge endpoint out of range (%d -> %d, have %d nodes)",
			src, dst, len(b.nodeLabel)))
	}
	id := EdgeID(len(b.edges))
	b.edges = append(b.edges, Edge{Source: src, Target: dst, Label: b.labels.Intern(label)})
	return id
}

// SetNodeProp sets string property p of node n.
func (b *Builder) SetNodeProp(n NodeID, p, v string) {
	m := b.nodeProps[p]
	if m == nil {
		m = make(map[NodeID]string)
		b.nodeProps[p] = m
	}
	m[n] = v
}

// SetEdgeProp sets string property p of edge e.
func (b *Builder) SetEdgeProp(e EdgeID, p, v string) {
	m := b.edgeProps[p]
	if m == nil {
		m = make(map[EdgeID]string)
		b.edgeProps[p] = m
	}
	m[e] = v
}

// NumNodes returns the number of nodes added so far.
func (b *Builder) NumNodes() int { return len(b.nodeLabel) }

// NumEdges returns the number of edges added so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// Build freezes the builder into an immutable Graph, computing adjacency
// lists and label/type indexes. The builder must not be used afterwards.
func (b *Builder) Build() *Graph {
	if b.built {
		panic("graph: Build called twice on the same Builder")
	}
	b.built = true

	n := len(b.nodeLabel)
	g := &Graph{
		labels:      b.labels,
		nodeLabel:   b.nodeLabel,
		nodeTypes:   b.nodeTypes,
		edges:       b.edges,
		nodeProps:   b.nodeProps,
		edgeProps:   b.edgeProps,
		byNodeLabel: make(map[LabelID][]NodeID),
		byEdgeLabel: make(map[LabelID][]EdgeID),
		byType:      make(map[LabelID][]NodeID),
	}

	// Sort node type lists so HasType can early-exit.
	for i := range g.nodeTypes {
		ts := g.nodeTypes[i]
		sort.Slice(ts, func(a, b int) bool { return ts[a] < ts[b] })
	}

	// Count degrees first so adjacency lists are allocated exactly once.
	outDeg := make([]int32, n)
	inDeg := make([]int32, n)
	for _, e := range g.edges {
		outDeg[e.Source]++
		inDeg[e.Target]++
	}
	g.adj = make([][]EdgeID, n)
	g.out = make([][]EdgeID, n)
	g.in = make([][]EdgeID, n)
	for i := 0; i < n; i++ {
		deg := outDeg[i] + inDeg[i]
		if deg > 0 {
			g.adj[i] = make([]EdgeID, 0, deg)
		}
		if outDeg[i] > 0 {
			g.out[i] = make([]EdgeID, 0, outDeg[i])
		}
		if inDeg[i] > 0 {
			g.in[i] = make([]EdgeID, 0, inDeg[i])
		}
	}
	for i, e := range g.edges {
		id := EdgeID(i)
		g.out[e.Source] = append(g.out[e.Source], id)
		g.in[e.Target] = append(g.in[e.Target], id)
		g.adj[e.Source] = append(g.adj[e.Source], id)
		if e.Target != e.Source {
			g.adj[e.Target] = append(g.adj[e.Target], id)
		}
	}

	for i, l := range g.nodeLabel {
		if l != NoLabel {
			g.byNodeLabel[l] = append(g.byNodeLabel[l], NodeID(i))
		}
	}
	for i, e := range g.edges {
		g.byEdgeLabel[e.Label] = append(g.byEdgeLabel[e.Label], EdgeID(i))
	}
	for i, ts := range g.nodeTypes {
		for _, t := range ts {
			g.byType[t] = append(g.byType[t], NodeID(i))
		}
	}
	return g
}
