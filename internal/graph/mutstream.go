package graph

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// The mutation stream format is the write-path companion to the triples
// format: one operation per line, blank lines separating batches, '#'
// starting a comment line. Fields follow the same quoting rules as
// triples (double quotes with backslash escapes).
//
//	+n <label> [<type> ...]   add a node (upsert by label; types attached)
//	+t <node> <type>          attach a type to an existing node
//	+e <src> <label> <dst>    add an edge
//	-e <src> <label> <dst>    delete every live edge matching the triple
//
// graphgen -mutations emits this format; ctpload and the ingest endpoint
// replay it with ReadMutations.

// WriteMutations writes batches in the mutation stream format, separated
// by blank lines. Empty batches are skipped (a blank-line separator with
// nothing before it would not round-trip).
func WriteMutations(w io.Writer, batches []Batch) error {
	bw := bufio.NewWriter(w)
	first := true
	for _, b := range batches {
		if b.Empty() {
			continue
		}
		if !first {
			if _, err := fmt.Fprintln(bw); err != nil {
				return err
			}
		}
		first = false
		for _, n := range b.AddNodes {
			fields := []string{"+n", quoteField(n.Label)}
			for _, t := range n.Types {
				fields = append(fields, quoteField(t))
			}
			if _, err := fmt.Fprintln(bw, strings.Join(fields, " ")); err != nil {
				return err
			}
		}
		for _, t := range b.AddTypes {
			if _, err := fmt.Fprintf(bw, "+t %s %s\n", quoteField(t.Node), quoteField(t.Type)); err != nil {
				return err
			}
		}
		for _, e := range b.AddEdges {
			if _, err := fmt.Fprintf(bw, "+e %s %s %s\n",
				quoteField(e.Source), quoteField(e.Label), quoteField(e.Target)); err != nil {
				return err
			}
		}
		for _, e := range b.DelEdges {
			if _, err := fmt.Fprintf(bw, "-e %s %s %s\n",
				quoteField(e.Source), quoteField(e.Label), quoteField(e.Target)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadMutations parses a mutation stream into batches.
//
// Within one batch the ops regroup into the Batch field order, which is
// also the order Mutate applies them — a stream that interleaves kinds
// inside a batch (say +e before a +n it depends on) still applies, because
// node adds always run first.
func ReadMutations(r io.Reader) ([]Batch, error) {
	var batches []Batch
	var cur Batch
	flush := func() {
		if !cur.Empty() {
			batches = append(batches, cur)
			cur = Batch{}
		}
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			flush()
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields, err := splitTriple(line)
		if err != nil {
			return nil, fmt.Errorf("graph: mutation line %d: %w", lineNo, err)
		}
		op := fields[0]
		args := fields[1:]
		switch op {
		case "+n":
			if len(args) < 1 {
				return nil, fmt.Errorf("graph: mutation line %d: +n wants a label", lineNo)
			}
			cur.AddNodes = append(cur.AddNodes, NodeAdd{Label: args[0], Types: append([]string(nil), args[1:]...)})
		case "+t":
			if len(args) != 2 {
				return nil, fmt.Errorf("graph: mutation line %d: +t wants node and type", lineNo)
			}
			cur.AddTypes = append(cur.AddTypes, TypeAdd{Node: args[0], Type: args[1]})
		case "+e", "-e":
			if len(args) != 3 {
				return nil, fmt.Errorf("graph: mutation line %d: %s wants src, label, dst", lineNo, op)
			}
			t := Triple{Source: args[0], Label: args[1], Target: args[2]}
			if op == "+e" {
				cur.AddEdges = append(cur.AddEdges, t)
			} else {
				cur.DelEdges = append(cur.DelEdges, t)
			}
		default:
			return nil, fmt.Errorf("graph: mutation line %d: unknown op %q", lineNo, op)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading mutations: %w", err)
	}
	flush()
	return batches, nil
}
