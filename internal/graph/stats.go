package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Stats summarizes a graph's size and connectivity; handy when reporting
// benchmark workloads.
type Stats struct {
	Nodes       int
	Edges       int
	Labels      int
	MaxDegree   int
	AvgDegree   float64
	Components  int
	LargestComp int
}

// ComputeStats walks the graph once and returns its Stats. On a live
// epoch view, Edges counts live edges only.
func ComputeStats(g *Graph) Stats {
	edges := g.NumEdges()
	if g.ov != nil {
		edges = 0
		for i := 0; i < g.NumEdges(); i++ {
			if g.EdgeAlive(EdgeID(i)) {
				edges++
			}
		}
	}
	s := Stats{
		Nodes:  g.NumNodes(),
		Edges:  edges,
		Labels: g.Labels().Len(),
	}
	totalDeg := 0
	for i := 0; i < g.NumNodes(); i++ {
		d := g.Degree(NodeID(i))
		totalDeg += d
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
	}
	if s.Nodes > 0 {
		s.AvgDegree = float64(totalDeg) / float64(s.Nodes)
	}

	// Connected components by iterative undirected traversal.
	visited := make([]bool, g.NumNodes())
	var stack []NodeID
	for i := 0; i < g.NumNodes(); i++ {
		if visited[i] {
			continue
		}
		s.Components++
		size := 0
		stack = append(stack[:0], NodeID(i))
		visited[i] = true
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			size++
			for _, e := range g.Incident(n) {
				o := g.Other(e, n)
				if !visited[o] {
					visited[o] = true
					stack = append(stack, o)
				}
			}
		}
		if size > s.LargestComp {
			s.LargestComp = size
		}
	}
	return s
}

// String renders the stats on one line.
func (s Stats) String() string {
	return fmt.Sprintf("nodes=%d edges=%d labels=%d maxDeg=%d avgDeg=%.2f comps=%d largest=%d",
		s.Nodes, s.Edges, s.Labels, s.MaxDegree, s.AvgDegree, s.Components, s.LargestComp)
}

// DegreeHistogram returns "degree: count" lines for degrees up to max,
// aggregating the tail. Used by cmd/expdriver -describe.
func DegreeHistogram(g *Graph, max int) string {
	counts := make(map[int]int)
	for i := 0; i < g.NumNodes(); i++ {
		d := g.Degree(NodeID(i))
		if d > max {
			d = max
		}
		counts[d]++
	}
	keys := make([]int, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var sb strings.Builder
	for _, k := range keys {
		if k == max {
			fmt.Fprintf(&sb, ">=%d: %d\n", k, counts[k])
		} else {
			fmt.Fprintf(&sb, "%d: %d\n", k, counts[k])
		}
	}
	return sb.String()
}
