package graph_test

// Golden tests for the CSR freeze path: the flat-array adjacency and
// label/type indexes must return exactly the edge and node sets the seed
// slice-of-slices implementation produced. The reference here is rebuilt
// naively from the edge list (the layout-independent ground truth), and
// the comparison is order-insensitive, on the Figure 6 graph and on
// randomly generated graphs from internal/gen.

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"ctpquery/internal/gen"
	"ctpquery/internal/graph"
)

// figure6Graph rebuilds the Section 4.6 reference graph A-1-2(-B)-x-3(-C)-4-D.
func figure6Graph() *graph.Graph {
	b := graph.NewBuilder()
	A := b.AddNode("A")
	n1 := b.AddNode("1")
	n2 := b.AddNode("2")
	B := b.AddNode("B")
	x := b.AddNode("x")
	n3 := b.AddNode("3")
	C := b.AddNode("C")
	n4 := b.AddNode("4")
	D := b.AddNode("D")
	b.AddEdge(A, "t", n1)
	b.AddEdge(n1, "t", n2)
	b.AddEdge(B, "t", n2)
	b.AddEdge(n2, "t", x)
	b.AddEdge(x, "t", n3)
	b.AddEdge(n3, "t", C)
	b.AddEdge(n3, "t", n4)
	b.AddEdge(n4, "t", D)
	return b.Build()
}

// naiveAdjacency recomputes out/in/adj per node straight from the edge
// list, the way the pre-CSR implementation built its slice-of-slices.
func naiveAdjacency(g *graph.Graph) (out, in, adj map[graph.NodeID][]graph.EdgeID) {
	out = map[graph.NodeID][]graph.EdgeID{}
	in = map[graph.NodeID][]graph.EdgeID{}
	adj = map[graph.NodeID][]graph.EdgeID{}
	for i := 0; i < g.NumEdges(); i++ {
		e := graph.EdgeID(i)
		ed := g.Edge(e)
		out[ed.Source] = append(out[ed.Source], e)
		in[ed.Target] = append(in[ed.Target], e)
		adj[ed.Source] = append(adj[ed.Source], e)
		if ed.Target != ed.Source {
			adj[ed.Target] = append(adj[ed.Target], e)
		}
	}
	return out, in, adj
}

func sortedEdges(s []graph.EdgeID) []graph.EdgeID {
	out := append([]graph.EdgeID(nil), s...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedNodes(s []graph.NodeID) []graph.NodeID {
	out := append([]graph.NodeID(nil), s...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalEdgeSets(a, b []graph.EdgeID) bool {
	a, b = sortedEdges(a), sortedEdges(b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func checkCSRAgainstNaive(t *testing.T, g *graph.Graph) {
	t.Helper()
	out, in, adj := naiveAdjacency(g)
	for i := 0; i < g.NumNodes(); i++ {
		n := graph.NodeID(i)
		if !equalEdgeSets(g.OutEdges(n), out[n]) {
			t.Fatalf("OutEdges(%d) = %v, want set %v", n, g.OutEdges(n), out[n])
		}
		if !equalEdgeSets(g.InEdges(n), in[n]) {
			t.Fatalf("InEdges(%d) = %v, want set %v", n, g.InEdges(n), in[n])
		}
		if !equalEdgeSets(g.IncidentEdges(n), adj[n]) {
			t.Fatalf("IncidentEdges(%d) = %v, want set %v", n, g.IncidentEdges(n), adj[n])
		}
		if g.Degree(n) != len(adj[n]) {
			t.Fatalf("Degree(%d) = %d, want %d", n, g.Degree(n), len(adj[n]))
		}
	}

	// Label indexes against a naive scan.
	nodesByLabel := map[graph.LabelID][]graph.NodeID{}
	for i := 0; i < g.NumNodes(); i++ {
		if l := g.NodeLabelID(graph.NodeID(i)); l != graph.NoLabel {
			nodesByLabel[l] = append(nodesByLabel[l], graph.NodeID(i))
		}
	}
	edgesByLabel := map[graph.LabelID][]graph.EdgeID{}
	for i := 0; i < g.NumEdges(); i++ {
		edgesByLabel[g.EdgeLabelID(graph.EdgeID(i))] = append(
			edgesByLabel[g.EdgeLabelID(graph.EdgeID(i))], graph.EdgeID(i))
	}
	for l := graph.LabelID(0); int(l) < g.Labels().Len(); l++ {
		got := sortedNodes(g.NodesWithLabel(l))
		want := sortedNodes(nodesByLabel[l])
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("NodesWithLabel(%d) = %v, want %v", l, got, want)
		}
		if !equalEdgeSets(g.EdgesWithLabel(l), edgesByLabel[l]) {
			t.Fatalf("EdgesWithLabel(%d) = %v, want set %v", l, g.EdgesWithLabel(l), edgesByLabel[l])
		}
	}
}

func TestCSRGoldenFigure6(t *testing.T) {
	checkCSRAgainstNaive(t, figure6Graph())
}

func TestCSRGoldenSample(t *testing.T) {
	checkCSRAgainstNaive(t, gen.Sample())
}

func TestCSRGoldenRandomGraphs(t *testing.T) {
	labels := []string{"", "knows", "cites", "funds"}
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(200)
		e := n + rng.Intn(4*n) // connected base + extras, incl. parallels/self-loops
		g := gen.Random(n, e, labels, rng)
		checkCSRAgainstNaive(t, g)
	}
}

// TestCSRGoldenWorkloads covers the synthetic Figure 10/11 topologies.
func TestCSRGoldenWorkloads(t *testing.T) {
	for _, w := range []*gen.Workload{
		gen.Line(3, 3, gen.Alternate),
		gen.Comb(4, 2, 3, 2, gen.Alternate),
		gen.Star(5, 3, gen.Alternate),
		gen.Chain(8),
	} {
		checkCSRAgainstNaive(t, w.Graph)
	}
}

// BenchmarkCSRExpansion measures the adjacency-expansion pattern of the
// search hot loop: touch every incident edge of every node. The CSR
// accessors must not allocate.
func BenchmarkCSRExpansion(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	g := gen.Random(5000, 20000, []string{"knows", "cites", "funds", "worksFor"}, rng)
	b.ReportAllocs()
	b.ResetTimer()
	var sum int64
	for i := 0; i < b.N; i++ {
		for n := 0; n < g.NumNodes(); n++ {
			for _, e := range g.IncidentEdges(graph.NodeID(n)) {
				sum += int64(e)
			}
		}
	}
	if sum == 42 {
		b.Log("unlikely") // keep the loop from being optimized away
	}
}

// BenchmarkCSRLabelScan measures the label-index scan (seed-set
// derivation path).
func BenchmarkCSRLabelScan(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	g := gen.Random(5000, 20000, []string{"knows", "cites", "funds", "worksFor"}, rng)
	l, ok := g.LabelIDOf("knows")
	if !ok {
		b.Fatal("label missing")
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sum int64
	for i := 0; i < b.N; i++ {
		for _, e := range g.EdgesWithLabel(l) {
			sum += int64(e)
		}
	}
	_ = sum
}
