package graph

import (
	"bytes"
	"strings"
	"testing"
)

// fpGraph builds a small graph exercising every fingerprinted component:
// labels, types, edges, and node/edge properties. mutate, when non-nil,
// perturbs the builder before Build.
func fpGraph(mutate func(b *Builder)) *Graph {
	b := NewBuilder()
	a := b.AddNode("Alice")
	bo := b.AddNode("Bob")
	c := b.AddNode("Carole")
	b.AddType(a, "person")
	b.AddType(bo, "person")
	b.AddType(bo, "founder")
	e0 := b.AddEdge(a, "knows", bo)
	b.AddEdge(bo, "funds", c)
	b.SetNodeProp(a, "country", "FR")
	b.SetEdgeProp(e0, "since", "2019")
	if mutate != nil {
		mutate(b)
	}
	return b.Build()
}

func TestFingerprintDeterministic(t *testing.T) {
	g1 := fpGraph(nil)
	g2 := fpGraph(nil)
	if g1.Fingerprint() == 0 {
		t.Fatal("fingerprint is 0")
	}
	if g1.Fingerprint() != g2.Fingerprint() {
		t.Fatalf("same build sequence, different fingerprints: %#x vs %#x",
			g1.Fingerprint(), g2.Fingerprint())
	}
}

func TestFingerprintDistinguishesContent(t *testing.T) {
	base := fpGraph(nil).Fingerprint()
	for name, mutate := range map[string]func(b *Builder){
		"extra node":     func(b *Builder) { b.AddNode("Doug") },
		"extra edge":     func(b *Builder) { b.AddEdge(0, "knows", 2) },
		"edge direction": func(b *Builder) { b.AddEdge(2, "funds", 1) },
		"edge label":     func(b *Builder) { b.AddEdge(0, "cites", 1) },
		"node label":     func(b *Builder) { b.SetNodeLabel(2, "Caroline") },
		"extra type":     func(b *Builder) { b.AddType(2, "person") },
		"node prop":      func(b *Builder) { b.SetNodeProp(1, "country", "US") },
		"edge prop":      func(b *Builder) { b.SetEdgeProp(1, "since", "2020") },
	} {
		if got := fpGraph(mutate).Fingerprint(); got == base {
			t.Errorf("%s: fingerprint unchanged (%#x)", name, got)
		}
	}
}

// The fingerprint must survive both serialization round trips: a snapshot
// preserves everything, and the triples text format preserves everything
// it can represent (no properties, unique labels).
func TestFingerprintRoundTrips(t *testing.T) {
	g := fpGraph(nil)
	var snap bytes.Buffer
	if err := WriteSnapshot(&snap, g); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadSnapshot(&snap)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Fingerprint() != g.Fingerprint() {
		t.Errorf("snapshot round trip changed fingerprint: %#x -> %#x",
			g.Fingerprint(), loaded.Fingerprint())
	}

	const triples = `
Alice knows Bob
Bob funds Carole
Alice type person
Bob a founder
`
	t1, err := LoadTriples(strings.NewReader(triples))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTriples(&buf, t1); err != nil {
		t.Fatal(err)
	}
	t2, err := LoadTriples(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if t1.Fingerprint() != t2.Fingerprint() {
		t.Errorf("triples round trip changed fingerprint: %#x -> %#x",
			t1.Fingerprint(), t2.Fingerprint())
	}
}
