package graph

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// The text format read and written here is a whitespace-separated triple
// per line, mirroring the paper's graph(id, source, edgeLabel, target)
// relational layout:
//
//	<srcLabel> <edgeLabel> <dstLabel>
//
// Fields containing spaces are double-quoted. A triple whose edge label is
// "type" (or the RDF shorthand "a") declares a node type rather than an
// edge, as RDF loaders conventionally do for rdf:type. Lines starting with
// '#' and blank lines are ignored. Node identity is by label, so this
// format only round-trips graphs whose node labels are unique.

// LoadTriples parses the triple format into a fresh graph.
func LoadTriples(r io.Reader) (*Graph, error) {
	b := NewBuilder()
	byLabel := make(map[string]NodeID)
	node := func(label string) NodeID {
		if id, ok := byLabel[label]; ok {
			return id
		}
		id := b.AddNode(label)
		byLabel[label] = id
		return id
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields, err := splitTriple(line)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
		}
		if len(fields) != 3 {
			return nil, fmt.Errorf("graph: line %d: want 3 fields, got %d", lineNo, len(fields))
		}
		src, lbl, dst := fields[0], fields[1], fields[2]
		if lbl == "type" || lbl == "a" {
			b.AddType(node(src), dst)
			continue
		}
		b.AddEdge(node(src), lbl, node(dst))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading triples: %w", err)
	}
	return b.Build(), nil
}

// WriteTriples writes g in the triple format understood by LoadTriples.
// Nodes with duplicate or empty labels cannot be round-tripped and cause
// an error.
func WriteTriples(w io.Writer, g *Graph) error {
	seen := make(map[string]NodeID, g.NumNodes())
	for i := 0; i < g.NumNodes(); i++ {
		l := g.NodeLabel(NodeID(i))
		if l == "" {
			return fmt.Errorf("graph: node %d has empty label, not serializable", i)
		}
		if prev, dup := seen[l]; dup {
			return fmt.Errorf("graph: nodes %d and %d share label %q, not serializable", prev, i, l)
		}
		seen[l] = NodeID(i)
	}
	bw := bufio.NewWriter(w)
	for i := 0; i < g.NumNodes(); i++ {
		n := NodeID(i)
		for _, t := range g.NodeTypes(n) {
			if _, err := fmt.Fprintf(bw, "%s type %s\n",
				quoteField(g.NodeLabel(n)), quoteField(g.Labels().String(t))); err != nil {
				return err
			}
		}
	}
	for i := 0; i < g.NumEdges(); i++ {
		if !g.EdgeAlive(EdgeID(i)) {
			continue
		}
		e := g.Edge(EdgeID(i))
		if _, err := fmt.Fprintf(bw, "%s %s %s\n",
			quoteField(g.NodeLabel(e.Source)),
			quoteField(g.Labels().String(e.Label)),
			quoteField(g.NodeLabel(e.Target))); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func quoteField(s string) string {
	if s == "" || strings.ContainsAny(s, " \t\"") {
		return `"` + strings.ReplaceAll(s, `"`, `\"`) + `"`
	}
	return s
}

// splitTriple splits a line into whitespace-separated fields honoring
// double quotes with backslash escapes.
func splitTriple(line string) ([]string, error) {
	var fields []string
	i := 0
	for i < len(line) {
		for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
		if i >= len(line) {
			break
		}
		if line[i] == '"' {
			i++
			var sb strings.Builder
			closed := false
			for i < len(line) {
				c := line[i]
				if c == '\\' && i+1 < len(line) {
					sb.WriteByte(line[i+1])
					i += 2
					continue
				}
				if c == '"' {
					i++
					closed = true
					break
				}
				sb.WriteByte(c)
				i++
			}
			if !closed {
				return nil, fmt.Errorf("unterminated quote")
			}
			fields = append(fields, sb.String())
			continue
		}
		start := i
		for i < len(line) && line[i] != ' ' && line[i] != '\t' {
			i++
		}
		fields = append(fields, line[start:i])
	}
	return fields, nil
}
