package graph

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzSnapshot asserts ReadSnapshot's arbitrary-input contract: any byte
// string either decodes into a graph that round-trips through
// WriteSnapshot, or fails with a structured *SnapshotError — it never
// panics and never half-loads. The committed corpus under
// testdata/fuzz/FuzzSnapshot seeds a valid snapshot plus truncated,
// bit-flipped, and legacy-version variants.
func FuzzSnapshot(f *testing.F) {
	b := NewBuilder()
	n0 := b.AddNode("person")
	n1 := b.AddNode("city")
	n2 := b.AddNode("")
	b.AddType(n0, "entity")
	e0 := b.AddEdge(n0, "lives_in", n1)
	b.AddEdge(n2, "near", n1)
	b.SetNodeProp(n0, "name", "ada")
	b.SetEdgeProp(e0, "since", "1840")
	g := b.Build()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, g); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)
	var v1 bytes.Buffer
	writeSnapshotV1(&v1, g)
	f.Add(v1.Bytes())
	f.Add([]byte("CTPG"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			if g != nil {
				t.Fatal("error with non-nil graph")
			}
			var se *SnapshotError
			if !errors.As(err, &se) {
				t.Fatalf("unstructured snapshot error: %v", err)
			}
			return
		}
		// Accepted input must re-encode and decode to the same graph.
		var out bytes.Buffer
		if err := WriteSnapshot(&out, g); err != nil {
			t.Fatalf("decoded graph does not re-encode: %v", err)
		}
		g2, err := ReadSnapshot(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded snapshot does not decode: %v", err)
		}
		if g2.Fingerprint() != g.Fingerprint() {
			t.Fatal("round trip changed the graph fingerprint")
		}
	})
}
