package graph

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"testing"
)

// logicalSig renders a graph's ID-independent content: sorted lines for
// node labels, types, and live edges. Two views with the same signature
// are logically the same graph, whatever their internal edge numbering.
func logicalSig(g *Graph) string {
	var lines []string
	for i := 0; i < g.NumNodes(); i++ {
		n := NodeID(i)
		lines = append(lines, "n "+g.NodeLabel(n))
		for _, t := range g.NodeTypes(n) {
			lines = append(lines, "t "+g.NodeLabel(n)+" "+g.Labels().String(t))
		}
	}
	for i := 0; i < g.NumEdges(); i++ {
		e := EdgeID(i)
		if !g.EdgeAlive(e) {
			continue
		}
		ed := g.Edge(e)
		lines = append(lines, fmt.Sprintf("e %s %s %s",
			g.NodeLabel(ed.Source), g.Labels().String(ed.Label), g.NodeLabel(ed.Target)))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// checkConsistent cross-checks every accessor against every other on g:
// adjacency lists ascending and alive with correct endpoints, Degree
// matching IncidentEdges, label/type indexes agreeing with the per-entity
// accessors in both directions.
func checkConsistent(t *testing.T, g *Graph) {
	t.Helper()
	ascending := func(what string, list []EdgeID) {
		for i := 1; i < len(list); i++ {
			if list[i-1] >= list[i] {
				t.Fatalf("%s not ascending: %v", what, list)
			}
		}
	}
	for i := 0; i < g.NumNodes(); i++ {
		n := NodeID(i)
		out, in, adj := g.OutEdges(n), g.InEdges(n), g.IncidentEdges(n)
		ascending("out", out)
		ascending("in", in)
		ascending("adj", adj)
		if g.Degree(n) != len(adj) {
			t.Fatalf("node %d: Degree %d != len(IncidentEdges) %d", n, g.Degree(n), len(adj))
		}
		for _, e := range out {
			if !g.EdgeAlive(e) {
				t.Fatalf("node %d: dead edge %d in OutEdges", n, e)
			}
			if g.Source(e) != n {
				t.Fatalf("node %d: OutEdges contains edge %d with source %d", n, e, g.Source(e))
			}
		}
		for _, e := range in {
			if !g.EdgeAlive(e) || g.Target(e) != n {
				t.Fatalf("node %d: bad InEdges entry %d", n, e)
			}
		}
		for _, e := range adj {
			if !g.EdgeAlive(e) {
				t.Fatalf("node %d: dead edge %d in IncidentEdges", n, e)
			}
			ed := g.Edge(e)
			if ed.Source != n && ed.Target != n {
				t.Fatalf("node %d: IncidentEdges contains foreign edge %d", n, e)
			}
		}
		if l := g.NodeLabelID(n); l != NoLabel {
			found := false
			for _, m := range g.NodesWithLabel(l) {
				if m == n {
					found = true
				}
			}
			if !found {
				t.Fatalf("node %d missing from NodesWithLabel(%q)", n, g.NodeLabel(n))
			}
		}
		for _, ty := range g.NodeTypes(n) {
			if !g.HasType(n, ty) {
				t.Fatalf("node %d: NodeTypes lists %d but HasType says no", n, ty)
			}
			found := false
			for _, m := range g.NodesWithType(ty) {
				if m == n {
					found = true
				}
			}
			if !found {
				t.Fatalf("node %d missing from NodesWithType(%d)", n, ty)
			}
		}
	}
	liveCount := 0
	for i := 0; i < g.NumEdges(); i++ {
		e := EdgeID(i)
		if !g.EdgeAlive(e) {
			continue
		}
		liveCount++
		ed := g.Edge(e)
		contains := func(what string, list []EdgeID) {
			for _, x := range list {
				if x == e {
					return
				}
			}
			t.Fatalf("edge %d missing from %s", e, what)
		}
		contains("OutEdges(src)", g.OutEdges(ed.Source))
		contains("InEdges(dst)", g.InEdges(ed.Target))
		contains("EdgesWithLabel", g.EdgesWithLabel(ed.Label))
	}
	for l := 0; l < g.Labels().Len(); l++ {
		for _, e := range g.EdgesWithLabel(LabelID(l)) {
			if !g.EdgeAlive(e) {
				t.Fatalf("label %d: dead edge %d in EdgesWithLabel", l, e)
			}
			if g.EdgeLabelID(e) != LabelID(l) {
				t.Fatalf("label %d: EdgesWithLabel contains edge %d labeled %d", l, e, g.EdgeLabelID(e))
			}
		}
		for _, n := range g.NodesWithLabel(LabelID(l)) {
			if g.NodeLabelID(n) != LabelID(l) {
				t.Fatalf("label %d: NodesWithLabel contains node %d labeled %d", l, n, g.NodeLabelID(n))
			}
		}
		for _, n := range g.NodesWithType(LabelID(l)) {
			if !g.HasType(n, LabelID(l)) {
				t.Fatalf("type %d: NodesWithType contains node %d without it", l, n)
			}
		}
	}
	_ = liveCount
}

func lineGraph(labels ...string) *Graph {
	b := NewBuilder()
	ids := make([]NodeID, len(labels))
	for i, l := range labels {
		ids[i] = b.AddNode(l)
	}
	for i := 1; i < len(ids); i++ {
		b.AddEdge(ids[i-1], "next", ids[i])
	}
	return b.Build()
}

func mustMutate(t *testing.T, s *Store, b Batch) MutateResult {
	t.Helper()
	res, err := s.Mutate(b)
	if err != nil {
		t.Fatalf("Mutate: %v", err)
	}
	return res
}

// TestStoreMutateMatchesBuilder grows a store batch by batch and checks
// after every epoch that the published view is logically identical to the
// same content built from scratch, and internally consistent.
func TestStoreMutateMatchesBuilder(t *testing.T) {
	s := NewStore(lineGraph("a", "b", "c"), StoreOptions{CompactThreshold: -1})

	mustMutate(t, s, Batch{
		AddNodes: []NodeAdd{{Label: "d", Types: []string{"City"}}},
		AddEdges: []Triple{{"c", "next", "d"}, {"d", "back", "a"}},
	})
	mustMutate(t, s, Batch{
		AddTypes: []TypeAdd{{Node: "a", Type: "City"}, {Node: "a", Type: "Capital"}},
		AddEdges: []Triple{{"a", "next", "b"}}, // parallel edge to a base edge
		DelEdges: []Triple{{"b", "next", "c"}},
	})

	v := s.View()
	checkConsistent(t, v)

	want := func() *Graph {
		b := NewBuilder()
		a, bb, c, d := b.AddNode("a"), b.AddNode("b"), b.AddNode("c"), b.AddNode("d")
		b.AddType(d, "City")
		b.AddType(a, "City")
		b.AddType(a, "Capital")
		b.AddEdge(a, "next", bb) // base
		b.AddEdge(c, "next", d)
		b.AddEdge(d, "back", a)
		b.AddEdge(a, "next", bb) // delta parallel edge
		return b.Build()
	}()
	if logicalSig(v) != logicalSig(want) {
		t.Fatalf("view diverged from builder:\nview:\n%s\nwant:\n%s", logicalSig(v), logicalSig(want))
	}
	if v.Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2", v.Epoch())
	}
}

// TestStoreViewsAreImmutable pins views at every epoch, keeps mutating,
// and checks each pinned view still renders its epoch's content.
func TestStoreViewsAreImmutable(t *testing.T) {
	s := NewStore(lineGraph("a", "b"), StoreOptions{CompactThreshold: -1})
	type pin struct {
		v   *Graph
		sig string
	}
	pins := []pin{{s.View(), logicalSig(s.View())}}
	for i := 0; i < 10; i++ {
		mustMutate(t, s, Batch{
			AddNodes: []NodeAdd{{Label: fmt.Sprintf("x%d", i)}},
			AddEdges: []Triple{{"a", "spoke", fmt.Sprintf("x%d", i)}},
		})
		if i%3 == 1 {
			mustMutate(t, s, Batch{DelEdges: []Triple{{"a", "spoke", fmt.Sprintf("x%d", i-1)}}})
		}
		pins = append(pins, pin{s.View(), logicalSig(s.View())})
	}
	if err := s.CompactNow(); err != nil {
		t.Fatalf("CompactNow: %v", err)
	}
	for i, p := range pins {
		if got := logicalSig(p.v); got != p.sig {
			t.Fatalf("pinned view %d changed content after later mutations/compaction", i)
		}
	}
}

// TestStoreDeleteSemantics: deletes remove every matching live edge, are
// idempotent, and a re-added edge is a fresh live edge.
func TestStoreDeleteSemantics(t *testing.T) {
	b := NewBuilder()
	a, c := b.AddNode("a"), b.AddNode("c")
	b.AddEdge(a, "e", c)
	b.AddEdge(a, "e", c) // duplicate in base
	s := NewStore(b.Build(), StoreOptions{CompactThreshold: -1})

	res := mustMutate(t, s, Batch{AddEdges: []Triple{{"a", "e", "c"}}})
	if res.EdgesAdded != 1 {
		t.Fatalf("EdgesAdded = %d", res.EdgesAdded)
	}
	// All three (two base + one delta) must go.
	res = mustMutate(t, s, Batch{DelEdges: []Triple{{"a", "e", "c"}}})
	if res.EdgesDeleted != 3 {
		t.Fatalf("EdgesDeleted = %d, want 3", res.EdgesDeleted)
	}
	// Idempotent: nothing left to match, and no error.
	res = mustMutate(t, s, Batch{DelEdges: []Triple{{"a", "e", "c"}, {"ghost", "e", "c"}}})
	if res.EdgesDeleted != 0 {
		t.Fatalf("repeat delete removed %d edges", res.EdgesDeleted)
	}
	v := s.View()
	if got := len(v.OutEdges(v.mustNode(t, "a"))); got != 0 {
		t.Fatalf("a still has %d out-edges", got)
	}
	// Add-then-delete within one batch cancels out.
	res = mustMutate(t, s, Batch{
		AddEdges: []Triple{{"a", "e", "c"}},
		DelEdges: []Triple{{"a", "e", "c"}},
	})
	if res.EdgesAdded != 1 || res.EdgesDeleted != 1 {
		t.Fatalf("add+del in batch: %+v", res)
	}
	v = s.View()
	checkConsistent(t, v)
	if got := len(v.OutEdges(v.mustNode(t, "a"))); got != 0 {
		t.Fatalf("a has %d out-edges after cancelling batch", got)
	}
}

func (g *Graph) mustNode(t *testing.T, label string) NodeID {
	t.Helper()
	n, ok := g.NodeByLabel(label)
	if !ok {
		t.Fatalf("node %q not found", label)
	}
	return n
}

// TestStoreUpsertAndErrors: AddNode on an existing unique label merges
// types; ambiguity and unknown references fail the whole batch atomically.
func TestStoreUpsertAndErrors(t *testing.T) {
	b := NewBuilder()
	b.AddNode("dup")
	b.AddNode("dup")
	b.AddNode("solo")
	s := NewStore(b.Build(), StoreOptions{CompactThreshold: -1})
	v0 := s.View()

	for name, bad := range map[string]Batch{
		"ambiguous AddNode":  {AddNodes: []NodeAdd{{Label: "dup"}}},
		"ambiguous AddEdge":  {AddEdges: []Triple{{"dup", "e", "solo"}}},
		"ambiguous DelEdge":  {DelEdges: []Triple{{"dup", "e", "solo"}}},
		"unknown AddType":    {AddTypes: []TypeAdd{{Node: "nobody", Type: "T"}}},
		"partial then error": {AddNodes: []NodeAdd{{Label: "fresh"}}, AddTypes: []TypeAdd{{Node: "nobody", Type: "T"}}},
	} {
		if _, err := s.Mutate(bad); err == nil {
			t.Fatalf("%s: no error", name)
		}
	}
	if s.View() != v0 {
		t.Fatal("failed batches published a new view")
	}
	if _, ok := s.View().NodeByLabel("fresh"); ok {
		t.Fatal("aborted batch leaked a node")
	}

	// Upsert: merge one new type into solo, skip the duplicate.
	mustMutate(t, s, Batch{AddNodes: []NodeAdd{{Label: "solo", Types: []string{"T"}}}})
	res := mustMutate(t, s, Batch{AddNodes: []NodeAdd{{Label: "solo", Types: []string{"T", "U"}}}})
	if res.NodesAdded != 0 || res.TypesAdded != 1 {
		t.Fatalf("upsert: %+v, want 0 nodes / 1 type", res)
	}
	v := s.View()
	n := v.mustNode(t, "solo")
	if len(v.NodeTypes(n)) != 2 {
		t.Fatalf("solo has types %v", v.NodeTypes(n))
	}
	checkConsistent(t, v)
}

// TestStoreFingerprint: the fingerprint chain is deterministic across
// stores, changes on every batch, and diverges for different batches.
func TestStoreFingerprint(t *testing.T) {
	mk := func() *Store { return NewStore(lineGraph("a", "b", "c"), StoreOptions{CompactThreshold: -1}) }
	s1, s2 := mk(), mk()
	if s1.View().Fingerprint() != s2.View().Fingerprint() {
		t.Fatal("identical bases disagree on fingerprint")
	}
	batch := Batch{AddEdges: []Triple{{"a", "hop", "c"}}}
	fp0 := s1.View().Fingerprint()
	r1 := mustMutate(t, s1, batch)
	r2 := mustMutate(t, s2, batch)
	if r1.Fingerprint != r2.Fingerprint {
		t.Fatal("same batch produced different fingerprints")
	}
	if r1.Fingerprint == fp0 {
		t.Fatal("fingerprint did not change on mutation")
	}
	s3 := mk()
	r3 := mustMutate(t, s3, Batch{AddEdges: []Triple{{"a", "hop", "b"}}})
	if r3.Fingerprint == r1.Fingerprint {
		t.Fatal("different batches produced the same fingerprint")
	}
}

// TestStoreCompaction: compaction preserves logical content, epoch, and
// fingerprint (so caches survive), squeezes dead edge IDs, and later
// mutations keep working against the new base.
func TestStoreCompaction(t *testing.T) {
	s := NewStore(lineGraph("a", "b", "c", "d"), StoreOptions{CompactThreshold: -1})
	mustMutate(t, s, Batch{
		AddNodes: []NodeAdd{{Label: "e", Types: []string{"T"}}},
		AddEdges: []Triple{{"d", "next", "e"}, {"e", "back", "a"}},
		DelEdges: []Triple{{"a", "next", "b"}},
	})
	before := s.View()
	sig, fp, ep := logicalSig(before), before.Fingerprint(), before.Epoch()
	deadSpan := before.NumEdges()

	if err := s.CompactNow(); err != nil {
		t.Fatalf("CompactNow: %v", err)
	}
	after := s.View()
	if logicalSig(after) != sig {
		t.Fatalf("compaction changed content:\n%s\nvs\n%s", logicalSig(after), sig)
	}
	if after.Fingerprint() != fp || after.Epoch() != ep {
		t.Fatalf("compaction changed fingerprint/epoch: %x/%d -> %x/%d",
			fp, ep, after.Fingerprint(), after.Epoch())
	}
	if after.NumEdges() >= deadSpan {
		t.Fatalf("compaction did not squeeze dead IDs: %d -> %d", deadSpan, after.NumEdges())
	}
	checkConsistent(t, after)

	st := s.Stats()
	if st.Compactions != 1 || st.AddedNodes != 0 || st.DeltaEdges != 0 || st.DeadEdges != 0 {
		t.Fatalf("stats after compaction: %+v", st)
	}

	mustMutate(t, s, Batch{AddEdges: []Triple{{"e", "loop", "e"}}})
	checkConsistent(t, s.View())
	if _, err := s.View().NodeByLabel("e"); false {
		_ = err
	}
}

// TestStoreAutoCompaction: crossing the threshold triggers a background
// compaction that leaves the store logically intact.
func TestStoreAutoCompaction(t *testing.T) {
	s := NewStore(lineGraph("a", "b"), StoreOptions{CompactThreshold: 8})
	for i := 0; i < 10; i++ {
		mustMutate(t, s, Batch{AddEdges: []Triple{{"a", "e", "b"}}})
	}
	s.Quiesce()
	st := s.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no compaction ran: %+v", st)
	}
	v := s.View()
	checkConsistent(t, v)
	n, _ := v.NodeByLabel("a")
	if got := len(v.OutEdges(n)); got != 11 { // 1 base + 10 added
		t.Fatalf("a has %d out-edges, want 11", got)
	}
}

// TestStoreEmptyDeltaViewIsPlainBase: after compaction (or before any
// mutation) the published view carries no overlay, so reads are exactly
// base-CSR reads.
func TestStoreEmptyDeltaViewIsPlainBase(t *testing.T) {
	s := NewStore(lineGraph("a", "b", "c"), StoreOptions{CompactThreshold: -1})
	if s.View().ov != nil {
		t.Fatal("fresh store published an overlay view")
	}
	mustMutate(t, s, Batch{AddEdges: []Triple{{"a", "hop", "c"}}})
	if s.View().ov == nil {
		t.Fatal("mutated store published a bare view")
	}
	if err := s.CompactNow(); err != nil {
		t.Fatal(err)
	}
	if s.View().ov != nil {
		t.Fatal("compacted store still publishes an overlay view")
	}
}

// TestStoreSnapshotRoundTrip: a live view serializes its logical content
// through the binary snapshot and the triples text format.
func TestStoreSnapshotRoundTrip(t *testing.T) {
	s := NewStore(lineGraph("a", "b", "c"), StoreOptions{CompactThreshold: -1})
	// Note the deletion leaves no node isolated: the triples text format
	// only materializes nodes that appear in some triple.
	mustMutate(t, s, Batch{
		AddNodes: []NodeAdd{{Label: "d", Types: []string{"T"}}},
		AddEdges: []Triple{{"c", "next", "d"}},
		DelEdges: []Triple{{"b", "next", "c"}},
	})
	v := s.View()

	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, v); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	back, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if logicalSig(back) != logicalSig(v) {
		t.Fatalf("snapshot round-trip diverged:\n%s\nvs\n%s", logicalSig(back), logicalSig(v))
	}

	buf.Reset()
	if err := WriteTriples(&buf, v); err != nil {
		t.Fatalf("WriteTriples: %v", err)
	}
	back2, err := LoadTriples(&buf)
	if err != nil {
		t.Fatalf("LoadTriples: %v", err)
	}
	if logicalSig(back2) != logicalSig(v) {
		t.Fatal("triples round-trip diverged")
	}
}

// TestMutationStreamRoundTrip: WriteMutations/ReadMutations preserve
// batches, including quoting.
func TestMutationStreamRoundTrip(t *testing.T) {
	batches := []Batch{
		{AddNodes: []NodeAdd{{Label: "plain"}, {Label: "has space", Types: []string{"T one", "T2"}}}},
		{
			AddTypes: []TypeAdd{{Node: "plain", Type: "City"}},
			AddEdges: []Triple{{"plain", "to", "has space"}, {`qu"ote`, "e", "plain"}},
			DelEdges: []Triple{{"plain", "to", "has space"}},
		},
	}
	var buf bytes.Buffer
	if err := WriteMutations(&buf, batches); err != nil {
		t.Fatalf("WriteMutations: %v", err)
	}
	back, err := ReadMutations(&buf)
	if err != nil {
		t.Fatalf("ReadMutations: %v\n%s", err, buf.String())
	}
	if len(back) != len(batches) {
		t.Fatalf("got %d batches, want %d", len(back), len(batches))
	}
	if fmt.Sprintf("%+v", back) != fmt.Sprintf("%+v", batches) {
		t.Fatalf("round trip diverged:\n%+v\nvs\n%+v", back, batches)
	}

	// Batches must replay to the same store state either way.
	apply := func(bs []Batch) uint64 {
		s := NewStore(lineGraph("seed"), StoreOptions{CompactThreshold: -1})
		for _, b := range bs {
			if _, err := s.Mutate(b); err != nil {
				t.Fatalf("replay: %v", err)
			}
		}
		return s.View().Fingerprint()
	}
	if apply(batches) != apply(back) {
		t.Fatal("replayed stream diverged from original batches")
	}
}
