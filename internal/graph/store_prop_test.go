package graph

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"ctpquery/internal/fault"
)

// randBatch builds a batch that cannot fail validation: adds between
// labels known unique (the base line-graph labels plus nodes this
// generator created), brand-new uniquely-labeled nodes, idempotent
// deletes, and type attachments on known nodes.
type batchGen struct {
	r      *rand.Rand
	labels []string // unique node labels, grows as nodes are added
	added  []Triple // edges added so far, eligible for deletion
	nextID int
}

func newBatchGen(seed int64, baseLabels []string) *batchGen {
	return &batchGen{r: rand.New(rand.NewSource(seed)), labels: append([]string(nil), baseLabels...)}
}

func (g *batchGen) pick() string { return g.labels[g.r.Intn(len(g.labels))] }

func (g *batchGen) next() Batch {
	var b Batch
	for ops := 1 + g.r.Intn(3); ops > 0; ops-- {
		switch roll := g.r.Float64(); {
		case roll < 0.5:
			t := Triple{Source: g.pick(), Label: "rel", Target: g.pick()}
			b.AddEdges = append(b.AddEdges, t)
			g.added = append(g.added, t)
		case roll < 0.7:
			g.nextID++
			label := fmt.Sprintf("gen%d", g.nextID)
			b.AddNodes = append(b.AddNodes, NodeAdd{Label: label, Types: []string{"generated"}})
			t := Triple{Source: label, Label: "rel", Target: g.pick()}
			b.AddEdges = append(b.AddEdges, t)
			g.added = append(g.added, t)
			g.labels = append(g.labels, label)
		case roll < 0.9:
			if len(g.added) == 0 {
				continue
			}
			i := g.r.Intn(len(g.added))
			b.DelEdges = append(b.DelEdges, g.added[i])
			g.added[i] = g.added[len(g.added)-1]
			g.added = g.added[:len(g.added)-1]
		default:
			b.AddTypes = append(b.AddTypes, TypeAdd{Node: g.pick(), Type: "touched"})
		}
	}
	return b
}

// TestStoreLinearizability is the epoch-isolation property test: one
// writer applies a random batch stream (with background compaction
// forced into the middle of it) while reader goroutines continuously
// snapshot and fingerprint the logical content they see. Afterward,
// every observation must match the content signature the writer recorded
// when it published that epoch — i.e. every concurrent read was
// consistent with exactly one epoch, never a blend.
func TestStoreLinearizability(t *testing.T) {
	batches := 120
	if testing.Short() {
		batches = 40
	}
	baseLabels := make([]string, 30)
	for i := range baseLabels {
		baseLabels[i] = fmt.Sprintf("base%d", i)
	}
	st := NewStore(lineGraph(baseLabels...), StoreOptions{CompactThreshold: 25})
	defer st.Quiesce()

	// expected[epoch] = logical content signature at publish time. The
	// writer is the only goroutine that writes it; readers never touch it
	// (they record observations and the main goroutine verifies after the
	// barrier), so the map needs no lock.
	expected := map[uint64]string{0: logicalSig(st.View())}

	type obs struct {
		epoch uint64
		sig   string
	}
	const readers = 4
	observations := make([][]obs, readers)
	stop := make(chan struct{})
	var wg, ready sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		ready.Add(1)
		go func(i int) {
			defer wg.Done()
			var last uint64
			for first := true; ; first = false {
				select {
				case <-stop:
					return
				default:
				}
				v := st.Snapshot()
				e := v.Epoch()
				if e < last {
					t.Errorf("reader %d: epoch went backward (%d after %d)", i, e, last)
					return
				}
				last = e
				observations[i] = append(observations[i], obs{epoch: e, sig: logicalSig(v)})
				if first {
					ready.Done()
				}
			}
		}(i)
	}
	// Barrier: the writer is fast enough to finish the whole stream before
	// the scheduler ever runs a reader, so wait for every reader to record
	// its first observation — otherwise the test observes nothing.
	ready.Wait()

	gen := newBatchGen(7, baseLabels)
	for i := 0; i < batches; i++ {
		b := gen.next()
		if b.Empty() {
			continue
		}
		res := mustMutate(t, st, b)
		// One writer: the view right after Mutate is exactly this epoch's
		// (a landed compaction republishes the same epoch with identical
		// content, so the signature is stable either way).
		expected[res.Epoch] = logicalSig(st.View())
		if i%8 == 0 {
			runtime.Gosched() // let readers interleave with the stream
		}
	}
	close(stop)
	wg.Wait()
	st.Quiesce()

	total := 0
	for i, seq := range observations {
		for _, o := range seq {
			want, ok := expected[o.epoch]
			if !ok {
				t.Fatalf("reader %d observed epoch %d the writer never published", i, o.epoch)
			}
			if o.sig != want {
				t.Fatalf("reader %d: epoch %d content diverged from its publish-time signature", i, o.epoch)
			}
			total++
		}
	}
	if total == 0 {
		t.Fatal("readers made no observations")
	}
	st.Quiesce()
	checkConsistent(t, st.View())
	if st.Stats().Compactions == 0 {
		t.Fatalf("no compaction ran during the property test (pending %d)", st.Stats().PendingOps)
	}
}

// TestChaosCompactionAbort arms the graph.compact probe with both fault
// kinds: a panic mid-merge must be contained as an aborted compaction
// (not a crash), an injected error likewise, and in both cases the store
// keeps serving its exact pre-compaction content and accepts further
// mutations; disarmed, compaction succeeds.
func TestChaosCompactionAbort(t *testing.T) {
	defer fault.Reset()
	st := NewStore(lineGraph("a", "b", "c", "d"), StoreOptions{CompactThreshold: -1})
	defer st.Quiesce()
	mustMutate(t, st, Batch{AddEdges: []Triple{{Source: "a", Label: "x", Target: "c"}}})
	mustMutate(t, st, Batch{DelEdges: []Triple{{Source: "a", Label: "next", Target: "b"}}})
	sig := logicalSig(st.View())
	fp := st.View().Fingerprint()

	for _, kind := range []fault.Kind{fault.Panic, fault.Error} {
		fault.Reset()
		if err := fault.Arm("graph.compact", fault.Fault{Kind: kind}); err != nil {
			t.Fatal(err)
		}
		if err := st.CompactNow(); err == nil {
			t.Fatalf("kind %v: CompactNow succeeded with the probe armed", kind)
		}
		if got := logicalSig(st.View()); got != sig {
			t.Fatalf("kind %v: aborted compaction changed the served content", kind)
		}
		if st.View().Fingerprint() != fp {
			t.Fatalf("kind %v: aborted compaction changed the fingerprint", kind)
		}
		checkConsistent(t, st.View())
	}
	stats := st.Stats()
	if stats.CompactAborts != 2 || stats.Compactions != 0 {
		t.Fatalf("aborts=%d compactions=%d, want 2/0", stats.CompactAborts, stats.Compactions)
	}

	// The store still takes writes after the aborts...
	fault.Reset()
	mustMutate(t, st, Batch{AddEdges: []Triple{{Source: "d", Label: "x", Target: "a"}}})
	sig = logicalSig(st.View())
	// ...and a disarmed compaction lands, preserving content and epoch.
	epoch := st.Epoch()
	if err := st.CompactNow(); err != nil {
		t.Fatalf("disarmed CompactNow: %v", err)
	}
	if got := logicalSig(st.View()); got != sig {
		t.Fatal("successful compaction changed the served content")
	}
	if st.Epoch() != epoch {
		t.Fatalf("compaction moved the epoch: %d -> %d", epoch, st.Epoch())
	}
	if st.View().ov != nil {
		t.Fatal("compacted view still has an overlay")
	}
	checkConsistent(t, st.View())
	if st.Stats().Compactions != 1 {
		t.Fatalf("compactions = %d, want 1", st.Stats().Compactions)
	}
}
