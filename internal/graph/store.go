package graph

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ctpquery/internal/fault"
	"ctpquery/internal/hash64"
)

// compactPoint lets chaos tests kill a compaction mid-merge: the probe
// sits between pinning the pre-merge view and building the replacement
// base, so an armed panic or error aborts the rebuild after real work has
// started. The store must absorb the abort — the delta keeps serving, no
// published view is ever torn — which is exactly what the chaos suite
// asserts.
var compactPoint = fault.Register("graph.compact")

// Store is a live graph: an immutable CSR base plus a mutable delta
// overlay (node/edge/type additions and edge deletions), published to
// readers as a sequence of immutable epoch views.
//
// Every Mutate applies one atomic batch, bumps the epoch, chains the
// fingerprint, and publishes a fresh view; View (and Snapshot) return the
// current view with one atomic load. A reader holds its view for the
// duration of a query — that is the entire pinning protocol: views are
// immutable, unreferenced ones are reclaimed by the garbage collector, and
// no reader can ever observe a half-applied batch because the swap is a
// single pointer store.
//
// Once the accumulated delta crosses CompactThreshold logical operations,
// a background goroutine rebuilds a fresh CSR base from the current view
// and swaps it in, replaying any batches that arrived mid-rebuild.
// Compaction changes no logical content: the epoch and fingerprint are
// inherited, so query caches keyed on the fingerprint survive it (edge IDs
// may renumber — in-flight queries are unaffected because they hold the
// pre-compaction view).
type Store struct {
	mu  sync.Mutex
	cur atomic.Pointer[Graph]

	// Authoritative delta state, guarded by mu. The published view holds
	// frozen copies — nothing here is reachable from a view except via
	// copy-on-write slices.
	base         *Graph
	labels       *Dict
	epoch        uint64
	fp           uint64
	addedLabel   []LabelID
	addedByLabel map[LabelID][]NodeID
	mergedTypes  map[NodeID][]LabelID // full sorted type list per delta-touched node
	typeAdds     map[LabelID][]NodeID // nodes that gained type t in the delta
	deltaEdges   []Edge
	deltaDead    []bool
	baseDead     map[EdgeID]struct{}
	deadCount    int
	typeAddCount int
	ops          int // logical delta operations since the last compaction

	// batchLog holds every batch applied since the current base was built,
	// so a compaction can replay the suffix that arrived while it rebuilt.
	batchLog []Batch

	threshold     int
	compacting    bool
	baseGen       uint64
	compactions   uint64
	compactAborts uint64
	lastCompactNS int64
	wg            sync.WaitGroup

	obsMu    sync.Mutex
	observer func(CompactionInfo)
}

// StoreOptions configures a Store.
type StoreOptions struct {
	// CompactThreshold is the number of logical delta operations (nodes or
	// edges added, edges deleted, types attached) that triggers a
	// background compaction. 0 selects the default (4096); negative
	// disables automatic compaction (CompactNow still works).
	CompactThreshold int
}

// DefaultCompactThreshold is the automatic-compaction trigger used when
// StoreOptions.CompactThreshold is zero.
const DefaultCompactThreshold = 4096

// Triple names an edge by node labels — the write-path mirror of the
// triples text format: node identity is by label.
type Triple struct {
	Source string
	Label  string
	Target string
}

// NodeAdd declares a node by label, with optional types. Adding a label
// that already names exactly one node is an upsert: missing types are
// attached, nothing else changes. An empty label always creates a fresh
// unlabeled node.
type NodeAdd struct {
	Label string
	Types []string
}

// TypeAdd attaches a type to an existing node (identified by label).
type TypeAdd struct {
	Node string
	Type string
}

// Batch is one atomic group of mutations. Operations apply in field order
// — AddNodes, AddTypes, AddEdges, DelEdges — and each list in declaration
// order, so an edge may reference a node added earlier in the same batch
// and a deletion may remove an edge the same batch added. Edge endpoints
// that name no existing node are created implicitly (like the triples
// loader); deletions remove every live edge matching the triple and are
// idempotent (zero matches is not an error). A batch either applies
// completely or — on a validation error such as an ambiguous node label —
// not at all.
type Batch struct {
	AddNodes []NodeAdd
	AddTypes []TypeAdd
	AddEdges []Triple
	DelEdges []Triple
}

// Empty reports whether the batch contains no operations.
func (b Batch) Empty() bool {
	return len(b.AddNodes) == 0 && len(b.AddTypes) == 0 &&
		len(b.AddEdges) == 0 && len(b.DelEdges) == 0
}

// MutateResult reports what one Mutate applied.
type MutateResult struct {
	Epoch        uint64
	Fingerprint  uint64
	NodesAdded   int
	EdgesAdded   int
	EdgesDeleted int
	TypesAdded   int
}

// StoreStats is a point-in-time snapshot of the store's shape.
type StoreStats struct {
	Epoch            uint64
	Fingerprint      uint64
	BaseGen          uint64 // how many times the base has been rebuilt
	BaseNodes        int
	BaseEdges        int
	AddedNodes       int
	DeltaEdges       int // live delta edges
	DeadEdges        int
	TypesAdded       int
	PendingOps       int // logical ops accumulated toward the threshold
	CompactThreshold int
	Compacting       bool
	Compactions      uint64
	CompactAborts    uint64
	LastCompactNS    int64
}

// CompactionInfo is delivered to the observer installed with
// SetCompactionObserver after every compaction attempt.
type CompactionInfo struct {
	Epoch    uint64
	BaseGen  uint64
	Duration time.Duration
	Aborted  bool
	Err      error
}

// NewStore wraps base — which must be a graph frozen by Build, or any
// epoch view (compacted first) — into a live Store at epoch 0.
func NewStore(base *Graph, opts StoreOptions) *Store {
	if base.ov != nil {
		base = rebuildBase(base)
	}
	th := opts.CompactThreshold
	if th == 0 {
		th = DefaultCompactThreshold
	}
	s := &Store{
		base:         base,
		labels:       base.labels,
		fp:           base.Fingerprint(),
		addedByLabel: make(map[LabelID][]NodeID),
		mergedTypes:  make(map[NodeID][]LabelID),
		typeAdds:     make(map[LabelID][]NodeID),
		baseDead:     make(map[EdgeID]struct{}),
		threshold:    th,
	}
	v := *base
	v.epoch = 0
	s.cur.Store(&v)
	return s
}

// View returns the current epoch view: an immutable graph a query holds
// for its whole run. One atomic load; never nil.
func (s *Store) View() *Graph { return s.cur.Load() }

// Snapshot is View under the name the pinning protocol is documented by:
// holding the returned graph pins its epoch — its content never changes,
// however many batches or compactions follow.
func (s *Store) Snapshot() *Graph { return s.View() }

// Epoch returns the current epoch (the number of batches applied).
func (s *Store) Epoch() uint64 { return s.View().Epoch() }

// SetCompactionObserver installs fn, called (from the compaction
// goroutine, without store locks held) after every compaction attempt.
func (s *Store) SetCompactionObserver(fn func(CompactionInfo)) {
	s.obsMu.Lock()
	s.observer = fn
	s.obsMu.Unlock()
}

func (s *Store) notifyCompaction(info CompactionInfo) {
	s.obsMu.Lock()
	fn := s.observer
	s.obsMu.Unlock()
	if fn != nil {
		fn(info)
	}
}

// Stats returns a consistent snapshot of the store's counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	live := 0
	for _, d := range s.deltaDead {
		if !d {
			live++
		}
	}
	return StoreStats{
		Epoch:            s.epoch,
		Fingerprint:      s.fp,
		BaseGen:          s.baseGen,
		BaseNodes:        s.base.NumNodes(),
		BaseEdges:        len(s.base.edges),
		AddedNodes:       len(s.addedLabel),
		DeltaEdges:       live,
		DeadEdges:        s.deadCount,
		TypesAdded:       s.typeAddCount,
		PendingOps:       s.ops,
		CompactThreshold: s.threshold,
		Compacting:       s.compacting,
		Compactions:      s.compactions,
		CompactAborts:    s.compactAborts,
		LastCompactNS:    s.lastCompactNS,
	}
}

// Mutate applies one batch atomically, publishes the next epoch view, and
// reports what changed. On error nothing is applied and the current view
// is unchanged.
func (s *Store) Mutate(b Batch) (MutateResult, error) {
	s.mu.Lock()
	plan, err := s.planLocked(b)
	if err != nil {
		s.mu.Unlock()
		return MutateResult{}, err
	}
	res := s.commitLocked(plan)
	s.epoch++
	s.fp = hash64.Mix(s.fp ^ batchDigest(b))
	s.batchLog = append(s.batchLog, b)
	res.Epoch = s.epoch
	res.Fingerprint = s.fp
	s.freezeLocked()
	s.maybeCompactLocked()
	s.mu.Unlock()
	return res, nil
}

// Quiesce blocks until any in-flight background compaction finishes.
// Tests and benchmarks use it for deterministic sequencing.
func (s *Store) Quiesce() { s.wg.Wait() }

// ---------------------------------------------------------------------------
// Batch planning: resolve every operation against the current state without
// modifying anything, so a validation error leaves the store untouched.

type plannedNode struct {
	label LabelID
	types []LabelID
}

type plannedType struct {
	n NodeID
	t LabelID
}

type mutationPlan struct {
	dict     *Dict
	dictGrew bool

	newNodes []plannedNode
	byLabel  map[LabelID]NodeID // batch-created nodes, for intra-batch references
	typeAdds []plannedType
	newEdges []Edge
	delBase  []EdgeID
	delDelta []int
	delNew   []int

	delBaseSet  map[EdgeID]bool
	delDeltaSet map[int]bool
	delNewSet   map[int]bool
}

func (s *Store) planLocked(b Batch) (*mutationPlan, error) {
	p := &mutationPlan{
		dict:        s.labels,
		byLabel:     make(map[LabelID]NodeID),
		delBaseSet:  make(map[EdgeID]bool),
		delDeltaSet: make(map[int]bool),
		delNewSet:   make(map[int]bool),
	}
	for _, na := range b.AddNodes {
		if na.Label == "" {
			p.createNode(s, NoLabel, p.internTypes(s, na.Types))
			continue
		}
		id, count := s.resolveLocked(p, na.Label)
		switch {
		case count > 1:
			return nil, fmt.Errorf("graph: AddNode %q: label is ambiguous (%d nodes)", na.Label, count)
		case count == 1:
			// Upsert: attach the types the node does not have yet.
			for _, t := range p.internTypes(s, na.Types) {
				p.typeAdds = append(p.typeAdds, plannedType{n: id, t: t})
			}
		default:
			p.createNode(s, s.internLocked(p, na.Label), p.internTypes(s, na.Types))
		}
	}
	for _, ta := range b.AddTypes {
		id, count := s.resolveLocked(p, ta.Node)
		if count == 0 {
			return nil, fmt.Errorf("graph: AddType %q: unknown node %q", ta.Type, ta.Node)
		}
		if count > 1 {
			return nil, fmt.Errorf("graph: AddType %q: node label %q is ambiguous (%d nodes)", ta.Type, ta.Node, count)
		}
		p.typeAdds = append(p.typeAdds, plannedType{n: id, t: s.internLocked(p, ta.Type)})
	}
	for _, ae := range b.AddEdges {
		src, err := s.ensureNodeLocked(p, ae.Source)
		if err != nil {
			return nil, fmt.Errorf("graph: AddEdge %s-[%s]->%s: %w", ae.Source, ae.Label, ae.Target, err)
		}
		dst, err := s.ensureNodeLocked(p, ae.Target)
		if err != nil {
			return nil, fmt.Errorf("graph: AddEdge %s-[%s]->%s: %w", ae.Source, ae.Label, ae.Target, err)
		}
		p.newEdges = append(p.newEdges, Edge{Source: src, Target: dst, Label: s.internLocked(p, ae.Label)})
	}
	for _, de := range b.DelEdges {
		if err := s.planDeleteLocked(p, de); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// resolveLocked finds the node(s) labeled label across the base, the
// delta, and the batch's own additions. It returns one representative and
// the total count; it never interns.
func (s *Store) resolveLocked(p *mutationPlan, label string) (NodeID, int) {
	l, ok := p.dict.Lookup(label)
	if !ok || l == NoLabel {
		return 0, 0
	}
	var id NodeID
	count := 0
	if ns := s.base.NodesWithLabel(l); len(ns) > 0 {
		id, count = ns[0], count+len(ns)
	}
	if ns := s.addedByLabel[l]; len(ns) > 0 {
		id, count = ns[0], count+len(ns)
	}
	if n, ok := p.byLabel[l]; ok {
		id, count = n, count+1
	}
	return id, count
}

// ensureNodeLocked resolves label to a unique node, creating one when the
// label names none (the triples loader's implicit-node rule).
func (s *Store) ensureNodeLocked(p *mutationPlan, label string) (NodeID, error) {
	if label == "" {
		return 0, fmt.Errorf("empty node label")
	}
	id, count := s.resolveLocked(p, label)
	switch {
	case count > 1:
		return 0, fmt.Errorf("node label %q is ambiguous (%d nodes)", label, count)
	case count == 1:
		return id, nil
	}
	return p.createNode(s, s.internLocked(p, label), nil), nil
}

func (p *mutationPlan) createNode(s *Store, label LabelID, types []LabelID) NodeID {
	id := NodeID(s.base.NumNodes() + len(s.addedLabel) + len(p.newNodes))
	p.newNodes = append(p.newNodes, plannedNode{label: label, types: types})
	if label != NoLabel {
		p.byLabel[label] = id
	}
	return id
}

func (p *mutationPlan) internTypes(s *Store, types []string) []LabelID {
	if len(types) == 0 {
		return nil
	}
	out := make([]LabelID, 0, len(types))
	for _, t := range types {
		out = append(out, s.internLocked(p, t))
	}
	return out
}

func (s *Store) internLocked(p *mutationPlan, str string) LabelID {
	if id, ok := p.dict.Lookup(str); ok {
		return id
	}
	// First new label of the batch: clone so published views keep reading
	// the old dictionary without racing the growth.
	if !p.dictGrew {
		p.dict = p.dict.Clone()
		p.dictGrew = true
	}
	return p.dict.Intern(str)
}

// planDeleteLocked marks every live edge matching the triple for deletion
// (across base, delta, and edges this batch added). Zero matches is fine.
func (s *Store) planDeleteLocked(p *mutationPlan, t Triple) error {
	src, scount := s.resolveLocked(p, t.Source)
	if scount > 1 {
		return fmt.Errorf("graph: DelEdge %s-[%s]->%s: source label is ambiguous", t.Source, t.Label, t.Target)
	}
	dst, dcount := s.resolveLocked(p, t.Target)
	if dcount > 1 {
		return fmt.Errorf("graph: DelEdge %s-[%s]->%s: target label is ambiguous", t.Source, t.Label, t.Target)
	}
	l, lok := p.dict.Lookup(t.Label)
	if scount == 0 || dcount == 0 || !lok {
		return nil
	}
	if int(src) < s.base.NumNodes() {
		for _, e := range s.base.OutEdges(src) {
			ed := s.base.edges[e]
			if ed.Target != dst || ed.Label != l {
				continue
			}
			if _, dead := s.baseDead[e]; dead || p.delBaseSet[e] {
				continue
			}
			p.delBase = append(p.delBase, e)
			p.delBaseSet[e] = true
		}
	}
	for i, de := range s.deltaEdges {
		if s.deltaDead[i] || p.delDeltaSet[i] {
			continue
		}
		if de.Source == src && de.Target == dst && de.Label == l {
			p.delDelta = append(p.delDelta, i)
			p.delDeltaSet[i] = true
		}
	}
	for i, de := range p.newEdges {
		if p.delNewSet[i] {
			continue
		}
		if de.Source == src && de.Target == dst && de.Label == l {
			p.delNew = append(p.delNew, i)
			p.delNewSet[i] = true
		}
	}
	return nil
}

// commitLocked applies a validated plan to the authoritative delta state.
// It cannot fail.
func (s *Store) commitLocked(p *mutationPlan) MutateResult {
	var res MutateResult
	s.labels = p.dict
	baseN := s.base.NumNodes()
	for _, nn := range p.newNodes {
		id := NodeID(baseN + len(s.addedLabel))
		s.addedLabel = append(s.addedLabel, nn.label)
		if nn.label != NoLabel {
			s.addedByLabel[nn.label] = append(s.addedByLabel[nn.label], id)
		}
		if len(nn.types) > 0 {
			ts := dedupSortedLabels(nn.types)
			s.mergedTypes[id] = ts
			for _, t := range ts {
				s.typeAdds[t] = append(s.typeAdds[t], id)
			}
			res.TypesAdded += len(ts)
			s.typeAddCount += len(ts)
			s.ops += len(ts)
		}
		res.NodesAdded++
		s.ops++
	}
	for _, ta := range p.typeAdds {
		cur := s.currentTypesLocked(ta.n)
		if containsLabel(cur, ta.t) {
			continue
		}
		// Copy-on-write: published views may share cur.
		nts := make([]LabelID, 0, len(cur)+1)
		nts = append(nts, cur...)
		nts = append(nts, ta.t)
		sort.Slice(nts, func(i, j int) bool { return nts[i] < nts[j] })
		s.mergedTypes[ta.n] = nts
		s.typeAdds[ta.t] = append(s.typeAdds[ta.t], ta.n)
		res.TypesAdded++
		s.typeAddCount++
		s.ops++
	}
	newOff := len(s.deltaEdges)
	for _, e := range p.newEdges {
		s.deltaEdges = append(s.deltaEdges, e)
		s.deltaDead = append(s.deltaDead, false)
		res.EdgesAdded++
		s.ops++
	}
	for _, e := range p.delBase {
		s.baseDead[e] = struct{}{}
		s.deadCount++
		res.EdgesDeleted++
		s.ops++
	}
	for _, i := range p.delDelta {
		s.deltaDead[i] = true
		s.deadCount++
		res.EdgesDeleted++
		s.ops++
	}
	for _, i := range p.delNew {
		s.deltaDead[newOff+i] = true
		s.deadCount++
		res.EdgesDeleted++
		s.ops++
	}
	return res
}

func (s *Store) currentTypesLocked(n NodeID) []LabelID {
	if ts, ok := s.mergedTypes[n]; ok {
		return ts
	}
	if int(n) < s.base.NumNodes() {
		return s.base.nodeTypes[n]
	}
	return nil
}

func containsLabel(ts []LabelID, t LabelID) bool {
	for _, x := range ts {
		if x == t {
			return true
		}
	}
	return false
}

func dedupSortedLabels(ts []LabelID) []LabelID {
	out := append([]LabelID(nil), ts...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	k := 0
	for i, t := range out {
		if i == 0 || t != out[k-1] {
			out[k] = t
			k++
		}
	}
	return out[:k]
}

// ---------------------------------------------------------------------------
// Freeze: materialize the delta into an immutable overlay and publish the
// next epoch view.

func (s *Store) freezeLocked() {
	v := *s.base
	v.labels = s.labels
	v.fingerprint = s.fp
	v.epoch = s.epoch
	v.ov = nil
	if len(s.addedLabel) == 0 && len(s.deltaEdges) == 0 &&
		len(s.mergedTypes) == 0 && s.deadCount == 0 {
		// Empty delta (fresh store, or right after a compaction that
		// absorbed everything): the view IS the base, with the epoch
		// fingerprint — readers pay only the accessors' nil-check.
		s.cur.Store(&v)
		return
	}

	baseN := s.base.NumNodes()
	baseE := len(s.base.edges)
	ov := &overlay{
		baseNodes:  baseN,
		baseEdges:  baseE,
		numNodes:   baseN + len(s.addedLabel),
		numEdges:   baseE + len(s.deltaEdges),
		addedLabel: append([]LabelID(nil), s.addedLabel...),
		deltaEdges: append([]Edge(nil), s.deltaEdges...),
	}

	if s.deadCount > 0 {
		ov.deadBits = make([]uint64, (ov.numEdges+63)/64)
		for e := range s.baseDead {
			ov.markDead(e)
		}
		for i, d := range s.deltaDead {
			if d {
				ov.markDead(EdgeID(baseE + i))
			}
		}
	}

	// Adjacency: every endpoint of a live delta edge and of a deleted base
	// edge gets a materialized, merged list. Base prefix first (filtered),
	// then the delta edges in ID order — IDs stay ascending because every
	// delta ID exceeds every base ID.
	touched := make(map[NodeID]struct{})
	for i, de := range s.deltaEdges {
		if s.deltaDead[i] {
			continue
		}
		touched[de.Source] = struct{}{}
		touched[de.Target] = struct{}{}
	}
	for e := range s.baseDead {
		ed := s.base.edges[e]
		touched[ed.Source] = struct{}{}
		touched[ed.Target] = struct{}{}
	}
	ov.adj = make(map[NodeID][]EdgeID, len(touched))
	ov.out = make(map[NodeID][]EdgeID, len(touched))
	ov.in = make(map[NodeID][]EdgeID, len(touched))
	for n := range touched {
		if int(n) < baseN {
			ov.out[n] = filterEdges(s.base.OutEdges(n), s.baseDead)
			ov.in[n] = filterEdges(s.base.InEdges(n), s.baseDead)
			ov.adj[n] = filterEdges(s.base.IncidentEdges(n), s.baseDead)
		} else {
			// Added node: entry presence short-circuits the base fallback.
			ov.out[n], ov.in[n], ov.adj[n] = nil, nil, nil
		}
	}
	for i, de := range s.deltaEdges {
		if s.deltaDead[i] {
			continue
		}
		id := EdgeID(baseE + i)
		ov.out[de.Source] = append(ov.out[de.Source], id)
		ov.in[de.Target] = append(ov.in[de.Target], id)
		ov.adj[de.Source] = append(ov.adj[de.Source], id)
		if de.Target != de.Source {
			ov.adj[de.Target] = append(ov.adj[de.Target], id)
		}
	}

	// Edge label index: labels of live delta edges and of deleted base
	// edges changed membership.
	touchedEL := make(map[LabelID]struct{})
	for i, de := range s.deltaEdges {
		if !s.deltaDead[i] {
			touchedEL[de.Label] = struct{}{}
		}
	}
	for e := range s.baseDead {
		touchedEL[s.base.edges[e].Label] = struct{}{}
	}
	ov.labelEdges = make(map[LabelID][]EdgeID, len(touchedEL))
	for l := range touchedEL {
		ov.labelEdges[l] = filterEdges(s.base.EdgesWithLabel(l), s.baseDead)
	}
	for i, de := range s.deltaEdges {
		if !s.deltaDead[i] {
			ov.labelEdges[de.Label] = append(ov.labelEdges[de.Label], EdgeID(baseE+i))
		}
	}

	// Node label index: only added nodes change it (nodes are never
	// deleted or relabeled). Added IDs all exceed base IDs, so appending
	// keeps the list ascending.
	ov.labelNodes = make(map[LabelID][]NodeID, len(s.addedByLabel))
	for l, ns := range s.addedByLabel {
		base := s.base.NodesWithLabel(l)
		merged := make([]NodeID, 0, len(base)+len(ns))
		merged = append(merged, base...)
		merged = append(merged, ns...)
		ov.labelNodes[l] = merged
	}

	// Type index: a base node gaining a type may interleave with the base
	// membership, so this one is a real sorted merge.
	ov.typeNodes = make(map[LabelID][]NodeID, len(s.typeAdds))
	for t, ns := range s.typeAdds {
		adds := append([]NodeID(nil), ns...)
		sort.Slice(adds, func(i, j int) bool { return adds[i] < adds[j] })
		base := s.base.NodesWithType(t)
		merged := make([]NodeID, 0, len(base)+len(adds))
		bi := 0
		for _, a := range adds {
			for bi < len(base) && base[bi] < a {
				merged = append(merged, base[bi])
				bi++
			}
			merged = append(merged, a)
		}
		merged = append(merged, base[bi:]...)
		ov.typeNodes[t] = merged
	}

	// Per-node type lists: share the copy-on-write slices.
	ov.nodeTypes = make(map[NodeID][]LabelID, len(s.mergedTypes))
	for n, ts := range s.mergedTypes {
		ov.nodeTypes[n] = ts
	}

	v.ov = ov
	s.cur.Store(&v)
}

func filterEdges(list []EdgeID, dead map[EdgeID]struct{}) []EdgeID {
	out := make([]EdgeID, 0, len(list))
	for _, e := range list {
		if _, d := dead[e]; !d {
			out = append(out, e)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Compaction: rebuild a fresh CSR base from the current view, then replay
// whatever arrived mid-rebuild.

func (s *Store) maybeCompactLocked() {
	if s.threshold < 0 || s.compacting || s.ops < s.threshold {
		return
	}
	s.compacting = true
	pinned := s.cur.Load()
	logLen := len(s.batchLog)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.compact(pinned, logLen)
	}()
}

// CompactNow runs one compaction synchronously, regardless of threshold.
// It fails if a background compaction is already in flight.
func (s *Store) CompactNow() error {
	s.mu.Lock()
	if s.compacting {
		s.mu.Unlock()
		return fmt.Errorf("graph: compaction already in progress")
	}
	s.compacting = true
	pinned := s.cur.Load()
	logLen := len(s.batchLog)
	s.mu.Unlock()
	return s.compact(pinned, logLen)
}

func (s *Store) compact(pinned *Graph, logLen int) error {
	start := time.Now()
	newBase, err := rebuildSafe(pinned)
	if err == nil {
		err = s.swapBase(newBase, logLen)
	}
	s.mu.Lock()
	s.compacting = false
	if err != nil {
		s.compactAborts++
	} else {
		s.compactions++
		s.lastCompactNS = time.Since(start).Nanoseconds()
	}
	info := CompactionInfo{
		Epoch:    s.epoch,
		BaseGen:  s.baseGen,
		Duration: time.Since(start),
		Aborted:  err != nil,
		Err:      err,
	}
	// More delta may have accumulated while we rebuilt; go again rather
	// than wait for the next mutation (aborts don't retry on their own —
	// whatever killed this run would kill the next).
	if err == nil {
		s.maybeCompactLocked()
	}
	s.mu.Unlock()
	s.notifyCompaction(info)
	return err
}

// rebuildSafe builds the replacement base off-lock. Chaos faults (and any
// genuine rebuild panic) surface as an error: an aborted compaction leaves
// the store serving the overlay exactly as before.
func rebuildSafe(pinned *Graph) (g *Graph, err error) {
	defer func() {
		if r := recover(); r != nil {
			g, err = nil, fault.Recovered("graph: compaction", r)
		}
	}()
	if err := compactPoint.Err(); err != nil {
		return nil, err
	}
	return rebuildBase(pinned), nil
}

// swapBase installs the rebuilt base, resets the delta, and replays the
// batches that arrived after the rebuild pinned its view. Replay re-runs
// the normal plan/commit path — batches are expressed in labels, so they
// resolve identically against the logically-identical new base — without
// touching the epoch, fingerprint, or batch log head. On a replay error
// (which would take a logic bug, not bad input: every batch here applied
// cleanly once) the previous state is restored wholesale.
func (s *Store) swapBase(newBase *Graph, logLen int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	saved := deltaState{
		base:         s.base,
		labels:       s.labels,
		addedLabel:   s.addedLabel,
		addedByLabel: s.addedByLabel,
		mergedTypes:  s.mergedTypes,
		typeAdds:     s.typeAdds,
		deltaEdges:   s.deltaEdges,
		deltaDead:    s.deltaDead,
		baseDead:     s.baseDead,
		deadCount:    s.deadCount,
		typeAddCount: s.typeAddCount,
		ops:          s.ops,
		batchLog:     s.batchLog,
		baseGen:      s.baseGen,
	}
	replay := s.batchLog[logLen:]

	s.base = newBase
	s.labels = newBase.labels
	s.addedLabel = nil
	s.addedByLabel = make(map[LabelID][]NodeID)
	s.mergedTypes = make(map[NodeID][]LabelID)
	s.typeAdds = make(map[LabelID][]NodeID)
	s.deltaEdges = nil
	s.deltaDead = nil
	s.baseDead = make(map[EdgeID]struct{})
	s.deadCount = 0
	s.typeAddCount = 0
	s.ops = 0
	s.batchLog = append([]Batch(nil), replay...)
	s.baseGen++

	for _, b := range replay {
		plan, err := s.planLocked(b)
		if err == nil {
			s.commitLocked(plan)
			continue
		}
		// Restore the pre-swap state; the published view was not touched
		// and still matches it. The reset above installed fresh maps and
		// slices, so the saved references are intact.
		s.restoreLocked(saved)
		return fmt.Errorf("graph: compaction replay: %w", err)
	}
	s.freezeLocked()
	return nil
}

// deltaState is the restorable portion of a Store — everything swapBase
// rewrites when installing a rebuilt base.
type deltaState struct {
	base         *Graph
	labels       *Dict
	addedLabel   []LabelID
	addedByLabel map[LabelID][]NodeID
	mergedTypes  map[NodeID][]LabelID
	typeAdds     map[LabelID][]NodeID
	deltaEdges   []Edge
	deltaDead    []bool
	baseDead     map[EdgeID]struct{}
	deadCount    int
	typeAddCount int
	ops          int
	batchLog     []Batch
	baseGen      uint64
}

func (s *Store) restoreLocked(saved deltaState) {
	s.base = saved.base
	s.labels = saved.labels
	s.addedLabel = saved.addedLabel
	s.addedByLabel = saved.addedByLabel
	s.mergedTypes = saved.mergedTypes
	s.typeAdds = saved.typeAdds
	s.deltaEdges = saved.deltaEdges
	s.deltaDead = saved.deltaDead
	s.baseDead = saved.baseDead
	s.deadCount = saved.deadCount
	s.typeAddCount = saved.typeAddCount
	s.ops = saved.ops
	s.batchLog = saved.batchLog
	s.baseGen = saved.baseGen
}

// rebuildBase materializes v's logical content into a fresh frozen base:
// node IDs are preserved, dead edges are squeezed out (renumbering live
// ones), and the label dictionary is shared. Callers holding older views
// are unaffected — they keep their own arrays.
func rebuildBase(v *Graph) *Graph {
	n := v.NumNodes()
	g := &Graph{
		labels:    v.labels,
		nodeLabel: make([]LabelID, n),
		nodeTypes: make([][]LabelID, n),
		nodeProps: v.nodeProps, // node IDs are stable and props frozen: share
	}
	for i := 0; i < n; i++ {
		g.nodeLabel[i] = v.NodeLabelID(NodeID(i))
		if ts := v.NodeTypes(NodeID(i)); len(ts) > 0 {
			g.nodeTypes[i] = append([]LabelID(nil), ts...)
		}
	}
	total := v.NumEdges()
	g.edges = make([]Edge, 0, total)
	var remap map[EdgeID]EdgeID
	if len(v.edgeProps) > 0 {
		remap = make(map[EdgeID]EdgeID)
	}
	for e := 0; e < total; e++ {
		id := EdgeID(e)
		if !v.EdgeAlive(id) {
			continue
		}
		if remap != nil {
			remap[id] = EdgeID(len(g.edges))
		}
		g.edges = append(g.edges, v.Edge(id))
	}
	if len(v.edgeProps) > 0 {
		g.edgeProps = make(map[string]map[EdgeID]string, len(v.edgeProps))
		for p, m := range v.edgeProps {
			nm := make(map[EdgeID]string, len(m))
			for e, val := range m {
				if ne, ok := remap[e]; ok {
					nm[ne] = val
				}
			}
			g.edgeProps[p] = nm
		}
	}
	freezeIndexes(g)
	g.fingerprint = g.computeFingerprint()
	return g
}

// Compact returns a graph with the same logical content and no overlay:
// g itself when it already has none, otherwise a fresh frozen base (dead
// edges squeezed out, edge IDs renumbered, fingerprint recomputed from
// content). Snapshot serialization uses it so a live view persists its
// logical content, not its in-memory layout.
func (g *Graph) Compact() *Graph {
	if g.ov == nil {
		return g
	}
	return rebuildBase(g)
}

// batchDigest hashes a batch's operations, order-sensitively, for the
// epoch fingerprint chain: fp' = Mix(fp ^ digest). Strings hash by
// content, so the chain is stable across processes and replays.
func batchDigest(b Batch) uint64 {
	h := uint64(fingerprintSeed)
	mix := func(v uint64) { h = hash64.Mix(h ^ v) }
	str := func(s string) { mix(fnv64a(s)) }
	for _, n := range b.AddNodes {
		mix(1)
		str(n.Label)
		for _, t := range n.Types {
			str(t)
		}
	}
	for _, t := range b.AddTypes {
		mix(2)
		str(t.Node)
		str(t.Type)
	}
	for _, e := range b.AddEdges {
		mix(3)
		str(e.Source)
		str(e.Label)
		str(e.Target)
	}
	for _, e := range b.DelEdges {
		mix(4)
		str(e.Source)
		str(e.Label)
		str(e.Target)
	}
	return h
}
