package graph

import (
	"bytes"
	"errors"
	"testing"
)

func snapshotFixture(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder()
	a := b.AddNode("alpha")
	dup1 := b.AddNode("dup") // duplicate labels: triple text can't do this
	dup2 := b.AddNode("dup")
	anon := b.AddNodes(1) // empty label
	b.AddType(a, "t1")
	b.AddType(a, "t2")
	e := b.AddEdge(a, "rel", dup1)
	b.AddEdge(dup2, "rel", anon)
	b.AddEdge(anon, "", a) // empty edge label
	b.SetNodeProp(a, "age", "42")
	b.SetEdgeProp(e, "since", "2001")
	return b.Build()
}

func TestSnapshotRoundTrip(t *testing.T) {
	g := snapshotFixture(t)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("sizes: %d/%d nodes, %d/%d edges",
			g2.NumNodes(), g.NumNodes(), g2.NumEdges(), g.NumEdges())
	}
	for i := 0; i < g.NumNodes(); i++ {
		n := NodeID(i)
		if g2.NodeLabel(n) != g.NodeLabel(n) {
			t.Fatalf("node %d label %q != %q", i, g2.NodeLabel(n), g.NodeLabel(n))
		}
		if len(g2.NodeTypes(n)) != len(g.NodeTypes(n)) {
			t.Fatalf("node %d types differ", i)
		}
	}
	for i := 0; i < g.NumEdges(); i++ {
		e := EdgeID(i)
		if g2.Edge(e) != g.Edge(e) {
			t.Fatalf("edge %d differs: %+v vs %+v", i, g2.Edge(e), g.Edge(e))
		}
		if g2.EdgeLabel(e) != g.EdgeLabel(e) {
			t.Fatalf("edge %d label differs", i)
		}
	}
	if v, ok := g2.NodeProp("age", 0); !ok || v != "42" {
		t.Fatal("node property lost")
	}
	if v, ok := g2.EdgeProp("since", 0); !ok || v != "2001" {
		t.Fatal("edge property lost")
	}
	// Adjacency must be rebuilt identically.
	for i := 0; i < g.NumNodes(); i++ {
		if g2.Degree(NodeID(i)) != g.Degree(NodeID(i)) {
			t.Fatalf("node %d degree differs", i)
		}
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("CTPG"),                 // truncated after magic
		[]byte("CTPG\x63\x00\x00\x00"), // wrong version
		[]byte("CTPG\x01\x00\x00\x00\xff\xff\xff"), // truncated dictionary
	}
	for i, c := range cases {
		if _, err := ReadSnapshot(bytes.NewReader(c)); err == nil {
			t.Fatalf("case %d: garbage accepted", i)
		}
	}
}

func TestSnapshotRejectsTruncatedBody(t *testing.T) {
	g := snapshotFixture(t)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, g); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{len(full) / 4, len(full) / 2, len(full) - 3} {
		if _, err := ReadSnapshot(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestSnapshotRejectsOutOfRangeEdge(t *testing.T) {
	// Hand-build a snapshot with an edge referencing node 9.
	var buf bytes.Buffer
	buf.WriteString("CTPG")
	u32 := func(v uint32) { buf.Write([]byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)}) }
	u32(1) // version
	u32(1) // dictionary: only ε
	u32(0) // ε string length
	u32(1) // one node
	u32(0) // its label
	u32(0) // no types
	u32(1) // one edge
	u32(9) // source out of range
	u32(0) // label
	u32(0) // target
	u32(0) // node props
	u32(0) // edge props
	_, err := ReadSnapshot(&buf)
	var se *SnapshotError
	if err == nil || !errors.As(err, &se) {
		t.Fatalf("out-of-range edge accepted or unstructured error: %v", err)
	}
	if se.Section != "edges" {
		t.Fatalf("failure attributed to %q section, want edges: %v", se.Section, err)
	}
}
