package graph

// Dict interns label strings to dense LabelIDs. ID 0 is always the empty
// label ε. A Dict is append-only; lookups after Build are read-only and
// safe for concurrent use.
type Dict struct {
	byString map[string]LabelID
	byID     []string
}

// NewDict returns a dictionary pre-seeded with the empty label at ID 0.
func NewDict() *Dict {
	d := &Dict{byString: make(map[string]LabelID)}
	d.byString[""] = NoLabel
	d.byID = append(d.byID, "")
	return d
}

// Intern returns the ID for s, adding it if absent.
func (d *Dict) Intern(s string) LabelID {
	if id, ok := d.byString[s]; ok {
		return id
	}
	id := LabelID(len(d.byID))
	d.byString[s] = id
	d.byID = append(d.byID, s)
	return id
}

// Clone returns an independent copy of d. The Store write path clones the
// dictionary before interning a batch's new labels: published epoch views
// keep reading the old Dict (whose maps are never written again) while the
// clone absorbs the growth, so concurrent Lookup/String on a view never
// races a mutation.
func (d *Dict) Clone() *Dict {
	nd := &Dict{
		byString: make(map[string]LabelID, len(d.byString)),
		byID:     append([]string(nil), d.byID...),
	}
	for s, id := range d.byString {
		nd.byString[s] = id
	}
	return nd
}

// Lookup returns the ID for s without adding it.
func (d *Dict) Lookup(s string) (LabelID, bool) {
	id, ok := d.byString[s]
	return id, ok
}

// String returns the string for id.
func (d *Dict) String(id LabelID) string { return d.byID[id] }

// Len returns the number of interned labels, including ε.
func (d *Dict) Len() int { return len(d.byID) }
