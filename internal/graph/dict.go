package graph

// Dict interns label strings to dense LabelIDs. ID 0 is always the empty
// label ε. A Dict is append-only; lookups after Build are read-only and
// safe for concurrent use.
type Dict struct {
	byString map[string]LabelID
	byID     []string
}

// NewDict returns a dictionary pre-seeded with the empty label at ID 0.
func NewDict() *Dict {
	d := &Dict{byString: make(map[string]LabelID)}
	d.byString[""] = NoLabel
	d.byID = append(d.byID, "")
	return d
}

// Intern returns the ID for s, adding it if absent.
func (d *Dict) Intern(s string) LabelID {
	if id, ok := d.byString[s]; ok {
		return id
	}
	id := LabelID(len(d.byID))
	d.byString[s] = id
	d.byID = append(d.byID, s)
	return id
}

// Lookup returns the ID for s without adding it.
func (d *Dict) Lookup(s string) (LabelID, bool) {
	id, ok := d.byString[s]
	return id, ok
}

// String returns the string for id.
func (d *Dict) String(id LabelID) string { return d.byID[id] }

// Len returns the number of interned labels, including ε.
func (d *Dict) Len() int { return len(d.byID) }
