// Package baselines implements the comparison systems of Section 5.2. None
// of the systems the paper compared against could be bundled here (they
// are external engines or authors' research code), so each is rebuilt as
// the closest behavioural equivalent over our graph substrate; DESIGN.md
// §3 documents every substitution:
//
//   - VirtuosoCheck — SPARQL 1.1 property-path style reachability:
//     unidirectional, label-constrained or label-free, check-only (no
//     paths returned), like Virtuoso-SPARQL and the edited Virtuoso-SQL.
//   - Neo4jPaths — Cypher-style enumeration of all simple paths between
//     two node sets, directed or undirected, returning the paths.
//   - JEDIPaths — JEDI-style enumeration of all unidirectional data paths
//     matching a label-constrained property path.
//   - PostgresPaths — recursive-CTE evaluation returning label paths
//     (delegates to storage.RecursivePaths).
//   - QGSTP — a polynomial Group Steiner Tree approximation returning one
//     unidirectional result, standing in for the QGSTP code of Shi et al.
//   - Stitch — the path-stitching join the paper argues against (Section
//     2): combining per-pair paths at a shared endpoint, counting the
//     duplicates and non-tree combinations stitching produces.
package baselines

import (
	"time"

	"ctpquery/internal/graph"
	"ctpquery/internal/storage"
)

// PathOptions bounds the path-enumerating baselines.
type PathOptions struct {
	MaxDepth int           // maximum path length in edges (0 = 16)
	Limit    int           // stop after this many paths (0 = unlimited)
	Timeout  time.Duration // 0 = none
	Directed bool          // follow edge direction (Cypher allows both)
}

// CheckResult reports a reachability check.
type CheckResult struct {
	Reachable bool
	Visited   int // nodes expanded, a proxy for work done
}

// VirtuosoCheck performs the check-only, unidirectional reachability the
// Virtuoso baselines support: is some node of to reachable from some node
// of from along directed edges whose labels are all in labels (nil = any
// label, the Virtuoso-SQL variant)? No paths are returned — the
// limitation the paper highlights (Section 5.5.1).
func VirtuosoCheck(g *graph.Graph, from, to []graph.NodeID, labels []string) CheckResult {
	var allowed map[graph.LabelID]bool
	if len(labels) > 0 {
		allowed = make(map[graph.LabelID]bool, len(labels))
		for _, l := range labels {
			if id, ok := g.LabelIDOf(l); ok {
				allowed[id] = true
			}
		}
	}
	target := make(map[graph.NodeID]bool, len(to))
	for _, n := range to {
		target[n] = true
	}
	visited := make(map[graph.NodeID]bool, len(from))
	queue := make([]graph.NodeID, 0, len(from))
	for _, n := range from {
		if !visited[n] {
			visited[n] = true
			queue = append(queue, n)
		}
	}
	res := CheckResult{}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		res.Visited++
		if target[n] {
			res.Reachable = true
			return res
		}
		for _, e := range g.Out(n) {
			if allowed != nil && !allowed[g.EdgeLabelID(e)] {
				continue
			}
			d := g.Target(e)
			if !visited[d] {
				visited[d] = true
				queue = append(queue, d)
			}
		}
	}
	return res
}

// PathResult reports a path enumeration.
type PathResult struct {
	Paths    [][]graph.EdgeID
	TimedOut bool
}

// Neo4jPaths enumerates all simple paths between the two node sets, the
// Cypher MATCH p = (a)-[*]-(b) semantics. With Directed false (Cypher's
// default for undirected patterns) edges are traversed both ways. The
// enumeration is exponential; on CDF-scale graphs it times out, matching
// Section 5.5.1.
func Neo4jPaths(g *graph.Graph, from, to []graph.NodeID, opts PathOptions) PathResult {
	maxDepth := opts.MaxDepth
	if maxDepth <= 0 {
		maxDepth = 16
	}
	var deadline time.Time
	if opts.Timeout > 0 {
		deadline = time.Now().Add(opts.Timeout)
	}
	target := make(map[graph.NodeID]bool, len(to))
	for _, n := range to {
		target[n] = true
	}
	var res PathResult
	var path []graph.EdgeID
	onPath := make(map[graph.NodeID]bool)
	tick := 0

	var dfs func(n graph.NodeID) bool // returns false to abort
	dfs = func(n graph.NodeID) bool {
		tick++
		if opts.Timeout > 0 && tick&255 == 0 && time.Now().After(deadline) {
			res.TimedOut = true
			return false
		}
		if target[n] && len(path) > 0 {
			cp := make([]graph.EdgeID, len(path))
			copy(cp, path)
			res.Paths = append(res.Paths, cp)
			if opts.Limit > 0 && len(res.Paths) >= opts.Limit {
				return false
			}
			// Cypher keeps extending past a match only for longer paths to
			// other targets; simple-path semantics allow it, so continue.
		}
		if len(path) >= maxDepth {
			return true
		}
		edges := g.Incident(n)
		if opts.Directed {
			edges = g.Out(n)
		}
		for _, e := range edges {
			o := g.Other(e, n)
			if opts.Directed {
				o = g.Target(e)
			}
			if onPath[o] {
				continue
			}
			onPath[o] = true
			path = append(path, e)
			ok := dfs(o)
			path = path[:len(path)-1]
			delete(onPath, o)
			if !ok {
				return false
			}
		}
		return true
	}

	for _, s := range from {
		if target[s] {
			res.Paths = append(res.Paths, nil) // zero-length path
		}
		onPath[s] = true
		if !dfs(s) {
			delete(onPath, s)
			return res
		}
		delete(onPath, s)
	}
	return res
}

// JEDIPaths enumerates all unidirectional data paths whose edge labels
// are drawn from the given label set (the property-path constraint JEDI
// evaluates), returning the paths.
func JEDIPaths(ts *storage.TripleStore, from, to []graph.NodeID, labels []string, opts PathOptions) PathResult {
	rows, timedOut := ts.RecursivePaths(from, to, storage.RecursiveOptions{
		MaxDepth: opts.MaxDepth,
		Labels:   labels,
		Timeout:  opts.Timeout,
		Limit:    opts.Limit,
	})
	return pathResult(rows, timedOut)
}

// PostgresPaths evaluates the recursive-CTE baseline: all directed paths
// between the sets, any labels, label sequences returnable.
func PostgresPaths(ts *storage.TripleStore, from, to []graph.NodeID, opts PathOptions) PathResult {
	rows, timedOut := ts.RecursivePaths(from, to, storage.RecursiveOptions{
		MaxDepth: opts.MaxDepth,
		Timeout:  opts.Timeout,
		Limit:    opts.Limit,
	})
	return pathResult(rows, timedOut)
}

func pathResult(rows []storage.PathRow, timedOut bool) PathResult {
	res := PathResult{TimedOut: timedOut}
	for _, r := range rows {
		res.Paths = append(res.Paths, r.Edges)
	}
	return res
}
