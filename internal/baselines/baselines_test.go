package baselines

import (
	"testing"
	"time"

	"ctpquery/internal/gen"
	"ctpquery/internal/graph"
	"ctpquery/internal/storage"
	"ctpquery/internal/tree"
)

func TestVirtuosoCheckDirected(t *testing.T) {
	w := gen.Line(2, 2, gen.Forward) // A -> x -> y -> B
	r := VirtuosoCheck(w.Graph, w.Seeds[0], w.Seeds[1], nil)
	if !r.Reachable || r.Visited == 0 {
		t.Fatalf("forward reachability failed: %+v", r)
	}
	// Unidirectional: B cannot reach A.
	back := VirtuosoCheck(w.Graph, w.Seeds[1], w.Seeds[0], nil)
	if back.Reachable {
		t.Fatal("check-only baseline must be unidirectional")
	}
	// Alternating directions break directed reachability entirely.
	alt := gen.Line(2, 2, gen.Alternate)
	if VirtuosoCheck(alt.Graph, alt.Seeds[0], alt.Seeds[1], nil).Reachable {
		t.Fatal("alternating line should not be directed-reachable")
	}
}

func TestVirtuosoCheckLabelled(t *testing.T) {
	w := gen.Chain(4)
	if !VirtuosoCheck(w.Graph, w.Seeds[0], w.Seeds[1], []string{"a"}).Reachable {
		t.Fatal("a-labelled path exists")
	}
	if VirtuosoCheck(w.Graph, w.Seeds[0], w.Seeds[1], []string{"zzz"}).Reachable {
		t.Fatal("no zzz-labelled path exists")
	}
}

func TestVirtuosoCheckSelf(t *testing.T) {
	g := gen.Sample()
	alice, _ := g.NodeByLabel("Alice")
	if !VirtuosoCheck(g, []graph.NodeID{alice}, []graph.NodeID{alice}, nil).Reachable {
		t.Fatal("a node reaches itself")
	}
}

func TestNeo4jPathsUndirected(t *testing.T) {
	w := gen.Line(2, 2, gen.Alternate) // mixed directions
	r := Neo4jPaths(w.Graph, w.Seeds[0], w.Seeds[1], PathOptions{})
	if len(r.Paths) != 1 || len(r.Paths[0]) != 3 {
		t.Fatalf("undirected paths = %v", r.Paths)
	}
	// Directed mode finds nothing on the alternating line.
	rd := Neo4jPaths(w.Graph, w.Seeds[0], w.Seeds[1], PathOptions{Directed: true})
	if len(rd.Paths) != 0 {
		t.Fatal("directed mode should fail on alternating line")
	}
}

func TestNeo4jPathsChainCount(t *testing.T) {
	w := gen.Chain(5)
	r := Neo4jPaths(w.Graph, w.Seeds[0], w.Seeds[1], PathOptions{MaxDepth: 10})
	if len(r.Paths) != 32 {
		t.Fatalf("paths = %d, want 32", len(r.Paths))
	}
	// Limit cuts the enumeration short.
	rl := Neo4jPaths(w.Graph, w.Seeds[0], w.Seeds[1], PathOptions{Limit: 5})
	if len(rl.Paths) != 5 {
		t.Fatalf("limited paths = %d, want 5", len(rl.Paths))
	}
}

func TestNeo4jPathsTimeout(t *testing.T) {
	w := gen.Chain(20)
	r := Neo4jPaths(w.Graph, w.Seeds[0], w.Seeds[1], PathOptions{
		MaxDepth: 25, Timeout: time.Nanosecond})
	if !r.TimedOut {
		t.Fatal("timeout not reported")
	}
}

func TestNeo4jZeroLengthPath(t *testing.T) {
	g := gen.Sample()
	alice, _ := g.NodeByLabel("Alice")
	r := Neo4jPaths(g, []graph.NodeID{alice}, []graph.NodeID{alice}, PathOptions{MaxDepth: 1})
	if len(r.Paths) == 0 || len(r.Paths[0]) != 0 {
		t.Fatal("self-path missing")
	}
}

func TestJEDIAndPostgresPaths(t *testing.T) {
	w := gen.Chain(4)
	ts := storage.NewTripleStore(w.Graph)
	jedi := JEDIPaths(ts, w.Seeds[0], w.Seeds[1], []string{"a"}, PathOptions{})
	if len(jedi.Paths) != 1 {
		t.Fatalf("JEDI a-paths = %d, want 1", len(jedi.Paths))
	}
	pg := PostgresPaths(ts, w.Seeds[0], w.Seeds[1], PathOptions{})
	if len(pg.Paths) != 16 {
		t.Fatalf("Postgres paths = %d, want 16", len(pg.Paths))
	}
}

func TestQGSTPOnStar(t *testing.T) {
	w := gen.Star(4, 2, gen.Forward) // center -> ... -> seeds
	groups := w.Seeds
	r := QGSTP(w.Graph, groups)
	if !r.Found {
		t.Fatal("QGSTP found nothing")
	}
	if lbl := w.Graph.NodeLabel(r.Root); lbl != "center" {
		t.Fatalf("root = %q, want center", lbl)
	}
	if len(r.Edges) != w.Graph.NumEdges() {
		t.Fatalf("tree size = %d, want the whole star %d", len(r.Edges), w.Graph.NumEdges())
	}
	if !tree.IsTree(w.Graph, r.Edges) {
		t.Fatal("QGSTP returned a non-tree")
	}
	// The result must be unidirectional from the root.
	if root, ok := tree.UnidirectionalRoot(w.Graph, r.Edges); !ok || root != r.Root {
		t.Fatal("QGSTP result not rooted-directed")
	}
}

func TestQGSTPUnreachable(t *testing.T) {
	// Two disconnected nodes: no tree connects the groups.
	b := graph.NewBuilder()
	a := b.AddNode("a")
	c := b.AddNode("c")
	g := b.Build()
	r := QGSTP(g, [][]graph.NodeID{{a}, {c}})
	if r.Found {
		t.Fatal("disconnected groups should not be connectable")
	}
	if QGSTP(g, nil).Found {
		t.Fatal("no groups should yield nothing")
	}
}

func TestQGSTPDirectionality(t *testing.T) {
	// A <- x -> B: x reaches both seeds; seeds reach nothing.
	b := graph.NewBuilder()
	a := b.AddNode("A")
	x := b.AddNode("x")
	bb := b.AddNode("B")
	b.AddEdge(x, "t", a)
	b.AddEdge(x, "t", bb)
	g := b.Build()
	r := QGSTP(g, [][]graph.NodeID{{a}, {bb}})
	if !r.Found || r.Root != x || len(r.Edges) != 2 {
		t.Fatalf("QGSTP = %+v", r)
	}
	// Flip one edge: no single root reaches both.
	b2 := graph.NewBuilder()
	a2 := b2.AddNode("A")
	x2 := b2.AddNode("x")
	bb2 := b2.AddNode("B")
	b2.AddEdge(a2, "t", x2)
	b2.AddEdge(x2, "t", bb2)
	g2 := b2.Build()
	r2 := QGSTP(g2, [][]graph.NodeID{{a2}, {bb2}})
	if !r2.Found || r2.Root != a2 {
		t.Fatalf("chain QGSTP = %+v", r2)
	}
}

func TestQGSTPPicksShortestConnection(t *testing.T) {
	// Two candidate roots: one 2-hop, one 4-hop star; QGSTP must choose
	// the cheaper one.
	b := graph.NewBuilder()
	a := b.AddNode("A")
	c := b.AddNode("B")
	near := b.AddNode("near")
	far1 := b.AddNode("f1")
	far2 := b.AddNode("f2")
	far := b.AddNode("far")
	b.AddEdge(near, "t", a)
	b.AddEdge(near, "t", c)
	b.AddEdge(far, "t", far1)
	b.AddEdge(far1, "t", a)
	b.AddEdge(far, "t", far2)
	b.AddEdge(far2, "t", c)
	g := b.Build()
	r := QGSTP(g, [][]graph.NodeID{{a}, {c}})
	if !r.Found || r.Root != near || len(r.Edges) != 2 {
		t.Fatalf("QGSTP chose %v (%d edges), want root near with 2 edges",
			g.NodeLabel(r.Root), len(r.Edges))
	}
}

func TestStitchCountsDuplicatesAndNonTrees(t *testing.T) {
	// A Y: r -> b1, r -> b2, plus a path t -> r. Paths from r: to b1 and
	// b2. Stitching paths (r ~> b1) with (r ~> b2) gives the tree; pairing
	// a path with itself is non-tree (same edge) or duplicate.
	b := graph.NewBuilder()
	top := b.AddNode("t")
	r := b.AddNode("r")
	b1 := b.AddNode("b1")
	b2 := b.AddNode("b2")
	e0 := b.AddEdge(top, "l", r)
	e1 := b.AddEdge(r, "l", b1)
	e2 := b.AddEdge(r, "l", b2)
	g := b.Build()
	isSeed := func(n graph.NodeID) bool { return n == top || n == b1 || n == b2 }

	pTo1 := []storage.PathRow{{Src: top, Dst: b1, Edges: []graph.EdgeID{e0, e1}}}
	pTo2 := []storage.PathRow{{Src: top, Dst: b2, Edges: []graph.EdgeID{e0, e2}}}
	res := Stitch(g, pTo1, pTo2, isSeed)
	if res.Raw != 1 || res.Trees != 1 || res.NonTree != 0 {
		t.Fatalf("stitch = %+v", res)
	}
}

func TestStitchDuplicateTrees(t *testing.T) {
	b := graph.NewBuilder()
	top := b.AddNode("t")
	r := b.AddNode("r")
	b1 := b.AddNode("b1")
	b2 := b.AddNode("b2")
	e0 := b.AddEdge(top, "l", r)
	e1 := b.AddEdge(r, "l", b1)
	e2 := b.AddEdge(r, "l", b2)
	g := b.Build()
	isSeed := func(n graph.NodeID) bool { return n == top || n == b1 || n == b2 }
	pTo1 := []storage.PathRow{{Src: top, Dst: b1, Edges: []graph.EdgeID{e0, e1}}}
	pTo2 := []storage.PathRow{
		{Src: top, Dst: b2, Edges: []graph.EdgeID{e0, e2}},
		{Src: top, Dst: b2, Edges: []graph.EdgeID{e0, e2}},
	}
	res := Stitch(g, pTo1, pTo2, isSeed)
	if res.Raw != 2 || res.Trees != 1 || res.Duplicates != 1 {
		t.Fatalf("stitch = %+v", res)
	}
}

func TestStitchNonTree(t *testing.T) {
	// Two paths sharing an intermediate node beyond the junction: their
	// union has a cycle — not a tree.
	b := graph.NewBuilder()
	s := b.AddNode("s")
	x := b.AddNode("x")
	y := b.AddNode("y")
	d1 := b.AddNode("d1")
	e0 := b.AddEdge(s, "l", x)
	e1 := b.AddEdge(s, "l", y)
	e2 := b.AddEdge(x, "l", d1)
	e3 := b.AddEdge(y, "l", d1)
	g := b.Build()
	isSeed := func(n graph.NodeID) bool { return n == s || n == d1 }
	p1 := []storage.PathRow{{Src: s, Dst: d1, Edges: []graph.EdgeID{e0, e2}}}
	p2 := []storage.PathRow{{Src: s, Dst: d1, Edges: []graph.EdgeID{e1, e3}}}
	res := Stitch(g, p1, p2, isSeed)
	if res.NonTree != 1 || res.Trees != 0 {
		t.Fatalf("stitch = %+v", res)
	}
}
