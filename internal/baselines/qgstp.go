package baselines

import (
	"ctpquery/internal/graph"
	"ctpquery/internal/tree"
)

// GSTResult is the single tree a Group Steiner Tree approximation returns.
type GSTResult struct {
	Root    graph.NodeID
	Edges   []graph.EdgeID
	Seeds   []graph.NodeID // the chosen group representatives
	Found   bool
	Visited int // BFS work, for effort comparisons
}

// QGSTP approximates the (unidirectional) Group Steiner Tree connecting
// one node from each group, standing in for the QGSTP system of Shi et
// al. used as the Figure 12 baseline. It is the classical polynomial
// shortest-path-star approximation:
//
//  1. for each group, a reverse BFS computes, for every node v, the
//     directed distance from v to the nearest group member and the first
//     edge on that shortest path;
//  2. the connecting root is the node minimizing the total distance to
//     all groups;
//  3. the answer is the union of the root's shortest paths, reduced to a
//     tree and minimized.
//
// Like the original, it runs in polynomial time, traverses edges
// unidirectionally, and returns exactly one result (the paper aligned the
// comparison by running MoLESP with UNI and LIMIT 1). It returns Found ==
// false when no node reaches every group.
func QGSTP(g *graph.Graph, groups [][]graph.NodeID) GSTResult {
	n := g.NumNodes()
	res := GSTResult{}
	if len(groups) == 0 {
		return res
	}
	const inf = int32(1) << 30
	dist := make([][]int32, len(groups))
	via := make([][]graph.EdgeID, len(groups))
	for gi, group := range groups {
		d := make([]int32, n)
		v := make([]graph.EdgeID, n)
		for i := range d {
			d[i] = inf
			v[i] = -1
		}
		queue := make([]graph.NodeID, 0, len(group))
		for _, s := range group {
			if d[s] == inf {
				d[s] = 0
				queue = append(queue, s)
			}
		}
		// Reverse BFS: relax edges e = (u -> w) from w to u, so d[u] is
		// the directed distance u ~> group.
		for len(queue) > 0 {
			w := queue[0]
			queue = queue[1:]
			res.Visited++
			for _, e := range g.In(w) {
				u := g.Source(e)
				if d[u] == inf {
					d[u] = d[w] + 1
					v[u] = e
					queue = append(queue, u)
				}
			}
		}
		dist[gi] = d
		via[gi] = v
	}

	// Root selection: minimize the distance sum.
	best := inf
	bestNode := graph.NodeID(-1)
	for i := 0; i < n; i++ {
		total := int32(0)
		ok := true
		for gi := range groups {
			d := dist[gi][i]
			if d >= inf {
				ok = false
				break
			}
			total += d
		}
		if ok && total < best {
			best = total
			bestNode = graph.NodeID(i)
		}
	}
	if bestNode < 0 {
		return res
	}

	// Union of the shortest paths root ~> each group.
	edgeSet := make(map[graph.EdgeID]bool)
	isSeed := make(map[graph.NodeID]bool)
	for gi := range groups {
		at := bestNode
		for dist[gi][at] > 0 {
			e := via[gi][at]
			edgeSet[e] = true
			at = g.Target(e)
		}
		isSeed[at] = true
		res.Seeds = append(res.Seeds, at)
	}
	edges := make([]graph.EdgeID, 0, len(edgeSet))
	for e := range edgeSet {
		edges = append(edges, e)
	}
	// The union of shortest paths can contain convergent branches; extract
	// a tree by BFS from the root within the union, then peel non-seed
	// leaves (the root itself counts as required so a root-only tree for
	// coinciding groups stays valid).
	treeEdges := spanFromRoot(g, bestNode, edges)
	isSeed[bestNode] = true
	res.Edges = tree.Minimize(g, treeEdges, func(n graph.NodeID) bool { return isSeed[n] })
	res.Root = bestNode
	res.Found = true
	return res
}

// spanFromRoot extracts a BFS spanning tree of the subgraph induced by
// edges, rooted at root, following edge direction.
func spanFromRoot(g *graph.Graph, root graph.NodeID, edges []graph.EdgeID) []graph.EdgeID {
	outEdges := make(map[graph.NodeID][]graph.EdgeID)
	for _, e := range edges {
		s := g.Source(e)
		outEdges[s] = append(outEdges[s], e)
	}
	var span []graph.EdgeID
	visited := map[graph.NodeID]bool{root: true}
	queue := []graph.NodeID{root}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, e := range outEdges[u] {
			w := g.Target(e)
			if visited[w] {
				continue
			}
			visited[w] = true
			span = append(span, e)
			queue = append(queue, w)
		}
	}
	return span
}
