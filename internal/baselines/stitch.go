package baselines

import (
	"sort"

	"ctpquery/internal/graph"
	"ctpquery/internal/storage"
	"ctpquery/internal/tree"
)

// StitchResult quantifies what happens when per-pair paths are joined at
// a shared endpoint to emulate a 3-way connection — the "path stitching"
// approach Section 2 shows to be semantically different from CTP results:
// the raw join count includes duplicates (each n-node tree appears once
// per stitching root) and combinations that are not trees at all (paths
// sharing nodes or edges beyond the junction).
type StitchResult struct {
	Raw        int // all (p1, p2) combinations sharing the junction
	NonTree    int // combinations whose union is not a tree
	Duplicates int // tree combinations whose edge set was already produced
	Trees      int // distinct minimal trees after dedup + minimization
}

// Stitch joins two path sets on their shared Src endpoint (the common
// root) and classifies every combination. isSeed marks the CTP's seed
// nodes, needed to minimize the stitched trees for a fair comparison with
// set-based CTP results.
func Stitch(g *graph.Graph, a, b []storage.PathRow, isSeed func(graph.NodeID) bool) StitchResult {
	byRoot := make(map[graph.NodeID][]storage.PathRow)
	for _, p := range b {
		byRoot[p.Src] = append(byRoot[p.Src], p)
	}
	var res StitchResult
	seen := make(map[string]bool)
	for _, p1 := range a {
		for _, p2 := range byRoot[p1.Src] {
			res.Raw++
			union := unionEdges(p1.Edges, p2.Edges)
			if !tree.IsTree(g, union) {
				res.NonTree++
				continue
			}
			min := tree.Minimize(g, union, isSeed)
			key := tree.EdgeSetKey(min)
			if seen[key] {
				res.Duplicates++
				continue
			}
			seen[key] = true
			res.Trees++
		}
	}
	return res
}

func unionEdges(a, b []graph.EdgeID) []graph.EdgeID {
	set := make(map[graph.EdgeID]bool, len(a)+len(b))
	for _, e := range a {
		set[e] = true
	}
	for _, e := range b {
		set[e] = true
	}
	out := make([]graph.EdgeID, 0, len(set))
	for e := range set {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
