package storage

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// Property: NaturalJoin agrees with a naive nested-loop join on random
// tables sharing a random subset of columns.
func TestQuickNaturalJoinAgainstNestedLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 120; trial++ {
		// Random schemas over a tiny column universe so overlaps happen.
		universe := []string{"a", "b", "c", "d"}
		colsA := randomCols(rng, universe)
		colsB := randomCols(rng, universe)
		ta := randomTable(rng, colsA, 1+rng.Intn(8), 4)
		tb := randomTable(rng, colsB, 1+rng.Intn(8), 4)

		got := NaturalJoin(ta, tb)
		want := nestedLoopJoin(ta, tb)
		if got.NumRows() != len(want) {
			t.Fatalf("trial %d: join rows = %d, want %d\nA:\n%sB:\n%s",
				trial, got.NumRows(), len(want), ta, tb)
		}
		gotSet := map[string]int{}
		for i := 0; i < got.NumRows(); i++ {
			gotSet[rowKey(got.Row(i))]++
		}
		wantSet := map[string]int{}
		for _, r := range want {
			wantSet[rowKey(r)]++
		}
		for k, n := range wantSet {
			if gotSet[k] != n {
				t.Fatalf("trial %d: multiplicity mismatch for %q: %d vs %d",
					trial, k, gotSet[k], n)
			}
		}
	}
}

func randomCols(rng *rand.Rand, universe []string) []string {
	n := 1 + rng.Intn(3)
	perm := rng.Perm(len(universe))
	cols := make([]string, n)
	for i := 0; i < n; i++ {
		cols[i] = universe[perm[i]]
	}
	sort.Strings(cols)
	return cols
}

func randomTable(rng *rand.Rand, cols []string, rows, domain int) *Table {
	t := NewTable(cols...)
	for i := 0; i < rows; i++ {
		vals := make([]int32, len(cols))
		for j := range vals {
			vals[j] = int32(rng.Intn(domain))
		}
		t.AddRow(vals...)
	}
	return t
}

// nestedLoopJoin is the obviously correct reference: for every row pair,
// check shared-column equality and emit a's row followed by b's extras.
func nestedLoopJoin(a, b *Table) [][]int32 {
	var shared [][2]int
	var bExtra []int
	for bi, c := range b.Cols() {
		if ai := a.Column(c); ai >= 0 {
			shared = append(shared, [2]int{ai, bi})
		} else {
			bExtra = append(bExtra, bi)
		}
	}
	var out [][]int32
	for i := 0; i < a.NumRows(); i++ {
		ra := a.Row(i)
		for j := 0; j < b.NumRows(); j++ {
			rb := b.Row(j)
			match := true
			for _, s := range shared {
				if ra[s[0]] != rb[s[1]] {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			row := append(append([]int32{}, ra...), pick(rb, bExtra)...)
			out = append(out, row)
		}
	}
	return out
}

func pick(row []int32, idx []int) []int32 {
	out := make([]int32, len(idx))
	for i, j := range idx {
		out[i] = row[j]
	}
	return out
}

func rowKey(r []int32) string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = fmt.Sprint(v)
	}
	return strings.Join(parts, ",")
}
