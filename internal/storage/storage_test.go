package storage

import (
	"strings"
	"testing"
	"time"

	"ctpquery/internal/gen"
	"ctpquery/internal/graph"
)

func TestTableBasics(t *testing.T) {
	tb := NewTable("x", "y")
	tb.AddRow(1, 2)
	tb.AddRow(3, 4)
	if tb.NumRows() != 2 || tb.Column("y") != 1 || tb.Column("z") != -1 {
		t.Fatalf("table basics broken: %s", tb)
	}
	if !tb.HasColumn("x") || tb.HasColumn("q") {
		t.Fatal("HasColumn wrong")
	}
	if got := tb.Row(1)[1]; got != 4 {
		t.Fatalf("Row = %d", got)
	}
	if !strings.Contains(tb.String(), "3\t4") {
		t.Fatalf("String = %q", tb.String())
	}
}

func TestTablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate columns should panic")
		}
	}()
	NewTable("a", "a")
}

func TestAddRowArityPanics(t *testing.T) {
	tb := NewTable("a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("wrong arity should panic")
		}
	}()
	tb.AddRow(1)
}

func TestProject(t *testing.T) {
	tb := NewTable("a", "b", "c")
	tb.AddRow(1, 2, 3)
	tb.AddRow(4, 5, 6)
	p, err := tb.Project("c", "a")
	if err != nil {
		t.Fatal(err)
	}
	if p.NumRows() != 2 || p.Row(0)[0] != 3 || p.Row(0)[1] != 1 {
		t.Fatalf("projection wrong: %s", p)
	}
	if _, err := tb.Project("nope"); err == nil {
		t.Fatal("unknown column should error")
	}
}

func TestDistinct(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow(1, 2)
	tb.AddRow(1, 2)
	tb.AddRow(2, 1)
	d := tb.Distinct()
	if d.NumRows() != 2 {
		t.Fatalf("distinct = %d rows", d.NumRows())
	}
	if d.Row(0)[0] != 1 || d.Row(1)[0] != 2 {
		t.Fatal("distinct must preserve first-occurrence order")
	}
}

func TestSelect(t *testing.T) {
	tb := NewTable("a")
	for i := int32(0); i < 10; i++ {
		tb.AddRow(i)
	}
	s := tb.Select(func(row []int32) bool { return row[0]%2 == 0 })
	if s.NumRows() != 5 {
		t.Fatalf("select = %d rows", s.NumRows())
	}
}

func TestColumnValues(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow(3, 0)
	tb.AddRow(1, 0)
	tb.AddRow(3, 1)
	vals, err := tb.ColumnValues("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 || vals[0] != 1 || vals[1] != 3 {
		t.Fatalf("values = %v", vals)
	}
	if _, err := tb.ColumnValues("zz"); err == nil {
		t.Fatal("unknown column should error")
	}
}

func TestNaturalJoinShared(t *testing.T) {
	a := NewTable("x", "y")
	a.AddRow(1, 10)
	a.AddRow(2, 20)
	a.AddRow(3, 30)
	b := NewTable("y", "z")
	b.AddRow(10, 100)
	b.AddRow(10, 101)
	b.AddRow(30, 300)
	j := NaturalJoin(a, b)
	if got := j.Cols(); len(got) != 3 || got[0] != "x" || got[1] != "y" || got[2] != "z" {
		t.Fatalf("join cols = %v", got)
	}
	if j.NumRows() != 3 {
		t.Fatalf("join rows = %d, want 3\n%s", j.NumRows(), j)
	}
	// (1,10) joins twice, (3,30) once, (2,20) never.
	count1 := 0
	for i := 0; i < j.NumRows(); i++ {
		r := j.Row(i)
		if r[0] == 1 {
			count1++
		}
		if r[0] == 2 {
			t.Fatal("dangling tuple joined")
		}
	}
	if count1 != 2 {
		t.Fatalf("x=1 joined %d times, want 2", count1)
	}
}

func TestNaturalJoinMultiColumn(t *testing.T) {
	a := NewTable("x", "y")
	a.AddRow(1, 2)
	a.AddRow(1, 3)
	b := NewTable("x", "y", "z")
	b.AddRow(1, 2, 9)
	b.AddRow(1, 9, 9)
	j := NaturalJoin(a, b)
	if j.NumRows() != 1 || j.Row(0)[2] != 9 {
		t.Fatalf("multi-column join wrong:\n%s", j)
	}
}

func TestNaturalJoinCross(t *testing.T) {
	a := NewTable("x")
	a.AddRow(1)
	a.AddRow(2)
	b := NewTable("y")
	b.AddRow(7)
	b.AddRow(8)
	j := NaturalJoin(a, b)
	if j.NumRows() != 4 {
		t.Fatalf("cross product = %d rows", j.NumRows())
	}
}

func TestNaturalJoinBuildSideChoice(t *testing.T) {
	// Join result must be identical regardless of which side is smaller.
	small := NewTable("k", "a")
	small.AddRow(1, 5)
	large := NewTable("k", "b")
	for i := int32(0); i < 20; i++ {
		large.AddRow(i%3, i)
	}
	j1 := NaturalJoin(small, large)
	j2 := NaturalJoin(large, small)
	if j1.NumRows() != j2.NumRows() {
		t.Fatalf("asymmetric join: %d vs %d", j1.NumRows(), j2.NumRows())
	}
	// Column order differs (a's columns first), but the k=1 matches agree.
	if j1.NumRows() == 0 {
		t.Fatal("no matches")
	}
}

func TestTripleStoreScan(t *testing.T) {
	g := gen.Sample()
	s := NewTripleStore(g)
	if s.Graph() != g {
		t.Fatal("Graph accessor")
	}
	all := s.Scan()
	if all.NumRows() != g.NumEdges() {
		t.Fatalf("scan = %d rows", all.NumRows())
	}
	cit := s.ScanLabel("citizenOf")
	if cit.NumRows() != 5 {
		t.Fatalf("citizenOf scan = %d rows", cit.NumRows())
	}
	if s.ScanLabel("absent").NumRows() != 0 {
		t.Fatal("absent label scan should be empty")
	}
}

func TestRecursivePathsLine(t *testing.T) {
	w := gen.Line(2, 3, gen.Forward) // A -> x -> y -> z -> B
	s := NewTripleStore(w.Graph)
	paths, timedOut := s.RecursivePaths(w.Seeds[0], w.Seeds[1], RecursiveOptions{MaxDepth: 10})
	if timedOut {
		t.Fatal("unexpected timeout")
	}
	if len(paths) != 1 || len(paths[0].Edges) != 4 {
		t.Fatalf("paths = %v", paths)
	}
	if len(s.Labels(paths[0])) != 4 {
		t.Fatal("labels wrong")
	}
	// Reverse direction: no directed path from B to A.
	back, _ := s.RecursivePaths(w.Seeds[1], w.Seeds[0], RecursiveOptions{MaxDepth: 10})
	if len(back) != 0 {
		t.Fatalf("directed search found reverse path: %v", back)
	}
}

func TestRecursivePathsChainCountsAllCombinations(t *testing.T) {
	w := gen.Chain(5) // 2^5 directed paths end to end
	s := NewTripleStore(w.Graph)
	paths, _ := s.RecursivePaths(w.Seeds[0], w.Seeds[1], RecursiveOptions{MaxDepth: 10})
	if len(paths) != 32 {
		t.Fatalf("paths = %d, want 32", len(paths))
	}
}

func TestRecursivePathsDepthBound(t *testing.T) {
	w := gen.Line(2, 5, gen.Forward) // 6-edge path
	s := NewTripleStore(w.Graph)
	paths, _ := s.RecursivePaths(w.Seeds[0], w.Seeds[1], RecursiveOptions{MaxDepth: 3})
	if len(paths) != 0 {
		t.Fatal("depth bound ignored")
	}
}

func TestRecursivePathsLabelFilterAndLimit(t *testing.T) {
	w := gen.Chain(4)
	s := NewTripleStore(w.Graph)
	onlyA, _ := s.RecursivePaths(w.Seeds[0], w.Seeds[1], RecursiveOptions{Labels: []string{"a"}})
	if len(onlyA) != 1 {
		t.Fatalf("label-filtered paths = %d, want 1", len(onlyA))
	}
	limited, _ := s.RecursivePaths(w.Seeds[0], w.Seeds[1], RecursiveOptions{Limit: 3})
	if len(limited) != 3 {
		t.Fatalf("limited paths = %d, want 3", len(limited))
	}
}

func TestRecursivePathsSelfSource(t *testing.T) {
	g := gen.Sample()
	s := NewTripleStore(g)
	alice, _ := g.NodeByLabel("Alice")
	paths, _ := s.RecursivePaths([]graph.NodeID{alice}, []graph.NodeID{alice}, RecursiveOptions{})
	if len(paths) != 1 || len(paths[0].Edges) != 0 {
		t.Fatalf("self path = %v", paths)
	}
}

func TestRecursivePathsTimeout(t *testing.T) {
	w := gen.Chain(20)
	s := NewTripleStore(w.Graph)
	_, timedOut := s.RecursivePaths(w.Seeds[0], w.Seeds[1], RecursiveOptions{
		MaxDepth: 25, Timeout: time.Nanosecond})
	if !timedOut {
		t.Fatal("timeout not reported")
	}
}

func TestRecursivePathsCycleAvoidance(t *testing.T) {
	// Triangle: A -> B -> C -> A; from A to C there is exactly one simple
	// directed path (A,B,C) plus the direct... A->B->C only; C reached
	// also via nothing else. Cycles must not loop forever.
	b := graph.NewBuilder()
	a := b.AddNode("A")
	bb := b.AddNode("B")
	c := b.AddNode("C")
	b.AddEdge(a, "t", bb)
	b.AddEdge(bb, "t", c)
	b.AddEdge(c, "t", a)
	s := NewTripleStore(b.Build())
	paths, _ := s.RecursivePaths([]graph.NodeID{a}, []graph.NodeID{c}, RecursiveOptions{MaxDepth: 10})
	if len(paths) != 1 || len(paths[0].Edges) != 2 {
		t.Fatalf("paths = %v", paths)
	}
}
