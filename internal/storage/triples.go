package storage

import (
	"time"

	"ctpquery/internal/graph"
)

// TripleStore exposes a graph through the relational layout the paper
// stores in PostgreSQL: one row (id, source, edgeLabel, target) per edge.
type TripleStore struct {
	g *graph.Graph
}

// NewTripleStore wraps a graph.
func NewTripleStore(g *graph.Graph) *TripleStore { return &TripleStore{g: g} }

// Graph returns the underlying graph.
func (s *TripleStore) Graph() *graph.Graph { return s.g }

// Scan materializes the full triple table with columns id, source, label,
// target (label as its interned LabelID).
func (s *TripleStore) Scan() *Table {
	t := NewTable("id", "source", "label", "target")
	for i := 0; i < s.g.NumEdges(); i++ {
		// Full ID-space scan: on a live epoch view, skip deleted slots.
		if !s.g.EdgeAlive(graph.EdgeID(i)) {
			continue
		}
		e := s.g.Edge(graph.EdgeID(i))
		t.AddRow(int32(i), int32(e.Source), int32(e.Label), int32(e.Target))
	}
	return t
}

// ScanLabel materializes only the rows with the given edge label, via the
// label index (the equivalent of an index scan on edgeLabel).
func (s *TripleStore) ScanLabel(label string) *Table {
	t := NewTable("id", "source", "label", "target")
	l, ok := s.g.LabelIDOf(label)
	if !ok {
		return t
	}
	for _, id := range s.g.EdgesWithLabel(l) {
		e := s.g.Edge(id)
		t.AddRow(int32(id), int32(e.Source), int32(e.Label), int32(e.Target))
	}
	return t
}

// PathRow is one result of RecursivePaths: a directed path with its label
// sequence, as a recursive CTE returning an array column would produce.
type PathRow struct {
	Src   graph.NodeID
	Dst   graph.NodeID
	Edges []graph.EdgeID
}

// RecursiveOptions bounds the iterative path expansion.
type RecursiveOptions struct {
	MaxDepth int           // maximum path length in edges (0 = 16)
	Labels   []string      // restrict traversed edge labels (nil = all)
	Timeout  time.Duration // 0 = none
	Limit    int           // stop after this many paths (0 = unlimited)
}

// RecursivePaths emulates the semi-naive evaluation of a recursive CTE
//
//	WITH RECURSIVE p(src, dst, path) AS (
//	  SELECT source, target, ARRAY[id] FROM graph WHERE source IN (from)
//	  UNION ALL
//	  SELECT p.src, g.target, p.path || g.id
//	  FROM p JOIN graph g ON g.source = p.dst
//	  WHERE NOT g.target = ANY(nodes(p.path)) ...
//	)
//	SELECT * FROM p WHERE dst IN (to)
//
// over the triple table: directed traversal, cycle avoidance per path, and
// exponential blow-up on dense graphs — exactly the behaviour the paper
// reports for the Postgres baseline (it times out on CDF with m = 3). The
// second return value reports whether the evaluation hit its timeout.
func (s *TripleStore) RecursivePaths(from, to []graph.NodeID, opts RecursiveOptions) ([]PathRow, bool) {
	maxDepth := opts.MaxDepth
	if maxDepth <= 0 {
		maxDepth = 16
	}
	var allowed map[graph.LabelID]bool
	if len(opts.Labels) > 0 {
		allowed = make(map[graph.LabelID]bool, len(opts.Labels))
		for _, l := range opts.Labels {
			if id, ok := s.g.LabelIDOf(l); ok {
				allowed[id] = true
			}
		}
	}
	target := make(map[graph.NodeID]bool, len(to))
	for _, n := range to {
		target[n] = true
	}
	var deadline time.Time
	if opts.Timeout > 0 {
		deadline = time.Now().Add(opts.Timeout)
	}

	type partial struct {
		src, at graph.NodeID
		edges   []graph.EdgeID
		visited map[graph.NodeID]bool
	}
	var results []PathRow
	frontier := make([]partial, 0, len(from))
	for _, n := range from {
		frontier = append(frontier, partial{
			src: n, at: n, visited: map[graph.NodeID]bool{n: true},
		})
		if target[n] {
			results = append(results, PathRow{Src: n, Dst: n})
		}
	}

	tick := 0
	for depth := 0; depth < maxDepth && len(frontier) > 0; depth++ {
		var next []partial
		for _, p := range frontier {
			for _, e := range s.g.Out(p.at) {
				tick++
				if opts.Timeout > 0 && tick&255 == 0 && time.Now().After(deadline) {
					return results, true
				}
				if allowed != nil && !allowed[s.g.EdgeLabelID(e)] {
					continue
				}
				dst := s.g.Target(e)
				if p.visited[dst] {
					continue
				}
				edges := make([]graph.EdgeID, len(p.edges)+1)
				copy(edges, p.edges)
				edges[len(p.edges)] = e
				if target[dst] {
					results = append(results, PathRow{Src: p.src, Dst: dst, Edges: edges})
					if opts.Limit > 0 && len(results) >= opts.Limit {
						return results, false
					}
				}
				visited := make(map[graph.NodeID]bool, len(p.visited)+1)
				for k := range p.visited {
					visited[k] = true
				}
				visited[dst] = true
				next = append(next, partial{src: p.src, at: dst, edges: edges, visited: visited})
			}
		}
		frontier = next
	}
	return results, false
}

// Labels renders a path's label sequence, the column the paper notes
// standard recursive SQL can return (unlike Virtuoso's dialect).
func (s *TripleStore) Labels(p PathRow) []string {
	out := make([]string, len(p.Edges))
	for i, e := range p.Edges {
		out[i] = s.g.EdgeLabel(e)
	}
	return out
}
