// Package storage provides the relational substrate the paper delegates to
// PostgreSQL (Section 5.1): the graph(id, source, edgeLabel, target) triple
// table, binding tables with projection / selection / natural hash joins
// (used by the EQL evaluation strategy's steps A and C, Section 3), and an
// iterative WITH RECURSIVE-style path evaluator backing the Postgres
// baseline of Section 5.5.
package storage

import (
	"fmt"
	"sort"
	"strings"

	"ctpquery/internal/hash64"
)

// Table is a column-named relation of int32 tuples. Values are graph node
// IDs, edge IDs, or CTP result handles, depending on the column. The zero
// Table is empty and unusable; create tables with NewTable.
type Table struct {
	cols []string
	idx  map[string]int
	rows [][]int32
}

// NewTable creates an empty table with the given column names. Column
// names must be distinct.
func NewTable(cols ...string) *Table {
	t := &Table{cols: append([]string(nil), cols...), idx: make(map[string]int, len(cols))}
	for i, c := range cols {
		if _, dup := t.idx[c]; dup {
			panic(fmt.Sprintf("storage: duplicate column %q", c))
		}
		t.idx[c] = i
	}
	return t
}

// Cols returns the column names. Callers must not modify the slice.
func (t *Table) Cols() []string { return t.cols }

// NumRows returns the number of tuples.
func (t *Table) NumRows() int { return len(t.rows) }

// Row returns the i-th tuple (shared storage).
func (t *Table) Row(i int) []int32 { return t.rows[i] }

// Column returns the index of the named column, or -1.
func (t *Table) Column(name string) int {
	if i, ok := t.idx[name]; ok {
		return i
	}
	return -1
}

// HasColumn reports whether the table has the named column.
func (t *Table) HasColumn(name string) bool { return t.Column(name) >= 0 }

// AddRow appends a tuple; the value count must match the column count.
func (t *Table) AddRow(vals ...int32) {
	if len(vals) != len(t.cols) {
		panic(fmt.Sprintf("storage: AddRow with %d values into %d columns", len(vals), len(t.cols)))
	}
	row := make([]int32, len(vals))
	copy(row, vals)
	t.rows = append(t.rows, row)
}

// addRowNoCopy appends a tuple assuming ownership of the slice.
func (t *Table) addRowNoCopy(row []int32) { t.rows = append(t.rows, row) }

// Project returns a new table with only the named columns, in the given
// order. Duplicates rows are preserved; combine with Distinct if needed.
// Unknown columns are an error.
func (t *Table) Project(cols ...string) (*Table, error) {
	out := NewTable(cols...)
	srcIdx := make([]int, len(cols))
	for i, c := range cols {
		j := t.Column(c)
		if j < 0 {
			return nil, fmt.Errorf("storage: projection on unknown column %q", c)
		}
		srcIdx[i] = j
	}
	for _, row := range t.rows {
		nr := make([]int32, len(cols))
		for i, j := range srcIdx {
			nr[i] = row[j]
		}
		out.addRowNoCopy(nr)
	}
	return out, nil
}

// rowSig hashes the values of row at the given column indexes (all
// columns when idx is nil) with the splitmix64 finalizer per value —
// order-sensitive, no string is built. Collisions are possible; callers
// verify with rowEqual.
func rowSig(row []int32, idx []int) uint64 {
	h := uint64(0x8afe63e23465a715)
	if idx == nil {
		for _, v := range row {
			h = hash64.Mix(h ^ uint64(uint32(v)))
		}
	} else {
		for _, i := range idx {
			h = hash64.Mix(h ^ uint64(uint32(row[i])))
		}
	}
	return h
}

// rowEqual compares the projections of two rows on the given column
// indexes (whole rows when both index slices are nil).
func rowEqual(a []int32, ai []int, b []int32, bi []int) bool {
	if ai == nil && bi == nil {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if len(ai) != len(bi) {
		return false
	}
	for i := range ai {
		if a[ai[i]] != b[bi[i]] {
			return false
		}
	}
	return true
}

// Distinct returns a copy of t without duplicate rows, preserving first
// occurrence order. Rows are deduplicated through 64-bit hashes with
// collision-checked buckets, not string keys.
func (t *Table) Distinct() *Table {
	out := NewTable(t.cols...)
	seen := make(map[uint64][]int, len(t.rows)) // sig -> kept row indexes in out
	for _, row := range t.rows {
		sig := rowSig(row, nil)
		dup := false
		for _, i := range seen[sig] {
			if rowEqual(out.rows[i], nil, row, nil) {
				dup = true
				break
			}
		}
		if !dup {
			seen[sig] = append(seen[sig], len(out.rows))
			out.addRowNoCopy(row)
		}
	}
	return out
}

// Select returns the rows satisfying pred. The predicate receives shared
// row storage and must not retain or modify it.
func (t *Table) Select(pred func(row []int32) bool) *Table {
	out := NewTable(t.cols...)
	for _, row := range t.rows {
		if pred(row) {
			out.addRowNoCopy(row)
		}
	}
	return out
}

// ColumnValues returns the distinct values of the named column, sorted.
func (t *Table) ColumnValues(name string) ([]int32, error) {
	i := t.Column(name)
	if i < 0 {
		return nil, fmt.Errorf("storage: unknown column %q", name)
	}
	seen := make(map[int32]bool)
	var out []int32
	for _, row := range t.rows {
		if !seen[row[i]] {
			seen[row[i]] = true
			out = append(out, row[i])
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out, nil
}

// NaturalJoin hash-joins a and b on all shared columns. With no shared
// columns it degrades to a cross product, as SQL's NATURAL JOIN does. The
// output columns are a's columns followed by b's non-shared columns.
func NaturalJoin(a, b *Table) *Table {
	var shared []string
	for _, c := range a.cols {
		if b.HasColumn(c) {
			shared = append(shared, c)
		}
	}
	var bExtra []string
	for _, c := range b.cols {
		if !a.HasColumn(c) {
			bExtra = append(bExtra, c)
		}
	}
	out := NewTable(append(append([]string(nil), a.cols...), bExtra...)...)

	if len(shared) == 0 {
		for _, ra := range a.rows {
			for _, rb := range b.rows {
				out.addRowNoCopy(joinRows(ra, rb, nil, b))
			}
		}
		return out
	}

	// Build on the smaller side for memory locality; probe the larger.
	build, probe := b, a
	buildIsB := true
	if a.NumRows() < b.NumRows() {
		build, probe = a, b
		buildIsB = false
	}
	bKey := make([]int, len(shared))
	pKey := make([]int, len(shared))
	for i, c := range shared {
		bKey[i] = build.Column(c)
		pKey[i] = probe.Column(c)
	}
	// Hash join on 64-bit row signatures; the probe re-verifies the key
	// columns so hash collisions cannot fabricate matches.
	ht := make(map[uint64][]int, build.NumRows())
	for i, row := range build.rows {
		sig := rowSig(row, bKey)
		ht[sig] = append(ht[sig], i)
	}
	bExtraIdx := make([]int, len(bExtra))
	for i, c := range bExtra {
		bExtraIdx[i] = b.Column(c)
	}
	for _, pr := range probe.rows {
		matches := ht[rowSig(pr, pKey)]
		for _, mi := range matches {
			br := build.rows[mi]
			if !rowEqual(br, bKey, pr, pKey) {
				continue // hash collision, not a join partner
			}
			var ra, rb []int32
			if buildIsB {
				ra, rb = pr, br
			} else {
				ra, rb = br, pr
			}
			nr := make([]int32, 0, len(a.cols)+len(bExtra))
			nr = append(nr, ra...)
			for _, j := range bExtraIdx {
				nr = append(nr, rb[j])
			}
			out.addRowNoCopy(nr)
		}
	}
	return out
}

func joinRows(ra, rb []int32, bExtraIdx []int, b *Table) []int32 {
	nr := make([]int32, 0, len(ra)+len(rb))
	nr = append(nr, ra...)
	if bExtraIdx == nil {
		nr = append(nr, rb...)
		return nr
	}
	for _, j := range bExtraIdx {
		nr = append(nr, rb[j])
	}
	return nr
}

// String renders a small table for debugging and tests.
func (t *Table) String() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(t.cols, "\t"))
	sb.WriteByte('\n')
	for _, row := range t.rows {
		for i, v := range row {
			if i > 0 {
				sb.WriteByte('\t')
			}
			fmt.Fprintf(&sb, "%d", v)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
