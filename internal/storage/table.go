// Package storage provides the relational substrate the paper delegates to
// PostgreSQL (Section 5.1): the graph(id, source, edgeLabel, target) triple
// table, binding tables with projection / selection / natural hash joins
// (used by the EQL evaluation strategy's steps A and C, Section 3), and an
// iterative WITH RECURSIVE-style path evaluator backing the Postgres
// baseline of Section 5.5.
package storage

import (
	"fmt"
	"sort"
	"strings"
)

// Table is a column-named relation of int32 tuples. Values are graph node
// IDs, edge IDs, or CTP result handles, depending on the column. The zero
// Table is empty and unusable; create tables with NewTable.
type Table struct {
	cols []string
	idx  map[string]int
	rows [][]int32
}

// NewTable creates an empty table with the given column names. Column
// names must be distinct.
func NewTable(cols ...string) *Table {
	t := &Table{cols: append([]string(nil), cols...), idx: make(map[string]int, len(cols))}
	for i, c := range cols {
		if _, dup := t.idx[c]; dup {
			panic(fmt.Sprintf("storage: duplicate column %q", c))
		}
		t.idx[c] = i
	}
	return t
}

// Cols returns the column names. Callers must not modify the slice.
func (t *Table) Cols() []string { return t.cols }

// NumRows returns the number of tuples.
func (t *Table) NumRows() int { return len(t.rows) }

// Row returns the i-th tuple (shared storage).
func (t *Table) Row(i int) []int32 { return t.rows[i] }

// Column returns the index of the named column, or -1.
func (t *Table) Column(name string) int {
	if i, ok := t.idx[name]; ok {
		return i
	}
	return -1
}

// HasColumn reports whether the table has the named column.
func (t *Table) HasColumn(name string) bool { return t.Column(name) >= 0 }

// AddRow appends a tuple; the value count must match the column count.
func (t *Table) AddRow(vals ...int32) {
	if len(vals) != len(t.cols) {
		panic(fmt.Sprintf("storage: AddRow with %d values into %d columns", len(vals), len(t.cols)))
	}
	row := make([]int32, len(vals))
	copy(row, vals)
	t.rows = append(t.rows, row)
}

// addRowNoCopy appends a tuple assuming ownership of the slice.
func (t *Table) addRowNoCopy(row []int32) { t.rows = append(t.rows, row) }

// Project returns a new table with only the named columns, in the given
// order. Duplicates rows are preserved; combine with Distinct if needed.
// Unknown columns are an error.
func (t *Table) Project(cols ...string) (*Table, error) {
	out := NewTable(cols...)
	srcIdx := make([]int, len(cols))
	for i, c := range cols {
		j := t.Column(c)
		if j < 0 {
			return nil, fmt.Errorf("storage: projection on unknown column %q", c)
		}
		srcIdx[i] = j
	}
	for _, row := range t.rows {
		nr := make([]int32, len(cols))
		for i, j := range srcIdx {
			nr[i] = row[j]
		}
		out.addRowNoCopy(nr)
	}
	return out, nil
}

// Distinct returns a copy of t without duplicate rows, preserving first
// occurrence order.
func (t *Table) Distinct() *Table {
	out := NewTable(t.cols...)
	seen := make(map[string]bool, len(t.rows))
	var sb strings.Builder
	for _, row := range t.rows {
		sb.Reset()
		for _, v := range row {
			var buf [4]byte
			buf[0] = byte(v)
			buf[1] = byte(v >> 8)
			buf[2] = byte(v >> 16)
			buf[3] = byte(v >> 24)
			sb.Write(buf[:])
		}
		k := sb.String()
		if !seen[k] {
			seen[k] = true
			out.addRowNoCopy(row)
		}
	}
	return out
}

// Select returns the rows satisfying pred. The predicate receives shared
// row storage and must not retain or modify it.
func (t *Table) Select(pred func(row []int32) bool) *Table {
	out := NewTable(t.cols...)
	for _, row := range t.rows {
		if pred(row) {
			out.addRowNoCopy(row)
		}
	}
	return out
}

// ColumnValues returns the distinct values of the named column, sorted.
func (t *Table) ColumnValues(name string) ([]int32, error) {
	i := t.Column(name)
	if i < 0 {
		return nil, fmt.Errorf("storage: unknown column %q", name)
	}
	seen := make(map[int32]bool)
	var out []int32
	for _, row := range t.rows {
		if !seen[row[i]] {
			seen[row[i]] = true
			out = append(out, row[i])
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out, nil
}

// NaturalJoin hash-joins a and b on all shared columns. With no shared
// columns it degrades to a cross product, as SQL's NATURAL JOIN does. The
// output columns are a's columns followed by b's non-shared columns.
func NaturalJoin(a, b *Table) *Table {
	var shared []string
	for _, c := range a.cols {
		if b.HasColumn(c) {
			shared = append(shared, c)
		}
	}
	var bExtra []string
	for _, c := range b.cols {
		if !a.HasColumn(c) {
			bExtra = append(bExtra, c)
		}
	}
	out := NewTable(append(append([]string(nil), a.cols...), bExtra...)...)

	if len(shared) == 0 {
		for _, ra := range a.rows {
			for _, rb := range b.rows {
				out.addRowNoCopy(joinRows(ra, rb, nil, b))
			}
		}
		return out
	}

	// Build on the smaller side for memory locality; probe the larger.
	build, probe := b, a
	buildIsB := true
	if a.NumRows() < b.NumRows() {
		build, probe = a, b
		buildIsB = false
	}
	bKey := make([]int, len(shared))
	pKey := make([]int, len(shared))
	for i, c := range shared {
		bKey[i] = build.Column(c)
		pKey[i] = probe.Column(c)
	}
	ht := make(map[string][]int, build.NumRows())
	var sb strings.Builder
	keyOf := func(row []int32, idx []int) string {
		sb.Reset()
		for _, i := range idx {
			v := row[i]
			var buf [4]byte
			buf[0] = byte(v)
			buf[1] = byte(v >> 8)
			buf[2] = byte(v >> 16)
			buf[3] = byte(v >> 24)
			sb.Write(buf[:])
		}
		return sb.String()
	}
	for i, row := range build.rows {
		k := keyOf(row, bKey)
		ht[k] = append(ht[k], i)
	}
	bExtraIdx := make([]int, len(bExtra))
	for i, c := range bExtra {
		bExtraIdx[i] = b.Column(c)
	}
	for _, pr := range probe.rows {
		matches := ht[keyOf(pr, pKey)]
		for _, mi := range matches {
			br := build.rows[mi]
			var ra, rb []int32
			if buildIsB {
				ra, rb = pr, br
			} else {
				ra, rb = br, pr
			}
			nr := make([]int32, 0, len(a.cols)+len(bExtra))
			nr = append(nr, ra...)
			for _, j := range bExtraIdx {
				nr = append(nr, rb[j])
			}
			out.addRowNoCopy(nr)
		}
	}
	return out
}

func joinRows(ra, rb []int32, bExtraIdx []int, b *Table) []int32 {
	nr := make([]int32, 0, len(ra)+len(rb))
	nr = append(nr, ra...)
	if bExtraIdx == nil {
		nr = append(nr, rb...)
		return nr
	}
	for _, j := range bExtraIdx {
		nr = append(nr, rb[j])
	}
	return nr
}

// String renders a small table for debugging and tests.
func (t *Table) String() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(t.cols, "\t"))
	sb.WriteByte('\n')
	for _, row := range t.rows {
		for i, v := range row {
			if i > 0 {
				sb.WriteByte('\t')
			}
			fmt.Fprintf(&sb, "%d", v)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
