package bench

import (
	"fmt"
	"io"
	"time"

	"ctpquery/internal/core"
	"ctpquery/internal/eql"
	"ctpquery/internal/gen"
)

// Figure 2 (motivation): the chain graph whose 2-seed CTP has 2^N
// results. The experiment shows the exponential growth and how the CTP
// filters (LIMIT, TIMEOUT) keep evaluation bounded — the reason the
// language includes them (Section 2).

func init() {
	register(Experiment{
		ID:    "fig2",
		Title: "Chain graphs: exponential CTP result counts, bounded by filters",
		Run: func(cfg Config, w io.Writer) error {
			cfg = cfg.withDefaults()
			fmt.Fprintf(w, "%-12s %10s %10s %10s\n", "chain N", "results", "time_ms", "truncated")
			maxN := 8 + cfg.scaled(4)
			for n := 4; n <= maxN; n += 2 {
				wl := gen.Chain(n)
				start := time.Now()
				rs, st, err := core.Search(wl.Graph, core.Explicit(wl.Seeds...), core.Options{
					Algorithm: core.MoLESP,
					Filters:   eql.Filters{Timeout: cfg.Timeout, Limit: 1 << 14},
				})
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "%-12d %10d %10s %10v\n",
					n, rs.Len(), ms(time.Since(start), st.TimedOut), st.Truncated)
			}
			return nil
		},
	})
}
