package bench

import (
	"fmt"
	"io"
	"time"

	"ctpquery/internal/core"
	"ctpquery/internal/eql"
	"ctpquery/internal/gen"
)

// Figure 10: the complete baselines — BFT, BFT-M, BFT-AM, GAM — on Line,
// Comb, and Star workloads of growing seed distance sL, with three curve
// groups per plot (m for Line/Star, nA for Comb). Missing points in the
// paper are timeouts; we print "(timeout)" markers instead.

// MeasureCTP runs one algorithm on one workload and returns its runtime
// and search statistics. It is the measurement primitive every synthetic
// experiment and the root-level testing.B benchmarks share.
func MeasureCTP(w *gen.Workload, alg core.Algorithm, timeout time.Duration) (time.Duration, *core.Stats) {
	opts := core.Options{
		Algorithm: alg,
		Filters:   eql.Filters{Timeout: timeout},
	}
	start := time.Now()
	_, stats, err := core.Search(w.Graph, core.Explicit(w.Seeds...), opts)
	if err != nil {
		panic(fmt.Sprintf("bench: %s on %s: %v", alg, w.Name, err))
	}
	return time.Since(start), stats
}

// fig10Algorithms are the complete baselines of Section 5.4.1.
var fig10Algorithms = []core.Algorithm{core.BFT, core.BFTM, core.BFTAM, core.GAM}

// lineWorkloads builds the Figure 10/11 Line grid: m in {3,5,10}, seed
// distance sL = nL+1 in 2..maxSL.
func lineWorkloads(maxSL int) []*gen.Workload {
	var out []*gen.Workload
	for _, m := range []int{3, 5, 10} {
		for sL := 2; sL <= maxSL; sL++ {
			out = append(out, gen.Line(m, sL-1, gen.Alternate))
		}
	}
	return out
}

// combWorkloads builds the Comb grid: nA in {2,4,6} (m = 3*nA with nS=2),
// segment length sL in 2..maxSL, dBA=2.
func combWorkloads(maxSL int) []*gen.Workload {
	var out []*gen.Workload
	for _, nA := range []int{2, 4, 6} {
		for sL := 2; sL <= maxSL; sL++ {
			out = append(out, gen.Comb(nA, 2, sL, 2, gen.Alternate))
		}
	}
	return out
}

// starWorkloads builds the Star grid: m in {3,5,10}, ray length sL.
func starWorkloads(maxSL int) []*gen.Workload {
	var out []*gen.Workload
	for _, m := range []int{3, 5, 10} {
		for sL := 2; sL <= maxSL; sL++ {
			out = append(out, gen.Star(m, sL, gen.Alternate))
		}
	}
	return out
}

func runFig10(workloads []*gen.Workload, cfg Config, w io.Writer) error {
	fmt.Fprintf(w, "%-28s %-8s %10s %12s %8s\n", "workload", "algo", "time_ms", "provenances", "results")
	for _, wl := range workloads {
		for _, alg := range fig10Algorithms {
			d, st := MeasureCTP(wl, alg, cfg.Timeout)
			fmt.Fprintf(w, "%-28s %-8s %10s %12d %8d\n",
				wl.Name, alg, ms(d, st.TimedOut), st.Kept(), st.Results)
		}
	}
	return nil
}

func init() {
	register(Experiment{
		ID:    "fig10a",
		Title: "Complete CTP baselines on Line graphs (runtime vs seed distance)",
		Run: func(cfg Config, w io.Writer) error {
			cfg = cfg.withDefaults()
			return runFig10(lineWorkloads(4+cfg.scaled(4)), cfg, w)
		},
	})
	register(Experiment{
		ID:    "fig10b",
		Title: "Complete CTP baselines on Comb graphs",
		Run: func(cfg Config, w io.Writer) error {
			cfg = cfg.withDefaults()
			return runFig10(combWorkloads(3+cfg.scaled(3)), cfg, w)
		},
	})
	register(Experiment{
		ID:    "fig10c",
		Title: "Complete CTP baselines on Star graphs",
		Run: func(cfg Config, w io.Writer) error {
			cfg = cfg.withDefaults()
			return runFig10(starWorkloads(3+cfg.scaled(3)), cfg, w)
		},
	})
}
