package bench

import (
	"fmt"
	"io"

	"ctpquery/internal/core"
	"ctpquery/internal/gen"
)

// Figure 11: the GAM pruning variants — GAM, ESP, MoESP, LESP, MoLESP —
// on the same Line/Comb/Star grids. Subfigures (a)-(c) plot runtime;
// (d)-(f) plot the number of provenances built; one run produces both
// columns here. Variants that find no results (ESP and LESP on Line and
// Comb, Section 5.4.2) are marked "MISS", matching the paper's missing
// curves.

func runFig11(workloads []*gen.Workload, cfg Config, w io.Writer) error {
	fmt.Fprintf(w, "%-28s %-8s %10s %12s %8s\n", "workload", "algo", "time_ms", "provenances", "results")
	for _, wl := range workloads {
		for _, alg := range core.GAMFamily() {
			d, st := MeasureCTP(wl, alg, cfg.Timeout)
			marker := ""
			if st.Results == 0 && !st.TimedOut {
				marker = " MISS"
			}
			fmt.Fprintf(w, "%-28s %-8s %10s %12d %8d%s\n",
				wl.Name, alg, ms(d, st.TimedOut), st.Kept(), st.Results, marker)
		}
	}
	return nil
}

func init() {
	runLine := func(cfg Config, w io.Writer) error {
		cfg = cfg.withDefaults()
		return runFig11(lineWorkloads(4+cfg.scaled(4)), cfg, w)
	}
	runComb := func(cfg Config, w io.Writer) error {
		cfg = cfg.withDefaults()
		return runFig11(combWorkloads(3+cfg.scaled(3)), cfg, w)
	}
	runStar := func(cfg Config, w io.Writer) error {
		cfg = cfg.withDefaults()
		return runFig11(starWorkloads(3+cfg.scaled(3)), cfg, w)
	}
	register(Experiment{ID: "fig11a", Title: "GAM variants on Line graphs (runtime)", Run: runLine})
	register(Experiment{ID: "fig11b", Title: "GAM variants on Comb graphs (runtime)", Run: runComb})
	register(Experiment{ID: "fig11c", Title: "GAM variants on Star graphs (runtime)", Run: runStar})
	// (d)-(f) plot the provenance column of the same runs.
	register(Experiment{ID: "fig11d", Title: "GAM variants on Line graphs (provenances built)", Run: runLine})
	register(Experiment{ID: "fig11e", Title: "GAM variants on Comb graphs (provenances built)", Run: runComb})
	register(Experiment{ID: "fig11f", Title: "GAM variants on Star graphs (provenances built)", Run: runStar})
}
