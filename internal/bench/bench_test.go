package bench

import (
	"strings"
	"testing"
	"time"

	"ctpquery/internal/core"
	"ctpquery/internal/gen"
)

// Smoke-run every registered experiment at a tiny scale: the harness must
// produce output rows for every figure and table without panicking.
func TestAllExperimentsRun(t *testing.T) {
	cfg := Config{Scale: 0.25, Timeout: 300 * time.Millisecond, Seed: 3}
	wanted := []string{
		"fig2", "fig10a", "fig10b", "fig10c",
		"fig11a", "fig11b", "fig11c", "fig11d", "fig11e", "fig11f",
		"fig12", "fig13", "fig14", "table1",
	}
	if len(All()) != len(wanted) {
		t.Fatalf("registered %d experiments, want %d", len(All()), len(wanted))
	}
	for _, id := range wanted {
		e, ok := Get(id)
		if !ok {
			t.Fatalf("experiment %s not registered", id)
		}
		var sb strings.Builder
		if err := e.Run(cfg, &sb); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(strings.Split(sb.String(), "\n")) < 3 {
			t.Fatalf("%s produced no rows:\n%s", id, sb.String())
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, ok := Get("nope"); ok {
		t.Fatal("unknown experiment resolved")
	}
}

// The Figure 11 shape claims, validated quantitatively at small scale:
// pruning reduces provenances (MoLESP < GAM), and on Line/Comb the
// ESP/LESP variants lose the results while MoESP/MoLESP keep them.
func TestFig11Shapes(t *testing.T) {
	comb := gen.Comb(4, 2, 3, 2, gen.Alternate)
	_, gamStats := MeasureCTP(comb, core.GAM, 5*time.Second)
	_, molespStats := MeasureCTP(comb, core.MoLESP, 5*time.Second)
	if molespStats.Kept() >= gamStats.Kept() {
		t.Fatalf("MoLESP kept %d provenances, GAM %d: pruning should win",
			molespStats.Kept(), gamStats.Kept())
	}
	if molespStats.Results != 1 {
		t.Fatalf("MoLESP results = %d, want 1", molespStats.Results)
	}
	_, espStats := MeasureCTP(comb, core.ESP, 5*time.Second)
	if espStats.Results != 0 {
		t.Fatalf("ESP on Comb should miss (Section 5.4.2), found %d", espStats.Results)
	}
}

// The Figure 12 protocol: MoLESP with UNI+LIMIT 1 returns at most one
// result and must find one whenever QGSTP does (Property 9's guarantee as
// invoked in Section 5.4.3).
func TestFig12Protocol(t *testing.T) {
	w := gen.Star(4, 2, gen.Forward)
	d, st := Fig12Point(w.Graph, w.Seeds, core.MoLESP, time.Second)
	if st.Results != 1 {
		t.Fatalf("results = %d, want 1", st.Results)
	}
	if d <= 0 {
		t.Fatal("no time measured")
	}
}

// CDF system runs: MoLESP must answer and the check-only baselines must
// report pair counts.
func TestRunCDFSystems(t *testing.T) {
	c := gen.NewCDF(2, 4, 8, 3)
	rows := RunCDFSystems(c, 2*time.Second)
	byName := map[string]CDFSystemResult{}
	for _, r := range rows {
		byName[r.System] = r
	}
	if byName["MoLESP"].Answers != c.NL {
		t.Fatalf("MoLESP answers = %d, want %d", byName["MoLESP"].Answers, c.NL)
	}
	if byName["UNI-MoLESP"].Answers != c.NL {
		t.Fatalf("UNI-MoLESP answers = %d, want %d", byName["UNI-MoLESP"].Answers, c.NL)
	}
	// The link chains are directed top->bottom: the directed path
	// baselines see exactly the NL link paths.
	if byName["Postgres"].Answers != c.NL && !byName["Postgres"].TimedOut {
		t.Fatalf("Postgres answers = %d, want %d", byName["Postgres"].Answers, c.NL)
	}
	if byName["UNI-JEDI"].Answers != c.NL && !byName["UNI-JEDI"].TimedOut {
		t.Fatalf("JEDI answers = %d, want %d", byName["UNI-JEDI"].Answers, c.NL)
	}
	if byName["Virtuoso-lbl"].Answers == 0 {
		t.Fatal("check-only baseline found no reachable pairs")
	}
}

func TestRunCDFSystemsM3(t *testing.T) {
	c := gen.NewCDF(3, 4, 8, 3)
	rows := RunCDFSystems(c, 2*time.Second)
	byName := map[string]CDFSystemResult{}
	for _, r := range rows {
		byName[r.System] = r
	}
	if byName["MoLESP"].Answers < c.NL {
		t.Fatalf("MoLESP answers = %d, want >= %d", byName["MoLESP"].Answers, c.NL)
	}
	// Stitching produces raw combinations; they at least cover the links.
	if byName["Postgres+stitch"].Answers < c.NL && !byName["Postgres+stitch"].TimedOut {
		t.Fatalf("stitch answers = %d, want >= %d", byName["Postgres+stitch"].Answers, c.NL)
	}
}

// Table 1 rows: every query/system cell must be measured; MoLESP must
// answer J2 and J3 (the Section 4.9 robustness claims).
func TestRunTable1(t *testing.T) {
	kg := gen.YAGOLike(200, 5)
	rows := RunTable1(kg, 2*time.Second)
	if len(rows) != 12 { // 3 queries x 4 systems
		t.Fatalf("rows = %d, want 12", len(rows))
	}
	for _, r := range rows {
		if r.System == "MoLESP" && (r.Query == "J2" || r.Query == "J3") {
			if r.Answers == 0 {
				t.Fatalf("MoLESP on %s found nothing", r.Query)
			}
		}
	}
}
