// Package bench regenerates every table and figure of the paper's
// evaluation (Section 5) on laptop-scale instances: the baseline
// comparison of Figure 10, the GAM-variant comparison of Figure 11 (times
// and provenance counts), the QGSTP comparison of Figure 12, the CDF
// benchmarks of Figures 13 and 14, the YAGO query table (Table 1), and
// the Figure 2 result-explosion demonstration.
//
// Each experiment prints the same rows/series as the paper's plot; the
// absolute numbers differ from the authors' Xeon/Postgres testbed, but
// the shapes — who wins, by what factor, where systems time out — are the
// reproduction target (see DESIGN.md §4). cmd/expdriver runs experiments
// from the command line; the repository-root bench_test.go exposes each as
// a testing.B benchmark.
package bench

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Config tunes experiment sizes. The zero value is replaced by defaults
// sized for a laptop run of a few minutes total.
type Config struct {
	// Scale multiplies workload sizes (graph dimensions); 1 is the
	// laptop-scale default, larger values approach the paper's sizes.
	Scale float64
	// Timeout bounds each measured point, standing in for the paper's 10-
	// and 15-minute timeouts at our scale.
	Timeout time.Duration
	// Seed drives all synthetic data generation.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// scaled applies the scale factor with a minimum of 1.
func (c Config) scaled(n int) int {
	v := int(float64(n) * c.Scale)
	if v < 1 {
		return 1
	}
	return v
}

// Experiment regenerates one table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config, w io.Writer) error
}

var experiments = map[string]Experiment{}

func register(e Experiment) { experiments[e.ID] = e }

// Get returns the experiment with the given id.
func Get(id string) (Experiment, bool) {
	e, ok := experiments[id]
	return e, ok
}

// All returns every experiment sorted by id.
func All() []Experiment {
	out := make([]Experiment, 0, len(experiments))
	for _, e := range experiments {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// header prints the experiment banner.
func header(w io.Writer, e Experiment) {
	fmt.Fprintf(w, "## %s — %s\n", e.ID, e.Title)
}

// ms formats a duration in milliseconds with a timeout marker, the unit
// of the paper's plots.
func ms(d time.Duration, timedOut bool) string {
	if timedOut {
		return fmt.Sprintf("%.1f(timeout)", float64(d.Microseconds())/1000)
	}
	return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000)
}
