package bench

import (
	"fmt"
	"io"
	"time"

	"ctpquery/internal/baselines"
	"ctpquery/internal/core"
	"ctpquery/internal/engine"
	"ctpquery/internal/eql"
	"ctpquery/internal/gen"
	"ctpquery/internal/graph"
	"ctpquery/internal/storage"
)

// Figures 13 and 14: extended-query evaluation on the CDF benchmark for
// m=2 and m=3, SL in {3,6}, against the graph-query baselines:
//
//	MoLESP (any path, return)       — our engine, bidirectional
//	UNI MoLESP (any path, return)   — our engine, UNI filter
//	Postgres (any path, return)     — recursive CTE path evaluation
//	UNI JEDI (labelled, return)     — label-constrained directed paths
//	UNI Virtuoso (labelled, check)  — reachability only
//	UNI Virtuoso (any, check)       — reachability only, label-free
//	Neo4j (any path, return)        — undirected simple-path enumeration
//
// For m=3 the per-pair path baselines are combined by stitching (Section
// 2), whose raw combinations include duplicates and non-trees.

// cdfQuery builds the benchmark EQL query for a CDF instance.
func cdfQuery(m int, uni bool, timeout time.Duration) *eql.Query {
	filters := eql.Filters{Uni: uni, Timeout: timeout}
	if m == 2 {
		return &eql.Query{
			Head: []string{"v", "tl", "l"},
			BGPs: []eql.BGP{
				{Patterns: []eql.EdgePattern{{Src: eql.Var("x"), Edge: eql.Label("c"), Dst: eql.Var("tl")}}},
				{Patterns: []eql.EdgePattern{{Src: eql.Var("v"), Edge: eql.Label("g"), Dst: eql.Var("bl")}}},
			},
			CTPs: []eql.CTP{{
				Members: []eql.Predicate{eql.Var("bl"), eql.Var("tl")},
				TreeVar: "l",
				Filters: filters,
			}},
		}
	}
	return &eql.Query{
		Head: []string{"v", "tl", "l"},
		BGPs: []eql.BGP{
			{Patterns: []eql.EdgePattern{{Src: eql.Var("x"), Edge: eql.Label("c"), Dst: eql.Var("tl")}}},
			{Patterns: []eql.EdgePattern{
				{Src: eql.Var("v"), Edge: eql.Label("g"), Dst: eql.Var("bl1")},
				{Src: eql.Var("v"), Edge: eql.Label("h"), Dst: eql.Var("bl2")},
			}},
		},
		CTPs: []eql.CTP{{
			Members: []eql.Predicate{eql.Var("tl"), eql.Var("bl1"), eql.Var("bl2")},
			TreeVar: "l",
			Filters: filters,
		}},
	}
}

// cdfLeafSets returns the BGP-bound leaf sets the path baselines operate
// on: all c-top leaves and all g- (and for m=3, h-) bottom leaves.
func cdfLeafSets(c *gen.CDF) (tops, gs, hs []graph.NodeID) {
	g := c.Graph
	lc, _ := g.LabelIDOf("c")
	for _, e := range g.EdgesWithLabel(lc) {
		tops = append(tops, g.Target(e))
	}
	lg, _ := g.LabelIDOf("g")
	for _, e := range g.EdgesWithLabel(lg) {
		gs = append(gs, g.Target(e))
	}
	lh, _ := g.LabelIDOf("h")
	for _, e := range g.EdgesWithLabel(lh) {
		hs = append(hs, g.Target(e))
	}
	return
}

// CDFSystemResult is one measured point of Figures 13/14.
type CDFSystemResult struct {
	System   string
	Time     time.Duration
	Answers  int
	TimedOut bool
}

// RunCDFSystems measures every Figure 13/14 system on one CDF instance.
func RunCDFSystems(c *gen.CDF, timeout time.Duration) []CDFSystemResult {
	g := c.Graph
	ts := storage.NewTripleStore(g)
	tops, gs, hs := cdfLeafSets(c)
	// The baselines evaluate unbounded path patterns (SPARQL link*,
	// Cypher -[*]-); 16 is our evaluator's unbounded default. Directed
	// traversal is naturally bounded on the CDF DAG, but the undirected
	// Neo4j enumeration wanders the forests — the blow-up the paper
	// observes.
	const maxDepth = 16
	var out []CDFSystemResult

	engineRun := func(name string, uni bool) {
		eng := engine.New(g, engine.Options{Algorithm: core.MoLESP})
		start := time.Now()
		res, err := eng.Execute(cdfQuery(c.M, uni, timeout))
		if err != nil {
			panic(err)
		}
		timedOut := false
		for _, st := range res.CTPStats {
			timedOut = timedOut || st.TimedOut
		}
		out = append(out, CDFSystemResult{name, time.Since(start), res.Table.NumRows(), timedOut})
	}
	engineRun("MoLESP", false)
	engineRun("UNI-MoLESP", true)

	pathOpts := baselines.PathOptions{MaxDepth: maxDepth, Timeout: timeout, Directed: true}
	if c.M == 2 {
		start := time.Now()
		pg := baselines.PostgresPaths(ts, tops, gs, pathOpts)
		out = append(out, CDFSystemResult{"Postgres", time.Since(start), len(pg.Paths), pg.TimedOut})

		start = time.Now()
		jd := baselines.JEDIPaths(ts, tops, gs, []string{"link"}, pathOpts)
		out = append(out, CDFSystemResult{"UNI-JEDI", time.Since(start), len(jd.Paths), jd.TimedOut})

		out = append(out, virtuosoPoint(g, "Virtuoso-lbl", tops, gs, []string{"link"}))
		out = append(out, virtuosoPoint(g, "Virtuoso-any", tops, gs, nil))

		start = time.Now()
		no := baselines.Neo4jPaths(g, tops, gs, baselines.PathOptions{MaxDepth: maxDepth, Timeout: timeout})
		out = append(out, CDFSystemResult{"Neo4j", time.Since(start), len(no.Paths), no.TimedOut})
		return out
	}

	// m=3: per-pair paths plus stitching for the path-returning systems.
	isSeed := func(n graph.NodeID) bool { return false }
	stitchRun := func(name string, labels []string) {
		start := time.Now()
		var p1, p2 baselines.PathResult
		if labels == nil {
			p1 = baselines.PostgresPaths(ts, tops, gs, pathOpts)
			p2 = baselines.PostgresPaths(ts, tops, hs, pathOpts)
		} else {
			p1 = baselines.JEDIPaths(ts, tops, gs, labels, pathOpts)
			p2 = baselines.JEDIPaths(ts, tops, hs, labels, pathOpts)
		}
		rows1 := toRows(g, p1)
		rows2 := toRows(g, p2)
		st := baselines.Stitch(g, rows1, rows2, isSeed)
		out = append(out, CDFSystemResult{name, time.Since(start), st.Raw, p1.TimedOut || p2.TimedOut})
	}
	stitchRun("Postgres+stitch", nil)
	stitchRun("UNI-JEDI+stitch", []string{"link"})

	out = append(out, virtuosoPoint(g, "Virtuoso-lbl", tops, gs, []string{"link"}))
	out = append(out, virtuosoPoint(g, "Virtuoso-any", tops, gs, nil))

	start := time.Now()
	no := baselines.Neo4jPaths(g, tops, gs, baselines.PathOptions{MaxDepth: maxDepth, Timeout: timeout})
	out = append(out, CDFSystemResult{"Neo4j", time.Since(start), len(no.Paths), no.TimedOut})
	return out
}

// virtuosoPoint times the check-only baseline: one directed BFS per top
// leaf, counting reachable (top, bottom) pairs — the closest relational
// rendering of the paper's check-only SPARQL property paths.
func virtuosoPoint(g *graph.Graph, name string, tops, bottoms []graph.NodeID, labels []string) CDFSystemResult {
	start := time.Now()
	pairs := 0
	for _, tl := range tops {
		r := baselines.VirtuosoCheck(g, []graph.NodeID{tl}, bottoms, labels)
		if r.Reachable {
			pairs++
		}
	}
	return CDFSystemResult{name, time.Since(start), pairs, false}
}

func toRows(g *graph.Graph, pr baselines.PathResult) []storage.PathRow {
	rows := make([]storage.PathRow, 0, len(pr.Paths))
	for _, p := range pr.Paths {
		if len(p) == 0 {
			continue
		}
		src := g.Source(p[0])
		dst := g.Target(p[len(p)-1])
		rows = append(rows, storage.PathRow{Src: src, Dst: dst, Edges: p})
	}
	return rows
}

func runCDFFigure(m int, cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	fmt.Fprintf(w, "%-24s %-16s %10s %8s\n", "graph", "system", "time_ms", "answers")
	// The paper's CDF sizes imply NL ≈ 2·NT (E = 12·NT + NL·SL with NL
	// answers from 2K to 200K over 18K to 2.4M edges).
	for _, sl := range []int{3, 6} {
		for _, nt := range []int{cfg.scaled(16), cfg.scaled(64), cfg.scaled(256)} {
			c := gen.NewCDF(m, nt, 2*nt, sl)
			for _, r := range RunCDFSystems(c, cfg.Timeout) {
				fmt.Fprintf(w, "%-24s %-16s %10s %8d\n",
					fmt.Sprintf("%s/%dE", c.Name(), c.Graph.NumEdges()),
					r.System, ms(r.Time, r.TimedOut), r.Answers)
			}
		}
	}
	return nil
}

func init() {
	register(Experiment{
		ID:    "fig13",
		Title: "CDF benchmark, m=2, SL in {3,6}: EQL engine vs graph-query baselines",
		Run:   func(cfg Config, w io.Writer) error { return runCDFFigure(2, cfg, w) },
	})
	register(Experiment{
		ID:    "fig14",
		Title: "CDF benchmark, m=3, SL in {3,6}: EQL engine vs baselines with stitching",
		Run:   func(cfg Config, w io.Writer) error { return runCDFFigure(3, cfg, w) },
	})
}
