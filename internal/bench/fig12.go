package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"ctpquery/internal/baselines"
	"ctpquery/internal/core"
	"ctpquery/internal/eql"
	"ctpquery/internal/gen"
	"ctpquery/internal/graph"
)

// Figure 12: GAM and MoLESP vs the QGSTP approximation on a DBPedia-like
// graph: average runtime per query, grouped by the number of seed sets m
// = 2..6, with the paper's per-m query histogram (83/98/85/38/8) scaled
// down. To align with QGSTP (which returns one unidirectional result),
// GAM and MoLESP run with UNI and LIMIT 1, as in the paper.

// Fig12Point runs one CTP under the Figure 12 protocol and returns its
// runtime.
func Fig12Point(g *graph.Graph, seeds [][]graph.NodeID, alg core.Algorithm, timeout time.Duration) (time.Duration, *core.Stats) {
	opts := core.Options{
		Algorithm: alg,
		Filters:   eql.Filters{Uni: true, Limit: 1, Timeout: timeout},
	}
	start := time.Now()
	_, stats, err := core.Search(g, core.Explicit(seeds...), opts)
	if err != nil {
		panic(err)
	}
	return time.Since(start), stats
}

func init() {
	register(Experiment{
		ID:    "fig12",
		Title: "GAM and MoLESP vs QGSTP on a DBPedia-like graph (avg s by m, UNI LIMIT 1)",
		Run: func(cfg Config, w io.Writer) error {
			cfg = cfg.withDefaults()
			kg := gen.DBPediaLike(cfg.scaled(2000), cfg.Seed)
			rng := rand.New(rand.NewSource(cfg.Seed + 1))
			// Scale the 312-query workload down to ~1/10th by default. The
			// queries are sampled connectable (all seeds on directed walks
			// out of one root), like the curated keyword queries the paper
			// reuses from the QGSTP evaluation — UNI + LIMIT 1 is only
			// meaningful when a unidirectional answer exists.
			wl := gen.ConnectableCTPWorkload(kg, gen.MHistogram, 10, 3, rng)

			fmt.Fprintf(w, "graph: %d nodes, %d edges\n", kg.Graph.NumNodes(), kg.Graph.NumEdges())
			fmt.Fprintf(w, "%-4s %-8s %12s %10s %10s\n", "m", "system", "avg_time_ms", "queries", "timeouts")
			for m := 2; m <= 6; m++ {
				queries := wl[m]
				if len(queries) == 0 {
					continue
				}
				// QGSTP baseline.
				var qgstpTotal time.Duration
				for _, seeds := range queries {
					start := time.Now()
					baselines.QGSTP(kg.Graph, seeds)
					qgstpTotal += time.Since(start)
				}
				fmt.Fprintf(w, "%-4d %-8s %12.1f %10d %10d\n", m, "QGSTP",
					float64(qgstpTotal.Microseconds())/1000/float64(len(queries)), len(queries), 0)

				for _, alg := range []core.Algorithm{core.GAM, core.MoLESP} {
					var total time.Duration
					timeouts := 0
					for _, seeds := range queries {
						d, st := Fig12Point(kg.Graph, seeds, alg, cfg.Timeout)
						total += d
						if st.TimedOut {
							timeouts++
						}
					}
					fmt.Fprintf(w, "%-4d %-8s %12.1f %10d %10d\n", m, alg,
						float64(total.Microseconds())/1000/float64(len(queries)), len(queries), timeouts)
				}
			}
			return nil
		},
	})
}
