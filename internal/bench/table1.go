package bench

import (
	"fmt"
	"io"
	"time"

	"ctpquery/internal/baselines"
	"ctpquery/internal/core"
	"ctpquery/internal/engine"
	"ctpquery/internal/eql"
	"ctpquery/internal/gen"
	"ctpquery/internal/graph"
	"ctpquery/internal/storage"
)

// Table 1: the JEDI query set over YAGO3, reproduced over a YAGO-like
// synthetic knowledge graph with the same query shapes:
//
//	J1 — 3 BGPs and 2 CTPs;
//	J2 — 2 BGPs and 1 CTP with one very large seed set;
//	J3 — a single CTP with an N (all-nodes) seed set.
//
// Systems: JEDI-like labelled path enumeration, the EQL engine (MoLESP
// with the Section 4.9 optimizations), Virtuoso-like check-only, and
// Neo4j-like undirected path enumeration. The paper reports seconds;
// J2/J3 are only feasible for MoLESP thanks to multi-queue scheduling and
// universal-set handling.

// table1Labels is the property-path label set the JEDI comparison uses:
// effectively all relation labels of the knowledge graph, so the LABEL
// filter is exercised without hiding connections (the J1 CTPs need
// person-to-person and creation relations to have answers under UNI).
var table1Labels = []string{
	"worksFor", "founded", "memberOf", "owns", "bornIn", "livesIn",
	"citizenOf", "inCountry", "locatedIn", "headquarteredIn",
	"knows", "spouse", "parentOf", "colleague",
	"created", "wrote", "actedIn",
	"investsIn", "subsidiaryOf", "partnerOf",
}

// yagoQueries builds J1–J3 for a KG instance; the limits keep laptop runs
// bounded the way the paper's timeout did.
func yagoQueries(timeout time.Duration) map[string]*eql.Query {
	f := func(max, limit int) eql.Filters {
		return eql.Filters{MaxEdges: max, Limit: limit, Timeout: timeout, Uni: true,
			Labels: table1Labels}
	}
	// J1: three variable-disjoint BGPs tied together by the two CTPs, so
	// the final join never degenerates to a cross product.
	j1 := &eql.Query{
		Head: []string{"p", "q", "w1", "w2"},
		BGPs: []eql.BGP{
			{Patterns: []eql.EdgePattern{{Src: eql.Var("p"), Edge: eql.Label("worksFor"), Dst: eql.Var("o")}}},
			{Patterns: []eql.EdgePattern{{Src: eql.Var("q"), Edge: eql.Label("bornIn"), Dst: eql.Var("c")}}},
			{Patterns: []eql.EdgePattern{{Src: eql.Var("r"), Edge: eql.Label("created"), Dst: eql.Var("k")}}},
		},
		CTPs: []eql.CTP{
			// Short connections, high limits: the two CTP tables must be
			// dense enough for their join with the BGP bindings to meet.
			{Members: []eql.Predicate{eql.Var("p"), eql.Var("q")}, TreeVar: "w1", Filters: f(2, 5000)},
			{Members: []eql.Predicate{eql.Var("o"), eql.Var("k")}, TreeVar: "w2", Filters: f(2, 5000)},
		},
	}

	j2 := &eql.Query{
		Head: []string{"p", "o", "w"},
		BGPs: []eql.BGP{
			{Patterns: []eql.EdgePattern{{Src: eql.Var("p"), Edge: eql.Label("citizenOf"), Dst: eql.Var("c")}}},
			{Patterns: []eql.EdgePattern{{Src: eql.Var("o"), Edge: eql.Label("headquarteredIn"), Dst: eql.Var("pl")}}},
		},
		CTPs: []eql.CTP{
			{Members: []eql.Predicate{eql.Var("p"), eql.Var("o")}, TreeVar: "w",
				Filters: eql.Filters{MaxEdges: 3, Limit: 200, Timeout: timeout}},
		},
	}
	j3 := &eql.Query{
		Head: []string{"w"},
		CTPs: []eql.CTP{
			{Members: []eql.Predicate{eql.Label("person0"), eql.Var("any")}, TreeVar: "w",
				Filters: eql.Filters{MaxEdges: 2, Limit: 500, Timeout: timeout}},
		},
	}
	return map[string]*eql.Query{"J1": j1, "J2": j2, "J3": j3}
}

// Table1Row is one measured cell group of Table 1.
type Table1Row struct {
	Query    string
	System   string
	Time     time.Duration
	Answers  int
	TimedOut bool
}

// RunTable1 measures every Table 1 cell on a YAGO-like graph.
func RunTable1(kg *gen.KG, timeout time.Duration) []Table1Row {
	g := kg.Graph
	ts := storage.NewTripleStore(g)
	queries := yagoQueries(timeout)
	var rows []Table1Row

	// MoLESP through the full EQL engine, with the Section 4.9
	// optimizations (multi-queue auto-enables on skew and universality).
	for _, name := range []string{"J1", "J2", "J3"} {
		q := queries[name]
		eng := engine.New(g, engine.Options{Algorithm: core.MoLESP})
		start := time.Now()
		res, err := eng.Execute(q)
		if err != nil {
			panic(err)
		}
		timedOut := false
		for _, st := range res.CTPStats {
			timedOut = timedOut || st.TimedOut
		}
		rows = append(rows, Table1Row{name, "MoLESP", time.Since(start), res.Table.NumRows(), timedOut})
	}

	// Path baselines approximate each query by enumerating (or checking)
	// paths between the CTP seed sets; J1 sums its two CTPs.
	labels := table1Labels
	seedPairs := table1SeedPairs(kg)
	for _, name := range []string{"J1", "J2", "J3"} {
		pairs := seedPairs[name]
		opts := baselines.PathOptions{MaxDepth: 3, Timeout: timeout, Limit: 500}

		start := time.Now()
		answers, timedOut := 0, false
		for _, p := range pairs {
			r := baselines.JEDIPaths(ts, p[0], p[1], labels, opts)
			answers += len(r.Paths)
			timedOut = timedOut || r.TimedOut
		}
		rows = append(rows, Table1Row{name, "JEDI", time.Since(start), answers, timedOut})

		start = time.Now()
		reach := 0
		for _, p := range pairs {
			if baselines.VirtuosoCheck(g, p[0], p[1], labels).Reachable {
				reach++
			}
		}
		rows = append(rows, Table1Row{name, "Virtuoso", time.Since(start), reach, false})

		start = time.Now()
		answers, timedOut = 0, false
		for _, p := range pairs {
			r := baselines.Neo4jPaths(g, p[0], p[1], baselines.PathOptions{
				MaxDepth: 3, Timeout: timeout, Limit: 500})
			answers += len(r.Paths)
			timedOut = timedOut || r.TimedOut
		}
		rows = append(rows, Table1Row{name, "Neo4j", time.Since(start), answers, timedOut})
	}
	return rows
}

// table1SeedPairs derives, per query, the seed-set pairs its CTPs connect
// (what the path baselines traverse between).
func table1SeedPairs(kg *gen.KG) map[string][][2][]graph.NodeID {
	g := kg.Graph
	targetsOf := func(label string) []graph.NodeID {
		l, ok := g.LabelIDOf(label)
		if !ok {
			return nil
		}
		var out []graph.NodeID
		seen := map[graph.NodeID]bool{}
		for _, e := range g.EdgesWithLabel(l) {
			t := g.Target(e)
			if !seen[t] {
				seen[t] = true
				out = append(out, t)
			}
		}
		return out
	}
	sourcesOf := func(label string) []graph.NodeID {
		l, ok := g.LabelIDOf(label)
		if !ok {
			return nil
		}
		var out []graph.NodeID
		seen := map[graph.NodeID]bool{}
		for _, e := range g.EdgesWithLabel(l) {
			s := g.Source(e)
			if !seen[s] {
				seen[s] = true
				out = append(out, s)
			}
		}
		return out
	}
	person0, _ := g.NodeByLabel("person0")
	return map[string][][2][]graph.NodeID{
		"J1": {
			{sourcesOf("worksFor"), sourcesOf("bornIn")},
			{targetsOf("worksFor"), targetsOf("bornIn")},
		},
		"J2": {
			{sourcesOf("citizenOf"), sourcesOf("headquarteredIn")},
		},
		"J3": {
			{[]graph.NodeID{person0}, kg.Graph.Nodes()},
		},
	}
}

func init() {
	register(Experiment{
		ID:    "table1",
		Title: "YAGO-like queries J1-J3: JEDI vs MoLESP vs Virtuoso vs Neo4j (seconds)",
		Run: func(cfg Config, w io.Writer) error {
			cfg = cfg.withDefaults()
			kg := gen.YAGOLike(cfg.scaled(3000), cfg.Seed)
			fmt.Fprintf(w, "graph: %d nodes, %d edges\n", kg.Graph.NumNodes(), kg.Graph.NumEdges())
			fmt.Fprintf(w, "%-4s %-10s %10s %8s\n", "q", "system", "time_ms", "answers")
			for _, r := range RunTable1(kg, cfg.Timeout) {
				fmt.Fprintf(w, "%-4s %-10s %10s %8d\n", r.Query, r.System, ms(r.Time, r.TimedOut), r.Answers)
			}
			return nil
		},
	})
}
