package core

// Property tests for the sorted-slice primitives of the BFT kernel:
// insertEdgeSorted / insertNodeSorted / unionEdgesSorted /
// unionNodesSorted are checked against naive map-based references, and
// the Into variants are checked to reuse caller buffers without
// corrupting their inputs.

import (
	"math/rand"
	"sort"
	"testing"

	"ctpquery/internal/graph"
	"ctpquery/internal/tree"
)

func naiveUnion(a, b []graph.EdgeID) []graph.EdgeID {
	seen := map[graph.EdgeID]bool{}
	var out []graph.EdgeID
	for _, e := range a {
		if !seen[e] {
			seen[e] = true
			out = append(out, e)
		}
	}
	for _, e := range b {
		if !seen[e] {
			seen[e] = true
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestUnionEdgesSortedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 3000; i++ {
		a := randomEdgeSet(rng, 12, 30) // small ID range provokes overlap
		b := randomEdgeSet(rng, 12, 30)
		got := unionEdgesSorted(a, b)
		want := naiveUnion(a, b)
		if !edgeSlicesEqual(got, want) {
			t.Fatalf("unionEdgesSorted(%v, %v) = %v, want %v", a, b, got, want)
		}
		if cap(got) > len(a)+len(b) {
			t.Fatalf("union over-allocated: cap %d > %d", cap(got), len(a)+len(b))
		}
	}
}

func TestUnionNodesSortedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for i := 0; i < 3000; i++ {
		mkNodes := func(es []graph.EdgeID) []graph.NodeID {
			out := make([]graph.NodeID, len(es))
			for i, e := range es {
				out[i] = graph.NodeID(e)
			}
			return out
		}
		a := mkNodes(randomEdgeSet(rng, 12, 30))
		b := mkNodes(randomEdgeSet(rng, 12, 30))
		got := unionNodesSorted(a, b)
		seen := map[graph.NodeID]bool{}
		var want []graph.NodeID
		for _, n := range append(append([]graph.NodeID{}, a...), b...) {
			if !seen[n] {
				seen[n] = true
				want = append(want, n)
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			t.Fatalf("unionNodesSorted(%v, %v) = %v, want %v", a, b, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("unionNodesSorted(%v, %v) = %v, want %v", a, b, got, want)
			}
		}
	}
}

func TestInsertEdgeSortedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 3000; i++ {
		s := randomEdgeSet(rng, 12, 100)
		e := graph.EdgeID(rng.Intn(100))
		dup := false
		for _, x := range s {
			if x == e {
				dup = true
			}
		}
		if dup {
			continue // insert requires absence
		}
		got := insertEdgeSorted(s, e)
		want := naiveUnion(s, []graph.EdgeID{e})
		if !edgeSlicesEqual(got, want) {
			t.Fatalf("insertEdgeSorted(%v, %v) = %v, want %v", s, e, got, want)
		}
	}
}

// The Into variants must reuse a caller buffer with sufficient capacity
// and must never modify their inputs.
func TestUnionIntoReusesBuffer(t *testing.T) {
	a := []graph.EdgeID{1, 3, 5}
	b := []graph.EdgeID{2, 3, 8}
	aCopy := append([]graph.EdgeID(nil), a...)
	bCopy := append([]graph.EdgeID(nil), b...)

	buf := make([]graph.EdgeID, 0, 16)
	got := tree.UnionEdgesInto(buf, a, b)
	if want := []graph.EdgeID{1, 2, 3, 5, 8}; !edgeSlicesEqual(got, want) {
		t.Fatalf("tree.UnionEdgesInto = %v, want %v", got, want)
	}
	if &got[0] != &buf[:1][0] {
		t.Fatal("tree.UnionEdgesInto did not reuse the buffer")
	}
	if !edgeSlicesEqual(a, aCopy) || !edgeSlicesEqual(b, bCopy) {
		t.Fatal("inputs were modified")
	}

	ibuf := make([]graph.EdgeID, 0, 16)
	igot := tree.InsertEdgeInto(ibuf, a, 4)
	if want := []graph.EdgeID{1, 3, 4, 5}; !edgeSlicesEqual(igot, want) {
		t.Fatalf("tree.InsertEdgeInto = %v, want %v", igot, want)
	}
	if &igot[0] != &ibuf[:1][0] {
		t.Fatal("tree.InsertEdgeInto did not reuse the buffer")
	}
	if !edgeSlicesEqual(a, aCopy) {
		t.Fatal("input was modified")
	}
}
