package core

import (
	"math/rand"
	"sort"
	"testing"

	"ctpquery/internal/graph"
	"ctpquery/internal/tree"
)

// randomEdgeSet returns a sorted, duplicate-free edge set.
func randomEdgeSet(rng *rand.Rand, maxLen, idRange int) []graph.EdgeID {
	n := rng.Intn(maxLen + 1)
	seen := map[graph.EdgeID]bool{}
	var out []graph.EdgeID
	for len(out) < n {
		e := graph.EdgeID(rng.Intn(idRange))
		if !seen[e] {
			seen[e] = true
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// The signature set must behave exactly like a map keyed on the full
// (root, edge set) identity, whatever the hash does.
func TestTreeSetMatchesNaiveMap(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := NewSigSet()
	naive := map[string]bool{}
	key := func(root graph.NodeID, edges []graph.EdgeID) string {
		return string(rune(root+2)) + tree.EdgeSetKey(edges)
	}
	for i := 0; i < 5000; i++ {
		edges := randomEdgeSet(rng, 6, 40) // small ranges force re-draws
		root := UnrootedRef
		if rng.Intn(2) == 0 {
			root = graph.NodeID(rng.Intn(10))
		}
		sig := tree.SigWithRoot(tree.EdgeSetSig(edges), root)
		k := key(root, edges)
		if got, want := s.Has(sig, root, edges), naive[k]; got != want {
			t.Fatalf("has(%v,%v) = %v, want %v", root, edges, got, want)
		}
		if got, want := s.Add(sig, root, edges), !naive[k]; got != want {
			t.Fatalf("add(%v,%v) = %v, want %v", root, edges, got, want)
		}
		naive[k] = true
		if !s.Has(sig, root, edges) {
			t.Fatalf("has after add = false for (%v,%v)", root, edges)
		}
	}
}

// Forced collisions (same sig, different identities) must still be told
// apart by the collision check.
func TestTreeSetCollisions(t *testing.T) {
	s := NewSigSet()
	const sig = 12345
	a := []graph.EdgeID{1, 2, 3}
	b := []graph.EdgeID{4, 5}
	c := []graph.EdgeID(nil)
	if !s.Add(sig, UnrootedRef, a) || !s.Add(sig, UnrootedRef, b) || !s.Add(sig, 7, c) {
		t.Fatal("first adds under one sig should all succeed")
	}
	if s.Add(sig, UnrootedRef, a) || s.Add(sig, UnrootedRef, b) || s.Add(sig, 7, c) {
		t.Fatal("re-adds must report duplicates")
	}
	if !s.Has(sig, UnrootedRef, a) || !s.Has(sig, UnrootedRef, b) || !s.Has(sig, 7, c) {
		t.Fatal("all three identities must be present")
	}
	if s.Has(sig, UnrootedRef, []graph.EdgeID{1, 2}) || s.Has(sig, 8, c) {
		t.Fatal("absent identities must stay absent")
	}
}

// Incremental signatures (Grow XOR, Merge combine) must agree with the
// from-scratch EdgeSetSig of the same set.
func TestIncrementalSigsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		edges := randomEdgeSet(rng, 12, 1000)
		want := tree.EdgeSetSig(edges)
		// Grow path: fold edges one by one.
		got := tree.SetSigBasis
		for _, e := range edges {
			got ^= tree.EdgeSig(e)
		}
		if got != want {
			t.Fatalf("incremental grow sig %x != %x for %v", got, want, edges)
		}
		// Merge path: split into two disjoint halves.
		cut := rng.Intn(len(edges) + 1)
		a, b := edges[:cut], edges[cut:]
		if m := tree.MergeSigs(tree.EdgeSetSig(a), tree.EdgeSetSig(b)); m != want {
			t.Fatalf("merge sig %x != %x for %v|%v", m, want, a, b)
		}
	}
}

// BenchmarkSignatureDedup measures the dedup probe the kernels run per
// candidate tree: hash an edge set incrementally, test membership, insert
// when new — against a pre-populated history, the steady state of a
// search. The signature path must not allocate per probe.
func BenchmarkSignatureDedup(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	const hist = 4096
	sets := make([][]graph.EdgeID, hist)
	s := NewSigSet()
	for i := range sets {
		sets[i] = randomEdgeSet(rng, 10, 1<<20)
		s.Add(tree.EdgeSetSig(sets[i]), UnrootedRef, sets[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set := sets[i%hist]
		sig := tree.EdgeSetSig(set)
		if !s.Has(sig, UnrootedRef, set) {
			b.Fatal("seeded set missing")
		}
	}
}

// BenchmarkSignatureDedupVsStringKeys quantifies what the hashed history
// replaced: the same probe through string keys.
func BenchmarkSignatureDedupVsStringKeys(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	const hist = 4096
	sets := make([][]graph.EdgeID, hist)
	m := make(map[string]bool, hist)
	for i := range sets {
		sets[i] = randomEdgeSet(rng, 10, 1<<20)
		m[tree.EdgeSetKey(sets[i])] = true
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !m[tree.EdgeSetKey(sets[i%hist])] {
			b.Fatal("seeded set missing")
		}
	}
}
