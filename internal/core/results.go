package core

import (
	"sort"

	"ctpquery/internal/graph"
	"ctpquery/internal/tree"
)

// ResultCollector accumulates result trees, deduplicating by edge set
// (single-node results by their node), verifying the UNI filter, scoring,
// and enforcing LIMIT / TOP k. It is the single source of the
// result-admission semantics: the sequential kernels use it directly and
// the parallel runtime (internal/exec) serializes Add behind a mutex and
// applies its own canonical ordering on top of Results. Like SigSet, a
// ResultCollector is single-writer — Add must not be called concurrently.
type ResultCollector struct {
	g        *graph.Graph
	si       *SeedIndex
	uni      bool
	score    ScoreFunc
	topK     int
	limit    int
	onResult func(Result) bool

	seen     *SigSet
	results  []Result
	limitHit bool
}

// NewResultCollector builds a collector for one search's options.
func NewResultCollector(g *graph.Graph, si *SeedIndex, opts Options) *ResultCollector {
	return &ResultCollector{
		g:        g,
		si:       si,
		uni:      opts.Filters.Uni,
		score:    opts.Score,
		topK:     opts.Filters.TopK,
		limit:    opts.Filters.Limit,
		onResult: opts.OnResult,
		seen:     NewSigSet(),
	}
}

// Add records a result tree. It returns true when the LIMIT filter is
// reached (or a streaming callback declined more) and the search should
// stop.
func (rc *ResultCollector) Add(t *tree.Tree) bool {
	if rc.limitHit {
		return true
	}
	sig, root, edges := TreeIdentity(t)
	if rc.seen.Has(sig, root, edges) {
		return false
	}
	if rc.uni && t.Size() > 0 {
		if _, ok := tree.UnidirectionalRoot(rc.g, t.Edges); !ok {
			return false
		}
	}
	rc.seen.Add(sig, root, edges)
	r := Result{Tree: t, Seeds: rc.si.SeedTuple(t)}
	if rc.score != nil {
		r.Score = rc.score(rc.g, t)
	}
	rc.results = append(rc.results, r)
	if rc.onResult != nil && !rc.onResult(r) {
		rc.limitHit = true
		return true
	}
	if rc.limit > 0 && len(rc.results) >= rc.limit {
		rc.limitHit = true
		return true
	}
	return false
}

// Results returns the results admitted so far, in discovery order. The
// slice is the collector's own; callers must not mutate it while the
// search runs.
func (rc *ResultCollector) Results() []Result { return rc.results }

// finish applies TOP k and returns the final result set.
func (rc *ResultCollector) finish() *ResultSet {
	rs := &ResultSet{Results: rc.results}
	if rc.topK > 0 && rc.score != nil && len(rs.Results) > rc.topK {
		// Stable: equal scores keep discovery order.
		idx := make([]int, len(rs.Results))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			return rs.Results[idx[a]].Score > rs.Results[idx[b]].Score
		})
		top := make([]Result, rc.topK)
		for i := 0; i < rc.topK; i++ {
			top[i] = rs.Results[idx[i]]
		}
		rs.Results = top
	}
	return rs
}
