package core

import (
	"sort"

	"ctpquery/internal/graph"
	"ctpquery/internal/tree"
)

// resultCollector accumulates result trees, deduplicating by edge set
// (single-node results by their node), verifying the UNI filter, scoring,
// and enforcing LIMIT / TOP k.
type resultCollector struct {
	g        *graph.Graph
	si       *seedIndex
	uni      bool
	score    ScoreFunc
	topK     int
	limit    int
	onResult func(Result) bool

	seen     treeSet
	results  []Result
	limitHit bool
}

func newResultCollector(g *graph.Graph, si *seedIndex, opts Options) *resultCollector {
	return &resultCollector{
		g:        g,
		si:       si,
		uni:      opts.Filters.Uni,
		score:    opts.Score,
		topK:     opts.Filters.TopK,
		limit:    opts.Filters.Limit,
		onResult: opts.OnResult,
		seen:     newTreeSet(),
	}
}

// add records a result tree. It returns true when the LIMIT filter is
// reached and the search should stop.
func (rc *resultCollector) add(t *tree.Tree) bool {
	if rc.limitHit {
		return true
	}
	sig, root, edges := treeIdentity(t)
	if rc.seen.has(sig, root, edges) {
		return false
	}
	if rc.uni && t.Size() > 0 {
		if _, ok := tree.UnidirectionalRoot(rc.g, t.Edges); !ok {
			return false
		}
	}
	rc.seen.add(sig, root, edges)
	r := Result{Tree: t, Seeds: rc.si.seedTuple(t)}
	if rc.score != nil {
		r.Score = rc.score(rc.g, t)
	}
	rc.results = append(rc.results, r)
	if rc.onResult != nil && !rc.onResult(r) {
		rc.limitHit = true
		return true
	}
	if rc.limit > 0 && len(rc.results) >= rc.limit {
		rc.limitHit = true
		return true
	}
	return false
}

// finish applies TOP k and returns the final result set.
func (rc *resultCollector) finish() *ResultSet {
	rs := &ResultSet{Results: rc.results}
	if rc.topK > 0 && rc.score != nil && len(rs.Results) > rc.topK {
		// Stable: equal scores keep discovery order.
		idx := make([]int, len(rs.Results))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			return rs.Results[idx[a]].Score > rs.Results[idx[b]].Score
		})
		top := make([]Result, rc.topK)
		for i := 0; i < rc.topK; i++ {
			top[i] = rs.Results[idx[i]]
		}
		rs.Results = top
	}
	return rs
}
