package core

import (
	"testing"
	"time"

	"ctpquery/internal/eql"
	"ctpquery/internal/gen"
	"ctpquery/internal/graph"
	"ctpquery/internal/tree"
)

// LABEL: restricting the chain graph to label "a" leaves exactly one
// result (the all-a path) instead of 2^N.
func TestLabelFilter(t *testing.T) {
	w := gen.Chain(6)
	for _, alg := range []Algorithm{BFT, GAM, MoLESP} {
		rs, _ := run(t, w.Graph, Explicit(w.Seeds...), Options{
			Algorithm: alg,
			Filters:   eql.Filters{Labels: []string{"a"}},
		})
		if rs.Len() != 1 {
			t.Fatalf("%v with LABEL a: %d results, want 1", alg, rs.Len())
		}
		for _, e := range rs.Results[0].Tree.Edges {
			if w.Graph.EdgeLabel(e) != "a" {
				t.Fatalf("%v: result contains edge with label %q", alg, w.Graph.EdgeLabel(e))
			}
		}
	}
	// A label absent from the graph yields no results.
	rs, _ := run(t, w.Graph, Explicit(w.Seeds...), Options{
		Algorithm: MoLESP,
		Filters:   eql.Filters{Labels: []string{"zzz"}},
	})
	if rs.Len() != 0 {
		t.Fatalf("absent label: %d results", rs.Len())
	}
}

// MAX: the chain's results have sizes N..2N? No — every result of
// Chain(n) has exactly n edges (one parallel edge per gap), so MAX n-1
// removes everything and MAX n keeps all.
func TestMaxFilter(t *testing.T) {
	const n = 5
	w := gen.Chain(n)
	for _, alg := range []Algorithm{BFT, GAM, MoLESP} {
		rs, _ := run(t, w.Graph, Explicit(w.Seeds...), Options{
			Algorithm: alg, Filters: eql.Filters{MaxEdges: n - 1}})
		if rs.Len() != 0 {
			t.Fatalf("%v MAX %d: %d results, want 0", alg, n-1, rs.Len())
		}
		rs2, _ := run(t, w.Graph, Explicit(w.Seeds...), Options{
			Algorithm: alg, Filters: eql.Filters{MaxEdges: n}})
		if rs2.Len() != 1<<n {
			t.Fatalf("%v MAX %d: %d results, want %d", alg, n, rs2.Len(), 1<<n)
		}
	}
}

// LIMIT: stop after k results.
func TestLimitFilter(t *testing.T) {
	w := gen.Chain(6)
	for _, alg := range []Algorithm{BFT, GAM, MoLESP} {
		rs, st := run(t, w.Graph, Explicit(w.Seeds...), Options{
			Algorithm: alg, Filters: eql.Filters{Limit: 3}})
		if rs.Len() != 3 {
			t.Fatalf("%v LIMIT 3: %d results", alg, rs.Len())
		}
		if !st.Truncated {
			t.Fatalf("%v LIMIT: Truncated flag not set", alg)
		}
	}
}

// TIMEOUT: a zero-ish budget on a large chain must time out and report it.
func TestTimeoutFilter(t *testing.T) {
	w := gen.Chain(22) // 4M potential results: cannot finish in 1ns
	rs, st, err := Search(w.Graph, Explicit(w.Seeds...), Options{
		Algorithm: MoLESP, Filters: eql.Filters{Timeout: time.Nanosecond}})
	if err != nil {
		t.Fatal(err)
	}
	if !st.TimedOut {
		t.Fatal("TimedOut flag not set")
	}
	if rs.Len() >= 1<<22 {
		t.Fatal("timeout did not truncate the search")
	}
}

// MaxTrees: the safety valve truncates runaway searches.
func TestMaxTreesTruncation(t *testing.T) {
	w := gen.Chain(14)
	_, st, err := Search(w.Graph, Explicit(w.Seeds...), Options{
		Algorithm: BFT, MaxTrees: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Truncated {
		t.Fatal("Truncated flag not set")
	}
	if st.Kept() > 101 {
		t.Fatalf("kept %d trees, want <= 101", st.Kept())
	}
}

// UNI on a forward-directed line: the root must reach both seeds along
// directed paths; on Line(2) the A end is such a root. With alternating
// edge directions no directed root exists.
func TestUniFilter(t *testing.T) {
	fw := gen.Line(2, 2, gen.Forward)
	for _, alg := range []Algorithm{BFT, GAM, ESP, MoLESP} {
		rs, _ := run(t, fw.Graph, Explicit(fw.Seeds...), Options{
			Algorithm: alg, Filters: eql.Filters{Uni: true}})
		if rs.Len() != 1 {
			t.Fatalf("%v UNI on forward line: %d results, want 1", alg, rs.Len())
		}
		if _, ok := tree.UnidirectionalRoot(fw.Graph, rs.Results[0].Tree.Edges); !ok {
			t.Fatalf("%v UNI result is not unidirectional", alg)
		}
	}

	alt := gen.Line(2, 2, gen.Alternate)
	for _, alg := range []Algorithm{BFT, GAM, MoLESP} {
		rs, _ := run(t, alt.Graph, Explicit(alt.Seeds...), Options{
			Algorithm: alg, Filters: eql.Filters{Uni: true}})
		if rs.Len() != 0 {
			t.Fatalf("%v UNI on alternating line: %d results, want 0", alg, rs.Len())
		}
		// Without UNI the result is back (bidirectional semantics, R3).
		rs2, _ := run(t, alt.Graph, Explicit(alt.Seeds...), Options{Algorithm: alg})
		if rs2.Len() != 1 {
			t.Fatalf("%v bidirectional on alternating line: %d results, want 1", alg, rs2.Len())
		}
	}
}

// UNI on a star directed away from the center: the center is the root.
func TestUniFilterStar(t *testing.T) {
	w := gen.Star(3, 1, gen.Forward) // center -> each seed
	for _, alg := range []Algorithm{GAM, LESP, MoLESP} {
		rs, _ := run(t, w.Graph, Explicit(w.Seeds...), Options{
			Algorithm: alg, Filters: eql.Filters{Uni: true}})
		if rs.Len() != 1 {
			t.Fatalf("%v UNI on star: %d results, want 1", alg, rs.Len())
		}
		root, ok := tree.UnidirectionalRoot(w.Graph, rs.Results[0].Tree.Edges)
		if !ok {
			t.Fatalf("%v: no directed root", alg)
		}
		if lbl := w.Graph.NodeLabel(root); lbl != "center" {
			t.Fatalf("root = %q, want center", lbl)
		}
	}
}

// SCORE + TOP k: with the negative-size score, TOP 1 keeps a smallest
// result.
func TestScoreTopK(t *testing.T) {
	// Chain(3) has 8 results, all of size 3 — add a shortcut so sizes vary.
	b := graph.NewBuilder()
	a := b.AddNode("A")
	x := b.AddNode("x")
	c := b.AddNode("C")
	b.AddEdge(a, "t", x)
	b.AddEdge(x, "t", c)
	b.AddEdge(a, "s", c) // direct shortcut: 1-edge result
	g := b.Build()
	seeds := singletons(a, c)
	sizeScore := func(g *graph.Graph, t *tree.Tree) float64 { return -float64(t.Size()) }

	rs, _ := run(t, g, seeds, Options{
		Algorithm: MoLESP,
		Filters:   eql.Filters{TopK: 1, Score: "size"},
		Score:     sizeScore,
	})
	if rs.Len() != 1 {
		t.Fatalf("TOP 1: %d results", rs.Len())
	}
	if rs.Results[0].Tree.Size() != 1 {
		t.Fatalf("TOP 1 kept a %d-edge tree, want the 1-edge shortcut", rs.Results[0].Tree.Size())
	}
	if rs.Results[0].Score != -1 {
		t.Fatalf("score = %v, want -1", rs.Results[0].Score)
	}

	// Without TopK, scores are still annotated.
	rs2, _ := run(t, g, seeds, Options{Algorithm: MoLESP, Score: sizeScore})
	if rs2.Len() != 2 {
		t.Fatalf("full search: %d results, want 2", rs2.Len())
	}
	for _, r := range rs2.Results {
		if r.Score != -float64(r.Tree.Size()) {
			t.Fatalf("score %v inconsistent with size %d", r.Score, r.Tree.Size())
		}
	}
}

// Combined filters: LABEL + MAX + LIMIT compose.
func TestCombinedFilters(t *testing.T) {
	w := gen.Chain(8)
	rs, _ := run(t, w.Graph, Explicit(w.Seeds...), Options{
		Algorithm: MoLESP,
		Filters: eql.Filters{
			Labels:   []string{"a", "b"},
			MaxEdges: 8,
			Limit:    5,
		},
	})
	if rs.Len() != 5 {
		t.Fatalf("combined filters: %d results, want 5", rs.Len())
	}
}

// Filters pushed into BFT prevent the blow-up: with MAX equal to the
// result size the baseline enumerates far fewer trees than without.
func TestMaxFilterPrunesSearchSpace(t *testing.T) {
	w := gen.Star(4, 2, gen.Forward)
	_, unbounded := run(t, w.Graph, Explicit(w.Seeds...), Options{Algorithm: BFTAM})
	_, bounded := run(t, w.Graph, Explicit(w.Seeds...), Options{
		Algorithm: BFTAM, Filters: eql.Filters{MaxEdges: w.Graph.NumEdges()}})
	if bounded.Created > unbounded.Created {
		t.Fatalf("MAX filter increased work: %d > %d", bounded.Created, unbounded.Created)
	}
}

// Seed tuples must bind each result to one node per seed set.
func TestSeedTuples(t *testing.T) {
	w := gen.Comb(2, 1, 2, 1, gen.Forward)
	rs, _ := run(t, w.Graph, Explicit(w.Seeds...), Options{Algorithm: MoLESP})
	if rs.Len() != 1 {
		t.Fatalf("results = %d", rs.Len())
	}
	r := rs.Results[0]
	if len(r.Seeds) != len(w.Seeds) {
		t.Fatalf("seed tuple has %d entries, want %d", len(r.Seeds), len(w.Seeds))
	}
	for i, s := range r.Seeds {
		if s != w.Seeds[i][0] {
			t.Fatalf("seed %d = %d, want %d", i, s, w.Seeds[i][0])
		}
	}
}
