// Package core implements the paper's primary contribution: the evaluation
// of set-based Connecting Tree Pattern (CTP) results (Section 4). Given a
// graph and m seed sets, a CTP search enumerates the minimal subtrees of
// the graph containing exactly one node from each seed set, traversing
// edges in both directions by default.
//
// Eight algorithms are provided, exactly as studied in the paper:
//
//	BFT     — breadth-first tree search (Section 4.1)
//	BFTM    — BFT + one-shot Merge (Section 4.3)
//	BFTAM   — BFT + aggressive Merge (Section 4.3)
//	GAM     — Grow and Aggressive Merge (Section 4.2)
//	ESP     — GAM + Edge Set Pruning (Section 4.4)
//	MoESP   — Merge-oriented ESP (Section 4.5)
//	LESP    — Limited Edge Set Pruning (Section 4.6)
//	MoLESP  — Mo + LESP combined (Section 4.7, Algorithms 1–5); complete
//	          for m <= 3 and for every result whose simple tree
//	          decomposition consists of rooted merges (Property 9)
//
// The CTP filters of Section 2 (UNI, LABEL, MAX, LIMIT, TIMEOUT, and
// SCORE/TOP via a score callback) are pushed into the search (Section 4.8),
// and the very-large-seed-set strategies of Section 4.9 (universal seed
// sets, multi-queue scheduling) are supported.
package core

import (
	"fmt"
	"runtime/metrics"
	"time"

	"ctpquery/internal/fault"

	"ctpquery/internal/bitset"
	"ctpquery/internal/eql"
	"ctpquery/internal/graph"
	"ctpquery/internal/tree"
)

// Algorithm selects a CTP evaluation strategy. The zero value is "unset"
// and resolves to MoLESP, the paper's recommended variant.
type Algorithm int

// The CTP evaluation algorithms of Section 4.
const (
	BFT Algorithm = iota + 1
	BFTM
	BFTAM
	GAM
	ESP
	MoESP
	LESP
	MoLESP
)

var algorithmNames = [...]string{"BFT", "BFT-M", "BFT-AM", "GAM", "ESP", "MoESP", "LESP", "MoLESP"}

// String returns the paper's name for the algorithm.
func (a Algorithm) String() string {
	if a < BFT || int(a-1) >= len(algorithmNames) {
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
	return algorithmNames[a-1]
}

// Algorithms lists every algorithm, in the paper's presentation order.
func Algorithms() []Algorithm {
	return []Algorithm{BFT, BFTM, BFTAM, GAM, ESP, MoESP, LESP, MoLESP}
}

// GAMFamily lists the Grow-and-Merge variants compared in Figure 11.
func GAMFamily() []Algorithm { return []Algorithm{GAM, ESP, MoESP, LESP, MoLESP} }

// SeedSet is one S_i of a CTP. Universal marks the set as N, the set of
// all graph nodes (Section 4.9): universal sets spawn no Init trees and
// every node counts as a match for them.
type SeedSet struct {
	Nodes     []graph.NodeID
	Universal bool
}

// Explicit wraps node lists as non-universal seed sets.
func Explicit(sets ...[]graph.NodeID) []SeedSet {
	out := make([]SeedSet, len(sets))
	for i, s := range sets {
		out[i] = SeedSet{Nodes: s}
	}
	return out
}

// ScoreFunc assigns a score to a result tree; higher is better (Section 2).
type ScoreFunc func(g *graph.Graph, t *tree.Tree) float64

// PriorityFunc orders the search: Grow opportunities with lower values are
// popped first. The default prioritizes smallest trees, breaking ties in
// insertion (FIFO) order, as in the paper's experiments. Completeness of
// MoLESP holds for any order (Section 4.8).
type PriorityFunc func(t *tree.Tree, e graph.EdgeID) float64

// Options configures a Search.
type Options struct {
	Algorithm Algorithm

	// Filters are pushed into the search (Section 4.8). Filters.Score is
	// resolved by the caller into Score below; the name itself is ignored
	// here.
	Filters eql.Filters

	// Score annotates results; combined with Filters.TopK it keeps only
	// the k best.
	Score ScoreFunc

	// Priority overrides the exploration order.
	Priority PriorityFunc

	// OnResult, when set, streams each deduplicated result as it is
	// found (before LIMIT/TOP-k trimming); returning false stops the
	// search, reported as Stats.Truncated. Useful for interactive
	// exploration, where a journalist inspects connections as they
	// surface instead of waiting for the full enumeration.
	OnResult func(Result) bool

	// MultiQueue enables the skewed-seed-set strategy of Section 4.9: one
	// priority queue per tree signature, always growing from the queue
	// with the fewest entries.
	MultiQueue bool

	// Parallelism selects the number of search workers for the GAM-family
	// algorithms (the internal/exec runtime): 0 keeps the sequential
	// legacy kernel, 1 runs the parallel runtime with a single worker (its
	// overhead baseline), and K > 1 shards the search across K workers by
	// tree root. BFT-family algorithms and MultiQueue scheduling always
	// run sequentially, as does any build that never linked the runtime
	// (the engine links it; direct core users import internal/exec for its
	// side effect). With Parallelism > 1, Priority and Score callbacks may
	// be invoked from several goroutines and must be pure; OnResult is
	// serialized but its invocation order is schedule-dependent.
	Parallelism int

	// MaxTrees aborts the search (reporting Stats.Truncated) once this
	// many provenances have been kept; a safety valve for the exponential
	// breadth-first baselines. Zero means no bound.
	MaxTrees int

	// Done, when non-nil, aborts the search once closed, reported like a
	// timeout through Stats.TimedOut. It is how callers propagate
	// context cancellation into a running search.
	Done <-chan struct{}

	// TrackAllocs samples the runtime/metrics heap-allocation counter
	// around the search and reports the delta through Stats.Allocations.
	// Unlike runtime.ReadMemStats, metrics.Read does not stop the world,
	// so the probe is safe on a concurrent server; the counter is
	// process-global, so concurrent searches inflate each other's deltas —
	// treat the number as an observability signal, not a benchmark (use
	// the testing.B benchmarks for that).
	TrackAllocs bool
}

// Result is one (s_1, ..., s_m, t) tuple of a set-based CTP result
// (Definition 2.8). Seeds[i] is the tree's node from seed set i; for
// universal sets it is the tree root (any tree node matches, see
// Definition 2.8's adjustment for N seed sets).
type Result struct {
	Tree  *tree.Tree
	Seeds []graph.NodeID
	Score float64
}

// ResultSet collects CTP results, deduplicated by edge set.
type ResultSet struct {
	Results []Result
}

// Len returns the number of results.
func (r *ResultSet) Len() int { return len(r.Results) }

// Stats reports search effort, matching the quantities plotted in the
// paper (Figure 11 reports Kept, the number of provenances built).
type Stats struct {
	Inits   int // Init provenances kept
	Grows   int // Grow provenances kept
	Merges  int // Merge provenances kept
	MoTrees int // Mo provenances kept (MoESP/MoLESP)

	Created   int // provenances constructed, incl. discarded ones
	Pruned    int // provenances discarded by (rooted or edge-set) pruning
	Spared    int // trees the LESP exemption rescued from pruning
	QueuePops int

	// Hot-path observability (the per-query report ctpserve surfaces).
	Recycled     int    // rejected candidates returned to the buffer pool
	PeakTrees    int    // peak live provenances (Created - Recycled high-water)
	PeakQueueLen int    // high-water mark of the grow queue
	Allocations  uint64 // heap allocations during the search (Options.TrackAllocs)

	Results   int
	TimedOut  bool
	Truncated bool // stopped by MaxTrees or Limit
	Duration  time.Duration

	// Parallel-runtime observability (internal/exec). Parallelism is the
	// worker count the search actually ran with (0 for the sequential
	// kernels); Workers holds one entry per worker.
	Parallelism int
	Workers     []WorkerStats
}

// WorkerStats reports one parallel-search worker's share of the effort.
type WorkerStats struct {
	Ops     int   // grow ops and exchanged tasks processed
	Kept    int   // provenances this worker kept
	Shipped int   // tasks routed to other workers' shards
	Stolen  int   // ops stolen from other workers' queues
	BusyNS  int64 // thread CPU time inside the worker loop (0 where unsupported)
	WallNS  int64 // wall time inside the worker loop (spawn to drain)
}

// created counts a freshly constructed provenance and tracks the live
// high-water mark.
func (s *Stats) created() {
	s.Created++
	if live := s.Created - s.Recycled; live > s.PeakTrees {
		s.PeakTrees = live
	}
}

// noteQueueLen tracks the grow-queue high-water mark.
func (s *Stats) noteQueueLen(n int) {
	if n > s.PeakQueueLen {
		s.PeakQueueLen = n
	}
}

// Kept returns the total number of provenances kept — the paper's "number
// of provenances built" metric.
func (s *Stats) Kept() int { return s.Inits + s.Grows + s.Merges + s.MoTrees }

// Search evaluates the CTP defined by the seed sets over g. It returns
// the (possibly filter-restricted) set-based CTP result and search
// statistics. An error is returned only for invalid configurations;
// timeouts and truncations are reported through Stats.
func Search(g *graph.Graph, seeds []SeedSet, opts Options) (*ResultSet, *Stats, error) {
	if len(seeds) == 0 {
		return nil, nil, fmt.Errorf("core: no seed sets")
	}
	if len(seeds) > 1<<16 {
		return nil, nil, fmt.Errorf("core: too many seed sets (%d)", len(seeds))
	}
	allUniversal := true
	for i, s := range seeds {
		if !s.Universal {
			allUniversal = false
			if len(s.Nodes) == 0 {
				// An empty seed set has no matches: the CTP result is empty.
				return &ResultSet{}, &Stats{}, nil
			}
		} else {
			_ = i
		}
	}
	if allUniversal {
		return nil, nil, fmt.Errorf("core: all seed sets are universal; the search has no anchor")
	}
	if opts.Algorithm == 0 {
		opts.Algorithm = MoLESP
	}
	var a0 uint64
	if opts.TrackAllocs {
		a0 = heapAllocObjects()
	}
	var (
		rs  *ResultSet
		st  *Stats
		err error
	)
	switch opts.Algorithm {
	case BFT, BFTM, BFTAM:
		rs, st, err = contained("core: "+opts.Algorithm.String(), func() (*ResultSet, *Stats, error) {
			return bftSearch(g, seeds, opts)
		})
	case GAM, ESP, MoESP, LESP, MoLESP:
		if opts.Parallelism > 0 && !opts.MultiQueue && parallelKernel != nil {
			// The parallel runtime has its own containment boundaries (one
			// per worker, one around the coordinator).
			rs, st, err = parallelKernel(g, seeds, opts)
		} else {
			rs, st, err = contained("core: "+opts.Algorithm.String(), func() (*ResultSet, *Stats, error) {
				return gamSearch(g, seeds, opts)
			})
		}
	default:
		return nil, nil, fmt.Errorf("core: unknown algorithm %v", opts.Algorithm)
	}
	if opts.TrackAllocs && err == nil {
		st.Allocations = heapAllocObjects() - a0
	}
	return rs, st, err
}

// Sequential-kernel probe points (inert unless armed via internal/fault):
// one per main loop, hit once per queue pop, so a chaos test can land a
// panic on an exact iteration of either kernel.
var (
	probeGamPop = fault.Register("core.gam.pop")
	probeBftPop = fault.Register("core.bft.pop")
)

// contained runs a sequential kernel behind a panic containment
// boundary: a panic in the search (or in a caller-supplied callback it
// invokes) becomes a structured *fault.PanicError instead of killing
// the process — essential once searches run inside a server.
func contained(name string, kernel func() (*ResultSet, *Stats, error)) (rs *ResultSet, st *Stats, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			rs, st = nil, nil
			err = fault.Recovered(name, rec)
		}
	}()
	return kernel()
}

// parallelKernel is the GAM-family runtime internal/exec registers at
// init. A function variable (rather than a direct call) breaks the import
// cycle: exec builds on core's exported kernel toolkit, so core cannot
// import it back.
var parallelKernel func(g *graph.Graph, seeds []SeedSet, opts Options) (*ResultSet, *Stats, error)

// RegisterParallelKernel installs the Options.Parallelism runtime. It is
// called from internal/exec's init and must not be called concurrently
// with searches.
func RegisterParallelKernel(fn func(g *graph.Graph, seeds []SeedSet, opts Options) (*ResultSet, *Stats, error)) {
	parallelKernel = fn
}

// heapAllocObjects reads the cumulative heap allocation count without
// stopping the world (unlike runtime.ReadMemStats).
func heapAllocObjects() uint64 {
	sample := [1]metrics.Sample{{Name: "/gc/heap/allocs:objects"}}
	metrics.Read(sample[:])
	if sample[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return sample[0].Value.Uint64()
}

// SeedIndex resolves node -> seed-set membership and tracks universal
// sets. It is immutable after BuildSeedIndex and safe for concurrent
// readers, which is what lets the parallel runtime share one index across
// workers.
type SeedIndex struct {
	masks        map[graph.NodeID]bitset.Bits
	required     bitset.Bits // all non-universal set indices
	numSets      int
	hasUniversal bool
}

func BuildSeedIndex(seeds []SeedSet) *SeedIndex {
	idx := &SeedIndex{
		masks:   make(map[graph.NodeID]bitset.Bits),
		numSets: len(seeds),
	}
	for i, s := range seeds {
		if s.Universal {
			idx.hasUniversal = true
			continue
		}
		idx.required.Set(i)
		for _, n := range s.Nodes {
			m := idx.masks[n]
			m.Set(i)
			idx.masks[n] = m
		}
	}
	return idx
}

// mask returns the seed-set membership of n (nil for non-seeds).
func (si *SeedIndex) Mask(n graph.NodeID) bitset.Bits { return si.masks[n] }

// isSeed reports whether n belongs to any non-universal seed set.
func (si *SeedIndex) IsSeed(n graph.NodeID) bool {
	return len(si.masks[n]) > 0 && !si.masks[n].IsEmpty()
}

// covers reports whether sat covers every non-universal seed set.
func (si *SeedIndex) Covers(sat bitset.Bits) bool { return sat.Contains(si.required) }

// NumSets returns the number of seed sets, universal ones included.
func (si *SeedIndex) NumSets() int { return si.numSets }

// HasUniversal reports whether any seed set is universal (N).
func (si *SeedIndex) HasUniversal() bool { return si.hasUniversal }

// seedTuple extracts, for each seed set, the tree's node belonging to it;
// universal sets get the tree root.
func (si *SeedIndex) SeedTuple(t *tree.Tree) []graph.NodeID {
	out := make([]graph.NodeID, si.numSets)
	for i := range out {
		out[i] = t.Root // default for universal sets
	}
	for _, n := range t.Nodes {
		if m := si.masks[n]; m != nil {
			for _, i := range m.Indices() {
				out[i] = n
			}
		}
	}
	return out
}

// LabelAllow compiles the LABEL filter into a set of permitted label IDs;
// nil means unrestricted. Labels absent from the graph simply never match.
func LabelAllow(g *graph.Graph, labels []string) map[graph.LabelID]bool {
	if len(labels) == 0 {
		return nil
	}
	out := make(map[graph.LabelID]bool, len(labels))
	for _, l := range labels {
		if id, ok := g.LabelIDOf(l); ok {
			out[id] = true
		}
	}
	return out
}

// Deadline tracks the TIMEOUT filter and caller cancellation with cheap
// periodic checks.
type Deadline struct {
	at    time.Time
	armed bool
	done  <-chan struct{}
	tick  int
}

func NewDeadline(timeout time.Duration, done <-chan struct{}) *Deadline {
	d := &Deadline{done: done}
	if timeout > 0 {
		d.at = time.Now().Add(timeout)
		d.armed = true
	}
	return d
}

// expired polls the clock and the done channel every 64 calls to stay
// cheap in the hot loop.
func (d *Deadline) Expired() bool {
	if !d.armed && d.done == nil {
		return false
	}
	d.tick++
	if d.tick&63 != 0 {
		return false
	}
	if d.done != nil {
		select {
		case <-d.done:
			return true
		default:
		}
	}
	return d.armed && time.Now().After(d.at)
}
