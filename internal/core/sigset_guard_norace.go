//go:build !race

package core

// sigGuard is a no-op in normal builds; see sigset_guard_race.go.
type sigGuard struct{}

func (g *sigGuard) enter() {}
func (g *sigGuard) exit()  {}
