package core

import (
	"time"

	"ctpquery/internal/bitset"
	"ctpquery/internal/graph"
	"ctpquery/internal/tree"
)

// Variant toggles the three orthogonal refinements that turn GAM into
// ESP, MoESP, LESP, and MoLESP. It is exported so the parallel runtime
// (internal/exec) resolves the same algorithm semantics as the sequential
// kernel below.
type Variant struct {
	ESP  bool // prune on edge sets (Definition 4.3) instead of rooted trees
	Mo   bool // inject seed-rooted Mo copies (Section 4.5)
	LESP bool // exempt well-connected merge roots from pruning (Section 4.6)
}

// VariantOf resolves a GAM-family algorithm to its refinement toggles; it
// panics on BFT-family algorithms.
func VariantOf(a Algorithm) Variant {
	switch a {
	case GAM:
		return Variant{}
	case ESP:
		return Variant{ESP: true}
	case MoESP:
		return Variant{ESP: true, Mo: true}
	case LESP:
		return Variant{ESP: true, LESP: true}
	case MoLESP:
		return Variant{ESP: true, Mo: true, LESP: true}
	}
	panic("core: not a GAM-family algorithm: " + a.String())
}

// gamState carries the shared globals of Algorithms 1–5: the priority
// queue, the history, the TreesRootedIn index, the seed signatures ss_n,
// and the result set.
type gamState struct {
	g       *graph.Graph
	si      *SeedIndex
	variant Variant
	opts    Options

	allowed  map[graph.LabelID]bool // LABEL filter; nil = all
	maxEdges int                    // MAX filter; 0 = unlimited
	uni      bool

	queue    opQueue
	seq      uint64
	priority PriorityFunc

	histEdge   *SigSet                       // ESP history: edge-set signatures
	rootedSeen *SigSet                       // kept rooted trees, by rooted signature
	byRoot     map[graph.NodeID][]*tree.Tree // TreesRootedIn
	ss         map[graph.NodeID]bitset.Bits  // seed signatures (Section 4.6)

	collector *ResultCollector
	stats     *Stats
	dl        *Deadline
	stop      bool
}

// gamSearch runs GAM or one of its pruning variants (Algorithm 1).
func gamSearch(g *graph.Graph, seeds []SeedSet, opts Options) (*ResultSet, *Stats, error) {
	start := time.Now()
	si := BuildSeedIndex(seeds)
	s := &gamState{
		g:          g,
		si:         si,
		variant:    VariantOf(opts.Algorithm),
		opts:       opts,
		allowed:    LabelAllow(g, opts.Filters.Labels),
		maxEdges:   opts.Filters.MaxEdges,
		uni:        opts.Filters.Uni,
		priority:   opts.Priority,
		histEdge:   NewSigSet(),
		rootedSeen: NewSigSet(),
		byRoot:     make(map[graph.NodeID][]*tree.Tree),
		ss:         make(map[graph.NodeID]bitset.Bits),
		stats:      &Stats{},
		dl:         NewDeadline(opts.Filters.Timeout, opts.Done),
	}
	if s.priority == nil {
		// Default order: smallest trees first (the order used in all of
		// the paper's experiments), FIFO among equals.
		s.priority = func(t *tree.Tree, e graph.EdgeID) float64 { return float64(t.Size()) }
	}
	if opts.MultiQueue {
		s.queue = newMultiQueue()
	} else {
		s.queue = newSingleQueue()
	}
	s.collector = NewResultCollector(g, si, opts)

	// Init trees: one per distinct seed node, over all non-universal sets
	// (universal sets spawn no Init trees, Section 4.9).
	inited := make(map[graph.NodeID]bool)
	for _, set := range seeds {
		if set.Universal {
			continue
		}
		for _, n := range set.Nodes {
			if inited[n] {
				continue
			}
			inited[n] = true
			mask := si.Mask(n)
			t := tree.NewInit(n, mask)
			s.stats.created()
			s.updateSignature(t)
			s.processTree(t)
			if s.stop {
				break
			}
		}
		if s.stop {
			break
		}
	}

	// Main loop (Algorithm 1 lines 8–11).
	for !s.stop {
		op, ok := s.queue.pop()
		if !ok {
			break
		}
		probeGamPop.Hit()
		s.stats.QueuePops++
		if s.dl.Expired() {
			s.stats.TimedOut = true
			break
		}
		newRoot := s.g.Other(op.e, op.t.Root)
		t := tree.NewGrow(op.t, op.e, newRoot, s.si.Mask(newRoot))
		s.stats.created()
		s.updateSignature(t)
		s.processTree(t)
	}

	s.stats.Duration = time.Since(start)
	rs := s.collector.finish()
	s.stats.Results = len(rs.Results)
	return rs, s.stats, nil
}

// updateSignature maintains ss_n: when a new (n,s)-rooted path (Definition
// 4.4) reaches n, the bits of its origin seed are set on n.
func (s *gamState) updateSignature(t *tree.Tree) {
	if !s.variant.LESP || !t.SeedPath {
		return
	}
	m := s.ss[t.Root]
	(&m).UnionInPlace(t.Sat)
	s.ss[t.Root] = m
}

// isNew implements Algorithm 4 for the ESP family, plain rooted-tree
// deduplication for GAM, and always-true for 0-edge (Init) trees, which
// are deduplicated at creation. Identity checks run on 64-bit signatures
// with collision-checked buckets — no string key is built.
func (s *gamState) isNew(t *tree.Tree) bool {
	if t.Size() == 0 || !s.variant.ESP {
		// GAM (and 0-edge trees): discard all but the first provenance of
		// a rooted tree.
		return !s.rootedSeen.Has(t.RootedSig(), t.Root, t.Edges)
	}
	if !s.histEdge.Has(t.Sig(), UnrootedRef, t.Edges) {
		return true
	}
	if s.variant.LESP {
		// The LESP exemption: roots already connected to >= 3 seed sets
		// with graph degree >= 3 keep their (new) rooted trees.
		if s.ss[t.Root].Count() >= 3 && s.g.Degree(t.Root) >= 3 &&
			!s.rootedSeen.Has(t.RootedSig(), t.Root, t.Edges) {
			s.stats.Spared++
			return true
		}
	}
	return false
}

// keep records a tree in the history and statistics. The histories alias
// the tree's edge slice, which is safe: kept trees are immutable and
// never recycled.
func (s *gamState) keep(t *tree.Tree) {
	s.rootedSeen.Add(t.RootedSig(), t.Root, t.Edges)
	if s.variant.ESP && t.Size() > 0 {
		s.histEdge.Add(t.Sig(), UnrootedRef, t.Edges)
	}
	switch t.Kind {
	case tree.Init:
		s.stats.Inits++
	case tree.Grow:
		s.stats.Grows++
	case tree.Merge:
		s.stats.Merges++
	case tree.Mo:
		s.stats.MoTrees++
	}
	if s.opts.MaxTrees > 0 && s.stats.Kept() >= s.opts.MaxTrees {
		s.stats.Truncated = true
		s.stop = true
	}
}

// isResult reports whether the tree covers every (non-universal) seed set.
func (s *gamState) isResult(t *tree.Tree) bool { return s.si.Covers(t.Sat) }

// processTree implements Algorithm 2: deduplicate, report results, record
// for merging (with Mo injection), feed the queue, and merge aggressively.
func (s *gamState) processTree(t *tree.Tree) {
	if s.stop {
		return
	}
	if s.dl.Expired() {
		s.stats.TimedOut = true
		s.stop = true
		return
	}
	if !s.isNew(t) {
		s.stats.Pruned++
		s.recycle(t)
		return
	}
	s.keep(t)
	if s.stop {
		return
	}
	if s.isResult(t) {
		if s.collector.Add(t) {
			s.stats.Truncated = true
			s.stop = true
			return
		}
		// With universal seed sets, larger results exist (Definition 2.8's
		// adjustment for N seed sets): results keep growing and merging.
		if !s.si.hasUniversal {
			return
		}
	}
	s.recordForMerging(t)
	if !t.HasMo {
		s.pushGrows(t)
	}
	s.mergeAll(t)
}

// recycle returns a rejected candidate's buffers to the pool. Only called
// on trees no history, index, queue, or result references.
func (s *gamState) recycle(t *tree.Tree) {
	if tree.Recycle(t) {
		s.stats.Recycled++
	}
}

// recordForMerging implements Algorithm 3: index the tree by its root and,
// for Mo variants, inject copies rooted at each seed node of the tree
// whenever the provenance gained seeds over its children (Section 4.5).
// Mo trees are skipped under UNI: re-rooting breaks the directed-tree
// invariant the UNI filter requires.
func (s *gamState) recordForMerging(t *tree.Tree) {
	s.byRoot[t.Root] = append(s.byRoot[t.Root], t)
	if !s.variant.Mo || s.uni || !s.gainedSeeds(t) {
		return
	}
	for _, n := range t.Nodes {
		if n == t.Root || !s.si.IsSeed(n) {
			continue
		}
		mo := tree.NewMo(t, n)
		s.stats.created()
		if s.rootedSeen.Has(mo.RootedSig(), mo.Root, mo.Edges) {
			s.stats.Pruned++
			s.recycle(mo)
			continue
		}
		s.keep(mo)
		if s.stop {
			return
		}
		s.byRoot[n] = append(s.byRoot[n], mo)
		s.mergeAll(mo)
		if s.stop {
			return
		}
	}
}

// gainedSeeds reports whether t has strictly more seeds than each of its
// provenance children — the Section 4.5 trigger for Mo injection.
func (s *gamState) gainedSeeds(t *tree.Tree) bool {
	switch t.Kind {
	case tree.Init:
		return false // single node: no other seed to re-root at
	case tree.Grow:
		return t.Sat.Count() > t.Left.Sat.Count()
	case tree.Merge:
		return true // children have disjoint, non-empty coverage
	}
	return false
}

// pushGrows feeds the queue with the (t, e) pairs satisfying Grow1, Grow2,
// and the pushed-down filters (Section 4.8).
func (s *gamState) pushGrows(t *tree.Tree) {
	if s.maxEdges > 0 && t.Size() >= s.maxEdges {
		return
	}
	for _, e := range s.g.IncidentEdges(t.Root) {
		if s.allowed != nil && !s.allowed[s.g.EdgeLabelID(e)] {
			continue
		}
		other := s.g.Other(e, t.Root)
		if t.ContainsNode(other) {
			continue // Grow1
		}
		if s.si.Mask(other).Intersects(t.Sat) {
			continue // Grow2
		}
		if s.uni && s.g.Source(e) != other {
			// UNI: grow backward over the edge so the eventual root
			// reaches every seed along directed paths.
			continue
		}
		s.seq++
		s.queue.push(growOp{t: t, e: e, prio: s.priority(t, e), seq: s.seq})
	}
	s.stats.noteQueueLen(s.queue.len())
}

// mergeable checks Merge1/Merge2 (Section 4.2) plus the MAX filter. The
// Merge2 condition "sat(t1) ∩ sat(t2) = ∅" is implemented as "no seed set
// is represented in both trees except through the shared root": trees
// rooted at a seed node legitimately share that seed's sets (e.g. the
// Figure 3 merge of A-1-2-B with B-3-C at root B).
func (s *gamState) mergeable(a, b *tree.Tree) bool {
	if a.Size() == 0 || b.Size() == 0 {
		return false // merging with a single-node tree recreates the partner
	}
	if s.maxEdges > 0 && a.Size()+b.Size() > s.maxEdges {
		return false
	}
	if a.Sat.IntersectsOutside(b.Sat, s.si.Mask(a.Root)) {
		return false // Merge2
	}
	return tree.OverlapOnlyRoot(a, b) // Merge1
}

// mergeAll implements Algorithm 5: aggressively merge t with every
// compatible tree sharing its root. New merges recurse through
// processTree, which records them before merging further, so every
// compatible pair is eventually examined from its later member.
func (s *gamState) mergeAll(t *tree.Tree) {
	partners := s.byRoot[t.Root]
	// Snapshot: processTree below may append to byRoot[t.Root]; new
	// entries merge with t from their own mergeAll.
	n := len(partners)
	for i := 0; i < n; i++ {
		if s.stop {
			return
		}
		tp := partners[i]
		if tp == t || !s.mergeable(t, tp) {
			continue
		}
		merged := tree.NewMerge(t, tp)
		s.stats.created()
		s.processTree(merged)
	}
}
