package core

import (
	"testing"

	"ctpquery/internal/graph"
	"ctpquery/internal/tree"
)

// figure6 builds the Section 4.6 incompleteness example for 4 seed sets:
//
//	A-1-2(-B)-x-3(-C)-4-D
//
// Its unique result is the whole 8-edge tree: 4-simple (all four seeds
// are leaves of one decomposition piece) but NOT a (u,n) rooted merge —
// the A and B paths share edge 2-x, the C and D paths share x-3 — so
// neither Property 6 nor Property 9 guarantees it.
func figure6() (*graph.Graph, []SeedSet) {
	b := graph.NewBuilder()
	A := b.AddNode("A")
	n1 := b.AddNode("1")
	n2 := b.AddNode("2")
	B := b.AddNode("B")
	x := b.AddNode("x")
	n3 := b.AddNode("3")
	C := b.AddNode("C")
	n4 := b.AddNode("4")
	D := b.AddNode("D")
	b.AddEdge(A, "t", n1)
	b.AddEdge(n1, "t", n2)
	b.AddEdge(B, "t", n2)
	b.AddEdge(n2, "t", x)
	b.AddEdge(x, "t", n3)
	b.AddEdge(n3, "t", C)
	b.AddEdge(n3, "t", n4)
	b.AddEdge(n4, "t", D)
	return b.Build(), singletons(A, B, C, D)
}

// Figure 6: LESP (and MoLESP) may miss non-rooted-merge results at m >= 4
// under adversarial orders, while GAM never does.
func TestFigure6LESPIncompleteness(t *testing.T) {
	g, seeds := figure6()

	// GAM is complete under every order (Property 1).
	for s := int64(0); s < 20; s++ {
		var order PriorityFunc
		if s > 0 {
			order = randomPriority(s)
		}
		rs, _ := run(t, g, seeds, Options{Algorithm: GAM, Priority: order})
		if rs.Len() != 1 {
			t.Fatalf("GAM (order %d): %d results, want 1", s, rs.Len())
		}
		if rs.Results[0].Tree.Size() != 8 {
			t.Fatalf("GAM result has %d edges, want 8", rs.Results[0].Tree.Size())
		}
	}

	// LESP and MoLESP find the result under the paper's default
	// (smallest-first) order...
	for _, alg := range []Algorithm{LESP, MoLESP} {
		rs, _ := run(t, g, seeds, Options{Algorithm: alg})
		if rs.Len() != 1 {
			t.Fatalf("%v (default order): %d results, want 1", alg, rs.Len())
		}
	}

	// ...but some execution orders lose it (the Section 4.6 trace): among
	// seeded random orders, at least one must miss, and every run must
	// stay sound (only the true result, never a wrong tree).
	lespMissed := false
	for s := int64(0); s < 50; s++ {
		rs, _ := run(t, g, seeds, Options{Algorithm: LESP, Priority: randomPriority(s)})
		switch rs.Len() {
		case 0:
			lespMissed = true
		case 1:
			if rs.Results[0].Tree.Size() != 8 {
				t.Fatalf("LESP (order %d) reported a wrong tree", s)
			}
		default:
			t.Fatalf("LESP (order %d): %d results on a 1-result instance", s, rs.Len())
		}
	}
	if !lespMissed {
		t.Fatal("no tested order exhibited the Figure 6 LESP incompleteness; " +
			"the Section 4.6 example should lose under some orders")
	}

	// The shape check: the unique result is 4-piecewise-simple.
	edges := make([]graph.EdgeID, g.NumEdges())
	for i := range edges {
		edges[i] = graph.EdgeID(i)
	}
	si := BuildSeedIndex(seeds)
	if p := tree.PiecewiseSimple(g, edges, si.IsSeed); p != 4 {
		t.Fatalf("piecewise-simple degree = %d, want 4", p)
	}
}
