package core

import (
	"ctpquery/internal/bitset"
	"ctpquery/internal/graph"
	"ctpquery/internal/tree"
)

// growOp is a (tree, edge) Grow opportunity (Section 4.2).
type growOp struct {
	t    *tree.Tree
	e    graph.EdgeID
	prio float64
	seq  uint64 // FIFO tiebreak
}

// opHeap is a min-heap of growOps ordered by (prio, seq). The sift
// operations are hand-rolled rather than delegated to container/heap:
// pushing a growOp through heap.Push boxes the struct into an interface,
// one heap allocation per queued op — the dominant allocator in GAM's
// main loop before this layout.
type opHeap []growOp

func (h opHeap) less(i, j int) bool {
	if h[i].prio != h[j].prio {
		return h[i].prio < h[j].prio
	}
	return h[i].seq < h[j].seq
}

func (h *opHeap) pushOp(op growOp) {
	a := append(*h, op)
	*h = a
	i := len(a) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !a.less(i, parent) {
			break
		}
		a[i], a[parent] = a[parent], a[i]
		i = parent
	}
}

func (h *opHeap) popOp() growOp {
	a := *h
	top := a[0]
	n := len(a) - 1
	a[0] = a[n]
	a[n] = growOp{} // drop the tree reference for the GC
	a = a[:n]
	*h = a
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && a.less(l, smallest) {
			smallest = l
		}
		if r < n && a.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		a[i], a[smallest] = a[smallest], a[i]
		i = smallest
	}
	return top
}

// opQueue abstracts the single- and multi-queue (Section 4.9) scheduling
// strategies behind push/pop.
type opQueue interface {
	push(op growOp)
	pop() (growOp, bool)
	len() int
}

// singleQueue is the default: one global priority queue.
type singleQueue struct{ h opHeap }

func newSingleQueue() *singleQueue { return &singleQueue{h: make(opHeap, 0, 64)} }

func (q *singleQueue) push(op growOp) { q.h.pushOp(op) }
func (q *singleQueue) len() int       { return len(q.h) }
func (q *singleQueue) pop() (growOp, bool) {
	if len(q.h) == 0 {
		return growOp{}, false
	}
	return q.h.popOp(), true
}

// multiQueue keeps one priority queue per tree signature (the sat bitset)
// and always pops from the queue holding the fewest entries, so that
// exploration initially concentrates around the smallest seed sets
// (Section 4.9, following the bidirectional-expansion idea of Kacholia et
// al.). Queues are located by the 64-bit signature of the sat bitset with
// an Equal collision check — no string key is built per push.
type multiQueue struct {
	buckets map[uint64][]*satHeap
	order   []*satHeap // creation order: deterministic pop scans
	total   int
}

// satHeap is the per-signature queue plus the exact bitset it stands for.
type satHeap struct {
	sat bitset.Bits
	h   opHeap
}

func newMultiQueue() *multiQueue {
	return &multiQueue{buckets: make(map[uint64][]*satHeap)}
}

func (q *multiQueue) push(op growOp) {
	sig := op.t.Sat.Sig()
	var sh *satHeap
	for _, cand := range q.buckets[sig] {
		if cand.sat.Equal(op.t.Sat) {
			sh = cand
			break
		}
	}
	if sh == nil {
		// The sat bits alias the (immutable, kept) tree; no clone needed.
		sh = &satHeap{sat: op.t.Sat}
		q.buckets[sig] = append(q.buckets[sig], sh)
		q.order = append(q.order, sh)
	}
	sh.h.pushOp(op)
	q.total++
}

func (q *multiQueue) len() int { return q.total }

func (q *multiQueue) pop() (growOp, bool) {
	if q.total == 0 {
		return growOp{}, false
	}
	var best *satHeap
	bestLen := -1
	for _, sh := range q.order {
		if len(sh.h) == 0 {
			continue
		}
		if bestLen == -1 || len(sh.h) < bestLen {
			best = sh
			bestLen = len(sh.h)
		}
	}
	if best == nil {
		return growOp{}, false
	}
	q.total--
	return best.h.popOp(), true
}
