package core

import (
	"container/heap"

	"ctpquery/internal/graph"
	"ctpquery/internal/tree"
)

// growOp is a (tree, edge) Grow opportunity (Section 4.2).
type growOp struct {
	t    *tree.Tree
	e    graph.EdgeID
	prio float64
	seq  uint64 // FIFO tiebreak
}

// opHeap is a min-heap of growOps ordered by (prio, seq).
type opHeap []growOp

func (h opHeap) Len() int { return len(h) }
func (h opHeap) Less(i, j int) bool {
	if h[i].prio != h[j].prio {
		return h[i].prio < h[j].prio
	}
	return h[i].seq < h[j].seq
}
func (h opHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *opHeap) Push(x interface{}) { *h = append(*h, x.(growOp)) }
func (h *opHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// opQueue abstracts the single- and multi-queue (Section 4.9) scheduling
// strategies behind push/pop.
type opQueue interface {
	push(op growOp)
	pop() (growOp, bool)
	len() int
}

// singleQueue is the default: one global priority queue.
type singleQueue struct{ h opHeap }

func newSingleQueue() *singleQueue { return &singleQueue{} }

func (q *singleQueue) push(op growOp) { heap.Push(&q.h, op) }
func (q *singleQueue) len() int       { return len(q.h) }
func (q *singleQueue) pop() (growOp, bool) {
	if len(q.h) == 0 {
		return growOp{}, false
	}
	return heap.Pop(&q.h).(growOp), true
}

// multiQueue keeps one priority queue per tree signature (the sat bitset)
// and always pops from the queue holding the fewest entries, so that
// exploration initially concentrates around the smallest seed sets
// (Section 4.9, following the bidirectional-expansion idea of Kacholia et
// al.).
type multiQueue struct {
	queues map[string]*opHeap
	keys   []string // stable iteration order for determinism
	total  int
}

func newMultiQueue() *multiQueue {
	return &multiQueue{queues: make(map[string]*opHeap)}
}

func (q *multiQueue) push(op growOp) {
	key := op.t.Sat.Key()
	h, ok := q.queues[key]
	if !ok {
		h = &opHeap{}
		q.queues[key] = h
		q.keys = append(q.keys, key)
	}
	heap.Push(h, op)
	q.total++
}

func (q *multiQueue) len() int { return q.total }

func (q *multiQueue) pop() (growOp, bool) {
	if q.total == 0 {
		return growOp{}, false
	}
	var best *opHeap
	bestLen := -1
	for _, k := range q.keys {
		h := q.queues[k]
		if h.Len() == 0 {
			continue
		}
		if bestLen == -1 || h.Len() < bestLen {
			best = h
			bestLen = h.Len()
		}
	}
	if best == nil {
		return growOp{}, false
	}
	q.total--
	return heap.Pop(best).(growOp), true
}
