package core

import (
	"errors"
	"testing"

	"ctpquery/internal/fault"
	"ctpquery/internal/gen"
)

// TestChaosSequentialKernelContainment injects a panic into each
// sequential kernel's main loop (the gam and bft pop probes) and asserts
// Search returns a contained *fault.PanicError instead of panicking the
// caller — and that a clean rerun still produces results.
func TestChaosSequentialKernelContainment(t *testing.T) {
	defer fault.Reset()
	cases := []struct {
		point string
		alg   Algorithm
	}{
		{"core.gam.pop", MoLESP},
		{"core.gam.pop", GAM},
		{"core.bft.pop", BFT},
	}
	for _, c := range cases {
		t.Run(c.point+"/"+c.alg.String(), func(t *testing.T) {
			w := gen.Line(3, 3, gen.Alternate)
			fault.Reset()
			if err := fault.Arm(c.point, fault.Fault{Kind: fault.Panic}); err != nil {
				t.Fatal(err)
			}
			_, _, err := Search(w.Graph, Explicit(w.Seeds...), Options{Algorithm: c.alg})
			if fault.Fired(c.point) == 0 {
				t.Fatalf("probe %s never fired for %s", c.point, c.alg)
			}
			if err == nil {
				t.Fatal("panic in kernel did not surface as an error")
			}
			var pe *fault.PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("error is not a contained panic: %v", err)
			}
			if !fault.IsInjected(err) {
				t.Fatalf("contained panic lost the injection marker: %v", err)
			}

			fault.Reset()
			rs, _, err := Search(w.Graph, Explicit(w.Seeds...), Options{Algorithm: c.alg})
			if err != nil {
				t.Fatalf("clean search after containment errored: %v", err)
			}
			if rs == nil {
				t.Fatal("clean search returned nil result set")
			}
		})
	}
}
