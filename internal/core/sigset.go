package core

import (
	"ctpquery/internal/graph"
	"ctpquery/internal/tree"
)

// treeSet is the deduplication history of a search: a two-level set keyed
// by 64-bit edge-set signatures (internal/tree/sig.go), with each bucket
// holding the collision-checked entries behind the hash. At steady state a
// membership test is one map probe plus one slice compare — no string key
// is ever built, unlike the EdgeSetKey histories this replaces.
//
// One set serves all three identities the kernels deduplicate on:
//
//   - plain edge sets (ESP history, BFT history): root == unrootedRef;
//   - (root, edge set) pairs (GAM/LESP rooted history): root == the root;
//   - single nodes (0-edge trees): root == the node, edges empty.
//
// Entries alias the edge slices of kept trees, which are immutable and
// never recycled, so no copy is taken.
//
// The first entry behind a signature lives directly in the map value
// (zero per-entry allocations on the overwhelmingly common no-collision
// path); genuine hash collisions spill into a lazily created overflow
// map.
type treeSet struct {
	first    map[uint64]treeRef
	overflow map[uint64][]treeRef // nil until the first collision
}

// treeRef is one collision-checked entry: the exact identity behind a
// signature.
type treeRef struct {
	root  graph.NodeID
	edges []graph.EdgeID
}

// unrootedRef marks entries keyed by edge set alone. Node IDs are dense
// and non-negative, so no real root collides with it.
const unrootedRef graph.NodeID = -1

func newTreeSet() treeSet { return treeSet{first: make(map[uint64]treeRef)} }

func (r treeRef) is(root graph.NodeID, edges []graph.EdgeID) bool {
	return r.root == root && edgeSlicesEqual(r.edges, edges)
}

// has reports whether the (root, edges) identity is present under sig.
func (s *treeSet) has(sig uint64, root graph.NodeID, edges []graph.EdgeID) bool {
	r, ok := s.first[sig]
	if !ok {
		return false
	}
	if r.is(root, edges) {
		return true
	}
	for _, r := range s.overflow[sig] {
		if r.is(root, edges) {
			return true
		}
	}
	return false
}

// add inserts the identity and reports whether it was absent. The edges
// slice is retained and must stay immutable.
func (s *treeSet) add(sig uint64, root graph.NodeID, edges []graph.EdgeID) bool {
	r, ok := s.first[sig]
	if !ok {
		s.first[sig] = treeRef{root: root, edges: edges}
		return true
	}
	if r.is(root, edges) {
		return false
	}
	for _, r := range s.overflow[sig] {
		if r.is(root, edges) {
			return false
		}
	}
	if s.overflow == nil {
		s.overflow = make(map[uint64][]treeRef)
	}
	s.overflow[sig] = append(s.overflow[sig], treeRef{root: root, edges: edges})
	return true
}

func edgeSlicesEqual(a, b []graph.EdgeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i, e := range a {
		if e != b[i] {
			return false
		}
	}
	return true
}

// treeIdentity returns the signature and collision-check identity of a
// result/candidate tree: 0-edge trees are identified by their single node,
// everything else by its edge set.
func treeIdentity(t *tree.Tree) (sig uint64, root graph.NodeID, edges []graph.EdgeID) {
	if t.Size() == 0 {
		return tree.NodeSig(t.Root), t.Root, nil
	}
	return t.Sig(), unrootedRef, t.Edges
}
