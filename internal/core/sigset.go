package core

import (
	"ctpquery/internal/graph"
	"ctpquery/internal/tree"
)

// SigSet is the deduplication history of a search: a two-level set keyed
// by 64-bit edge-set signatures (internal/tree/sig.go), with each bucket
// holding the collision-checked entries behind the hash. At steady state a
// membership test is one map probe plus one slice compare — no string key
// is ever built, unlike the EdgeSetKey histories this replaces.
//
// CONCURRENCY CONTRACT — SINGLE WRITER. A SigSet is deliberately
// unsynchronized: Add must only ever be called from one goroutine at a
// time, and Has must not race with Add. The sequential kernels satisfy
// this trivially; the parallel runtime (internal/exec) never shares a
// SigSet between workers — its sharded wrapper (exec's lock-striped
// signature shards) is the only concurrent entry point, giving each shard
// its own SigSet behind its own lock. Race-enabled builds enforce the
// contract with a cheap compare-and-swap assertion on every Add (see
// sigset_guard_race.go), so `go test -race` fails fast on a concurrent
// writer instead of corrupting a map.
//
// One set serves all three identities the kernels deduplicate on:
//
//   - plain edge sets (ESP history, BFT history): root == UnrootedRef;
//   - (root, edge set) pairs (GAM/LESP rooted history): root == the root;
//   - single nodes (0-edge trees): root == the node, edges empty.
//
// Entries alias the edge slices of kept trees, which are immutable and
// never recycled, so no copy is taken.
//
// The first entry behind a signature lives directly in the map value
// (zero per-entry allocations on the overwhelmingly common no-collision
// path); genuine hash collisions spill into a lazily created overflow
// map.
type SigSet struct {
	first    map[uint64]treeRef
	overflow map[uint64][]treeRef // nil until the first collision
	guard    sigGuard             // single-writer assertion, race builds only
}

// treeRef is one collision-checked entry: the exact identity behind a
// signature.
type treeRef struct {
	root  graph.NodeID
	edges []graph.EdgeID
}

// UnrootedRef marks entries keyed by edge set alone. Node IDs are dense
// and non-negative, so no real root collides with it.
const UnrootedRef graph.NodeID = -1

// NewSigSet returns an empty set. The set is single-writer; see the
// type's concurrency contract.
func NewSigSet() *SigSet { return &SigSet{first: make(map[uint64]treeRef)} }

func (r treeRef) is(root graph.NodeID, edges []graph.EdgeID) bool {
	return r.root == root && edgeSlicesEqual(r.edges, edges)
}

// Has reports whether the (root, edges) identity is present under sig. It
// must not race with Add (single-writer contract).
func (s *SigSet) Has(sig uint64, root graph.NodeID, edges []graph.EdgeID) bool {
	r, ok := s.first[sig]
	if !ok {
		return false
	}
	if r.is(root, edges) {
		return true
	}
	for _, r := range s.overflow[sig] {
		if r.is(root, edges) {
			return true
		}
	}
	return false
}

// Add inserts the identity and reports whether it was absent. The edges
// slice is retained and must stay immutable. Single-writer: concurrent
// Adds are a caller bug, asserted under -race.
func (s *SigSet) Add(sig uint64, root graph.NodeID, edges []graph.EdgeID) bool {
	s.guard.enter()
	defer s.guard.exit()
	r, ok := s.first[sig]
	if !ok {
		s.first[sig] = treeRef{root: root, edges: edges}
		return true
	}
	if r.is(root, edges) {
		return false
	}
	for _, r := range s.overflow[sig] {
		if r.is(root, edges) {
			return false
		}
	}
	if s.overflow == nil {
		s.overflow = make(map[uint64][]treeRef)
	}
	s.overflow[sig] = append(s.overflow[sig], treeRef{root: root, edges: edges})
	return true
}

func edgeSlicesEqual(a, b []graph.EdgeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i, e := range a {
		if e != b[i] {
			return false
		}
	}
	return true
}

// TreeIdentity returns the signature and collision-check identity of a
// result/candidate tree: 0-edge trees are identified by their single node,
// everything else by its edge set.
func TreeIdentity(t *tree.Tree) (sig uint64, root graph.NodeID, edges []graph.EdgeID) {
	if t.Size() == 0 {
		return tree.NodeSig(t.Root), t.Root, nil
	}
	return t.Sig(), UnrootedRef, t.Edges
}
