//go:build race

package core

import "sync/atomic"

// sigGuard enforces the SigSet single-writer contract under the race
// detector: two goroutines inside Add at once trip the CAS and panic with
// a pointed message instead of silently corrupting the maps. The guard
// compiles to an empty struct in normal builds (sigset_guard_norace.go),
// keeping the hot path free of atomics.
type sigGuard struct {
	writing atomic.Int32
}

func (g *sigGuard) enter() {
	if !g.writing.CompareAndSwap(0, 1) {
		panic("core: concurrent SigSet writers — SigSet is single-writer; " +
			"concurrent deduplication must go through exec's sharded signature set")
	}
}

func (g *sigGuard) exit() { g.writing.Store(0) }
