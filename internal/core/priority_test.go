package core

import (
	"math/rand"
	"testing"

	"ctpquery/internal/eql"
	"ctpquery/internal/gen"
	"ctpquery/internal/graph"
	"ctpquery/internal/tree"
)

// Local score functions (the score package imports core, so tests here
// cannot import it back).
func sizeScore(g *graph.Graph, t *tree.Tree) float64 { return -float64(t.Size()) }

func diversityScore(g *graph.Graph, t *tree.Tree) float64 {
	if t.Size() == 0 {
		return 0
	}
	seen := map[graph.LabelID]bool{}
	for _, e := range t.Edges {
		seen[g.EdgeLabelID(e)] = true
	}
	return float64(len(seen)) / float64(t.Size())
}

// Guided orders must not change the result set of complete algorithms
// (Section 4.8: MoLESP's guarantees are order-independent).
func TestGuidedOrdersPreserveCompleteness(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 6; trial++ {
		g := gen.Random(8, 10, nil, rng)
		seeds := Explicit(gen.RandomSeedSets(g, 3, 2, rng)...)
		base, _ := run(t, g, seeds, Options{Algorithm: MoLESP, Filters: eql.Filters{MaxEdges: 4}})
		for name, prio := range map[string]PriorityFunc{
			"seed-distance": SeedDistancePriority(g, seeds),
			"score-guided":  ScoreGuidedPriority(g, diversityScore),
		} {
			rs, _ := run(t, g, seeds, Options{
				Algorithm: MoLESP, Priority: prio, Filters: eql.Filters{MaxEdges: 4}})
			if rs.Len() != base.Len() {
				t.Fatalf("trial %d, %s order: %d results vs %d under default",
					trial, name, rs.Len(), base.Len())
			}
		}
	}
}

// On a graph with one near and one far connection, the seed-distance
// order must surface the near result first when LIMIT 1 is set.
func TestSeedDistancePriorityFindsNearResultFirst(t *testing.T) {
	// A and B joined by a 2-edge path and, separately, a 6-edge path.
	b := graph.NewBuilder()
	a := b.AddNode("A")
	bb := b.AddNode("B")
	mid := b.AddNode("m")
	b.AddEdge(a, "t", mid)
	b.AddEdge(mid, "t", bb)
	prev := a
	for i := 0; i < 5; i++ {
		n := b.AddNodes(1)
		b.AddEdge(prev, "t", n)
		prev = n
	}
	b.AddEdge(prev, "t", bb)
	g := b.Build()
	seeds := singletons(a, bb)

	rs, _ := run(t, g, seeds, Options{
		Algorithm: MoLESP,
		Priority:  SeedDistancePriority(g, seeds),
		Filters:   eql.Filters{Limit: 1},
	})
	if rs.Len() != 1 || rs.Results[0].Tree.Size() != 2 {
		t.Fatalf("guided LIMIT 1 returned a %d-edge tree, want the 2-edge one",
			rs.Results[0].Tree.Size())
	}
}

// ScoreGuidedPriority pops higher-scoring trees first.
func TestScoreGuidedPriorityOrdering(t *testing.T) {
	g := gen.Sample()
	f := ScoreGuidedPriority(g, sizeScore)
	small := tree.NewInit(0, nil)
	big := &tree.Tree{Root: 0, Edges: []graph.EdgeID{0, 1, 2}}
	if f(small, 0) >= f(big, 0) {
		t.Fatal("higher score (smaller tree) should pop first")
	}
}

// The OnResult hook streams results as found and can stop the search.
func TestOnResultStreaming(t *testing.T) {
	w := gen.Chain(6)
	var streamed []Result
	rs, st, err := Search(w.Graph, Explicit(w.Seeds...), Options{
		Algorithm: MoLESP,
		OnResult: func(r Result) bool {
			streamed = append(streamed, r)
			return len(streamed) < 5
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != 5 {
		t.Fatalf("streamed %d results, want 5", len(streamed))
	}
	if rs.Len() != 5 {
		t.Fatalf("result set has %d, want 5", rs.Len())
	}
	if !st.Truncated {
		t.Fatal("stop-via-hook must set Truncated")
	}
	// A pass-through hook must not change the outcome.
	count := 0
	rs2, _, err := Search(w.Graph, Explicit(w.Seeds...), Options{
		Algorithm: MoLESP,
		OnResult:  func(Result) bool { count++; return true },
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != rs2.Len() || rs2.Len() != 64 {
		t.Fatalf("hook saw %d, result set %d, want 64", count, rs2.Len())
	}
}

// SeedDistancePriority with universal sets treats them as distance zero.
func TestSeedDistancePriorityUniversal(t *testing.T) {
	w := gen.Line(2, 1, gen.Forward)
	seeds := []SeedSet{{Nodes: w.Seeds[0]}, {Universal: true}}
	prio := SeedDistancePriority(w.Graph, seeds)
	it := tree.NewInit(w.Seeds[0][0], nil)
	if prio(it, w.Graph.Incident(w.Seeds[0][0])[0]) <= 0 {
		t.Fatal("priority should still reflect tree size")
	}
	rs, _ := run(t, w.Graph, seeds, Options{Algorithm: MoLESP, Priority: prio})
	if rs.Len() != 3 {
		t.Fatalf("results = %d, want 3", rs.Len())
	}
}
