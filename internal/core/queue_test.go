package core

import (
	"testing"

	"ctpquery/internal/bitset"
	"ctpquery/internal/tree"
)

func mkOp(satBits []int, prio float64, seq uint64) growOp {
	var sat bitset.Bits
	for _, b := range satBits {
		sat.Set(b)
	}
	t := tree.NewInit(0, sat)
	return growOp{t: t, e: 0, prio: prio, seq: seq}
}

func TestSingleQueueOrdering(t *testing.T) {
	q := newSingleQueue()
	q.push(mkOp(nil, 2, 1))
	q.push(mkOp(nil, 1, 2))
	q.push(mkOp(nil, 1, 3))
	if q.len() != 3 {
		t.Fatalf("len = %d", q.len())
	}
	// Lowest priority first; FIFO among equals.
	op, ok := q.pop()
	if !ok || op.prio != 1 || op.seq != 2 {
		t.Fatalf("pop = %+v", op)
	}
	op, _ = q.pop()
	if op.seq != 3 {
		t.Fatalf("tie-break wrong: %+v", op)
	}
	op, _ = q.pop()
	if op.prio != 2 {
		t.Fatalf("pop = %+v", op)
	}
	if _, ok := q.pop(); ok {
		t.Fatal("empty queue popped")
	}
}

func TestMultiQueuePicksSmallest(t *testing.T) {
	q := newMultiQueue()
	// Signature A: three ops; signature B: one op.
	q.push(mkOp([]int{0}, 1, 1))
	q.push(mkOp([]int{0}, 2, 2))
	q.push(mkOp([]int{0}, 3, 3))
	q.push(mkOp([]int{1}, 9, 4))
	if q.len() != 4 {
		t.Fatalf("len = %d", q.len())
	}
	// The B queue holds fewer entries: its op pops first despite the
	// higher priority value.
	op, ok := q.pop()
	if !ok || op.seq != 4 {
		t.Fatalf("pop = %+v, want the lone signature-B op", op)
	}
	// Now A (3 entries) is the only non-empty queue; pops by priority.
	op, _ = q.pop()
	if op.seq != 1 {
		t.Fatalf("pop = %+v", op)
	}
	if q.len() != 2 {
		t.Fatalf("len = %d", q.len())
	}
}

func TestMultiQueueDrainsSmallestFirst(t *testing.T) {
	// Section 4.9: always grow from the queue with the fewest entries —
	// popping keeps that queue the smallest, so exploration concentrates
	// on the small seed set's neighborhood until it drains.
	q := newMultiQueue()
	for i := uint64(0); i < 2; i++ {
		q.push(mkOp([]int{0}, 0, i)) // small signature-A queue
	}
	for i := uint64(0); i < 4; i++ {
		q.push(mkOp([]int{1}, 0, 100+i)) // larger signature-B queue
	}
	var order []uint64
	for {
		op, ok := q.pop()
		if !ok {
			break
		}
		order = append(order, op.seq)
	}
	if len(order) != 6 {
		t.Fatalf("drained %d ops", len(order))
	}
	// The two A ops must come out before any B op.
	if order[0] >= 100 || order[1] >= 100 {
		t.Fatalf("small queue not drained first: %v", order)
	}
	for _, s := range order[2:] {
		if s < 100 {
			t.Fatalf("A op after B started: %v", order)
		}
	}
}

func TestMultiQueueEmpty(t *testing.T) {
	q := newMultiQueue()
	if _, ok := q.pop(); ok {
		t.Fatal("empty multi-queue popped")
	}
}

func TestDeadlineDisabled(t *testing.T) {
	d := NewDeadline(0, nil)
	for i := 0; i < 1000; i++ {
		if d.Expired() {
			t.Fatal("disabled deadline expired")
		}
	}
}
