package core

import (
	"sort"

	"ctpquery/internal/bitset"
	"ctpquery/internal/graph"
	"ctpquery/internal/tree"
)

// referenceResults enumerates all CTP results of at most maxEdges edges by
// brute force: every edge subset that forms a tree, contains exactly one
// node from each seed set, and whose leaves are all seeds (the minimality
// characterization of Observation 1). It is exponential and only usable on
// tiny graphs, but independent of the search algorithms, making it the
// ground truth for completeness cross-checks.
func referenceResults(g *graph.Graph, seeds []SeedSet, maxEdges int) map[string]bool {
	si := BuildSeedIndex(seeds)
	out := make(map[string]bool)

	// Single-node results: a node belonging to every seed set.
	for i := 0; i < g.NumNodes(); i++ {
		n := graph.NodeID(i)
		if si.Covers(si.Mask(n)) {
			out["n"+tree.EdgeSetKey([]graph.EdgeID{graph.EdgeID(n)})] = true
		}
	}

	e := g.NumEdges()
	subset := make([]graph.EdgeID, 0, maxEdges)
	var rec func(start, k int)
	rec = func(start, k int) {
		if k > 0 && validReference(g, si, subset) {
			out[tree.EdgeSetKey(subset)] = true
		}
		if k == maxEdges {
			return
		}
		for i := start; i < e; i++ {
			subset = append(subset, graph.EdgeID(i))
			rec(i+1, k+1)
			subset = subset[:len(subset)-1]
		}
	}
	rec(0, 0)
	return out
}

func validReference(g *graph.Graph, si *SeedIndex, edges []graph.EdgeID) bool {
	if !tree.IsTree(g, edges) {
		return false
	}
	nodes := tree.NodesOfEdges(g, edges)
	// Exactly one node per (non-universal) seed set.
	var sat bitset.Bits
	counts := map[int]int{}
	for _, n := range nodes {
		m := si.Mask(n)
		(&sat).UnionInPlace(m)
		for _, i := range m.Indices() {
			counts[i]++
		}
	}
	if !si.Covers(sat) {
		return false
	}
	for _, c := range counts {
		if c > 1 {
			return false
		}
	}
	// Every leaf must be a seed.
	for _, l := range tree.Leaves(g, edges) {
		if !si.IsSeed(l) {
			return false
		}
	}
	return true
}

// resultKeys converts a ResultSet to the same key space as
// referenceResults.
func resultKeys(rs *ResultSet) map[string]bool {
	out := make(map[string]bool, len(rs.Results))
	for _, r := range rs.Results {
		if r.Tree.Size() == 0 {
			out["n"+tree.EdgeSetKey([]graph.EdgeID{graph.EdgeID(r.Tree.Root)})] = true
		} else {
			out[r.Tree.EdgeKey()] = true
		}
	}
	return out
}

// sortedKeys renders a key set for diffs in failure messages.
func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// singletons builds singleton seed sets from node IDs.
func singletons(ns ...graph.NodeID) []SeedSet {
	sets := make([][]graph.NodeID, len(ns))
	for i, n := range ns {
		sets[i] = []graph.NodeID{n}
	}
	return Explicit(sets...)
}
