package core

import (
	"ctpquery/internal/graph"
	"ctpquery/internal/tree"
)

// This file implements the exploration-order extensions of Section 4.8:
// since MoLESP's completeness guarantees are independent of the queue
// order, any priority can be plugged in — in particular orders that favor
// the early production of high-score results (useful with SCORE/TOP and
// LIMIT), or orders guided by seed distances (useful when only the first
// few results are needed, as in the Figure 12 protocol).

// ScoreGuidedPriority explores trees with the highest partial score
// first: a greedy order for score functions that can evaluate partial
// trees (all the built-in ones can). Ties fall back to smallest-first.
func ScoreGuidedPriority(g *graph.Graph, f ScoreFunc) PriorityFunc {
	return func(t *tree.Tree, e graph.EdgeID) float64 {
		// Lower priority value pops first: negate the score; the size
		// epsilon keeps the search from stalling on large equal-score
		// trees.
		return -f(g, t)*1024 + float64(t.Size())
	}
}

// SeedDistancePriority builds an A*-flavored order: a Grow opportunity is
// ranked by the tree's size plus the largest remaining distance from the
// grow target to any seed set the tree does not cover yet. Distances are
// one undirected multi-source BFS per seed set, computed once up front.
// Results reachable through few edges surface early, which pairs well
// with LIMIT and TIMEOUT on large graphs.
func SeedDistancePriority(g *graph.Graph, seeds []SeedSet) PriorityFunc {
	const unreachable = 1 << 20
	var dists [][]int32
	for _, s := range seeds {
		if s.Universal {
			dists = append(dists, nil) // universal: distance 0 everywhere
			continue
		}
		d := make([]int32, g.NumNodes())
		for i := range d {
			d[i] = unreachable
		}
		queue := make([]graph.NodeID, 0, len(s.Nodes))
		for _, n := range s.Nodes {
			if d[n] == unreachable {
				d[n] = 0
				queue = append(queue, n)
			}
		}
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			for _, e := range g.Incident(n) {
				o := g.Other(e, n)
				if d[o] == unreachable {
					d[o] = d[n] + 1
					queue = append(queue, o)
				}
			}
		}
		dists = append(dists, d)
	}
	return func(t *tree.Tree, e graph.EdgeID) float64 {
		next := g.Other(e, t.Root)
		remaining := int32(0)
		for i, d := range dists {
			if t.Sat.Has(i) || d == nil {
				continue
			}
			if d[next] > remaining {
				remaining = d[next]
			}
		}
		return float64(t.Size()) + 1 + float64(remaining)
	}
}
