package core

import (
	"fmt"
	"math/rand"
	"testing"

	"ctpquery/internal/eql"
	"ctpquery/internal/gen"
	"ctpquery/internal/graph"
	"ctpquery/internal/tree"
)

// These tests encode the paper's formal guarantees (Properties 1–9) as
// executable checks: each algorithm's result set is compared against the
// brute-force reference enumeration on many small random graphs and under
// randomized exploration orders.

// randomPriority returns a deterministic pseudo-random exploration order.
// Completeness claims must hold for every order; incompleteness means some
// order misses results.
func randomPriority(seed int64) PriorityFunc {
	rng := rand.New(rand.NewSource(seed))
	return func(t *tree.Tree, e graph.EdgeID) float64 { return rng.Float64() }
}

// refMaxEdges caps result sizes in cross-checks. The cap also bounds the
// GAM baseline's search space: GAM keeps every distinct rooted tree and
// merges quadratically within each root's bucket, so instances must stay
// small for the exhaustive comparisons to run in test time.
const refMaxEdges = 4

func crossCheck(t *testing.T, alg Algorithm, m int, trials int, mustBeComplete bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(1000*m) + int64(alg)))
	misses := 0
	for trial := 0; trial < trials; trial++ {
		g := gen.Random(7+rng.Intn(3), 8+rng.Intn(3), []string{"a", "b"}, rng)
		seeds := Explicit(gen.RandomSeedSets(g, m, 2, rng)...)
		ref := referenceResults(g, seeds, refMaxEdges)

		for _, order := range []PriorityFunc{nil, randomPriority(int64(trial)), randomPriority(int64(trial) + 7777)} {
			rs, _, err := Search(g, seeds, Options{
				Algorithm: alg,
				Filters:   eql.Filters{MaxEdges: refMaxEdges},
				Priority:  order,
			})
			if err != nil {
				t.Fatal(err)
			}
			got := resultKeys(rs)
			// Soundness: never report an invalid or non-minimal result.
			for k := range got {
				if !ref[k] {
					t.Fatalf("%v (m=%d, trial %d): reported a tree outside the reference set\nref: %v\ngot: %v",
						alg, m, trial, sortedKeys(ref), sortedKeys(got))
				}
			}
			for k := range ref {
				if !got[k] {
					misses++
					if mustBeComplete {
						t.Fatalf("%v (m=%d, trial %d): missed a result (completeness violation)\nref: %v\ngot: %v",
							alg, m, trial, sortedKeys(ref), sortedKeys(got))
					}
				}
			}
		}
	}
	if !mustBeComplete && misses == 0 {
		// Not a failure — incompleteness only shows on some orders — but
		// record it so a silent regression in the test setup is visible.
		t.Logf("%v (m=%d): no misses observed in %d trials", alg, m, trials)
	}
}

// Property 1: GAM is complete (any m, any order).
func TestGAMComplete(t *testing.T) {
	for _, m := range []int{2, 3, 4} {
		crossCheck(t, GAM, m, 8, true)
	}
}

// BFT and its merge variants are complete (Sections 4.1, 4.3).
func TestBFTFamilyComplete(t *testing.T) {
	for _, alg := range []Algorithm{BFT, BFTM, BFTAM} {
		for _, m := range []int{2, 3} {
			crossCheck(t, alg, m, 6, true)
		}
	}
}

// Property 3: ESP is complete for m = 2, under any order.
func TestESPCompleteTwoSets(t *testing.T) {
	crossCheck(t, ESP, 2, 12, true)
}

// Property 8: MoLESP is complete for m <= 3, under any order.
func TestMoLESPCompleteUpToThreeSets(t *testing.T) {
	crossCheck(t, MoLESP, 2, 10, true)
	crossCheck(t, MoLESP, 3, 10, true)
}

// For m >= 4 MoLESP is sound but may be incomplete; the cross-check
// verifies soundness and tolerates misses.
func TestMoLESPFourSetsSound(t *testing.T) {
	crossCheck(t, MoLESP, 4, 6, false)
	crossCheck(t, MoLESP, 5, 4, false)
}

// ESP, MoESP and LESP are sound for any m but incomplete in general.
func TestPrunedVariantsSound(t *testing.T) {
	for _, alg := range []Algorithm{ESP, MoESP, LESP} {
		for _, m := range []int{3, 4} {
			crossCheck(t, alg, m, 5, false)
		}
	}
}

// Property 5: MoESP (and MoLESP) find all path results for any m. On Line
// workloads every result is a path.
func TestMoESPFindsAllPathResults(t *testing.T) {
	for _, m := range []int{3, 5, 7} {
		w := gen.Line(m, 1, gen.Alternate)
		for _, alg := range []Algorithm{MoESP, MoLESP} {
			for seed := int64(0); seed < 4; seed++ {
				var order PriorityFunc
				if seed > 0 {
					order = randomPriority(seed)
				}
				rs, _ := run(t, w.Graph, Explicit(w.Seeds...),
					Options{Algorithm: alg, Priority: order})
				if rs.Len() != 1 {
					t.Fatalf("%v on %s (order %d): %d results, want 1 (Property 5)",
						alg, w.Name, seed, rs.Len())
				}
			}
		}
	}
}

// Property 6: LESP finds every (u,n) rooted merge, under any order. On
// Star graphs the unique result is exactly such a merge.
func TestLESPFindsRootedMergesAnyOrder(t *testing.T) {
	for _, m := range []int{3, 4, 6} {
		w := gen.Star(m, 2, gen.Forward)
		for seed := int64(0); seed < 5; seed++ {
			var order PriorityFunc
			if seed > 0 {
				order = randomPriority(seed * 13)
			}
			for _, alg := range []Algorithm{LESP, MoLESP} {
				rs, _ := run(t, w.Graph, Explicit(w.Seeds...),
					Options{Algorithm: alg, Priority: order})
				if rs.Len() != 1 {
					t.Fatalf("%v on Star(%d,2) order %d: %d results, want 1 (Property 6)",
						alg, m, seed, rs.Len())
				}
			}
		}
	}
}

// Property 9: results whose decomposition pieces are all rooted merges
// are found by MoLESP for any m. The Figure 7 workload — two stars glued
// by a seed-to-seed path — is 2ps+rooted-merge shaped; we emulate it with
// a Comb-of-stars: Star pieces joined at seeds.
func TestMoLESPProperty9Figure7(t *testing.T) {
	// Build Figure 7: A-1-2-3-C with F at 7 below 2... the published
	// figure is a 6-seed tree whose pieces are rooted merges. We construct
	// it directly: hub1 with seeds A, C, F attached by short paths; hub2
	// with seeds D, E attached; hub1 and hub2 joined by a path through
	// seed... simpler faithful shape: two (3,n)-rooted merges sharing a
	// seed leaf B.
	b := graph.NewBuilder()
	mk := func(l string) graph.NodeID { return b.AddNode(l) }
	A, B, C, D, E, F := mk("A"), mk("B"), mk("C"), mk("D"), mk("E"), mk("F")
	h1, h2 := mk("h1"), mk("h2")
	b.AddEdge(A, "t", h1)
	b.AddEdge(h1, "t", C)
	b.AddEdge(F, "t", h1)
	b.AddEdge(h1, "t", B)
	b.AddEdge(B, "t", h2)
	b.AddEdge(h2, "t", D)
	b.AddEdge(E, "t", h2)
	g := b.Build()
	seeds := singletons(A, B, C, D, E, F)

	ref := referenceResults(g, seeds, 7)
	if len(ref) != 1 {
		t.Fatalf("fixture should have exactly 1 result, got %d", len(ref))
	}
	for seed := int64(0); seed < 6; seed++ {
		var order PriorityFunc
		if seed > 0 {
			order = randomPriority(seed * 31)
		}
		rs, _ := run(t, g, seeds, Options{Algorithm: MoLESP, Priority: order})
		if rs.Len() != 1 {
			t.Fatalf("MoLESP (order %d): %d results, want 1 (Property 9)", seed, rs.Len())
		}
		if got := rs.Results[0].Tree.Size(); got != 7 {
			t.Fatalf("result size = %d, want 7", got)
		}
	}
}

// The decomposition of the Property-9 fixture: pieces must be the two
// rooted merges, i.e. piecewise-simple degree 4 (h1 joins A, C, F, B).
func TestProperty9FixtureShape(t *testing.T) {
	b := graph.NewBuilder()
	mk := func(l string) graph.NodeID { return b.AddNode(l) }
	A, B, C, D, E, F := mk("A"), mk("B"), mk("C"), mk("D"), mk("E"), mk("F")
	h1, h2 := mk("h1"), mk("h2")
	e := []graph.EdgeID{
		b.AddEdge(A, "t", h1),
		b.AddEdge(h1, "t", C),
		b.AddEdge(F, "t", h1),
		b.AddEdge(h1, "t", B),
		b.AddEdge(B, "t", h2),
		b.AddEdge(h2, "t", D),
		b.AddEdge(E, "t", h2),
	}
	g := b.Build()
	isSeed := func(n graph.NodeID) bool {
		switch n {
		case A, B, C, D, E, F:
			return true
		}
		return false
	}
	pieces := tree.Decompose(g, e, isSeed)
	if len(pieces) != 2 {
		t.Fatalf("pieces = %d, want 2", len(pieces))
	}
	if p := tree.PiecewiseSimple(g, e, isSeed); p != 4 {
		t.Fatalf("piecewise-simple degree = %d, want 4", p)
	}
}

// Subset relations among the variants: under identical (default) orders,
// MoESP finds everything ESP finds, MoLESP everything LESP and MoESP
// find, and GAM everything any pruned variant finds.
func TestVariantResultContainment(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 8; trial++ {
		g := gen.Random(7+rng.Intn(3), 8+rng.Intn(4), nil, rng)
		m := 2 + rng.Intn(3)
		seeds := Explicit(gen.RandomSeedSets(g, m, 2, rng)...)
		results := map[Algorithm]map[string]bool{}
		for _, alg := range GAMFamily() {
			rs, _ := run(t, g, seeds, Options{Algorithm: alg, Filters: eql.Filters{MaxEdges: refMaxEdges}})
			results[alg] = resultKeys(rs)
		}
		contains := func(sup, sub Algorithm) {
			for k := range results[sub] {
				if !results[sup][k] {
					t.Fatalf("trial %d (m=%d): %v found a result %v missed", trial, m, sub, sup)
				}
			}
		}
		contains(GAM, ESP)
		contains(GAM, MoESP)
		contains(GAM, LESP)
		contains(GAM, MoLESP)
		contains(MoESP, ESP)
		contains(MoLESP, LESP)
	}
}

// MultiQueue scheduling (Section 4.9) must not change the result set on
// complete algorithms.
func TestMultiQueueEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 6; trial++ {
		g := gen.Random(8, 10, nil, rng)
		m := 2 + rng.Intn(2)
		seeds := Explicit(gen.RandomSeedSets(g, m, 3, rng)...)
		a, _ := run(t, g, seeds, Options{Algorithm: MoLESP, Filters: eql.Filters{MaxEdges: refMaxEdges}})
		b, _ := run(t, g, seeds, Options{Algorithm: MoLESP, MultiQueue: true, Filters: eql.Filters{MaxEdges: refMaxEdges}})
		ka, kb := resultKeys(a), resultKeys(b)
		if len(ka) != len(kb) {
			t.Fatalf("trial %d: single-queue %d results, multi-queue %d", trial, len(ka), len(kb))
		}
		for k := range ka {
			if !kb[k] {
				t.Fatalf("trial %d: multi-queue missed a result", trial)
			}
		}
	}
}

// Universal seed sets (Section 4.9): with S2 = N over a 2-node graph, the
// results are the single-seed tree plus every tree hanging off the seed.
func TestUniversalSeedSet(t *testing.T) {
	w := gen.Line(2, 1, gen.Forward) // A - x - B: 2 edges
	g := w.Graph
	a := w.Seeds[0][0]
	seeds := []SeedSet{{Nodes: []graph.NodeID{a}}, {Universal: true}}
	rs, _ := run(t, g, seeds, Options{Algorithm: MoLESP})
	// Expected: the node A alone; A-x; A-x-B — 3 results.
	if rs.Len() != 3 {
		t.Fatalf("universal set: %d results, want 3", rs.Len())
	}
	// Every result must contain the anchor seed.
	for _, r := range rs.Results {
		if r.Tree.Size() > 0 && !r.Tree.ContainsNode(a) {
			t.Fatalf("result does not contain the anchor seed")
		}
		if r.Seeds[0] != a {
			t.Fatalf("seed tuple = %v, want anchor %d first", r.Seeds, a)
		}
	}
}

// A quick exhaustive sanity run over every algorithm on one fixed
// workload, so a regression in any variant is caught even if its
// dedicated tests are skipped.
func TestAllAlgorithmsAgreeOnFixture(t *testing.T) {
	w := gen.Comb(2, 1, 2, 1, gen.Forward) // m=4 seeds, unique result
	want := -1
	for _, alg := range Algorithms() {
		rs, _ := run(t, w.Graph, Explicit(w.Seeds...), Options{Algorithm: alg})
		n := rs.Len()
		if alg == BFT {
			want = n
		}
		switch alg {
		case BFT, BFTM, BFTAM, GAM:
			if n != want {
				t.Fatalf("%v: %d results, want %d (complete baselines must agree)", alg, n, want)
			}
		default:
			if n > want {
				t.Fatalf("%v: %d results exceeds complete baseline's %d", alg, n, want)
			}
		}
	}
	if want != 1 {
		t.Fatalf("fixture should have exactly 1 result, got %d", want)
	}
}

// Determinism: identical inputs and options yield identical result sets
// and statistics.
func TestSearchDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := gen.Random(9, 12, []string{"a", "b", "c"}, rng)
	seeds := Explicit(gen.RandomSeedSets(g, 3, 2, rng)...)
	var prev *Stats
	var prevKeys []string
	for i := 0; i < 3; i++ {
		rs, st := run(t, g, seeds, Options{Algorithm: MoLESP, Filters: eql.Filters{MaxEdges: 5}})
		keys := sortedKeys(resultKeys(rs))
		if prev != nil {
			if st.Kept() != prev.Kept() || st.Created != prev.Created {
				t.Fatalf("run %d: stats differ: %+v vs %+v", i, st, prev)
			}
			if fmt.Sprint(keys) != fmt.Sprint(prevKeys) {
				t.Fatalf("run %d: results differ", i)
			}
		}
		prev, prevKeys = st, keys
	}
}
