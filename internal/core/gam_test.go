package core

import (
	"testing"

	"ctpquery/internal/eql"
	"ctpquery/internal/gen"
	"ctpquery/internal/graph"
	"ctpquery/internal/tree"
)

// run is a test helper executing one search.
func run(t *testing.T, g *graph.Graph, seeds []SeedSet, opts Options) (*ResultSet, *Stats) {
	t.Helper()
	rs, st, err := Search(g, seeds, opts)
	if err != nil {
		t.Fatalf("%v: %v", opts.Algorithm, err)
	}
	return rs, st
}

func TestSearchValidation(t *testing.T) {
	g := gen.Sample()
	if _, _, err := Search(g, nil, Options{Algorithm: MoLESP}); err == nil {
		t.Fatal("no seed sets should error")
	}
	if _, _, err := Search(g, []SeedSet{{Universal: true}}, Options{Algorithm: MoLESP}); err == nil {
		t.Fatal("all-universal should error")
	}
	if _, _, err := Search(g, singletons(0), Options{Algorithm: Algorithm(42)}); err == nil {
		t.Fatal("unknown algorithm should error")
	}
	// An empty (non-universal) seed set yields an empty result, not an error.
	rs, _, err := Search(g, []SeedSet{{Nodes: nil}, {Nodes: []graph.NodeID{0}}}, Options{Algorithm: MoLESP})
	if err != nil || rs.Len() != 0 {
		t.Fatalf("empty seed set: rs=%v err=%v", rs.Len(), err)
	}
}

func TestAlgorithmString(t *testing.T) {
	if GAM.String() != "GAM" || MoLESP.String() != "MoLESP" || BFTM.String() != "BFT-M" {
		t.Fatal("algorithm names wrong")
	}
	if Algorithm(99).String() != "Algorithm(99)" {
		t.Fatal("out-of-range name wrong")
	}
	if len(Algorithms()) != 8 || len(GAMFamily()) != 5 {
		t.Fatal("algorithm listings wrong")
	}
}

// The paper's running example (Figure 1): the CTP g1 over S1 = {Bob,
// Carole} (US entrepreneurs), S2 = {Alice, Doug} (French entrepreneurs),
// S3 = {Elon} must include the tree t_alpha = {e10, e9, e11} =
// Carole->OrgC<-Doug<-Elon, which exists only under bidirectional
// traversal.
func TestFigure1RunningExample(t *testing.T) {
	g := gen.Sample()
	bob, _ := g.NodeByLabel("Bob")
	carole, _ := g.NodeByLabel("Carole")
	alice, _ := g.NodeByLabel("Alice")
	doug, _ := g.NodeByLabel("Doug")
	elon, _ := g.NodeByLabel("Elon")
	seeds := Explicit(
		[]graph.NodeID{bob, carole},
		[]graph.NodeID{alice, doug},
		[]graph.NodeID{elon},
	)
	// Cap result size so the reference enumeration stays fast.
	opts := Options{Algorithm: MoLESP, Filters: eql.Filters{MaxEdges: 5}}
	rs, _ := run(t, g, seeds, opts)
	if rs.Len() == 0 {
		t.Fatal("no results on the running example")
	}

	// t_alpha: Carole -e10-> OrgC <-e9- Doug <-e11- Elon (paper edge
	// numbering is 1-based; our IDs are 0-based: e9, e8, e10).
	want := tree.EdgeSetKey([]graph.EdgeID{8, 9, 10})
	keys := resultKeys(rs)
	if !keys[want] {
		t.Fatalf("t_alpha not found; got %d results", rs.Len())
	}
	// Every result must be minimal and agree with the reference.
	ref := referenceResults(g, seeds, 5)
	for k := range keys {
		if !ref[k] {
			t.Fatalf("non-minimal or invalid result reported")
		}
	}
	for k := range ref {
		if !keys[k] {
			t.Fatalf("MoLESP missed a m=3 result (violates Property 8)")
		}
	}
	// The seed tuple of t_alpha must bind (Carole, Doug, Elon).
	for _, r := range rs.Results {
		if r.Tree.Size() == 3 && r.Tree.EdgeKey() == want {
			if r.Seeds[0] != carole || r.Seeds[1] != doug || r.Seeds[2] != elon {
				t.Fatalf("seed tuple = %v", r.Seeds)
			}
		}
	}
}

// Figure 3's graph: A-1-2-B-3-C. ESP misses the unique result under the
// smallest-first order (Section 4.4's incompleteness example), while
// GAM, MoESP, and MoLESP find it.
func TestFigure3ESPIncompleteness(t *testing.T) {
	w := gen.Line(3, 1, gen.Forward) // A -1- B -2- C with 2 edges per gap
	// gen.Line(3,1) gives A x B y C: exactly the Figure 3 shape.
	for _, alg := range []Algorithm{GAM, MoESP, MoLESP, BFT, BFTM, BFTAM} {
		rs, _ := run(t, w.Graph, Explicit(w.Seeds...), Options{Algorithm: alg})
		if rs.Len() != 1 {
			t.Fatalf("%v found %d results on Line(3,1), want 1", alg, rs.Len())
		}
	}
	for _, alg := range []Algorithm{ESP, LESP} {
		rs, _ := run(t, w.Graph, Explicit(w.Seeds...), Options{Algorithm: alg})
		if rs.Len() != 0 {
			t.Fatalf("%v found %d results on Line(3,1); the paper's Section 5.4.2 "+
				"reports edge-set pruning loses them under this order", alg, rs.Len())
		}
	}
}

// Figure 5's graph is Star(3, 2) (three 2-edge rays around a hub). Under
// the default smallest-first order every GAM variant finds the unique
// 3-simple result. Under a largest-tree-first (depth-first) order, each
// pairwise seed-to-seed through-path materializes as a Grow chain before
// any hub-rooted merge fires — so edge-set pruning discards every merge at
// the hub, reproducing the Section 4.5 incompleteness of ESP and MoESP;
// MoLESP's limited pruning (Section 4.6) spares the hub merges and finds
// the result under the same order, and GAM (no edge-set pruning) is
// unaffected.
func TestFigure5MoESPIncompleteness(t *testing.T) {
	w := gen.Star(3, 2, gen.Forward)
	g := w.Graph

	for _, alg := range GAMFamily() {
		rs, _ := run(t, g, Explicit(w.Seeds...), Options{Algorithm: alg})
		if rs.Len() != 1 {
			t.Fatalf("%v on Star(3,2), default order: %d results, want 1", alg, rs.Len())
		}
	}

	largestFirst := func(tr *tree.Tree, e graph.EdgeID) float64 {
		return -float64(tr.Size())
	}
	for _, alg := range []Algorithm{ESP, MoESP} {
		rs, _ := run(t, g, Explicit(w.Seeds...), Options{Algorithm: alg, Priority: largestFirst})
		if rs.Len() != 0 {
			t.Fatalf("%v under the adversarial order found %d results; expected a miss "+
				"mirroring the Section 4.5 trace", alg, rs.Len())
		}
	}
	rs2, st := run(t, g, Explicit(w.Seeds...), Options{Algorithm: MoLESP, Priority: largestFirst})
	if rs2.Len() != 1 {
		t.Fatalf("MoLESP under the adversarial order found %d results, want 1", rs2.Len())
	}
	if st.Spared == 0 {
		t.Fatal("the LESP exemption should have spared at least one merge tree")
	}
	rs3, _ := run(t, g, Explicit(w.Seeds...), Options{Algorithm: GAM, Priority: largestFirst})
	if rs3.Len() != 1 {
		t.Fatalf("GAM is order-independent (Property 1) but found %d results", rs3.Len())
	}
}

// GAM must not need result minimization: every reported tree is minimal
// by construction (Property 2).
func TestGAMResultsMinimal(t *testing.T) {
	g := gen.Sample()
	bob, _ := g.NodeByLabel("Bob")
	alice, _ := g.NodeByLabel("Alice")
	france, _ := g.NodeByLabel("France")
	seeds := singletons(bob, alice, france)
	rs, _ := run(t, g, seeds, Options{Algorithm: GAM, Filters: eql.Filters{MaxEdges: 5}})
	si := BuildSeedIndex(seeds)
	for _, r := range rs.Results {
		if r.Tree.Size() == 0 {
			continue
		}
		for _, l := range tree.Leaves(g, r.Tree.Edges) {
			if !si.IsSeed(l) {
				t.Fatalf("GAM reported non-minimal tree %v (leaf %d is not a seed)", r.Tree, l)
			}
		}
	}
}

// Single-node results: when one node belongs to every seed set, Init
// itself is a result (case (i) of Property 8's proof).
func TestSingleNodeResult(t *testing.T) {
	g := gen.Sample()
	alice, _ := g.NodeByLabel("Alice")
	seeds := Explicit([]graph.NodeID{alice}, []graph.NodeID{alice})
	for _, alg := range Algorithms() {
		rs, _ := run(t, g, seeds, Options{Algorithm: alg})
		found := false
		for _, r := range rs.Results {
			if r.Tree.Size() == 0 && r.Tree.Root == alice {
				found = true
			}
		}
		if !found {
			t.Fatalf("%v missed the single-node result", alg)
		}
	}
}

// Overlapping seed sets: a node in S1 and S2 plus a remote seed. Trees
// must never contain two distinct nodes of the same set.
func TestOverlappingSeedSets(t *testing.T) {
	w := gen.Line(2, 2, gen.Forward) // A -x-y- B
	g := w.Graph
	a, b := w.Seeds[0][0], w.Seeds[1][0]
	// S1 = {a}, S2 = {a, b}: results are the single node a (a matches
	// both) — and nothing else, because any tree containing both a and b
	// has two S2 nodes.
	seeds := Explicit([]graph.NodeID{a}, []graph.NodeID{a, b})
	for _, alg := range []Algorithm{BFT, GAM, MoLESP} {
		rs, _ := run(t, g, seeds, Options{Algorithm: alg})
		if rs.Len() != 1 || rs.Results[0].Tree.Size() != 0 {
			t.Fatalf("%v: expected exactly the single-node result, got %d", alg, rs.Len())
		}
	}
}

// The chain graph of Figure 2 has 2^N results for the 2-seed CTP; MoLESP
// finds all of them (they are path results, Property 5).
func TestFigure2ChainExponentialResults(t *testing.T) {
	const n = 6
	w := gen.Chain(n)
	for _, alg := range []Algorithm{BFT, GAM, ESP, MoESP, LESP, MoLESP} {
		rs, _ := run(t, w.Graph, Explicit(w.Seeds...), Options{Algorithm: alg})
		if rs.Len() != 1<<n {
			t.Fatalf("%v found %d results on Chain(%d), want %d", alg, rs.Len(), n, 1<<n)
		}
	}
}

// Line and Comb workloads have exactly one result; Star too. MoLESP is
// guaranteed to find them (Property 9, as invoked in Section 5.3).
func TestSyntheticWorkloadsUniqueResult(t *testing.T) {
	workloads := []*gen.Workload{
		gen.Line(3, 2, gen.Forward),
		gen.Line(5, 1, gen.Alternate),
		gen.Comb(2, 2, 2, 2, gen.Forward),
		gen.Comb(3, 1, 2, 3, gen.Alternate),
		gen.Star(4, 2, gen.Forward),
		gen.Star(5, 1, gen.Alternate),
		gen.Star(8, 2, gen.Forward),
	}
	for _, w := range workloads {
		rs, _ := run(t, w.Graph, Explicit(w.Seeds...), Options{Algorithm: MoLESP})
		if rs.Len() != 1 {
			t.Fatalf("%s: MoLESP found %d results, want 1", w.Name, rs.Len())
		}
		if got := rs.Results[0].Tree.Size(); got != w.Graph.NumEdges() {
			t.Fatalf("%s: result has %d edges, want the whole graph (%d)",
				w.Name, got, w.Graph.NumEdges())
		}
	}
}

// On Star graphs the unique result is an (m, center) rooted merge; LESP
// finds it under any order (Property 6 via Lemma 4.2).
func TestLESPStarRootedMerges(t *testing.T) {
	// Under the depth-first adversarial order the result is reachable only
	// through the pruning exemption, which must fire; the default order
	// reaches it without sparing.
	largestFirst := func(tr *tree.Tree, e graph.EdgeID) float64 {
		return -float64(tr.Size())
	}
	for _, m := range []int{3, 5, 8} {
		w := gen.Star(m, 2, gen.Forward)
		rs, _ := run(t, w.Graph, Explicit(w.Seeds...), Options{Algorithm: LESP})
		if rs.Len() != 1 {
			t.Fatalf("LESP on Star(%d,2): %d results, want 1", m, rs.Len())
		}
		rs2, st := run(t, w.Graph, Explicit(w.Seeds...),
			Options{Algorithm: LESP, Priority: largestFirst})
		if rs2.Len() != 1 {
			t.Fatalf("LESP on Star(%d,2), adversarial order: %d results, want 1", m, rs2.Len())
		}
		if st.Spared == 0 {
			t.Fatalf("LESP on Star(%d,2), adversarial order: exemption never fired", m)
		}
	}
}

// Provenance counting: pruning must reduce kept provenances
// (ESP <= GAM), and the Mo variants add trees over their base variants
// (Figure 11's ordering).
func TestProvenanceCountOrdering(t *testing.T) {
	w := gen.Star(5, 2, gen.Forward)
	counts := map[Algorithm]int{}
	for _, alg := range GAMFamily() {
		_, st := run(t, w.Graph, Explicit(w.Seeds...), Options{Algorithm: alg})
		counts[alg] = st.Kept()
	}
	if counts[ESP] >= counts[GAM] {
		t.Fatalf("ESP kept %d provenances, GAM %d; pruning should reduce them",
			counts[ESP], counts[GAM])
	}
	if counts[MoESP] < counts[ESP] {
		t.Fatalf("MoESP kept %d < ESP %d; Mo injection adds trees", counts[MoESP], counts[ESP])
	}
	if counts[MoLESP] < counts[LESP] {
		t.Fatalf("MoLESP kept %d < LESP %d", counts[MoLESP], counts[LESP])
	}
}

// Runtime statistics must be populated.
func TestStatsPopulated(t *testing.T) {
	w := gen.Star(3, 2, gen.Forward)
	_, st := run(t, w.Graph, Explicit(w.Seeds...), Options{Algorithm: MoLESP})
	if st.Kept() == 0 || st.Created == 0 || st.QueuePops == 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
	if st.Inits != 3 {
		t.Fatalf("inits = %d, want 3", st.Inits)
	}
	if st.Duration <= 0 {
		t.Fatal("duration not measured")
	}
	if st.Results != 1 {
		t.Fatalf("stats results = %d", st.Results)
	}
}
