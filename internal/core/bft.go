package core

import (
	"container/heap"
	"sort"
	"sync"
	"time"

	"ctpquery/internal/bitset"
	"ctpquery/internal/graph"
	"ctpquery/internal/tree"
)

// The breadth-first baselines of Sections 4.1 and 4.3. Unlike GAM, BFT
// views a tree as a plain set of edges (no root) and grows it from any of
// its nodes, so a potential result must be minimized (non-seed leaves
// peeled) before being reported — the overhead the paper measures in
// Figure 10. BFT-M additionally merges each freshly grown tree with every
// compatible partner once; BFT-AM re-merges merge results aggressively.

// bftTree is an unrooted tree: sorted edges and nodes plus seed coverage.
// Candidates come from a sync.Pool; a tree rejected by the history hands
// its buffers straight back (see bftRelease), so at steady state the
// grow/merge loop allocates only for trees it keeps. sat is a read-only
// view that may alias the parent tree's bits when growing added no seed;
// satBuf is the buffer this tree owns for non-aliased signatures.
type bftTree struct {
	edges  []graph.EdgeID
	nodes  []graph.NodeID
	sat    bitset.Bits
	satBuf bitset.Bits
	sig    uint64 // edge-set signature (tree.SetSigBasis when empty)
	seq    uint64

	// Inline storage: a fresh candidate is one allocation, not four;
	// larger trees spill to the heap via the Into helpers.
	inlineEdges [16]graph.EdgeID
	inlineNodes [17]graph.NodeID
	inlineSat   [2]uint64
}

var bftTreePool = sync.Pool{New: func() any {
	t := new(bftTree)
	t.edges = t.inlineEdges[:0]
	t.nodes = t.inlineNodes[:0]
	t.satBuf = bitset.Bits(t.inlineSat[:0])
	return t
}}

// bftAcquire returns a pooled tree whose buffers keep their capacity but
// hold no elements.
func bftAcquire() *bftTree {
	t := bftTreePool.Get().(*bftTree)
	t.edges = t.edges[:0]
	t.nodes = t.nodes[:0]
	t.sat = nil
	t.satBuf = t.satBuf[:0]
	t.sig = 0
	t.seq = 0
	return t
}

// bftRelease recycles a rejected candidate. The caller must ensure no
// history, index, or queue references the tree or its slices.
func bftRelease(t *bftTree) { bftTreePool.Put(t) }

func (t *bftTree) size() int { return len(t.edges) }

// identity returns the history signature and collision-check identity:
// edge trees by their edge set, single-node trees by their node.
func (t *bftTree) identity() (sig uint64, root graph.NodeID, edges []graph.EdgeID) {
	if len(t.edges) == 0 {
		return tree.NodeSig(t.nodes[0]), t.nodes[0], nil
	}
	return t.sig, UnrootedRef, t.edges
}

func (t *bftTree) containsNode(n graph.NodeID) bool {
	i := sort.Search(len(t.nodes), func(i int) bool { return t.nodes[i] >= n })
	return i < len(t.nodes) && t.nodes[i] == n
}

// bftHeap orders trees smallest-first (BFS generations), FIFO among equals.
type bftHeap []*bftTree

func (h bftHeap) Len() int { return len(h) }
func (h bftHeap) Less(i, j int) bool {
	if len(h[i].edges) != len(h[j].edges) {
		return len(h[i].edges) < len(h[j].edges)
	}
	return h[i].seq < h[j].seq
}
func (h bftHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *bftHeap) Push(x interface{}) { *h = append(*h, x.(*bftTree)) }
func (h *bftHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

type bftState struct {
	g        *graph.Graph
	si       *SeedIndex
	opts     Options
	variant  Algorithm
	allowed  map[graph.LabelID]bool
	maxEdges int

	queue  bftHeap
	seq    uint64
	hist   *SigSet
	byNode map[graph.NodeID][]*bftTree

	collector *ResultCollector
	stats     *Stats
	dl        *Deadline
	stop      bool
}

// bftSearch runs BFT, BFT-M, or BFT-AM.
func bftSearch(g *graph.Graph, seeds []SeedSet, opts Options) (*ResultSet, *Stats, error) {
	start := time.Now()
	si := BuildSeedIndex(seeds)
	s := &bftState{
		g:        g,
		si:       si,
		opts:     opts,
		variant:  opts.Algorithm,
		allowed:  LabelAllow(g, opts.Filters.Labels),
		maxEdges: opts.Filters.MaxEdges,
		hist:     NewSigSet(),
		byNode:   make(map[graph.NodeID][]*bftTree),
		stats:    &Stats{},
		dl:       NewDeadline(opts.Filters.Timeout, opts.Done),
	}
	s.collector = NewResultCollector(g, si, opts)

	// Generation T0: one-node trees for every seed.
	inited := make(map[graph.NodeID]bool)
	for _, set := range seeds {
		if set.Universal {
			continue
		}
		for _, n := range set.Nodes {
			if inited[n] {
				continue
			}
			inited[n] = true
			t := bftAcquire()
			t.nodes = append(t.nodes, n)
			t.satBuf = bitset.UnionInto(t.satBuf, si.Mask(n), nil)
			t.sat = t.satBuf
			t.sig = tree.SetSigBasis
			s.stats.created()
			s.admitOrRelease(t, tree.Init)
			if s.stop {
				break
			}
		}
		if s.stop {
			break
		}
	}

	for !s.stop && len(s.queue) > 0 {
		t := heap.Pop(&s.queue).(*bftTree)
		probeBftPop.Hit()
		s.stats.QueuePops++
		if s.dl.Expired() {
			s.stats.TimedOut = true
			break
		}
		s.growAll(t)
	}

	s.stats.Duration = time.Since(start)
	rs := s.collector.finish()
	s.stats.Results = len(rs.Results)
	return rs, s.stats, nil
}

// admitOrRelease routes a freshly built candidate through admit and hands
// rejected candidates back to the pool.
func (s *bftState) admitOrRelease(t *bftTree, kind tree.Kind) {
	if !s.admit(t, kind) {
		s.stats.Recycled++
		bftRelease(t)
	}
}

// admit deduplicates a freshly built tree and routes it: covering trees
// are minimized and reported; other trees are indexed, queued for growth,
// and — depending on the variant and the tree's provenance kind — merged
// with their partners (BFT-M merges Grow trees once; BFT-AM merges
// everything, recursively). It reports whether the tree was retained by
// any search structure; a false return means the caller may recycle it.
func (s *bftState) admit(t *bftTree, kind tree.Kind) bool {
	if s.stop {
		return false
	}
	if s.dl.Expired() {
		s.stats.TimedOut = true
		s.stop = true
		return false
	}
	sig, root, edges := t.identity()
	if !s.hist.Add(sig, root, edges) {
		s.stats.Pruned++
		return false
	}
	// From here on the history references t.edges: the tree is retained.
	switch kind {
	case tree.Init:
		s.stats.Inits++
	case tree.Grow:
		s.stats.Grows++
	case tree.Merge:
		s.stats.Merges++
	}
	if s.opts.MaxTrees > 0 && s.stats.Kept() >= s.opts.MaxTrees {
		s.stats.Truncated = true
		s.stop = true
		return true
	}

	if s.si.Covers(t.sat) {
		s.reportMinimized(t)
		if !s.si.hasUniversal {
			return true
		}
		if s.stop {
			return true
		}
	}

	for _, n := range t.nodes {
		s.byNode[n] = append(s.byNode[n], t)
	}
	s.seq++
	t.seq = s.seq
	heap.Push(&s.queue, t)
	s.stats.noteQueueLen(len(s.queue))

	merge := false
	switch s.variant {
	case BFTM:
		merge = kind == tree.Grow // no Merge on top of Merge results
	case BFTAM:
		merge = kind != tree.Init
	}
	if merge {
		s.mergePass(t)
	}
	return true
}

// growAll extends t by every admissible adjacent edge — from any node, the
// defining difference with GAM's root-only growth.
func (s *bftState) growAll(t *bftTree) {
	if s.maxEdges > 0 && t.size() >= s.maxEdges {
		return
	}
	for _, n := range t.nodes {
		for _, e := range s.g.IncidentEdges(n) {
			if s.stop {
				return
			}
			if s.allowed != nil && !s.allowed[s.g.EdgeLabelID(e)] {
				continue
			}
			other := s.g.Other(e, n)
			if t.containsNode(other) {
				continue // Grow1
			}
			if s.si.Mask(other).Intersects(t.sat) {
				continue // Grow2
			}
			grown := bftAcquire()
			grown.edges = tree.InsertEdgeInto(grown.edges, t.edges, e)
			grown.nodes = tree.InsertNodeInto(grown.nodes, t.nodes, other)
			if mask := s.si.Mask(other); mask.IsEmpty() {
				grown.sat = t.sat // alias: a non-seed adds no bits
			} else {
				grown.satBuf = bitset.UnionInto(grown.satBuf, t.sat, mask)
				grown.sat = grown.satBuf
			}
			grown.sig = t.sig ^ tree.EdgeSig(e)
			s.stats.created()
			s.admitOrRelease(grown, tree.Grow)
		}
	}
}

// mergePass merges t with every compatible partner: trees sharing exactly
// one node, with disjoint coverage outside that node's own seed sets.
// Merge results re-enter admit, which re-merges them only under BFT-AM.
func (s *bftState) mergePass(t *bftTree) {
	for _, n := range t.nodes {
		partners := s.byNode[n]
		limit := len(partners) // snapshot: admit may append
		for i := 0; i < limit; i++ {
			if s.stop {
				return
			}
			p := partners[i]
			if p == t || !s.bftMergeable(t, p, n) {
				continue
			}
			merged := bftAcquire()
			merged.edges = tree.UnionEdgesInto(merged.edges, t.edges, p.edges)
			merged.nodes = tree.UnionNodesInto(merged.nodes, t.nodes, p.nodes)
			merged.satBuf = bitset.UnionInto(merged.satBuf, t.sat, p.sat)
			merged.sat = merged.satBuf
			merged.sig = tree.MergeSigs(t.sig, p.sig)
			s.stats.created()
			s.admitOrRelease(merged, tree.Merge)
		}
	}
}

// bftMergeable checks the unrooted merge preconditions at shared node n:
// the node sets intersect exactly in {n} and no seed set is represented on
// both sides except through n itself.
func (s *bftState) bftMergeable(a, b *bftTree, n graph.NodeID) bool {
	if len(a.edges) == 0 || len(b.edges) == 0 {
		return false
	}
	if s.maxEdges > 0 && len(a.edges)+len(b.edges) > s.maxEdges {
		return false
	}
	if a.sat.IntersectsOutside(b.sat, s.si.Mask(n)) {
		return false
	}
	common := 0
	i, j := 0, 0
	for i < len(a.nodes) && j < len(b.nodes) {
		switch {
		case a.nodes[i] < b.nodes[j]:
			i++
		case a.nodes[i] > b.nodes[j]:
			j++
		default:
			if a.nodes[i] != n {
				return false
			}
			common++
			i++
			j++
		}
	}
	return common == 1
}

// reportMinimized peels non-seed leaves (Section 4.1's minimization) and
// reports the minimal tree.
func (s *bftState) reportMinimized(t *bftTree) {
	edges := tree.Minimize(s.g, t.edges, s.si.IsSeed)
	var rt *tree.Tree
	if len(edges) == 0 {
		rt = tree.NewInit(t.nodes[0], s.si.Mask(t.nodes[0]))
		if !s.si.Covers(rt.Sat) {
			return
		}
	} else {
		nodes := tree.NodesOfEdges(s.g, edges)
		var sat bitset.Bits
		for _, n := range nodes {
			(&sat).UnionInPlace(s.si.Mask(n))
		}
		if !s.si.Covers(sat) {
			return
		}
		rt = &tree.Tree{Root: nodes[0], Edges: edges, Nodes: nodes, Sat: sat}
	}
	if s.collector.Add(rt) {
		s.stats.Truncated = true
		s.stop = true
	}
}

// The sorted-slice primitives are the tree package's buffer-reusing
// helpers (one implementation, one growth policy — see tree.InsertEdgeInto
// and friends). The allocation-per-call forms below remain the property-
// tested entry points, preallocated to the worst case len(a)+len(b).

func insertEdgeSorted(s []graph.EdgeID, e graph.EdgeID) []graph.EdgeID {
	return tree.InsertEdgeInto(nil, s, e)
}

func insertNodeSorted(s []graph.NodeID, n graph.NodeID) []graph.NodeID {
	return tree.InsertNodeInto(nil, s, n)
}

func unionEdgesSorted(a, b []graph.EdgeID) []graph.EdgeID {
	return tree.UnionEdgesInto(make([]graph.EdgeID, 0, len(a)+len(b)), a, b)
}

func unionNodesSorted(a, b []graph.NodeID) []graph.NodeID {
	return tree.UnionNodesInto(make([]graph.NodeID, 0, len(a)+len(b)), a, b)
}
