package core

import (
	"container/heap"
	"sort"
	"time"

	"ctpquery/internal/bitset"
	"ctpquery/internal/graph"
	"ctpquery/internal/tree"
)

// The breadth-first baselines of Sections 4.1 and 4.3. Unlike GAM, BFT
// views a tree as a plain set of edges (no root) and grows it from any of
// its nodes, so a potential result must be minimized (non-seed leaves
// peeled) before being reported — the overhead the paper measures in
// Figure 10. BFT-M additionally merges each freshly grown tree with every
// compatible partner once; BFT-AM re-merges merge results aggressively.

// bftTree is an unrooted tree: sorted edges and nodes plus seed coverage.
type bftTree struct {
	edges []graph.EdgeID
	nodes []graph.NodeID
	sat   bitset.Bits
	seq   uint64
}

func (t *bftTree) size() int { return len(t.edges) }

// key identifies the tree as an edge set; single-node trees are keyed by
// their node instead.
func (t *bftTree) key() string {
	if len(t.edges) == 0 {
		return "n" + tree.EdgeSetKey([]graph.EdgeID{graph.EdgeID(t.nodes[0])})
	}
	return tree.EdgeSetKey(t.edges)
}

func (t *bftTree) containsNode(n graph.NodeID) bool {
	i := sort.Search(len(t.nodes), func(i int) bool { return t.nodes[i] >= n })
	return i < len(t.nodes) && t.nodes[i] == n
}

// bftHeap orders trees smallest-first (BFS generations), FIFO among equals.
type bftHeap []*bftTree

func (h bftHeap) Len() int { return len(h) }
func (h bftHeap) Less(i, j int) bool {
	if len(h[i].edges) != len(h[j].edges) {
		return len(h[i].edges) < len(h[j].edges)
	}
	return h[i].seq < h[j].seq
}
func (h bftHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *bftHeap) Push(x interface{}) { *h = append(*h, x.(*bftTree)) }
func (h *bftHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

type bftState struct {
	g        *graph.Graph
	si       *seedIndex
	opts     Options
	variant  Algorithm
	allowed  map[graph.LabelID]bool
	maxEdges int

	queue  bftHeap
	seq    uint64
	hist   map[string]bool
	byNode map[graph.NodeID][]*bftTree

	collector *resultCollector
	stats     *Stats
	dl        *deadline
	stop      bool
}

// bftSearch runs BFT, BFT-M, or BFT-AM.
func bftSearch(g *graph.Graph, seeds []SeedSet, opts Options) (*ResultSet, *Stats, error) {
	start := time.Now()
	si := buildSeedIndex(seeds)
	s := &bftState{
		g:        g,
		si:       si,
		opts:     opts,
		variant:  opts.Algorithm,
		allowed:  labelFilter(g, opts.Filters.Labels),
		maxEdges: opts.Filters.MaxEdges,
		hist:     make(map[string]bool),
		byNode:   make(map[graph.NodeID][]*bftTree),
		stats:    &Stats{},
		dl:       newDeadline(opts.Filters.Timeout, opts.Done),
	}
	s.collector = newResultCollector(g, si, opts)

	// Generation T0: one-node trees for every seed.
	inited := make(map[graph.NodeID]bool)
	for _, set := range seeds {
		if set.Universal {
			continue
		}
		for _, n := range set.Nodes {
			if inited[n] {
				continue
			}
			inited[n] = true
			t := &bftTree{nodes: []graph.NodeID{n}, sat: si.mask(n).Clone()}
			s.stats.Created++
			s.admit(t, tree.Init)
			if s.stop {
				break
			}
		}
		if s.stop {
			break
		}
	}

	for !s.stop && len(s.queue) > 0 {
		t := heap.Pop(&s.queue).(*bftTree)
		s.stats.QueuePops++
		if s.dl.expired() {
			s.stats.TimedOut = true
			break
		}
		s.growAll(t)
	}

	s.stats.Duration = time.Since(start)
	rs := s.collector.finish()
	s.stats.Results = len(rs.Results)
	return rs, s.stats, nil
}

// admit deduplicates a freshly built tree and routes it: covering trees
// are minimized and reported; other trees are indexed, queued for growth,
// and — depending on the variant and the tree's provenance kind — merged
// with their partners (BFT-M merges Grow trees once; BFT-AM merges
// everything, recursively).
func (s *bftState) admit(t *bftTree, kind tree.Kind) {
	if s.stop {
		return
	}
	if s.dl.expired() {
		s.stats.TimedOut = true
		s.stop = true
		return
	}
	if s.hist[t.key()] {
		s.stats.Pruned++
		return
	}
	s.hist[t.key()] = true
	switch kind {
	case tree.Init:
		s.stats.Inits++
	case tree.Grow:
		s.stats.Grows++
	case tree.Merge:
		s.stats.Merges++
	}
	if s.opts.MaxTrees > 0 && s.stats.Kept() >= s.opts.MaxTrees {
		s.stats.Truncated = true
		s.stop = true
		return
	}

	if s.si.covers(t.sat) {
		s.reportMinimized(t)
		if !s.si.hasUniversal {
			return
		}
		if s.stop {
			return
		}
	}

	for _, n := range t.nodes {
		s.byNode[n] = append(s.byNode[n], t)
	}
	s.seq++
	t.seq = s.seq
	heap.Push(&s.queue, t)

	merge := false
	switch s.variant {
	case BFTM:
		merge = kind == tree.Grow // no Merge on top of Merge results
	case BFTAM:
		merge = kind != tree.Init
	}
	if merge {
		s.mergePass(t)
	}
}

// growAll extends t by every admissible adjacent edge — from any node, the
// defining difference with GAM's root-only growth.
func (s *bftState) growAll(t *bftTree) {
	if s.maxEdges > 0 && t.size() >= s.maxEdges {
		return
	}
	for _, n := range t.nodes {
		for _, e := range s.g.Incident(n) {
			if s.stop {
				return
			}
			if s.allowed != nil && !s.allowed[s.g.EdgeLabelID(e)] {
				continue
			}
			other := s.g.Other(e, n)
			if t.containsNode(other) {
				continue // Grow1
			}
			if s.si.mask(other).Intersects(t.sat) {
				continue // Grow2
			}
			grown := &bftTree{
				edges: insertEdgeSorted(t.edges, e),
				nodes: insertNodeSorted(t.nodes, other),
				sat:   t.sat.Union(s.si.mask(other)),
			}
			s.stats.Created++
			s.admit(grown, tree.Grow)
		}
	}
}

// mergePass merges t with every compatible partner: trees sharing exactly
// one node, with disjoint coverage outside that node's own seed sets.
// Merge results re-enter admit, which re-merges them only under BFT-AM.
func (s *bftState) mergePass(t *bftTree) {
	for _, n := range t.nodes {
		partners := s.byNode[n]
		limit := len(partners) // snapshot: admit may append
		for i := 0; i < limit; i++ {
			if s.stop {
				return
			}
			p := partners[i]
			if p == t || !s.bftMergeable(t, p, n) {
				continue
			}
			merged := &bftTree{
				edges: unionEdgesSorted(t.edges, p.edges),
				nodes: unionNodesSorted(t.nodes, p.nodes),
				sat:   t.sat.Union(p.sat),
			}
			s.stats.Created++
			s.admit(merged, tree.Merge)
		}
	}
}

// bftMergeable checks the unrooted merge preconditions at shared node n:
// the node sets intersect exactly in {n} and no seed set is represented on
// both sides except through n itself.
func (s *bftState) bftMergeable(a, b *bftTree, n graph.NodeID) bool {
	if len(a.edges) == 0 || len(b.edges) == 0 {
		return false
	}
	if s.maxEdges > 0 && len(a.edges)+len(b.edges) > s.maxEdges {
		return false
	}
	if a.sat.IntersectsOutside(b.sat, s.si.mask(n)) {
		return false
	}
	common := 0
	i, j := 0, 0
	for i < len(a.nodes) && j < len(b.nodes) {
		switch {
		case a.nodes[i] < b.nodes[j]:
			i++
		case a.nodes[i] > b.nodes[j]:
			j++
		default:
			if a.nodes[i] != n {
				return false
			}
			common++
			i++
			j++
		}
	}
	return common == 1
}

// reportMinimized peels non-seed leaves (Section 4.1's minimization) and
// reports the minimal tree.
func (s *bftState) reportMinimized(t *bftTree) {
	edges := tree.Minimize(s.g, t.edges, s.si.isSeed)
	var rt *tree.Tree
	if len(edges) == 0 {
		rt = tree.NewInit(t.nodes[0], s.si.mask(t.nodes[0]))
		if !s.si.covers(rt.Sat) {
			return
		}
	} else {
		nodes := tree.NodesOfEdges(s.g, edges)
		var sat bitset.Bits
		for _, n := range nodes {
			(&sat).UnionInPlace(s.si.mask(n))
		}
		if !s.si.covers(sat) {
			return
		}
		rt = &tree.Tree{Root: nodes[0], Edges: edges, Nodes: nodes, Sat: sat}
	}
	if s.collector.add(rt) {
		s.stats.Truncated = true
		s.stop = true
	}
}

func insertEdgeSorted(s []graph.EdgeID, e graph.EdgeID) []graph.EdgeID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= e })
	out := make([]graph.EdgeID, len(s)+1)
	copy(out, s[:i])
	out[i] = e
	copy(out[i+1:], s[i:])
	return out
}

func insertNodeSorted(s []graph.NodeID, n graph.NodeID) []graph.NodeID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= n })
	out := make([]graph.NodeID, len(s)+1)
	copy(out, s[:i])
	out[i] = n
	copy(out[i+1:], s[i:])
	return out
}

func unionEdgesSorted(a, b []graph.EdgeID) []graph.EdgeID {
	out := make([]graph.EdgeID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

func unionNodesSorted(a, b []graph.NodeID) []graph.NodeID {
	out := make([]graph.NodeID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
