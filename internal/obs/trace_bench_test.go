package obs

import "testing"

func BenchmarkTraceLifecycle(b *testing.B) {
	tr := NewTracer(TraceConfig{Logf: func(string, ...any) {}})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("query", SpanContext{})
		p := sp.Child("parse")
		p.End()
		c := sp.Child("cache")
		c.AttrBool("hit", false)
		e := c.Child("engine.eval")
		e.ChildTimed("bgp", c.start, 0, Attr{Key: "bgps", Val: "1"})
		e.ChildTimed("ctp[0]", c.start, 0, Attr{Key: "kept", Val: "10"}, Attr{Key: "results", Val: "3"})
		e.ChildTimed("join", c.start, 0, Attr{Key: "rows", Val: "3"})
		e.End()
		c.End()
		enc := sp.Child("encode")
		enc.End()
		sp.End()
	}
}
