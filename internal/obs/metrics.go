package obs

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// LatencyBuckets is the repository-wide fixed histogram layout for
// request and stage latencies, in seconds. ctpload exports its
// client-side histograms in the same layout so client-vs-server
// latency diffs line up bucket for bucket.
var LatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Label is one name="value" pair on a sample.
type Label struct {
	Name  string
	Value string
}

// Registry owns a set of metric families and renders them in
// Prometheus text exposition format (version 0.0.4). Two kinds of
// sources coexist: always-on instruments (Counter, Gauge, CounterVec,
// Histogram, HistogramVec — plain atomics, safe on every hot path) and
// Collect callbacks that derive families from a consistent server
// snapshot at scrape time only.
type Registry struct {
	mu   sync.Mutex
	cols []func(w *Exposition)
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Collect registers a scrape-time callback. Callbacks run in
// registration order under the registry lock; each must emit complete
// families (Family then its samples).
func (r *Registry) Collect(f func(w *Exposition)) {
	r.mu.Lock()
	r.cols = append(r.cols, f)
	r.mu.Unlock()
}

// Write renders every family to w.
func (r *Registry) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	exp := &Exposition{w: bw}
	r.mu.Lock()
	cols := make([]func(w *Exposition), len(r.cols))
	copy(cols, r.cols)
	r.mu.Unlock()
	for _, f := range cols {
		f(exp)
	}
	return bw.Flush()
}

// ServeMetrics is the GET /metrics handler.
func (r *Registry) ServeMetrics(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	r.Write(w)
}

// Counter is a monotone uint64 counter.
type Counter struct {
	name, help string
	v          atomic.Uint64
}

// NewCounter registers a counter family with one unlabeled sample.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.Collect(func(w *Exposition) {
		w.Family(name, help, "counter")
		w.Sample("", nil, float64(c.v.Load()))
	})
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable float64 gauge.
type Gauge struct {
	name, help string
	bits       atomic.Uint64
}

// NewGauge registers a gauge family with one unlabeled sample.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	r.Collect(func(w *Exposition) {
		w.Family(name, help, "gauge")
		w.Sample("", nil, g.Value())
	})
	return g
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// CounterVec is a counter family keyed by label values.
type CounterVec struct {
	name, help string
	labels     []string
	mu         sync.Mutex
	m          map[string]*vecCounter
}

type vecCounter struct {
	labels []Label
	Counter
}

// NewCounterVec registers a labeled counter family.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	v := &CounterVec{name: name, help: help, labels: labels, m: make(map[string]*vecCounter)}
	r.Collect(func(w *Exposition) {
		w.Family(name, help, "counter")
		for _, e := range v.sorted() {
			w.Sample("", e.labels, float64(e.v.Load()))
		}
	})
	return v
}

func (v *CounterVec) sorted() []*vecCounter {
	v.mu.Lock()
	keys := make([]string, 0, len(v.m))
	for k := range v.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*vecCounter, 0, len(keys))
	for _, k := range keys {
		out = append(out, v.m[k])
	}
	v.mu.Unlock()
	return out
}

// With returns the counter cell for the given label values (created on
// first use). len(values) must match the vec's label names.
func (v *CounterVec) With(values ...string) *Counter {
	key := strings.Join(values, "\xff")
	v.mu.Lock()
	e, ok := v.m[key]
	if !ok {
		ls := make([]Label, len(v.labels))
		for i, n := range v.labels {
			val := ""
			if i < len(values) {
				val = values[i]
			}
			ls[i] = Label{Name: n, Value: val}
		}
		e = &vecCounter{labels: ls}
		e.name = v.name
		v.m[key] = e
	}
	v.mu.Unlock()
	return &e.Counter
}

// Histogram is a fixed-bucket histogram. Observations are atomic and
// lock-free; buckets are cumulative only at exposition time.
type Histogram struct {
	name, help string
	bounds     []float64       // ascending upper bounds; +Inf is implicit
	counts     []atomic.Uint64 // len(bounds)+1, last is the +Inf overflow
	sumBits    atomic.Uint64
	count      atomic.Uint64
}

func newHistogram(name, help string, buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = LatencyBuckets
	}
	return &Histogram{
		name:   name,
		help:   help,
		bounds: buckets,
		counts: make([]atomic.Uint64, len(buckets)+1),
	}
}

// NewHistogram registers an unlabeled histogram family. A nil bucket
// slice selects LatencyBuckets.
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	h := newHistogram(name, help, buckets)
	r.Collect(func(w *Exposition) {
		w.Family(name, help, "histogram")
		h.write(w, nil)
	})
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Snapshot returns the cumulative bucket counts (one per bound, plus
// +Inf last), the total count, and the sum.
func (h *Histogram) Snapshot() (cumulative []uint64, count uint64, sum float64) {
	cumulative = make([]uint64, len(h.counts))
	var c uint64
	for i := range h.counts {
		c += h.counts[i].Load()
		cumulative[i] = c
	}
	return cumulative, h.count.Load(), math.Float64frombits(h.sumBits.Load())
}

// write emits the _bucket/_sum/_count samples with extra labels.
func (h *Histogram) write(w *Exposition, labels []Label) {
	cum, count, sum := h.Snapshot()
	bl := make([]Label, len(labels)+1)
	copy(bl, labels)
	for i, b := range h.bounds {
		bl[len(labels)] = Label{Name: "le", Value: formatFloat(b)}
		w.Sample("_bucket", bl, float64(cum[i]))
	}
	bl[len(labels)] = Label{Name: "le", Value: "+Inf"}
	w.Sample("_bucket", bl, float64(cum[len(cum)-1]))
	w.Sample("_sum", labels, sum)
	w.Sample("_count", labels, float64(count))
}

// HistogramVec is a histogram family keyed by label values, sharing
// one bucket layout.
type HistogramVec struct {
	name, help string
	labels     []string
	buckets    []float64
	mu         sync.Mutex
	m          map[string]*vecHistogram
}

type vecHistogram struct {
	labels []Label
	h      *Histogram
}

// NewHistogramVec registers a labeled histogram family. A nil bucket
// slice selects LatencyBuckets.
func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if len(buckets) == 0 {
		buckets = LatencyBuckets
	}
	v := &HistogramVec{name: name, help: help, labels: labels, buckets: buckets, m: make(map[string]*vecHistogram)}
	r.Collect(func(w *Exposition) {
		w.Family(name, help, "histogram")
		v.mu.Lock()
		keys := make([]string, 0, len(v.m))
		for k := range v.m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		cells := make([]*vecHistogram, 0, len(keys))
		for _, k := range keys {
			cells = append(cells, v.m[k])
		}
		v.mu.Unlock()
		for _, c := range cells {
			c.h.write(w, c.labels)
		}
	})
	return v
}

// With returns the histogram cell for the given label values (created
// on first use).
func (v *HistogramVec) With(values ...string) *Histogram {
	key := strings.Join(values, "\xff")
	v.mu.Lock()
	e, ok := v.m[key]
	if !ok {
		ls := make([]Label, len(v.labels))
		for i, n := range v.labels {
			val := ""
			if i < len(values) {
				val = values[i]
			}
			ls[i] = Label{Name: n, Value: val}
		}
		e = &vecHistogram{labels: ls, h: newHistogram(v.name, v.help, v.buckets)}
		v.m[key] = e
	}
	v.mu.Unlock()
	return e.h
}

// Exposition writes Prometheus text format. Collect callbacks receive
// one; Family starts a family (HELP + TYPE lines), Sample appends one
// sample line to the current family.
type Exposition struct {
	w      *bufio.Writer
	family string
}

// Family emits the # HELP and # TYPE header for a new family.
func (e *Exposition) Family(name, help, typ string) {
	e.family = name
	e.w.WriteString("# HELP ")
	e.w.WriteString(name)
	e.w.WriteByte(' ')
	e.w.WriteString(escapeHelp(help))
	e.w.WriteByte('\n')
	e.w.WriteString("# TYPE ")
	e.w.WriteString(name)
	e.w.WriteByte(' ')
	e.w.WriteString(typ)
	e.w.WriteByte('\n')
}

// Sample emits one sample of the current family. suffix is appended to
// the family name ("_bucket", "_sum", "_count", or "").
func (e *Exposition) Sample(suffix string, labels []Label, v float64) {
	e.w.WriteString(e.family)
	e.w.WriteString(suffix)
	if len(labels) > 0 {
		e.w.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				e.w.WriteByte(',')
			}
			e.w.WriteString(l.Name)
			e.w.WriteString(`="`)
			e.w.WriteString(escapeLabel(l.Value))
			e.w.WriteByte('"')
		}
		e.w.WriteByte('}')
	}
	e.w.WriteByte(' ')
	e.w.WriteString(formatFloat(v))
	e.w.WriteByte('\n')
}

func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatFloat renders integral values without an exponent so counters
// read naturally, everything else in Go's shortest float form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
