package obs

import (
	"bytes"
	"encoding/json"
	"log"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// SpanContext identifies one span inside one trace — the unit of
// cross-process propagation.
type SpanContext struct {
	TraceID uint64
	SpanID  uint64
}

// Valid reports whether the context names a real span.
func (sc SpanContext) Valid() bool { return sc.TraceID != 0 && sc.SpanID != 0 }

// Traceparent renders the context as a W3C-style traceparent value:
// 00-<32 hex trace id>-<16 hex span id>-01. The engine's IDs are 64-bit,
// so the trace id's high 16 hex digits are zero.
func (sc SpanContext) Traceparent() string {
	var b strings.Builder
	b.Grow(55)
	b.WriteString("00-")
	b.WriteString(strings.Repeat("0", 16))
	b.WriteString(hex16(sc.TraceID))
	b.WriteByte('-')
	b.WriteString(hex16(sc.SpanID))
	b.WriteString("-01")
	return b.String()
}

// TraceHeader is the HTTP header carrying the traceparent value.
const TraceHeader = "Traceparent"

// ParseTraceparent decodes a traceparent value produced by
// SpanContext.Traceparent (or any W3C traceparent whose trace id fits
// in the low 64 bits). It returns false on anything malformed or on the
// all-zero IDs the spec reserves for "no trace".
func ParseTraceparent(s string) (SpanContext, bool) {
	parts := strings.Split(strings.TrimSpace(s), "-")
	if len(parts) != 4 || len(parts[0]) != 2 || len(parts[1]) != 32 || len(parts[2]) != 16 {
		return SpanContext{}, false
	}
	tid, err := strconv.ParseUint(parts[1][16:], 16, 64)
	if err != nil {
		return SpanContext{}, false
	}
	sid, err := strconv.ParseUint(parts[2], 16, 64)
	if err != nil {
		return SpanContext{}, false
	}
	sc := SpanContext{TraceID: tid, SpanID: sid}
	if !sc.Valid() {
		return SpanContext{}, false
	}
	return sc, true
}

func hex16(v uint64) string {
	const digits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = digits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

// appendHex16 appends v's 16 hex digits to buf.
func appendHex16(buf []byte, v uint64) []byte {
	const digits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = digits[v&0xf]
		v >>= 4
	}
	return append(buf, b[:]...)
}

// TraceConfig tunes a Tracer; the zero value selects the defaults.
type TraceConfig struct {
	// Disabled starts the tracer off (it can be flipped later with
	// SetEnabled); the default is on.
	Disabled bool
	// RingSize caps the flight recorder's completed-trace ring
	// (default 256).
	RingSize int
	// SlowQuery, when positive, logs every completed trace at least
	// this slow as one structured-JSON line through Logf.
	SlowQuery time.Duration
	// Logf receives slow-query lines (default log.Printf).
	Logf func(format string, args ...any)
}

// Tracer owns one process-local trace pipeline: span creation, the
// completed-trace flight-recorder ring, and the slow-query log. A nil
// *Tracer is valid and inert, as is every method on the nil *Span that
// a disabled tracer hands out.
type Tracer struct {
	enabled atomic.Int32
	slowNS  atomic.Int64
	logf    func(format string, args ...any)
	rng     atomic.Uint64

	// Leak accounting across every trace this tracer started, for the
	// span-leak contract test and the ctp_spans_* metrics.
	started atomic.Int64 // spans created
	ended   atomic.Int64 // spans ended (End called)
	dropped atomic.Int64 // spans ended after their trace finalized

	tracesStarted  atomic.Int64
	tracesFinished atomic.Int64
	slowTraces     atomic.Int64

	mu   sync.Mutex
	ring []*Trace // circular, ring[next] is the oldest
	next int
}

// NewTracer builds a tracer.
func NewTracer(cfg TraceConfig) *Tracer {
	if cfg.RingSize <= 0 {
		cfg.RingSize = 256
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	t := &Tracer{
		logf: cfg.Logf,
		ring: make([]*Trace, 0, cfg.RingSize),
	}
	t.rng.Store(uint64(time.Now().UnixNano()) | 1)
	if !cfg.Disabled {
		t.enabled.Store(1)
	}
	t.slowNS.Store(int64(cfg.SlowQuery))
	return t
}

// Enabled reports whether Start hands out live spans — the one atomic
// load the disabled path costs.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() == 1 }

// SetEnabled flips span collection at runtime. In-flight traces finish
// normally either way.
func (t *Tracer) SetEnabled(on bool) {
	if t == nil {
		return
	}
	if on {
		t.enabled.Store(1)
	} else {
		t.enabled.Store(0)
	}
}

// SetSlowQuery updates the slow-query threshold (0 disables the log).
func (t *Tracer) SetSlowQuery(d time.Duration) {
	if t != nil {
		t.slowNS.Store(int64(d))
	}
}

// newID draws a non-zero 64-bit ID (splitmix64 over an atomic counter).
func (t *Tracer) newID() uint64 {
	for {
		x := t.rng.Add(0x9e3779b97f4a7c15)
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		if x != 0 {
			return x
		}
	}
}

// Start opens a new trace's root span. When parent is valid the trace
// adopts its trace ID and records the remote span as the root's parent
// (the coordinator→shard join); otherwise a fresh trace ID is drawn.
// Returns nil — a no-op span — when the tracer is nil or disabled.
func (t *Tracer) Start(name string, parent SpanContext) *Span {
	if !t.Enabled() {
		return nil
	}
	// One allocation covers the typical query's span records (the query
	// lifecycle runs 7-8 spans); only traces with worker or per-shard
	// fan-out grow past it. Keeps the enabled-tracing overhead
	// alloc-light — GC assist charges the serving path per byte.
	td := &trace{
		tr:     t,
		start:  time.Now(),
		spans:  make([]SpanRecord, 0, 8),
		rawIDs: make([]rawSpanID, 0, 8),
	}
	if parent.Valid() {
		td.traceID = parent.TraceID
		td.remoteParent = parent.SpanID
	} else {
		td.traceID = t.newID()
	}
	s := td.newSpanLocked() // no lock needed: the trace is not shared yet
	s.td, s.id, s.parent, s.name, s.start = td, t.newID(), td.remoteParent, name, td.start
	td.rootID = s.id
	td.started = 1
	t.started.Add(1)
	t.tracesStarted.Add(1)
	return s
}

// SpanCounts returns the tracer-lifetime span accounting: spans
// started, spans ended, and ended-after-finalize drops. started==ended
// once traffic settles is the span-leak contract.
func (t *Tracer) SpanCounts() (started, ended, dropped int64) {
	if t == nil {
		return 0, 0, 0
	}
	return t.started.Load(), t.ended.Load(), t.dropped.Load()
}

// TraceCounts returns traces started, finished, and slow-logged.
func (t *Tracer) TraceCounts() (started, finished, slow int64) {
	if t == nil {
		return 0, 0, 0
	}
	return t.tracesStarted.Load(), t.tracesFinished.Load(), t.slowTraces.Load()
}

// trace is one in-flight trace's mutable state, shared by its spans.
type trace struct {
	tr           *Tracer
	traceID      uint64
	rootID       uint64
	remoteParent uint64
	start        time.Time

	mu       sync.Mutex
	started  int
	ended    int
	dropped  int
	finished bool
	spans    []SpanRecord
	// rawIDs holds each recorded span's numeric (id, parent) parallel to
	// spans; the hex strings are rendered once at finalize into a single
	// shared backing string (hex16 per span end was half the tracer's
	// allocations).
	rawIDs []rawSpanID
	// arena backs the typical query's Span structs with the trace's own
	// allocation instead of one per Child — the enabled-tracing overhead
	// is alloc-bound (GC assist charges the serving path per byte), so
	// the lifecycle's handful of spans should not be a handful of
	// mallocs. Slots are handed out under mu and never recycled; spans
	// past the arena fall back to the heap.
	arenaUsed int
	arena     [10]Span
}

// newSpanLocked hands out a span slot; the caller holds td.mu.
func (td *trace) newSpanLocked() *Span {
	if td.arenaUsed < len(td.arena) {
		s := &td.arena[td.arenaUsed]
		td.arenaUsed++
		return s
	}
	return &Span{}
}

// Span is one timed operation inside a trace. All methods are safe on
// a nil receiver (the disabled-tracing path). A span's attributes must
// be set by the goroutine that owns it, before End; children may be
// created and ended concurrently from other goroutines.
type Span struct {
	td     *trace
	id     uint64
	parent uint64
	name   string
	start  time.Time
	attrs  []Attr
	status string
	ended  atomic.Bool
}

// Attr is one span attribute.
type Attr struct {
	Key string
	Val string
}

// Child opens a sub-span. Returns nil when s is nil.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	td := s.td
	td.mu.Lock()
	if td.finished {
		// The trace already finalized (a late hedge loser, say): record
		// nothing, but keep the global accounting balanced.
		td.mu.Unlock()
		td.tr.started.Add(1)
		td.tr.ended.Add(1)
		td.tr.dropped.Add(1)
		return nil
	}
	td.started++
	c := td.newSpanLocked()
	td.mu.Unlock()
	c.td, c.id, c.parent, c.name, c.start = td, td.tr.newID(), s.id, name, time.Now()
	td.tr.started.Add(1)
	return c
}

// ChildTimed records an already-measured sub-span in one shot — used to
// graft aggregates measured elsewhere (per-worker busy time, stage
// timings) into the tree without instrumenting their hot loops.
func (s *Span) ChildTimed(name string, start time.Time, d time.Duration, attrs ...Attr) *Span {
	c := s.Child(name)
	if c == nil {
		return nil
	}
	c.start = start
	c.attrs = attrs
	c.endAt(d)
	// The returned span is already ended; it is only useful as a parent
	// for further retroactive children (per-worker spans under a
	// synthesized ctp span).
	return c
}

// Attr attaches a string attribute (last write wins on duplicate keys;
// the linear overwrite scan keeps AttrList's keys unique so it can
// marshal as a JSON object).
func (s *Span) Attr(key, val string) *Span {
	if s == nil {
		return nil
	}
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Val = val
			return s
		}
	}
	s.attrs = append(s.attrs, Attr{key, val})
	return s
}

// AttrInt attaches an integer attribute.
func (s *Span) AttrInt(key string, v int64) *Span {
	if s == nil {
		return nil
	}
	return s.Attr(key, strconv.FormatInt(v, 10))
}

// AttrBool attaches a boolean attribute.
func (s *Span) AttrBool(key string, v bool) *Span {
	if s == nil {
		return nil
	}
	return s.Attr(key, strconv.FormatBool(v))
}

// Status sets the span's terminal status ("" reads as ok).
func (s *Span) Status(st string) *Span {
	if s == nil {
		return nil
	}
	s.status = st
	return s
}

// Error sets an error status when err is non-nil.
func (s *Span) Error(err error) *Span {
	if s == nil || err == nil {
		return s
	}
	return s.Status("error: " + err.Error())
}

// Context returns the span's propagation context (zero when nil).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.td.traceID, SpanID: s.id}
}

// TraceID returns the hex trace ID ("" when nil) — the handle returned
// to clients for /debug/traces?id= lookups.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return hex16(s.td.traceID)
}

// End closes the span. Ending the root span finalizes the trace:
// the record enters the flight-recorder ring and, past the slow-query
// threshold, the structured slow log. Safe to call once per span from
// any goroutine; duplicate Ends are ignored.
func (s *Span) End() {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	s.endAt(time.Since(s.start))
}

func (s *Span) endAt(d time.Duration) {
	td := s.td
	td.tr.ended.Add(1)
	td.mu.Lock()
	td.ended++
	if td.finished {
		td.dropped++
		td.mu.Unlock()
		td.tr.dropped.Add(1)
		return
	}
	// IDs stay numeric here; the hex strings are rendered in one batch
	// at finalize.
	td.spans = append(td.spans, SpanRecord{
		Name:       s.name,
		StartUS:    s.start.Sub(td.start).Microseconds(),
		DurationUS: d.Microseconds(),
		Status:     s.status,
		Attrs:      AttrList(s.attrs),
	})
	td.rawIDs = append(td.rawIDs, rawSpanID{id: s.id, parent: s.parent})
	if s.id != td.rootID {
		td.mu.Unlock()
		return
	}
	td.finished = true
	rec := &Trace{
		Root:         s.name,
		Start:        td.start,
		DurationMS:   float64(d.Microseconds()) / 1000,
		SpansStarted: td.started,
		SpansEnded:   td.ended,
		Spans:        td.spans,
	}
	td.renderIDs(rec)
	td.mu.Unlock()
	tr := td.tr
	tr.tracesFinished.Add(1)
	if slow := tr.slowNS.Load(); slow > 0 && d >= time.Duration(slow) {
		rec.Slow = true
		tr.slowTraces.Add(1)
		if raw, err := json.Marshal(rec); err == nil {
			tr.logf("obs: slow query trace=%s dur=%s %s", rec.TraceID, d.Round(time.Microsecond), raw)
		}
	}
	tr.mu.Lock()
	if len(tr.ring) < cap(tr.ring) {
		tr.ring = append(tr.ring, rec)
	} else {
		tr.ring[tr.next] = rec
		tr.next = (tr.next + 1) % cap(tr.ring)
	}
	tr.mu.Unlock()
}

// rawSpanID is a recorded span's numeric identity, parallel to the
// trace's SpanRecord slice until finalize renders the hex forms.
type rawSpanID struct {
	id, parent uint64
}

// renderIDs stamps the hex span IDs onto rec and its records, all
// sliced out of one shared backing string: two allocations for the
// whole trace instead of two small strings per span. Caller holds
// td.mu.
func (td *trace) renderIDs(rec *Trace) {
	offs := make([]int, 0, 2+2*len(td.rawIDs))
	buf := make([]byte, 0, 16*(2+2*len(td.rawIDs)))
	push := func(v uint64) {
		if v == 0 {
			offs = append(offs, -1)
			return
		}
		offs = append(offs, len(buf))
		buf = appendHex16(buf, v)
	}
	push(td.traceID)
	push(td.remoteParent)
	for _, raw := range td.rawIDs {
		push(raw.id)
		push(raw.parent)
	}
	s := string(buf)
	get := func(i int) string {
		if offs[i] < 0 {
			return ""
		}
		return s[offs[i] : offs[i]+16]
	}
	rec.TraceID = get(0)
	rec.RemoteParent = get(1)
	for i := range rec.Spans {
		rec.Spans[i].SpanID = get(2 + 2*i)
		rec.Spans[i].ParentID = get(3 + 2*i)
	}
}

// Trace is one completed trace as kept by the flight recorder and
// served by /debug/traces.
type Trace struct {
	TraceID      string       `json:"trace_id"`
	Root         string       `json:"root"`
	RemoteParent string       `json:"remote_parent,omitempty"`
	Start        time.Time    `json:"start"`
	DurationMS   float64      `json:"duration_ms"`
	Slow         bool         `json:"slow,omitempty"`
	SpansStarted int          `json:"spans_started"`
	SpansEnded   int          `json:"spans_ended"`
	Spans        []SpanRecord `json:"spans"`
}

// SpanRecord is one finished span inside a Trace. Offsets are relative
// to the trace's start.
type SpanRecord struct {
	SpanID     string   `json:"span_id"`
	ParentID   string   `json:"parent_id,omitempty"`
	Name       string   `json:"name"`
	StartUS    int64    `json:"start_us"`
	DurationUS int64    `json:"duration_us"`
	Status     string   `json:"status,omitempty"`
	Attrs      AttrList `json:"attrs,omitempty"`
}

// AttrList is a span's attributes, kept as the write-ordered slice the
// span accumulated (Attr enforces key uniqueness at write time) but
// marshalled as the same JSON object a map would produce — retaining
// the slice spares the serving path a map allocation per span.
type AttrList []Attr

// Get returns the value for key ("" when absent).
func (l AttrList) Get(key string) string {
	for _, a := range l {
		if a.Key == key {
			return a.Val
		}
	}
	return ""
}

func (l AttrList) MarshalJSON() ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteByte('{')
	for i, a := range l {
		if i > 0 {
			buf.WriteByte(',')
		}
		k, err := json.Marshal(a.Key)
		if err != nil {
			return nil, err
		}
		v, err := json.Marshal(a.Val)
		if err != nil {
			return nil, err
		}
		buf.Write(k)
		buf.WriteByte(':')
		buf.Write(v)
	}
	buf.WriteByte('}')
	return buf.Bytes(), nil
}

func (l *AttrList) UnmarshalJSON(data []byte) error {
	var m map[string]string
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	*l = (*l)[:0]
	// Sorted for a deterministic round-trip (object order is lost).
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		*l = append(*l, Attr{Key: k, Val: m[k]})
	}
	return nil
}

// Traces returns the ring's completed traces, newest first.
func (t *Tracer) Traces() []*Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Trace, 0, len(t.ring))
	for i := len(t.ring) - 1; i >= 0; i-- {
		out = append(out, t.ring[(t.next+i)%len(t.ring)])
	}
	return out
}

// Trace looks a completed trace up by its hex ID (nil when evicted or
// unknown).
func (t *Tracer) Trace(id string) *Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, rec := range t.ring {
		if rec.TraceID == id {
			return rec
		}
	}
	return nil
}

// traceSummary is the /debug/traces listing entry.
type traceSummary struct {
	TraceID    string    `json:"trace_id"`
	Root       string    `json:"root"`
	Start      time.Time `json:"start"`
	DurationMS float64   `json:"duration_ms"`
	Spans      int       `json:"spans"`
	Slow       bool      `json:"slow,omitempty"`
	Status     string    `json:"status,omitempty"`
}

// ServeTraces is the GET /debug/traces handler: without parameters it
// lists the ring newest-first; ?id=<trace id> returns one full span
// tree (404 when evicted or unknown).
func (t *Tracer) ServeTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if id := r.URL.Query().Get("id"); id != "" {
		rec := t.Trace(id)
		if rec == nil {
			w.WriteHeader(http.StatusNotFound)
			enc.Encode(map[string]string{"error": "trace not found (evicted or unknown)", "trace_id": id})
			return
		}
		enc.Encode(rec)
		return
	}
	recs := t.Traces()
	sums := make([]traceSummary, 0, len(recs))
	for _, rec := range recs {
		sum := traceSummary{
			TraceID:    rec.TraceID,
			Root:       rec.Root,
			Start:      rec.Start,
			DurationMS: rec.DurationMS,
			Spans:      len(rec.Spans),
			Slow:       rec.Slow,
		}
		for _, sp := range rec.Spans {
			if sp.SpanID == rootSpanID(rec) {
				sum.Status = sp.Status
			}
		}
		sums = append(sums, sum)
	}
	started, ended, dropped := t.SpanCounts()
	enc.Encode(map[string]any{
		"enabled":       t.Enabled(),
		"traces":        sums,
		"spans_started": started,
		"spans_ended":   ended,
		"spans_dropped": dropped,
	})
}

// rootSpanID finds the record's root span (the one without a local
// parent, or whose parent is the remote one).
func rootSpanID(rec *Trace) string {
	for _, sp := range rec.Spans {
		if sp.ParentID == "" || sp.ParentID == rec.RemoteParent {
			return sp.SpanID
		}
	}
	return ""
}

// WellFormed checks a completed trace's structural invariants — every
// span's parent present in the tree (or the remote parent), a single
// root, and started == ended — returning "" or a description of the
// first violation. The chaos span-leak test sweeps the ring with it.
func (rec *Trace) WellFormed() string {
	if rec.SpansStarted != rec.SpansEnded {
		return "spans started != ended"
	}
	ids := make(map[string]bool, len(rec.Spans))
	for _, sp := range rec.Spans {
		if sp.SpanID == "" {
			return "span with empty id"
		}
		if ids[sp.SpanID] {
			return "duplicate span id " + sp.SpanID
		}
		ids[sp.SpanID] = true
	}
	roots := 0
	for _, sp := range rec.Spans {
		switch {
		case sp.ParentID == "" || sp.ParentID == rec.RemoteParent:
			roots++
		case !ids[sp.ParentID]:
			return "span " + sp.SpanID + " (" + sp.Name + ") has unknown parent " + sp.ParentID
		}
	}
	if roots != 1 {
		return "trace must have exactly one root span"
	}
	return ""
}
