package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// MetricFamily is one parsed family of the text exposition format.
type MetricFamily struct {
	Name    string
	Help    string
	Type    string // counter | gauge | histogram | untyped
	Samples []ParsedSample
}

// ParsedSample is one parsed sample line.
type ParsedSample struct {
	Name   string // full sample name, including _bucket/_sum/_count
	Labels map[string]string
	Value  float64
}

// Find returns the family with the given name, or nil.
func Find(fams []*MetricFamily, name string) *MetricFamily {
	for _, f := range fams {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Value returns the first sample matching name and the given label
// subset (every given label must match; extra labels on the sample are
// ignored).
func (f *MetricFamily) Value(name string, labels map[string]string) (float64, bool) {
	for _, s := range f.Samples {
		if s.Name != name {
			continue
		}
		ok := true
		for k, v := range labels {
			if s.Labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			return s.Value, true
		}
	}
	return 0, false
}

// ParseExposition parses and validates Prometheus text format as the
// registry emits it. Beyond syntax it enforces the invariants the
// tests and the scrape smoke rely on: every family has HELP and TYPE
// before its first sample, sample names belong to their family,
// counters are non-negative, and histogram buckets are cumulative,
// non-decreasing in le order, include le="+Inf", and agree with
// _count. It returns every family in emission order.
func ParseExposition(r io.Reader) ([]*MetricFamily, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var (
		fams  []*MetricFamily
		byN   = map[string]*MetricFamily{}
		cur   *MetricFamily
		helps = map[string]bool{}
		line  int
	)
	for sc.Scan() {
		line++
		text := strings.TrimRight(sc.Text(), " \t")
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.SplitN(text, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return nil, fmt.Errorf("line %d: malformed comment %q", line, text)
			}
			name := fields[2]
			switch fields[1] {
			case "HELP":
				if helps[name] {
					return nil, fmt.Errorf("line %d: duplicate HELP for %s", line, name)
				}
				helps[name] = true
				f := byN[name]
				if f == nil {
					f = &MetricFamily{Name: name}
					byN[name] = f
					fams = append(fams, f)
				}
				if len(fields) == 4 {
					f.Help = fields[3]
				}
				cur = f
			case "TYPE":
				if len(fields) != 4 {
					return nil, fmt.Errorf("line %d: TYPE needs a type", line)
				}
				typ := fields[3]
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown type %q for %s", line, typ, name)
				}
				f := byN[name]
				if f == nil {
					f = &MetricFamily{Name: name}
					byN[name] = f
					fams = append(fams, f)
				}
				if f.Type != "" {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %s", line, name)
				}
				if len(f.Samples) > 0 {
					return nil, fmt.Errorf("line %d: TYPE for %s after its samples", line, name)
				}
				f.Type = typ
				cur = f
			}
			continue
		}
		s, err := parseSampleLine(text)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		if cur == nil || !sampleBelongs(cur, s.Name) {
			return nil, fmt.Errorf("line %d: sample %s outside its family (HELP/TYPE must precede samples)", line, s.Name)
		}
		cur.Samples = append(cur.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, f := range fams {
		if err := validateFamily(f); err != nil {
			return nil, err
		}
	}
	return fams, nil
}

func sampleBelongs(f *MetricFamily, sample string) bool {
	if sample == f.Name {
		return true
	}
	if f.Type == "histogram" {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if sample == f.Name+suf {
				return true
			}
		}
	}
	return false
}

func parseSampleLine(text string) (ParsedSample, error) {
	s := ParsedSample{Labels: map[string]string{}}
	rest := text
	brace := strings.IndexByte(rest, '{')
	if brace >= 0 {
		s.Name = rest[:brace]
		end := strings.LastIndexByte(rest, '}')
		if end < brace {
			return s, fmt.Errorf("unterminated label set in %q", text)
		}
		var err error
		s.Labels, err = parseLabels(rest[brace+1 : end])
		if err != nil {
			return s, err
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		sp := strings.IndexAny(rest, " \t")
		if sp < 0 {
			return s, fmt.Errorf("no value in %q", text)
		}
		s.Name = rest[:sp]
		rest = strings.TrimSpace(rest[sp:])
	}
	if s.Name == "" {
		return s, fmt.Errorf("empty sample name in %q", text)
	}
	// A timestamp after the value is legal in the format; the registry
	// never emits one, but tolerate it.
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("expected value [timestamp] in %q", text)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return s, fmt.Errorf("bad value %q: %w", fields[0], err)
	}
	s.Value = v
	return s, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func parseLabels(s string) (map[string]string, error) {
	out := map[string]string{}
	i := 0
	for i < len(s) {
		// name
		j := i
		for j < len(s) && s[j] != '=' {
			j++
		}
		if j == len(s) {
			return nil, fmt.Errorf("label without value in %q", s)
		}
		name := strings.TrimSpace(s[i:j])
		if name == "" {
			return nil, fmt.Errorf("empty label name in %q", s)
		}
		i = j + 1
		if i >= len(s) || s[i] != '"' {
			return nil, fmt.Errorf("label value must be quoted in %q", s)
		}
		i++
		var b strings.Builder
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					b.WriteByte('\n')
				case '\\', '"':
					b.WriteByte(s[i])
				default:
					return nil, fmt.Errorf("bad escape \\%c in %q", s[i], s)
				}
			} else {
				b.WriteByte(s[i])
			}
			i++
		}
		if i >= len(s) {
			return nil, fmt.Errorf("unterminated label value in %q", s)
		}
		i++ // closing quote
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("duplicate label %s in %q", name, s)
		}
		out[name] = b.String()
		if i < len(s) {
			if s[i] != ',' {
				return nil, fmt.Errorf("expected ',' between labels in %q", s)
			}
			i++
		}
	}
	return out, nil
}

func validateFamily(f *MetricFamily) error {
	if f.Type == "" {
		return fmt.Errorf("family %s has no TYPE", f.Name)
	}
	switch f.Type {
	case "counter":
		for _, s := range f.Samples {
			if s.Value < 0 || math.IsNaN(s.Value) {
				return fmt.Errorf("counter %s has negative or NaN sample %v", f.Name, s.Value)
			}
		}
	case "histogram":
		return validateHistogram(f)
	}
	return nil
}

// validateHistogram groups _bucket/_sum/_count series by their
// non-le labels and checks cumulativity, the +Inf bucket, and the
// bucket/_count agreement per series.
func validateHistogram(f *MetricFamily) error {
	type series struct {
		les    []float64
		counts []float64
		count  float64
		hasCnt bool
	}
	bySeries := map[string]*series{}
	keyOf := func(labels map[string]string) string {
		keys := make([]string, 0, len(labels))
		for k := range labels {
			if k != "le" {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		var b strings.Builder
		for _, k := range keys {
			b.WriteString(k)
			b.WriteByte('=')
			b.WriteString(labels[k])
			b.WriteByte(';')
		}
		return b.String()
	}
	get := func(labels map[string]string) *series {
		k := keyOf(labels)
		sr := bySeries[k]
		if sr == nil {
			sr = &series{}
			bySeries[k] = sr
		}
		return sr
	}
	for _, s := range f.Samples {
		switch s.Name {
		case f.Name + "_bucket":
			leStr, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("histogram %s bucket without le label", f.Name)
			}
			le, err := parseValue(leStr)
			if err != nil {
				return fmt.Errorf("histogram %s: bad le %q", f.Name, leStr)
			}
			sr := get(s.Labels)
			sr.les = append(sr.les, le)
			sr.counts = append(sr.counts, s.Value)
		case f.Name + "_count":
			sr := get(s.Labels)
			sr.count = s.Value
			sr.hasCnt = true
		}
	}
	for k, sr := range bySeries {
		if len(sr.les) == 0 {
			return fmt.Errorf("histogram %s{%s} has no buckets", f.Name, k)
		}
		for i := 1; i < len(sr.les); i++ {
			if sr.les[i] <= sr.les[i-1] {
				return fmt.Errorf("histogram %s{%s}: le bounds not increasing", f.Name, k)
			}
			if sr.counts[i] < sr.counts[i-1] {
				return fmt.Errorf("histogram %s{%s}: buckets not cumulative at le=%v", f.Name, k, sr.les[i])
			}
		}
		last := len(sr.les) - 1
		if !math.IsInf(sr.les[last], 1) {
			return fmt.Errorf("histogram %s{%s}: missing le=\"+Inf\" bucket", f.Name, k)
		}
		if !sr.hasCnt {
			return fmt.Errorf("histogram %s{%s}: missing _count", f.Name, k)
		}
		if sr.counts[last] != sr.count {
			return fmt.Errorf("histogram %s{%s}: +Inf bucket %v != _count %v", f.Name, k, sr.counts[last], sr.count)
		}
	}
	return nil
}
