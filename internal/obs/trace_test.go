package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDisabledTracerHandsOutNilSpans(t *testing.T) {
	tr := NewTracer(TraceConfig{Disabled: true})
	s := tr.Start("query", SpanContext{})
	if s != nil {
		t.Fatalf("disabled tracer returned a live span")
	}
	// Every method must be a no-op on nil, including on a nil *Tracer.
	var nilT *Tracer
	if nilT.Enabled() {
		t.Fatal("nil tracer reads enabled")
	}
	if sp := nilT.Start("x", SpanContext{}); sp != nil {
		t.Fatal("nil tracer returned a span")
	}
	s.Attr("k", "v").AttrInt("n", 1).AttrBool("b", true).Status("ok").Error(nil)
	c := s.Child("child")
	c.End()
	s.ChildTimed("t", time.Now(), time.Millisecond)
	s.End()
	if s.TraceID() != "" || s.Context().Valid() {
		t.Fatal("nil span leaked an identity")
	}
	if got := FromContext(With(context.Background(), s)); got != nil {
		t.Fatal("nil span stored in context")
	}
}

func TestSpanTreeAndRing(t *testing.T) {
	tr := NewTracer(TraceConfig{RingSize: 4})
	root := tr.Start("query", SpanContext{})
	if root == nil {
		t.Fatal("enabled tracer returned nil span")
	}
	root.Attr("query", "MATCH ...")
	a := root.Child("parse")
	a.End()
	b := root.Child("engine")
	c := b.Child("bgp")
	c.AttrInt("rows", 7)
	c.End()
	b.ChildTimed("worker[0]", time.Now(), 3*time.Millisecond, Attr{"ops", "12"})
	b.End()
	id := root.TraceID()
	root.End()

	rec := tr.Trace(id)
	if rec == nil {
		t.Fatalf("trace %s not in ring", id)
	}
	if msg := rec.WellFormed(); msg != "" {
		t.Fatalf("trace not well-formed: %s", msg)
	}
	if len(rec.Spans) != 5 {
		t.Fatalf("got %d spans, want 5", len(rec.Spans))
	}
	if rec.SpansStarted != 5 || rec.SpansEnded != 5 {
		t.Fatalf("span accounting %d/%d, want 5/5", rec.SpansStarted, rec.SpansEnded)
	}
	byName := map[string]SpanRecord{}
	for _, sp := range rec.Spans {
		byName[sp.Name] = sp
	}
	if byName["bgp"].ParentID != byName["engine"].SpanID {
		t.Fatal("bgp span not parented under engine")
	}
	if byName["worker[0]"].Attrs.Get("ops") != "12" {
		t.Fatal("ChildTimed attrs lost")
	}
	started, ended, dropped := tr.SpanCounts()
	if started != 5 || ended != 5 || dropped != 0 {
		t.Fatalf("tracer counts %d/%d/%d, want 5/5/0", started, ended, dropped)
	}

	// Ring eviction: oldest traces fall out at capacity.
	for i := 0; i < 6; i++ {
		s := tr.Start(fmt.Sprintf("q%d", i), SpanContext{})
		s.End()
	}
	if tr.Trace(id) != nil {
		t.Fatal("evicted trace still resolvable")
	}
	if got := len(tr.Traces()); got != 4 {
		t.Fatalf("ring holds %d traces, want 4", got)
	}
	if tr.Traces()[0].Root != "q5" {
		t.Fatalf("ring not newest-first: got %q", tr.Traces()[0].Root)
	}
}

func TestLateSpanEndIsDroppedButCounted(t *testing.T) {
	tr := NewTracer(TraceConfig{})
	root := tr.Start("query", SpanContext{})
	hedge := root.Child("send")
	root.End()
	hedge.End() // a hedge loser finishing after the gather returned
	rec := tr.Trace(root.TraceID())
	if rec == nil {
		t.Fatal("trace missing")
	}
	if len(rec.Spans) != 1 {
		t.Fatalf("late span leaked into the record: %d spans", len(rec.Spans))
	}
	started, ended, dropped := tr.SpanCounts()
	if started != ended {
		t.Fatalf("span leak: started %d != ended %d", started, ended)
	}
	if dropped != 1 {
		t.Fatalf("dropped = %d, want 1", dropped)
	}
	// Children created after finalize behave the same way.
	if sp := root.Child("too-late"); sp != nil {
		t.Fatal("child created after trace finalize")
	}
	started, ended, _ = tr.SpanCounts()
	if started != ended {
		t.Fatalf("span leak after late child: %d != %d", started, ended)
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	sc := SpanContext{TraceID: 0xdeadbeefcafe, SpanID: 0x12345678}
	hdr := sc.Traceparent()
	if !strings.HasPrefix(hdr, "00-") || !strings.HasSuffix(hdr, "-01") {
		t.Fatalf("bad traceparent %q", hdr)
	}
	got, ok := ParseTraceparent(hdr)
	if !ok || got != sc {
		t.Fatalf("round trip failed: %q -> %+v ok=%v", hdr, got, ok)
	}
	for _, bad := range []string{
		"", "00-zz-xx-01", "00-0-0-01",
		"00-00000000000000000000000000000000-0000000000000000-01", // all-zero IDs
		"00-0000000000000000000000000000000g-0000000000000001-01",
	} {
		if _, ok := ParseTraceparent(bad); ok {
			t.Fatalf("accepted malformed traceparent %q", bad)
		}
	}
	// Adoption: a trace started from a remote parent keeps the trace ID
	// and records the remote span as the root's parent.
	tr := NewTracer(TraceConfig{})
	root := tr.Start("shard.query", sc)
	if root.Context().TraceID != sc.TraceID {
		t.Fatal("remote trace ID not adopted")
	}
	root.End()
	rec := tr.Trace(root.TraceID())
	if rec.RemoteParent != hex16(sc.SpanID) {
		t.Fatalf("remote parent %q, want %q", rec.RemoteParent, hex16(sc.SpanID))
	}
	if msg := rec.WellFormed(); msg != "" {
		t.Fatalf("adopted trace not well-formed: %s", msg)
	}
}

func TestSlowQueryLog(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	tr := NewTracer(TraceConfig{
		SlowQuery: time.Microsecond,
		Logf: func(format string, args ...any) {
			mu.Lock()
			lines = append(lines, fmt.Sprintf(format, args...))
			mu.Unlock()
		},
	})
	s := tr.Start("query", SpanContext{})
	time.Sleep(2 * time.Millisecond)
	s.End()
	fast := tr.Start("query", SpanContext{})
	tr.SetSlowQuery(time.Hour)
	fast.End()
	mu.Lock()
	defer mu.Unlock()
	if len(lines) != 1 {
		t.Fatalf("slow log wrote %d lines, want 1", len(lines))
	}
	// The logged payload embeds the full span tree as JSON.
	i := strings.Index(lines[0], "{")
	if i < 0 {
		t.Fatalf("no JSON in slow log line %q", lines[0])
	}
	var rec Trace
	if err := json.Unmarshal([]byte(lines[0][i:]), &rec); err != nil {
		t.Fatalf("slow log JSON invalid: %v", err)
	}
	if !rec.Slow || rec.Root != "query" {
		t.Fatalf("bad slow record %+v", rec)
	}
	if _, _, slow := tr.TraceCounts(); slow != 1 {
		t.Fatalf("slow trace count %d, want 1", slow)
	}
}

func TestServeTraces(t *testing.T) {
	tr := NewTracer(TraceConfig{})
	root := tr.Start("query", SpanContext{})
	root.Child("parse").End()
	id := root.TraceID()
	root.End()

	rr := httptest.NewRecorder()
	tr.ServeTraces(rr, httptest.NewRequest("GET", "/debug/traces", nil))
	var listing struct {
		Enabled bool `json:"enabled"`
		Traces  []struct {
			TraceID string `json:"trace_id"`
			Spans   int    `json:"spans"`
		} `json:"traces"`
		SpansStarted int64 `json:"spans_started"`
		SpansEnded   int64 `json:"spans_ended"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &listing); err != nil {
		t.Fatalf("listing not JSON: %v", err)
	}
	if !listing.Enabled || len(listing.Traces) != 1 || listing.Traces[0].TraceID != id {
		t.Fatalf("bad listing %+v", listing)
	}
	if listing.SpansStarted != listing.SpansEnded {
		t.Fatal("listing reports a span leak")
	}

	rr = httptest.NewRecorder()
	tr.ServeTraces(rr, httptest.NewRequest("GET", "/debug/traces?id="+id, nil))
	var rec Trace
	if err := json.Unmarshal(rr.Body.Bytes(), &rec); err != nil {
		t.Fatalf("trace lookup not JSON: %v", err)
	}
	if rec.TraceID != id || len(rec.Spans) != 2 {
		t.Fatalf("bad trace lookup %+v", rec)
	}

	rr = httptest.NewRecorder()
	tr.ServeTraces(rr, httptest.NewRequest("GET", "/debug/traces?id=ffffffffffffffff", nil))
	if rr.Code != 404 {
		t.Fatalf("unknown id returned %d, want 404", rr.Code)
	}
	rr = httptest.NewRecorder()
	tr.ServeTraces(rr, httptest.NewRequest("POST", "/debug/traces", nil))
	if rr.Code != 405 {
		t.Fatalf("POST returned %d, want 405", rr.Code)
	}
}

func TestConcurrentChildren(t *testing.T) {
	tr := NewTracer(TraceConfig{})
	root := tr.Start("gather", SpanContext{})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := root.Child(fmt.Sprintf("send[%d]", i))
			s.AttrInt("attempt", int64(i))
			s.End()
		}(i)
	}
	wg.Wait()
	root.End()
	rec := tr.Trace(root.TraceID())
	if msg := rec.WellFormed(); msg != "" {
		t.Fatalf("concurrent trace not well-formed: %s", msg)
	}
	if len(rec.Spans) != 17 {
		t.Fatalf("got %d spans, want 17", len(rec.Spans))
	}
}
