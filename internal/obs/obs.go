// Package obs is the engine's zero-dependency observability layer:
// lightweight spans with a flight-recorder ring (trace.go), hand-rolled
// Prometheus-text-format metrics (metrics.go), and a strict exposition
// parser used by the tests and the scrape smoke (expfmt.go).
//
// The package follows the same discipline as internal/fault: when
// tracing is disabled the entire span API costs one atomic load —
// Tracer.Start returns a nil *Span and every method on a nil span is a
// no-op — so instrumentation can stay threaded through the hot serving
// path unconditionally. Metrics instruments are plain atomics and are
// always on; per-scrape families derived from server snapshots are
// produced by Collect callbacks at scrape time only.
//
// Cross-process propagation uses a `traceparent`-style header
// (00-<trace id>-<span id>-01): the cluster coordinator stamps each
// shard send with the send span's context, the shard adopts the trace
// ID and parents its spans under the coordinator's send span, and both
// sides keep the trace in their own ring — joined by the shared ID.
package obs

import "context"

type ctxKey struct{}

// With returns a context carrying the span, for handing the active
// span down the call stack (facade → engine → workers) without
// widening any signatures. A nil span returns ctx unchanged.
func With(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the active span, or nil when the context carries
// none (tracing disabled, or an uninstrumented caller).
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}
