package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"testing"
)

func scrape(t *testing.T, r *Registry) []*MetricFamily {
	t.Helper()
	var b strings.Builder
	if err := r.Write(&b); err != nil {
		t.Fatalf("write: %v", err)
	}
	fams, err := ParseExposition(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, b.String())
	}
	return fams
}

// TestExpositionRoundTrip is the exposition-format contract: every kind
// of family the registry emits must round-trip through the strict
// parser — HELP/TYPE lines present, counters monotone, histogram
// buckets cumulative with le="+Inf" agreeing with _count.
func TestExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("ctp_test_total", "A test counter.")
	g := r.NewGauge("ctp_test_depth", "A test gauge.")
	cv := r.NewCounterVec("ctp_test_responses_total", "Labeled counter.", "class", "status")
	h := r.NewHistogram("ctp_test_duration_seconds", "A histogram.", nil)
	hv := r.NewHistogramVec("ctp_test_stage_seconds", "Labeled histogram.", []float64{0.1, 1}, "stage")

	c.Add(3)
	g.Set(-2.5)
	cv.With("cheap", "ok").Inc()
	cv.With("cheap", "ok").Inc()
	cv.With("analytical", `we"ird\label`+"\n").Add(5)
	for _, v := range []float64{0.0001, 0.003, 0.003, 0.7, 99} {
		h.Observe(v)
	}
	hv.With("parse").Observe(0.05)
	hv.With("join").Observe(5)

	fams := scrape(t, r)
	for _, name := range []string{
		"ctp_test_total", "ctp_test_depth", "ctp_test_responses_total",
		"ctp_test_duration_seconds", "ctp_test_stage_seconds",
	} {
		f := Find(fams, name)
		if f == nil {
			t.Fatalf("family %s missing", name)
		}
		if f.Help == "" || f.Type == "" {
			t.Fatalf("family %s missing HELP or TYPE", name)
		}
	}
	if v, ok := Find(fams, "ctp_test_total").Value("ctp_test_total", nil); !ok || v != 3 {
		t.Fatalf("counter = %v ok=%v, want 3", v, ok)
	}
	if v, _ := Find(fams, "ctp_test_depth").Value("ctp_test_depth", nil); v != -2.5 {
		t.Fatalf("gauge = %v, want -2.5", v)
	}
	cvf := Find(fams, "ctp_test_responses_total")
	if v, _ := cvf.Value("ctp_test_responses_total", map[string]string{"class": "cheap", "status": "ok"}); v != 2 {
		t.Fatalf("vec cell = %v, want 2", v)
	}
	if v, _ := cvf.Value("ctp_test_responses_total", map[string]string{"class": "analytical"}); v != 5 {
		t.Fatal("escaped label value lost its sample")
	}
	hf := Find(fams, "ctp_test_duration_seconds")
	if v, _ := hf.Value("ctp_test_duration_seconds_count", nil); v != 5 {
		t.Fatalf("_count = %v, want 5", v)
	}
	if v, _ := hf.Value("ctp_test_duration_seconds_bucket", map[string]string{"le": "+Inf"}); v != 5 {
		t.Fatalf("+Inf bucket = %v, want 5", v)
	}
	if v, _ := hf.Value("ctp_test_duration_seconds_bucket", map[string]string{"le": "0.005"}); v != 3 {
		t.Fatalf("0.005 bucket = %v, want 3 (cumulative)", v)
	}
	sum, _ := hf.Value("ctp_test_duration_seconds_sum", nil)
	if math.Abs(sum-99.7061) > 1e-9 {
		t.Fatalf("_sum = %v", sum)
	}
}

// TestCountersMonotone scrapes twice around increments and asserts no
// sample ever decreases — the monotonicity the parser can't see from a
// single scrape.
func TestCountersMonotone(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("ctp_mono_total", "x")
	h := r.NewHistogram("ctp_mono_seconds", "x", nil)
	before := scrape(t, r)
	c.Add(7)
	h.Observe(0.01)
	h.Observe(3)
	after := scrape(t, r)
	for _, f := range before {
		g := Find(after, f.Name)
		for _, s := range f.Samples {
			v2, ok := g.Value(s.Name, s.Labels)
			if !ok {
				t.Fatalf("sample %s vanished between scrapes", s.Name)
			}
			if v2 < s.Value {
				t.Fatalf("%s went backwards: %v -> %v", s.Name, s.Value, v2)
			}
		}
	}
}

func TestParserRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"sample before TYPE":  "foo 1\n",
		"missing +Inf bucket": "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"non-cumulative":      "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"+Inf != count":       "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",
		"negative counter":    "# HELP c x\n# TYPE c counter\nc -1\n",
		"unknown type":        "# HELP c x\n# TYPE c widget\nc 1\n",
		"duplicate TYPE":      "# HELP c x\n# TYPE c counter\n# TYPE c counter\nc 1\n",
		"foreign sample":      "# HELP c x\n# TYPE c counter\nother 1\n",
		"bad labels":          "# HELP c x\n# TYPE c counter\nc{a=b} 1\n",
		"no value":            "# HELP c x\n# TYPE c counter\nc\n",
	}
	for name, in := range cases {
		if _, err := ParseExposition(strings.NewReader(in)); err == nil {
			t.Errorf("%s: parser accepted %q", name, in)
		}
	}
}

func TestServeMetrics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("ctp_http_total", "x").Inc()
	rr := httptest.NewRecorder()
	r.ServeMetrics(rr, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rr.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	if _, err := ParseExposition(rr.Body); err != nil {
		t.Fatalf("served metrics do not parse: %v", err)
	}
	rr = httptest.NewRecorder()
	r.ServeMetrics(rr, httptest.NewRequest("POST", "/metrics", nil))
	if rr.Code != 405 {
		t.Fatalf("POST returned %d, want 405", rr.Code)
	}
}

func TestFormatFloat(t *testing.T) {
	for v, want := range map[float64]string{
		0:      "0",
		42:     "42",
		-3:     "-3",
		2.5:    "2.5",
		0.0005: "0.0005",
	} {
		if got := formatFloat(v); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", v, got, want)
		}
	}
}
