// Package load is the traffic-realism harness behind cmd/ctpload: it
// replays configurable workload mixes against a running ctpserve
// endpoint — open-loop, so arrival rate does not slow down when the
// server does, exactly the regime that exposes queueing collapse — and
// reports SLO-grade metrics: p50/p95/p99 latency per scheduling class,
// throughput, shed/error/timeout counts, and cache-hit ratio.
//
// Three canonical mixes model the serving reality the admission layer
// (internal/admission) defends against: a cache-friendly mix of
// Zipf-skewed repeated queries, a heavy-tail analytical mix of
// multi-member enumerations in the spirit of the paper's Figure 11
// grid (member count m drives the 2^(m-1) provenance explosion), and a
// burst plan that floods a steady cheap baseline with an analytical
// spike. The suite (suite.go) runs them against in-process servers
// with admission on and off and writes the BENCH_pr6.json trajectory.
package load

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Request is one generated query posting.
type Request struct {
	// Query is the EQL text.
	Query string
	// TimeoutMS is the per-request budget sent to the server.
	TimeoutMS int64
	// Class is the generator's intent ("cheap" or "analytical") — used to
	// bucket latencies consistently across servers with and without
	// admission control (the server's own classification may differ once
	// its estimator has learned).
	Class string
}

// Mix generates requests for one traffic pattern. Next must be safe to
// call from a single goroutine with the replay's rng.
type Mix struct {
	Name string
	Next func(rng *rand.Rand) Request
}

// Phase is one open-loop interval of a plan: requests arrive at RPS
// drawn from Mix for Duration, regardless of how the server keeps up.
type Phase struct {
	Name     string
	Duration time.Duration
	RPS      float64
	Mix      *Mix
}

// Plan is a named sequence of phases replayed back to back.
type Plan struct {
	Name   string
	Phases []Phase
}

// Scale returns a copy of the plan with every phase duration multiplied
// by f — the knob that turns a benchmark plan into a CI smoke.
func (p Plan) Scale(f float64) Plan {
	out := Plan{Name: p.Name}
	for _, ph := range p.Phases {
		ph.Duration = time.Duration(float64(ph.Duration) * f)
		out.Phases = append(out.Phases, ph)
	}
	return out
}

// CheapQuery renders a tightly bounded two-member CONNECT between two
// generated-graph node labels — the workhorse interactive query.
func CheapQuery(a, b int) Request {
	return Request{
		Query:     fmt.Sprintf("SELECT ?w WHERE { CONNECT n%d n%d AS ?w MAX 4 LIMIT 1 . }", a, b),
		TimeoutMS: 2000,
		Class:     "cheap",
	}
}

// AnalyticalQuery renders an m-member enumeration (m in 3..4) with the
// given search budget — the Figure 11 heavy tail, where member count
// drives the 2^(m-1) provenance explosion and the budget bounds how
// much CPU each request burns.
func AnalyticalQuery(members []int, budgetMS int64) Request {
	q := "SELECT ?w WHERE { CONNECT"
	for _, n := range members {
		q += fmt.Sprintf(" n%d", n)
	}
	q += " AS ?w MAX 14 . }"
	return Request{Query: q, TimeoutMS: budgetMS, Class: "analytical"}
}

// CacheHeavyMix models an interactive dashboard: 90% of requests draw
// from a hot set of hotSize distinct cheap queries under Zipf skew, the
// rest are cold random pairs. On a cache-enabled server most of this
// traffic is hits.
func CacheHeavyMix(nodes, hotSize int, seed int64) *Mix {
	setup := rand.New(rand.NewSource(seed))
	hot := make([]Request, hotSize)
	for i := range hot {
		hot[i] = CheapQuery(1+setup.Intn(nodes), 1+setup.Intn(nodes))
	}
	// Zipf over the hot set: rank 0 dominates, the tail is long. The
	// Zipf source must be the replay rng for determinism per seed.
	return &Mix{
		Name: "cache-heavy",
		Next: func(rng *rand.Rand) Request {
			if rng.Float64() < 0.10 {
				return CheapQuery(1+rng.Intn(nodes), 1+rng.Intn(nodes))
			}
			z := rand.NewZipf(rng, 1.3, 1, uint64(hotSize-1))
			return hot[z.Uint64()]
		},
	}
}

// AnalyticalHeavyMix models exploratory analytics: 70% multi-member
// enumerations with heavy-tail budgets, 30% cheap interactive queries
// caught in the same traffic.
func AnalyticalHeavyMix(nodes int) *Mix {
	budgets := []int64{100, 200, 200, 400}
	return &Mix{
		Name: "analytical-heavy",
		Next: func(rng *rand.Rand) Request {
			if rng.Float64() < 0.30 {
				return CheapQuery(1+rng.Intn(nodes), 1+rng.Intn(nodes))
			}
			m := 3 + rng.Intn(2)
			members := make([]int, m)
			for i := range members {
				members[i] = 1 + rng.Intn(nodes)
			}
			return AnalyticalQuery(members, budgets[rng.Intn(len(budgets))])
		},
	}
}

// WeightedMix draws from mixes with the given weights (parallel
// slices; weights need not sum to 1).
func WeightedMix(name string, mixes []*Mix, weights []float64) *Mix {
	var total float64
	for _, w := range weights {
		total += w
	}
	return &Mix{
		Name: name,
		Next: func(rng *rand.Rand) Request {
			x := rng.Float64() * total
			for i, w := range weights {
				if x < w || i == len(mixes)-1 {
					return mixes[i].Next(rng)
				}
				x -= w
			}
			return mixes[len(mixes)-1].Next(rng)
		},
	}
}

// BurstPlan is the open-loop burst scenario: a steady cheap baseline,
// then an analytical flood on top of it, then the baseline again — the
// recovery phase shows whether the server drains or stays wedged.
func BurstPlan(nodes int, seed int64, baseRPS, burstRPS float64, phase time.Duration) Plan {
	cheap := CacheHeavyMix(nodes, 32, seed)
	flood := WeightedMix("burst-flood", []*Mix{cheap, AnalyticalHeavyMix(nodes)}, []float64{0.3, 0.7})
	return Plan{
		Name: "burst",
		Phases: []Phase{
			{Name: "baseline", Duration: phase, RPS: baseRPS, Mix: cheap},
			{Name: "burst", Duration: phase, RPS: burstRPS, Mix: flood},
			{Name: "recovery", Duration: phase, RPS: baseRPS, Mix: cheap},
		},
	}
}

// SteadyPlan wraps one mix in a single constant-rate phase.
func SteadyPlan(mix *Mix, rps float64, d time.Duration) Plan {
	return Plan{Name: mix.Name, Phases: []Phase{{Name: mix.Name, Duration: d, RPS: rps, Mix: mix}}}
}

// sample is one completed request observation.
type sample struct {
	latencyMS float64
	code      int
	class     string
	cacheHit  bool
	bypass    bool
	timedOut  bool
}

// ClassSummary is the latency distribution of one scheduling class.
type ClassSummary struct {
	Count  int64   `json:"count"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MeanMS float64 `json:"mean_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// Result is one plan replay's SLO report. Latency summaries cover only
// requests that were answered 200 — a shed answered in a millisecond
// must not flatter the latency numbers of work the server refused.
type Result struct {
	Plan          string  `json:"plan"`
	DurationS     float64 `json:"duration_s"`
	Requests      int64   `json:"requests"`
	OK            int64   `json:"ok"`
	Shed          int64   `json:"shed"`
	Errors        int64   `json:"errors"`
	Timeouts      int64   `json:"timeouts"`
	CacheHits     int64   `json:"cache_hits"`
	CacheBypasses int64   `json:"cache_bypasses"`
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	ThroughputRPS float64 `json:"throughput_rps"`

	Overall    ClassSummary `json:"overall"`
	Cheap      ClassSummary `json:"cheap"`
	Analytical ClassSummary `json:"analytical"`
}

// replayResponse is the slice of the server's response the harness
// reads.
type replayResponse struct {
	TimedOut bool `json:"timed_out"`
	Cache    *struct {
		Hit       bool `json:"hit"`
		Coalesced bool `json:"coalesced"`
	} `json:"cache"`
	Admission *struct {
		CacheBypass bool `json:"cache_bypass"`
	} `json:"admission"`
}

// Replay runs the plan against the server at url, open-loop: a request
// launches at every arrival tick whether or not earlier ones came back.
// The rng drives every generator draw, so a (plan, seed) pair replays
// the identical query sequence against any server.
func Replay(ctx context.Context, url string, plan Plan, seed int64) (*Result, error) {
	client := &http.Client{Timeout: 60 * time.Second}
	rng := rand.New(rand.NewSource(seed))

	var mu sync.Mutex
	var samples []sample
	var wg sync.WaitGroup
	start := time.Now()

	for _, ph := range plan.Phases {
		if ph.RPS <= 0 || ph.Duration <= 0 {
			continue
		}
		interval := time.Duration(float64(time.Second) / ph.RPS)
		ticker := time.NewTicker(interval)
		phaseEnd := time.After(ph.Duration)
	phase:
		for {
			select {
			case <-ctx.Done():
				ticker.Stop()
				wg.Wait()
				return nil, ctx.Err()
			case <-phaseEnd:
				break phase
			case <-ticker.C:
				req := ph.Mix.Next(rng)
				wg.Add(1)
				go func() {
					defer wg.Done()
					s := post(client, url, req)
					mu.Lock()
					samples = append(samples, s)
					mu.Unlock()
				}()
			}
		}
		ticker.Stop()
	}
	wg.Wait()
	return summarize(plan.Name, samples, time.Since(start)), nil
}

// post issues one request and observes it.
func post(client *http.Client, url string, req Request) sample {
	body, _ := json.Marshal(map[string]any{
		"query":      req.Query,
		"timeout_ms": req.TimeoutMS,
		"omit_trees": true,
		"max_rows":   1,
	})
	t0 := time.Now()
	resp, err := client.Post(url+"/query", "application/json", bytes.NewReader(body))
	s := sample{class: req.Class}
	if err != nil {
		s.code = -1
		s.latencyMS = float64(time.Since(t0)) / float64(time.Millisecond)
		return s
	}
	defer resp.Body.Close()
	s.code = resp.StatusCode
	var out replayResponse
	if resp.StatusCode == http.StatusOK {
		if derr := json.NewDecoder(resp.Body).Decode(&out); derr == nil {
			s.timedOut = out.TimedOut
			if out.Cache != nil {
				s.cacheHit = out.Cache.Hit
			}
			if out.Admission != nil {
				s.bypass = out.Admission.CacheBypass
			}
		}
	}
	s.latencyMS = float64(time.Since(t0)) / float64(time.Millisecond)
	return s
}

// summarize folds samples into the Result.
func summarize(plan string, samples []sample, elapsed time.Duration) *Result {
	r := &Result{Plan: plan, DurationS: elapsed.Seconds(), Requests: int64(len(samples))}
	var all, cheap, analytical []float64
	for _, s := range samples {
		switch {
		case s.code == http.StatusOK:
			r.OK++
			if s.timedOut {
				r.Timeouts++
			}
			if s.cacheHit {
				r.CacheHits++
			}
			if s.bypass {
				r.CacheBypasses++
			}
			all = append(all, s.latencyMS)
			if s.class == "analytical" {
				analytical = append(analytical, s.latencyMS)
			} else {
				cheap = append(cheap, s.latencyMS)
			}
		case s.code == http.StatusTooManyRequests:
			r.Shed++
		default:
			r.Errors++
		}
	}
	if r.OK > 0 {
		r.CacheHitRatio = float64(r.CacheHits) / float64(r.OK)
	}
	if elapsed > 0 {
		r.ThroughputRPS = float64(r.OK) / elapsed.Seconds()
	}
	r.Overall = summarizeLatencies(all)
	r.Cheap = summarizeLatencies(cheap)
	r.Analytical = summarizeLatencies(analytical)
	return r
}

// summarizeLatencies computes the percentile summary of one bucket.
func summarizeLatencies(ms []float64) ClassSummary {
	s := ClassSummary{Count: int64(len(ms))}
	if len(ms) == 0 {
		return s
	}
	sort.Float64s(ms)
	var sum float64
	for _, v := range ms {
		sum += v
	}
	s.MeanMS = sum / float64(len(ms))
	s.MaxMS = ms[len(ms)-1]
	s.P50MS = percentile(ms, 0.50)
	s.P95MS = percentile(ms, 0.95)
	s.P99MS = percentile(ms, 0.99)
	return s
}

// percentile reads q from an ascending-sorted slice (nearest-rank).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
