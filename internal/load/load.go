// Package load is the traffic-realism harness behind cmd/ctpload: it
// replays configurable workload mixes against a running ctpserve
// endpoint — open-loop, so arrival rate does not slow down when the
// server does, exactly the regime that exposes queueing collapse — and
// reports SLO-grade metrics: p50/p95/p99 latency per scheduling class,
// throughput, shed/error/timeout counts, and cache-hit ratio.
//
// Three canonical mixes model the serving reality the admission layer
// (internal/admission) defends against: a cache-friendly mix of
// Zipf-skewed repeated queries, a heavy-tail analytical mix of
// multi-member enumerations in the spirit of the paper's Figure 11
// grid (member count m drives the 2^(m-1) provenance explosion), and a
// burst plan that floods a steady cheap baseline with an analytical
// spike. The suite (suite.go) runs them against in-process servers
// with admission on and off and writes the BENCH_pr6.json trajectory.
package load

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ctpquery/internal/obs"
)

// Request is one generated query posting.
type Request struct {
	// Query is the EQL text.
	Query string
	// TimeoutMS is the per-request budget sent to the server.
	TimeoutMS int64
	// Class is the generator's intent ("cheap" or "analytical") — used to
	// bucket latencies consistently across servers with and without
	// admission control (the server's own classification may differ once
	// its estimator has learned).
	Class string
}

// Mix generates requests for one traffic pattern. Next must be safe to
// call from a single goroutine with the replay's rng.
type Mix struct {
	Name string
	Next func(rng *rand.Rand) Request
}

// Phase is one open-loop interval of a plan: requests arrive at RPS
// drawn from Mix for Duration, regardless of how the server keeps up.
type Phase struct {
	Name     string
	Duration time.Duration
	RPS      float64
	Mix      *Mix
}

// Plan is a named sequence of phases replayed back to back.
type Plan struct {
	Name   string
	Phases []Phase
}

// Scale returns a copy of the plan with every phase duration multiplied
// by f — the knob that turns a benchmark plan into a CI smoke.
func (p Plan) Scale(f float64) Plan {
	out := Plan{Name: p.Name}
	for _, ph := range p.Phases {
		ph.Duration = time.Duration(float64(ph.Duration) * f)
		out.Phases = append(out.Phases, ph)
	}
	return out
}

// CheapQuery renders a tightly bounded two-member CONNECT between two
// generated-graph node labels — the workhorse interactive query.
func CheapQuery(a, b int) Request {
	return Request{
		Query:     fmt.Sprintf("SELECT ?w WHERE { CONNECT n%d n%d AS ?w MAX 4 LIMIT 1 . }", a, b),
		TimeoutMS: 2000,
		Class:     "cheap",
	}
}

// AnalyticalQuery renders an m-member enumeration (m in 3..4) with the
// given search budget — the Figure 11 heavy tail, where member count
// drives the 2^(m-1) provenance explosion and the budget bounds how
// much CPU each request burns.
func AnalyticalQuery(members []int, budgetMS int64) Request {
	q := "SELECT ?w WHERE { CONNECT"
	for _, n := range members {
		q += fmt.Sprintf(" n%d", n)
	}
	q += " AS ?w MAX 14 . }"
	return Request{Query: q, TimeoutMS: budgetMS, Class: "analytical"}
}

// CacheHeavyMix models an interactive dashboard: 90% of requests draw
// from a hot set of hotSize distinct cheap queries under Zipf skew, the
// rest are cold random pairs. On a cache-enabled server most of this
// traffic is hits.
func CacheHeavyMix(nodes, hotSize int, seed int64) *Mix {
	setup := rand.New(rand.NewSource(seed))
	hot := make([]Request, hotSize)
	for i := range hot {
		hot[i] = CheapQuery(1+setup.Intn(nodes), 1+setup.Intn(nodes))
	}
	// Zipf over the hot set: rank 0 dominates, the tail is long. The
	// Zipf source must be the replay rng for determinism per seed.
	return &Mix{
		Name: "cache-heavy",
		Next: func(rng *rand.Rand) Request {
			if rng.Float64() < 0.10 {
				return CheapQuery(1+rng.Intn(nodes), 1+rng.Intn(nodes))
			}
			z := rand.NewZipf(rng, 1.3, 1, uint64(hotSize-1))
			return hot[z.Uint64()]
		},
	}
}

// AnalyticalHeavyMix models exploratory analytics: 70% multi-member
// enumerations with heavy-tail budgets, 30% cheap interactive queries
// caught in the same traffic.
func AnalyticalHeavyMix(nodes int) *Mix {
	budgets := []int64{100, 200, 200, 400}
	return &Mix{
		Name: "analytical-heavy",
		Next: func(rng *rand.Rand) Request {
			if rng.Float64() < 0.30 {
				return CheapQuery(1+rng.Intn(nodes), 1+rng.Intn(nodes))
			}
			m := 3 + rng.Intn(2)
			members := make([]int, m)
			for i := range members {
				members[i] = 1 + rng.Intn(nodes)
			}
			return AnalyticalQuery(members, budgets[rng.Intn(len(budgets))])
		},
	}
}

// WeightedMix draws from mixes with the given weights (parallel
// slices; weights need not sum to 1).
func WeightedMix(name string, mixes []*Mix, weights []float64) *Mix {
	var total float64
	for _, w := range weights {
		total += w
	}
	return &Mix{
		Name: name,
		Next: func(rng *rand.Rand) Request {
			x := rng.Float64() * total
			for i, w := range weights {
				if x < w || i == len(mixes)-1 {
					return mixes[i].Next(rng)
				}
				x -= w
			}
			return mixes[len(mixes)-1].Next(rng)
		},
	}
}

// BurstPlan is the open-loop burst scenario: a steady cheap baseline,
// then an analytical flood on top of it, then the baseline again — the
// recovery phase shows whether the server drains or stays wedged.
func BurstPlan(nodes int, seed int64, baseRPS, burstRPS float64, phase time.Duration) Plan {
	cheap := CacheHeavyMix(nodes, 32, seed)
	flood := WeightedMix("burst-flood", []*Mix{cheap, AnalyticalHeavyMix(nodes)}, []float64{0.3, 0.7})
	return Plan{
		Name: "burst",
		Phases: []Phase{
			{Name: "baseline", Duration: phase, RPS: baseRPS, Mix: cheap},
			{Name: "burst", Duration: phase, RPS: burstRPS, Mix: flood},
			{Name: "recovery", Duration: phase, RPS: baseRPS, Mix: cheap},
		},
	}
}

// SteadyPlan wraps one mix in a single constant-rate phase.
func SteadyPlan(mix *Mix, rps float64, d time.Duration) Plan {
	return Plan{Name: mix.Name, Phases: []Phase{{Name: mix.Name, Duration: d, RPS: rps, Mix: mix}}}
}

// RetryPolicy makes the client resilient to refusals: a 429 (admission
// shed) or 503 (draining / hard-degraded) is retried after honoring the
// server's Retry-After, under capped exponential backoff with jitter,
// against a per-class retry budget so a saturated server is not
// hammered into deeper saturation by its own clients. Both refusal
// classes draw from the same budget. The zero value disables retries
// (every refusal is terminal), which is what the benchmark suite uses
// so admission-on/off runs stay comparable.
type RetryPolicy struct {
	// MaxRetries is the per-request retry cap (0 = no retries).
	MaxRetries int
	// Budget caps total retries across the whole replay per scheduling
	// class (0 = unlimited while MaxRetries > 0). Once a class's budget is
	// dry, its remaining 429s and 503s are terminal.
	Budget int64
	// BaseBackoff seeds the exponential backoff (default 100ms); the wait
	// before retry n is max(Retry-After, BaseBackoff<<n), capped at
	// MaxBackoff, plus up to 25% jitter.
	BaseBackoff time.Duration
	// MaxBackoff caps any single wait (default 5s).
	MaxBackoff time.Duration
}

func (p RetryPolicy) enabled() bool { return p.MaxRetries > 0 }

func (p RetryPolicy) base() time.Duration {
	if p.BaseBackoff > 0 {
		return p.BaseBackoff
	}
	return 100 * time.Millisecond
}

func (p RetryPolicy) cap() time.Duration {
	if p.MaxBackoff > 0 {
		return p.MaxBackoff
	}
	return 5 * time.Second
}

// retryBudgets is the replay-wide per-class retry allowance.
type retryBudgets struct {
	cheap      atomic.Int64
	analytical atomic.Int64
}

// take consumes one retry from the class budget; false means dry.
func (b *retryBudgets) take(class string) bool {
	c := &b.cheap
	if class == "analytical" {
		c = &b.analytical
	}
	for {
		cur := c.Load()
		if cur <= 0 {
			return false
		}
		if c.CompareAndSwap(cur, cur-1) {
			return true
		}
	}
}

// sample is one completed request observation.
type sample struct {
	latencyMS float64
	code      int
	class     string
	cacheHit  bool
	bypass    bool
	timedOut  bool
	retries   int  // retry attempts this request consumed
	budgetDry bool // a retry was wanted but the class budget was dry
}

// ClassSummary is the latency distribution of one scheduling class.
type ClassSummary struct {
	Count  int64   `json:"count"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	P999MS float64 `json:"p999_ms"`
	MeanMS float64 `json:"mean_ms"`
	MaxMS  float64 `json:"max_ms"`
	// Histogram is the client-observed distribution in the server's own
	// fixed bucket layout (obs.LatencyBuckets rendered in milliseconds,
	// cumulative counts), so a client-side histogram lays directly over
	// the server's ctp_request_duration_seconds: divergence between the
	// two is queueing and transport the server never saw.
	Histogram []Bucket `json:"histogram,omitempty"`
}

// Bucket is one cumulative histogram bucket: Count samples took at
// most LeMS milliseconds. The implicit +Inf bucket is Count on the
// summary itself.
type Bucket struct {
	LeMS  float64 `json:"le_ms"`
	Count int64   `json:"count"`
}

// Result is one plan replay's SLO report. Latency summaries cover only
// requests that were answered 200 — a shed answered in a millisecond
// must not flatter the latency numbers of work the server refused.
type Result struct {
	Plan          string  `json:"plan"`
	DurationS     float64 `json:"duration_s"`
	Requests      int64   `json:"requests"`
	OK            int64   `json:"ok"`
	Shed          int64   `json:"shed"`
	Unavailable   int64   `json:"unavailable,omitempty"`
	Errors        int64   `json:"errors"`
	Timeouts      int64   `json:"timeouts"`
	CacheHits     int64   `json:"cache_hits"`
	CacheBypasses int64   `json:"cache_bypasses"`
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	ThroughputRPS float64 `json:"throughput_rps"`

	// Retries is the total retry attempts issued; RetriedOK counts
	// requests that ended 200 only thanks to a retry; RetryBudgetDry
	// counts requests that wanted a retry after the class budget was
	// exhausted (their 429 or 503 became terminal). Shed counts terminal
	// 429s, Unavailable counts terminal 503s (a draining server).
	Retries        int64 `json:"retries,omitempty"`
	RetriedOK      int64 `json:"retried_ok,omitempty"`
	RetryBudgetDry int64 `json:"retry_budget_dry,omitempty"`

	Overall    ClassSummary `json:"overall"`
	Cheap      ClassSummary `json:"cheap"`
	Analytical ClassSummary `json:"analytical"`
	// ShedLatency is the latency distribution of terminally shed
	// requests — kept out of the OK buckets (a 1ms 429 must not flatter
	// p50) but reported, because with retries enabled a shed burns real
	// client time waiting out backoffs.
	ShedLatency ClassSummary `json:"shed_latency"`
}

// replayResponse is the slice of the server's response the harness
// reads.
type replayResponse struct {
	TimedOut bool `json:"timed_out"`
	Cache    *struct {
		Hit       bool `json:"hit"`
		Coalesced bool `json:"coalesced"`
	} `json:"cache"`
	Admission *struct {
		CacheBypass bool `json:"cache_bypass"`
	} `json:"admission"`
}

// Replay runs the plan against the server at url, open-loop: a request
// launches at every arrival tick whether or not earlier ones came back.
// The rng drives every generator draw, so a (plan, seed) pair replays
// the identical query sequence against any server. Retries are off; see
// ReplayWithPolicy.
func Replay(ctx context.Context, url string, plan Plan, seed int64) (*Result, error) {
	return ReplayWithPolicy(ctx, url, plan, seed, RetryPolicy{})
}

// ReplayWithPolicy is Replay with client-side 429 resilience: shed
// requests retry per pol, honoring the server's Retry-After. Backoff
// jitter comes from a per-request rng seeded from (seed, request
// index), so a (plan, seed, pol) triple still replays deterministically
// modulo server timing.
func ReplayWithPolicy(ctx context.Context, url string, plan Plan, seed int64, pol RetryPolicy) (*Result, error) {
	client := &http.Client{Timeout: 60 * time.Second}
	rng := rand.New(rand.NewSource(seed))
	var budgets *retryBudgets
	if pol.enabled() && pol.Budget > 0 {
		budgets = &retryBudgets{}
		budgets.cheap.Store(pol.Budget)
		budgets.analytical.Store(pol.Budget)
	}

	var mu sync.Mutex
	var samples []sample
	var wg sync.WaitGroup
	var reqIndex int64
	start := time.Now()

	for _, ph := range plan.Phases {
		if ph.RPS <= 0 || ph.Duration <= 0 {
			continue
		}
		interval := time.Duration(float64(time.Second) / ph.RPS)
		ticker := time.NewTicker(interval)
		phaseEnd := time.After(ph.Duration)
	phase:
		for {
			select {
			case <-ctx.Done():
				ticker.Stop()
				wg.Wait()
				return nil, ctx.Err()
			case <-phaseEnd:
				break phase
			case <-ticker.C:
				req := ph.Mix.Next(rng)
				idx := reqIndex
				reqIndex++
				wg.Add(1)
				go func() {
					defer wg.Done()
					s := post(ctx, client, url, req, pol, budgets, seed^idx)
					mu.Lock()
					samples = append(samples, s)
					mu.Unlock()
				}()
			}
		}
		ticker.Stop()
	}
	wg.Wait()
	return summarize(plan.Name, samples, time.Since(start)), nil
}

// post issues one request, retrying sheds per pol, and observes it. The
// reported latency spans the whole attempt sequence including backoff
// waits — that is the latency the notional end user saw.
func post(ctx context.Context, client *http.Client, url string, req Request, pol RetryPolicy, budgets *retryBudgets, jitterSeed int64) (s sample) {
	body, _ := json.Marshal(map[string]any{
		"query":      req.Query,
		"timeout_ms": req.TimeoutMS,
		"omit_trees": true,
		"max_rows":   1,
	})
	jrng := rand.New(rand.NewSource(jitterSeed))
	s = sample{class: req.Class}
	t0 := time.Now()
	// Named return: the deferred stamp must land in the value the caller
	// receives, covering every return path including backoff waits.
	defer func() { s.latencyMS = float64(time.Since(t0)) / float64(time.Millisecond) }()

	for attempt := 0; ; attempt++ {
		resp, err := client.Post(url+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			s.code = -1
			return s
		}
		s.code = resp.StatusCode
		retryAfter := 0
		if resp.StatusCode == http.StatusOK {
			var out replayResponse
			if derr := json.NewDecoder(resp.Body).Decode(&out); derr == nil {
				s.timedOut = out.TimedOut
				if out.Cache != nil {
					s.cacheHit = out.Cache.Hit
				}
				if out.Admission != nil {
					s.bypass = out.Admission.CacheBypass
				}
			}
		} else if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
			// Both refusal classes carry Retry-After: 429 from admission
			// shedding, 503 from a draining (or hard-degraded) server.
			retryAfter, _ = strconv.Atoi(resp.Header.Get("Retry-After"))
		}
		resp.Body.Close()

		retryable := s.code == http.StatusTooManyRequests || s.code == http.StatusServiceUnavailable
		if !retryable || !pol.enabled() || attempt >= pol.MaxRetries {
			return s
		}
		if budgets != nil && !budgets.take(req.Class) {
			s.budgetDry = true
			return s
		}
		// Honor the server's Retry-After when it is longer than our own
		// exponential backoff, cap the wait, then add up to 25% jitter so
		// a synchronized shed wave does not retry as a synchronized wave.
		wait := pol.base() << attempt
		if ra := time.Duration(retryAfter) * time.Second; ra > wait {
			wait = ra
		}
		if wait > pol.cap() {
			wait = pol.cap()
		}
		wait += time.Duration(jrng.Int63n(int64(wait)/4 + 1))
		s.retries++
		select {
		case <-ctx.Done():
			return s
		case <-time.After(wait):
		}
	}
}

// summarize folds samples into the Result.
func summarize(plan string, samples []sample, elapsed time.Duration) *Result {
	r := &Result{Plan: plan, DurationS: elapsed.Seconds(), Requests: int64(len(samples))}
	var all, cheap, analytical, shed []float64
	for _, s := range samples {
		r.Retries += int64(s.retries)
		if s.budgetDry {
			r.RetryBudgetDry++
		}
		switch {
		case s.code == http.StatusOK:
			r.OK++
			if s.retries > 0 {
				r.RetriedOK++
			}
			if s.timedOut {
				r.Timeouts++
			}
			if s.cacheHit {
				r.CacheHits++
			}
			if s.bypass {
				r.CacheBypasses++
			}
			all = append(all, s.latencyMS)
			if s.class == "analytical" {
				analytical = append(analytical, s.latencyMS)
			} else {
				cheap = append(cheap, s.latencyMS)
			}
		case s.code == http.StatusTooManyRequests:
			r.Shed++
			shed = append(shed, s.latencyMS)
		case s.code == http.StatusServiceUnavailable:
			r.Unavailable++
			shed = append(shed, s.latencyMS)
		default:
			r.Errors++
		}
	}
	if r.OK > 0 {
		r.CacheHitRatio = float64(r.CacheHits) / float64(r.OK)
	}
	if elapsed > 0 {
		r.ThroughputRPS = float64(r.OK) / elapsed.Seconds()
	}
	r.Overall = summarizeLatencies(all)
	r.Cheap = summarizeLatencies(cheap)
	r.Analytical = summarizeLatencies(analytical)
	r.ShedLatency = summarizeLatencies(shed)
	return r
}

// summarizeLatencies computes the percentile summary of one bucket.
func summarizeLatencies(ms []float64) ClassSummary {
	s := ClassSummary{Count: int64(len(ms))}
	if len(ms) == 0 {
		return s
	}
	sort.Float64s(ms)
	var sum float64
	for _, v := range ms {
		sum += v
	}
	s.MeanMS = sum / float64(len(ms))
	s.MaxMS = ms[len(ms)-1]
	s.P50MS = percentile(ms, 0.50)
	s.P95MS = percentile(ms, 0.95)
	s.P99MS = percentile(ms, 0.99)
	s.P999MS = percentile(ms, 0.999)
	for _, le := range obs.LatencyBuckets {
		leMS := le * 1e3
		n := sort.Search(len(ms), func(i int) bool { return ms[i] > leMS })
		s.Histogram = append(s.Histogram, Bucket{LeMS: leMS, Count: int64(n)})
	}
	return s
}

// percentile reads q from an ascending-sorted slice (nearest-rank).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
