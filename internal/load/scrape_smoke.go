package load

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"time"

	"ctpquery"
	"ctpquery/internal/cluster"
	"ctpquery/internal/obs"
	"ctpquery/internal/serve"
)

// ScrapeSmokeConfig parameterizes the observability smoke: a short
// replay through a 2-partition in-process coordinator with tracing on
// everywhere, then assertions that the whole observability surface
// holds together — /metrics parses as strict Prometheus text on the
// coordinator and both shards, the query response carries a trace ID,
// /debug/traces?id= serves a well-formed span tree for it, and the
// shard-side traces join the coordinator's trace through the
// propagated Traceparent.
type ScrapeSmokeConfig struct {
	// Nodes/Edges size the generated graph (defaults 2000/8000).
	Nodes, Edges int
	// Seed drives graph generation and every workload draw.
	Seed int64
	// Scale multiplies the replay duration (1.0 = ~3s of traffic).
	Scale float64
	// Log receives progress lines (nil = silent).
	Log io.Writer
}

func (c ScrapeSmokeConfig) withDefaults() ScrapeSmokeConfig {
	if c.Nodes <= 0 {
		c.Nodes = 2000
	}
	if c.Edges <= 0 {
		c.Edges = 4 * c.Nodes
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Scale <= 0 {
		c.Scale = 1.0
	}
	if c.Log == nil {
		c.Log = io.Discard
	}
	return c
}

// ScrapeSmokeReport is the scrape smoke's JSON payload.
type ScrapeSmokeReport struct {
	Description string  `json:"description"`
	Replay      *Result `json:"replay"`
	// TraceID is the probe query's gather trace, shared by the
	// coordinator and both shards.
	TraceID string `json:"trace_id"`
	// CoordinatorSpans counts spans in the coordinator's trace,
	// ShardSpans in each shard's half of the same trace.
	CoordinatorSpans int   `json:"coordinator_spans"`
	ShardSpans       []int `json:"shard_spans"`
	// MetricFamilies counts parsed families per scraped endpoint.
	MetricFamilies map[string]int `json:"metric_families"`
}

// tracedShard is one in-process partition: the serving stack with
// tracing on, plus the handle the smoke needs to reach its flight
// recorder directly.
type tracedShard struct {
	name string
	srv  *serve.Server
	tr   cluster.Transport
}

func newTracedShard(g *ctpquery.Graph, name string) (*tracedShard, error) {
	db, err := ctpquery.Open(g, &ctpquery.Options{
		Parallel: true, Parallelism: 2,
		Cache: &ctpquery.CacheConfig{MaxBytes: 32 << 20},
	})
	if err != nil {
		return nil, err
	}
	s, err := serve.New(db, serve.Config{
		DefaultTimeout: 10 * time.Second,
		MaxTimeout:     30 * time.Second,
		MaxRows:        100,
	})
	if err != nil {
		return nil, err
	}
	return &tracedShard{
		name: name,
		srv:  s,
		tr:   &cluster.LocalTransport{Name: name, Handler: s.Handler(false)},
	}, nil
}

// scrapeMetrics GETs url and strict-parses the body as Prometheus text.
func scrapeMetrics(url string) (int, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("GET %s: %d", url, resp.StatusCode)
	}
	fams, err := obs.ParseExposition(resp.Body)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", url, err)
	}
	return len(fams), nil
}

// RunScrapeSmoke drives the observability surface end to end and fails
// on any broken invariant; CI runs it as the scrape-smoke job.
func RunScrapeSmoke(ctx context.Context, cfg ScrapeSmokeConfig) (*ScrapeSmokeReport, error) {
	cfg = cfg.withDefaults()
	fmt.Fprintf(cfg.Log, "generating graph %dx%d (seed %d)\n", cfg.Nodes, cfg.Edges, cfg.Seed)
	g := ctpquery.RandomGraph(cfg.Nodes, cfg.Edges, []string{"knows", "cites", "funds", "worksFor"}, cfg.Seed)

	shards := make([]*tracedShard, 2)
	groups := make([]cluster.Group, 2)
	for i := range shards {
		sh, err := newTracedShard(g, fmt.Sprintf("part-%d", i))
		if err != nil {
			return nil, err
		}
		shards[i] = sh
		groups[i] = cluster.Group{Name: fmt.Sprintf("g%d", i), Members: []cluster.Transport{sh.tr}}
	}
	coord, err := cluster.New(cluster.Config{
		ProbeInterval:  500 * time.Millisecond,
		DefaultTimeout: 10 * time.Second,
	}, groups)
	if err != nil {
		return nil, err
	}
	stop := coord.StartProbing(ctx)
	defer stop()
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	plan := SteadyPlan(CacheHeavyMix(cfg.Nodes, 32, cfg.Seed), 30, 3*time.Second).Scale(cfg.Scale)
	fmt.Fprintf(cfg.Log, "replaying %s through a 2-partition traced cluster\n", plan.Name)
	res, err := Replay(ctx, srv.URL, plan, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if res.OK == 0 {
		return nil, fmt.Errorf("scrape smoke: no request succeeded (%d errors)", res.Errors)
	}

	rep := &ScrapeSmokeReport{
		Description:    "ctpload scrape smoke: open-loop replay through a 2-partition traced coordinator, then /metrics exposition and cross-process trace-join assertions",
		Replay:         res,
		MetricFamilies: map[string]int{},
	}

	// One probe query whose trace the assertions dissect.
	body, _ := json.Marshal(map[string]any{
		"query":      fmt.Sprintf("SELECT ?w WHERE { CONNECT n1 n%d AS ?w MAX 4 LIMIT 1 . }", cfg.Nodes/2),
		"timeout_ms": 5000,
		"omit_trees": true,
	})
	presp, err := http.Post(srv.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	var probe struct {
		TraceID string `json:"trace_id"`
	}
	perr := json.NewDecoder(presp.Body).Decode(&probe)
	presp.Body.Close()
	if perr != nil {
		return nil, fmt.Errorf("probe query: %w", perr)
	}
	if probe.TraceID == "" {
		return nil, fmt.Errorf("probe query response carries no trace_id")
	}
	rep.TraceID = probe.TraceID

	// The coordinator's half, through the HTTP surface.
	tresp, err := http.Get(srv.URL + "/debug/traces?id=" + probe.TraceID)
	if err != nil {
		return nil, err
	}
	var ctrace obs.Trace
	terr := json.NewDecoder(tresp.Body).Decode(&ctrace)
	tresp.Body.Close()
	if terr != nil || tresp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /debug/traces?id=%s: status %d, %v", probe.TraceID, tresp.StatusCode, terr)
	}
	if msg := ctrace.WellFormed(); msg != "" {
		return nil, fmt.Errorf("coordinator trace malformed: %s", msg)
	}
	rep.CoordinatorSpans = len(ctrace.Spans)
	sendSpans := map[string]bool{}
	groupsSeen := 0
	for _, sp := range ctrace.Spans {
		switch sp.Name {
		case "send":
			sendSpans[sp.SpanID] = true
		case "group":
			groupsSeen++
		}
	}
	if ctrace.Root != "gather" || groupsSeen != 2 || len(sendSpans) < 2 {
		return nil, fmt.Errorf("coordinator trace incoherent: root %q, %d group spans, %d send spans",
			ctrace.Root, groupsSeen, len(sendSpans))
	}

	// Each shard must hold the same trace ID, rooted at a span whose
	// remote parent is one of the coordinator's send spans — the
	// Traceparent join, observed from both ends.
	for _, sh := range shards {
		strace := sh.srv.Tracer().Trace(probe.TraceID)
		if strace == nil {
			return nil, fmt.Errorf("shard %s recorded no trace %s", sh.name, probe.TraceID)
		}
		if msg := strace.WellFormed(); msg != "" {
			return nil, fmt.Errorf("shard %s trace malformed: %s", sh.name, msg)
		}
		if strace.RemoteParent == "" || !sendSpans[strace.RemoteParent] {
			return nil, fmt.Errorf("shard %s trace parent %q is not a coordinator send span",
				sh.name, strace.RemoteParent)
		}
		rep.ShardSpans = append(rep.ShardSpans, len(strace.Spans))
	}

	// Every /metrics endpoint must serve strict, parseable exposition.
	n, err := scrapeMetrics(srv.URL + "/metrics")
	if err != nil {
		return nil, err
	}
	rep.MetricFamilies["coordinator"] = n
	for _, sh := range shards {
		ssrv := httptest.NewServer(sh.srv.Handler(false))
		n, err := scrapeMetrics(ssrv.URL + "/metrics")
		ssrv.Close()
		if err != nil {
			return nil, err
		}
		rep.MetricFamilies[sh.name] = n
	}

	fmt.Fprintf(cfg.Log, "  trace %s: %d coordinator spans, shards %v; metric families %v\n",
		rep.TraceID, rep.CoordinatorSpans, rep.ShardSpans, rep.MetricFamilies)
	return rep, nil
}
