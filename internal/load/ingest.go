package load

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"time"

	"ctpquery"
	"ctpquery/internal/serve"
)

// IngestResult is the write-path half of a mixed read/write replay:
// POST /ingest latency percentiles and outcome counts.
type IngestResult struct {
	Batches       int64        `json:"batches"`
	OK            int64        `json:"ok"`
	Failures      int64        `json:"failures"`
	Ops           int64        `json:"ops"`
	ThroughputRPS float64      `json:"throughput_rps"`
	Latency       ClassSummary `json:"latency"`
	// FinalEpoch is the graph epoch reported by the last successful
	// ingest response.
	FinalEpoch uint64 `json:"final_epoch"`
}

// ingestGen generates small mutation-stream bodies against a
// RandomGraph-labeled server (nodes n1..nN): mostly edge adds between
// existing nodes, some brand-new nodes, and deletes of edges this
// generator added earlier (so the delta both grows and shrinks). It is
// single-goroutine, driven by the replay's arrival loop.
type ingestGen struct {
	rng      *rand.Rand
	nodes    int
	labels   []string
	added    []string // "+e src lbl dst" lines eligible for deletion
	newNodes int
	ops      int64
}

func newIngestGen(nodes int, seed int64) *ingestGen {
	return &ingestGen{
		rng:    rand.New(rand.NewSource(seed)),
		nodes:  nodes,
		labels: []string{"knows", "cites", "funds", "worksFor"},
	}
}

// next renders one batch body (one to three ops, no blank lines — a
// single atomic batch per request).
func (g *ingestGen) next() string {
	var b strings.Builder
	for ops := 1 + g.rng.Intn(3); ops > 0; ops-- {
		g.ops++
		switch roll := g.rng.Float64(); {
		case roll < 0.70:
			line := fmt.Sprintf("+e n%d %s n%d",
				1+g.rng.Intn(g.nodes), g.labels[g.rng.Intn(len(g.labels))], 1+g.rng.Intn(g.nodes))
			g.added = append(g.added, line)
			b.WriteString(line + "\n")
		case roll < 0.85:
			g.newNodes++
			label := fmt.Sprintf("ingest%d", g.newNodes)
			fmt.Fprintf(&b, "+n %s\n", label)
			line := fmt.Sprintf("+e %s %s n%d",
				label, g.labels[g.rng.Intn(len(g.labels))], 1+g.rng.Intn(g.nodes))
			g.added = append(g.added, line)
			g.ops++ // the edge op
			b.WriteString(line + "\n")
		default:
			if len(g.added) == 0 {
				g.ops-- // nothing to delete; this roll emits no op
				continue
			}
			i := g.rng.Intn(len(g.added))
			b.WriteString("-" + strings.TrimPrefix(g.added[i], "+") + "\n")
			g.added[i] = g.added[len(g.added)-1]
			g.added = g.added[:len(g.added)-1]
		}
	}
	return b.String()
}

// IngestReplay drives POST /ingest open-loop at rps for d, concurrently
// with whatever query replay the caller runs against the same server.
// Latencies cover every batch, successful or not; FinalEpoch tracks the
// server's epoch as observed by the last successful response.
func IngestReplay(ctx context.Context, url string, rps float64, d time.Duration, nodes int, seed int64) (*IngestResult, error) {
	if rps <= 0 || d <= 0 {
		return &IngestResult{}, nil
	}
	client := &http.Client{Timeout: 30 * time.Second}
	gen := newIngestGen(nodes, seed)

	var mu sync.Mutex
	var lat []float64
	res := &IngestResult{}
	var wg sync.WaitGroup

	ticker := time.NewTicker(time.Duration(float64(time.Second) / rps))
	defer ticker.Stop()
	end := time.After(d)
	start := time.Now()
loop:
	for {
		select {
		case <-ctx.Done():
			wg.Wait()
			return nil, ctx.Err()
		case <-end:
			break loop
		case <-ticker.C:
			body := gen.next()
			if body == "" {
				continue
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				t0 := time.Now()
				resp, err := client.Post(url+"/ingest", "text/plain", strings.NewReader(body))
				elapsed := float64(time.Since(t0)) / float64(time.Millisecond)
				mu.Lock()
				defer mu.Unlock()
				res.Batches++
				lat = append(lat, elapsed)
				if err != nil {
					res.Failures++
					return
				}
				var out struct {
					Epoch uint64 `json:"epoch"`
				}
				derr := json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || derr != nil {
					res.Failures++
					return
				}
				res.OK++
				if out.Epoch > res.FinalEpoch {
					res.FinalEpoch = out.Epoch
				}
			}()
		}
	}
	wg.Wait()
	res.Ops = gen.ops
	res.Latency = summarizeLatencies(lat)
	if elapsed := time.Since(start).Seconds(); elapsed > 0 {
		res.ThroughputRPS = float64(res.OK) / elapsed
	}
	return res, nil
}

// LiveSmokeConfig parameterizes the mixed read/write smoke: a live
// in-process server takes cache-heavy query traffic and a concurrent
// ingest stream, with the compaction threshold set low enough that
// background compactions happen under the load.
type LiveSmokeConfig struct {
	// Nodes/Edges size the generated graph (defaults 2000/8000).
	Nodes, Edges int
	// Seed drives graph generation and every workload draw.
	Seed int64
	// Scale multiplies the replay duration (1.0 = ~4s of traffic).
	Scale float64
	// Log receives progress lines (nil = silent).
	Log io.Writer
}

func (c LiveSmokeConfig) withDefaults() LiveSmokeConfig {
	if c.Nodes <= 0 {
		c.Nodes = 2000
	}
	if c.Edges <= 0 {
		c.Edges = 4 * c.Nodes
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Scale <= 0 {
		c.Scale = 1.0
	}
	if c.Log == nil {
		c.Log = io.Discard
	}
	return c
}

// LiveSmokeReport is the live smoke's JSON payload.
type LiveSmokeReport struct {
	Description string        `json:"description"`
	Replay      *Result       `json:"replay"`
	Ingest      *IngestResult `json:"ingest"`
	// FinalEpoch/Compactions come from the store after the traffic
	// settles; the smoke fails unless ingest moved the epoch and at
	// least one background compaction landed.
	FinalEpoch  uint64 `json:"final_epoch"`
	Compactions uint64 `json:"compactions"`
	DeltaEdges  int    `json:"delta_edges_after"`
}

// RunLiveSmoke replays queries and ingest concurrently against one live
// in-process server and fails on any broken invariant: query errors,
// ingest failures, a frozen epoch, or a compaction that never ran. CI
// runs it as the live-smoke job.
func RunLiveSmoke(ctx context.Context, cfg LiveSmokeConfig) (*LiveSmokeReport, error) {
	cfg = cfg.withDefaults()
	fmt.Fprintf(cfg.Log, "generating live graph %dx%d (seed %d)\n", cfg.Nodes, cfg.Edges, cfg.Seed)
	g := ctpquery.RandomGraph(cfg.Nodes, cfg.Edges, []string{"knows", "cites", "funds", "worksFor"}, cfg.Seed).
		LiveWithConfig(ctpquery.LiveConfig{CompactThreshold: 32})
	db, err := ctpquery.Open(g, &ctpquery.Options{Parallel: true},
		ctpquery.WithCache(32<<20, 0))
	if err != nil {
		return nil, err
	}
	s, err := serve.New(db, serve.Config{
		DefaultTimeout: 10 * time.Second,
		MaxTimeout:     30 * time.Second,
		MaxRows:        100,
	})
	if err != nil {
		return nil, err
	}
	srv := httptest.NewServer(s.Handler(false))
	defer srv.Close()

	d := time.Duration(float64(4*time.Second) * cfg.Scale)
	plan := SteadyPlan(CacheHeavyMix(cfg.Nodes, 32, cfg.Seed), 30, d)
	fmt.Fprintf(cfg.Log, "replaying %s (30 rps) + ingest (15 rps) for %v\n", plan.Name, d)

	var (
		wg        sync.WaitGroup
		replayRes *Result
		ingestRes *IngestResult
		replayErr error
		ingestErr error
	)
	wg.Add(2)
	go func() {
		defer wg.Done()
		replayRes, replayErr = Replay(ctx, srv.URL, plan, cfg.Seed)
	}()
	go func() {
		defer wg.Done()
		ingestRes, ingestErr = IngestReplay(ctx, srv.URL, 15, d, cfg.Nodes, cfg.Seed+1)
	}()
	wg.Wait()
	if replayErr != nil {
		return nil, replayErr
	}
	if ingestErr != nil {
		return nil, ingestErr
	}
	g.Quiesce()

	rep := &LiveSmokeReport{
		Description: "ctpload live smoke: cache-heavy queries and an open-loop ingest stream against one live in-process server, with background compaction under load",
		Replay:      replayRes,
		Ingest:      ingestRes,
	}
	st, ok := g.StoreStats()
	if !ok {
		return nil, fmt.Errorf("live smoke: server graph reports no store stats")
	}
	rep.FinalEpoch = st.Epoch
	rep.Compactions = st.Compactions
	rep.DeltaEdges = st.DeltaEdges

	switch {
	case replayRes.OK == 0:
		return nil, fmt.Errorf("live smoke: no query succeeded (%d errors)", replayRes.Errors)
	case replayRes.Errors > 0:
		return nil, fmt.Errorf("live smoke: %d query errors under concurrent ingest", replayRes.Errors)
	case ingestRes.OK == 0 || ingestRes.Failures > 0:
		return nil, fmt.Errorf("live smoke: ingest ok=%d failures=%d", ingestRes.OK, ingestRes.Failures)
	case st.Epoch == 0:
		return nil, fmt.Errorf("live smoke: epoch never advanced")
	case st.Compactions == 0:
		return nil, fmt.Errorf("live smoke: no background compaction ran (epoch %d, %d pending ops)",
			st.Epoch, st.PendingOps)
	case st.CompactAborts > 0:
		return nil, fmt.Errorf("live smoke: %d compactions aborted", st.CompactAborts)
	}
	fmt.Fprintf(cfg.Log, "  queries ok %d (p99 %.1fms), ingest ok %d (p99 %.1fms), epoch %d, %d compactions\n",
		replayRes.OK, replayRes.Overall.P99MS, ingestRes.OK, ingestRes.Latency.P99MS,
		st.Epoch, st.Compactions)
	return rep, nil
}
