package load

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"ctpquery"
	"ctpquery/internal/admission"
	"ctpquery/internal/serve"
	"net/http/httptest"
)

func TestPercentileNearestRank(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		q    float64
		want float64
	}{
		{0.50, 5},  // rank ceil(0.5*10) = 5
		{0.95, 10}, // rank round(9.5+0.5) = 10
		{0.99, 10},
		{1.00, 10},
	}
	for _, c := range cases {
		if got := percentile(sorted, c.q); got != c.want {
			t.Errorf("percentile(%.2f) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := percentile(nil, 0.99); got != 0 {
		t.Errorf("percentile(empty) = %v, want 0", got)
	}
	if got := percentile([]float64{7}, 0.01); got != 7 {
		t.Errorf("percentile(single, 0.01) = %v, want 7", got)
	}
}

func TestSummarizeLatencies(t *testing.T) {
	s := summarizeLatencies([]float64{4, 2, 8, 6})
	if s.Count != 4 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.MaxMS != 8 {
		t.Errorf("max = %v", s.MaxMS)
	}
	if math.Abs(s.MeanMS-5) > 1e-9 {
		t.Errorf("mean = %v", s.MeanMS)
	}
	if s.P50MS != 4 {
		t.Errorf("p50 = %v", s.P50MS)
	}
}

func TestSummarizeBucketsByOutcome(t *testing.T) {
	samples := []sample{
		{latencyMS: 1, code: 200, class: "cheap", cacheHit: true},
		{latencyMS: 50, code: 200, class: "analytical", timedOut: true},
		{latencyMS: 0.5, code: 429, class: "analytical"},
		{latencyMS: 0.5, code: 400, class: "cheap"},
		{latencyMS: 0.5, code: -1, class: "cheap"},
		{latencyMS: 2, code: 200, class: "cheap", bypass: true, cacheHit: true},
	}
	r := summarize("t", samples, 2*time.Second)
	if r.Requests != 6 || r.OK != 3 || r.Shed != 1 || r.Errors != 2 {
		t.Fatalf("buckets: req=%d ok=%d shed=%d err=%d", r.Requests, r.OK, r.Shed, r.Errors)
	}
	if r.Timeouts != 1 || r.CacheHits != 2 || r.CacheBypasses != 1 {
		t.Fatalf("timeouts=%d hits=%d bypasses=%d", r.Timeouts, r.CacheHits, r.CacheBypasses)
	}
	if math.Abs(r.CacheHitRatio-2.0/3.0) > 1e-9 {
		t.Errorf("hit ratio = %v", r.CacheHitRatio)
	}
	if math.Abs(r.ThroughputRPS-1.5) > 1e-9 {
		t.Errorf("throughput = %v", r.ThroughputRPS)
	}
	// Shed/error latencies must not leak into the summaries.
	if r.Overall.Count != 3 || r.Cheap.Count != 2 || r.Analytical.Count != 1 {
		t.Fatalf("latency counts: overall=%d cheap=%d analytical=%d",
			r.Overall.Count, r.Cheap.Count, r.Analytical.Count)
	}
	if r.Analytical.MaxMS != 50 {
		t.Errorf("analytical max = %v", r.Analytical.MaxMS)
	}
}

// Same seed, same mix: identical query sequence — the property that
// makes admission-on/off comparisons replay the exact same traffic.
func TestMixDeterministicPerSeed(t *testing.T) {
	for _, mk := range []func() *Mix{
		func() *Mix { return CacheHeavyMix(500, 16, 7) },
		func() *Mix { return AnalyticalHeavyMix(500) },
		func() *Mix {
			return WeightedMix("w", []*Mix{CacheHeavyMix(500, 16, 7), AnalyticalHeavyMix(500)}, []float64{0.5, 0.5})
		},
	} {
		a, b := mk(), mk()
		ra, rb := rand.New(rand.NewSource(99)), rand.New(rand.NewSource(99))
		for i := 0; i < 200; i++ {
			qa, qb := a.Next(ra), b.Next(rb)
			if qa != qb {
				t.Fatalf("%s: draw %d diverged:\n  %+v\n  %+v", a.Name, i, qa, qb)
			}
		}
	}
}

func TestAnalyticalQueryShape(t *testing.T) {
	r := AnalyticalQuery([]int{3, 14, 15}, 250)
	want := "SELECT ?w WHERE { CONNECT n3 n14 n15 AS ?w MAX 14 . }"
	if r.Query != want {
		t.Fatalf("query = %q, want %q", r.Query, want)
	}
	if r.TimeoutMS != 250 || r.Class != "analytical" {
		t.Fatalf("meta = %+v", r)
	}
	if _, err := ctpquery.ParseQuery(r.Query); err != nil {
		t.Fatalf("generated analytical query does not parse: %v", err)
	}
	if _, err := ctpquery.ParseQuery(CheapQuery(1, 2).Query); err != nil {
		t.Fatalf("generated cheap query does not parse: %v", err)
	}
}

func TestPlanScale(t *testing.T) {
	p := BurstPlan(100, 1, 10, 20, time.Second).Scale(0.25)
	for _, ph := range p.Phases {
		if ph.Duration != 250*time.Millisecond {
			t.Fatalf("phase %s duration = %v", ph.Name, ph.Duration)
		}
	}
}

// A short end-to-end replay against a real in-process admission server:
// the harness must count OK responses, observe cache hits, and finish
// within the open-loop schedule.
func TestReplayAgainstAdmissionServer(t *testing.T) {
	if testing.Short() {
		t.Skip("replay smoke skipped in -short")
	}
	g := ctpquery.RandomGraph(400, 1200, []string{"knows", "cites"}, 5)
	db, err := ctpquery.Open(g, &ctpquery.Options{Cache: &ctpquery.CacheConfig{MaxBytes: 16 << 20}})
	if err != nil {
		t.Fatal(err)
	}
	s, err := serve.New(db, serve.Config{
		DefaultTimeout: 5 * time.Second,
		MaxTimeout:     10 * time.Second,
		MaxRows:        100,
		Admission:      &admission.Config{MaxConcurrent: 2, CheapReserve: 1, QueueDepth: 8, MaxQueueWait: 300 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler(false))
	defer srv.Close()

	// Node range matches the graph so cheap queries resolve real labels.
	plan := SteadyPlan(CacheHeavyMix(400, 8, 5), 40, 1*time.Second)
	res, err := Replay(context.Background(), srv.URL, plan, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests < 20 {
		t.Fatalf("open loop launched only %d requests", res.Requests)
	}
	if res.OK == 0 {
		t.Fatalf("no OK responses: %+v", res)
	}
	if res.Errors > 0 {
		t.Fatalf("cache-heavy replay produced %d errors: %+v", res.Errors, res)
	}
	// An 8-query hot set at 40 rps must produce repeat hits.
	if res.CacheHits == 0 {
		t.Fatalf("expected cache hits on hot set: %+v", res)
	}
	if res.Overall.Count != res.OK {
		t.Fatalf("latency count %d != ok %d", res.Overall.Count, res.OK)
	}
	if res.Overall.P50MS <= 0 || res.Overall.P99MS < res.Overall.P50MS {
		t.Fatalf("percentiles inconsistent: %+v", res.Overall)
	}
}

// Replay honors context cancellation mid-phase.
func TestReplayCancel(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	// Unroutable URL: requests fail fast, but the plan runs 10s unless
	// the context stops it.
	plan := SteadyPlan(AnalyticalHeavyMix(100), 10, 10*time.Second)
	start := time.Now()
	_, err := Replay(ctx, "http://127.0.0.1:1", plan, 1)
	if err == nil {
		t.Fatal("want context error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancel took %v", elapsed)
	}
}
