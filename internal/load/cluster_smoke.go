package load

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"time"

	"ctpquery"
	"ctpquery/internal/cluster"
	"ctpquery/internal/fault"
	"ctpquery/internal/serve"
)

// ClusterSmokeConfig parameterizes the cluster smoke: a cache-heavy
// replay driven through a 2-replica in-process cluster with one shard
// fault-armed, proving the whole fault-tolerance stack — health
// routing, retry failover, breakers — under open-loop traffic instead
// of a single surgical chaos test.
type ClusterSmokeConfig struct {
	// Nodes/Edges size the generated graph (defaults 2000/8000).
	Nodes, Edges int
	// Seed drives graph generation and every workload draw.
	Seed int64
	// Scale multiplies the replay duration (1.0 = ~6s of traffic).
	Scale float64
	// Log receives progress lines (nil = silent).
	Log io.Writer
}

func (c ClusterSmokeConfig) withDefaults() ClusterSmokeConfig {
	if c.Nodes <= 0 {
		c.Nodes = 2000
	}
	if c.Edges <= 0 {
		c.Edges = 4 * c.Nodes
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Scale <= 0 {
		c.Scale = 1.0
	}
	if c.Log == nil {
		c.Log = io.Discard
	}
	return c
}

// ClusterSmokeReport is the cluster smoke's JSON payload: the replay's
// SLO result, how many shard sends the armed fault killed, and the
// coordinator's /stats snapshot (breaker states, hedge counts,
// per-shard error rates) taken after the replay.
type ClusterSmokeReport struct {
	Description string          `json:"description"`
	Replay      *Result         `json:"replay"`
	FaultsFired uint64          `json:"faults_fired"`
	Coordinator json.RawMessage `json:"coordinator_stats"`
}

// clusterShard builds one in-process replica: its own DB (own cache)
// over the shared graph, served by the production handler, running the
// parallel kernel the canonical merge-key order comes from.
func clusterShard(g *ctpquery.Graph, name string) (cluster.Transport, error) {
	db, err := ctpquery.Open(g, &ctpquery.Options{
		Parallel: true, Parallelism: 2,
		Cache: &ctpquery.CacheConfig{MaxBytes: 32 << 20},
	})
	if err != nil {
		return nil, err
	}
	s, err := serve.New(db, serve.Config{
		DefaultTimeout: 10 * time.Second,
		MaxTimeout:     30 * time.Second,
		MaxRows:        100,
	})
	if err != nil {
		return nil, err
	}
	return &cluster.LocalTransport{Name: name, Handler: s.Handler(false)}, nil
}

// RunClusterSmoke replays the cache-heavy mix through a coordinator
// fronting two same-data replicas while a bounded cluster.send fault
// kills a slice of shard sends mid-replay. With retries on the client
// and failover in the coordinator, the injected faults must not surface
// as client-visible errors.
func RunClusterSmoke(ctx context.Context, cfg ClusterSmokeConfig) (*ClusterSmokeReport, error) {
	cfg = cfg.withDefaults()
	fmt.Fprintf(cfg.Log, "generating graph %dx%d (seed %d)\n", cfg.Nodes, cfg.Edges, cfg.Seed)
	g := ctpquery.RandomGraph(cfg.Nodes, cfg.Edges, []string{"knows", "cites", "funds", "worksFor"}, cfg.Seed)

	a, err := clusterShard(g, "replica-a")
	if err != nil {
		return nil, err
	}
	b, err := clusterShard(g, "replica-b")
	if err != nil {
		return nil, err
	}
	coord, err := cluster.New(cluster.Config{
		ProbeInterval:  500 * time.Millisecond,
		DefaultTimeout: 10 * time.Second,
		MaxAttempts:    3,
		RetryBase:      10 * time.Millisecond,
		RetryMax:       200 * time.Millisecond,
		// A short cooldown keeps the worst case — the injected fault trips
		// BOTH replicas' breakers back to back — briefer than one client
		// retry backoff, so the smoke proves recovery, not just refusal.
		BreakerThreshold: 3,
		BreakerCooldown:  250 * time.Millisecond,
	}, []cluster.Group{{Name: "g0", Members: []cluster.Transport{a, b}}})
	if err != nil {
		return nil, err
	}
	stop := coord.StartProbing(ctx)
	defer stop()
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	// Kill a mid-replay slice of shard sends: skip the first 20 hits so
	// the cluster warms up healthy, then fail the next 12. Every killed
	// send must be absorbed by coordinator failover (the replica answers)
	// or, at worst, a client retry riding out a breaker cooldown.
	defer fault.Reset()
	if err := fault.Arm("cluster.send", fault.Fault{Kind: fault.Error, After: 20, Count: 12}); err != nil {
		return nil, err
	}

	plan := SteadyPlan(CacheHeavyMix(cfg.Nodes, 32, cfg.Seed), 30, 6*time.Second).Scale(cfg.Scale)
	fmt.Fprintf(cfg.Log, "replaying %s through a 2-replica cluster with cluster.send fault-armed\n", plan.Name)
	pol := RetryPolicy{MaxRetries: 3, BaseBackoff: 20 * time.Millisecond, MaxBackoff: 500 * time.Millisecond}
	res, err := ReplayWithPolicy(ctx, srv.URL, plan, cfg.Seed, pol)
	if err != nil {
		return nil, err
	}

	rep := &ClusterSmokeReport{
		Description: "ctpload cluster smoke: cache-heavy open-loop replay through a 2-replica scatter-gather coordinator with a bounded cluster.send fault killing shard sends mid-replay",
		Replay:      res,
		FaultsFired: fault.Fired("cluster.send"),
	}
	statsResp, err := http.Get(srv.URL + "/stats")
	if err == nil {
		raw, rerr := io.ReadAll(statsResp.Body)
		statsResp.Body.Close()
		if rerr == nil && json.Valid(raw) {
			rep.Coordinator = json.RawMessage(raw)
		}
	}
	fmt.Fprintf(cfg.Log, "  %d req: ok %d, shed %d, unavailable %d, errors %d; %d shard sends killed\n",
		res.Requests, res.OK, res.Shed, res.Unavailable, res.Errors, rep.FaultsFired)
	return rep, nil
}
