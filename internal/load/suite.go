package load

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http/httptest"
	"os"
	"runtime"
	"time"

	"ctpquery"
	"ctpquery/internal/admission"
	"ctpquery/internal/serve"
)

// SuiteConfig parameterizes the self-contained benchmark suite: an
// in-process graph, in-process servers (the exact production handler
// from internal/serve on httptest listeners), and the three canonical
// mixes plus an admission-on/off saturation comparison.
type SuiteConfig struct {
	// Nodes/Edges size the generated graph (defaults 4000/16000).
	Nodes, Edges int
	// Seed drives graph generation and every workload draw.
	Seed int64
	// Scale multiplies every phase duration; 1.0 is the benchmark
	// setting, CI smokes use ~0.1.
	Scale float64
	// Log receives progress lines (nil = silent).
	Log io.Writer
}

func (c SuiteConfig) withDefaults() SuiteConfig {
	if c.Nodes <= 0 {
		c.Nodes = 4000
	}
	if c.Edges <= 0 {
		c.Edges = 4 * c.Nodes
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Scale <= 0 {
		c.Scale = 1.0
	}
	if c.Log == nil {
		c.Log = io.Discard
	}
	return c
}

// Comparison is the admission-on vs admission-off saturation run: the
// same open-loop plan (cheap baseline + analytical flood) against two
// otherwise identical servers. The admission layer earns its keep when
// the cheap-class p99 with admission stays well under the p99 without.
type Comparison struct {
	Plan           string  `json:"plan"`
	AdmissionOn    *Result `json:"admission_on"`
	AdmissionOff   *Result `json:"admission_off"`
	CheapP99Ratio  float64 `json:"cheap_p99_off_over_on"`
	CheapP99OnMS   float64 `json:"cheap_p99_on_ms"`
	CheapP99OffMS  float64 `json:"cheap_p99_off_ms"`
	ShedsAdmission int64   `json:"sheds_admission_on"`
}

// SuiteReport is the BENCH_pr6.json payload.
type SuiteReport struct {
	Description string `json:"description"`
	GoVersion   string `json:"go_version"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	NumCPU      int    `json:"num_cpu"`
	Graph       struct {
		Nodes int   `json:"nodes"`
		Edges int   `json:"edges"`
		Seed  int64 `json:"seed"`
	} `json:"graph"`
	Scale float64 `json:"scale"`
	// Mixes are the canonical plans replayed against the admission-on
	// server.
	Mixes []*Result `json:"mixes"`
	// Comparison is the saturation A/B between admission on and off.
	Comparison *Comparison `json:"comparison"`
	// Baseline embeds the previous PR's benchmark report verbatim, so
	// one file carries the trajectory.
	Baseline json.RawMessage `json:"baseline,omitempty"`
}

// suiteServer builds a fresh DB (own cache, own stats) over g and
// serves it in-process.
func suiteServer(g *ctpquery.Graph, withAdmission bool) (*httptest.Server, error) {
	db, err := ctpquery.Open(g, &ctpquery.Options{Cache: &ctpquery.CacheConfig{MaxBytes: 64 << 20}})
	if err != nil {
		return nil, err
	}
	cfg := serve.Config{
		DefaultTimeout: 10 * time.Second,
		MaxTimeout:     30 * time.Second,
		MaxRows:        100,
	}
	if withAdmission {
		// Two slots with one cheap-reserved, regardless of core count:
		// the suite must demonstrate the scheduling policy, and a small
		// fixed slot count makes saturation reproducible across machines.
		cfg.Admission = &admission.Config{
			MaxConcurrent: 2,
			CheapReserve:  1,
			QueueDepth:    16,
			MaxQueueWait:  500 * time.Millisecond,
		}
	}
	s, err := serve.New(db, cfg)
	if err != nil {
		return nil, err
	}
	return httptest.NewServer(s.Handler(false)), nil
}

// saturationPlan is the comparison workload: a steady cheap stream that
// an analytical flood tries to drown. The flood must genuinely saturate:
// every flood request is a 4-member enumeration that burns its full
// 400ms budget, and at 70% of 50 rps the offered concurrency without
// admission averages ~14 CPU-hungry searches — enough that
// processor-sharing drags every cheap query down with them. With
// admission the flood is confined to one slot (the rest shed 429) and
// the cheap reserve keeps interactive traffic fast.
func saturationPlan(nodes int, seed int64, d time.Duration) Plan {
	cheap := CacheHeavyMix(nodes, 32, seed)
	flood := &Mix{
		Name: "flood",
		Next: func(rng *rand.Rand) Request {
			members := make([]int, 4)
			for i := range members {
				members[i] = 1 + rng.Intn(nodes)
			}
			return AnalyticalQuery(members, 400)
		},
	}
	mixed := WeightedMix("saturation", []*Mix{cheap, flood}, []float64{0.3, 0.7})
	return Plan{Name: "saturation", Phases: []Phase{
		{Name: "saturation", Duration: d, RPS: 50, Mix: mixed},
	}}
}

// RunSuite executes the full suite and returns the report.
func RunSuite(ctx context.Context, cfg SuiteConfig) (*SuiteReport, error) {
	cfg = cfg.withDefaults()
	rep := &SuiteReport{
		Description: "ctpload traffic-realism suite: open-loop workload replay against the in-process serving path; SLO percentiles per scheduling class, shed counts, cache-hit ratios, and the admission-on/off saturation comparison",
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		Scale:       cfg.Scale,
	}
	rep.Graph.Nodes, rep.Graph.Edges, rep.Graph.Seed = cfg.Nodes, cfg.Edges, cfg.Seed

	fmt.Fprintf(cfg.Log, "generating graph %dx%d (seed %d)\n", cfg.Nodes, cfg.Edges, cfg.Seed)
	g := ctpquery.RandomGraph(cfg.Nodes, cfg.Edges, []string{"knows", "cites", "funds", "worksFor"}, cfg.Seed)

	base := 6 * time.Second
	plans := []Plan{
		SteadyPlan(CacheHeavyMix(cfg.Nodes, 32, cfg.Seed), 40, base).Scale(cfg.Scale),
		SteadyPlan(AnalyticalHeavyMix(cfg.Nodes), 20, base).Scale(cfg.Scale),
		BurstPlan(cfg.Nodes, cfg.Seed, 25, 60, base/3).Scale(cfg.Scale),
	}

	srv, err := suiteServer(g, true)
	if err != nil {
		return nil, err
	}
	for _, plan := range plans {
		fmt.Fprintf(cfg.Log, "replaying %s against admission-on server\n", plan.Name)
		res, err := Replay(ctx, srv.URL, plan, cfg.Seed)
		if err != nil {
			srv.Close()
			return nil, err
		}
		fmt.Fprintf(cfg.Log, "  %s: %d req, %.1f rps, p99 %.1fms (cheap %.1fms), shed %d, cache %.0f%%\n",
			res.Plan, res.Requests, res.ThroughputRPS, res.Overall.P99MS, res.Cheap.P99MS,
			res.Shed, 100*res.CacheHitRatio)
		rep.Mixes = append(rep.Mixes, res)
	}
	srv.Close()

	// The A/B: identical saturation plan, fresh server per arm so
	// neither inherits the other's warm cache or learned estimator.
	cmp := &Comparison{Plan: "saturation"}
	for _, arm := range []struct {
		admission bool
		out       **Result
	}{
		{false, &cmp.AdmissionOff},
		{true, &cmp.AdmissionOn},
	} {
		srv, err := suiteServer(g, arm.admission)
		if err != nil {
			return nil, err
		}
		plan := saturationPlan(cfg.Nodes, cfg.Seed, time.Duration(float64(base)*cfg.Scale))
		fmt.Fprintf(cfg.Log, "replaying %s with admission=%v\n", plan.Name, arm.admission)
		res, err := Replay(ctx, srv.URL, plan, cfg.Seed)
		srv.Close()
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(cfg.Log, "  cheap p99 %.1fms, analytical p99 %.1fms, shed %d\n",
			res.Cheap.P99MS, res.Analytical.P99MS, res.Shed)
		*arm.out = res
	}
	cmp.CheapP99OnMS = cmp.AdmissionOn.Cheap.P99MS
	cmp.CheapP99OffMS = cmp.AdmissionOff.Cheap.P99MS
	cmp.ShedsAdmission = cmp.AdmissionOn.Shed
	if cmp.CheapP99OnMS > 0 {
		cmp.CheapP99Ratio = cmp.CheapP99OffMS / cmp.CheapP99OnMS
	}
	rep.Comparison = cmp
	return rep, nil
}

// EmbedBaseline attaches the previous benchmark report file verbatim.
func (r *SuiteReport) EmbedBaseline(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if !json.Valid(raw) {
		return fmt.Errorf("baseline %s is not valid JSON", path)
	}
	r.Baseline = json.RawMessage(raw)
	return nil
}

// WriteJSON writes the report, indented, to path.
func (r *SuiteReport) WriteJSON(path string) error {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
