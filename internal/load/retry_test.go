package load

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// shedThenServe answers 429 + Retry-After for the first n requests, 200
// afterwards — the shape of a server recovering from a saturation spike.
func shedThenServe(n int64) (*httptest.Server, *atomic.Int64) {
	var served atomic.Int64
	var total atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if total.Add(1) <= n {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"overloaded"}`))
			return
		}
		served.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"columns":[],"rows":[],"row_count":0,"timed_out":false}`))
	})
	return httptest.NewServer(h), &served
}

// TestRetryRecoversFromSheds: with retries enabled, requests shed during
// the spike retry (honoring Retry-After) and end OK; the result reports
// how many succeeded only thanks to a retry.
func TestRetryRecoversFromSheds(t *testing.T) {
	srv, served := shedThenServe(3)
	defer srv.Close()

	pol := RetryPolicy{MaxRetries: 4, BaseBackoff: 5 * time.Millisecond, MaxBackoff: 50 * time.Millisecond}
	budgets := &retryBudgets{}
	budgets.cheap.Store(100)
	budgets.analytical.Store(100)
	client := &http.Client{Timeout: 5 * time.Second}

	var samples []sample
	for i := 0; i < 5; i++ {
		samples = append(samples, post(t.Context(), client, srv.URL, CheapQuery(1, 2), pol, budgets, int64(i)))
	}
	r := summarize("retry", samples, time.Second)
	if r.OK != 5 {
		t.Fatalf("ok = %d of 5 (shed %d, errors %d)", r.OK, r.Shed, r.Errors)
	}
	if r.Retries == 0 || r.RetriedOK == 0 {
		t.Fatalf("retries=%d retried_ok=%d, want both > 0", r.Retries, r.RetriedOK)
	}
	if served.Load() != 5 {
		t.Fatalf("server served %d, want 5", served.Load())
	}
}

// TestRetryBudgetDryTurnsShedsTerminal: once the per-class budget is
// spent, remaining 429s are terminal sheds (flagged budget-dry) and land
// in the shed-latency bucket instead of hammering the server.
func TestRetryBudgetDryTurnsShedsTerminal(t *testing.T) {
	srv, _ := shedThenServe(1 << 30) // always shedding
	defer srv.Close()

	pol := RetryPolicy{MaxRetries: 3, Budget: 2, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond}
	budgets := &retryBudgets{}
	budgets.cheap.Store(pol.Budget)
	budgets.analytical.Store(pol.Budget)
	client := &http.Client{Timeout: 5 * time.Second}

	var samples []sample
	for i := 0; i < 4; i++ {
		samples = append(samples, post(t.Context(), client, srv.URL, CheapQuery(1, 2), pol, budgets, int64(i)))
	}
	r := summarize("budget", samples, time.Second)
	if r.Shed != 4 {
		t.Fatalf("shed = %d of 4", r.Shed)
	}
	if r.Retries != 2 {
		t.Fatalf("retries = %d, want exactly the budget (2)", r.Retries)
	}
	if r.RetryBudgetDry == 0 {
		t.Fatal("no request reported a dry retry budget")
	}
	if r.ShedLatency.Count != 4 {
		t.Fatalf("shed latency bucket has %d samples, want 4", r.ShedLatency.Count)
	}
	if r.Overall.Count != 0 {
		t.Fatalf("shed latencies leaked into the OK bucket: %+v", r.Overall)
	}
}

// drainThenServe answers 503 + Retry-After for the first n requests,
// 200 afterwards — the shape of a rolling restart: the old process
// drains, then its replacement starts answering on the same address.
func drainThenServe(n int64) (*httptest.Server, *atomic.Int64) {
	var served atomic.Int64
	var total atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if total.Add(1) <= n {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"draining"}`))
			return
		}
		served.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"columns":[],"rows":[],"row_count":0,"timed_out":false}`))
	})
	return httptest.NewServer(h), &served
}

// TestRetryRecoversFromDraining: a 503 draining answer is retried under
// the same policy and Retry-After handling as a 429 shed, so a client
// rides through a rolling restart without surfacing errors.
func TestRetryRecoversFromDraining(t *testing.T) {
	srv, served := drainThenServe(3)
	defer srv.Close()

	pol := RetryPolicy{MaxRetries: 4, BaseBackoff: 5 * time.Millisecond, MaxBackoff: 50 * time.Millisecond}
	budgets := &retryBudgets{}
	budgets.cheap.Store(100)
	budgets.analytical.Store(100)
	client := &http.Client{Timeout: 5 * time.Second}

	var samples []sample
	for i := 0; i < 5; i++ {
		samples = append(samples, post(t.Context(), client, srv.URL, CheapQuery(1, 2), pol, budgets, int64(i)))
	}
	r := summarize("drain", samples, time.Second)
	if r.OK != 5 {
		t.Fatalf("ok = %d of 5 (unavailable %d, errors %d)", r.OK, r.Unavailable, r.Errors)
	}
	if r.Retries == 0 || r.RetriedOK == 0 {
		t.Fatalf("retries=%d retried_ok=%d, want both > 0", r.Retries, r.RetriedOK)
	}
	if served.Load() != 5 {
		t.Fatalf("server served %d, want 5", served.Load())
	}
}

// TestDrainingBudgetSharedWithSheds: 503 retries draw from the same
// per-class budget as 429 retries; once it is dry, remaining 503s are
// terminal, counted as Unavailable (not Shed, not Errors), and join the
// shed-latency bucket.
func TestDrainingBudgetSharedWithSheds(t *testing.T) {
	srv, _ := drainThenServe(1 << 30) // always draining
	defer srv.Close()

	pol := RetryPolicy{MaxRetries: 3, Budget: 2, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond}
	budgets := &retryBudgets{}
	budgets.cheap.Store(pol.Budget)
	budgets.analytical.Store(pol.Budget)
	client := &http.Client{Timeout: 5 * time.Second}

	var samples []sample
	for i := 0; i < 4; i++ {
		samples = append(samples, post(t.Context(), client, srv.URL, CheapQuery(1, 2), pol, budgets, int64(i)))
	}
	r := summarize("drain-budget", samples, time.Second)
	if r.Unavailable != 4 {
		t.Fatalf("unavailable = %d of 4 (shed %d, errors %d)", r.Unavailable, r.Shed, r.Errors)
	}
	if r.Shed != 0 || r.Errors != 0 {
		t.Fatalf("503s misclassified: shed=%d errors=%d", r.Shed, r.Errors)
	}
	if r.Retries != 2 {
		t.Fatalf("retries = %d, want exactly the budget (2)", r.Retries)
	}
	if r.RetryBudgetDry == 0 {
		t.Fatal("no request reported a dry retry budget")
	}
	if r.ShedLatency.Count != 4 {
		t.Fatalf("refusal latency bucket has %d samples, want 4", r.ShedLatency.Count)
	}
	if r.Overall.Count != 0 {
		t.Fatalf("503 latencies leaked into the OK bucket: %+v", r.Overall)
	}
}

// TestRetryDisabledByZeroPolicy: the zero RetryPolicy (what Replay and
// the benchmark suite use) treats every 429 as terminal.
func TestRetryDisabledByZeroPolicy(t *testing.T) {
	srv, _ := shedThenServe(1 << 30)
	defer srv.Close()
	client := &http.Client{Timeout: 5 * time.Second}
	s := post(t.Context(), client, srv.URL, CheapQuery(1, 2), RetryPolicy{}, nil, 1)
	if s.code != http.StatusTooManyRequests || s.retries != 0 {
		t.Fatalf("zero policy: code=%d retries=%d", s.code, s.retries)
	}
}
