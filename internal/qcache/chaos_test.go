package qcache

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"ctpquery/internal/fault"
)

// TestChaosLeaderPanicFailsWaiters is the -race regression test for the
// singleflight panic contract: a panicking leader must fail its waiters
// promptly (each receives the contained error rather than retrying the
// crashing execution), and the next identical query must re-execute
// cleanly because nothing was cached.
func TestChaosLeaderPanicFailsWaiters(t *testing.T) {
	const nWaiters = 8
	c := New(1<<20, 0)
	k := key("chaos")

	release := make(chan struct{})
	leaderIn := make(chan struct{})
	var leaderErr error
	var leaderDone sync.WaitGroup
	leaderDone.Add(1)
	go func() {
		defer leaderDone.Done()
		_, _, _, leaderErr = c.Do(context.Background(), k, func() (any, int64, bool, error) {
			close(leaderIn)
			<-release
			panic("leader blew up")
		})
	}()
	<-leaderIn // the leader is executing; everyone below becomes a waiter

	errs := make(chan error, nWaiters)
	var wg sync.WaitGroup
	for i := 0; i < nWaiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, coalesced, err := c.Do(context.Background(), k, func() (any, int64, bool, error) {
				t.Error("waiter re-executed after a leader panic")
				return nil, 0, false, nil
			})
			if !coalesced {
				t.Error("waiter reported coalesced=false")
			}
			errs <- err
		}()
	}

	// Wait until all N are actually parked on the in-flight call before
	// releasing the panic, so this test exercises waiters, not retries.
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.mu.Lock()
		cl := c.inflight[k]
		c.mu.Unlock()
		if cl != nil && cl.waiters.Load() == nWaiters {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("waiters never parked on the in-flight call")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	leaderDone.Wait()

	var pe *fault.PanicError
	if !errors.As(leaderErr, &pe) {
		t.Fatalf("leader got %v, want *fault.PanicError", leaderErr)
	}
	close(errs)
	n := 0
	for err := range errs {
		n++
		if !errors.As(err, &pe) {
			t.Fatalf("waiter got %v, want the leader's *fault.PanicError", err)
		}
	}
	if n != nWaiters {
		t.Fatalf("%d waiter errors, want %d", n, nWaiters)
	}

	// Nothing was cached, the key is released: the next identical query
	// re-executes cleanly and its result is admitted.
	v, hit, _, err := c.Do(context.Background(), k, func() (any, int64, bool, error) {
		return "clean", 8, true, nil
	})
	if err != nil || hit || v.(string) != "clean" {
		t.Fatalf("post-panic re-execution: v=%v hit=%v err=%v", v, hit, err)
	}
	if v, ok := c.Peek(k); !ok || v.(string) != "clean" {
		t.Fatalf("clean result was not cached (ok=%v v=%v)", ok, v)
	}
}

// TestChaosLeadProbePanic drives the same contract through the
// registered probe point instead of a cooperating exec function, the way
// the -fault flag would.
func TestChaosLeadProbePanic(t *testing.T) {
	defer fault.Reset()
	if err := fault.Arm("qcache.singleflight.lead", fault.Fault{Kind: fault.Panic}); err != nil {
		t.Fatal(err)
	}
	c := New(1<<20, 0)
	_, _, _, err := c.Do(context.Background(), key("probe"), func() (any, int64, bool, error) {
		return "v", 1, true, nil
	})
	if !fault.IsInjected(err) {
		t.Fatalf("err = %v, want an injected-fault PanicError", err)
	}
	fault.Reset()
	v, _, _, err := c.Do(context.Background(), key("probe"), func() (any, int64, bool, error) {
		return "v", 1, true, nil
	})
	if err != nil || v.(string) != "v" {
		t.Fatalf("after disarm: v=%v err=%v", v, err)
	}
}
