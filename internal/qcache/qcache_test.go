package qcache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ctpquery/internal/fault"
)

func key(s string) Key { return Key{Graph: 1, Query: s, Opts: "o"} }

// charge is what the cache bills an admitted entry: payload + key
// strings + fixed overhead.
func charge(k Key, size int64) int64 {
	return size + int64(len(k.Query)) + int64(len(k.Opts)) + EntryOverhead
}

// doVal runs a trivial admitted execution returning v with size.
func doVal(t *testing.T, c *Cache, k Key, v string, size int64) (string, bool, bool) {
	t.Helper()
	val, hit, coal, err := c.Do(context.Background(), k, func() (any, int64, bool, error) {
		return v, size, true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return val.(string), hit, coal
}

func TestHitMiss(t *testing.T) {
	c := New(1<<20, 0)
	if v, hit, _ := doVal(t, c, key("q"), "r1", 10); hit || v != "r1" {
		t.Fatalf("first call: hit=%v v=%q", hit, v)
	}
	// A hit returns the stored value, not the new execution's.
	if v, hit, _ := doVal(t, c, key("q"), "r2", 10); !hit || v != "r1" {
		t.Fatalf("second call: hit=%v v=%q, want stored r1", hit, v)
	}
	if v, hit, _ := doVal(t, c, key("other"), "r3", 10); hit || v != "r3" {
		t.Fatalf("distinct key: hit=%v v=%q", hit, v)
	}
	st := c.Stats()
	wantBytes := charge(key("q"), 10) + charge(key("other"), 10)
	if st.Hits != 1 || st.Misses != 2 || st.Entries != 2 || st.Bytes != wantBytes {
		t.Fatalf("stats = %+v, want %d bytes", st, wantBytes)
	}
}

func TestAdmissionRejected(t *testing.T) {
	c := New(1<<20, 0)
	execs := 0
	run := func() (string, bool) {
		v, hit, _, err := c.Do(context.Background(), key("q"), func() (any, int64, bool, error) {
			execs++
			return fmt.Sprintf("r%d", execs), 8, false, nil // never admit
		})
		if err != nil {
			t.Fatal(err)
		}
		return v.(string), hit
	}
	if v, hit := run(); hit || v != "r1" {
		t.Fatalf("first: hit=%v v=%q", hit, v)
	}
	// Not admitted, so the next call re-executes.
	if v, hit := run(); hit || v != "r2" {
		t.Fatalf("second: hit=%v v=%q, want re-execution", hit, v)
	}
	if st := c.Stats(); st.Rejected != 2 || st.Entries != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	// Budget for two 40-byte entries (incl. key + fixed overhead) with
	// headroom, but not three.
	perEntry := charge(key("a"), 40)
	c := New(2*perEntry+perEntry/2, 0)
	doVal(t, c, key("a"), "a", 40)
	doVal(t, c, key("b"), "b", 40)
	doVal(t, c, key("a"), "", 0) // touch a so b is the LRU victim
	doVal(t, c, key("c"), "c", 40)
	if _, ok := c.get(key("b")); ok {
		t.Error("b survived eviction, want LRU victim")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.get(key(k)); !ok {
			t.Errorf("%s evicted, want kept", k)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Bytes != 2*perEntry {
		t.Fatalf("stats = %+v, want %d bytes", st, 2*perEntry)
	}

	// An entry larger than the whole budget is rejected, not stored by
	// evicting everything else.
	doVal(t, c, key("huge"), "h", 1000)
	if _, ok := c.get(key("huge")); ok {
		t.Error("over-budget entry stored")
	}
	if _, ok := c.get(key("a")); !ok {
		t.Error("over-budget admission evicted existing entries")
	}
}

func TestTTLExpiry(t *testing.T) {
	c := New(1<<20, time.Minute)
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }

	doVal(t, c, key("q"), "r1", 10)
	now = now.Add(30 * time.Second)
	if _, hit, _ := doVal(t, c, key("q"), "r2", 10); !hit {
		t.Fatal("entry expired before its TTL")
	}
	now = now.Add(31 * time.Second)
	if v, hit, _ := doVal(t, c, key("q"), "r2", 10); hit || v != "r2" {
		t.Fatalf("after TTL: hit=%v v=%q, want re-execution", hit, v)
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestSingleflight: K concurrent callers of one key produce exactly one
// execution; everyone gets the leader's value.
func TestSingleflight(t *testing.T) {
	c := New(1<<20, 0)
	const k = 32
	var execs atomic.Int32
	release := make(chan struct{})
	started := make(chan struct{})

	var wg sync.WaitGroup
	vals := make([]string, k)
	hits := make([]bool, k)
	coals := make([]bool, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, hit, coal, err := c.Do(context.Background(), key("q"), func() (any, int64, bool, error) {
				close(started) // only the single leader may reach this
				execs.Add(1)
				<-release
				return "leader", 8, true, nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			vals[i], hits[i], coals[i] = v.(string), hit, coal
		}(i)
	}
	<-started
	// Give waiters a moment to pile onto the in-flight call, then let the
	// leader finish. Latecomers that arrive after completion hit the cache
	// instead — either way exactly one execution happened.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()

	if n := execs.Load(); n != 1 {
		t.Fatalf("%d executions, want 1", n)
	}
	leaders := 0
	for i := range vals {
		if vals[i] != "leader" {
			t.Fatalf("caller %d got %q", i, vals[i])
		}
		if !hits[i] && !coals[i] {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("%d leaders, want 1", leaders)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits+st.Coalesced != k-1 {
		t.Fatalf("stats = %+v", st)
	}
}

// A waiter whose own context is canceled stops waiting; the leader's
// execution and admission proceed regardless.
func TestWaiterCancellation(t *testing.T) {
	c := New(1<<20, 0)
	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		c.Do(context.Background(), key("q"), func() (any, int64, bool, error) {
			close(started)
			<-release
			return "v", 8, true, nil
		})
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, _, err := c.Do(ctx, key("q"), func() (any, int64, bool, error) {
			t.Error("canceled waiter executed")
			return nil, 0, false, nil
		})
		done <- err
	}()
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter error = %v, want context.Canceled", err)
	}

	close(release)
	// The leader still completed and admitted.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, ok := c.get(key("q")); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("leader's value never admitted")
		}
		time.Sleep(time.Millisecond)
	}
}

// A failing leader must not poison its waiters: they retry instead of
// inheriting the leader's (context) error.
func TestLeaderErrorWaiterRetries(t *testing.T) {
	c := New(1<<20, 0)
	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		c.Do(context.Background(), key("q"), func() (any, int64, bool, error) {
			close(started)
			<-release
			return nil, 0, false, context.Canceled
		})
	}()
	<-started

	waiter := make(chan struct{})
	go func() {
		v, _, coal, err := c.Do(context.Background(), key("q"), func() (any, int64, bool, error) {
			return "retried", 8, true, nil
		})
		// The waiter re-executed itself, so it reports coalesced=false:
		// it did the work, and servers must account its search effort.
		if err != nil || v.(string) != "retried" || coal {
			t.Errorf("waiter after leader error: v=%v coalesced=%v err=%v", v, coal, err)
		}
		close(waiter)
	}()
	time.Sleep(5 * time.Millisecond) // let the waiter attach
	close(release)
	select {
	case <-waiter:
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never completed after leader error")
	}
}

// A leader's inadmissible (partial) result is served to the leader
// alone: waiters re-execute rather than being handed a partial their own
// budget might have completed.
func TestPartialNotSharedWithWaiters(t *testing.T) {
	c := New(1<<20, 0)
	release := make(chan struct{})
	started := make(chan struct{})
	leader := make(chan string, 1)
	go func() {
		v, _, _, err := c.Do(context.Background(), key("q"), func() (any, int64, bool, error) {
			close(started)
			<-release
			return "partial", 8, false, nil // e.g. the run timed out
		})
		if err != nil {
			t.Error(err)
		}
		leader <- v.(string)
	}()
	<-started

	waiter := make(chan struct{})
	go func() {
		defer close(waiter)
		v, hit, coal, err := c.Do(context.Background(), key("q"), func() (any, int64, bool, error) {
			return "complete", 8, true, nil
		})
		if err != nil {
			t.Error(err)
			return
		}
		if v.(string) != "complete" || hit || coal {
			t.Errorf("waiter got v=%v hit=%v coalesced=%v, want its own complete re-execution", v, hit, coal)
		}
	}()
	time.Sleep(5 * time.Millisecond) // let the waiter attach
	close(release)
	select {
	case <-waiter:
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never completed")
	}
	if v := <-leader; v != "partial" {
		t.Errorf("leader got %q, want its own partial", v)
	}
}

// A panicking execution must not wedge the key: the in-flight slot is
// released, waiters retry, and the next caller executes normally.
func TestPanicReleasesKey(t *testing.T) {
	c := New(1<<20, 0)
	_, _, _, err := c.Do(context.Background(), key("q"), func() (any, int64, bool, error) {
		panic("engine blew up")
	})
	var pe *fault.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("leader got %v, want a contained *fault.PanicError", err)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		v, hit, _, err := c.Do(context.Background(), key("q"), func() (any, int64, bool, error) {
			return "recovered", 8, true, nil
		})
		if err != nil || hit || v.(string) != "recovered" {
			t.Errorf("post-panic call: v=%v hit=%v err=%v", v, hit, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("key wedged after a panicking execution")
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Errorf("stats after recovery = %+v", st)
	}
}

// Hammer the cache from many goroutines across a small key space; the
// -race build is the assertion.
func TestConcurrentMixedLoad(t *testing.T) {
	c := New(4096, 50*time.Millisecond)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				k := key(fmt.Sprintf("q%d", j%7))
				c.Do(context.Background(), k, func() (any, int64, bool, error) {
					return "v", 512, j%3 != 0, nil
				})
				c.get(k)
				c.Stats()
			}
		}(i)
	}
	wg.Wait()
	st := c.Stats()
	if st.Bytes > 4096 {
		t.Fatalf("budget exceeded: %+v", st)
	}
}
