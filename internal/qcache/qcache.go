// Package qcache is the query-result cache of the serving path: a
// concurrency-safe, byte-budgeted LRU with optional TTL, fronted by
// singleflight admission.
//
// The cache exploits two invariants of the surrounding system. First, a
// graph.Graph is frozen at Build time and carries a content fingerprint,
// so (fingerprint, canonical query text, effective engine options) fully
// determines a complete query result — there is nothing to invalidate,
// ever; a new graph is a new fingerprint and the old entries simply age
// out of the LRU. Second, the EQL printer round-trips
// (ParseQuery(q.String()) == q), so the canonical key text is free.
//
// Singleflight is what actually protects a server under thundering-herd
// load: N concurrent identical queries collapse into one engine execution
// and N-1 waiters. Admission is the caller's decision per execution —
// partial results (timed out, canceled, or truncated for reasons the
// query's own text cannot explain) must never be cached, because serving
// a stale partial as if it were the full answer would be a correctness
// bug, not a performance one.
package qcache

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"
	"time"

	"ctpquery/internal/fault"
)

// probeLead fires inside every singleflight leader execution (inert
// unless armed via internal/fault), so chaos tests can crash a leader
// without cooperating exec functions.
var probeLead = fault.Register("qcache.singleflight.lead")

// Key identifies one cacheable execution. Two executions with equal Keys
// must produce interchangeable results; see the package comment for why
// the three components suffice.
type Key struct {
	// Graph is the graph's content fingerprint (graph.Graph.Fingerprint).
	Graph uint64
	// Query is the canonical query text (Query.String()).
	Query string
	// Opts digests every engine option that can change the result.
	Opts string
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits      int64 // lookups served from a stored entry
	Misses    int64 // lookups that executed (singleflight leaders)
	Coalesced int64 // lookups that waited on a leader instead of executing
	Evictions int64 // entries dropped by the byte budget or TTL
	Rejected  int64 // executions whose result was not admitted
	Entries   int   // stored entries
	Bytes     int64 // stored payload bytes (caller-estimated)
	MaxBytes  int64 // configured budget
}

// Cache is a byte-budgeted LRU of query results with singleflight
// admission. All methods are safe for concurrent use.
type Cache struct {
	maxBytes int64
	ttl      time.Duration
	now      func() time.Time // injectable clock for TTL tests

	mu       sync.Mutex
	ll       *list.List // front = most recently used; values are *entry
	entries  map[Key]*list.Element
	inflight map[Key]*call
	bytes    int64

	hits, misses, coalesced, evictions, rejected int64
}

// entry is one stored result.
type entry struct {
	key     Key
	val     any
	size    int64
	expires time.Time // zero = never
}

// call is one in-flight execution; waiters block on done. admitted
// records whether the leader's result was cacheable: waiters share only
// admitted results — an inadmissible (partial) result belongs to the
// leader alone — so otherwise waiters retry. The one exception is a
// panicking leader (panicked set): its waiters receive the contained
// error instead of retrying, because re-executing the very call that
// just crashed would turn one panic into N.
type call struct {
	done     chan struct{}
	val      any
	err      error
	admitted bool
	panicked bool
	waiters  atomic.Int32 // callers that blocked on done (test observability)
}

// New creates a cache holding at most maxBytes of caller-estimated
// payload (maxBytes must be > 0). A non-zero ttl additionally expires
// entries that old, for deployments that prefer bounded staleness even
// though graph immutability makes entries valid forever.
func New(maxBytes int64, ttl time.Duration) *Cache {
	if maxBytes <= 0 {
		panic("qcache: maxBytes must be > 0")
	}
	return &Cache{
		maxBytes: maxBytes,
		ttl:      ttl,
		now:      time.Now,
		ll:       list.New(),
		entries:  make(map[Key]*list.Element),
		inflight: make(map[Key]*call),
	}
}

// Do returns the result for key, executing exec at most once across all
// concurrent callers of the same key.
//
// exec returns the value, its approximate payload size in bytes, and
// whether the value may be admitted to the cache; a partial result must
// return admit=false so the next request re-executes instead of being
// served a stale partial.
//
// The flags report how this call was served: hit means a stored entry,
// coalesced means the call waited on another caller's execution and
// received its result. Waiters share ONLY admitted results — a leader's
// partial (admit=false) result is returned to the leader alone, because
// a waiter's own budget might have afforded the complete answer; such
// waiters retry, re-entering Do, where the first becomes the next
// leader. Likewise a waiter never inherits a leader's ordinary error
// (typically the leader's own context being canceled): it retries, so
// one request's cancellation cannot poison the others. The exception is
// a leader that PANICKED: its waiters receive the contained
// *fault.PanicError promptly instead of re-executing the call that just
// crashed. A waiter whose own ctx is canceled stops waiting and returns
// ctx.Err(). A caller that retried and then executed reports
// coalesced=false: it did the work itself.
func (c *Cache) Do(ctx context.Context, key Key, exec func() (val any, size int64, admit bool, err error)) (val any, hit, coalesced bool, err error) {
	for {
		c.mu.Lock()
		if el, ok := c.entries[key]; ok {
			e := el.Value.(*entry)
			if e.expires.IsZero() || c.now().Before(e.expires) {
				c.ll.MoveToFront(el)
				c.hits++
				c.mu.Unlock()
				return e.val, true, false, nil
			}
			c.removeLocked(el)
			c.evictions++
		}
		if cl, ok := c.inflight[key]; ok {
			cl.waiters.Add(1)
			c.mu.Unlock()
			select {
			case <-cl.done:
				if cl.err == nil && cl.admitted {
					c.mu.Lock()
					c.coalesced++
					c.mu.Unlock()
					return cl.val, false, true, nil
				}
				if cl.panicked {
					// The leader panicked. Fail the waiters promptly with
					// the contained error rather than retrying: the same
					// execution would likely crash again, once per waiter.
					// Nothing was stored, so the NEXT identical query
					// re-executes cleanly.
					c.mu.Lock()
					c.coalesced++
					c.mu.Unlock()
					return nil, false, true, cl.err
				}
				// The leader failed or produced a partial result this
				// waiter must not be served. Retry; the loop makes this
				// waiter the next leader (or a waiter on one).
				if ctx.Err() != nil {
					return nil, false, true, ctx.Err()
				}
				continue
			case <-ctx.Done():
				return nil, false, true, ctx.Err()
			}
		}
		cl := &call{done: make(chan struct{})}
		c.inflight[key] = cl
		c.misses++
		c.mu.Unlock()

		return c.lead(key, cl, exec)
	}
}

// lead runs the leader's execution for key. The deferred cleanup runs
// even if exec panics, so a panicking engine cannot wedge the key: the
// in-flight slot is always released and done always closed. A panic is
// contained here into a *fault.PanicError returned to the leader AND
// its waiters (see call.panicked); nothing is stored, so the entry is
// never poisoned and the next identical query re-executes.
func (c *Cache) lead(key Key, cl *call, exec func() (val any, size int64, admit bool, err error)) (val any, hit, coalesced bool, err error) {
	var size int64
	var admit, completed bool
	defer func() {
		if !completed && err == nil {
			if rec := recover(); rec != nil {
				cl.panicked = true
				err = fault.Recovered("qcache: singleflight leader", rec)
			}
		}
		cl.val, cl.err, cl.admitted = val, err, admit
		c.mu.Lock()
		delete(c.inflight, key)
		switch {
		case !completed || err != nil:
			// Panicked or failed: nothing to store or count.
		case admit:
			c.addLocked(key, val, size)
		default:
			c.rejected++
		}
		c.mu.Unlock()
		close(cl.done)
	}()
	probeLead.Hit()
	val, size, admit, err = exec()
	completed = true
	return val, false, false, err
}

// Peek returns the stored value for key without executing or waiting on
// anything. A successful peek counts as a hit (it IS a serve from the
// cache — admission control uses it to let warm requests bypass the
// wait queue entirely); a miss counts nothing, because the caller's
// follow-up Do accounts for how the request was ultimately served.
func (c *Cache) Peek(key Key) (val any, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	e := el.Value.(*entry)
	if !e.expires.IsZero() && !c.now().Before(e.expires) {
		c.removeLocked(el)
		c.evictions++
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	return e.val, true
}

// get returns the stored value for key without executing anything. It is
// a test seam, deliberately unexported: it does not count hits, so a
// production caller adopting it would silently skew the operator-facing
// hit rate — Do is the read API.
func (c *Cache) get(key Key) (val any, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	e := el.Value.(*entry)
	if !e.expires.IsZero() && !c.now().Before(e.expires) {
		c.removeLocked(el)
		c.evictions++
		return nil, false
	}
	c.ll.MoveToFront(el)
	return e.val, true
}

// Shed evicts LRU entries until the stored bytes fit within frac of the
// byte budget (frac 0 empties the cache) and returns the bytes freed.
// The degradation watchdog calls it under memory pressure; in-flight
// executions are unaffected.
func (c *Cache) Shed(frac float64) int64 {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	target := int64(float64(c.maxBytes) * frac)
	c.mu.Lock()
	defer c.mu.Unlock()
	var freed int64
	for c.bytes > target {
		back := c.ll.Back()
		if back == nil {
			break
		}
		freed += back.Value.(*entry).size
		c.removeLocked(back)
		c.evictions++
	}
	return freed
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Coalesced: c.coalesced,
		Evictions: c.evictions,
		Rejected:  c.rejected,
		Entries:   c.ll.Len(),
		Bytes:     c.bytes,
		MaxBytes:  c.maxBytes,
	}
}

// EntryOverhead is the fixed per-entry charge against the byte budget,
// approximating the entry struct, its list element, and its map bucket
// share. The key strings are charged at their length on top, so a
// workload of huge query texts with tiny results cannot blow past the
// operator's memory bound uncounted.
const EntryOverhead = 160

// addLocked stores val under key at the LRU front and evicts from the
// back until the budget holds. The charged size is the caller-estimated
// payload plus the key strings plus EntryOverhead; entries larger than
// the whole budget are rejected rather than evicting everything for one
// entry.
func (c *Cache) addLocked(key Key, val any, size int64) {
	if size < 0 {
		size = 0
	}
	size += int64(len(key.Query)) + int64(len(key.Opts)) + EntryOverhead
	if size > c.maxBytes {
		c.rejected++
		return
	}
	if el, ok := c.entries[key]; ok {
		// Sequential re-admission after an expiry or a non-admitted run
		// raced with another leader; replace the stored value.
		c.removeLocked(el)
	}
	e := &entry{key: key, val: val, size: size}
	if c.ttl > 0 {
		e.expires = c.now().Add(c.ttl)
	}
	c.entries[key] = c.ll.PushFront(e)
	c.bytes += size
	for c.bytes > c.maxBytes {
		back := c.ll.Back()
		if back == nil {
			break
		}
		c.removeLocked(back)
		c.evictions++
	}
}

// removeLocked unlinks one entry and returns its bytes to the budget.
func (c *Cache) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.entries, e.key)
	c.bytes -= e.size
}
