package eql

import (
	"fmt"
	"strconv"
	"strings"
	"time"
	"unicode"
)

// Parse reads the textual form of an EQL query:
//
//	SELECT ?x ?y ?w
//	WHERE {
//	  ?x citizenOf USA .
//	  ?y citizenOf France .
//	  FILTER type(?x) = "entrepreneur" .
//	  FILTER label(?y) ~ "*lice" .
//	  CONNECT ?x ?y ?z AS ?w MAX 8 LABEL founded investsIn SCORE size TOP 3 .
//	}
//
// Statements are separated by '.', as in SPARQL. A bare constant in an
// edge pattern or CONNECT member is the paper's shorthand for a
// label-equality predicate over an anonymous variable. FILTER attaches an
// extra condition prop(?v) op value to every occurrence of ?v. CONNECT
// introduces a CTP whose tree variable follows AS; any CTP filters (UNI,
// LABEL l1 l2 ..., MAX n, SCORE name [TOP k], LIMIT n, TIMEOUT d) trail it.
// SELECT * projects every variable. Edge patterns sharing variables are
// grouped into maximal connected BGPs (Definition 2.4).
func Parse(input string) (*Query, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

type tokKind int

const (
	tkEOF    tokKind = iota
	tkVar            // ?name
	tkWord           // bare identifier or number
	tkString         // "quoted"
	tkPunct          // { } . ( ) = < <= ~
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func lex(s string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '#': // comment to end of line
			for i < len(s) && s[i] != '\n' {
				i++
			}
		case c == '?':
			j := i + 1
			for j < len(s) && isIdentByte(s[j]) {
				j++
			}
			if j == i+1 {
				return nil, fmt.Errorf("eql: empty variable name at offset %d", i)
			}
			toks = append(toks, token{tkVar, s[i+1 : j], i})
			i = j
		case c == '"':
			j := i + 1
			var sb strings.Builder
			for j < len(s) && s[j] != '"' {
				if s[j] == '\\' && j+1 < len(s) {
					j++
				}
				sb.WriteByte(s[j])
				j++
			}
			if j >= len(s) {
				return nil, fmt.Errorf("eql: unterminated string at offset %d", i)
			}
			toks = append(toks, token{tkString, sb.String(), i})
			i = j + 1
		case c == '<':
			if i+1 < len(s) && s[i+1] == '=' {
				toks = append(toks, token{tkPunct, "<=", i})
				i += 2
			} else {
				toks = append(toks, token{tkPunct, "<", i})
				i++
			}
		case strings.ContainsRune("{}.()=~,", rune(c)):
			toks = append(toks, token{tkPunct, string(c), i})
			i++
		case isIdentByte(c):
			j := i
			for j < len(s) && isIdentByte(s[j]) {
				j++
			}
			toks = append(toks, token{tkWord, s[i:j], i})
			i = j
		default:
			return nil, fmt.Errorf("eql: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{tkEOF, "", len(s)})
	return toks, nil
}

func isIdentByte(c byte) bool {
	return c == '_' || c == '-' || c == ':' || c == '*' ||
		unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) isKw(t token, kw string) bool {
	return t.kind == tkWord && strings.EqualFold(t.text, kw)
}

func (p *parser) expectKw(kw string) error {
	t := p.next()
	if !p.isKw(t, kw) {
		return fmt.Errorf("eql: expected %s at offset %d, got %q", kw, t.pos, t.text)
	}
	return nil
}

func (p *parser) expectPunct(s string) error {
	t := p.next()
	if t.kind != tkPunct || t.text != s {
		return fmt.Errorf("eql: expected %q at offset %d, got %q", s, t.pos, t.text)
	}
	return nil
}

var ctpFilterKeywords = map[string]bool{
	"uni": true, "label": true, "max": true, "score": true,
	"top": true, "limit": true, "timeout": true,
}

func (p *parser) parseQuery() (*Query, error) {
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	var head []string
	star := false
	for {
		t := p.peek()
		if t.kind == tkVar {
			head = append(head, t.text)
			p.next()
			continue
		}
		if t.kind == tkPunct && t.text == "*" || p.isKw(t, "*") {
			star = true
			p.next()
			continue
		}
		break
	}
	if err := p.expectKw("WHERE"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}

	var patterns []EdgePattern
	var ctps []CTP
	conds := map[string][]Condition{} // FILTER conditions by variable

	for {
		t := p.peek()
		if t.kind == tkPunct && t.text == "}" {
			p.next()
			break
		}
		if t.kind == tkEOF {
			return nil, fmt.Errorf("eql: unterminated WHERE block")
		}
		switch {
		case p.isKw(t, "CONNECT"):
			p.next()
			c, err := p.parseCTP()
			if err != nil {
				return nil, err
			}
			ctps = append(ctps, c)
		case p.isKw(t, "FILTER"):
			p.next()
			v, cond, err := p.parseFilterCond()
			if err != nil {
				return nil, err
			}
			conds[v] = append(conds[v], cond)
		default:
			ep, err := p.parseEdgePattern()
			if err != nil {
				return nil, err
			}
			patterns = append(patterns, ep)
		}
		// Optional '.' separator.
		if t := p.peek(); t.kind == tkPunct && t.text == "." {
			p.next()
		}
	}
	// Optional solution modifier: LIMIT n after the WHERE block.
	limit := 0
	if t := p.peek(); p.isKw(t, "LIMIT") {
		p.next()
		n, err := p.parseInt("LIMIT")
		if err != nil {
			return nil, err
		}
		limit = n
	}
	if t := p.next(); t.kind != tkEOF {
		return nil, fmt.Errorf("eql: trailing input at offset %d: %q", t.pos, t.text)
	}

	// Attach FILTER conditions to every occurrence of each variable.
	apply := func(pr *Predicate) {
		if pr.Var == "" {
			return
		}
		for _, c := range conds[pr.Var] {
			pr.Conds = append(pr.Conds, c)
		}
	}
	for i := range patterns {
		apply(&patterns[i].Src)
		apply(&patterns[i].Edge)
		apply(&patterns[i].Dst)
	}
	for i := range ctps {
		for j := range ctps[i].Members {
			apply(&ctps[i].Members[j])
		}
	}

	q := &Query{
		Head:  head,
		BGPs:  groupBGPs(patterns),
		CTPs:  ctps,
		Limit: limit,
	}
	if star {
		q.Head = append(q.SimpleVars(), q.TreeVars()...)
	}
	return q, nil
}

// parseTerm reads a variable or a constant (word/string shorthand for a
// label-equality predicate over an anonymous variable).
func (p *parser) parseTerm() (Predicate, error) {
	t := p.next()
	switch t.kind {
	case tkVar:
		return Var(t.text), nil
	case tkWord, tkString:
		return Label(t.text), nil
	}
	return Predicate{}, fmt.Errorf("eql: expected term at offset %d, got %q", t.pos, t.text)
}

func (p *parser) parseEdgePattern() (EdgePattern, error) {
	src, err := p.parseTerm()
	if err != nil {
		return EdgePattern{}, err
	}
	edge, err := p.parseTerm()
	if err != nil {
		return EdgePattern{}, err
	}
	dst, err := p.parseTerm()
	if err != nil {
		return EdgePattern{}, err
	}
	return EdgePattern{Src: src, Edge: edge, Dst: dst}, nil
}

func (p *parser) parseFilterCond() (string, Condition, error) {
	prop := p.next()
	if prop.kind != tkWord {
		return "", Condition{}, fmt.Errorf("eql: expected property name at offset %d", prop.pos)
	}
	if err := p.expectPunct("("); err != nil {
		return "", Condition{}, err
	}
	v := p.next()
	if v.kind != tkVar {
		return "", Condition{}, fmt.Errorf("eql: FILTER needs a variable at offset %d", v.pos)
	}
	if err := p.expectPunct(")"); err != nil {
		return "", Condition{}, err
	}
	opTok := p.next()
	var op Op
	switch {
	case opTok.kind == tkPunct && opTok.text == "=":
		op = OpEq
	case opTok.kind == tkPunct && opTok.text == "<":
		op = OpLt
	case opTok.kind == tkPunct && opTok.text == "<=":
		op = OpLe
	case opTok.kind == tkPunct && opTok.text == "~":
		op = OpLike
	default:
		return "", Condition{}, fmt.Errorf("eql: expected comparison operator at offset %d, got %q", opTok.pos, opTok.text)
	}
	val := p.next()
	if val.kind != tkWord && val.kind != tkString {
		return "", Condition{}, fmt.Errorf("eql: expected value at offset %d", val.pos)
	}
	return v.text, Condition{Prop: prop.text, Op: op, Value: val.text}, nil
}

func (p *parser) parseCTP() (CTP, error) {
	var c CTP
	for {
		t := p.peek()
		if p.isKw(t, "AS") {
			p.next()
			break
		}
		if t.kind == tkEOF || (t.kind == tkPunct && (t.text == "." || t.text == "}")) {
			return c, fmt.Errorf("eql: CONNECT without AS ?treeVar at offset %d", t.pos)
		}
		m, err := p.parseTerm()
		if err != nil {
			return c, err
		}
		c.Members = append(c.Members, m)
	}
	tv := p.next()
	if tv.kind != tkVar {
		return c, fmt.Errorf("eql: AS needs a tree variable at offset %d", tv.pos)
	}
	c.TreeVar = tv.text

	// Trailing filters until '.' or '}'.
	for {
		t := p.peek()
		if t.kind != tkWord || !ctpFilterKeywords[strings.ToLower(t.text)] {
			break
		}
		p.next()
		switch strings.ToLower(t.text) {
		case "uni":
			c.Filters.Uni = true
		case "label":
			for {
				lt := p.peek()
				stop := lt.kind == tkEOF ||
					(lt.kind == tkPunct && (lt.text == "." || lt.text == "}")) ||
					(lt.kind == tkWord && ctpFilterKeywords[strings.ToLower(lt.text)])
				if stop {
					break
				}
				if lt.kind != tkWord && lt.kind != tkString {
					return c, fmt.Errorf("eql: bad LABEL entry at offset %d", lt.pos)
				}
				c.Filters.Labels = append(c.Filters.Labels, lt.text)
				p.next()
			}
			if len(c.Filters.Labels) == 0 {
				return c, fmt.Errorf("eql: LABEL filter needs at least one label")
			}
		case "max":
			n, err := p.parseInt("MAX")
			if err != nil {
				return c, err
			}
			c.Filters.MaxEdges = n
		case "limit":
			n, err := p.parseInt("LIMIT")
			if err != nil {
				return c, err
			}
			c.Filters.Limit = n
		case "top":
			n, err := p.parseInt("TOP")
			if err != nil {
				return c, err
			}
			c.Filters.TopK = n
		case "score":
			st := p.next()
			if st.kind != tkWord {
				return c, fmt.Errorf("eql: SCORE needs a function name at offset %d", st.pos)
			}
			c.Filters.Score = st.text
		case "timeout":
			dt := p.next()
			if dt.kind != tkWord {
				return c, fmt.Errorf("eql: TIMEOUT needs a duration at offset %d", dt.pos)
			}
			d, err := time.ParseDuration(dt.text)
			if err != nil {
				// Bare integers are milliseconds.
				ms, err2 := strconv.Atoi(dt.text)
				if err2 != nil {
					return c, fmt.Errorf("eql: bad TIMEOUT %q: %v", dt.text, err)
				}
				d = time.Duration(ms) * time.Millisecond
			}
			c.Filters.Timeout = d
		}
	}
	return c, nil
}

func (p *parser) parseInt(what string) (int, error) {
	t := p.next()
	if t.kind != tkWord {
		return 0, fmt.Errorf("eql: %s needs an integer at offset %d", what, t.pos)
	}
	n, err := strconv.Atoi(t.text)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("eql: %s needs a non-negative integer, got %q", what, t.text)
	}
	return n, nil
}

// groupBGPs partitions edge patterns into maximal variable-connected
// groups; each group is one BGP of the query body (Definition 2.4 requires
// every pattern of a BGP to share a variable with another). Patterns
// without variables form singleton BGPs.
func groupBGPs(patterns []EdgePattern) []BGP {
	if len(patterns) == 0 {
		return nil
	}
	// Union-find over pattern indices, connected through variables.
	parent := make([]int, len(patterns))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	byVar := map[string]int{}
	for i, ep := range patterns {
		for _, pr := range [3]Predicate{ep.Src, ep.Edge, ep.Dst} {
			if pr.Var == "" {
				continue
			}
			if j, ok := byVar[pr.Var]; ok {
				union(i, j)
			} else {
				byVar[pr.Var] = i
			}
		}
	}
	groups := map[int][]EdgePattern{}
	var order []int
	for i, ep := range patterns {
		r := find(i)
		if _, seen := groups[r]; !seen {
			order = append(order, r)
		}
		groups[r] = append(groups[r], ep)
	}
	out := make([]BGP, 0, len(order))
	for _, r := range order {
		out = append(out, BGP{Patterns: groups[r]})
	}
	return out
}
