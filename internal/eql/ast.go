// Package eql defines the Extended Query Language of Section 2: Basic
// Graph Patterns (the conjunctive core shared by SPARQL and Cypher) freely
// joined with Connecting Tree Patterns (CTPs), plus the CTP filters UNI,
// LABEL, MAX, SCORE [TOP k], LIMIT, and TIMEOUT.
//
// The package provides the abstract syntax (this file), predicate
// evaluation over graphs (predicate.go), a SPARQL-flavored text parser
// (parser.go), a printer producing parseable text (print.go), and the
// well-formedness rules of Definitions 2.4–2.6 (validate.go). Query
// evaluation lives in internal/bgp, internal/core, and internal/engine.
package eql

import "time"

// Op is a comparison operator of the predicate language (Definition 2.2):
// Ω = {=, <, <=, ~}, where ~ is glob-style pattern matching ("*lice").
type Op int

// Comparison operators.
const (
	OpEq Op = iota
	OpLt
	OpLe
	OpLike
)

// String returns the operator's surface syntax.
func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpLike:
		return "~"
	}
	return "?"
}

// Condition is one conjunct of a predicate: Prop(v) Op Value. Prop names
// the property; "label" and "type" are built-in pseudo-properties, any
// other name reads the node/edge property map.
type Condition struct {
	Prop  string
	Op    Op
	Value string
}

// Predicate is a conjunction of conditions over a single variable
// (Definition 2.2). Var may be empty for anonymous predicates introduced
// by constants in the surface syntax (the paper's shorthand where a bare
// constant means a label-equality predicate over a hidden variable).
type Predicate struct {
	Var   string
	Conds []Condition
}

// IsEmpty reports whether the predicate has no conditions; every node and
// edge satisfies an empty predicate.
func (p Predicate) IsEmpty() bool { return len(p.Conds) == 0 }

// Label returns a predicate matching nodes/edges labeled v.
func Label(v string) Predicate {
	return Predicate{Conds: []Condition{{Prop: "label", Op: OpEq, Value: v}}}
}

// Var returns the empty predicate over variable name (without '?').
func Var(name string) Predicate { return Predicate{Var: name} }

// VarLabel returns a label-equality predicate bound to a variable.
func VarLabel(name, label string) Predicate {
	return Predicate{Var: name, Conds: []Condition{{Prop: "label", Op: OpEq, Value: label}}}
}

// VarType returns a type-equality predicate bound to a variable.
func VarType(name, typ string) Predicate {
	return Predicate{Var: name, Conds: []Condition{{Prop: "type", Op: OpEq, Value: typ}}}
}

// With returns a copy of p with an extra condition.
func (p Predicate) With(prop string, op Op, value string) Predicate {
	conds := make([]Condition, len(p.Conds)+1)
	copy(conds, p.Conds)
	conds[len(p.Conds)] = Condition{Prop: prop, Op: op, Value: value}
	return Predicate{Var: p.Var, Conds: conds}
}

// EdgePattern is a triple of predicates (Definition 2.3): Src holds over
// the source node, Edge over the edge, Dst over the target node.
type EdgePattern struct {
	Src  Predicate
	Edge Predicate
	Dst  Predicate
}

// BGP is a Basic Graph Pattern: a set of edge patterns connected through
// shared variables (Definition 2.4).
type BGP struct {
	Patterns []EdgePattern
}

// Vars returns the distinct variable names of the BGP, in first-occurrence
// order.
func (b BGP) Vars() []string {
	var out []string
	seen := map[string]bool{}
	add := func(p Predicate) {
		if p.Var != "" && !seen[p.Var] {
			seen[p.Var] = true
			out = append(out, p.Var)
		}
	}
	for _, ep := range b.Patterns {
		add(ep.Src)
		add(ep.Edge)
		add(ep.Dst)
	}
	return out
}

// Filters collects the CTP filters of Section 2. The zero value imposes no
// restriction.
type Filters struct {
	// Uni restricts results to unidirectional trees: a root must reach
	// every seed through directed paths.
	Uni bool
	// Labels, when non-empty, restricts result edges to these labels.
	Labels []string
	// MaxEdges, when positive, restricts results to at most MaxEdges edges.
	MaxEdges int
	// Score names a score function (resolved in internal/score); results
	// are annotated with σ(t).
	Score string
	// TopK, when positive with Score set, keeps only the k best results.
	TopK int
	// Limit, when positive, stops the search after Limit results.
	Limit int
	// Timeout, when positive, bounds CTP evaluation time.
	Timeout time.Duration
}

// IsZero reports whether no filter is set.
func (f Filters) IsZero() bool {
	return !f.Uni && len(f.Labels) == 0 && f.MaxEdges == 0 && f.Score == "" &&
		f.TopK == 0 && f.Limit == 0 && f.Timeout == 0
}

// CTP is a Connecting Tree Pattern (Definition 2.5): m member predicates
// g_1..g_m plus the tree variable v_{m+1} (the "underlined" variable) and
// optional filters.
type CTP struct {
	Members []Predicate
	TreeVar string
	Filters Filters
}

// M returns the number of member predicates (seed sets).
func (c CTP) M() int { return len(c.Members) }

// Query is a core query (Definition 2.6) plus per-CTP filters (Definition
// 2.11): a head (projected variables) and a body of BGPs and CTPs. Limit,
// when positive, truncates the final result rows — the standard SPARQL
// LIMIT solution modifier the paper's requirement R4 refers to ("unless
// users explicitly LIMIT the result size").
type Query struct {
	Head  []string
	BGPs  []BGP
	CTPs  []CTP
	Limit int
}

// SimpleVars returns all simple variables of the query — every variable
// except CTP tree variables — in first-occurrence order.
func (q *Query) SimpleVars() []string {
	var out []string
	seen := map[string]bool{}
	add := func(v string) {
		if v != "" && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	for _, b := range q.BGPs {
		for _, v := range b.Vars() {
			add(v)
		}
	}
	for _, c := range q.CTPs {
		for _, m := range c.Members {
			add(m.Var)
		}
	}
	return out
}

// TreeVars returns the tree variables of all CTPs.
func (q *Query) TreeVars() []string {
	out := make([]string, len(q.CTPs))
	for i, c := range q.CTPs {
		out[i] = c.TreeVar
	}
	return out
}
