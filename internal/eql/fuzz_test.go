package eql

import (
	"strings"
	"testing"
)

// FuzzParse drives arbitrary input through the parser and, for every
// input that parses, checks the printer contract: Parse(q.String())
// must succeed and reach a fixpoint (the reprinted form equals the
// first printed form). Run with
//
//	go test -fuzz=FuzzParse ./internal/eql/
//
// The committed corpus under testdata/fuzz/FuzzParse seeds the mutator
// with every statement kind, the constant shorthand, quoted strings
// with escapes, and keyword-shaped labels — the inputs that historically
// broke the printer (labels ending in '\', labels spelled like EQL
// keywords).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT ?x WHERE { ?x knows ?y . }",
		"SELECT ?x ?w WHERE { ?x citizenOf USA . CONNECT ?x ?y AS ?w MAX 8 . }",
		"SELECT * WHERE { CONNECT a b c AS ?w UNI LABEL founded investsIn SCORE size TOP 3 LIMIT 5 TIMEOUT 100ms . } LIMIT 10",
		"SELECT ?x WHERE { ?x type ?t . FILTER label(?t) ~ \"*lice\" . FILTER size(?x) <= 10 . }",
		"SELECT ?w WHERE { CONNECT \"a b\" \"c\\\"d\" AS ?w . }",
		"SELECT ?w WHERE { CONNECT \"as\" \"uni\" AS ?w LABEL \"max\" . }",
		"SELECT ?w WHERE { CONNECT \"x\\\\\" ?y AS ?w . } # trailing backslash label",
		"SELECT ?a WHERE { ?a b ?c . ?c d ?e . ?x y ?z . }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse(input)
		if err != nil {
			return
		}
		text := q.String()
		q2, err := Parse(text)
		if err != nil {
			t.Fatalf("printed form does not reparse:\ninput: %q\nprinted: %q\nerr: %v", input, text, err)
		}
		if text2 := q2.String(); text2 != text {
			t.Fatalf("printer not a fixpoint:\ninput: %q\nfirst:  %q\nsecond: %q", input, text, text2)
		}
	})
}

// The two printer bugs the fuzz property pins down, as deterministic
// regressions: labels that collide with EQL keywords must be quoted
// (bare they terminate the surrounding list), and backslashes must be
// escaped before quotes (a label ending in '\' otherwise swallows the
// closing quote).
func TestQuotedKeywordsAndEscapes(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"plain", "plain"},
		{"as", `"as"`},
		{"As", `"As"`},
		{"UNI", `"UNI"`},
		{"timeout", `"timeout"`},
		{`back\slash`, `"back\\slash"`},
		{`end\`, `"end\\"`},
		{`qu"ote`, `"qu\"ote"`},
		{`\"`, `"\\\""`},
		{"", `""`},
	}
	for _, c := range cases {
		if got := quoted(c.in); got != c.want {
			t.Errorf("quoted(%q) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestRoundTripKeywordLabels(t *testing.T) {
	// Member labels spelled like keywords, and a LABEL entry spelled
	// like a filter keyword: both must survive print → reparse.
	in := `SELECT ?w WHERE { CONNECT "as" "connect" ?x AS ?w LABEL "max" "Uni" knows . }`
	q1, err := Parse(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(q1.CTPs[0].Members); got != 3 {
		t.Fatalf("members = %d, want 3", got)
	}
	if got := q1.CTPs[0].Filters.Labels; len(got) != 3 || got[0] != "max" || got[1] != "Uni" || got[2] != "knows" {
		t.Fatalf("labels = %q", got)
	}
	text := q1.String()
	q2, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse of %q: %v", text, err)
	}
	if q2.String() != text {
		t.Fatalf("unstable:\nfirst:  %s\nsecond: %s", text, q2.String())
	}
	if len(q2.CTPs[0].Members) != 3 || len(q2.CTPs[0].Filters.Labels) != 3 {
		t.Fatalf("reparse lost terms: %s", text)
	}
}

func TestRoundTripBackslashLabel(t *testing.T) {
	in := `SELECT ?w WHERE { CONNECT "end\\" ?y AS ?w . }`
	q1, err := Parse(in)
	if err != nil {
		t.Fatal(err)
	}
	if l, ok := q1.CTPs[0].Members[0].uniqueLabelValue(); !ok || l != `end\` {
		t.Fatalf("member label = %q", l)
	}
	text := q1.String()
	if !strings.Contains(text, `"end\\"`) {
		t.Fatalf("backslash not escaped in %q", text)
	}
	q2, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse of %q: %v", text, err)
	}
	if l, _ := q2.CTPs[0].Members[0].uniqueLabelValue(); l != `end\` {
		t.Fatalf("label after round trip = %q", l)
	}
}
