package eql

import (
	"fmt"
	"strings"
)

// Validate checks the well-formedness rules of Definitions 2.4–2.6 and of
// the CTP filters:
//
//   - the body is non-empty (k + l > 0);
//   - every CTP has at least one member and a tree variable;
//   - CTP member variables are pairwise distinct within their CTP
//     (Definition 2.5) and named (the anonymous-constant shorthand is
//     resolved to fresh variables by the engine, but the AST accepts it);
//   - every tree variable occurs exactly once in the query body
//     (Definition 2.6);
//   - head variables occur in the body;
//   - each BGP is variable-connected (Definition 2.4);
//   - TOP requires SCORE.
func (q *Query) Validate() error {
	if len(q.BGPs) == 0 && len(q.CTPs) == 0 {
		return fmt.Errorf("eql: query body is empty")
	}

	treeVars := map[string]bool{}
	for _, c := range q.CTPs {
		if len(c.Members) == 0 {
			return fmt.Errorf("eql: CTP with no members")
		}
		if c.TreeVar == "" {
			return fmt.Errorf("eql: CTP without tree variable")
		}
		if treeVars[c.TreeVar] {
			return fmt.Errorf("eql: tree variable ?%s used by two CTPs", c.TreeVar)
		}
		treeVars[c.TreeVar] = true
		seen := map[string]bool{}
		for _, m := range c.Members {
			if m.Var == "" {
				continue
			}
			if seen[m.Var] {
				return fmt.Errorf("eql: CTP members must use pairwise distinct variables; ?%s repeats", m.Var)
			}
			seen[m.Var] = true
		}
		if c.Filters.TopK > 0 && c.Filters.Score == "" {
			return fmt.Errorf("eql: TOP %d requires SCORE", c.Filters.TopK)
		}
	}

	// Tree variables must not appear anywhere else.
	simple := map[string]bool{}
	for _, v := range q.SimpleVars() {
		simple[v] = true
	}
	for tv := range treeVars {
		if simple[tv] {
			return fmt.Errorf("eql: tree variable ?%s also used as a simple variable", tv)
		}
	}

	for _, h := range q.Head {
		if !simple[h] && !treeVars[h] {
			return fmt.Errorf("eql: head variable ?%s does not occur in the body", h)
		}
	}

	for i, b := range q.BGPs {
		if err := checkConnected(b); err != nil {
			return fmt.Errorf("eql: BGP %d: %w", i, err)
		}
	}
	return nil
}

// checkConnected verifies Definition 2.4: with at least two edge patterns,
// every pattern must share a variable with another, transitively forming
// one component.
func checkConnected(b BGP) error {
	if len(b.Patterns) < 2 {
		return nil
	}
	adj := make([][]int, len(b.Patterns))
	byVar := map[string][]int{}
	for i, ep := range b.Patterns {
		for _, p := range [3]Predicate{ep.Src, ep.Edge, ep.Dst} {
			if p.Var != "" {
				byVar[p.Var] = append(byVar[p.Var], i)
			}
		}
	}
	for _, idxs := range byVar {
		for i := 1; i < len(idxs); i++ {
			adj[idxs[0]] = append(adj[idxs[0]], idxs[i])
			adj[idxs[i]] = append(adj[idxs[i]], idxs[0])
		}
	}
	seen := make([]bool, len(b.Patterns))
	stack := []int{0}
	seen[0] = true
	count := 0
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		count++
		for _, y := range adj[x] {
			if !seen[y] {
				seen[y] = true
				stack = append(stack, y)
			}
		}
	}
	if count != len(b.Patterns) {
		return fmt.Errorf("edge patterns are not connected through shared variables")
	}
	return nil
}

// String renders the query in the surface syntax accepted by Parse, so
// that Parse(q.String()) round-trips.
func (q *Query) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT")
	for _, h := range q.Head {
		sb.WriteString(" ?")
		sb.WriteString(h)
	}
	sb.WriteString("\nWHERE {\n")
	for _, b := range q.BGPs {
		for _, ep := range b.Patterns {
			sb.WriteString("  ")
			writeTerm(&sb, ep.Src)
			sb.WriteByte(' ')
			writeTerm(&sb, ep.Edge)
			sb.WriteByte(' ')
			writeTerm(&sb, ep.Dst)
			sb.WriteString(" .\n")
		}
	}
	// Extra (non-label-shorthand) conditions become FILTER lines.
	emitted := map[string]bool{}
	emitConds := func(p Predicate) {
		if p.Var == "" || emitted[p.Var] {
			return
		}
		emitted[p.Var] = true
		for _, c := range p.Conds {
			fmt.Fprintf(&sb, "  FILTER %s(?%s) %s %s .\n", c.Prop, p.Var, c.Op, quoted(c.Value))
		}
	}
	for _, b := range q.BGPs {
		for _, ep := range b.Patterns {
			emitConds(ep.Src)
			emitConds(ep.Edge)
			emitConds(ep.Dst)
		}
	}
	for _, c := range q.CTPs {
		for _, m := range c.Members {
			emitConds(m)
		}
	}
	for _, c := range q.CTPs {
		sb.WriteString("  CONNECT")
		for _, m := range c.Members {
			sb.WriteByte(' ')
			writeTerm(&sb, m)
		}
		fmt.Fprintf(&sb, " AS ?%s", c.TreeVar)
		writeFilters(&sb, c.Filters)
		sb.WriteString(" .\n")
	}
	sb.WriteString("}")
	if q.Limit > 0 {
		fmt.Fprintf(&sb, " LIMIT %d", q.Limit)
	}
	return sb.String()
}

// writeTerm renders a variable or, for anonymous label-equality
// predicates, the constant shorthand. Variables with conditions are
// rendered as the bare variable (conditions appear in FILTER lines).
func writeTerm(sb *strings.Builder, p Predicate) {
	if p.Var != "" {
		sb.WriteString("?")
		sb.WriteString(p.Var)
		return
	}
	if l, ok := p.uniqueLabelValue(); ok {
		sb.WriteString(quoted(l))
		return
	}
	// Anonymous empty predicate: render as a throwaway variable.
	sb.WriteString("?_")
}

func writeFilters(sb *strings.Builder, f Filters) {
	if f.Uni {
		sb.WriteString(" UNI")
	}
	if len(f.Labels) > 0 {
		sb.WriteString(" LABEL")
		for _, l := range f.Labels {
			sb.WriteByte(' ')
			sb.WriteString(quoted(l))
		}
	}
	if f.MaxEdges > 0 {
		fmt.Fprintf(sb, " MAX %d", f.MaxEdges)
	}
	if f.Score != "" {
		fmt.Fprintf(sb, " SCORE %s", f.Score)
		if f.TopK > 0 {
			fmt.Fprintf(sb, " TOP %d", f.TopK)
		}
	}
	if f.Limit > 0 {
		fmt.Fprintf(sb, " LIMIT %d", f.Limit)
	}
	if f.Timeout > 0 {
		fmt.Fprintf(sb, " TIMEOUT %s", f.Timeout)
	}
}

// eqlKeywords are the words the parser treats as syntax in at least one
// position where quoted() output can appear: statement heads (CONNECT,
// FILTER), the CONNECT member terminator (AS), and the CTP filter words
// that end a LABEL entry list. Keyword recognition is case-insensitive,
// so the quoting test must be too — a label spelled "As" printed bare
// would terminate the member list it sits in.
var eqlKeywords = map[string]bool{
	"select": true, "where": true, "filter": true, "connect": true,
	"as": true, "uni": true, "label": true, "max": true,
	"score": true, "top": true, "limit": true, "timeout": true,
}

func quoted(s string) string {
	plain := s != "" && !eqlKeywords[strings.ToLower(s)]
	for i := 0; plain && i < len(s); i++ {
		if !isIdentByte(s[i]) {
			plain = false
		}
	}
	if plain {
		return s
	}
	// Backslash must be escaped before the quote: a label ending in '\'
	// would otherwise print as `"...\"` and swallow the closing quote.
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return `"` + s + `"`
}
