package eql

import (
	"math/rand"
	"regexp"
	"strings"
	"testing"
	"testing/quick"
)

// Property: Glob agrees with a regexp-based reference on random patterns
// and subjects drawn from a small alphabet (where collisions are likely).
func TestQuickGlobAgainstRegexp(t *testing.T) {
	alphabet := []byte("ab*?")
	subjects := []byte("ab")
	f := func(patIdx, subIdx []uint8) bool {
		var pat, sub strings.Builder
		for _, i := range patIdx {
			pat.WriteByte(alphabet[int(i)%len(alphabet)])
		}
		for _, i := range subIdx {
			sub.WriteByte(subjects[int(i)%len(subjects)])
		}
		p, s := pat.String(), sub.String()
		if len(p) > 8 || len(s) > 10 {
			return true // keep the regexp reference fast
		}
		// Translate the glob to an anchored regexp.
		var re strings.Builder
		re.WriteString("^")
		for i := 0; i < len(p); i++ {
			switch p[i] {
			case '*':
				re.WriteString(".*")
			case '?':
				re.WriteString(".")
			default:
				re.WriteString(regexp.QuoteMeta(string(p[i])))
			}
		}
		re.WriteString("$")
		want := regexp.MustCompile(re.String()).MatchString(s)
		return Glob(p, s) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
}

// Property: parse-print round trips are stable for randomly assembled
// valid queries.
func TestQuickParsePrintStable(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	labels := []string{"knows", "worksFor", "citizenOf", "founded"}
	consts := []string{"Alice", "Bob", "OrgA", "USA"}
	for trial := 0; trial < 150; trial++ {
		var sb strings.Builder
		sb.WriteString("SELECT ?v0 WHERE { ")
		nPatterns := 1 + rng.Intn(3)
		for i := 0; i < nPatterns; i++ {
			sb.WriteString("?v")
			sb.WriteString(string(rune('0' + i)))
			sb.WriteByte(' ')
			sb.WriteString(labels[rng.Intn(len(labels))])
			sb.WriteByte(' ')
			if rng.Intn(2) == 0 {
				sb.WriteString(consts[rng.Intn(len(consts))])
			} else {
				sb.WriteString("?v")
				sb.WriteString(string(rune('0' + i + 1)))
			}
			sb.WriteString(" . ")
		}
		if rng.Intn(2) == 0 {
			sb.WriteString("CONNECT ?v0 ")
			sb.WriteString(consts[rng.Intn(len(consts))])
			sb.WriteString(" AS ?w")
			if rng.Intn(2) == 0 {
				sb.WriteString(" MAX ")
				sb.WriteString(string(rune('1' + rng.Intn(8))))
			}
			if rng.Intn(2) == 0 {
				sb.WriteString(" UNI")
			}
			sb.WriteString(" . ")
		}
		sb.WriteString("}")

		q1, err := Parse(sb.String())
		if err != nil {
			t.Fatalf("trial %d: %v\nquery: %s", trial, err, sb.String())
		}
		text := q1.String()
		q2, err := Parse(text)
		if err != nil {
			t.Fatalf("trial %d: re-parse: %v\nrendered: %s", trial, err, text)
		}
		if q2.String() != text {
			t.Fatalf("trial %d: unstable round trip\nfirst:  %s\nsecond: %s", trial, text, q2.String())
		}
	}
}
