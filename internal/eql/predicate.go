package eql

import (
	"strconv"

	"ctpquery/internal/graph"
)

// MatchNode reports whether node n satisfies every condition of p
// (Definition 2.2: replacing the variable by n makes every condition true).
func (p Predicate) MatchNode(g *graph.Graph, n graph.NodeID) bool {
	for _, c := range p.Conds {
		if !matchNodeCond(g, n, c) {
			return false
		}
	}
	return true
}

// MatchEdge reports whether edge e satisfies every condition of p. The
// "type" pseudo-property never holds on edges in this model.
func (p Predicate) MatchEdge(g *graph.Graph, e graph.EdgeID) bool {
	for _, c := range p.Conds {
		if !matchEdgeCond(g, e, c) {
			return false
		}
	}
	return true
}

func matchNodeCond(g *graph.Graph, n graph.NodeID, c Condition) bool {
	switch c.Prop {
	case "label":
		return compare(g.NodeLabel(n), c.Op, c.Value)
	case "type":
		if c.Op != OpEq {
			// Pattern-match over all the node's types.
			for _, t := range g.NodeTypes(n) {
				if compare(g.Labels().String(t), c.Op, c.Value) {
					return true
				}
			}
			return false
		}
		t, ok := g.LabelIDOf(c.Value)
		return ok && g.HasType(n, t)
	default:
		v, ok := g.NodeProp(c.Prop, n)
		return ok && compare(v, c.Op, c.Value)
	}
}

func matchEdgeCond(g *graph.Graph, e graph.EdgeID, c Condition) bool {
	switch c.Prop {
	case "label":
		return compare(g.EdgeLabel(e), c.Op, c.Value)
	case "type":
		return false
	default:
		v, ok := g.EdgeProp(c.Prop, e)
		return ok && compare(v, c.Op, c.Value)
	}
}

// compare evaluates "have op want". Ordering comparisons are numeric when
// both sides parse as numbers, lexicographic otherwise, mirroring how a
// relational engine with a typed column would behave on our string-typed
// properties.
func compare(have string, op Op, want string) bool {
	switch op {
	case OpEq:
		return have == want
	case OpLt, OpLe:
		if hf, err1 := strconv.ParseFloat(have, 64); err1 == nil {
			if wf, err2 := strconv.ParseFloat(want, 64); err2 == nil {
				if op == OpLt {
					return hf < wf
				}
				return hf <= wf
			}
		}
		if op == OpLt {
			return have < want
		}
		return have <= want
	case OpLike:
		return Glob(want, have)
	}
	return false
}

// Glob matches s against a pattern where '*' matches any (possibly empty)
// substring and '?' matches exactly one byte — the SQL LIKE flavor the
// paper's ~ operator stands for, with familiar shell spelling.
func Glob(pattern, s string) bool {
	// Iterative two-pointer matcher with backtracking to the last '*'.
	pi, si := 0, 0
	star, mark := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '?' || pattern[pi] == s[si]):
			pi++
			si++
		case pi < len(pattern) && pattern[pi] == '*':
			star = pi
			mark = si
			pi++
		case star != -1:
			pi = star + 1
			mark++
			si = mark
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '*' {
		pi++
	}
	return pi == len(pattern)
}

// SelectNodes returns all graph nodes satisfying p, using label and type
// indexes when the predicate pins them with equality; otherwise it scans.
// This implements the seed-set derivation "restrict N to the nodes that
// match g_i" of Section 3 step (B.1).
func (p Predicate) SelectNodes(g *graph.Graph) []graph.NodeID {
	// Fast paths: equality on label or type narrows via index.
	for _, c := range p.Conds {
		if c.Op != OpEq {
			continue
		}
		switch c.Prop {
		case "label":
			l, ok := g.LabelIDOf(c.Value)
			if !ok {
				return nil
			}
			return filterNodes(g, g.NodesWithLabel(l), p)
		case "type":
			t, ok := g.LabelIDOf(c.Value)
			if !ok {
				return nil
			}
			return filterNodes(g, g.NodesWithType(t), p)
		}
	}
	var out []graph.NodeID
	for i := 0; i < g.NumNodes(); i++ {
		if p.MatchNode(g, graph.NodeID(i)) {
			out = append(out, graph.NodeID(i))
		}
	}
	return out
}

func filterNodes(g *graph.Graph, candidates []graph.NodeID, p Predicate) []graph.NodeID {
	out := make([]graph.NodeID, 0, len(candidates))
	for _, n := range candidates {
		if p.MatchNode(g, n) {
			out = append(out, n)
		}
	}
	return out
}

// SelectEdges returns all edges satisfying p, via the edge-label index
// when possible.
func (p Predicate) SelectEdges(g *graph.Graph) []graph.EdgeID {
	for _, c := range p.Conds {
		if c.Op == OpEq && c.Prop == "label" {
			l, ok := g.LabelIDOf(c.Value)
			if !ok {
				return nil
			}
			out := make([]graph.EdgeID, 0, len(g.EdgesWithLabel(l)))
			for _, e := range g.EdgesWithLabel(l) {
				if p.MatchEdge(g, e) {
					out = append(out, e)
				}
			}
			return out
		}
	}
	var out []graph.EdgeID
	for i := 0; i < g.NumEdges(); i++ {
		// Full ID-space scan: on a live epoch view, skip deleted slots.
		if !g.EdgeAlive(graph.EdgeID(i)) {
			continue
		}
		if p.MatchEdge(g, graph.EdgeID(i)) {
			out = append(out, graph.EdgeID(i))
		}
	}
	return out
}

// uniqueLabelValue returns the label a predicate pins by equality, if any.
func (p Predicate) uniqueLabelValue() (string, bool) {
	for _, c := range p.Conds {
		if c.Prop == "label" && c.Op == OpEq {
			return c.Value, true
		}
	}
	return "", false
}

// Selectivity estimates how many graph elements match p; lower is more
// selective. Used by the BGP evaluator to order scans.
func (p Predicate) Selectivity(g *graph.Graph, node bool) int {
	if p.IsEmpty() {
		if node {
			return g.NumNodes()
		}
		return g.NumEdges()
	}
	best := g.NumNodes() + g.NumEdges()
	for _, c := range p.Conds {
		if c.Op != OpEq {
			continue
		}
		switch c.Prop {
		case "label":
			if l, ok := g.LabelIDOf(c.Value); ok {
				if node {
					if n := len(g.NodesWithLabel(l)); n < best {
						best = n
					}
				} else if n := len(g.EdgesWithLabel(l)); n < best {
					best = n
				}
			} else {
				return 0
			}
		case "type":
			if node {
				if t, ok := g.LabelIDOf(c.Value); ok {
					if n := len(g.NodesWithType(t)); n < best {
						best = n
					}
				} else {
					return 0
				}
			}
		}
	}
	return best
}
