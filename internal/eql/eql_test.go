package eql

import (
	"strings"
	"testing"
	"time"

	"ctpquery/internal/gen"
	"ctpquery/internal/graph"
)

func TestParseQ1(t *testing.T) {
	// The paper's Q1: connections between an American entrepreneur, a
	// French entrepreneur, and a French politician.
	q, err := Parse(`
SELECT ?x ?y ?z ?w
WHERE {
  ?x citizenOf USA .
  ?y citizenOf France .
  ?z citizenOf France .
  FILTER type(?x) = entrepreneur .
  FILTER type(?y) = entrepreneur .
  FILTER type(?z) = politician .
  CONNECT ?x ?y ?z AS ?w .
}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Head) != 4 {
		t.Fatalf("head = %v", q.Head)
	}
	// ?x, ?y, ?z are in separate BGPs (no shared vars).
	if len(q.BGPs) != 3 {
		t.Fatalf("BGPs = %d, want 3", len(q.BGPs))
	}
	if len(q.CTPs) != 1 || q.CTPs[0].M() != 3 || q.CTPs[0].TreeVar != "w" {
		t.Fatalf("CTP = %+v", q.CTPs)
	}
	// FILTER must have attached the type condition to ?x's predicate.
	src := q.BGPs[0].Patterns[0].Src
	if src.Var != "x" || len(src.Conds) != 1 || src.Conds[0].Prop != "type" {
		t.Fatalf("x predicate = %+v", src)
	}
}

func TestParseSharedVarsGroupBGPs(t *testing.T) {
	q, err := Parse(`SELECT ?x WHERE {
		?x citizenOf USA .
		?x founded OrgB .
		?y citizenOf France .
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.BGPs) != 2 {
		t.Fatalf("BGPs = %d, want 2 (x-group and y-group)", len(q.BGPs))
	}
	if len(q.BGPs[0].Patterns) != 2 {
		t.Fatalf("x-group has %d patterns, want 2", len(q.BGPs[0].Patterns))
	}
}

func TestParseAllFilters(t *testing.T) {
	q, err := Parse(`SELECT ?w WHERE {
		CONNECT Alice Bob ?c AS ?w UNI LABEL founded "investsIn" MAX 8 SCORE size TOP 3 LIMIT 10 TIMEOUT 500ms .
	}`)
	if err != nil {
		t.Fatal(err)
	}
	f := q.CTPs[0].Filters
	if !f.Uni || f.MaxEdges != 8 || f.Score != "size" || f.TopK != 3 ||
		f.Limit != 10 || f.Timeout != 500*time.Millisecond {
		t.Fatalf("filters = %+v", f)
	}
	if len(f.Labels) != 2 || f.Labels[0] != "founded" || f.Labels[1] != "investsIn" {
		t.Fatalf("labels = %v", f.Labels)
	}
	// Constant members become anonymous label predicates.
	m := q.CTPs[0].Members
	if len(m) != 3 || m[0].Var != "" || m[2].Var != "c" {
		t.Fatalf("members = %+v", m)
	}
	if l, ok := m[0].uniqueLabelValue(); !ok || l != "Alice" {
		t.Fatalf("member 0 = %+v", m[0])
	}
}

func TestParseTimeoutBareMillis(t *testing.T) {
	q, err := Parse(`SELECT ?w WHERE { CONNECT ?a ?b AS ?w TIMEOUT 250 . }`)
	if err != nil {
		t.Fatal(err)
	}
	if q.CTPs[0].Filters.Timeout != 250*time.Millisecond {
		t.Fatalf("timeout = %v", q.CTPs[0].Filters.Timeout)
	}
}

func TestParseSelectStar(t *testing.T) {
	q, err := Parse(`SELECT * WHERE { ?x knows ?y . CONNECT ?x ?y AS ?w . }`)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"x": true, "y": true, "w": true}
	if len(q.Head) != 3 {
		t.Fatalf("head = %v", q.Head)
	}
	for _, h := range q.Head {
		if !want[h] {
			t.Fatalf("unexpected head var %q", h)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,                                  // empty
		`SELECT ?x`,                         // no WHERE
		`SELECT ?x WHERE { ?x knows `,       // unterminated
		`SELECT ?x WHERE { }`,               // empty body
		`SELECT ?q WHERE { ?x knows ?y . }`, // head not in body
		`SELECT ?x WHERE { CONNECT ?x ?y AS ?x . }`,                                     // tree var reused
		`SELECT ?x WHERE { CONNECT ?x ?x AS ?w . }`,                                     // repeated member var
		`SELECT ?x WHERE { CONNECT ?x ?y . }`,                                           // no AS
		`SELECT ?w WHERE { CONNECT ?a ?b AS ?w TOP 3 . }`,                               // TOP without SCORE
		`SELECT ?w WHERE { CONNECT ?a ?b AS ?w LABEL . }`,                               // empty LABEL
		`SELECT ?w WHERE { CONNECT ?a ?b AS ?w MAX x . }`,                               // bad int
		`SELECT ?w WHERE { CONNECT ?a ?b AS ?w TIMEOUT bogus. }`,                        // bad duration
		`SELECT ?x WHERE { FILTER type(x) = y . ?x a ?b . }`,                            // filter needs ?var
		`SELECT ?x WHERE { ?x "unterminated }`,                                          // bad string
		`SELECT ?x WHERE { ?x knows ?y . CONNECT ?x ?y AS ?w . CONNECT ?x ?y AS ?w . }`, // dup tree var
	}
	for _, c := range cases {
		if _, err := Parse(c); err == nil {
			t.Errorf("Parse(%q) should fail", c)
		}
	}
}

func TestParseQuotedAndComments(t *testing.T) {
	q, err := Parse(`SELECT ?x WHERE {
		# looking for the party
		?x affiliation "National Liberal Party" .
	}`)
	if err != nil {
		t.Fatal(err)
	}
	dst := q.BGPs[0].Patterns[0].Dst
	if l, ok := dst.uniqueLabelValue(); !ok || l != "National Liberal Party" {
		t.Fatalf("dst = %+v", dst)
	}
}

func TestRoundTrip(t *testing.T) {
	inputs := []string{
		`SELECT ?x ?w WHERE { ?x citizenOf USA . CONNECT ?x France AS ?w MAX 5 . }`,
		`SELECT ?w WHERE { CONNECT ?a ?b ?c AS ?w UNI LABEL x y SCORE size TOP 2 TIMEOUT 1s . }`,
		`SELECT ?x ?y WHERE { ?x knows ?y . ?y worksFor ?o . FILTER label(?o) ~ "Org*" . }`,
	}
	for _, in := range inputs {
		q1, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		text := q1.String()
		q2, err := Parse(text)
		if err != nil {
			t.Fatalf("re-Parse of %q (rendered %q): %v", in, text, err)
		}
		if q2.String() != text {
			t.Fatalf("round trip unstable:\nfirst:  %s\nsecond: %s", text, q2.String())
		}
	}
}

func TestValidateDirectConstruction(t *testing.T) {
	q := &Query{
		Head: []string{"w"},
		CTPs: []CTP{{Members: []Predicate{Var("a"), Var("b")}, TreeVar: "w"}},
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Query{Head: []string{"w"}, CTPs: []CTP{{TreeVar: "w"}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("CTP without members should not validate")
	}
	disconnected := &Query{
		BGPs: []BGP{{Patterns: []EdgePattern{
			{Src: Var("a"), Edge: Predicate{}, Dst: Var("b")},
			{Src: Var("c"), Edge: Predicate{}, Dst: Var("d")},
		}}},
	}
	if err := disconnected.Validate(); err == nil {
		t.Fatal("disconnected BGP should not validate")
	}
}

func TestMatchNodePredicates(t *testing.T) {
	g := gen.Sample()
	alice, _ := g.NodeByLabel("Alice")
	usa, _ := g.NodeByLabel("USA")

	lice := Predicate{}.With("label", OpLike, "*lice").With("type", OpEq, "entrepreneur")
	if !lice.MatchNode(g, alice) {
		t.Fatal("Alice should match *lice entrepreneur")
	}
	if lice.MatchNode(g, usa) {
		t.Fatal("USA should not match")
	}
	if !(Predicate{}).MatchNode(g, usa) {
		t.Fatal("empty predicate matches everything")
	}
	typePattern := Predicate{}.With("type", OpLike, "politic*")
	elon, _ := g.NodeByLabel("Elon")
	if !typePattern.MatchNode(g, elon) {
		t.Fatal("type glob should match politician")
	}
}

func TestMatchEdgePredicates(t *testing.T) {
	g := gen.Sample()
	p := Label("citizenOf")
	count := 0
	for i := 0; i < g.NumEdges(); i++ {
		if p.MatchEdge(g, graph.EdgeID(i)) {
			count++
		}
	}
	if count != 5 {
		t.Fatalf("citizenOf edges = %d, want 5", count)
	}
	// type conditions never hold on edges.
	tp := Predicate{}.With("type", OpEq, "anything")
	if tp.MatchEdge(g, 0) {
		t.Fatal("type predicate on edge must be false")
	}
}

func TestSelectNodes(t *testing.T) {
	g := gen.Sample()
	ent := Predicate{}.With("type", OpEq, "entrepreneur")
	if got := len(ent.SelectNodes(g)); got != 4 {
		t.Fatalf("entrepreneurs = %d, want 4", got)
	}
	lbl := Label("Alice")
	if got := len(lbl.SelectNodes(g)); got != 1 {
		t.Fatalf("Alice nodes = %d, want 1", got)
	}
	none := Label("Nobody")
	if got := len(none.SelectNodes(g)); got != 0 {
		t.Fatalf("Nobody nodes = %d, want 0", got)
	}
	empty := Predicate{}
	if got := len(empty.SelectNodes(g)); got != g.NumNodes() {
		t.Fatalf("empty predicate selects %d, want all %d", got, g.NumNodes())
	}
	glob := Predicate{}.With("label", OpLike, "Org*")
	if got := len(glob.SelectNodes(g)); got != 3 {
		t.Fatalf("Org* nodes = %d, want 3", got)
	}
}

func TestSelectEdges(t *testing.T) {
	g := gen.Sample()
	if got := len(Label("founded").SelectEdges(g)); got != 3 {
		t.Fatalf("founded edges = %d, want 3", got)
	}
	if got := len(Label("nolabel").SelectEdges(g)); got != 0 {
		t.Fatalf("nolabel edges = %d", got)
	}
	if got := len((Predicate{}).SelectEdges(g)); got != g.NumEdges() {
		t.Fatalf("empty predicate selects %d edges", got)
	}
	glob := Predicate{}.With("label", OpLike, "*Of")
	if got := len(glob.SelectEdges(g)); got != 7 {
		t.Fatalf("*Of edges = %d, want 7 (citizenOf x5 + parentOf x2)", got)
	}
}

func TestSelectivity(t *testing.T) {
	g := gen.Sample()
	empty := Predicate{}
	if empty.Selectivity(g, true) != g.NumNodes() {
		t.Fatal("empty node predicate selectivity should be NumNodes")
	}
	alice := Label("Alice")
	if s := alice.Selectivity(g, true); s != 1 {
		t.Fatalf("Alice selectivity = %d", s)
	}
	missing := Label("Nobody")
	if s := missing.Selectivity(g, true); s != 0 {
		t.Fatalf("missing label selectivity = %d", s)
	}
	founded := Label("founded")
	if s := founded.Selectivity(g, false); s != 3 {
		t.Fatalf("founded selectivity = %d", s)
	}
}

func TestGlob(t *testing.T) {
	cases := []struct {
		pat, s string
		want   bool
	}{
		{"*lice", "Alice", true},
		{"*lice", "Alic", false},
		{"A*", "Alice", true},
		{"A*e", "Alice", true},
		{"A*e", "Aliced", false},
		{"*", "", true},
		{"", "", true},
		{"", "x", false},
		{"?lice", "Alice", true},
		{"?lice", "lice", false},
		{"a*b*c", "aXbYc", true},
		{"a*b*c", "ac", false},
		{"**x", "zzzx", true},
	}
	for _, c := range cases {
		if Glob(c.pat, c.s) != c.want {
			t.Errorf("Glob(%q,%q) = %v, want %v", c.pat, c.s, !c.want, c.want)
		}
	}
}

func TestNumericComparison(t *testing.T) {
	if !compare("9", OpLt, "10") {
		t.Fatal("numeric 9 < 10")
	}
	if compare("9", OpLt, "08") {
		t.Fatal("numeric 9 < 8 is false")
	}
	if !compare("abc", OpLt, "abd") {
		t.Fatal("lexicographic fallback")
	}
	if !compare("10", OpLe, "10") {
		t.Fatal("10 <= 10")
	}
}

func TestPredicateBuilders(t *testing.T) {
	p := VarType("x", "person")
	if p.Var != "x" || p.Conds[0].Prop != "type" {
		t.Fatalf("VarType = %+v", p)
	}
	p2 := VarLabel("y", "Bob")
	if p2.Var != "y" || p2.Conds[0].Value != "Bob" {
		t.Fatalf("VarLabel = %+v", p2)
	}
	if !Var("z").IsEmpty() {
		t.Fatal("Var should be empty predicate")
	}
	// With must not alias the original conditions slice.
	base := Label("a")
	c1 := base.With("type", OpEq, "t1")
	c2 := base.With("type", OpEq, "t2")
	if c1.Conds[1].Value == c2.Conds[1].Value {
		t.Fatal("With aliased storage")
	}
}

func TestOpString(t *testing.T) {
	for op, want := range map[Op]string{OpEq: "=", OpLt: "<", OpLe: "<=", OpLike: "~", Op(99): "?"} {
		if op.String() != want {
			t.Fatalf("Op(%d).String() = %q", op, op.String())
		}
	}
}

func TestFiltersIsZero(t *testing.T) {
	if !(Filters{}).IsZero() {
		t.Fatal("zero filters should be zero")
	}
	if (Filters{Uni: true}).IsZero() || (Filters{Limit: 1}).IsZero() {
		t.Fatal("non-zero filters misreported")
	}
}

func TestStringContainsClauses(t *testing.T) {
	q, err := Parse(`SELECT ?x ?w WHERE { ?x citizenOf USA . CONNECT ?x Alice AS ?w UNI . }`)
	if err != nil {
		t.Fatal(err)
	}
	s := q.String()
	for _, want := range []string{"SELECT ?x ?w", "?x", "citizenOf", "CONNECT", "AS ?w", "UNI"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered query missing %q:\n%s", want, s)
		}
	}
}
