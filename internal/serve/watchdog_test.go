package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"ctpquery"
	"ctpquery/internal/admission"
)

// newWatchdogServer builds a server with cache + admission + watchdog
// (soft 100 MiB, hard 200 MiB) and primes the cache with one entry, so
// ladder tests can observe shedding.
func newWatchdogServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	g := ctpquery.RandomGraph(800, 2400, []string{"knows", "cites", "funds"}, 42)
	db, err := ctpquery.Open(g, &ctpquery.Options{Parallel: true, Parallelism: 4},
		ctpquery.WithCache(16<<20, 0))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(db, Config{
		DefaultTimeout: 5 * time.Second,
		MaxParallelism: 8,
		Admission:      &admission.Config{MaxConcurrent: 4, QueueDepth: 8, MaxQueueWait: time.Second, CostBudget: 1000},
		MemSoftBytes:   100 << 20,
		MemHardBytes:   200 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler(false))
	t.Cleanup(ts.Close)
	if code, _, fail := postQuery(t, ts.URL, queryRequest{Query: chaosServeQuery}); code != http.StatusOK {
		t.Fatalf("priming query failed: %d %s", code, fail.Error)
	}
	return s, ts
}

func healthz(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var payload map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, payload
}

// TestChaosWatchdogLadder drives the degradation ladder with synthetic
// heap samples: soft pressure sheds half the cache, halves the
// parallelism ceiling, and scales the admission budget; hard pressure
// empties the cache, caps parallelism at 1, and quarters the budget;
// recovery restores everything. Hysteresis holds the level inside the
// recovery band.
func TestChaosWatchdogLadder(t *testing.T) {
	s, ts := newWatchdogServer(t)
	if s.wd == nil {
		t.Fatal("watchdog not constructed")
	}

	// Healthy baseline.
	if code, p := healthz(t, ts.URL); code != http.StatusOK || p["status"] != "ok" {
		t.Fatalf("baseline health: %d %v", code, p["status"])
	}
	cs, _ := s.base.CacheStats()
	if cs.Bytes == 0 {
		t.Fatal("cache not primed")
	}

	// Soft watermark: degraded, cache halved, ceiling GOMAXPROCS/2, budget 0.5.
	s.wd.check(120 << 20)
	if s.Health() != HealthDegraded {
		t.Fatalf("soft pressure: health %v, want degraded", s.Health())
	}
	if code, p := healthz(t, ts.URL); code != http.StatusOK || p["status"] != "degraded" {
		t.Fatalf("degraded must still answer 200: %d %v", code, p["status"])
	}
	wantHalf := int32(runtime.GOMAXPROCS(0) / 2)
	if wantHalf < 1 {
		wantHalf = 1
	}
	if got := s.parCeiling.Load(); got != wantHalf {
		t.Fatalf("soft ceiling = %d, want %d", got, wantHalf)
	}
	if bs := s.ctrl.Stats().BudgetScale; bs != 0.5 {
		t.Fatalf("soft budget scale = %v, want 0.5", bs)
	}

	// Hard watermark: cache emptied, ceiling 1, budget quartered.
	s.wd.check(250 << 20)
	if got := s.parCeiling.Load(); got != 1 {
		t.Fatalf("hard ceiling = %d, want 1", got)
	}
	if bs := s.ctrl.Stats().BudgetScale; bs != 0.25 {
		t.Fatalf("hard budget scale = %v, want 0.25", bs)
	}
	if cs, _ := s.base.CacheStats(); cs.Bytes != 0 {
		t.Fatalf("hard pressure left %d cache bytes", cs.Bytes)
	}
	// A query under the ceiling still works — degraded, not down.
	if code, _, fail := postQuery(t, ts.URL, queryRequest{Query: chaosServeQuery}); code != http.StatusOK {
		t.Fatalf("query under hard pressure: %d %s", code, fail.Error)
	}

	// Hysteresis: inside the recovery band (between 4/5·soft and soft)
	// the level must hold, not flap.
	s.wd.check(90 << 20)
	if s.Health() != HealthDegraded {
		t.Fatal("hysteresis band dropped the degraded level")
	}

	// Full recovery below 4/5 of soft: everything restored.
	s.wd.check(10 << 20)
	if s.Health() != HealthOK {
		t.Fatalf("recovery: health %v, want ok", s.Health())
	}
	if got := s.parCeiling.Load(); got != 0 {
		t.Fatalf("recovery ceiling = %d, want 0 (none)", got)
	}
	if bs := s.ctrl.Stats().BudgetScale; bs != 1 {
		t.Fatalf("recovery budget scale = %v, want 1", bs)
	}
}

// TestChaosDrainingWinsOverPressure: once draining, neither pressure nor
// recovery may change the health state, and /healthz answers 503.
func TestChaosDrainingWinsOverPressure(t *testing.T) {
	s, ts := newWatchdogServer(t)
	s.SetDraining()
	if code, p := healthz(t, ts.URL); code != http.StatusServiceUnavailable || p["status"] != "draining" {
		t.Fatalf("draining health: %d %v", code, p["status"])
	}
	s.wd.check(250 << 20) // pressure must not override draining
	if s.Health() != HealthDraining {
		t.Fatalf("pressure overrode draining: %v", s.Health())
	}
	s.wd.check(1 << 20) // nor recovery
	if s.Health() != HealthDraining {
		t.Fatalf("recovery overrode draining: %v", s.Health())
	}
}

// TestWatchdogDisabledWithoutWatermark: the zero config builds no
// watchdog and /healthz has no memory section.
func TestWatchdogDisabledWithoutWatermark(t *testing.T) {
	g := ctpquery.SampleGraph()
	db, err := ctpquery.Open(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(db, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if s.wd != nil {
		t.Fatal("watchdog built without a soft watermark")
	}
	ts := httptest.NewServer(s.Handler(false))
	defer ts.Close()
	code, p := healthz(t, ts.URL)
	if code != http.StatusOK || p["status"] != "ok" {
		t.Fatalf("health: %d %v", code, p["status"])
	}
	if _, ok := p["memory"]; ok {
		t.Fatal("memory section present without a watchdog")
	}
}

// TestWatchdogDefaults: hard defaults to 2x soft, interval to 5s.
func TestWatchdogDefaults(t *testing.T) {
	g := ctpquery.SampleGraph()
	db, err := ctpquery.Open(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(db, Config{MemSoftBytes: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if s.wd.hard != 128<<20 {
		t.Fatalf("default hard = %d, want 2x soft", s.wd.hard)
	}
	if s.wd.interval != 5*time.Second {
		t.Fatalf("default interval = %v", s.wd.interval)
	}
	if heapBytes() <= 0 {
		t.Fatal("heapBytes() reported nothing")
	}
}
