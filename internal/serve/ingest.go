package serve

import (
	"fmt"
	"net/http"
	"time"

	"ctpquery"
	"ctpquery/internal/fault"
	"ctpquery/internal/obs"
)

// probeIngest sits between parsing an ingest body and applying its
// batches; chaos tests arm it to verify a failed ingest answers a
// structured error, counts as an ingest failure, and leaves the graph at
// its pre-request epoch.
var probeIngest = fault.Register("serve.ingest")

// ingestResponse is the JSON body answering POST /ingest: what was
// applied and where the store stands now.
type ingestResponse struct {
	// Epoch after the last applied batch; each batch bumps it by one.
	Epoch uint64 `json:"epoch"`
	// Fingerprint of the new epoch, hex-encoded (it keys the query
	// cache, so a client can tell whether two servers converged).
	Fingerprint  string `json:"fingerprint"`
	Batches      int    `json:"batches"`
	NodesAdded   int    `json:"nodes_added"`
	EdgesAdded   int    `json:"edges_added"`
	EdgesDeleted int    `json:"edges_deleted"`
	TypesAdded   int    `json:"types_added"`
	// Store is the delta/compaction snapshot after this ingest — the same
	// shape /stats reports under "store".
	Store map[string]any `json:"store"`
}

// handleIngest applies mutation batches to the served graph. The request
// body is the mutation stream text format (one op per line: "+n label
// types...", "+t node type", "+e src label dst", "-e src label dst";
// blank lines separate batches — each batch applies atomically and bumps
// the epoch). Only servers over a live graph (-live) accept ingest;
// others answer 409. In-flight queries are never disturbed: they hold
// the epoch they pinned at entry.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only"})
		return
	}
	if s.Health() == HealthDraining {
		s.drained.Add(1)
		retry := s.drainRetrySeconds()
		w.Header().Set("Retry-After", fmt.Sprint(retry))
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{
			Error:       "draining: server is shutting down",
			RetryAfterS: retry,
		})
		return
	}
	g := s.base.Graph()
	if !g.IsLive() {
		s.ingestFailures.Add(1)
		writeJSON(w, http.StatusConflict, errorResponse{
			Error: "graph is frozen: start the server with -live to accept ingest",
		})
		return
	}

	start := time.Now()
	sp := s.tracer.Start("ingest", parentContext(r.Header.Get(obs.TraceHeader)))
	status := "ok"
	defer func() {
		sp.Status(status)
		sp.End()
		s.met.ingestDur.With(status).Observe(time.Since(start).Seconds())
	}()

	batches, err := ctpquery.ReadMutations(http.MaxBytesReader(w, r.Body, 8<<20))
	if err != nil {
		status = "bad_request"
		s.ingestFailures.Add(1)
		sp.Error(err)
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if len(batches) == 0 {
		status = "bad_request"
		s.ingestFailures.Add(1)
		err := fmt.Errorf("empty ingest body (no operations)")
		sp.Error(err)
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if err := probeIngest.Err(); err != nil {
		status = "internal_error"
		s.ingestFailures.Add(1)
		s.internalErrors.Add(1)
		sp.Error(err)
		s.fail(w, http.StatusInternalServerError, err)
		return
	}

	var resp ingestResponse
	for i, b := range batches {
		res, err := s.base.Mutate(b)
		if err != nil {
			// Batches before i are applied and stay applied (each is its
			// own epoch); report how far we got alongside the error.
			status = "bad_request"
			s.ingestFailures.Add(1)
			sp.Error(err)
			s.fail(w, http.StatusBadRequest,
				fmt.Errorf("batch %d of %d: %w (previous batches applied)", i+1, len(batches), err))
			return
		}
		resp.Epoch = res.Epoch
		resp.Fingerprint = fmt.Sprintf("%016x", res.Fingerprint)
		resp.Batches++
		resp.NodesAdded += res.NodesAdded
		resp.EdgesAdded += res.EdgesAdded
		resp.EdgesDeleted += res.EdgesDeleted
		resp.TypesAdded += res.TypesAdded
	}
	ops := int64(resp.NodesAdded + resp.EdgesAdded + resp.EdgesDeleted + resp.TypesAdded)
	s.ingestBatches.Add(int64(resp.Batches))
	s.ingestOps.Add(ops)
	sp.AttrInt("batches", int64(resp.Batches)).AttrInt("ops", ops).AttrInt("epoch", int64(resp.Epoch))
	if st, ok := g.StoreStats(); ok {
		resp.Store = storeJSON(st)
	}
	writeJSON(w, http.StatusOK, resp)
}

// storeJSON renders StoreStats for /ingest responses and /stats.
func storeJSON(st ctpquery.StoreStats) map[string]any {
	return map[string]any{
		"epoch":              st.Epoch,
		"fingerprint":        fmt.Sprintf("%016x", st.Fingerprint),
		"base_gen":           st.BaseGen,
		"base_nodes":         st.BaseNodes,
		"base_edges":         st.BaseEdges,
		"added_nodes":        st.AddedNodes,
		"delta_edges":        st.DeltaEdges,
		"dead_edges":         st.DeadEdges,
		"types_added":        st.TypesAdded,
		"pending_ops":        st.PendingOps,
		"compact_threshold":  st.CompactThreshold,
		"compacting":         st.Compacting,
		"compactions":        st.Compactions,
		"compact_aborts":     st.CompactAborts,
		"last_compaction_ms": float64(st.LastCompactNS) / 1e6,
	}
}

// noteCompaction is the live store's compaction observer: every attempt
// becomes a trace in the flight recorder (aborts flagged and carrying
// their error), so "why did p99 wobble at 14:03" has an answer.
func (s *Server) noteCompaction(ci ctpquery.CompactionInfo) {
	sp := s.tracer.Start("graph.compact", obs.SpanContext{})
	sp.AttrInt("epoch", int64(ci.Epoch)).
		AttrInt("base_gen", int64(ci.BaseGen)).
		Attr("duration", ci.Duration.String()).
		AttrBool("aborted", ci.Aborted)
	if ci.Err != nil {
		sp.Error(ci.Err)
		sp.Status("aborted")
	}
	sp.End()
}
