package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"ctpquery"
	"ctpquery/internal/admission"
	"ctpquery/internal/fault"
	"ctpquery/internal/testutil"
)

const chaosServeQuery = "SELECT ?w WHERE { CONNECT n1 n400 AS ?w MAX 16 LIMIT 1 . }"

// TestChaosPanicReleasesAdmissionSlot is the slot-leak regression: with
// exactly ONE execution slot, a request that panics while holding it
// must answer 500 (structured JSON) AND release the slot, or every
// subsequent request sheds forever.
func TestChaosPanicReleasesAdmissionSlot(t *testing.T) {
	defer fault.Reset()
	g := ctpquery.RandomGraph(800, 2400, []string{"knows", "cites", "funds"}, 42)
	db, err := ctpquery.Open(g, &ctpquery.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(db, Config{
		DefaultTimeout: 5 * time.Second,
		Admission:      &admission.Config{MaxConcurrent: 1, QueueDepth: 4, MaxQueueWait: 2 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler(false))
	defer ts.Close()

	// First request panics after admission (while holding the only slot).
	fault.Reset()
	if err := fault.Arm("serve.query.admitted", fault.Fault{Kind: fault.Panic}); err != nil {
		t.Fatal(err)
	}
	code, _, fail := postQuery(t, ts.URL, queryRequest{Query: chaosServeQuery})
	if code != http.StatusInternalServerError {
		t.Fatalf("panicking request answered %d, want 500", code)
	}
	if fail.Error == "" {
		t.Fatal("500 carried no structured error body")
	}
	if s.panics.Load() == 0 {
		t.Fatal("middleware did not count the recovered panic")
	}

	// Disarmed, the next request must get the slot — it was released
	// during the panic unwind, not leaked.
	fault.Reset()
	code, out, fail := postQuery(t, ts.URL, queryRequest{Query: chaosServeQuery})
	if code != http.StatusOK {
		t.Fatalf("post-panic request answered %d (%s): the admission slot leaked", code, fail.Error)
	}
	if out.RowCount == 0 {
		t.Fatal("post-panic request returned no rows")
	}
}

// TestChaosEveryProbeThroughServer sweeps a panic through every
// registered probe point in the whole runtime — exec workers, kernels,
// engine, cache singleflight, serve — via real HTTP requests. The
// invariant: each response is 200 (fault didn't fire on that path) or a
// structured 500 (contained), the server keeps serving afterwards, and
// no goroutines leak.
func TestChaosEveryProbeThroughServer(t *testing.T) {
	defer fault.Reset()
	g := ctpquery.RandomGraph(800, 2400, []string{"knows", "cites", "funds"}, 42)
	db, err := ctpquery.Open(g, &ctpquery.Options{Parallel: true, Parallelism: 4},
		ctpquery.WithCache(16<<20, 0))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(db, Config{DefaultTimeout: 10 * time.Second, MaxParallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler(false))
	defer ts.Close()
	baseline := runtime.NumGoroutine()

	for i, point := range fault.Points() {
		t.Run(point, func(t *testing.T) {
			fault.Reset()
			if err := fault.Arm(point, fault.Fault{Kind: fault.Panic}); err != nil {
				t.Fatal(err)
			}
			// Distinct node pair per probe so the result cache can't answer
			// from an earlier sweep iteration and mask the probe's path.
			q := queryRequest{Query: fmt.Sprintf(
				"SELECT ?w WHERE { CONNECT n%d n%d AS ?w MAX 16 LIMIT 1 . }", 2+i, 200+i)}
			code, _, fail := postQuery(t, ts.URL, q)
			fired := fault.Fired(point)
			switch {
			case fired > 0 && code != http.StatusInternalServerError:
				t.Fatalf("probe fired but answered %d (%s), want 500", code, fail.Error)
			case fired > 0 && fail.Error == "":
				t.Fatal("500 carried no structured error")
			case fired == 0 && code != http.StatusOK:
				t.Fatalf("probe idle yet request failed: %d %s", code, fail.Error)
			}

			// The server must still be alive for a clean follow-up.
			fault.Reset()
			code, _, fail = postQuery(t, ts.URL, queryRequest{Query: chaosServeQuery})
			if code != http.StatusOK {
				t.Fatalf("server wedged after %s: %d %s", point, code, fail.Error)
			}
		})
	}
	fault.Reset()
	testutil.SettleGoroutines(t, baseline, 4)
}
