package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"ctpquery"
	"ctpquery/internal/fault"
	"ctpquery/internal/obs"
	"ctpquery/internal/testutil"
)

// obsServer builds a traced server over a small random graph.
func obsServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	g := ctpquery.RandomGraph(800, 2400, []string{"knows", "cites", "funds"}, 42)
	db, err := ctpquery.Open(g, &ctpquery.Options{Parallel: true, Parallelism: 2},
		ctpquery.WithCache(16<<20, 0))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(db, Config{DefaultTimeout: 10 * time.Second, MaxParallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler(false))
	t.Cleanup(ts.Close)
	return s, ts
}

// TestObsQueryTrace: a query response names its trace, /debug/traces?id=
// serves that trace's span tree, and the tree holds the lifecycle spans
// the tentpole promises (parse, cache, engine eval with stage children).
func TestObsQueryTrace(t *testing.T) {
	_, ts := obsServer(t)
	code, out, fail := postQuery(t, ts.URL, queryRequest{Query: chaosServeQuery})
	if code != http.StatusOK {
		t.Fatalf("query answered %d: %s", code, fail.Error)
	}
	if out.TraceID == "" {
		t.Fatal("200 response carried no trace_id")
	}

	resp, err := http.Get(ts.URL + "/debug/traces?id=" + out.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/traces?id=%s: %d", out.TraceID, resp.StatusCode)
	}
	var trace obs.Trace
	if err := json.NewDecoder(resp.Body).Decode(&trace); err != nil {
		t.Fatal(err)
	}
	if msg := trace.WellFormed(); msg != "" {
		t.Fatalf("trace malformed: %s", msg)
	}
	names := map[string]int{}
	for _, sp := range trace.Spans {
		names[sp.Name]++
	}
	for _, want := range []string{"query", "parse", "cache", "engine.eval", "bgp", "join", "encode"} {
		if names[want] == 0 {
			t.Errorf("trace has no %q span (got %v)", want, names)
		}
	}
}

// TestObsMetricsAgreeWithStats: /metrics parses as strict Prometheus
// text and its counters agree with /stats — both render the same
// consistent snapshot.
func TestObsMetricsAgreeWithStats(t *testing.T) {
	_, ts := obsServer(t)
	for i := 0; i < 3; i++ {
		q := queryRequest{Query: fmt.Sprintf("SELECT ?w WHERE { CONNECT n%d n%d AS ?w MAX 4 LIMIT 1 . }", 2+i, 300+i)}
		if code, _, fail := postQuery(t, ts.URL, q); code != http.StatusOK {
			t.Fatalf("warmup query %d answered %d: %s", i, code, fail.Error)
		}
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	fams, err := obs.ParseExposition(mresp.Body)
	if err != nil {
		t.Fatalf("/metrics does not parse: %v", err)
	}

	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var stats struct {
		Requests float64 `json:"requests"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}

	fam := obs.Find(fams, "ctp_requests_total")
	if fam == nil {
		t.Fatal("ctp_requests_total missing from /metrics")
	}
	v, ok := fam.Value("ctp_requests_total", nil)
	if !ok {
		t.Fatal("ctp_requests_total has no unlabeled sample")
	}
	if v != stats.Requests {
		t.Fatalf("/metrics ctp_requests_total %v != /stats requests %v", v, stats.Requests)
	}
	for _, name := range []string{"ctp_responses_total", "ctp_request_duration_seconds",
		"ctp_stage_duration_seconds", "ctp_trace_spans_started_total"} {
		if obs.Find(fams, name) == nil {
			t.Errorf("%s missing from /metrics", name)
		}
	}
}

// TestChaosSpanLeakContract is the span-leak contract: panics injected
// at every registered probe point must not leave a span un-ended. After
// the sweep settles, spans started == spans ended on the server's
// tracer, and every recorded trace is structurally well-formed.
func TestChaosSpanLeakContract(t *testing.T) {
	defer fault.Reset()
	s, ts := obsServer(t)
	baseline := runtime.NumGoroutine()

	for i, point := range fault.Points() {
		fault.Reset()
		if err := fault.Arm(point, fault.Fault{Kind: fault.Panic}); err != nil {
			t.Fatal(err)
		}
		q := queryRequest{Query: fmt.Sprintf(
			"SELECT ?w WHERE { CONNECT n%d n%d AS ?w MAX 16 LIMIT 1 . }", 3+i, 400+i)}
		postQuery(t, ts.URL, q) // outcome irrelevant; span accounting is the subject
	}
	fault.Reset()
	testutil.SettleGoroutines(t, baseline, 4)

	started, ended, _ := s.Tracer().SpanCounts()
	if started != ended {
		t.Fatalf("span leak under chaos: %d started, %d ended", started, ended)
	}
	for _, trace := range s.Tracer().Traces() {
		if msg := trace.WellFormed(); msg != "" {
			t.Errorf("trace %s malformed: %s", trace.TraceID, msg)
		}
	}
}

// TestObsTracingDisabled: with TraceOff the response carries no trace
// ID, /debug/traces stays empty, and nothing leaks.
func TestObsTracingDisabled(t *testing.T) {
	g := ctpquery.RandomGraph(400, 1200, []string{"knows"}, 7)
	db, err := ctpquery.Open(g, &ctpquery.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(db, Config{DefaultTimeout: 5 * time.Second, TraceOff: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler(false))
	defer ts.Close()

	code, out, fail := postQuery(t, ts.URL, queryRequest{Query: "SELECT ?w WHERE { CONNECT n1 n200 AS ?w MAX 8 LIMIT 1 . }"})
	if code != http.StatusOK {
		t.Fatalf("query answered %d: %s", code, fail.Error)
	}
	if out.TraceID != "" {
		t.Fatalf("tracing disabled yet response carries trace_id %q", out.TraceID)
	}
	if got := len(s.Tracer().Traces()); got != 0 {
		t.Fatalf("tracing disabled yet %d traces recorded", got)
	}
	started, ended, _ := s.Tracer().SpanCounts()
	if started != 0 || ended != 0 {
		t.Fatalf("tracing disabled yet span counters moved: %d/%d", started, ended)
	}
}
