package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ctpquery"
	"ctpquery/internal/fault"
)

// newLiveTestServer serves a live (mutable) copy of the test graph, the
// way `ctpserve -live` runs.
func newLiveTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	g := ctpquery.RandomGraph(800, 2400, []string{"knows", "cites", "funds"}, 42).Live()
	db, err := ctpquery.Open(g, &ctpquery.Options{}, ctpquery.WithCache(16<<20, 0))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(db, Config{DefaultTimeout: 10 * time.Second, MaxRows: 1000})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler(false))
	t.Cleanup(ts.Close)
	return s, ts
}

func postIngest(t *testing.T, url, body string) (int, ingestResponse, errorResponse) {
	t.Helper()
	resp, err := http.Post(url+"/ingest", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out ingestResponse
	var fail errorResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decoding ingest response: %v", err)
		}
	} else {
		if err := json.NewDecoder(resp.Body).Decode(&fail); err != nil {
			t.Fatalf("decoding ingest error: %v", err)
		}
	}
	return resp.StatusCode, out, fail
}

// TestIngestEndToEnd drives the full write path over HTTP: two batches
// land as two epochs, queries see the new data immediately, and the
// store surfaces on /healthz, /stats, and /metrics.
func TestIngestEndToEnd(t *testing.T) {
	s, ts := newLiveTestServer(t)

	// Warm the cache at epoch 0 so the post-ingest query proves
	// fingerprint rotation (a stale hit would answer without "zed").
	const q = `SELECT ?x WHERE { ?x funds zed . }`
	code, out, fail := postQuery(t, ts.URL, queryRequest{Query: q})
	if code != http.StatusOK {
		t.Fatalf("pre-ingest query: %d: %s", code, fail.Error)
	}
	if out.RowCount != 0 {
		t.Fatalf("pre-ingest query found %d rows, want 0", out.RowCount)
	}

	stream := "+n zed entrepreneur\n" + // batch 1: the node
		"\n" +
		"+e n1 funds zed\n+e n2 funds zed\n" // batch 2: two edges
	code, ing, fail := postIngest(t, ts.URL, stream)
	if code != http.StatusOK {
		t.Fatalf("ingest: %d: %s", code, fail.Error)
	}
	if ing.Epoch != 2 || ing.Batches != 2 || ing.NodesAdded != 1 || ing.EdgesAdded != 2 {
		t.Fatalf("ingest response = %+v", ing)
	}
	if len(ing.Fingerprint) != 16 {
		t.Fatalf("fingerprint %q is not a 16-hex-digit string", ing.Fingerprint)
	}
	if ing.Store == nil || ing.Store["epoch"] == nil {
		t.Fatalf("ingest response carries no store stats: %+v", ing.Store)
	}

	code, out, fail = postQuery(t, ts.URL, queryRequest{Query: q})
	if code != http.StatusOK {
		t.Fatalf("post-ingest query: %d: %s", code, fail.Error)
	}
	if out.RowCount != 2 {
		t.Fatalf("post-ingest query found %d rows, want 2 (stale cache hit?)", out.RowCount)
	}

	// /healthz reports the live epoch.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health["live"] != true || health["epoch"] != float64(2) {
		t.Fatalf("/healthz = %v, want live=true epoch=2", health)
	}

	// /stats carries the store and ingest sections.
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	store, ok := stats["store"].(map[string]any)
	if !ok {
		t.Fatalf("/stats has no store section: %v", stats)
	}
	if store["epoch"] != float64(2) || store["delta_edges"] != float64(2) {
		t.Fatalf("/stats store = %v", store)
	}
	// Ops = 1 node + 1 type (entrepreneur) + 2 edges.
	ingest, ok := stats["ingest"].(map[string]any)
	if !ok || ingest["batches"] != float64(2) || ingest["ops"] != float64(4) {
		t.Fatalf("/stats ingest = %v", ingest)
	}

	// /metrics exposes the ingest counters and store gauges.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	rawBytes, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	raw := string(rawBytes)
	for _, want := range []string{
		"ctp_ingest_batches_total 2",
		"ctp_ingest_ops_total 4",
		"ctp_store_epoch 2",
		"ctp_store_delta_edges 2",
	} {
		if !strings.Contains(raw, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	_ = s
}

// TestIngestFrozenGraph: a server over a frozen graph answers 409 and
// counts the refusal.
func TestIngestFrozenGraph(t *testing.T) {
	s, ts := newTestServer(t)
	code, _, fail := postIngest(t, ts.URL, "+e n1 knows n2\n")
	if code != http.StatusConflict {
		t.Fatalf("ingest into frozen graph: %d, want 409", code)
	}
	if !strings.Contains(fail.Error, "frozen") {
		t.Fatalf("409 body %q does not explain the graph is frozen", fail.Error)
	}
	if s.ingestFailures.Load() != 1 {
		t.Fatalf("ingestFailures = %d, want 1", s.ingestFailures.Load())
	}
}

// TestIngestValidation: method, empty-body, and parse errors answer
// 4xx; a failing batch reports how many earlier batches were applied.
func TestIngestValidation(t *testing.T) {
	s, ts := newLiveTestServer(t)

	resp, err := http.Get(ts.URL + "/ingest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /ingest: %d, want 405", resp.StatusCode)
	}

	if code, _, _ := postIngest(t, ts.URL, ""); code != http.StatusBadRequest {
		t.Fatalf("empty body: %d, want 400", code)
	}
	if code, _, fail := postIngest(t, ts.URL, "+x what\n"); code != http.StatusBadRequest {
		t.Fatalf("malformed op: %d, want 400", code)
	} else if !strings.Contains(fail.Error, "line 1") {
		t.Fatalf("parse error %q does not name the line", fail.Error)
	}

	// Batch 1 is fine, batch 2 references an ambiguous/invalid op: the
	// error names the failing batch and epoch stays at 1.
	stream := "+e n1 funds n2\n\n-e nope knows missing\n+e n1 knows\n"
	code, _, fail := postIngest(t, ts.URL, stream)
	if code != http.StatusBadRequest {
		t.Fatalf("bad second batch: %d, want 400", code)
	}
	if !strings.Contains(fail.Error, "line") {
		t.Fatalf("error %q does not locate the problem", fail.Error)
	}
	if got := s.base.Graph().Epoch(); got != 0 {
		t.Fatalf("parse failure applied batches: epoch %d, want 0", got)
	}
}

// TestIngestPartialFailure: when a later batch fails validation at apply
// time, earlier batches stay applied (each is its own epoch) and the
// error says so.
func TestIngestPartialFailure(t *testing.T) {
	s, ts := newLiveTestServer(t)

	// Batch 1 is valid; batch 2 parses fine but fails validation at apply
	// time (AddType on a node that does not exist).
	code, _, fail := postIngest(t, ts.URL, "+e n1 funds n2\n\n+t nobody person\n")
	if code != http.StatusBadRequest {
		t.Fatalf("unknown AddType node: %d, want 400", code)
	}
	if !strings.Contains(fail.Error, "batch 2 of 2") || !strings.Contains(fail.Error, "previous batches applied") {
		t.Fatalf("error %q does not report partial application", fail.Error)
	}
	if got := s.base.Graph().Epoch(); got != 1 {
		t.Fatalf("epoch = %d, want 1 (first batch applied, second rejected)", got)
	}
}

// TestIngestChaosFault arms the serve.ingest probe: the request answers
// a structured 500, the epoch does not move, and the failure is
// counted; disarmed, the same body applies cleanly.
func TestIngestChaosFault(t *testing.T) {
	defer fault.Reset()
	s, ts := newLiveTestServer(t)

	if err := fault.Arm("serve.ingest", fault.Fault{Kind: fault.Error}); err != nil {
		t.Fatal(err)
	}
	code, _, fail := postIngest(t, ts.URL, "+e n1 funds n2\n")
	if code != http.StatusInternalServerError {
		t.Fatalf("armed ingest: %d, want 500", code)
	}
	if fail.Error == "" {
		t.Fatal("500 carried no structured error body")
	}
	if got := s.base.Graph().Epoch(); got != 0 {
		t.Fatalf("failed ingest moved the epoch to %d", got)
	}
	if s.ingestFailures.Load() != 1 {
		t.Fatalf("ingestFailures = %d, want 1", s.ingestFailures.Load())
	}

	fault.Reset()
	if code, ing, fail := postIngest(t, ts.URL, "+e n1 funds n2\n"); code != http.StatusOK {
		t.Fatalf("disarmed ingest: %d: %s", code, fail.Error)
	} else if ing.Epoch != 1 {
		t.Fatalf("epoch = %d, want 1", ing.Epoch)
	}
}
