package serve

import (
	"strconv"
	"time"

	"ctpquery"
	"ctpquery/internal/admission"
	"ctpquery/internal/obs"
)

// serveMetrics is the server's hot-path instrument set; everything else
// on /metrics derives from the per-scrape statsSnapshot.
type serveMetrics struct {
	// responses counts completed responses by admission class and
	// terminal status (ok, bad_request, shed, canceled, internal_error,
	// error, drained).
	responses *obs.CounterVec
	// reqDur is the end-to-end handler latency by class.
	reqDur *obs.HistogramVec
	// stageDur is the per-stage latency breakdown (parse,
	// admission_wait, bgp, ctp, join, encode) — the server-side
	// Figure 11 decomposition as real histograms, so stage p99s are
	// observable without a profiler.
	stageDur *obs.HistogramVec
	// ingestDur is the POST /ingest handler latency by terminal status
	// (ok, bad_request, internal_error), so write-path slowdowns — say a
	// compaction replay storm — are visible next to the read-path p99s.
	ingestDur *obs.HistogramVec
}

func newServeMetrics(reg *obs.Registry) *serveMetrics {
	return &serveMetrics{
		responses: reg.NewCounterVec("ctp_responses_total",
			"Completed query responses by admission class and terminal status.",
			"class", "status"),
		reqDur: reg.NewHistogramVec("ctp_request_duration_seconds",
			"End-to-end /query handler latency by admission class.",
			nil, "class"),
		stageDur: reg.NewHistogramVec("ctp_stage_duration_seconds",
			"Per-stage query latency (parse, admission_wait, bgp, ctp, join, encode).",
			nil, "stage"),
		ingestDur: reg.NewHistogramVec("ctp_ingest_duration_seconds",
			"End-to-end /ingest handler latency by terminal status.",
			nil, "status"),
	}
}

// observeStages feeds one executed query's stage timings into the
// per-stage histograms.
func (m *serveMetrics) observeStages(parse, wait, bgp, ctp, join time.Duration) {
	m.stageDur.With("parse").Observe(parse.Seconds())
	m.stageDur.With("admission_wait").Observe(wait.Seconds())
	m.stageDur.With("bgp").Observe(bgp.Seconds())
	m.stageDur.With("ctp").Observe(ctp.Seconds())
	m.stageDur.With("join").Observe(join.Seconds())
}

// statsSnapshot is one consistent cut of every server counter, taken
// once per scrape and reused by both /stats and /metrics so the two
// surfaces can never disagree on the same counter mid-traffic. (The
// previous /stats handler loaded each atomic at its own point in the
// render, so e.g. `requests` and the completed-request average could
// come from different instants.)
type statsSnapshot struct {
	uptimeS        float64
	health         HealthState
	requests       int64
	failures       int64
	timeouts       int64
	sheds          int64
	drained        int64
	panics         int64
	internalErrors int64
	inFlight       int64
	avgLatencyMS   float64
	nodes, edges   int
	algorithm      string

	treesGenerated int64
	treesRecycled  int64
	allocations    uint64
	peakQueueLen   int64
	peakTrees      int64
	workers        []workerAgg

	cache     *ctpquery.CacheStats
	admission *admission.Stats
	estimator *admission.EstimatorStats

	// Live-graph state: store is nil when the served graph is frozen.
	store          *ctpquery.StoreStats
	ingestBatches  int64
	ingestOps      int64
	ingestFailures int64

	wdLevel       int
	wdTransitions int64
	wdShedBytes   int64
	hasWatchdog   bool
}

// snapshot cuts the server's counters. The atomics are loaded once,
// back to back; derived values (the latency average) are computed from
// the snapshot's own fields, never from a second load.
func (s *Server) snapshot() statsSnapshot {
	snap := statsSnapshot{
		uptimeS:        time.Since(s.started).Seconds(),
		health:         s.Health(),
		requests:       s.requests.Load(),
		failures:       s.failures.Load(),
		timeouts:       s.timeouts.Load(),
		sheds:          s.sheds.Load(),
		drained:        s.drained.Load(),
		panics:         s.panics.Load(),
		internalErrors: s.internalErrors.Load(),
		inFlight:       s.inFlight.Load(),
		treesGenerated: s.treesGenerated.Load(),
		treesRecycled:  s.treesRecycled.Load(),
		allocations:    s.allocations.Load(),
		peakQueueLen:   s.peakQueueLen.Load(),
		peakTrees:      s.peakTrees.Load(),
		algorithm:      s.base.Options().Algorithm,
	}
	busyNS := s.busyNS.Load()
	if completed := snap.requests - snap.inFlight; completed > 0 {
		snap.avgLatencyMS = ms(time.Duration(busyNS / completed))
	}
	g := s.base.Graph()
	snap.nodes, snap.edges = g.NumNodes(), g.NumEdges()
	if st, ok := g.StoreStats(); ok {
		snap.store = &st
	}
	snap.ingestBatches = s.ingestBatches.Load()
	snap.ingestOps = s.ingestOps.Load()
	snap.ingestFailures = s.ingestFailures.Load()
	s.workerMu.Lock()
	snap.workers = append([]workerAgg(nil), s.workerAgg...)
	s.workerMu.Unlock()
	if cs, ok := s.base.CacheStats(); ok {
		snap.cache = &cs
	}
	if s.ctrl != nil {
		ast := s.ctrl.Stats()
		snap.admission = &ast
		est := s.est.Stats()
		snap.estimator = &est
	}
	if s.wd != nil {
		s.wd.mu.Lock()
		snap.wdLevel = s.wd.level
		snap.wdTransitions = s.wd.transitions
		snap.wdShedBytes = s.wd.shedBytes
		s.wd.mu.Unlock()
		snap.hasWatchdog = true
	}
	return snap
}

// registerCollectors wires the snapshot-derived metric families: one
// Collect callback, one snapshot per scrape.
func (s *Server) registerCollectors() {
	s.reg.Collect(func(w *obs.Exposition) {
		snap := s.snapshot()

		gauge := func(name, help string, v float64) {
			w.Family(name, help, "gauge")
			w.Sample("", nil, v)
		}
		counter := func(name, help string, v float64) {
			w.Family(name, help, "counter")
			w.Sample("", nil, v)
		}

		gauge("ctp_uptime_seconds", "Seconds since the server started.", snap.uptimeS)
		gauge("ctp_health_state", "Degradation-ladder health (0 ok, 1 degraded, 2 draining).", float64(snap.health))
		counter("ctp_requests_total", "Query requests accepted for handling.", float64(snap.requests))
		counter("ctp_failures_total", "Requests answered with an error status.", float64(snap.failures))
		counter("ctp_timeouts_total", "Requests whose CTP search hit its deadline.", float64(snap.timeouts))
		counter("ctp_sheds_total", "Requests shed by admission control (429s).", float64(snap.sheds))
		counter("ctp_drained_rejects_total", "Requests refused because the server was draining.", float64(snap.drained))
		counter("ctp_panics_total", "Panics recovered by the HTTP middleware.", float64(snap.panics))
		counter("ctp_internal_errors_total", "500s from panics contained below the handler.", float64(snap.internalErrors))
		gauge("ctp_in_flight", "Requests executing right now.", float64(snap.inFlight))
		gauge("ctp_graph_nodes", "Nodes in the served graph.", float64(snap.nodes))
		gauge("ctp_graph_edges", "Edges in the served graph.", float64(snap.edges))

		counter("ctp_search_trees_generated_total", "Provenance trees constructed across all queries.", float64(snap.treesGenerated))
		counter("ctp_search_trees_recycled_total", "Rejected candidates returned to the buffer pool.", float64(snap.treesRecycled))
		counter("ctp_search_allocations_total", "Heap allocations during searches (with -track-allocs).", float64(snap.allocations))
		gauge("ctp_search_peak_queue_len", "High-water grow-queue length over all queries.", float64(snap.peakQueueLen))
		gauge("ctp_search_peak_trees", "High-water live provenance count over all queries.", float64(snap.peakTrees))

		if len(snap.workers) > 0 {
			type wf struct {
				name, help string
				get        func(workerAgg) float64
			}
			for _, f := range []wf{
				{"ctp_exec_worker_ops_total", "Grow ops and exchanged tasks processed, per worker index.", func(a workerAgg) float64 { return float64(a.Ops) }},
				{"ctp_exec_worker_kept_total", "Provenances kept, per worker index.", func(a workerAgg) float64 { return float64(a.Kept) }},
				{"ctp_exec_worker_shipped_total", "Tasks routed to other workers' shards, per worker index.", func(a workerAgg) float64 { return float64(a.Shipped) }},
				{"ctp_exec_worker_stolen_total", "Ops stolen from peers' queues, per worker index.", func(a workerAgg) float64 { return float64(a.Stolen) }},
				{"ctp_exec_worker_busy_seconds_total", "Thread CPU seconds inside the worker loop, per worker index.", func(a workerAgg) float64 { return float64(a.BusyNS) / 1e9 }},
			} {
				w.Family(f.name, f.help, "counter")
				for i, a := range snap.workers {
					w.Sample("", []obs.Label{{Name: "worker", Value: strconv.Itoa(i)}}, f.get(a))
				}
			}
		}

		if snap.cache != nil {
			cs := snap.cache
			counter("ctp_cache_hits_total", "Result-cache hits.", float64(cs.Hits))
			counter("ctp_cache_misses_total", "Result-cache misses.", float64(cs.Misses))
			counter("ctp_cache_coalesced_total", "Requests coalesced onto an in-flight identical query.", float64(cs.Coalesced))
			counter("ctp_cache_evictions_total", "Entries evicted by capacity or shedding.", float64(cs.Evictions))
			counter("ctp_cache_rejected_total", "Results refused admission to the cache.", float64(cs.Rejected))
			gauge("ctp_cache_entries", "Entries resident in the result cache.", float64(cs.Entries))
			gauge("ctp_cache_bytes", "Bytes resident in the result cache.", float64(cs.Bytes))
			gauge("ctp_cache_max_bytes", "Result-cache capacity.", float64(cs.MaxBytes))
		}

		if snap.admission != nil {
			ast := snap.admission
			classes := []struct {
				name string
				cs   admission.ClassStats
			}{{"cheap", ast.Cheap}, {"analytical", ast.Analytical}}
			labeled := func(name, help, typ string, get func(admission.ClassStats) float64) {
				w.Family(name, help, typ)
				for _, c := range classes {
					w.Sample("", []obs.Label{{Name: "class", Value: c.name}}, get(c.cs))
				}
			}
			labeled("ctp_admission_running", "Requests holding an execution slot.", "gauge",
				func(cs admission.ClassStats) float64 { return float64(cs.Running) })
			labeled("ctp_admission_queued", "Requests waiting in the class queue right now.", "gauge",
				func(cs admission.ClassStats) float64 { return float64(cs.Queued) })
			labeled("ctp_admission_peak_queued", "High-water queue depth.", "gauge",
				func(cs admission.ClassStats) float64 { return float64(cs.PeakQueued) })
			labeled("ctp_admission_admitted_total", "Requests granted an execution slot.", "counter",
				func(cs admission.ClassStats) float64 { return float64(cs.Admitted) })
			w.Family("ctp_admission_shed_total", "Requests shed by the admission layer, by class and reason.", "counter")
			for _, c := range classes {
				for _, r := range []struct {
					reason string
					v      int64
				}{{"full", c.cs.ShedFull}, {"expired", c.cs.ShedExpired}, {"budget", c.cs.ShedBudget}} {
					w.Sample("", []obs.Label{{Name: "class", Value: c.name}, {Name: "reason", Value: r.reason}}, float64(r.v))
				}
			}
			gauge("ctp_admission_in_flight_cost_units", "Summed estimated cost of in-flight requests.", ast.InFlightCost)
			gauge("ctp_admission_budget_scale", "Degradation multiplier on the admission cost budget.", ast.BudgetScale)
			if snap.estimator != nil {
				counter("ctp_admission_estimates_total", "Cost estimates produced.", float64(snap.estimator.Estimates))
				counter("ctp_admission_observations_total", "Actual-cost observations fed back.", float64(snap.estimator.Observations))
				gauge("ctp_admission_learned_shapes", "Distinct query shapes with observed feedback.", float64(snap.estimator.LearnedShapes))
			}
		}

		if snap.store != nil {
			st := snap.store
			counter("ctp_ingest_batches_total", "Mutation batches applied via POST /ingest.", float64(snap.ingestBatches))
			counter("ctp_ingest_ops_total", "Individual mutation ops applied via POST /ingest.", float64(snap.ingestOps))
			counter("ctp_ingest_failures_total", "Ingest requests answered with an error status.", float64(snap.ingestFailures))
			gauge("ctp_store_epoch", "Current graph epoch (one per applied batch; compaction keeps it).", float64(st.Epoch))
			gauge("ctp_store_base_gen", "Compacted-base generation (bumps when a compaction lands).", float64(st.BaseGen))
			gauge("ctp_store_delta_edges", "Edges resident in the delta overlay.", float64(st.DeltaEdges))
			gauge("ctp_store_added_nodes", "Nodes added since the last compaction.", float64(st.AddedNodes))
			gauge("ctp_store_dead_edges", "Base edges tombstoned since the last compaction.", float64(st.DeadEdges))
			gauge("ctp_store_pending_ops", "Delta ops accumulated toward the compaction threshold.", float64(st.PendingOps))
			gauge("ctp_store_compacting", "1 while a background compaction is rebuilding the base.", boolGauge(st.Compacting))
			counter("ctp_store_compactions_total", "Background compactions that landed a new base.", float64(st.Compactions))
			counter("ctp_store_compact_aborts_total", "Compactions aborted by a contained panic or replay failure.", float64(st.CompactAborts))
			gauge("ctp_store_last_compaction_seconds", "Wall time of the most recent compaction.", float64(st.LastCompactNS)/1e9)
		}

		if snap.hasWatchdog {
			gauge("ctp_watchdog_level", "Memory-pressure ladder level (0 none, 1 soft, 2 hard).", float64(snap.wdLevel))
			counter("ctp_watchdog_transitions_total", "Ladder level changes.", float64(snap.wdTransitions))
			counter("ctp_watchdog_shed_cache_bytes_total", "Cache bytes dropped by the watchdog.", float64(snap.wdShedBytes))
		}

		started, ended, dropped := s.tracer.SpanCounts()
		counter("ctp_trace_spans_started_total", "Spans started by the tracer.", float64(started))
		counter("ctp_trace_spans_ended_total", "Spans ended (started==ended once settled is the leak contract).", float64(ended))
		counter("ctp_trace_spans_dropped_total", "Spans ended after their trace finalized (late hedge losers).", float64(dropped))
		tStarted, tFinished, tSlow := s.tracer.TraceCounts()
		counter("ctp_traces_started_total", "Traces started.", float64(tStarted))
		counter("ctp_traces_finished_total", "Traces finalized into the flight recorder.", float64(tFinished))
		counter("ctp_traces_slow_total", "Traces past the slow-query threshold.", float64(tSlow))
	})
}

// boolGauge renders a bool as 0/1.
func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Tracer exposes the server's tracer (flight recorder, span
// accounting) to tests and the in-process smokes.
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// Registry exposes the server's metric registry.
func (s *Server) Registry() *obs.Registry { return s.reg }

// parentContext extracts a propagated trace context from the request's
// Traceparent header (the coordinator→shard join); zero when absent.
func parentContext(hdr string) obs.SpanContext {
	if hdr == "" {
		return obs.SpanContext{}
	}
	sc, _ := obs.ParseTraceparent(hdr)
	return sc
}
