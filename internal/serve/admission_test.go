package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"ctpquery"
	"ctpquery/internal/admission"
)

// The admission e2e suite runs the production serving path against a
// saturated server, deterministically: the analytical queries connect
// node labels that do not exist in the graph, so they classify
// analytical by shape (4 members, unbounded MAX) but execute in
// microseconds on empty seed sets — and the testExecGate hook holds
// admitted analytical requests inside their execution slots until the
// test releases them. No sleeps decide outcomes; every state the tests
// assert on is reached by waiting on controller counters.

// Distinct analytical query texts (distinct, so the result cache cannot
// coalesce them).
func analyticalQuery(i byte) string {
	return "SELECT ?w WHERE { CONNECT qa" + string('0'+i) + " qb qc qd AS ?w . }"
}

const cheapQuery = "SELECT ?w WHERE { CONNECT qz1 qz2 AS ?w MAX 2 LIMIT 1 . }"

// newAdmissionServer builds a server with 2 execution slots, 1 reserved
// for cheap requests, an analytical queue of depth 1, and a gate that
// parks admitted analytical requests until released.
func newAdmissionServer(t *testing.T, maxQueueWait time.Duration) (*Server, *httptest.Server, func()) {
	t.Helper()
	g := ctpquery.RandomGraph(800, 2400, []string{"knows", "cites", "funds"}, 42)
	db, err := ctpquery.Open(g, &ctpquery.Options{Parallel: true}, ctpquery.WithCache(64<<20, 0))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(db, Config{
		DefaultTimeout: 10 * time.Second,
		MaxTimeout:     30 * time.Second,
		MaxRows:        1000,
		MaxParallelism: 16,
		Admission: &admission.Config{
			MaxConcurrent: 2,
			CheapReserve:  1,
			QueueDepth:    1,
			MaxQueueWait:  maxQueueWait,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	gateCh := make(chan struct{})
	s.testExecGate = func(c admission.Class) {
		if c == admission.Analytical {
			<-gateCh
		}
	}
	var once sync.Once
	release := func() { once.Do(func() { close(gateCh) }) }
	t.Cleanup(release)
	ts := httptest.NewServer(s.Handler(false))
	t.Cleanup(ts.Close)
	return s, ts, release
}

// waitUntil polls cond until true or the deadline; failing the test on
// timeout with msg.
func waitUntil(t *testing.T, msg string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", msg)
		}
		time.Sleep(time.Millisecond)
	}
}

// postRaw posts a query and returns the full HTTP response with decoded
// body, keeping headers (Retry-After) visible.
func postRaw(t *testing.T, url string, req queryRequest) (code int, header http.Header, out queryResponse, fail errorResponse) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	} else if err := json.NewDecoder(resp.Body).Decode(&fail); err != nil {
		t.Fatalf("decoding error response: %v", err)
	}
	return resp.StatusCode, resp.Header, out, fail
}

// The tentpole guarantee end to end: with the single analytical slot
// held and the analytical queue full, (a) a further analytical request
// sheds immediately with 429 + Retry-After, (b) a cheap request is
// admitted through the reserve and completes within its deadline, and
// (c) the queued analytical request completes once the slot frees.
func TestAdmissionSaturationCheapSurvives(t *testing.T) {
	s, ts, release := newAdmissionServer(t, 30*time.Second)

	type reply struct {
		code int
		out  queryResponse
	}
	a1 := make(chan reply, 1)
	a2 := make(chan reply, 1)
	go func() {
		code, _, out, _ := postRaw(t, ts.URL, queryRequest{Query: analyticalQuery(1), TimeoutMS: 20000})
		a1 <- reply{code, out}
	}()
	waitUntil(t, "first analytical to occupy its slot", func() bool {
		return s.ctrl.Stats().Analytical.Running == 1
	})
	go func() {
		code, _, out, _ := postRaw(t, ts.URL, queryRequest{Query: analyticalQuery(2), TimeoutMS: 20000})
		a2 <- reply{code, out}
	}()
	waitUntil(t, "second analytical to queue", func() bool {
		return s.ctrl.Stats().Analytical.Queued == 1
	})

	// (a) The queue is full: the third analytical request sheds NOW, with
	// the backoff hint in both the header and the body.
	code, header, _, fail := postRaw(t, ts.URL, queryRequest{Query: analyticalQuery(3), TimeoutMS: 20000})
	if code != http.StatusTooManyRequests {
		t.Fatalf("third analytical: status %d, want 429 (%+v)", code, fail)
	}
	if header.Get("Retry-After") == "" || fail.RetryAfterS < 1 {
		t.Fatalf("shed response lacks Retry-After: header %q, body %+v", header.Get("Retry-After"), fail)
	}

	// (b) A cheap request completes through the reserve while the server
	// is saturated with analytical work — the SLO the two-class split
	// exists to protect. The 5s bound is generous; without the reserve it
	// would wait the full 30s MaxQueueWait behind the queued analytical.
	start := time.Now()
	code, _, cheap, fail := postRaw(t, ts.URL, queryRequest{Query: cheapQuery, TimeoutMS: 5000})
	if code != http.StatusOK {
		t.Fatalf("cheap under saturation: status %d: %+v", code, fail)
	}
	if lat := time.Since(start); lat > 5*time.Second {
		t.Fatalf("cheap request took %v under saturation", lat)
	}
	if cheap.Admission == nil || cheap.Admission.Class != "cheap" {
		t.Fatalf("cheap request admission report: %+v", cheap.Admission)
	}

	// (c) Free the gate: the running and the queued analytical both
	// complete normally.
	release()
	for _, ch := range []chan reply{a1, a2} {
		r := <-ch
		if r.code != http.StatusOK {
			t.Fatalf("gated analytical: status %d", r.code)
		}
		if r.out.Admission == nil || r.out.Admission.Class != "analytical" {
			t.Fatalf("analytical admission report: %+v", r.out.Admission)
		}
		if r.out.Admission.EstimatedUnits <= 0 || r.out.Admission.ActualUnits < 1 {
			t.Fatalf("admission cost report: %+v", r.out.Admission)
		}
	}

	st := s.ctrl.Stats()
	if st.Analytical.ShedFull != 1 || st.Analytical.Admitted != 2 || st.Cheap.Admitted != 1 {
		t.Fatalf("controller stats: %+v", st)
	}
	if st.Cheap.Shed() != 0 {
		t.Fatalf("cheap requests were shed: %+v", st.Cheap)
	}

	// The /stats admission section reports the same story to operators.
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Sheds     int64 `json:"sheds"`
		Failures  int64 `json:"failures"`
		Admission *struct {
			Analytical struct {
				Admitted int64 `json:"admitted"`
				ShedFull int64 `json:"shed_full"`
				Shed     int64 `json:"shed"`
			} `json:"analytical"`
			Estimator struct {
				Observations int64 `json:"observations"`
			} `json:"estimator"`
		} `json:"admission"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Admission == nil {
		t.Fatal("/stats has no admission section on an admission-enabled server")
	}
	if stats.Admission.Analytical.ShedFull != 1 || stats.Admission.Analytical.Shed != 1 {
		t.Fatalf("/stats admission: %+v", *stats.Admission)
	}
	if stats.Sheds != 1 {
		t.Fatalf("sheds = %d, want 1", stats.Sheds)
	}
	if stats.Failures != 0 {
		t.Fatalf("failures = %d; sheds must not count as failures", stats.Failures)
	}
	if stats.Admission.Estimator.Observations < 3 {
		t.Fatalf("estimator observations = %d, want one per executed search", stats.Admission.Estimator.Observations)
	}
}

// A request whose deadline expires while queued is shed with 429 and
// counted shed_expired — deadline-aware queueing, not blind FIFO.
func TestAdmissionQueuedDeadlineExpires(t *testing.T) {
	s, ts, release := newAdmissionServer(t, 60*time.Second)
	done := make(chan int, 1)
	go func() {
		code, _, _, _ := postRaw(t, ts.URL, queryRequest{Query: analyticalQuery(1), TimeoutMS: 20000})
		done <- code
	}()
	waitUntil(t, "first analytical to occupy its slot", func() bool {
		return s.ctrl.Stats().Analytical.Running == 1
	})
	// 80ms deadline, 60s MaxQueueWait: only the request's own deadline
	// can end the wait.
	code, header, _, _ := postRaw(t, ts.URL, queryRequest{Query: analyticalQuery(2), TimeoutMS: 80})
	if code != http.StatusTooManyRequests {
		t.Fatalf("expired-in-queue request: status %d, want 429", code)
	}
	if header.Get("Retry-After") == "" {
		t.Fatal("expired-in-queue response lacks Retry-After")
	}
	if st := s.ctrl.Stats(); st.Analytical.ShedExpired != 1 {
		t.Fatalf("controller stats: %+v", st)
	}
	release()
	if code := <-done; code != http.StatusOK {
		t.Fatalf("gated analytical: status %d", code)
	}
}

// A queued request that outlives the controller's MaxQueueWait is shed
// even when its own deadline is generous.
func TestAdmissionMaxQueueWaitExpires(t *testing.T) {
	s, ts, release := newAdmissionServer(t, 50*time.Millisecond)
	done := make(chan int, 1)
	go func() {
		code, _, _, _ := postRaw(t, ts.URL, queryRequest{Query: analyticalQuery(1), TimeoutMS: 20000})
		done <- code
	}()
	waitUntil(t, "first analytical to occupy its slot", func() bool {
		return s.ctrl.Stats().Analytical.Running == 1
	})
	code, _, _, _ := postRaw(t, ts.URL, queryRequest{Query: analyticalQuery(2), TimeoutMS: 20000})
	if code != http.StatusTooManyRequests {
		t.Fatalf("max-queue-wait request: status %d, want 429", code)
	}
	if st := s.ctrl.Stats(); st.Analytical.ShedExpired != 1 {
		t.Fatalf("controller stats: %+v", st)
	}
	release()
	<-done
}

// Shed and queued-then-expired requests never executed, so they must
// leave no trace anywhere downstream: not in the result cache (the next
// identical request is a miss that really runs), not in the /stats
// search-effort aggregates, and not in the estimator's observations.
func TestShedRequestsPolluteNothing(t *testing.T) {
	s, ts, release := newAdmissionServer(t, 30*time.Second)

	a1 := make(chan int, 1)
	a2 := make(chan int, 1)
	go func() {
		code, _, _, _ := postRaw(t, ts.URL, queryRequest{Query: analyticalQuery(1), TimeoutMS: 20000})
		a1 <- code
	}()
	waitUntil(t, "first analytical to occupy its slot", func() bool {
		return s.ctrl.Stats().Analytical.Running == 1
	})
	go func() {
		code, _, _, _ := postRaw(t, ts.URL, queryRequest{Query: analyticalQuery(2), TimeoutMS: 20000})
		a2 <- code
	}()
	waitUntil(t, "second analytical to queue", func() bool {
		return s.ctrl.Stats().Analytical.Queued == 1
	})

	shedQ := analyticalQuery(3)
	code, _, _, _ := postRaw(t, ts.URL, queryRequest{Query: shedQ, TimeoutMS: 20000})
	if code != http.StatusTooManyRequests {
		t.Fatalf("shed target: status %d, want 429", code)
	}

	// Nothing has executed yet (the admitted analyticals are parked at
	// the gate), so every aggregate downstream of execution must be zero:
	// a shed that contributed to any of them would show here.
	if got := s.treesGenerated.Load(); got != 0 {
		t.Fatalf("search effort aggregated before any execution: %d trees", got)
	}
	if cs, _ := s.base.CacheStats(); cs.Misses != 0 || cs.Entries != 0 {
		t.Fatalf("shed request reached the cache: %+v", cs)
	}
	if est := s.est.Stats(); est.Observations != 0 {
		t.Fatalf("shed request fed the estimator: %+v", est)
	}

	release()
	if c := <-a1; c != http.StatusOK {
		t.Fatalf("first analytical: status %d", c)
	}
	if c := <-a2; c != http.StatusOK {
		t.Fatalf("second analytical: status %d", c)
	}

	// The shed query re-issued must be a genuine miss that executes — a
	// polluted cache would serve it a hit for a run that never happened.
	code, _, out, fail := postRaw(t, ts.URL, queryRequest{Query: shedQ, TimeoutMS: 20000})
	if code != http.StatusOK {
		t.Fatalf("re-issued shed query: status %d: %+v", code, fail)
	}
	if out.Cache == nil || out.Cache.Hit || out.Cache.Coalesced {
		t.Fatalf("re-issued shed query served from cache: %+v", out.Cache)
	}
	if out.Admission == nil || out.Admission.ActualUnits < 1 {
		t.Fatalf("re-issued shed query did not really execute: %+v", out.Admission)
	}

	// Final ledger: 3 executions total (a1, a2, re-issued a3), each
	// observed once by the estimator; exactly one shed. The re-issued
	// query may classify cheap by then — the first two executions taught
	// the estimator the shape is cheap on this graph — so count
	// admissions across both classes.
	if est := s.est.Stats(); est.Observations != 3 {
		t.Fatalf("estimator observations = %d, want 3", est.Observations)
	}
	st := s.ctrl.Stats()
	if st.Analytical.Shed() != 1 || st.Analytical.Admitted+st.Cheap.Admitted != 3 {
		t.Fatalf("controller stats: %+v", st)
	}
}

// A warm cache entry answers without entering the admission queue at
// all, even while the analytical class is fully saturated.
func TestAdmissionCacheBypass(t *testing.T) {
	s, ts, release := newAdmissionServer(t, 30*time.Second)

	// Warm an analytical-class query while the server is idle. The gate
	// parks it, so run it from a goroutine and open the gate just for it.
	warmQ := analyticalQuery(7)
	warm := make(chan queryResponse, 1)
	go func() {
		_, _, out, _ := postRaw(t, ts.URL, queryRequest{Query: warmQ, TimeoutMS: 20000})
		warm <- out
	}()
	waitUntil(t, "warm query to occupy its slot", func() bool {
		return s.ctrl.Stats().Analytical.Running == 1
	})
	release()
	if out := <-warm; out.Admission == nil || out.Admission.CacheBypass {
		t.Fatalf("warming run admission report: %+v", out.Admission)
	}

	// Saturate: a fresh gate is not available (release closed it), but
	// saturation needs no gate — fill the slot and the queue with
	// requests parked on the controller itself via a full queue. Instead,
	// rebuild saturation with a new server? No: the closed gate means
	// analytical requests now run instantly, so instead saturate by
	// shrinking to the controller level: acquire the analytical slot and
	// fill the queue directly.
	relSlot, _, err := s.ctrl.Acquire(context.Background(), admission.Analytical, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer relSlot()
	queued := make(chan struct{})
	go func() {
		rel, _, err := s.ctrl.Acquire(context.Background(), admission.Analytical, 1)
		if err == nil {
			rel()
		}
		close(queued)
	}()
	waitUntil(t, "filler to queue", func() bool {
		return s.ctrl.Stats().Analytical.Queued == 1
	})

	// A cold analytical query sheds — the saturation is real. It needs a
	// shape the estimator has NOT learned yet (5 members, not 4): the
	// warming run taught it that the 4-member shape is cheap here.
	coldQ := "SELECT ?w WHERE { CONNECT qa8 qb qc qd qe AS ?w . }"
	code, _, _, _ := postRaw(t, ts.URL, queryRequest{Query: coldQ, TimeoutMS: 20000})
	if code != http.StatusTooManyRequests {
		t.Fatalf("cold analytical under saturation: status %d, want 429", code)
	}

	// The warm query is answered from cache without touching the queue.
	code, _, out, fail := postRaw(t, ts.URL, queryRequest{Query: warmQ, TimeoutMS: 20000})
	if code != http.StatusOK {
		t.Fatalf("warm query under saturation: status %d: %+v", code, fail)
	}
	if out.Admission == nil || !out.Admission.CacheBypass {
		t.Fatalf("warm query did not bypass admission: %+v", out.Admission)
	}
	if out.Cache == nil || !out.Cache.Hit {
		t.Fatalf("warm query cache report: %+v", out.Cache)
	}

	relSlot()
	<-queued
}
