package serve

import (
	"context"
	"runtime"
	"runtime/metrics"
	"sync"
	"time"
)

// HealthState is the /healthz state machine. A server is "ok" until the
// memory watchdog trips a watermark ("degraded": still serving, but
// shedding cache and capping parallelism) or shutdown begins
// ("draining": 503 so load balancers stop routing to it). Draining is
// terminal — the watchdog never downgrades it back to ok/degraded.
type HealthState int32

const (
	HealthOK HealthState = iota
	HealthDegraded
	HealthDraining
)

func (h HealthState) String() string {
	switch h {
	case HealthDegraded:
		return "degraded"
	case HealthDraining:
		return "draining"
	default:
		return "ok"
	}
}

// Health reports the current /healthz state.
func (s *Server) Health() HealthState {
	return HealthState(s.health.Load())
}

// SetDraining moves the server to the terminal draining state. Call it
// on SIGTERM before the graceful http.Server.Shutdown so health checks
// fail (503) while in-flight requests finish.
func (s *Server) SetDraining() {
	s.health.Store(int32(HealthDraining))
}

// setDegraded flips between ok and degraded without ever touching a
// draining server: shutdown wins over memory pressure.
func (s *Server) setDegraded(degraded bool) {
	want := int32(HealthOK)
	if degraded {
		want = int32(HealthDegraded)
	}
	for {
		cur := s.health.Load()
		if cur == int32(HealthDraining) || cur == want {
			return
		}
		if s.health.CompareAndSwap(cur, want) {
			return
		}
	}
}

// scaleBudget tightens (or restores) the admission cost budget; a no-op
// when the server runs without admission control.
func (s *Server) scaleBudget(scale float64) {
	if s.ctrl != nil {
		s.ctrl.SetBudgetScale(scale)
	}
}

// Memory pressure levels, in ladder order.
const (
	pressureNone = iota
	pressureSoft
	pressureHard
)

// watchdog is the graceful-degradation ladder: it samples the live heap
// and, when a watermark trips, sheds query-cache bytes, caps the
// effective parallelism of every request, and tightens the admission
// cost budget — stepping each knob further at the hard watermark and
// restoring all of them once the heap falls back below the soft one.
//
// The ladder is applied on level *transitions* with hysteresis (recovery
// requires dropping below 4/5 of the soft watermark), so a heap
// oscillating around a boundary doesn't thrash the cache.
type watchdog struct {
	s        *Server
	soft     int64
	hard     int64
	interval time.Duration

	// readHeap is swapped by tests to drive the ladder deterministically.
	readHeap func() int64

	mu          sync.Mutex
	level       int
	lastHeap    int64
	shedBytes   int64 // total cache bytes dropped by this watchdog
	transitions int64 // level changes, for /healthz and /stats
}

// newWatchdog builds the ladder from Config; nil (disabled) without a
// soft watermark. The hard watermark defaults to twice the soft one.
func newWatchdog(s *Server, cfg Config) *watchdog {
	if cfg.MemSoftBytes <= 0 {
		return nil
	}
	hard := cfg.MemHardBytes
	if hard <= 0 {
		hard = 2 * cfg.MemSoftBytes
	}
	if hard < cfg.MemSoftBytes {
		hard = cfg.MemSoftBytes
	}
	interval := cfg.WatchdogInterval
	if interval <= 0 {
		interval = 5 * time.Second
	}
	return &watchdog{
		s:        s,
		soft:     cfg.MemSoftBytes,
		hard:     hard,
		interval: interval,
		readHeap: heapBytes,
	}
}

// heapBytes reads the live-heap size (bytes occupied by reachable plus
// not-yet-swept objects) from runtime/metrics — the number the
// watermarks are written against. Cheap enough to sample every tick.
func heapBytes() int64 {
	sample := []metrics.Sample{{Name: "/memory/classes/heap/objects:bytes"}}
	metrics.Read(sample)
	if sample[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return int64(sample[0].Value.Uint64())
}

// StartWatchdog begins sampling until ctx is done. It is a no-op on a
// server configured without MemSoftBytes.
func (s *Server) StartWatchdog(ctx context.Context) {
	if s.wd == nil {
		return
	}
	go s.wd.run(ctx)
}

func (w *watchdog) run(ctx context.Context) {
	t := time.NewTicker(w.interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			w.check(w.readHeap())
		}
	}
}

// check classifies one heap sample and applies the ladder on level
// changes. Exported to the package's tests, which call it directly with
// synthetic heap sizes instead of allocating gigabytes.
func (w *watchdog) check(heap int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.lastHeap = heap

	next := w.level
	switch {
	case heap >= w.hard:
		next = pressureHard
	case heap >= w.soft:
		next = pressureSoft
	case heap < w.soft*4/5:
		next = pressureNone
		// Between 4/5·soft and soft: hold the current level (hysteresis).
	}
	if next == w.level {
		return
	}
	w.level = next
	w.transitions++
	w.apply(next)
}

// apply sets every knob for the given level. Each level states its
// absolute configuration rather than a delta, so applying is idempotent
// and transitions in either direction land in a consistent state.
func (w *watchdog) apply(level int) {
	switch level {
	case pressureHard:
		w.s.setDegraded(true)
		w.shedBytes += w.s.base.ShedCache(0) // empty the cache
		w.s.parCeiling.Store(1)
		w.s.scaleBudget(0.25)
	case pressureSoft:
		w.s.setDegraded(true)
		w.shedBytes += w.s.base.ShedCache(0.5)
		half := int32(runtime.GOMAXPROCS(0) / 2)
		if half < 1 {
			half = 1
		}
		w.s.parCeiling.Store(half)
		w.s.scaleBudget(0.5)
	default:
		w.s.setDegraded(false)
		w.s.parCeiling.Store(0) // no ceiling
		w.s.scaleBudget(1)
	}
}

// snapshot renders the watchdog for /healthz and /stats.
func (w *watchdog) snapshot() map[string]any {
	w.mu.Lock()
	defer w.mu.Unlock()
	levels := [...]string{"none", "soft", "hard"}
	return map[string]any{
		"pressure":         levels[w.level],
		"heap_bytes":       w.lastHeap,
		"soft_bytes":       w.soft,
		"hard_bytes":       w.hard,
		"shed_cache_bytes": w.shedBytes,
		"transitions":      w.transitions,
	}
}
