// Package serve is the HTTP query server behind cmd/ctpserve, factored
// out so the workload generator (cmd/ctpload) and tests can run the
// exact production serving path in-process against httptest listeners.
//
// The server serves concurrent EQL queries over one immutable graph,
// optionally defended by an admission layer (internal/admission): every
// request is priced by a cost estimator before it runs, queued in a
// bounded two-class queue (cheap requests never wait behind analytical
// enumerations), and shed with 429 + Retry-After when the queue or the
// in-flight cost budget saturates. Warm cache entries bypass the queue
// entirely via DB.Peek.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ctpquery"
	"ctpquery/internal/admission"
	"ctpquery/internal/fault"
	"ctpquery/internal/obs"
)

// Request-path probe points (inert unless armed via internal/fault):
// admitted fires after a request holds its admission slot and before it
// executes; encode fires while the response is being built. Both sit
// inside the recover middleware, so the chaos suite uses them to prove
// a mid-request panic answers 500 and releases the slot.
var (
	probeQueryAdmitted = fault.Register("serve.query.admitted")
	probeQueryEncode   = fault.Register("serve.query.encode")
)

// Config tunes a Server; the DB comes separately in New.
type Config struct {
	// DefaultTimeout is the per-request budget when the request names none.
	DefaultTimeout time.Duration
	// MaxTimeout hard-caps requested budgets (0 = uncapped).
	MaxTimeout time.Duration
	// MaxRows is the default response row cap (0 = unlimited).
	MaxRows int
	// MaxParallelism caps per-request worker counts (0 = no override).
	MaxParallelism int
	// Admission, when non-nil, enables the admission layer with the given
	// controller configuration (zero values select its defaults).
	Admission *admission.Config
	// Estimator tunes the cost estimator; only read when Admission is set.
	Estimator admission.EstimatorConfig
	// MemSoftBytes, when positive, enables the memory watchdog: above
	// this live-heap watermark the server degrades (sheds cache bytes,
	// steps down default parallelism, tightens the admission budget) and
	// /healthz reports "degraded". See StartWatchdog.
	MemSoftBytes int64
	// MemHardBytes is the aggressive second watermark (default 2x soft):
	// the cache is emptied, parallelism drops to 1, and the admission
	// budget tightens further.
	MemHardBytes int64
	// WatchdogInterval is how often the watchdog samples the heap
	// (default 5s).
	WatchdogInterval time.Duration
	// DrainGrace is how long the process keeps its listener open after
	// SetDraining (cmd/ctpserve's -drain-grace). It is surfaced to
	// clients as the Retry-After of draining 503s — the earliest moment
	// a replacement instance could plausibly answer — so cluster
	// coordinators and ctpload back off instead of hammering a dying
	// shard. 0 still answers Retry-After: 1.
	DrainGrace time.Duration
	// TraceOff disables query tracing (the span API hands out nil
	// no-op spans); /metrics stays on. Tracing is on by default — the
	// disabled path costs one atomic load per request, same discipline
	// as internal/fault.
	TraceOff bool
	// TraceRing caps the flight recorder's completed-trace ring served
	// at /debug/traces (default 256).
	TraceRing int
	// SlowQuery, when positive, logs every completed trace at least
	// this slow as one structured-JSON line (cmd/ctpserve's
	// -slow-query-ms).
	SlowQuery time.Duration
	// TraceLogf receives slow-query lines (default log.Printf).
	TraceLogf func(format string, args ...any)
}

// Server serves concurrent EQL queries over one graph. The graph is
// loaded once and shared by every DB handle, so a request picking its
// own algorithm only costs a small engine struct. When the graph is live
// (-live), POST /ingest applies mutation batches; queries pin the epoch
// current at their entry, so reads and writes never block each other.
// All other mutable state is the atomic request metrics and the
// admission layer, keeping every handler safe under arbitrary
// concurrency.
type Server struct {
	base *ctpquery.DB

	defaultTimeout time.Duration
	maxTimeout     time.Duration
	maxRows        int
	maxParallelism int
	drainGrace     time.Duration

	// Admission layer; both nil when Config.Admission was nil.
	ctrl *admission.Controller
	est  *admission.Estimator

	// Degradation ladder state: health is the /healthz state machine
	// (ok/degraded/draining), parCeiling (when > 0) caps the effective
	// parallelism of every request — including the server default — and
	// wd is the memory watchdog driving both (nil without MemSoftBytes).
	health     atomic.Int32
	parCeiling atomic.Int32
	wd         *watchdog

	// testExecGate, when set by tests, runs after a request is admitted
	// and before it executes — while it holds its admission slot — so
	// tests can saturate the server deterministically.
	testExecGate func(admission.Class)

	// Ingest counters (POST /ingest; only a live graph accepts it).
	ingestBatches  atomic.Int64
	ingestOps      atomic.Int64
	ingestFailures atomic.Int64

	started        time.Time
	requests       atomic.Int64
	failures       atomic.Int64
	timeouts       atomic.Int64
	sheds          atomic.Int64 // 429 responses; disjoint from failures
	drained        atomic.Int64 // 503s refused because the server is draining
	panics         atomic.Int64 // panics recovered by the HTTP middleware
	internalErrors atomic.Int64 // 500s from panics contained below the handler
	inFlight       atomic.Int64
	busyNS         atomic.Int64 // total completed-handler time, for the average latency

	// Aggregated per-query search effort (ctpquery.SearchStats), so
	// hot-path regressions show up in /stats without attaching a profiler.
	treesGenerated atomic.Int64
	treesRecycled  atomic.Int64
	allocations    atomic.Uint64
	peakQueueLen   atomic.Int64 // max over all queries served
	peakTrees      atomic.Int64 // max over all queries served

	// Per-worker aggregates across every parallel query served,
	// index-aligned (worker 0 of each search sums into entry 0). Guarded
	// by workerMu: parallel queries are orders of magnitude rarer events
	// than the atomics above, so a mutex is fine here.
	workerMu  sync.Mutex
	workerAgg []workerAgg

	// Observability: the tracer owns the span pipeline and the
	// /debug/traces flight recorder; reg renders /metrics; met holds the
	// hot-path instruments (response counters, latency histograms).
	tracer *obs.Tracer
	reg    *obs.Registry
	met    *serveMetrics
}

// workerAgg accumulates one worker index's effort across queries.
type workerAgg struct {
	Ops     int64
	Kept    int64
	Shipped int64
	Stolen  int64
	BusyNS  int64
}

// noteWorkers folds a query's per-worker stats into the server totals.
func (s *Server) noteWorkers(ws []ctpquery.WorkerSearchStats) {
	if len(ws) == 0 {
		return
	}
	s.workerMu.Lock()
	defer s.workerMu.Unlock()
	for i, w := range ws {
		if i >= len(s.workerAgg) {
			s.workerAgg = append(s.workerAgg, workerAgg{})
		}
		s.workerAgg[i].Ops += int64(w.Ops)
		s.workerAgg[i].Kept += int64(w.Kept)
		s.workerAgg[i].Shipped += int64(w.Shipped)
		s.workerAgg[i].Stolen += int64(w.Stolen)
		s.workerAgg[i].BusyNS += w.BusyNS
	}
}

// resolveParallelism resolves a request's worker-count override against
// the server policy. The order is load-bearing and pinned by tests:
//
//  1. the GOMAXPROCS sentinel (negative) resolves FIRST, so a huge
//     machine cannot turn "-1" into a degree above the cap;
//  2. maxParallelism == 0 means requests may not override at all — the
//     server default wins regardless of what was asked;
//  3. otherwise the request clamps to maxParallelism. Each worker pins
//     an OS thread, so the ceiling is a resource guard, not advice.
func (s *Server) resolveParallelism(requested, serverDefault int) int {
	if s.maxParallelism <= 0 {
		return serverDefault
	}
	return ClampParallelism(requested, s.maxParallelism)
}

// ClampParallelism is the shared resolve-then-clamp: the GOMAXPROCS
// sentinel resolves before the cap so it cannot sidestep it. The server
// startup default (cmd/ctpserve) and per-request overrides both go
// through it, so the two paths cannot drift apart.
func ClampParallelism(requested, max int) int {
	if requested < 0 {
		requested = runtime.GOMAXPROCS(0)
	}
	if max > 0 && requested > max {
		requested = max
	}
	return requested
}

// maxInt64 CAS-raises an atomic high-water mark.
func maxInt64(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// New builds a server over db.
func New(db *ctpquery.DB, cfg Config) (*Server, error) {
	s := &Server{
		base:           db,
		defaultTimeout: cfg.DefaultTimeout,
		maxTimeout:     cfg.MaxTimeout,
		maxRows:        cfg.MaxRows,
		maxParallelism: cfg.MaxParallelism,
		drainGrace:     cfg.DrainGrace,
		started:        time.Now(),
	}
	if cfg.Admission != nil {
		g := db.Graph()
		s.ctrl = admission.NewController(*cfg.Admission)
		s.est = admission.NewEstimator(g.NumNodes(), g.NumEdges(), cfg.Estimator)
	}
	s.wd = newWatchdog(s, cfg)
	s.tracer = obs.NewTracer(obs.TraceConfig{
		Disabled:  cfg.TraceOff,
		RingSize:  cfg.TraceRing,
		SlowQuery: cfg.SlowQuery,
		Logf:      cfg.TraceLogf,
	})
	s.reg = obs.NewRegistry()
	s.met = newServeMetrics(s.reg)
	s.registerCollectors()
	if g := db.Graph(); g.IsLive() {
		g.OnCompaction(s.noteCompaction)
	}
	return s, nil
}

// Handler returns the HTTP routes: POST /query, POST /ingest (mutation
// batches; live graphs only), GET /healthz, GET /stats, GET /metrics
// (Prometheus text format), GET /debug/traces (the flight
// recorder; ?id= looks one trace up), and — when enablePprof is set —
// the net/http/pprof profiling endpoints under /debug/pprof/ (CPU,
// heap, allocs, goroutine, ...), so a live server can be profiled
// exactly like the benchmarks.
func (s *Server) Handler(enablePprof bool) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/ingest", s.handleIngest)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.reg.ServeMetrics)
	mux.HandleFunc("/debug/traces", s.tracer.ServeTraces)
	if enablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s.recoverMiddleware(mux)
}

// statusWriter tracks whether a handler already wrote headers, so the
// recover middleware knows whether a 500 can still be sent.
type statusWriter struct {
	http.ResponseWriter
	wrote bool
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.wrote = true
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	sw.wrote = true
	return sw.ResponseWriter.Write(b)
}

// recoverMiddleware is the server's outermost containment boundary: a
// panic escaping a handler answers 500 with a structured error body
// (when the response hasn't started) instead of tearing down the
// connection — and the process keeps serving. Handler-registered defers
// (admission release, in-flight accounting) run during the unwind
// before this recover, so a panicking request can never leak its
// admission slot.
func (s *Server) recoverMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				// The stdlib's own deliberate abort; not ours to swallow.
				panic(rec)
			}
			pe := fault.Recovered("serve: "+r.URL.Path, rec)
			s.panics.Add(1)
			s.failures.Add(1)
			if !sw.wrote {
				writeJSON(sw, http.StatusInternalServerError, errorResponse{Error: pe.Error()})
			}
		}()
		next.ServeHTTP(sw, r)
	})
}

// queryRequest is the JSON body of POST /query.
type queryRequest struct {
	// Query is the EQL query text (required).
	Query string `json:"query"`
	// TimeoutMS bounds this request's CTP searches, in milliseconds;
	// capped by the server's -max-timeout. 0 uses the server default.
	TimeoutMS int64 `json:"timeout_ms"`
	// Algorithm overrides the server's CTP algorithm for this request
	// (BFT, BFT-M, BFT-AM, GAM, ESP, MoESP, LESP, MoLESP).
	Algorithm string `json:"algorithm"`
	// Parallelism overrides the server's per-search worker count for this
	// request: 0 forces the sequential kernel, -1 GOMAXPROCS, K > 1
	// shards the search across K workers, clamped to the server's
	// -max-parallelism. Absent = server default (-parallelism flag).
	Parallelism *int `json:"parallelism"`
	// MaxRows caps the rows serialized into the response; capped by the
	// server's -max-rows. 0 uses the server default.
	MaxRows int `json:"max_rows"`
	// OmitTrees leaves connecting trees out of the response (tree cells
	// then carry only the edge count), trimming payloads for callers that
	// only need the bindings.
	OmitTrees bool `json:"omit_trees"`
	// IncludeKeys adds per-row canonical merge keys (row_keys) to the
	// response — the scatter-gather merge contract a cluster coordinator
	// (internal/cluster) orders and dedups gathered rows by.
	IncludeKeys bool `json:"include_keys"`
}

// cell is one value of a result row: a node (ID + label) or, for CONNECT
// tree variables, a connecting tree.
type cell struct {
	ID    *int32    `json:"id,omitempty"`
	Label string    `json:"label,omitempty"`
	Tree  *treeJSON `json:"tree,omitempty"`
}

type treeJSON struct {
	Size  int        `json:"size"`
	Root  string     `json:"root,omitempty"`
	Edges []edgeJSON `json:"edges,omitempty"`
}

type edgeJSON struct {
	Src   string `json:"src"`
	Label string `json:"label"`
	Dst   string `json:"dst"`
}

// queryResponse is the JSON body answering POST /query.
type queryResponse struct {
	Columns []string          `json:"columns"`
	Rows    []map[string]cell `json:"rows"`
	// RowKeys, present when the request set include_keys, carries one
	// canonical merge key per serialized row (ctpquery.Results.MergeKey):
	// identical logical rows on different replicas encode identically,
	// and lexicographic key order is the collector's canonical result
	// order, so a coordinator can merge gathered responses
	// deterministically.
	RowKeys []string `json:"row_keys,omitempty"`
	// RowCount is the full result size; len(Rows) may be smaller when
	// max_rows trimmed the payload (flagged by RowsTruncated).
	RowCount      int    `json:"row_count"`
	RowsTruncated bool   `json:"rows_truncated,omitempty"`
	TimedOut      bool   `json:"timed_out"`
	Truncated     bool   `json:"truncated,omitempty"`
	Algorithm     string `json:"algorithm"`
	TimingsMS     struct {
		BGP   float64 `json:"bgp"`
		CTP   float64 `json:"ctp"`
		Join  float64 `json:"join"`
		Total float64 `json:"total"`
	} `json:"timings_ms"`
	// Search reports the aggregated CTP search effort of this query. On a
	// cache hit it is the effort of the run that populated the entry, not
	// of this request (which searched nothing).
	Search searchJSON `json:"search"`
	// Cache reports how the result cache served this request; absent when
	// the server runs without -cache-bytes.
	Cache *cacheJSON `json:"cache,omitempty"`
	// Admission reports how the admission layer scheduled this request;
	// absent when the server runs without admission control.
	Admission *admissionJSON `json:"admission,omitempty"`
	// TraceID identifies this request's trace in the flight recorder
	// (GET /debug/traces?id=); absent when tracing is disabled. Under a
	// cluster coordinator it is the coordinator's trace ID, adopted from
	// the propagated Traceparent header, so the shard's spans and the
	// coordinator's gather join into one trace.
	TraceID string `json:"trace_id,omitempty"`
}

// cacheJSON is the per-request cache report.
type cacheJSON struct {
	// Hit: served from a stored entry, no search ran.
	Hit bool `json:"hit"`
	// Coalesced: this request waited on an identical in-flight query
	// instead of running its own search (singleflight).
	Coalesced bool `json:"coalesced"`
}

// admissionJSON is the per-request admission report: what the request
// was estimated to cost, what it actually cost, and what that cost it
// in queueing.
type admissionJSON struct {
	// Class is the scheduling class ("cheap" or "analytical").
	Class string `json:"class"`
	// EstimatedUnits is the pre-execution cost estimate.
	EstimatedUnits float64 `json:"estimated_units"`
	// ActualUnits is the measured search effort (only for requests that
	// executed a search — absent on cache hits and coalesced waiters).
	ActualUnits float64 `json:"actual_units,omitempty"`
	// Learned reports whether the estimate came from observed feedback
	// rather than the static model.
	Learned bool `json:"learned,omitempty"`
	// QueueWaitMS is time spent waiting for an execution slot.
	QueueWaitMS float64 `json:"queue_wait_ms"`
	// CacheBypass: a warm cache entry answered this request without it
	// ever entering the admission queue.
	CacheBypass bool `json:"cache_bypass,omitempty"`
}

// searchJSON mirrors ctpquery.SearchStats for the wire.
type searchJSON struct {
	TreesGenerated int    `json:"trees_generated"`
	TreesKept      int    `json:"trees_kept"`
	TreesRecycled  int    `json:"trees_recycled"`
	PeakTrees      int    `json:"peak_trees"`
	PeakQueueLen   int    `json:"peak_queue_len"`
	Allocations    uint64 `json:"allocations"`
	// Parallelism is the worker count the query's searches ran with (0 =
	// sequential kernel); Workers breaks the effort down per worker.
	Parallelism int          `json:"parallelism,omitempty"`
	Workers     []workerJSON `json:"workers,omitempty"`
}

// workerJSON is one search worker's share of a query.
type workerJSON struct {
	Ops     int     `json:"ops"`
	Kept    int     `json:"kept"`
	Shipped int     `json:"shipped"`
	Stolen  int     `json:"stolen"`
	BusyMS  float64 `json:"busy_ms"`
}

type errorResponse struct {
	Error string `json:"error"`
	// RetryAfterS mirrors the Retry-After header on 429 responses, for
	// clients that only read bodies.
	RetryAfterS int `json:"retry_after_s,omitempty"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only"})
		return
	}
	// A draining server refuses new queries outright — in-flight ones
	// finish, but routing fresh work at a process about to exit would
	// strand the caller mid-shutdown. 503 + Retry-After (derived from the
	// drain grace) tells well-behaved clients — the cluster coordinator,
	// ctpload's retry policy — to go elsewhere and when to come back.
	if s.Health() == HealthDraining {
		s.drained.Add(1)
		retry := s.drainRetrySeconds()
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{
			Error:       "draining: server is shutting down",
			RetryAfterS: retry,
		})
		return
	}
	start := time.Now()
	s.requests.Add(1)
	s.inFlight.Add(1)
	// Root span: adopted from the coordinator's Traceparent header when
	// present (the shard's spans then join the coordinator's trace), a
	// fresh trace otherwise. class/status feed the response counter and
	// latency histogram at exit; the deferred End finalizes the trace
	// into the flight recorder even when a contained panic unwinds.
	sp := s.tracer.Start("query", parentContext(r.Header.Get(obs.TraceHeader)))
	class, status := "none", "ok"
	defer func() {
		s.inFlight.Add(-1)
		elapsed := time.Since(start)
		s.busyNS.Add(int64(elapsed))
		s.met.responses.With(class, status).Inc()
		s.met.reqDur.With(class).Observe(elapsed.Seconds())
		if status != "ok" {
			sp.Status(status)
		}
		sp.End()
	}()

	parseSpan := sp.Child("parse")
	var req queryRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		status = "bad_request"
		parseSpan.Error(err).End()
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if req.Query == "" {
		status = "bad_request"
		err := errors.New("missing \"query\"")
		parseSpan.Error(err).End()
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	db := s.base
	baseOpts := s.base.Options()
	// Effective parallelism: request override (clamped by policy), then
	// the degradation ceiling — under memory pressure the watchdog caps
	// even the server default, so every request steps down together.
	effK := baseOpts.Parallelism
	if req.Parallelism != nil {
		effK = s.resolveParallelism(*req.Parallelism, effK)
	}
	if c := int(s.parCeiling.Load()); c > 0 && effK > c {
		effK = c
	}
	if req.Algorithm != "" || effK != baseOpts.Parallelism {
		opts := baseOpts
		opts.Parallelism = effK
		if req.Algorithm != "" {
			opts.Algorithm = req.Algorithm
		}
		var err error
		if db, err = s.base.WithOptions(opts); err != nil {
			status = "bad_request"
			parseSpan.Error(err).End()
			s.fail(w, http.StatusBadRequest, err)
			return
		}
	}

	// Parse before admission: malformed queries are the caller's mistake
	// and answer 400 immediately — they never cost a queue slot.
	q, err := ctpquery.ParseQuery(req.Query)
	if err != nil {
		status = "bad_request"
		parseSpan.Error(err).End()
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	parseSpan.End()
	parseDur := time.Since(start)
	sp.Attr("algorithm", db.Options().Algorithm)

	ctx := obs.With(r.Context(), sp)
	timeout := s.defaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if s.maxTimeout > 0 && (timeout == 0 || timeout > s.maxTimeout) {
		timeout = s.maxTimeout
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	var adm *admissionJSON
	var estSig uint64
	var waited time.Duration
	if s.ctrl != nil {
		// A warm cache entry answers in microseconds; letting it wait in
		// the queue would invert the whole point of the two-class split,
		// so peek first and bypass admission entirely on a hit.
		if res, ok := db.Peek(q); ok {
			class = admission.Cheap.String()
			sp.AttrBool("cache_bypass", true)
			resp := s.finishResponse(res, ctpquery.CacheInfo{Enabled: true, Hit: true}, db, req, start, sp)
			resp.Admission = &admissionJSON{Class: admission.Cheap.String(), CacheBypass: true}
			writeJSON(w, http.StatusOK, resp)
			return
		}
		est := s.est.Estimate(q.Shape(), timeout)
		estSig = est.Sig
		class = est.Class.String()
		sp.Attr("class", class)
		release, w8, aerr := s.ctrl.Acquire(ctx, est.Class, est.Units)
		if aerr != nil {
			status = "shed"
			s.shed(w, r, est.Class, aerr)
			return
		}
		waited = w8
		defer release()
		adm = &admissionJSON{
			Class:          est.Class.String(),
			EstimatedUnits: est.Units,
			Learned:        est.Learned,
			QueueWaitMS:    ms(waited),
		}
		if gate := s.testExecGate; gate != nil {
			gate(est.Class)
		}
	}
	probeQueryAdmitted.Hit()

	res, cinfo, err := db.RunWithInfo(ctx, q)
	switch {
	case errors.Is(err, context.Canceled):
		// Client went away; nothing useful to write.
		status = "canceled"
		s.failures.Add(1)
		return
	case err != nil:
		// Contained panics (exec worker, sequential kernel, engine,
		// singleflight leader) are OUR fault and answer 500; everything
		// else the engine reports is a problem with the query — 400.
		if ctpquery.IsInternalError(err) {
			status = "internal_error"
			s.internalErrors.Add(1)
			s.fail(w, http.StatusInternalServerError, err)
			return
		}
		status = "bad_request"
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if res.TimedOut() {
		s.timeouts.Add(1)
		sp.AttrBool("timed_out", true)
	}
	sp.AttrBool("cache_hit", cinfo.Hit).AttrBool("coalesced", cinfo.Coalesced)
	// Feed the estimator and the /stats effort aggregates only when this
	// request actually executed a search: a cache hit (or a coalesced
	// waiter) re-reports the leader's SearchStats and would inflate both
	// with work that never happened.
	if !cinfo.Hit && !cinfo.Coalesced {
		st := res.SearchStats()
		s.treesGenerated.Add(int64(st.TreesGenerated))
		s.treesRecycled.Add(int64(st.TreesRecycled))
		s.allocations.Add(st.Allocations)
		maxInt64(&s.peakQueueLen, int64(st.PeakQueueLen))
		maxInt64(&s.peakTrees, int64(st.PeakTrees))
		s.noteWorkers(st.Workers)
		if s.est != nil {
			actual := st.CostUnits()
			s.est.Observe(estSig, actual)
			adm.ActualUnits = actual
		}
		// Stage histograms describe work this handler actually did; a hit
		// or coalesced waiter would re-observe the leader's timings.
		bgp, ctp, join := res.Timings()
		s.met.observeStages(parseDur, waited, bgp, ctp, join)
	}
	sp.AttrInt("rows", int64(res.Len()))

	resp := s.finishResponse(res, cinfo, db, req, start, sp)
	resp.Admission = adm
	writeJSON(w, http.StatusOK, resp)
}

// finishResponse encodes results with the request's row cap and cache
// report applied, under an "encode" child span of the request's root.
func (s *Server) finishResponse(res *ctpquery.Results, cinfo ctpquery.CacheInfo, db *ctpquery.DB, req queryRequest, start time.Time, sp *obs.Span) queryResponse {
	maxRows := s.maxRows
	if req.MaxRows > 0 && (maxRows == 0 || req.MaxRows < maxRows) {
		maxRows = req.MaxRows
	}
	encSpan := sp.Child("encode")
	// Deferred (End is idempotent): a panic inside the encode — the
	// serve.query.encode probe is armed exactly there — must not leak
	// the span past the containment middleware.
	defer encSpan.End()
	encStart := time.Now()
	resp := s.encodeResults(res, db.Options().Algorithm, maxRows, req.OmitTrees, req.IncludeKeys, time.Since(start))
	s.met.stageDur.With("encode").Observe(time.Since(encStart).Seconds())
	encSpan.End()
	if cinfo.Enabled {
		resp.Cache = &cacheJSON{Hit: cinfo.Hit, Coalesced: cinfo.Coalesced}
	}
	resp.TraceID = sp.TraceID()
	return resp
}

// drainRetrySeconds derives the Retry-After of draining 503s (and the
// floor for hard-degraded sheds) from the configured drain grace,
// rounded up so a sub-second grace still backs clients off a beat.
func (s *Server) drainRetrySeconds() int {
	secs := int((s.drainGrace + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// hardDegraded reports whether the memory watchdog currently sits at the
// hard watermark.
func (s *Server) hardDegraded() bool {
	if s.wd == nil {
		return false
	}
	s.wd.mu.Lock()
	defer s.wd.mu.Unlock()
	return s.wd.level == pressureHard
}

// shed answers a request the admission layer rejected: 429 with a
// Retry-After estimate. Sheds are deliberately not failures — the
// request was well-formed and the server healthy, just saturated — and
// the shed request never executed, so it must leave no trace in the
// search-effort aggregates or the result cache.
func (s *Server) shed(w http.ResponseWriter, r *http.Request, class admission.Class, err error) {
	s.sheds.Add(1)
	if r.Context().Err() != nil {
		// Client gone (or its deadline spent) while queued; don't write.
		return
	}
	retry := s.ctrl.RetryAfter(class)
	// Under hard memory pressure the load estimate behind RetryAfter is
	// an underestimate — the watchdog has already quartered the budget to
	// claw heap back, and inviting retries in seconds hammers a server
	// fighting for its life. Floor the backoff at the drain grace, the
	// same "come back when this instance is replaced or recovered" signal
	// draining 503s carry.
	if s.hardDegraded() {
		if floor := s.drainRetrySeconds(); retry < floor {
			retry = floor
		}
	}
	w.Header().Set("Retry-After", strconv.Itoa(retry))
	writeJSON(w, http.StatusTooManyRequests, errorResponse{
		Error:       fmt.Sprintf("overloaded (%s class): %v", class, err),
		RetryAfterS: retry,
	})
}

func (s *Server) encodeResults(res *ctpquery.Results, algorithm string, maxRows int, omitTrees, includeKeys bool, total time.Duration) queryResponse {
	probeQueryEncode.Hit()
	resp := queryResponse{
		Columns:   res.Columns(),
		Rows:      []map[string]cell{},
		RowCount:  res.Len(),
		TimedOut:  res.TimedOut(),
		Truncated: res.Truncated(),
		Algorithm: algorithm,
	}
	bgp, ctp, join := res.Timings()
	resp.TimingsMS.BGP = ms(bgp)
	resp.TimingsMS.CTP = ms(ctp)
	resp.TimingsMS.Join = ms(join)
	resp.TimingsMS.Total = ms(total)
	st := res.SearchStats()
	resp.Search = searchJSON{
		TreesGenerated: st.TreesGenerated,
		TreesKept:      st.TreesKept,
		TreesRecycled:  st.TreesRecycled,
		PeakTrees:      st.PeakTrees,
		PeakQueueLen:   st.PeakQueueLen,
		Allocations:    st.Allocations,
		Parallelism:    st.Parallelism,
	}
	for _, ws := range st.Workers {
		resp.Search.Workers = append(resp.Search.Workers, workerJSON{
			Ops:     ws.Ops,
			Kept:    ws.Kept,
			Shipped: ws.Shipped,
			Stolen:  ws.Stolen,
			BusyMS:  float64(ws.BusyNS) / 1e6,
		})
	}

	n := res.Len()
	if maxRows > 0 && n > maxRows {
		n = maxRows
		resp.RowsTruncated = true
	}
	for i := 0; i < n; i++ {
		if includeKeys {
			resp.RowKeys = append(resp.RowKeys, res.MergeKey(i))
		}
		row := res.Row(i)
		out := make(map[string]cell, len(resp.Columns))
		for _, col := range resp.Columns {
			if !res.IsTreeColumn(col) {
				id, _ := row.Node(col)
				v := int32(id)
				out[col] = cell{ID: &v, Label: row.Label(col)}
				continue
			}
			t := row.Tree(col)
			if t == nil {
				out[col] = cell{}
				continue
			}
			tj := &treeJSON{Size: t.Size()}
			if !omitTrees {
				// Render against the run's own pinned view, not the server's
				// live graph: a mutation landing between execution and
				// encoding must not relabel (or misname) this result's nodes.
				tj.Root = res.Graph().NodeLabel(t.Root())
				for _, e := range t.Edges() {
					tj.Edges = append(tj.Edges, edgeJSON{Src: e.SrcLabel, Label: e.Label, Dst: e.DstLabel})
				}
			}
			out[col] = cell{Tree: tj}
		}
		resp.Rows = append(resp.Rows, out)
	}
	return resp
}

// handleHealth reports the degradation-ladder state: "ok" and
// "degraded" answer 200 (a degraded server still serves), "draining"
// answers 503 so load balancers stop routing new work during graceful
// shutdown.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	h := s.Health()
	code := http.StatusOK
	if h == HealthDraining {
		code = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", strconv.Itoa(s.drainRetrySeconds()))
	}
	g := s.base.Graph()
	payload := map[string]any{
		"status": h.String(),
		"nodes":  g.NumNodes(),
		"edges":  g.NumEdges(),
	}
	if g.IsLive() {
		payload["live"] = true
		payload["epoch"] = g.Epoch()
	}
	if s.wd != nil {
		payload["memory"] = s.wd.snapshot()
	}
	writeJSON(w, code, payload)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	// One consistent snapshot backs the whole render — the same cut
	// /metrics scrapes use — so no two fields of the payload can come
	// from different instants.
	snap := s.snapshot()
	payload := map[string]any{
		"uptime_s":        snap.uptimeS,
		"health":          snap.health.String(),
		"requests":        snap.requests,
		"failures":        snap.failures,
		"timeouts":        snap.timeouts,
		"sheds":           snap.sheds,
		"drained_rejects": snap.drained,
		"panics":          snap.panics,
		"internal_errors": snap.internalErrors,
		"in_flight":       snap.inFlight,
		"avg_latency_ms":  snap.avgLatencyMS,
		"graph":           map[string]int{"nodes": snap.nodes, "edges": snap.edges},
		"algorithm":       snap.algorithm,
		"algorithms":      ctpquery.Algorithms(),
		"search": map[string]any{
			"trees_generated": snap.treesGenerated,
			"trees_recycled":  snap.treesRecycled,
			"allocations":     snap.allocations,
			"peak_queue_len":  snap.peakQueueLen,
			"peak_trees":      snap.peakTrees,
			"workers":         workersJSON(snap.workers),
		},
	}
	if snap.store != nil {
		payload["store"] = storeJSON(*snap.store)
		payload["ingest"] = map[string]any{
			"batches":  snap.ingestBatches,
			"ops":      snap.ingestOps,
			"failures": snap.ingestFailures,
		}
	}
	if snap.cache != nil {
		cs := snap.cache
		payload["cache"] = map[string]any{
			"hits":      cs.Hits,
			"misses":    cs.Misses,
			"coalesced": cs.Coalesced,
			"evictions": cs.Evictions,
			"rejected":  cs.Rejected,
			"entries":   cs.Entries,
			"bytes":     cs.Bytes,
			"max_bytes": cs.MaxBytes,
		}
	}
	if snap.admission != nil {
		cst := snap.admission
		payload["admission"] = map[string]any{
			"cheap":                classStatsJSON(cst.Cheap),
			"analytical":           classStatsJSON(cst.Analytical),
			"in_flight_cost_units": cst.InFlightCost,
			"budget_scale":         cst.BudgetScale,
			"estimator": map[string]any{
				"estimates":      snap.estimator.Estimates,
				"observations":   snap.estimator.Observations,
				"learned_shapes": snap.estimator.LearnedShapes,
			},
		}
	}
	writeJSON(w, http.StatusOK, payload)
}

// classStatsJSON renders one admission class for /stats.
func classStatsJSON(cs admission.ClassStats) map[string]any {
	return map[string]any{
		"running":      cs.Running,
		"queued":       cs.Queued,
		"peak_queued":  cs.PeakQueued,
		"admitted":     cs.Admitted,
		"shed_full":    cs.ShedFull,
		"shed_expired": cs.ShedExpired,
		"shed_budget":  cs.ShedBudget,
		"shed":         cs.Shed(),
		"avg_wait_ms":  cs.AvgWaitMS,
	}
}

// workersJSON renders the per-worker aggregates for /stats.
func workersJSON(agg []workerAgg) []map[string]any {
	out := make([]map[string]any, len(agg))
	for i, w := range agg {
		out[i] = map[string]any{
			"ops":     w.Ops,
			"kept":    w.Kept,
			"shipped": w.Shipped,
			"stolen":  w.Stolen,
			"busy_ms": float64(w.BusyNS) / 1e6,
		}
	}
	return out
}

func (s *Server) fail(w http.ResponseWriter, code int, err error) {
	s.failures.Add(1)
	writeJSON(w, code, errorResponse{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
