package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"ctpquery"
)

// newTestServer serves a deterministic generated graph (800 nodes, 2400
// edges, connected by construction) with the result cache enabled, the
// way a production deployment would run. Admission is off: these tests
// pin the serving semantics that exist independent of it (admission has
// its own suite in admission_test.go).
func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	g := ctpquery.RandomGraph(800, 2400, []string{"knows", "cites", "funds"}, 42)
	db, err := ctpquery.Open(g, &ctpquery.Options{Parallel: true, TrackAllocs: true},
		ctpquery.WithCache(64<<20, 0))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(db, Config{DefaultTimeout: 10 * time.Second, MaxTimeout: 30 * time.Second,
		MaxRows: 1000, MaxParallelism: 16})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler(true))
	t.Cleanup(ts.Close)
	return s, ts
}

func postQuery(t *testing.T, url string, req queryRequest) (int, queryResponse, errorResponse) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out queryResponse
	var fail errorResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	} else {
		if err := json.NewDecoder(resp.Body).Decode(&fail); err != nil {
			t.Fatalf("decoding error response: %v", err)
		}
	}
	return resp.StatusCode, out, fail
}

// TestConcurrentQueries fires 16 connection searches at once — different
// node pairs each — and requires every one to come back complete. The
// graph is connected, so every pair has a connecting tree within the MAX
// bound.
func TestConcurrentQueries(t *testing.T) {
	s, ts := newTestServer(t)

	const n = 16
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := fmt.Sprintf(
				"SELECT ?w WHERE { CONNECT n%d n%d AS ?w MAX 16 LIMIT 2 . }",
				i+1, 400+i)
			code, out, fail := postQuery(t, ts.URL, queryRequest{Query: q, TimeoutMS: 20000})
			if code != http.StatusOK {
				errs <- fmt.Errorf("query %d: status %d: %s", i, code, fail.Error)
				return
			}
			if out.RowCount < 1 {
				errs <- fmt.Errorf("query %d: no connection found", i)
				return
			}
			if len(out.Rows) == 0 || out.Rows[0]["w"].Tree == nil {
				errs <- fmt.Errorf("query %d: response carries no tree", i)
				return
			}
			if tr := out.Rows[0]["w"].Tree; tr.Size < 1 || len(tr.Edges) != tr.Size {
				errs <- fmt.Errorf("query %d: tree size %d with %d edges", i, tr.Size, len(tr.Edges))
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := s.requests.Load(); got != n {
		t.Errorf("requests metric = %d, want %d", got, n)
	}
	if got := s.failures.Load(); got != 0 {
		t.Errorf("failures metric = %d, want 0", got)
	}
}

// TestPerRequestTimeout gives an exhaustive 6-seed enumeration a 25ms
// budget: the server must answer promptly with the partial results
// flagged timed_out, not hang until the search finishes.
func TestPerRequestTimeout(t *testing.T) {
	s, ts := newTestServer(t)
	start := time.Now()
	code, out, fail := postQuery(t, ts.URL, queryRequest{
		Query:     "SELECT ?w WHERE { CONNECT n1 n2 n3 n4 n5 n6 AS ?w . }",
		TimeoutMS: 25,
	})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, fail.Error)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("timeout ignored: took %v", elapsed)
	}
	if !out.TimedOut {
		t.Error("want timed_out=true")
	}
	if got := s.timeouts.Load(); got != 1 {
		t.Errorf("timeouts metric = %d, want 1", got)
	}
}

func TestMaxTimeoutCap(t *testing.T) {
	g := ctpquery.SampleGraph()
	db, err := ctpquery.Open(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Server cap of 1ms beats the huge requested budget; the query is
	// trivial, so it still completes — the point is the request is
	// accepted and served under the cap, not rejected.
	s, err := New(db, Config{MaxTimeout: time.Millisecond, MaxParallelism: 16})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler(false))
	defer ts.Close()
	code, _, fail := postQuery(t, ts.URL, queryRequest{
		Query:     "SELECT ?w WHERE { CONNECT Alice Bob AS ?w MAX 2 . }",
		TimeoutMS: 3600_000,
	})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, fail.Error)
	}
}

func TestAlgorithmOverride(t *testing.T) {
	_, ts := newTestServer(t)
	code, out, fail := postQuery(t, ts.URL, queryRequest{
		Query:     "SELECT ?w WHERE { CONNECT n1 n400 AS ?w MAX 16 LIMIT 1 . }",
		Algorithm: "bft",
	})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, fail.Error)
	}
	if out.Algorithm != "BFT" {
		t.Errorf("algorithm = %q, want BFT", out.Algorithm)
	}

	code, _, fail = postQuery(t, ts.URL, queryRequest{Query: "SELECT ?w WHERE { CONNECT n1 n2 AS ?w . }", Algorithm: "Dijkstra"})
	if code != http.StatusBadRequest {
		t.Fatalf("unknown algorithm: status %d, want 400", code)
	}
	if fail.Error == "" {
		t.Error("unknown algorithm: want an error message")
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t)
	for _, tc := range []struct {
		name string
		req  queryRequest
	}{
		{"empty", queryRequest{}},
		{"parse error", queryRequest{Query: "SELECT ?w WHERE { CONNECT a b . }"}},
		{"validation error", queryRequest{Query: "SELECT ?zzz WHERE { ?x knows ?y . }"}},
	} {
		code, _, fail := postQuery(t, ts.URL, tc.req)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, code)
		}
		if fail.Error == "" {
			t.Errorf("%s: want an error message", tc.name)
		}
	}

	resp, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /query: status %d, want 405", resp.StatusCode)
	}
}

func TestMaxRowsTrim(t *testing.T) {
	_, ts := newTestServer(t)
	code, out, fail := postQuery(t, ts.URL, queryRequest{
		Query:   "SELECT ?w WHERE { CONNECT n1 n400 AS ?w MAX 16 LIMIT 5 . }",
		MaxRows: 1,
	})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, fail.Error)
	}
	if len(out.Rows) > 1 {
		t.Errorf("max_rows=1 but %d rows serialized", len(out.Rows))
	}
	if out.RowCount > 1 && !out.RowsTruncated {
		t.Error("want rows_truncated when max_rows trims the payload")
	}
}

func TestHealthAndStats(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
		Nodes  int    `json:"nodes"`
		Edges  int    `json:"edges"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || health.Nodes != 800 || health.Edges < 2400 {
		t.Errorf("healthz = %+v", health)
	}

	code, out, fail := postQuery(t, ts.URL, queryRequest{Query: "SELECT ?w WHERE { CONNECT n1 n2 AS ?w MAX 16 LIMIT 1 . }"})
	if code != http.StatusOK {
		t.Fatalf("query status %d: %s", code, fail.Error)
	}
	// The per-query search report must show actual effort: the search
	// built trees and queued grows.
	if out.Search.TreesGenerated <= 0 || out.Search.TreesKept <= 0 {
		t.Errorf("per-query search stats empty: %+v", out.Search)
	}
	if out.Search.PeakQueueLen <= 0 {
		t.Errorf("peak_queue_len = %d, want > 0", out.Search.PeakQueueLen)
	}
	if out.Search.PeakTrees <= 0 {
		t.Errorf("peak_trees = %d, want > 0", out.Search.PeakTrees)
	}
	// The TrackAllocs probe reads runtime/metrics' heap-alloc counter,
	// which the runtime aggregates lazily — a small search can read a
	// zero delta. Probe the plumbing with a search heavy enough to cross
	// GC cycles (which flush the per-P stat caches): a three-seed
	// enumeration allocating tens of MB.
	code, heavy, fail := postQuery(t, ts.URL, queryRequest{
		Query: "SELECT ?w WHERE { CONNECT n1 n2 n3 AS ?w MAX 14 . }", TimeoutMS: 500})
	if code != http.StatusOK {
		t.Fatalf("heavy query status %d: %s", code, fail.Error)
	}
	if heavy.Search.Allocations == 0 {
		t.Errorf("allocations = 0 on a heavy search, want > 0 with TrackAllocs")
	}

	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Requests   int64    `json:"requests"`
		InFlight   int64    `json:"in_flight"`
		Algorithms []string `json:"algorithms"`
		Search     struct {
			TreesGenerated int64  `json:"trees_generated"`
			PeakQueueLen   int64  `json:"peak_queue_len"`
			PeakTrees      int64  `json:"peak_trees"`
			Allocations    uint64 `json:"allocations"`
		} `json:"search"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Requests < 1 || stats.InFlight != 0 || len(stats.Algorithms) != 8 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.Search.TreesGenerated <= 0 || stats.Search.PeakQueueLen <= 0 {
		t.Errorf("aggregated search stats empty: %+v", stats.Search)
	}
}

// TestPprofEndpoint: the handler serves /debug/pprof/ when enabled and
// 404s it when not.
func TestPprofEndpoint(t *testing.T) {
	_, ts := newTestServer(t) // pprof enabled
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof index: status %d, want 200", resp.StatusCode)
	}

	g := ctpquery.SampleGraph()
	db, err := ctpquery.Open(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(db, Config{MaxParallelism: 16})
	if err != nil {
		t.Fatal(err)
	}
	off := httptest.NewServer(s.Handler(false))
	defer off.Close()
	resp, err = http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof disabled: status %d, want 404", resp.StatusCode)
	}
}

// A "parallelism" request field must engage the sharded runtime, report
// the degree and per-worker effort in the response, and return the same
// result set as the sequential default.
func TestParallelismOverride(t *testing.T) {
	s, ts := newTestServer(t)
	q := `SELECT ?w WHERE { CONNECT n3 n11 AS ?w MAX 4 . }`

	code, seq, fail := postQuery(t, ts.URL, queryRequest{Query: q})
	if code != http.StatusOK {
		t.Fatalf("sequential query failed: %+v", fail)
	}
	if seq.Search.Parallelism != 0 || len(seq.Search.Workers) != 0 {
		t.Fatalf("sequential query reported parallel search: %+v", seq.Search)
	}

	par := 4
	code, pres, fail := postQuery(t, ts.URL, queryRequest{Query: q, Parallelism: &par})
	if code != http.StatusOK {
		t.Fatalf("parallel query failed: %+v", fail)
	}
	if pres.Search.Parallelism != 4 || len(pres.Search.Workers) != 4 {
		t.Fatalf("parallel search report wrong: %+v", pres.Search)
	}
	if pres.RowCount != seq.RowCount {
		t.Fatalf("parallel rows %d != sequential rows %d", pres.RowCount, seq.RowCount)
	}

	// Requested degrees clamp to the server's -max-parallelism ceiling
	// (16 in newTestServer): each worker pins an OS thread, so clients
	// must not be able to spawn unbounded workers.
	huge := 200
	code, capped, fail := postQuery(t, ts.URL, queryRequest{Query: q, Parallelism: &huge})
	if code != http.StatusOK {
		t.Fatalf("capped query failed: %+v", fail)
	}
	if capped.Search.Parallelism != 16 {
		t.Fatalf("parallelism=200 ran with %d workers, want clamp to 16", capped.Search.Parallelism)
	}

	// Negative degrees resolve to GOMAXPROCS before the clamp, so they
	// cannot sidestep the ceiling either.
	neg := -1
	code, negRes, fail := postQuery(t, ts.URL, queryRequest{Query: q, Parallelism: &neg})
	if code != http.StatusOK {
		t.Fatalf("negative-parallelism query failed: %+v", fail)
	}
	if want := min(runtime.GOMAXPROCS(0), 16); negRes.Search.Parallelism != want {
		t.Fatalf("parallelism=-1 ran with %d workers, want %d", negRes.Search.Parallelism, want)
	}

	// /stats must now expose per-worker aggregates.
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Search struct {
			Workers []map[string]any `json:"workers"`
		} `json:"search"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	// The 4-worker and the clamped 16-worker query both aggregated, so
	// the index-aligned table has 16 entries.
	if len(stats.Search.Workers) != 16 {
		t.Fatalf("/stats workers = %d entries, want 16", len(stats.Search.Workers))
	}
	_ = s
}

// An invalid parallelism+algorithm combination must fail cleanly.
func TestParallelismWithBadAlgorithm(t *testing.T) {
	_, ts := newTestServer(t)
	par := 2
	code, _, fail := postQuery(t, ts.URL, queryRequest{
		Query: `SELECT ?w WHERE { CONNECT n1 n2 AS ?w . }`, Algorithm: "nope", Parallelism: &par})
	if code != http.StatusBadRequest || fail.Error == "" {
		t.Fatalf("bad algorithm accepted: code %d", code)
	}
}

// statsCache decodes the /stats cache section.
type statsCache struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"`
	Rejected  int64 `json:"rejected"`
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
}

func getStatsCache(t *testing.T, url string) statsCache {
	t.Helper()
	resp, err := http.Get(url + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Cache *statsCache `json:"cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Cache == nil {
		t.Fatal("/stats has no cache section on a cache-enabled server")
	}
	return *stats.Cache
}

// TestCacheSingleflightServer fires K identical queries concurrently and
// requires that exactly one underlying search ran: one cache miss, K-1
// hits or coalesced waiters, and server-wide search effort equal to a
// single execution. Run under -race in CI.
func TestCacheSingleflightServer(t *testing.T) {
	s, ts := newTestServer(t)
	const k = 12
	// No LIMIT: the result must be complete so it is admitted.
	const query = "SELECT ?w WHERE { CONNECT n1 n400 AS ?w MAX 6 . }"

	var wg sync.WaitGroup
	responses := make([]queryResponse, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, out, fail := postQuery(t, ts.URL, queryRequest{Query: query, TimeoutMS: 30000})
			if code != http.StatusOK {
				t.Errorf("query %d: status %d: %s", i, code, fail.Error)
				return
			}
			responses[i] = out
		}(i)
	}
	wg.Wait()

	leaders := 0
	for i, out := range responses {
		if out.Cache == nil {
			t.Fatalf("response %d carries no cache report", i)
		}
		if !out.Cache.Hit && !out.Cache.Coalesced {
			leaders++
		}
		if out.RowCount != responses[0].RowCount {
			t.Fatalf("response %d: %d rows, others saw %d", i, out.RowCount, responses[0].RowCount)
		}
		if out.TimedOut {
			t.Fatalf("response %d timed out; test premise broken", i)
		}
	}
	if leaders != 1 {
		t.Errorf("%d requests executed a search, want exactly 1", leaders)
	}

	cs := getStatsCache(t, ts.URL)
	if cs.Misses != 1 {
		t.Errorf("cache misses = %d, want 1 (singleflight)", cs.Misses)
	}
	if cs.Hits+cs.Coalesced != k-1 {
		t.Errorf("hits %d + coalesced %d = %d, want %d", cs.Hits, cs.Coalesced, cs.Hits+cs.Coalesced, k-1)
	}
	if cs.Entries != 1 || cs.Bytes <= 0 {
		t.Errorf("cache stores %d entries / %d bytes, want 1 / > 0", cs.Entries, cs.Bytes)
	}

	// "Exactly one search" is also visible in the server's aggregated
	// effort: hits and coalesced waiters do not re-add the leader's
	// SearchStats, so the total equals one execution's report.
	if got, want := s.treesGenerated.Load(), int64(responses[0].Search.TreesGenerated); got != want {
		t.Errorf("aggregated trees_generated = %d, want one search's %d", got, want)
	}
}

// A request that timed out is served its partial result but the entry is
// never admitted: the next identical request runs the search again.
func TestCacheNeverServesStalePartial(t *testing.T) {
	_, ts := newTestServer(t)
	// The exhaustive 6-seed enumeration needs far more than 1ms, so the
	// first answer is deterministically partial.
	req := queryRequest{
		Query:     "SELECT ?w WHERE { CONNECT n1 n2 n3 n4 n5 n6 AS ?w . }",
		TimeoutMS: 1,
	}
	code, out, fail := postQuery(t, ts.URL, req)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, fail.Error)
	}
	if !out.TimedOut {
		t.Fatal("1ms budget did not time out; test premise broken")
	}
	cs := getStatsCache(t, ts.URL)
	if cs.Entries != 0 || cs.Rejected != 1 {
		t.Fatalf("partial result admitted: %+v", cs)
	}

	code, out2, fail := postQuery(t, ts.URL, req)
	if code != http.StatusOK {
		t.Fatalf("second status %d: %s", code, fail.Error)
	}
	if out2.Cache == nil || out2.Cache.Hit {
		t.Fatal("second request was served the stale partial from cache")
	}
	if cs := getStatsCache(t, ts.URL); cs.Misses != 2 {
		t.Fatalf("second request did not re-execute: %+v", cs)
	}
}

// resolveParallelism pins the per-request resolution order: the
// GOMAXPROCS sentinel resolves before the -max-parallelism clamp, and
// maxParallelism == 0 means requests cannot override at all.
func TestResolveParallelism(t *testing.T) {
	gmp := runtime.GOMAXPROCS(0)
	for _, tc := range []struct {
		name               string
		maxParallelism     int
		requested, fallbck int
		want               int
	}{
		{"plain request under cap", 16, 4, 0, 4},
		{"request above cap clamps", 16, 200, 0, 16},
		{"sentinel resolves before clamp", 2, -1, 0, min(gmp, 2)},
		{"any negative is the sentinel", 2, -7, 0, min(gmp, 2)},
		{"cap zero ignores request", 0, 8, 3, 3},
		{"cap zero ignores sentinel", 0, -1, 3, 3},
	} {
		s := &Server{maxParallelism: tc.maxParallelism}
		if got := s.resolveParallelism(tc.requested, tc.fallbck); got != tc.want {
			t.Errorf("%s: resolveParallelism(%d, %d) with cap %d = %d, want %d",
				tc.name, tc.requested, tc.fallbck, tc.maxParallelism, got, tc.want)
		}
	}
}

// With -max-parallelism 0, the flag help promises "requests may not
// override"; pin it end to end, not just in the helper.
func TestMaxParallelismZeroNoOverride(t *testing.T) {
	g := ctpquery.RandomGraph(200, 600, []string{"t"}, 5)
	db, err := ctpquery.Open(g, &ctpquery.Options{Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(db, Config{DefaultTimeout: 10 * time.Second, MaxTimeout: 30 * time.Second,
		MaxRows: 1000})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler(false))
	defer ts.Close()

	q := "SELECT ?w WHERE { CONNECT n1 n100 AS ?w MAX 8 LIMIT 1 . }"
	for _, requested := range []int{8, -1} {
		requested := requested
		code, out, fail := postQuery(t, ts.URL, queryRequest{Query: q, Parallelism: &requested})
		if code != http.StatusOK {
			t.Fatalf("parallelism=%d: status %d: %s", requested, code, fail.Error)
		}
		// The server default is the sequential kernel (Parallelism 0), and
		// the override must be ignored.
		if out.Search.Parallelism != 0 || len(out.Search.Workers) != 0 {
			t.Errorf("parallelism=%d with cap 0 ran %d workers, want the server default (sequential)",
				requested, out.Search.Parallelism)
		}
	}
}
