package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ctpquery"
)

// These tests pin the serve-side half of the cluster contract: the
// draining refusal a coordinator routes around, and the canonical
// row_keys its gather-merge orders and dedups by.

// rawPost posts a query and returns the full *http.Response so headers
// (Retry-After) can be asserted alongside the body.
func rawPost(t *testing.T, url string, req queryRequest) *http.Response {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestDrainingRefusalCarriesRetryAfter: a draining server answers /query
// with 503 and a Retry-After derived from the configured drain grace —
// the earliest moment a replacement could plausibly answer — in both the
// header and the structured body, and /healthz mirrors the signal.
func TestDrainingRefusalCarriesRetryAfter(t *testing.T) {
	g := ctpquery.RandomGraph(200, 600, []string{"knows"}, 7)
	db, err := ctpquery.Open(g, &ctpquery.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(db, Config{DefaultTimeout: 5 * time.Second, DrainGrace: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler(false))
	defer ts.Close()

	s.SetDraining()

	resp := rawPost(t, ts.URL, queryRequest{Query: "SELECT ?w WHERE { CONNECT n1 n2 AS ?w MAX 4 LIMIT 1 . }"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /query answered %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "5" {
		t.Fatalf("Retry-After = %q, want \"5\" (the drain grace)", got)
	}
	var fail errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&fail); err != nil {
		t.Fatal(err)
	}
	if fail.RetryAfterS != 5 {
		t.Fatalf("body retry_after_s = %d, want 5", fail.RetryAfterS)
	}
	if fail.Error == "" {
		t.Fatal("draining 503 carried no structured error")
	}

	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable || hr.Header.Get("Retry-After") != "5" {
		t.Fatalf("/healthz while draining: %d Retry-After=%q, want 503 with \"5\"",
			hr.StatusCode, hr.Header.Get("Retry-After"))
	}
}

// TestDrainingRetryAfterRoundsUp: a sub-second drain grace still backs
// clients off a full second, and the zero grace answers Retry-After: 1 —
// "come back immediately" would invite a hammering loop.
func TestDrainingRetryAfterRoundsUp(t *testing.T) {
	for _, tc := range []struct {
		grace time.Duration
		want  string
	}{
		{0, "1"},
		{300 * time.Millisecond, "1"},
		{1500 * time.Millisecond, "2"},
	} {
		g := ctpquery.RandomGraph(50, 150, []string{"knows"}, 7)
		db, err := ctpquery.Open(g, &ctpquery.Options{})
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(db, Config{DefaultTimeout: time.Second, DrainGrace: tc.grace})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler(false))
		s.SetDraining()
		resp := rawPost(t, ts.URL, queryRequest{Query: "SELECT ?w WHERE { CONNECT n1 n2 AS ?w MAX 4 LIMIT 1 . }"})
		if resp.Header.Get("Retry-After") != tc.want {
			t.Fatalf("grace %v: Retry-After = %q, want %q",
				tc.grace, resp.Header.Get("Retry-After"), tc.want)
		}
		ts.Close()
	}
}

// TestIncludeKeysEmitsCanonicalRowKeys: include_keys adds exactly one
// merge key per serialized row, and under the parallel kernel (how a
// cluster shard runs — only the exec collector orders canonically; the
// sequential kernel returns discovery order) the keys come back strictly
// ascending with no duplicates. The field stays absent when not asked
// for, so ordinary clients pay nothing.
func TestIncludeKeysEmitsCanonicalRowKeys(t *testing.T) {
	_, ts := newTestServer(t)
	const q = "SELECT ?w WHERE { CONNECT n3 n400 AS ?w MAX 6 LIMIT 500 . }"
	par := 2

	code, out, fail := postQuery(t, ts.URL, queryRequest{Query: q, IncludeKeys: true, Parallelism: &par})
	if code != http.StatusOK {
		t.Fatalf("query failed: %d %s", code, fail.Error)
	}
	if len(out.Rows) == 0 {
		t.Fatal("query returned no rows; the key assertions need a populated response")
	}
	if len(out.RowKeys) != len(out.Rows) {
		t.Fatalf("row_keys has %d entries for %d rows", len(out.RowKeys), len(out.Rows))
	}
	for i := 1; i < len(out.RowKeys); i++ {
		if out.RowKeys[i] <= out.RowKeys[i-1] {
			t.Fatalf("row_keys not strictly ascending at %d: %q then %q",
				i, out.RowKeys[i-1], out.RowKeys[i])
		}
	}

	code, out, fail = postQuery(t, ts.URL, queryRequest{Query: q})
	if code != http.StatusOK {
		t.Fatalf("query failed: %d %s", code, fail.Error)
	}
	if out.RowKeys != nil {
		t.Fatalf("row_keys leaked into a response that did not ask for them: %d entries", len(out.RowKeys))
	}
}
